// Temperature physics: .TEMP changes junction behaviour the way silicon
// does (about -2 mV/K forward-voltage tempco at fixed current).

#include <gtest/gtest.h>

#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/diode.h"
#include "spice/parser.h"
#include "spice/sources.h"

namespace sp = ahfic::spice;

namespace {

double diodeVfAt(double tempC) {
  sp::Circuit ckt;
  ckt.setTemperatureC(tempC);
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::ISource>("I1", 0, a, 1e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm, 1.0, tempC);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  return s.at(a);
}

double bjtIcAt(double tempC, double xtb = 0.0) {
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  sp::BjtModel m;
  m.is = 1e-16;
  m.bf = 100.0;
  m.xtb = xtb;
  ckt.add<sp::VSource>("VB", b, 0, 0.7);
  auto& vc = ckt.add<sp::VSource>("VC", c, 0, 2.0);
  ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, m, 1.0, 0, tempC);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  return -s.at(vc.branchId());
}

}  // namespace

TEST(Temperature, DiodeForwardVoltageTempco) {
  // Classic silicon behaviour: Vf falls roughly 1.7..2.3 mV/K at 1 mA.
  const double v27 = diodeVfAt(27.0);
  const double v77 = diodeVfAt(77.0);
  const double tempco = (v77 - v27) / 50.0;
  EXPECT_LT(tempco, -1.5e-3);
  EXPECT_GT(tempco, -2.7e-3);
}

TEST(Temperature, DiodeAtNominalUnchanged) {
  EXPECT_NEAR(diodeVfAt(27.0), 0.655, 5e-3);
}

TEST(Temperature, BjtCollectorCurrentRisesWithT) {
  // At fixed Vbe, Ic grows strongly with temperature (IS(T) wins over
  // the 1/Vt shrink at Vbe = 0.7 V).
  const double i27 = bjtIcAt(27.0);
  const double i85 = bjtIcAt(85.0);
  EXPECT_GT(i85 / i27, 5.0);
  EXPECT_LT(i85 / i27, 200.0);
}

TEST(Temperature, XtbScalesBeta) {
  // Current gain follows (T/Tnom)^XTB; compare base currents at the same
  // collector current drive.
  sp::Circuit cold, hot;
  for (auto* p : {&cold, &hot}) {
    const double t = (p == &cold) ? 27.0 : 127.0;
    const int c = p->node("c"), b = p->node("b");
    sp::BjtModel m;
    m.is = 1e-16;
    m.bf = 100.0;
    m.xtb = 1.5;
    p->add<sp::ISource>("IB", 0, b, 10e-6);
    p->add<sp::VSource>("VC", c, 0, 2.0);
    p->add<sp::Bjt>("Q1", *p, c, b, 0, m, 1.0, 0, t);
  }
  auto icOf = [](sp::Circuit& ckt) {
    sp::Analyzer an(ckt);
    const auto x = an.op();
    sp::Solution s(&x);
    auto* q = dynamic_cast<sp::Bjt*>(ckt.findDevice("Q1"));
    return q->opInfo(s).ic;
  };
  const double betaRatio = icOf(hot) / icOf(cold);
  // (400/300)^1.5 ~ 1.54.
  EXPECT_NEAR(betaRatio, 1.54, 0.12);
}

TEST(Temperature, TempCardFlowsThroughParser) {
  auto deck = sp::parseDeck(
      "hot divider\n"
      ".TEMP 85\n"
      ".MODEL dd D(IS=1e-14)\n"
      "I1 0 a 1m\n"
      "D1 a 0 dd\n");
  EXPECT_DOUBLE_EQ(deck.circuit.temperatureC(), 85.0);
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  // Lower forward drop than the 27 C value.
  EXPECT_LT(s.at(deck.circuit.findNode("a")), 0.62);
}

TEST(Temperature, ModelCardsAcceptTempParameters) {
  auto deck = sp::parseDeck(
      "t\n"
      ".MODEL m1 NPN(IS=1e-16 BF=100 EG=1.12 XTI=3 XTB=1.5)\n"
      ".MODEL d1 D(IS=1e-14 EG=1.11 XTI=3)\n");
  EXPECT_DOUBLE_EQ(deck.circuit.bjtModel("m1").xtb, 1.5);
  EXPECT_DOUBLE_EQ(deck.circuit.diodeModel("d1").xti, 3.0);
}
