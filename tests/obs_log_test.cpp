// Structured logging: level gating, JSONL well-formedness under
// concurrency (no torn lines), per-site rate limiting with suppressed
// accounting, and the ScopedTraceContext inherit semantics that carry
// request correlation across nested scopes.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "util/error.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace u = ahfic::util;

namespace {

/// RAII guard: silences the default stderr text sink for the test and
/// restores the reset state afterwards, so log tests neither spam the
/// test output nor leak sink routing into other tests.
struct LogGuard {
  LogGuard() {
    obs::resetLoggingForTest();
    obs::setTextLogSink(false);
  }
  ~LogGuard() { obs::resetLoggingForTest(); }
};

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

}  // namespace

TEST(ObsLog, LevelParsingRoundTrips) {
  for (const auto level :
       {obs::LogLevel::kTrace, obs::LogLevel::kDebug, obs::LogLevel::kInfo,
        obs::LogLevel::kWarn, obs::LogLevel::kError, obs::LogLevel::kOff}) {
    obs::LogLevel parsed;
    ASSERT_TRUE(obs::parseLogLevel(obs::logLevelName(level), parsed))
        << obs::logLevelName(level);
    EXPECT_EQ(parsed, level);
  }
  obs::LogLevel out = obs::LogLevel::kInfo;
  EXPECT_FALSE(obs::parseLogLevel("verbose", out));
  EXPECT_EQ(out, obs::LogLevel::kInfo);  // untouched on failure
}

TEST(ObsLog, LevelGateFiltersSites) {
  LogGuard guard;
  const obs::LogSite sDebug =
      obs::logSite(obs::LogLevel::kDebug, "test.log_gate_debug");
  const obs::LogSite sError =
      obs::logSite(obs::LogLevel::kError, "test.log_gate_error");

  // Default after reset is kOff: nothing passes.
  EXPECT_FALSE(static_cast<bool>(sDebug));
  EXPECT_FALSE(static_cast<bool>(sError));

  obs::setLogLevel(obs::LogLevel::kWarn);
  EXPECT_FALSE(static_cast<bool>(sDebug));
  EXPECT_TRUE(static_cast<bool>(sError));

  obs::setLogLevel(obs::LogLevel::kTrace);
  EXPECT_TRUE(static_cast<bool>(sDebug));
  EXPECT_TRUE(static_cast<bool>(sError));

  // A gated-off site emits nothing even when log() is called directly.
  obs::setLogLevel(obs::LogLevel::kOff);
  const long long before = obs::logLinesEmitted();
  sDebug.log("should not appear");
  EXPECT_EQ(obs::logLinesEmitted(), before);
}

TEST(ObsLog, JsonlLinesRoundTripWithContextAndFields) {
  LogGuard guard;
  const std::string path = "obs_log_test_roundtrip.jsonl";
  obs::setJsonlLogSink(true, path);
  obs::setLogLevel(obs::LogLevel::kInfo);

  {
    obs::ScopedTraceContext ctx("req-deadbeef-1", "job/x");
    const obs::LogSite site =
        obs::logSite(obs::LogLevel::kInfo, "test.log_roundtrip");
    ASSERT_TRUE(static_cast<bool>(site));
    site.log("round trip")
        .str("deck", "ce_stage.sp")
        .num("wallMs", 12.5)
        .num("rung", 2);
  }
  obs::setJsonlLogSink(false);

  const auto lines = readLines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = u::parseJson(lines[0]);
  EXPECT_EQ(doc.get("level").asString(), "info");
  EXPECT_EQ(doc.get("site").asString(), "test.log_roundtrip");
  EXPECT_EQ(doc.get("msg").asString(), "round trip");
  EXPECT_EQ(doc.get("request_id").asString(), "req-deadbeef-1");
  EXPECT_EQ(doc.get("job_id").asString(), "job/x");
  EXPECT_FALSE(doc.get("ts").asString().empty());
  EXPECT_EQ(doc.get("deck").asString(), "ce_stage.sp");
  EXPECT_EQ(doc.get("wallMs").asNumber(), 12.5);
  EXPECT_EQ(doc.get("rung").asNumber(), 2.0);
}

TEST(ObsLog, ConcurrentWritersNeverTearJsonlLines) {
  LogGuard guard;
  const std::string path = "obs_log_test_concurrent.jsonl";
  obs::setJsonlLogSink(true, path);
  obs::setLogLevel(obs::LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 500;
  const obs::LogSite site =
      obs::logSite(obs::LogLevel::kInfo, "test.log_concurrent");
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&site, t] {
      obs::ScopedTraceContext ctx("req-thread-" + std::to_string(t));
      for (int k = 0; k < kLinesPerThread; ++k)
        site.log("concurrent line")
            .num("thread", t)
            .num("k", k)
            .str("payload", "x=\"quoted\" and strange\tchars");
    });
  for (auto& t : pool) t.join();
  obs::setJsonlLogSink(false);

  const auto lines = readLines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(),
            static_cast<size_t>(kThreads) * kLinesPerThread);
  // Every single line must parse as a self-contained JSON object: a torn
  // or interleaved write would break at least one.
  std::vector<int> perThread(kThreads, 0);
  for (const auto& line : lines) {
    const auto doc = u::parseJson(line);  // throws on a torn line
    ASSERT_TRUE(doc.isObject());
    const int t = static_cast<int>(doc.get("thread").asNumber());
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ++perThread[t];
    EXPECT_EQ(doc.get("request_id").asString(),
              "req-thread-" + std::to_string(t));
  }
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(perThread[t], kLinesPerThread) << "thread " << t;
}

TEST(ObsLog, RateLimiterSuppressesAndReportsDebt) {
  LogGuard guard;
  const std::string path = "obs_log_test_ratelimit.jsonl";
  obs::setJsonlLogSink(true, path);
  obs::setLogLevel(obs::LogLevel::kInfo);

  const obs::LogSite site =
      obs::logSite(obs::LogLevel::kInfo, "test.log_ratelimited", 5);
  const long long suppressedBefore = obs::logLinesSuppressed();
  for (int k = 0; k < 100; ++k) site.log("burst").num("k", k);

  // 100 lines in a tight loop spanning at most two 1 s windows: at most
  // 10 may emit; at least 90 must be suppressed and counted.
  EXPECT_GE(obs::logLinesSuppressed() - suppressedBefore, 90);

  // The debt surfaces as a "suppressed" field on the next emitted line.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  site.log("after the burst");
  obs::setJsonlLogSink(false);

  const auto lines = readLines(path);
  std::remove(path.c_str());
  ASSERT_GE(lines.size(), 2u);
  ASSERT_LE(lines.size(), 11u);
  const auto last = u::parseJson(lines.back());
  EXPECT_EQ(last.get("msg").asString(), "after the burst");
  ASSERT_TRUE(last.has("suppressed"));
  EXPECT_GE(last.get("suppressed").asNumber(), 90.0);
}

TEST(ObsLog, RemovingSinkFlushesCarriedSuppressedDebt) {
  LogGuard guard;
  const std::string path = "obs_log_test_debt_flush.jsonl";
  obs::setJsonlLogSink(true, path);
  obs::setLogLevel(obs::LogLevel::kInfo);

  const obs::LogSite site =
      obs::logSite(obs::LogLevel::kInfo, "test.log_debt_flush", 5);
  for (int k = 0; k < 100; ++k) site.log("burst").num("k", k);
  // The burst leaves carried rate-limiter debt; removing the sink is
  // the last chance for that debt to surface *in this sink* — without
  // the flush it would vanish with the file handle.
  obs::setJsonlLogSink(false);

  const auto lines = readLines(path);
  std::remove(path.c_str());

  // Conservation: every one of the 100 calls is accounted for — either
  // as an emitted "burst" line or inside a "suppressed" count (carried
  // on later burst lines or on the shutdown debt-flush line).
  long long emitted = 0;
  double suppressedTotal = 0.0;
  bool sawFlushLine = false;
  for (const auto& line : lines) {
    const auto doc = u::parseJson(line);
    ASSERT_EQ(doc.get("site").asString(), "test.log_debt_flush");
    if (doc.get("msg").asString() == "burst") ++emitted;
    if (doc.has("suppressed"))
      suppressedTotal += doc.get("suppressed").asNumber();
    if (doc.get("msg").asString() == "rate limiter dropped lines") {
      sawFlushLine = true;
      EXPECT_EQ(doc.get("level").asString(), "warn");
      EXPECT_GE(doc.get("suppressed").asNumber(), 1.0);
    }
  }
  EXPECT_EQ(emitted + static_cast<long long>(suppressedTotal), 100);
  // At 5 lines/s the sub-millisecond burst suppresses >= 90 calls, and
  // (barring a window rollover on the very last call) that debt reaches
  // the file only via the shutdown flush.
  EXPECT_GE(suppressedTotal, 90.0);
  EXPECT_TRUE(sawFlushLine);
}

TEST(ObsLog, ScopedTraceContextNestsAndInherits) {
  LogGuard guard;
  EXPECT_TRUE(obs::currentTraceContext().requestId.empty());
  {
    obs::ScopedTraceContext outer("req-outer-7");
    EXPECT_EQ(obs::currentTraceContext().requestId, "req-outer-7");
    EXPECT_TRUE(obs::currentTraceContext().jobId.empty());
    {
      // Empty requestId inherits the enclosing request correlation while
      // adding a jobId — the runner's per-job scope relies on this.
      obs::ScopedTraceContext inner("", "mc/ft/042");
      EXPECT_EQ(obs::currentTraceContext().requestId, "req-outer-7");
      EXPECT_EQ(obs::currentTraceContext().jobId, "mc/ft/042");
    }
    EXPECT_EQ(obs::currentTraceContext().requestId, "req-outer-7");
    EXPECT_TRUE(obs::currentTraceContext().jobId.empty());
    {
      // A non-empty requestId replaces wholesale.
      obs::ScopedTraceContext replace("req-replacement-8");
      EXPECT_EQ(obs::currentTraceContext().requestId, "req-replacement-8");
    }
  }
  EXPECT_TRUE(obs::currentTraceContext().requestId.empty());
}

TEST(ObsLog, TextSinkWritesParseableRecords) {
  LogGuard guard;
  const std::string path = "obs_log_test_text.log";
  obs::setTextLogSink(true, path);
  obs::setLogLevel(obs::LogLevel::kInfo);
  {
    obs::ScopedTraceContext ctx("req-text-1");
    obs::logSite(obs::LogLevel::kWarn, "test.log_text")
        .log("something leaned over")
        .str("what", "the queue")
        .num("depth", 32);
  }
  obs::setTextLogSink(false);

  const auto lines = readLines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 1u);
  // "ts warn  test.log_text: something leaned over request_id=... what=..."
  EXPECT_NE(lines[0].find("warn"), std::string::npos);
  EXPECT_NE(lines[0].find("test.log_text"), std::string::npos);
  EXPECT_NE(lines[0].find("something leaned over"), std::string::npos);
  EXPECT_NE(lines[0].find("request_id=req-text-1"), std::string::npos);
  EXPECT_NE(lines[0].find("depth=32"), std::string::npos);
}
