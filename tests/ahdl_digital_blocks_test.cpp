// Comparator, sample-and-hold, frequency divider — plus a synthesiser PLL
// that combines them (the tuner's channel-select PLL of Fig. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/blocks.h"
#include "ahdl/system.h"
#include "util/error.h"
#include "util/numeric.h"

namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

TEST(Comparator, ThresholdAndLevels) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 1.0);
  sys.add<ah::Comparator>({"in"}, {"out"}, "cmp", 0.0, 0.0, -1.0, 1.0);
  sys.probe("out");
  const auto res = sys.run(4e-6, 64e6);
  for (double v : res.trace("out"))
    EXPECT_TRUE(v == -1.0 || v == 1.0);
  // Roughly half the time high.
  int high = 0;
  for (double v : res.trace("out"))
    if (v > 0) ++high;
  EXPECT_NEAR(high, static_cast<int>(res.time.size()) / 2,
              static_cast<int>(res.time.size()) / 8);
}

TEST(Comparator, HysteresisRejectsSmallNoise) {
  // A small ripple around the threshold must not toggle a comparator
  // whose hysteresis exceeds the ripple.
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 0.05);  // 0.1 Vpp ripple
  sys.add<ah::Comparator>({"in"}, {"out"}, "cmp", 0.0, 0.3);
  sys.probe("out");
  const auto res = sys.run(4e-6, 64e6);
  const auto& out = res.trace("out");
  for (size_t k = 1; k < out.size(); ++k)
    EXPECT_EQ(out[k], out[0]);  // never toggles
}

TEST(Comparator, RejectsNegativeHysteresis) {
  EXPECT_THROW(ah::Comparator("c", 0.0, -0.1), ahfic::Error);
}

TEST(SampleHold, CapturesOnRisingEdge) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"sig"}, "src", 1e6, 1.0);
  // Sampling clock: 8 MHz square from a comparator on a sine.
  sys.add<ah::SineSource>({}, {"cksin"}, "cks", 8e6, 1.0);
  sys.add<ah::Comparator>({"cksin"}, {"clk"}, "ckc", 0.0, 0.0, 0.0, 1.0);
  sys.add<ah::SampleHold>({"sig", "clk"}, {"held"}, "sh");
  sys.probe("sig");
  sys.probe("held");
  const auto res = sys.run(4e-6, 256e6);
  // The held value is piecewise constant: between clock edges it does not
  // move, and every held value equals some recent signal value.
  const auto& held = res.trace("held");
  int changes = 0;
  for (size_t k = 1; k < held.size(); ++k)
    if (held[k] != held[k - 1]) ++changes;
  // ~8 MHz sampling over 4 us -> ~32 captures.
  EXPECT_NEAR(changes, 32, 4);
  for (double v : held) EXPECT_LE(std::fabs(v), 1.0 + 1e-9);
}

TEST(FrequencyDivider, DividesByN) {
  for (int n : {2, 4, 10}) {
    ah::System sys;
    sys.add<ah::SineSource>({}, {"in"}, "src", 10e6, 1.0);
    sys.add<ah::FrequencyDivider>({"in"}, {"out"}, "div", n);
    sys.probe("out");
    const auto res = sys.run(20e-6, 320e6);
    const auto f = u::oscillationFrequency(res.time, res.trace("out"));
    ASSERT_TRUE(f.has_value()) << n;
    EXPECT_NEAR(*f, 10e6 / n, 10e6 / n * 0.05) << n;
  }
}

TEST(FrequencyDivider, RejectsOddRatios) {
  EXPECT_THROW(ah::FrequencyDivider("d", 3), ahfic::Error);
  EXPECT_THROW(ah::FrequencyDivider("d", 0), ahfic::Error);
}

TEST(SynthesizerPll, LocksToReferenceTimesN) {
  // The tuner's channel-select PLL: VCO output divided by N and phase
  // compared against a crystal reference; lock puts the VCO at N * fref.
  const int n = 4;
  const double fRef = 2.5e6;  // VCO target: 10 MHz
  ah::System sys;
  sys.add<ah::SineSource>({}, {"ref"}, "ref", fRef, 1.0);
  sys.add<ah::Mixer>({"ref", "fbq"}, {"pd"}, "pd", 1.0);
  sys.add<ah::FilterBlock>({"pd"}, {"pdf"}, "lpf",
                           ah::FilterBlock::Kind::kLowpass, 1, 0.3e6);
  sys.add<ah::Amplifier>({"pdf"}, {"prop"}, "kp", 3.0);
  sys.add<ah::IntegratorBlock>({"pdf"}, {"integ"}, "ki", 3e6);
  sys.add<ah::Adder>({"prop", "integ"}, {"ctl"}, "sum", 2);
  sys.add<ah::Vco>({"ctl"}, {"vs", "vq"}, "vco", 9.4e6, 1e6);
  // Feedback path: divide the VCO by N, then a 90-degree-ish reference
  // for the multiplier PD (divider output is already +-1 square).
  sys.add<ah::FrequencyDivider>({"vs"}, {"fb"}, "divN", n);
  sys.add<ah::PhaseShifter90>({"fb"}, {"fbq"}, "fbps", fRef);
  sys.probe("vs");

  const double fs = 400e6;
  const auto res = sys.run(120e-6, fs, 90e-6);
  const auto f = u::oscillationFrequency(res.time, res.trace("vs"));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, n * fRef, 0.05e6);  // locked at N * fref = 10 MHz
}
