// Fig. 11 ring oscillator: construction, oscillation, and the Table 1
// shape ordering.

#include <gtest/gtest.h>

#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "spice/analysis.h"
#include "util/error.h"

namespace bg = ahfic::bjtgen;
namespace sp = ahfic::spice;

namespace {
bg::RingOscillatorSpec defaultSpec() {
  static bg::ModelGenerator gen =
      bg::ModelGenerator::withDefaultTechnology();
  bg::RingOscillatorSpec spec;
  spec.diffPairModel = gen.generate("N1.2-12D");
  spec.followerModel = gen.generate("N1.2-6D");
  return spec;
}
}  // namespace

TEST(RingOscillator, BuildsExpectedDeviceCount) {
  sp::Circuit ckt;
  const auto nodes = buildRingOscillator(ckt, defaultSpec());
  // Per stage: 2 loads + 2 follower loads + 2 diff + 2 followers + 1 tail
  // = 9 devices; plus VCC and the kick source.
  EXPECT_EQ(ckt.devices().size(), 5u * 9u + 2u);
  EXPECT_NE(ckt.findNode(nodes.output), -1);
  EXPECT_NE(ckt.findDevice("Qd1_0"), nullptr);
  EXPECT_NE(ckt.findDevice("Qf2_4"), nullptr);
}

TEST(RingOscillator, DcOperatingPointIsEclLike) {
  sp::Circuit ckt;
  const auto spec = defaultSpec();
  buildRingOscillator(ckt, spec);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  // Balanced OP: collector nodes sit one half-swing below VCC.
  const double vc = s.at(ckt.findNode("cp0"));
  const double expected =
      spec.vcc - spec.collectorLoad * spec.tailCurrent / 2.0;
  EXPECT_NEAR(vc, expected, 0.15);
  // Follower outputs one Vbe below that.
  const double vf = s.at(ckt.findNode("fp0"));
  EXPECT_NEAR(vc - vf, 0.8, 0.15);
}

TEST(RingOscillator, OscillatesAtGhz) {
  const auto m = bg::measureRingFrequency(defaultSpec(), 8.0, 3.0);
  EXPECT_TRUE(m.oscillating);
  EXPECT_GT(m.frequency, 0.8e9);
  EXPECT_LT(m.frequency, 4.0e9);
  EXPECT_GT(m.peakToPeak, 0.3);
}

TEST(RingOscillator, Table1WinnerIsN12_12D) {
  // The paper's conclusion: "the best shape for the transistors was
  // N1.2-12D". Compare the winner against the single-base baseline and
  // one same-area-factor alternative.
  static bg::ModelGenerator gen =
      bg::ModelGenerator::withDefaultTechnology();
  auto freqFor = [&](const char* shape) {
    auto spec = defaultSpec();
    spec.diffPairModel = gen.generate(shape);
    const auto m = bg::measureRingFrequency(spec, 8.0, 3.0);
    EXPECT_TRUE(m.oscillating) << shape;
    return m.frequency;
  };
  const double f12d = freqFor("N1.2-12D");
  EXPECT_GT(f12d, freqFor("N1.2-6S"));
  EXPECT_GT(f12d, freqFor("N2.4-6D"));
  EXPECT_GT(f12d, freqFor("N1.2x2-6S"));
}

TEST(RingOscillator, SingleBaseIsClearlySlower) {
  static bg::ModelGenerator gen =
      bg::ModelGenerator::withDefaultTechnology();
  auto spec = defaultSpec();
  spec.diffPairModel = gen.generate("N1.2-6S");
  const auto slow = bg::measureRingFrequency(spec, 10.0, 4.0);
  spec.diffPairModel = gen.generate("N1.2-12D");
  const auto fast = bg::measureRingFrequency(spec, 8.0, 3.0);
  ASSERT_TRUE(slow.oscillating);
  ASSERT_TRUE(fast.oscillating);
  EXPECT_GT(fast.frequency / slow.frequency, 1.5);
}

TEST(RingOscillator, SpecValidation) {
  sp::Circuit ckt;
  auto spec = defaultSpec();
  spec.stages = 4;  // even: no net inversion
  EXPECT_THROW(buildRingOscillator(ckt, spec), ahfic::Error);
  spec.stages = 1;
  EXPECT_THROW(buildRingOscillator(ckt, spec), ahfic::Error);
  spec = defaultSpec();
  spec.tailCurrent = 0.0;
  EXPECT_THROW(buildRingOscillator(ckt, spec), ahfic::Error);
}

TEST(RingOscillator, ThreeStageVariantAlsoOscillates) {
  auto spec = defaultSpec();
  spec.stages = 3;
  const auto m = bg::measureRingFrequency(spec, 8.0, 3.0);
  EXPECT_TRUE(m.oscillating);
  // Fewer stages -> higher frequency.
  const auto five = bg::measureRingFrequency(defaultSpec(), 8.0, 3.0);
  EXPECT_GT(m.frequency, five.frequency);
}
