// Cell-as-subcircuit integration: checked-out cells splice into host
// circuits through the .SUBCKT machinery.

#include <gtest/gtest.h>

#include "celldb/database.h"
#include "celldb/seed.h"
#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/parser.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace cd = ahfic::celldb;
namespace sp = ahfic::spice;

TEST(CellInstantiate, EmitterFollowerCellInHostCircuit) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const cd::Cell ef = db.checkout("TV", "EF1");
  ASSERT_EQ(ef.ports.size(), 2u);

  sp::Circuit ckt;
  ckt.add<sp::VSource>("VDRIVE", ckt.node("sig"), 0, 3.0);
  cd::instantiateCell(ckt, ef, "Xef", {"sig", "buffered"});
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  // One Vbe below the 3 V drive.
  EXPECT_NEAR(s.at(ckt.findNode("buffered")), 3.0 - 0.78, 0.1);
  // Hierarchical device naming.
  EXPECT_NE(ckt.findDevice("Xef.Q1"), nullptr);
}

TEST(CellInstantiate, TwoInstancesCoexist) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const cd::Cell ef = db.checkout("TV", "EF1");

  sp::Circuit ckt;
  ckt.add<sp::VSource>("VDRIVE", ckt.node("sig"), 0, 3.5);
  cd::instantiateCell(ckt, ef, "Xa", {"sig", "o1"});
  cd::instantiateCell(ckt, ef, "Xb", {"o1", "o2"});
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  // Cascaded followers: roughly two Vbe drops.
  EXPECT_NEAR(s.at(ckt.findNode("o2")), 3.5 - 1.55, 0.2);
}

TEST(CellInstantiate, DifferentialCellPorts) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const cd::Cell acc = db.checkout("TV", "ACC1");
  ASSERT_EQ(acc.ports.size(), 4u);

  sp::Circuit ckt;
  ckt.add<sp::VSource>("VB1", ckt.node("p"), 0, 2.0);
  ckt.add<sp::VSource>("VB2", ckt.node("n"), 0, 2.0);
  cd::instantiateCell(ckt, acc, "Xacc", {"p", "n", "outp", "outn"});
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  // Balanced: both collector outputs sit at Vcc - R*I/2 = 8 - 1 = 7 V.
  EXPECT_NEAR(s.at(ckt.findNode("outp")), 7.0, 0.2);
  EXPECT_NEAR(s.at(ckt.findNode("outp")), s.at(ckt.findNode("outn")),
              1e-6);
}

TEST(CellInstantiate, PortsSurvivepersistence) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const auto db2 = cd::CellDatabase::fromText(db.toText());
  const cd::Cell* ef = db2.find("TV", "EF1");
  ASSERT_NE(ef, nullptr);
  ASSERT_EQ(ef->ports.size(), 2u);
  EXPECT_EQ(ef->ports[0], "in");
  EXPECT_EQ(ef->ports[1], "out");
}

TEST(CellInstantiate, OtaCellHasOpenLoopGain) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const cd::Cell ota = db.checkout("TVR", "OTA1");
  ASSERT_EQ(ota.ports.size(), 3u);

  sp::Circuit ckt;
  ckt.add<sp::VSource>("VINP", ckt.node("p"), 0, 4.0, /*acMag=*/1.0);
  ckt.add<sp::VSource>("VINN", ckt.node("n"), 0, 4.0);
  cd::instantiateCell(ckt, ota, "Xota", {"p", "n", "vout"});
  sp::Analyzer an(ckt);
  const auto op = an.op();
  const auto ac = an.ac({10e3}, op);
  const double gain =
      std::abs(ac.voltage(0, ckt.findNode("vout")));
  EXPECT_GT(gain, 100.0);  // > 40 dB open-loop
}

TEST(CellInstantiate, Validation) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  sp::Circuit ckt;

  // No ports declared.
  const cd::Cell noPorts = db.checkout("TV", "ACC2");
  EXPECT_THROW(cd::instantiateCell(ckt, noPorts, "X1", {"a", "b"}),
               ahfic::Error);
  // Arity mismatch.
  const cd::Cell ef = db.checkout("TV", "EF1");
  EXPECT_THROW(cd::instantiateCell(ckt, ef, "X2", {"a"}), ahfic::Error);
  // Instance name must start with X (it becomes a subcircuit call).
  EXPECT_THROW(cd::instantiateCell(ckt, ef, "bad", {"a", "b"}),
               ahfic::Error);
}
