// JSON value: build/serialize/parse round trips, escaping, and the
// malformed-input failure modes the cache loader depends on.

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/json.h"

namespace u = ahfic::util;

TEST(Json, BuildAndAccess) {
  u::JsonValue doc = u::JsonValue::object();
  doc.set("name", "runner");
  doc.set("threads", 4);
  doc.set("enabled", true);
  doc.set("ratio", 0.5);
  u::JsonValue arr = u::JsonValue::array();
  arr.push(1.0);
  arr.push("two");
  doc.set("list", std::move(arr));

  EXPECT_EQ(doc.get("name").asString(), "runner");
  EXPECT_EQ(doc.get("threads").asNumber(), 4.0);
  EXPECT_TRUE(doc.get("enabled").asBool());
  EXPECT_EQ(doc.get("list").size(), 2u);
  EXPECT_EQ(doc.get("list").at(1).asString(), "two");
  // Missing keys read as null without throwing; chaining stays safe.
  EXPECT_TRUE(doc.get("absent").isNull());
  EXPECT_TRUE(doc.get("absent").get("deeper").isNull());
  // Type mismatches throw.
  EXPECT_THROW(doc.get("name").asNumber(), ahfic::Error);
}

TEST(Json, RoundTripPreservesValuesAndKeyOrder) {
  u::JsonValue doc = u::JsonValue::object();
  doc.set("zeta", 1);
  doc.set("alpha", -2.5e-12);
  doc.set("text", "line1\nline2\t\"quoted\" back\\slash");
  doc.set("big", 1234567890123.0);
  doc.set("nothing", u::JsonValue());

  const std::string compact = doc.dump();
  const std::string pretty = doc.dump(2);
  for (const std::string& text : {compact, pretty}) {
    const u::JsonValue back = u::parseJson(text);
    EXPECT_EQ(back.get("zeta").asNumber(), 1.0);
    EXPECT_EQ(back.get("alpha").asNumber(), -2.5e-12);
    EXPECT_EQ(back.get("text").asString(),
              "line1\nline2\t\"quoted\" back\\slash");
    EXPECT_EQ(back.get("big").asNumber(), 1234567890123.0);
    EXPECT_TRUE(back.get("nothing").isNull());
    // Insertion order survives the trip (manifest readability).
    ASSERT_EQ(back.keys().size(), 5u);
    EXPECT_EQ(back.keys()[0], "zeta");
    EXPECT_EQ(back.keys()[1], "alpha");
  }
}

TEST(Json, ParsesNestedDocumentsAndEscapes) {
  const auto v = u::parseJson(
      R"({"a": [1, 2.5, -3e2, true, false, null, "xAy"],)"
      R"( "b": {"c": []}})");
  EXPECT_EQ(v.get("a").size(), 7u);
  EXPECT_EQ(v.get("a").at(2).asNumber(), -300.0);
  EXPECT_FALSE(v.get("a").at(4).asBool());
  EXPECT_EQ(v.get("a").at(6).asString(), "xAy");
  EXPECT_TRUE(v.get("b").get("c").isArray());
  EXPECT_EQ(v.get("b").get("c").size(), 0u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(u::parseJson(""), ahfic::ParseError);
  EXPECT_THROW(u::parseJson("{"), ahfic::ParseError);
  EXPECT_THROW(u::parseJson("{\"a\": }"), ahfic::ParseError);
  EXPECT_THROW(u::parseJson("[1, 2,]"), ahfic::ParseError);
  EXPECT_THROW(u::parseJson("{} extra"), ahfic::ParseError);
  EXPECT_THROW(u::parseJson("\"unterminated"), ahfic::ParseError);
  EXPECT_THROW(u::parseJson("truthy"), ahfic::ParseError);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  u::JsonValue doc = u::JsonValue::object();
  doc.set("inf", 1.0 / 0.0);
  const auto back = u::parseJson(doc.dump());
  EXPECT_TRUE(back.get("inf").isNull());
}
