// Behavioural engine and standard block library tests.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/blocks.h"
#include "ahdl/system.h"
#include "util/error.h"
#include "util/fft.h"
#include "util/units.h"

namespace ah = ahfic::ahdl;
namespace u = ahfic::util;
using u::constants::kTwoPi;

TEST(AhdlSystem, SineSourceProducesExactTone) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"out"}, "s1", 10e6, 0.5);
  sys.probe("out");
  const auto res = sys.run(10e-6, 320e6);
  const double amp = u::toneAmplitude(res.trace("out"), 320e6, 10e6);
  EXPECT_NEAR(amp, 0.5, 0.01);
}

TEST(AhdlSystem, AmplifierGainAndCompression) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "s1", 1e6, 1.0);
  sys.add<ah::Amplifier>({"in"}, {"lin"}, "a1", 3.0);
  sys.add<ah::Amplifier>({"in"}, {"sat"}, "a2", 10.0, /*vsat=*/1.0);
  sys.probe("lin");
  sys.probe("sat");
  const auto res = sys.run(4e-6, 64e6);
  double maxLin = 0.0, maxSat = 0.0;
  for (double v : res.trace("lin")) maxLin = std::max(maxLin, v);
  for (double v : res.trace("sat")) maxSat = std::max(maxSat, v);
  EXPECT_NEAR(maxLin, 3.0, 0.02);
  EXPECT_LE(maxSat, 1.0 + 1e-9);  // tanh limit
  EXPECT_GT(maxSat, 0.9);
}

TEST(AhdlSystem, MixerProducesSumAndDifference) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"a"}, "s1", 30e6, 1.0);
  sys.add<ah::SineSource>({}, {"b"}, "s2", 70e6, 1.0);
  sys.add<ah::Mixer>({"a", "b"}, {"out"}, "m1", 2.0);
  sys.probe("out");
  const double fs = 1e9;
  const auto res = sys.run(8e-6, fs);
  EXPECT_NEAR(u::toneAmplitude(res.trace("out"), fs, 40e6), 1.0, 0.02);
  EXPECT_NEAR(u::toneAmplitude(res.trace("out"), fs, 100e6), 1.0, 0.02);
  EXPECT_LT(u::toneAmplitude(res.trace("out"), fs, 30e6), 0.02);
}

TEST(AhdlSystem, AdderWeights) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"a"}, "d1", 2.0);
  sys.add<ah::DcSource>({}, {"b"}, "d2", 5.0);
  sys.add<ah::Adder>({"a", "b"}, {"sum"}, "add",
                     std::vector<double>{1.0, -1.0});
  sys.probe("sum");
  const auto res = sys.run(1e-6, 10e6);
  EXPECT_DOUBLE_EQ(res.trace("sum").back(), -3.0);
}

TEST(AhdlSystem, QuadratureOscillatorPhases) {
  ah::System sys;
  sys.add<ah::QuadratureOscillator>({}, {"i", "q"}, "lo", 5e6, 1.0);
  sys.probe("i");
  sys.probe("q");
  const double fs = 640e6;
  const auto res = sys.run(2e-6, fs);
  // i = cos, q = sin: i leads q by 90 degrees; i^2 + q^2 = 1.
  const auto& i = res.trace("i");
  const auto& q = res.trace("q");
  for (size_t k = 0; k < i.size(); k += 37)
    EXPECT_NEAR(i[k] * i[k] + q[k] * q[k], 1.0, 1e-9);
  EXPECT_NEAR(i[0], 1.0, 1e-12);  // cos(0)
  EXPECT_NEAR(q[0], 0.0, 1e-12);  // sin(0)
}

TEST(AhdlSystem, QuadratureImpairments) {
  ah::System sys;
  sys.add<ah::QuadratureOscillator>({}, {"i", "q"}, "lo", 5e6, 1.0,
                                    /*phaseErrorDeg=*/0.0,
                                    /*gainImbalance=*/0.1);
  sys.probe("q");
  const double fs = 640e6;
  const auto res = sys.run(2e-6, fs);
  EXPECT_NEAR(u::toneAmplitude(res.trace("q"), fs, 5e6), 1.1, 0.01);
}

TEST(AhdlSystem, PhaseShifter90ShiftsQuarterPeriod) {
  ah::System sys;
  const double f0 = 45e6;
  sys.add<ah::SineSource>({}, {"in"}, "src", f0, 1.0);
  sys.add<ah::PhaseShifter90>({"in"}, {"out"}, "ps", f0);
  sys.probe("in");
  sys.probe("out");
  const double fs = 7.2e9;  // 160 samples per period
  const auto res = sys.run(1e-6, fs, 0.2e-6);
  // out(t) = sin(w(t - T/4)) = -cos(wt): correlate to verify.
  const auto& in = res.trace("in");
  const auto& out = res.trace("out");
  double dot = 0.0, ref = 0.0;
  for (size_t k = 0; k < in.size(); ++k) {
    const double t = res.time[k];
    dot += out[k] * (-std::cos(kTwoPi * f0 * t));
    ref += std::cos(kTwoPi * f0 * t) * std::cos(kTwoPi * f0 * t);
  }
  EXPECT_NEAR(dot / ref, 1.0, 0.01);
}

TEST(AhdlSystem, PhaseShifterRejectsLowSampleRate) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 45e6, 1.0);
  sys.add<ah::PhaseShifter90>({"in"}, {"out"}, "ps", 45e6);
  sys.probe("out");
  EXPECT_THROW(sys.run(1e-6, 100e6), ahfic::Error);
}

TEST(AhdlSystem, NoiseSourceIsDeterministicPerSeed) {
  auto runOnce = [] {
    ah::System sys;
    sys.add<ah::NoiseSource>({}, {"n"}, "n1", 0.5, 42);
    sys.probe("n");
    return sys.run(1e-6, 100e6).trace("n");
  };
  const auto a = runOnce();
  const auto b = runOnce();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  // Sane statistics.
  double s2 = 0.0;
  for (double v : a) s2 += v * v;
  EXPECT_NEAR(s2 / static_cast<double>(a.size()), 0.25, 0.05);
}

TEST(AhdlSystem, LimiterClamps) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 2.0);
  sys.add<ah::Limiter>({"in"}, {"out"}, "lim", 0.5);
  sys.probe("out");
  const auto res = sys.run(4e-6, 64e6);
  for (double v : res.trace("out")) {
    EXPECT_LE(v, 0.5);
    EXPECT_GE(v, -0.5);
  }
}

TEST(AhdlSystem, AttenuatorDb) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 1.0);
  sys.add<ah::AttenuatorDb>({"in"}, {"out"}, "att", -20.0);
  sys.probe("out");
  const double fs = 64e6;
  const auto res = sys.run(8e-6, fs);
  EXPECT_NEAR(u::toneAmplitude(res.trace("out"), fs, 1e6), 0.1, 0.005);
}

TEST(AhdlSystem, ArityMismatchRejected) {
  ah::System sys;
  EXPECT_THROW(sys.add<ah::Mixer>({"a"}, {"out"}, "m1", 1.0),
               ahfic::Error);
  EXPECT_THROW(sys.add<ah::SineSource>({}, {"o1", "o2"}, "s", 1e6, 1.0),
               ahfic::Error);
}

TEST(AhdlSystem, ProbeOfMissingSignalRejected) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"a"}, "d1", 1.0);
  sys.probe("nonexistent");
  EXPECT_THROW(sys.run(1e-6, 1e6), ahfic::Error);
}

TEST(AhdlSystem, UnprobedTraceRejected) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"a"}, "d1", 1.0);
  sys.probe("a");
  const auto res = sys.run(1e-6, 1e6);
  EXPECT_THROW(res.trace("a_typo"), ahfic::Error);
  EXPECT_NO_THROW(res.trace("a"));
}

TEST(AhdlSystem, RecordFromDiscardsSettling) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"a"}, "d1", 1.0);
  sys.probe("a");
  const auto res = sys.run(1e-6, 100e6, 0.5e-6);
  EXPECT_GE(res.time.front(), 0.5e-6);
  EXPECT_NEAR(static_cast<double>(res.time.size()), 50.0, 2.0);
}

TEST(AhdlFilter, ButterworthLowpassResponse) {
  const double fs = 1e9;
  for (int order : {1, 2, 3, 4, 5}) {
    auto f = ah::butterworthLowpass(order, 50e6, fs);
    EXPECT_NEAR(f.magnitudeAt(1e6, fs), 1.0, 0.01) << order;
    EXPECT_NEAR(f.magnitudeAt(50e6, fs), std::sqrt(0.5), 0.02) << order;
    // One decade above: -20*order dB (bilinear warping helps, so >=).
    const double db = 20.0 * std::log10(f.magnitudeAt(500e6 * 0.9, fs));
    EXPECT_LT(db, -18.0 * order) << order;
  }
}

TEST(AhdlFilter, ButterworthHighpassResponse) {
  const double fs = 1e9;
  auto f = ah::butterworthHighpass(3, 50e6, fs);
  EXPECT_NEAR(f.magnitudeAt(250e6, fs), 1.0, 0.02);
  EXPECT_NEAR(f.magnitudeAt(50e6, fs), std::sqrt(0.5), 0.02);
  EXPECT_LT(f.magnitudeAt(5e6, fs), 0.01);
}

TEST(AhdlFilter, BandpassPassesBandOnly) {
  const double fs = 8e9;
  auto f = ah::butterworthBandpass(3, 1.1e9, 1.5e9, fs);
  // HP+LP cascade: overlapping skirts cost a couple of dB at mid-band,
  // which is fine for the tuner's wide IF filter.
  EXPECT_GT(f.magnitudeAt(1.3e9, fs), 0.7);
  EXPECT_LE(f.magnitudeAt(1.3e9, fs), 1.0);
  EXPECT_LT(f.magnitudeAt(45e6, fs), 0.01);
  EXPECT_LT(f.magnitudeAt(3.5e9, fs), 0.02);
  // Out-of-band rejection is symmetric-ish: an octave out on either side
  // is far below mid-band.
  EXPECT_LT(f.magnitudeAt(0.55e9, fs), 0.12);
  EXPECT_LT(f.magnitudeAt(3.0e9, fs), 0.12);
}

TEST(AhdlFilter, DesignRejectsBadArguments) {
  EXPECT_THROW(ah::butterworthLowpass(0, 1e6, 1e9), ahfic::Error);
  EXPECT_THROW(ah::butterworthLowpass(3, 6e8, 1e9), ahfic::Error);
  EXPECT_THROW(ah::butterworthBandpass(3, 5e6, 4e6, 1e9), ahfic::Error);
}

TEST(AhdlFilter, TimeDomainMatchesMagnitudeResponse) {
  // Drive the filter block with a tone and compare the measured gain with
  // magnitudeAt.
  const double fs = 1e9;
  const double f0 = 80e6;
  auto chain = ah::butterworthLowpass(4, 60e6, fs);
  const double expected = chain.magnitudeAt(f0, fs);
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", f0, 1.0);
  sys.add<ah::FilterBlock>({"in"}, {"out"}, "flt", std::move(chain));
  sys.probe("out");
  const auto res = sys.run(2e-6, fs, 0.5e-6);
  EXPECT_NEAR(u::toneAmplitude(res.trace("out"), fs, f0), expected,
              expected * 0.03);
}
