// Waveform unit tests.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/sources.h"
#include "util/error.h"
#include "util/units.h"

namespace sp = ahfic::spice;
using ahfic::util::constants::kTwoPi;

TEST(Waveform, DcIsConstant) {
  sp::DcWaveform w(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1e9), 3.3);
  EXPECT_DOUBLE_EQ(w.dcValue(), 3.3);
}

TEST(Waveform, SinBasics) {
  sp::SinWaveform w(1.0, 0.5, 1e6);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);
  EXPECT_NEAR(w.value(0.25e-6), 1.5, 1e-9);   // quarter period: peak
  EXPECT_NEAR(w.value(0.75e-6), 0.5, 1e-9);   // three quarters: trough
  EXPECT_DOUBLE_EQ(w.dcValue(), 1.0);
}

TEST(Waveform, SinDelayHoldsOffset) {
  sp::SinWaveform w(2.0, 1.0, 1e6, /*delay=*/1e-6);
  EXPECT_DOUBLE_EQ(w.value(0.5e-6), 2.0);
  EXPECT_NEAR(w.value(1e-6 + 0.25e-6), 3.0, 1e-9);
}

TEST(Waveform, SinDamping) {
  sp::SinWaveform w(0.0, 1.0, 1e6, 0.0, /*theta=*/1e6);
  const double t = 2.25e-6;
  EXPECT_NEAR(w.value(t), std::exp(-1e6 * t) * 1.0, 1e-9);
}

TEST(Waveform, SinRejectsBadFrequency) {
  EXPECT_THROW(sp::SinWaveform(0, 1, 0.0), ahfic::Error);
  EXPECT_THROW(sp::SinWaveform(0, 1, -5.0), ahfic::Error);
}

TEST(Waveform, PulseEdgesAndPeriodicity) {
  // 0->1, delay 1n, rise 1n, width 3n, fall 1n, period 10n.
  sp::PulseWaveform w(0.0, 1.0, 1e-9, 1e-9, 1e-9, 3e-9, 10e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(1.5e-9), 0.5, 1e-9);  // mid rise
  EXPECT_DOUBLE_EQ(w.value(3e-9), 1.0);     // flat top
  EXPECT_NEAR(w.value(5.5e-9), 0.5, 1e-9);  // mid fall
  EXPECT_DOUBLE_EQ(w.value(8e-9), 0.0);     // back to low
  // One period later the shape repeats.
  EXPECT_NEAR(w.value(11.5e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.dcValue(), 0.0);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  sp::PwlWaveform w({{0.0, 0.0}, {1e-9, 2.0}, {3e-9, -1.0}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_NEAR(w.value(0.5e-9), 1.0, 1e-12);
  EXPECT_NEAR(w.value(2e-9), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(10e-9), -1.0);
}

TEST(Waveform, PwlRejectsBadPoints) {
  EXPECT_THROW(sp::PwlWaveform({{0.0, 1.0}}), ahfic::Error);
  EXPECT_THROW(sp::PwlWaveform({{0.0, 1.0}, {0.0, 2.0}}), ahfic::Error);
  EXPECT_THROW(sp::PwlWaveform({{1.0, 1.0}, {0.5, 2.0}}), ahfic::Error);
}

TEST(Waveform, ExpRisesAndFalls) {
  sp::ExpWaveform w(0.0, 1.0, 0.0, 1e-9, 10e-9, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(1e-9), 1.0 - std::exp(-1.0), 1e-9);
  EXPECT_NEAR(w.value(5e-9), 1.0, 1e-2);
  EXPECT_LT(w.value(12e-9), w.value(9.9e-9));  // decaying after td2
}

TEST(Waveform, ExpRejectsBadTimeConstants) {
  EXPECT_THROW(sp::ExpWaveform(0, 1, 0, 0.0, 0, 1e-9), ahfic::Error);
}

TEST(Waveform, SffmIsFrequencyModulated) {
  sp::SffmWaveform w(0.0, 1.0, 100e6, 5.0, 1e6);
  // Bounded by the amplitude; value matches the closed form.
  for (double t : {0.0, 1e-9, 3.7e-8, 1e-7}) {
    EXPECT_LE(std::fabs(w.value(t)), 1.0);
    const double expected =
        std::sin(kTwoPi * 100e6 * t + 5.0 * std::sin(kTwoPi * 1e6 * t));
    EXPECT_NEAR(w.value(t), expected, 1e-12);
  }
  EXPECT_DOUBLE_EQ(w.dcValue(), 0.0);
  EXPECT_THROW(sp::SffmWaveform(0, 1, 0.0, 1, 1e6), ahfic::Error);
}

TEST(Waveform, AmEnvelopeModulates) {
  sp::AmWaveform w(2.0, 1.0, 1e6, 50e6);
  // Peak envelope 2*(1+1) = 4; never exceeds it.
  double peak = 0.0;
  for (double t = 0.0; t < 2e-6; t += 1e-9)
    peak = std::max(peak, std::fabs(w.value(t)));
  EXPECT_LE(peak, 4.0 + 1e-9);
  EXPECT_GT(peak, 3.5);
  EXPECT_DOUBLE_EQ(w.dcValue(), 0.0);
  EXPECT_THROW(sp::AmWaveform(1, 0, 0.0, 1e6), ahfic::Error);
}

TEST(SourceDevices, NullWaveformRejected) {
  EXPECT_THROW(sp::VSource("V1", 1, 0, nullptr), ahfic::Error);
  EXPECT_THROW(sp::ISource("I1", 1, 0, nullptr), ahfic::Error);
}
