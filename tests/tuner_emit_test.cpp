// The emitted AHDL netlist of the Fig. 4 chain must reproduce the
// programmatic chain's image rejection — text and C++ views agree.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/lang.h"
#include "tuner/emit_ahdl.h"
#include "tuner/irr.h"
#include "util/fft.h"

namespace tn = ahfic::tuner;
namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

namespace {

/// IRR measured by running the *emitted* netlist twice.
double irrFromEmittedNetlist(const tn::ImageRejectImpairments& imp) {
  tn::FrequencyPlan plan;
  auto ampOf = [&](bool imageOnly) {
    tn::AhdlEmitOptions opt;
    opt.imageOnly = imageOnly;
    auto nl = ah::parseAhdl(tn::emitImageRejectAhdl(plan, imp, opt));
    const auto res = nl.run();
    return u::toneAmplitude(res.trace("ifout"), opt.sampleRate, plan.if2);
  };
  return 20.0 * std::log10(ampOf(false) / ampOf(true));
}

}  // namespace

TEST(EmitAhdl, NetlistParses) {
  tn::FrequencyPlan plan;
  tn::ImageRejectImpairments imp;
  imp.loPhaseErrorDeg = 2.0;
  imp.gainImbalance = 0.03;
  const std::string text = tn::emitImageRejectAhdl(plan, imp);
  EXPECT_NE(text.find("quadlo"), std::string::npos);
  EXPECT_NE(text.find("phase_error=2"), std::string::npos);
  EXPECT_NO_THROW(ah::parseAhdl(text));
}

class EmitIrrTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EmitIrrTest, EmittedNetlistMatchesAnalytic) {
  const auto [phi, g] = GetParam();
  tn::ImageRejectImpairments imp;
  imp.loPhaseErrorDeg = phi;
  imp.gainImbalance = g;
  const double emitted = irrFromEmittedNetlist(imp);
  const double analytic = tn::analyticImageRejectionDb(phi, g);
  EXPECT_NEAR(emitted, analytic, 1.5) << "phi=" << phi << " g=" << g;
}

INSTANTIATE_TEST_SUITE_P(Corners, EmitIrrTest,
                         ::testing::Values(std::make_tuple(1.0, 0.01),
                                           std::make_tuple(4.0, 0.05),
                                           std::make_tuple(8.0, 0.09)));

TEST(EmitAhdl, ShifterErrorFlowsThrough) {
  tn::ImageRejectImpairments ifErr;
  ifErr.ifPhaseErrorDeg = 5.0;
  const double emitted = irrFromEmittedNetlist(ifErr);
  EXPECT_NEAR(emitted, tn::analyticImageRejectionDb(5.0, 0.0), 2.0);
}
