#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace u = ahfic::util;

TEST(Table, AlignsColumns) {
  u::Table t({"Name", "Value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22222"});
  const std::string s = t.toString();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  u::Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), ahfic::Error);
  EXPECT_THROW(u::Table({}), ahfic::Error);
}

TEST(Table, CsvQuotesSpecialFields) {
  u::Table t({"k", "v"});
  t.addRow({"with,comma", "with\"quote"});
  std::ostringstream ss;
  t.printCsv(ss);
  const std::string s = ss.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, FixedFormatsDecimals) {
  EXPECT_EQ(u::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(u::fixed(-1.0, 1), "-1.0");
  EXPECT_EQ(u::fixed(2.0, 0), "2");
}
