// Runner diagnostics integration: per-attempt "ahfic-diag-v1" report
// attachments on retried/exhausted jobs, the diagnostics switch, and the
// rejected-vs-failed terminal counters in batch-window metrics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/netlist.h"
#include "obs/metrics.h"
#include "runner/engine.h"
#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/forensics.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace rn = ahfic::runner;
namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

/// A job whose op() genuinely fails at every rung: node "b" hangs off
/// capacitors only, so the DC matrix is singular no matter the options.
rn::Job floatingNodeJob(const std::string& key) {
  rn::Job job;
  job.key = key;
  job.run = [](rn::JobContext& ctx) {
    sp::Circuit ckt;
    const int in = ckt.node("in"), a = ckt.node("a"), b = ckt.node("b");
    ckt.add<sp::VSource>("V1", in, 0, 1.0);
    ckt.add<sp::Resistor>("R1", in, a, 1e3);
    ckt.add<sp::Capacitor>("C1", a, b, 1e-12);
    ckt.add<sp::Capacitor>("C2", b, 0, 1e-12);
    sp::Analyzer an(ckt, ctx.options);
    an.op();
    return rn::JobResult{};
  };
  return job;
}

/// Converges only with a full Newton budget (see runner_test.cpp): rung 0
/// of the strangled ladder fails, rung 1 recovers.
rn::Job hardOpJob(const std::string& key) {
  rn::Job job;
  job.key = key;
  job.run = [](rn::JobContext& ctx) {
    sp::Circuit ckt;
    const int c = ckt.node("c"), b = ckt.node("b");
    ckt.add<sp::VSource>("VB", b, 0, 0.85);
    ckt.add<sp::VSource>("VC", c, 0, 2.0);
    ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, sp::BjtModel{});
    sp::Analyzer an(ckt, ctx.options);
    an.op();
    return rn::JobResult{};
  };
  return job;
}

rn::RetryLadder twoRungLadder() {
  sp::AnalysisOptions strangled;
  strangled.maxNewtonIters = 1;
  return rn::RetryLadder(
      {{"strangled", strangled}, {"standard", sp::AnalysisOptions{}}});
}

}  // namespace

TEST(RunnerDiag, ExhaustedJobCarriesOneReportPerAttempt) {
  rn::RunnerOptions opts;
  opts.threads = 1;
  opts.useCache = false;
  opts.ladder = twoRungLadder();
  rn::BatchRunner runner(opts);
  const auto batch = runner.run({floatingNodeJob("floating")});

  const auto& rec = batch.outcomes[0].record;
  EXPECT_EQ(rec.status, rn::JobStatus::kFailed);
  EXPECT_EQ(rec.attempts, 2);
  ASSERT_TRUE(rec.diags.isArray());
  ASSERT_EQ(rec.diags.size(), 2u);
  for (size_t k = 0; k < rec.diags.size(); ++k) {
    const auto& entry = rec.diags.at(k);
    EXPECT_EQ(entry.get("rung").asNumber(), static_cast<double>(k));
    const auto reports = sp::diagReportsFromJson(entry.get("report"));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].analysis, "op");
    EXPECT_FALSE(reports[0].trail.empty());
    ASSERT_FALSE(reports[0].nodes.empty());
    EXPECT_EQ(reports[0].nodes[0].name, "V(b)");
  }
  EXPECT_EQ(rec.diags.at(0).get("rungName").asString(), "strangled");
  EXPECT_EQ(rec.diags.at(1).get("rungName").asString(), "standard");

  // The attachments survive the manifest's JSON round trip.
  const auto doc = u::parseJson(batch.manifest.toJsonString());
  const auto& j = doc.get("jobs").at(0);
  ASSERT_TRUE(j.has("diags"));
  EXPECT_EQ(j.get("diags").size(), 2u);
  EXPECT_EQ(j.get("diags").at(0).get("report").get("schema").asString(),
            "ahfic-diag-v1");
}

TEST(RunnerDiag, RecoveredJobKeepsItsFailedAttemptReport) {
  rn::RunnerOptions opts;
  opts.threads = 1;
  opts.useCache = false;
  opts.ladder = twoRungLadder();
  rn::BatchRunner runner(opts);
  const auto batch = runner.run({hardOpJob("hard-op")});

  const auto& rec = batch.outcomes[0].record;
  EXPECT_EQ(rec.status, rn::JobStatus::kRecovered);
  ASSERT_TRUE(rec.diags.isArray());
  ASSERT_EQ(rec.diags.size(), 1u);  // only the strangled attempt failed
  EXPECT_EQ(rec.diags.at(0).get("rungName").asString(), "strangled");
  const auto reports =
      sp::diagReportsFromJson(rec.diags.at(0).get("report"));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].totalIterations, 0);
}

TEST(RunnerDiag, DiagnosticsSwitchOffAttachesNothing) {
  rn::RunnerOptions opts;
  opts.threads = 1;
  opts.useCache = false;
  opts.diagnostics = false;
  opts.ladder = twoRungLadder();
  rn::BatchRunner runner(opts);
  const auto batch = runner.run({floatingNodeJob("floating")});

  const auto& rec = batch.outcomes[0].record;
  EXPECT_EQ(rec.status, rn::JobStatus::kFailed);
  EXPECT_FALSE(rec.diags.isArray());
  EXPECT_FALSE(u::parseJson(batch.manifest.toJsonString())
                   .get("jobs")
                   .at(0)
                   .has("diags"));
}

TEST(RunnerDiag, RejectedAndFailedAreDistinguishableInMetrics) {
  obs::metrics().resetForTest();
  obs::setMetricsEnabled(true);
  const auto before = obs::metrics().snapshot();

  // One statically-doomed job (lint pre-flight rejects it), one
  // dynamically-failing job (every solver rung exhausts), one good job.
  rn::Job doomed;
  doomed.key = "doomed";
  doomed.preflight = [] {
    ahfic::lint::LintReport r;
    r.error("TEST_REJECT", "statically broken by construction");
    return r;
  };
  doomed.run = [](rn::JobContext&) -> rn::JobResult {
    throw ahfic::Error("must never run");
  };

  rn::RunnerOptions opts;
  opts.threads = 1;
  opts.useCache = false;
  opts.ladder = twoRungLadder();
  rn::BatchRunner runner(opts);
  const auto batch =
      runner.run({doomed, floatingNodeJob("floating"), hardOpJob("hard")});

  const auto delta = obs::metrics().snapshot().since(before);
  obs::setMetricsEnabled(false);
  obs::metrics().resetForTest();

  EXPECT_EQ(batch.manifest.countWithStatus(rn::JobStatus::kRejected), 1);
  EXPECT_EQ(batch.manifest.countWithStatus(rn::JobStatus::kFailed), 1);
  EXPECT_EQ(batch.manifest.countWithStatus(rn::JobStatus::kRecovered), 1);
  // Regression: a rejection must not masquerade as a solver failure in
  // the batch-window counters (and vice versa).
  EXPECT_EQ(delta.counterValue("runner.jobs_rejected"), 1);
  EXPECT_EQ(delta.counterValue("runner.jobs_failed"), 1);
  EXPECT_EQ(delta.counterValue("runner.jobs_completed"), 1);
  // Each failed solver attempt with a report bumped diag.attached: two
  // rungs for the floating job, one failed rung for the recovered job.
  EXPECT_EQ(delta.counterValue("diag.attached"), 3);
  EXPECT_EQ(delta.counterValue("diag.reports"), 3);
}
