// Sampling-profiler internals (obs/prof.h): folded-stack determinism,
// ring overflow accounting, symbolization, and the end-to-end
// start/capture/stop path. The start/stop-under-load torture test lives
// in concurrency_load_test.cpp (it runs under TSan in CI).

#include "obs/prof.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace prof = ahfic::obs::prof;
namespace u = ahfic::util;

// Symbolization anchor: extern "C" (stable name) and address-taken, so
// it survives the linker and resolves via dladdr under -rdynamic
// (CMAKE_ENABLE_EXPORTS).
extern "C" __attribute__((noinline)) void ahficProfTestAnchor() {
  asm volatile("");
}

namespace {

TEST(ObsProf, FoldedStacksAggregatesAndSortsDeterministically) {
  prof::FoldedStacks a;
  a.add("main;solve;lu", 3);
  a.add("main;solve;assemble", 5);
  a.add("main;solve;lu", 2);  // merges with the first add
  EXPECT_EQ(a.total(), 10);
  EXPECT_EQ(a.size(), 2u);

  const auto sorted = a.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "main;solve;assemble");  // count desc
  EXPECT_EQ(sorted[0].second, 5);
  EXPECT_EQ(sorted[1].second, 5);
}

TEST(ObsProf, FoldedStacksMergeIsOrderIndependent) {
  // Same samples through two different merge groupings must fold to
  // byte-identical output — the determinism the regression gate and the
  // tests themselves rely on.
  prof::FoldedStacks left, right, wholeA, wholeB;
  const std::vector<std::pair<std::string, long long>> samples = {
      {"t;a;b", 4}, {"t;a;c", 4}, {"t;d", 1}, {"t;a;b", 2}};
  for (size_t i = 0; i < samples.size(); ++i) {
    (i % 2 == 0 ? left : right).add(samples[i].first, samples[i].second);
    wholeA.add(samples[i].first, samples[i].second);
    wholeB.add(samples[samples.size() - 1 - i].first,
               samples[samples.size() - 1 - i].second);
  }
  prof::FoldedStacks merged;
  merged.merge(left);
  merged.merge(right);
  EXPECT_EQ(merged.sorted(), wholeA.sorted());
  EXPECT_EQ(wholeA.sorted(), wholeB.sorted());  // arrival-order invariant

  // Ties sort by stack name ascending.
  const auto sorted = merged.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "t;a;b");  // 6
  EXPECT_EQ(sorted[1].first, "t;a;c");  // 4
  EXPECT_EQ(sorted[2].first, "t;d");    // 1
}

TEST(ObsProf, SampleRingCountsOverflowInsteadOfBlocking) {
  auto ring = std::make_unique<prof::SampleRing>();
  void* pcs[2] = {reinterpret_cast<void*>(0x1000),
                  reinterpret_cast<void*>(0x2000)};
  for (int i = 0; i < prof::kRingCapacity; ++i)
    EXPECT_TRUE(ring->push(pcs, 2));
  // Full: the producer must not block; the loss must be accounted.
  EXPECT_FALSE(ring->push(pcs, 2));
  EXPECT_FALSE(ring->push(pcs, 2));
  EXPECT_EQ(ring->dropped(), 2);

  std::vector<prof::RawSample> out;
  EXPECT_EQ(ring->drain(out), static_cast<size_t>(prof::kRingCapacity));
  ASSERT_EQ(out.size(), static_cast<size_t>(prof::kRingCapacity));
  EXPECT_EQ(out[0].depth, 2);
  EXPECT_EQ(out[0].pc[0], pcs[0]);

  // Space again after the drain; dropped stays a cumulative session
  // counter until reset().
  EXPECT_TRUE(ring->push(pcs, 2));
  EXPECT_EQ(ring->dropped(), 2);
  ring->reset();
  EXPECT_EQ(ring->dropped(), 0);
  EXPECT_EQ(ring->owner.load(), 0u);
}

TEST(ObsProf, SampleRingClampsDepthToMaxFrames) {
  auto ring = std::make_unique<prof::SampleRing>();
  std::vector<void*> deep(prof::kMaxFrames + 8,
                          reinterpret_cast<void*>(0x42));
  EXPECT_TRUE(ring->push(deep.data(), static_cast<int>(deep.size())));
  std::vector<prof::RawSample> out;
  ring->drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].depth, prof::kMaxFrames);
}

TEST(ObsProf, DroppedCountSurfacesInProfileDocument) {
  obs::ProfileReport report;
  report.clock = "cpu";
  report.hz = 197.0;
  report.samples = 10;
  report.dropped = 7;
  report.threads = 2;
  report.stacks = {{"main;hot", 8}, {"worker-0;cold", 2}};

  const u::JsonValue doc = report.toJson();
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-profile-v1");
  EXPECT_EQ(doc.get("dropped").asNumber(), 7.0);
  EXPECT_EQ(doc.get("samples").asNumber(), 10.0);
  EXPECT_EQ(doc.get("stacks").size(), 2u);
  EXPECT_EQ(doc.get("stacks").at(0).get("stack").asString(), "main;hot");
  // topSelf ranks leaf frames.
  ASSERT_GE(doc.get("topSelf").size(), 1u);
  EXPECT_EQ(doc.get("topSelf").at(0).get("symbol").asString(), "hot");

  EXPECT_EQ(report.collapsed(), "main;hot 8\nworker-0;cold 2\n");
}

TEST(ObsProf, SymbolizeResolvesExportedFunction) {
  // +1 mimics a return address (symbolizePc steps back one byte).
  void* pc = reinterpret_cast<void*>(
      reinterpret_cast<char*>(&ahficProfTestAnchor) + 1);
  const std::string sym = prof::symbolizePc(pc);
  EXPECT_NE(sym.find("ahficProfTestAnchor"), std::string::npos)
      << "got '" << sym << "' — is -rdynamic (CMAKE_ENABLE_EXPORTS) on?";
}

TEST(ObsProf, StartRejectsBadRate) {
  obs::ProfileOptions opts;
  opts.hz = 0.0;
  EXPECT_THROW(obs::startProfiling(opts), ahfic::Error);
  opts.hz = 20000.0;
  EXPECT_THROW(obs::startProfiling(opts), ahfic::Error);
}

TEST(ObsProf, StopWithoutStartReturnsEmptyReport) {
  ASSERT_FALSE(obs::profilingActive());
  const obs::ProfileReport report = obs::stopProfiling();
  EXPECT_EQ(report.samples, 0);
  EXPECT_EQ(report.clock, "");
}

TEST(ObsProf, ZeroCostWhenOff) {
  // The disabled-path contract: profilingActive() is one relaxed atomic
  // load. The bound is deliberately loose (1 us/call) — it cannot flake
  // on a busy runner, but a syscall, lock, or allocation sneaking into
  // the hot guard would blow straight through it.
  ASSERT_FALSE(obs::profilingActive());
  const int iters = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  int active = 0;
  for (int i = 0; i < iters; ++i)
    if (obs::profilingActive()) ++active;
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(active, 0);
  EXPECT_LT(sec, 2.0);
}

/// Burns CPU so the process-CPU-clock timer fires.
__attribute__((noinline)) double burnCpu(double seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double acc = 1.0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
             .count() < seconds)
    for (int i = 0; i < 1000; ++i) acc = acc * 1.0000001 + 1e-9;
  return acc;
}

TEST(ObsProf, EndToEndCaptureProducesSamplesAndFiles) {
  obs::profileSetThreadName("main");
  ASSERT_TRUE(obs::startProfiling());
  EXPECT_TRUE(obs::profilingActive());
  // Second capture must be refused without disturbing the running one.
  EXPECT_FALSE(obs::startProfiling());
  EXPECT_TRUE(obs::profilingActive());

  burnCpu(0.5);

  const obs::ProfileReport report = obs::stopProfiling();
  EXPECT_FALSE(obs::profilingActive());
  EXPECT_EQ(report.clock, "cpu");
  EXPECT_EQ(report.hz, 197.0);
  EXPECT_GT(report.durationSec, 0.0);
  // 0.5 s of CPU at 197 Hz is ~98 samples; even a heavily loaded or
  // virtualized runner lands well above 1.
  EXPECT_GE(report.samples, 1);
  EXPECT_GE(report.threads, 1);
  ASSERT_FALSE(report.stacks.empty());
  // Stacks are rooted at the thread name set above.
  EXPECT_EQ(report.stacks[0].first.rfind("main;", 0), 0u)
      << report.stacks[0].first;

  // Counts in the document and the collapsed text agree with the report.
  const u::JsonValue doc = report.toJson();
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-profile-v1");
  EXPECT_EQ(doc.get("samples").asNumber(),
            static_cast<double>(report.samples));

  // File emission: envelope + .folded sibling.
  const std::string path = ::testing::TempDir() + "ahfic_prof_test.json";
  obs::writeProfileFiles(report, path);
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 20, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    const u::JsonValue env = u::parseJson(text);
    EXPECT_EQ(env.get("schema").asString(), "ahfic-bench-v1");
    EXPECT_EQ(env.get("name").asString(), "profile");
    EXPECT_EQ(env.get("payload").get("schema").asString(),
              "ahfic-profile-v1");
  }
  std::FILE* folded = std::fopen((path + ".folded").c_str(), "r");
  ASSERT_NE(folded, nullptr);
  std::fclose(folded);
  std::remove(path.c_str());
  std::remove((path + ".folded").c_str());

  // The capture is remembered for /v1/profile/latest.
  const std::string latest = obs::latestProfileJson();
  ASSERT_FALSE(latest.empty());
  EXPECT_EQ(u::parseJson(latest).get("name").asString(), "profile");
  const obs::LatestProfileInfo info = obs::latestProfileInfo();
  EXPECT_TRUE(info.present);
  EXPECT_EQ(info.samples, report.samples);

  // A fresh capture works after stop (sessions recycle rings).
  ASSERT_TRUE(obs::startProfiling());
  burnCpu(0.05);
  const obs::ProfileReport second = obs::stopProfiling();
  EXPECT_EQ(second.clock, "cpu");
  EXPECT_FALSE(obs::profilingActive());
}

TEST(ObsProf, ScopedProfileWritesOnDestruction) {
  const std::string path = ::testing::TempDir() + "ahfic_scoped_prof.json";
  {
    obs::ScopedProfile scope(path);
    ASSERT_TRUE(scope.active());
    // Nested scope is inert while the first runs — flags must not fight
    // the daemon's /v1/profile endpoint.
    obs::ScopedProfile nested(::testing::TempDir() + "never_written.json");
    EXPECT_FALSE(nested.active());
    burnCpu(0.05);
  }
  EXPECT_FALSE(obs::profilingActive());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  std::remove((path + ".folded").c_str());
}

}  // namespace
