// CMOS integration: inverter transfer curve and a 5-stage inverter ring
// oscillator — exercising the MOSFET model in a switching circuit.

#include <gtest/gtest.h>

#include <memory>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/mosfet.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/numeric.h"

namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

sp::MosModel nmos() {
  sp::MosModel m;
  m.vto = 0.8;
  m.kp = 60e-6;
  m.lambda = 0.05;
  m.cgso = 0.25e-9;
  m.cgdo = 0.25e-9;
  m.cox = 2.5e-3;
  return m;
}

sp::MosModel pmos() {
  sp::MosModel m = nmos();
  m.pmos = true;
  m.kp = 25e-6;
  return m;
}

/// Adds one inverter between `in` and `out`.
void addInverter(sp::Circuit& ckt, int vdd, int in, int out,
                 const std::string& id) {
  ckt.add<sp::Mosfet>("MP" + id, ckt, out, in, vdd, vdd, pmos(), 24e-6,
                      1e-6);
  ckt.add<sp::Mosfet>("MN" + id, ckt, out, in, 0, 0, nmos(), 10e-6, 1e-6);
}

}  // namespace

TEST(CmosInverter, TransferCurveSwitches) {
  sp::Circuit ckt;
  const int vdd = ckt.node("vdd"), in = ckt.node("in"),
            out = ckt.node("out");
  ckt.add<sp::VSource>("VDD", vdd, 0, 5.0);
  ckt.add<sp::VSource>("VIN", in, 0, 0.0);
  addInverter(ckt, vdd, in, out, "1");
  sp::Analyzer an(ckt);
  const auto sw = an.dcSweep("VIN", 0.0, 5.0, 0.1);
  // Rails at the ends.
  EXPECT_NEAR(sw.voltage(0, out), 5.0, 0.05);
  EXPECT_NEAR(sw.voltage(sw.sweep.size() - 1, out), 0.0, 0.05);
  // Output is monotonically non-increasing in Vin.
  for (size_t k = 1; k < sw.sweep.size(); ++k)
    EXPECT_LE(sw.voltage(k, out), sw.voltage(k - 1, out) + 1e-6) << k;
  // The switching threshold sits mid-supply-ish.
  double vm = 0.0;
  for (size_t k = 0; k < sw.sweep.size(); ++k) {
    if (sw.voltage(k, out) < sw.sweep[k]) {
      vm = sw.sweep[k];
      break;
    }
  }
  EXPECT_GT(vm, 1.5);
  EXPECT_LT(vm, 3.5);
}

TEST(CmosRing, FiveStageRingOscillates) {
  sp::Circuit ckt;
  const int vdd = ckt.node("vdd");
  ckt.add<sp::VSource>("VDD", vdd, 0, 5.0);
  const int stages = 5;
  for (int s = 0; s < stages; ++s) {
    const int in = ckt.node("n" + std::to_string(s));
    const int out = ckt.node("n" + std::to_string((s + 1) % stages));
    addInverter(ckt, vdd, in, out, std::to_string(s));
    // Load capacitance per stage sets the frequency scale.
    ckt.add<sp::Capacitor>("CL" + std::to_string(s), out, 0, 30e-15);
  }
  // Start-up kick.
  ckt.add<sp::ISource>(
      "Ik", ckt.node("n0"), 0,
      std::make_unique<sp::PulseWaveform>(0.0, 0.5e-3, 0.0, 0.05e-9,
                                          0.05e-9, 0.5e-9, 1.0));
  sp::Analyzer an(ckt);
  const auto tr = an.transient(80e-9, 0.05e-9, 20e-9);
  const auto v = tr.voltage(ckt.findNode("n0"));
  const auto f = u::oscillationFrequency(tr.time, v, 0.2);
  ASSERT_TRUE(f.has_value());
  // Rail-to-rail-ish swing at a plausible frequency for these devices.
  EXPECT_GT(u::steadyStatePeakToPeak(tr.time, v, 0.2), 3.0);
  EXPECT_GT(*f, 50e6);
  EXPECT_LT(*f, 5e9);
}
