// Model-card physicality checks and the geometry-sweep monotonicity
// guard over bjtgen-generated cards.

#include "lint/modelcard.h"

#include <gtest/gtest.h>

#include "bjtgen/generator.h"
#include "bjtgen/shape.h"
#include "lint/netlist.h"

namespace lint = ahfic::lint;
namespace bg = ahfic::bjtgen;
namespace sp = ahfic::spice;

TEST(LintModelCard, DefaultBjtCardIsClean) {
  const sp::BjtModel m;
  const auto r = lint::lintBjtModel(m, "default");
  EXPECT_TRUE(r.empty()) << r.renderText();
}

TEST(LintModelCard, OutOfRangeParametersAreErrors) {
  sp::BjtModel m;
  m.rb = -5.0;
  m.mje = 1.4;
  lint::LintReport r;
  lint::lintBjtModel(m, "badnpn", r);
  ASSERT_TRUE(r.hasCode("MOD_BJT_RANGE")) << r.renderText();
  size_t n = 0;
  for (const auto& d : r.diagnostics())
    if (d.code == "MOD_BJT_RANGE") ++n;
  EXPECT_EQ(n, 2u) << r.renderText();
  EXPECT_NE(r.find("MOD_BJT_RANGE")->message.find("badnpn"),
            std::string::npos);
}

TEST(LintModelCard, ImplausibleButLegalValuesAreSuspectWarnings) {
  sp::BjtModel m;
  m.is = 1e-3;   // legal sign, absurd magnitude for an IC device
  m.bf = 9000.0;
  lint::LintReport r;
  lint::lintBjtModel(m, "weird", r);
  EXPECT_FALSE(r.hasErrors()) << r.renderText();
  EXPECT_TRUE(r.hasCode("MOD_BJT_SUSPECT")) << r.renderText();
}

TEST(LintModelCard, DiodeRangeViolationsAreErrors) {
  sp::DiodeModel m;
  m.m = 1.5;
  m.rs = -1.0;
  lint::LintReport r;
  lint::lintDiodeModel(m, "badd", r);
  size_t n = 0;
  for (const auto& d : r.diagnostics())
    if (d.code == "MOD_DIODE_RANGE") ++n;
  EXPECT_EQ(n, 2u) << r.renderText();
}

TEST(LintModelCard, DeckModelCardsAreLinted) {
  const auto r = lint::lintDeckText(R"(bad card deck
.MODEL badnpn NPN(IS=1e-16 BF=100 RB=-5 MJE=1.4)
V1 b 0 0.8
Q1 b b 0 badnpn
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("MOD_BJT_RANGE")) << r.renderText();
}

TEST(LintModelCard, GeneratedShapeSweepIsMonotoneAndClean) {
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const auto shapes = bg::fig9Shapes();
  ASSERT_GE(shapes.size(), 3u);
  const auto r = lint::lintGeneratedSweep(gen, shapes);
  EXPECT_FALSE(r.hasCode("MOD_NONMONOTONE")) << r.renderText();
  EXPECT_FALSE(r.hasErrors()) << r.renderText();
}
