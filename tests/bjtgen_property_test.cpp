// Property sweeps over the transistor shape space: relations that must
// hold for ANY shape, not just the paper's six.

#include <gtest/gtest.h>

#include <cmath>

#include "bjtgen/generator.h"
#include "bjtgen/geometry.h"

namespace bg = ahfic::bjtgen;

namespace {
bg::TransistorShape shape(double wUm, double lUm, int stripes, int bases) {
  bg::TransistorShape s;
  s.emitterWidth = wUm * 1e-6;
  s.emitterLength = lUm * 1e-6;
  s.emitterStripes = stripes;
  s.baseStripes = bases;
  return s;
}
}  // namespace

class ShapeSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {
 protected:
  const bg::Technology tech_ = bg::defaultTechnology();
};

TEST_P(ShapeSweepTest, GeometryInvariants) {
  const auto [w, l, stripes] = GetParam();
  for (int bases = 1; bases <= stripes + 1; ++bases) {
    const auto s = shape(w, l, stripes, bases);
    const auto g = bg::computeGeometry(s, tech_);
    // Ordering of footprints.
    EXPECT_GT(g.collectorArea, g.baseArea) << s.name();
    EXPECT_GT(g.baseArea, g.emitterArea) << s.name();
    // All parasitics positive.
    EXPECT_GT(g.rbIntrinsic, 0.0) << s.name();
    EXPECT_GT(g.rbExtrinsic, 0.0) << s.name();
    EXPECT_GT(g.re, 0.0) << s.name();
    EXPECT_GT(g.rc, 0.0) << s.name();
    // RBM < RB always.
    EXPECT_LT(g.rbMin(), g.rbTotal()) << s.name();
    // Contacted sides within [1, 2].
    EXPECT_GE(g.contactedSidesPerStripe, 1.0) << s.name();
    EXPECT_LE(g.contactedSidesPerStripe, 2.0) << s.name();
  }
}

TEST_P(ShapeSweepTest, MoreBaseStripesReduceRbRaiseCjc) {
  const auto [w, l, stripes] = GetParam();
  double prevRb = 1e300, prevCjc = 0.0;
  for (int bases = 1; bases <= stripes + 1; ++bases) {
    const auto e = bg::computeElectrical(shape(w, l, stripes, bases), tech_);
    EXPECT_LT(e.rb, prevRb) << "bases=" << bases;
    EXPECT_GT(e.cjc, prevCjc) << "bases=" << bases;
    prevRb = e.rb;
    prevCjc = e.cjc;
  }
}

TEST_P(ShapeSweepTest, LongerEmitterMonotonicities) {
  const auto [w, l, stripes] = GetParam();
  const auto a = bg::computeElectrical(shape(w, l, stripes, stripes + 1),
                                       tech_);
  const auto b =
      bg::computeElectrical(shape(w, 2 * l, stripes, stripes + 1), tech_);
  EXPECT_LT(b.rb, a.rb);
  EXPECT_LT(b.re, a.re);
  EXPECT_GT(b.is, a.is);
  EXPECT_GT(b.cje, a.cje);
  EXPECT_GT(b.cjc, a.cjc);
  EXPECT_GT(b.ikf, a.ikf);
}

TEST_P(ShapeSweepTest, GeneratedCardIsPhysical) {
  const auto [w, l, stripes] = GetParam();
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  for (int bases = 1; bases <= stripes + 1; ++bases) {
    const auto m = gen.generate(shape(w, l, stripes, bases));
    EXPECT_GT(m.is, 0.0);
    EXPECT_GT(m.ikf, 0.0);
    EXPECT_GT(m.rb, m.rbm);
    EXPECT_GT(m.cje, 0.0);
    EXPECT_GT(m.cjc, 0.0);
    EXPECT_GT(m.xcjc, 0.0);
    EXPECT_LE(m.xcjc, 1.0);
    EXPECT_GT(m.tf, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweepTest,
    ::testing::Combine(::testing::Values(0.8, 1.2, 2.4),   // width um
                       ::testing::Values(4.0, 6.0, 24.0),  // length um
                       ::testing::Values(1, 2, 4)));       // stripes

TEST(ShapeScaling, InterdigitatedStripesApproachPerStripeLimit) {
  // n fully interdigitated stripes of length L behave like one stripe of
  // length n*L for RB (both fully double-sided): check within 20%.
  const auto tech = bg::defaultTechnology();
  const auto big = bg::computeElectrical(shape(1.2, 24.0, 1, 2), tech);
  const auto multi = bg::computeElectrical(shape(1.2, 6.0, 4, 5), tech);
  EXPECT_NEAR(multi.rb / big.rb, 1.0, 0.35);
  // Same emitter area either way.
  EXPECT_NEAR(shape(1.2, 24.0, 1, 2).emitterArea(),
              shape(1.2, 6.0, 4, 5).emitterArea(), 1e-18);
}
