// Convergence forensics: telemetry recording, "ahfic-diag-v1" failure
// reports (round trip, attribution, hints), transient step traces, and
// the renamed solver metrics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/diode.h"
#include "spice/forensics.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

/// Node "b" is reachable only through capacitors: the DC matrix is
/// singular at every homotopy rung, so op() must fail deterministically.
void buildFloatingNodeCircuit(sp::Circuit& ckt) {
  const int in = ckt.node("in"), a = ckt.node("a"), b = ckt.node("b");
  ckt.add<sp::VSource>("V1", in, 0, 1.0);
  ckt.add<sp::Resistor>("R1", in, a, 1e3);
  ckt.add<sp::Capacitor>("C1", a, b, 1e-12);
  ckt.add<sp::Capacitor>("C2", b, 0, 1e-12);
}

/// Runs the floating-node op with forensics enabled and returns the
/// parsed failure report.
sp::DiagReport failingOpReport() {
  sp::Circuit ckt;
  buildFloatingNodeCircuit(ckt);
  sp::AnalysisOptions opts;
  opts.forensics = true;
  sp::Analyzer an(ckt, opts);
  try {
    an.op();
  } catch (const ahfic::ConvergenceError& e) {
    if (e.diag() == nullptr) throw ahfic::Error("no diag attached");
    return sp::DiagReport::fromJson(u::parseJson(*e.diag()));
  }
  throw ahfic::Error("floating-node op unexpectedly converged");
}

}  // namespace

TEST(Forensics, DisabledByDefaultAndFailureCarriesNoDiag) {
  sp::Circuit ckt;
  buildFloatingNodeCircuit(ckt);
  sp::Analyzer an(ckt);
  EXPECT_EQ(an.forensics(), nullptr);
  try {
    an.op();
    FAIL() << "floating-node op unexpectedly converged";
  } catch (const ahfic::ConvergenceError& e) {
    EXPECT_EQ(e.diag(), nullptr);  // opt-in only, no silent overhead
  }
}

TEST(Forensics, FloatingNodeReportNamesWorstNodeAndDevices) {
  const sp::DiagReport r = failingOpReport();
  EXPECT_EQ(r.analysis, "op");
  EXPECT_FALSE(r.stage.empty());
  EXPECT_EQ(r.unknowns, 4);  // in, a, b, I(V1)
  ASSERT_FALSE(r.trail.empty());
  EXPECT_TRUE(r.trail.back().singular);
  EXPECT_EQ(r.trail.back().worstUnknown, "V(b)");
  ASSERT_FALSE(r.nodes.empty());
  EXPECT_EQ(r.nodes[0].name, "V(b)");
  // The devices touching the floating node are the likely culprits.
  ASSERT_EQ(r.nodes[0].devices.size(), 2u);
  EXPECT_EQ(r.nodes[0].devices[0], "C1");
  EXPECT_EQ(r.nodes[0].devices[1], "C2");
  // Every homotopy stage was attempted before giving up.
  ASSERT_FALSE(r.continuation.empty());
  EXPECT_EQ(r.continuation.front().stage, "newton");
  EXPECT_FALSE(r.continuation.front().converged);
  // A floating-node hint mentioning the node must be present.
  bool hinted = false;
  for (const std::string& h : r.hints)
    if (h.find("floating") != std::string::npos &&
        h.find("V(b)") != std::string::npos)
      hinted = true;
  EXPECT_TRUE(hinted);
}

TEST(Forensics, DiagJsonRoundTripIsLossless) {
  const sp::DiagReport r = failingOpReport();
  const u::JsonValue j1 = r.toJson();
  EXPECT_EQ(j1.get("schema").asString(), "ahfic-diag-v1");
  // report -> JSON -> report -> JSON must be byte-identical.
  const sp::DiagReport back = sp::DiagReport::fromJson(u::parseJson(
      j1.dump(2)));
  EXPECT_EQ(back.toJson().dump(2), j1.dump(2));

  // Envelope round trip, and bare-report parsing.
  const auto fromEnvelope =
      sp::diagReportsFromJson(sp::diagEnvelope({r, r}));
  ASSERT_EQ(fromEnvelope.size(), 2u);
  EXPECT_EQ(fromEnvelope[1].toJson().dump(), j1.dump());
  const auto fromBare = sp::diagReportsFromJson(j1);
  ASSERT_EQ(fromBare.size(), 1u);

  // Schema mismatches are rejected, not misread.
  u::JsonValue bogus = u::JsonValue::object();
  bogus.set("schema", "something-else");
  EXPECT_THROW(sp::DiagReport::fromJson(bogus), ahfic::Error);
  EXPECT_THROW(sp::diagReportsFromJson(bogus), ahfic::Error);
}

TEST(Forensics, TransientStepRejectionTraceNamesFailingStage) {
  // A diode hit by an instantaneous 5 V edge, with Newton strangled to
  // two iterations and only two step retries: the DC point (everything
  // at 0 V, so the first solve is exact) converges, but steps crossing
  // the edge need several pnjlim iterations, so the controller rejects,
  // halves dt, and exhausts its retry budget at the edge.
  sp::Circuit ckt;
  const int in = ckt.node("in"), a = ckt.node("a");
  ckt.add<sp::VSource>(
      "VP", in, 0,
      std::make_unique<sp::PulseWaveform>(0.0, 5.0, 0.5e-9, 1e-15, 1e-15,
                                          10e-9, 20e-9));
  ckt.add<sp::Resistor>("R1", in, a, 100.0);
  sp::DiodeModel dm;
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);

  sp::AnalysisOptions opts;
  opts.forensics = true;
  opts.maxNewtonIters = 2;
  opts.maxStepRetries = 2;
  sp::Analyzer an(ckt, opts);
  try {
    an.transient(2e-9, 0.1e-9);
    FAIL() << "strangled transient unexpectedly completed";
  } catch (const ahfic::ConvergenceError& e) {
    ASSERT_NE(e.diag(), nullptr);
    const sp::DiagReport r =
        sp::DiagReport::fromJson(u::parseJson(*e.diag()));
    EXPECT_EQ(r.analysis, "transient");
    EXPECT_EQ(r.stage, "transient-step");
    // Failure time: pinned just before the 0.5 ns edge.
    EXPECT_LT(r.stageValue, 0.51e-9);
    ASSERT_FALSE(r.steps.empty());
    // The tail of the step trace is the rejection cascade: dt halves
    // between consecutive rejected attempts.
    const auto& steps = r.steps;
    ASSERT_GE(steps.size(), 3u);
    const auto& s1 = steps[steps.size() - 2];
    const auto& s2 = steps[steps.size() - 1];
    EXPECT_FALSE(s1.accepted);
    EXPECT_FALSE(s2.accepted);
    EXPECT_NEAR(s2.dt, 0.5 * s1.dt, 1e-6 * s1.dt);
    // Earlier steps (before the edge) were accepted.
    EXPECT_TRUE(steps.front().accepted);
  }
}

TEST(Forensics, SuccessfulAnalysesKeepRecorderButThrowNothing) {
  // Forensics on a healthy circuit: telemetry accumulates, nothing
  // throws, and results match the forensics-off run exactly.
  sp::Circuit ckt;
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  ckt.add<sp::ISource>("I1", 0, a, 1e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);

  sp::AnalysisOptions opts;
  opts.forensics = true;
  sp::Analyzer with(ckt, opts);
  sp::Analyzer without(ckt);
  const auto xa = with.op();
  const auto xb = without.op();
  ASSERT_EQ(xa.size(), xb.size());
  for (size_t k = 0; k < xa.size(); ++k) EXPECT_EQ(xa[k], xb[k]);

  ASSERT_NE(with.forensics(), nullptr);
  EXPECT_GT(with.forensics()->totalIterations(), 0);
  const auto trail = with.forensics()->trail();
  ASSERT_FALSE(trail.empty());
  EXPECT_FALSE(trail.back().singular);
}

TEST(Forensics, UnknownNamesResolveNodesAndBranches) {
  sp::Circuit ckt;
  buildFloatingNodeCircuit(ckt);
  sp::Analyzer an(ckt);  // assigns the branch-current unknown ids
  EXPECT_EQ(sp::unknownName(ckt, 1), "V(in)");
  EXPECT_EQ(sp::unknownName(ckt, 2), "V(a)");
  EXPECT_EQ(sp::unknownName(ckt, 3), "V(b)");
  EXPECT_EQ(sp::unknownName(ckt, 4), "I(V1)");  // V1's branch current
  EXPECT_EQ(sp::unknownName(ckt, 99), "unknown#99");
}

TEST(ForensicsMetrics, NewtonHistogramAndTransientStepCounters) {
  obs::metrics().resetForTest();
  obs::setMetricsEnabled(true);

  sp::Circuit ckt;
  const int in = ckt.node("in"), a = ckt.node("a");
  ckt.add<sp::VSource>(
      "VP", in, 0,
      std::make_unique<sp::PulseWaveform>(0.0, 0.8, 0.5e-9, 0.2e-9,
                                          0.2e-9, 10e-9, 20e-9));
  ckt.add<sp::Resistor>("R1", in, a, 1e3);
  sp::DiodeModel dm;
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);
  sp::Analyzer an(ckt);
  const auto res = an.transient(2e-9, 0.1e-9);
  ASSERT_GT(res.time.size(), 4u);

  const auto snap = obs::metrics().snapshot();
  obs::setMetricsEnabled(false);
  obs::metrics().resetForTest();

  // Satellite: per-solve iteration histogram under its unified name.
  const auto* h = snap.findHistogram("spice.newton.iterations");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count, 0);
  EXPECT_GT(h->sum, 0.0);
  // Step counters under the spice.transient.* prefix.
  EXPECT_EQ(snap.counterValue("spice.transient.steps_accepted"),
            static_cast<long long>(an.stats().acceptedSteps));
  EXPECT_EQ(snap.counterValue("spice.transient.steps_rejected"),
            static_cast<long long>(an.stats().rejectedSteps));
}
