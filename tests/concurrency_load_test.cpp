// Concurrency regression tests for the annotated lock discipline
// (docs/concurrency.md): shutdown-ordering races that a lost notify
// would turn into hangs, and contended writer fan-in that a missing
// lock would turn into corruption. Thread width comes from
// AHFIC_LOAD_THREADS (default 8) so the TSan CI job can hammer the same
// suites harder than a local run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/history.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "runner/cache.h"
#include "runner/session.h"
#include "serve/jobs.h"

namespace obs = ahfic::obs;
namespace rn = ahfic::runner;
namespace sv = ahfic::serve;

namespace {

int loadThreads() {
  const char* env = std::getenv("AHFIC_LOAD_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

/// Enables metrics for one test, restoring the disabled default after.
struct MetricsGuard {
  MetricsGuard() {
    obs::metrics().resetForTest();
    obs::setMetricsEnabled(true);
  }
  ~MetricsGuard() {
    obs::setMetricsEnabled(false);
    obs::metrics().resetForTest();
  }
};

/// One trivial self-contained job: no SPICE run, just a metric write,
/// so batches exercise the session/cache locking without solver noise.
rn::Job trivialJob(const std::string& key) {
  rn::Job job;
  job.key = key;
  job.run = [](rn::JobContext&) {
    rn::JobResult r;
    r.set("answer", 42.0);
    return r;
  };
  return job;
}

}  // namespace

// A sampler stopped immediately after start must neither hang (lost
// wakeup between the predicate check and the wait) nor sample again
// after stop() returned. The long interval makes any post-stop sample
// unambiguous: only start()'s immediate sample is legitimate.
TEST(ConcurrencyLoad, HistoryStoppedRightAfterStartNeverHangsOrSamples) {
  for (int round = 0; round < 25; ++round) {
    obs::MetricsHistory history(/*intervalSec=*/60.0, /*capacity=*/16);
    history.start();
    history.stop();
    EXPECT_EQ(history.size(), 1u) << "round " << round;
  }
  // One more round with a breather: a runaway sampler thread that
  // survived stop() would land a second sample here.
  obs::MetricsHistory history(/*intervalSec=*/0.005, /*capacity=*/16);
  history.start();
  history.stop();
  const size_t atStop = history.size();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(history.size(), atStop);
}

// Same shutdown-ordering contract for the job service: stop(drain)
// right after construction must return promptly and report drained.
TEST(ConcurrencyLoad, JobServiceStoppedRightAfterStartDrainsPromptly) {
  rn::RunnerOptions ropts;
  ropts.threads = 1;
  for (int round = 0; round < 25; ++round) {
    rn::Session session(ropts);
    sv::JobServiceOptions opts;
    opts.workers = 4;
    sv::JobService jobs(session, opts);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_TRUE(jobs.stop(/*drain=*/true, std::chrono::seconds(10)))
        << "round " << round;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    EXPECT_LT(ms, 5000.0) << "stop took " << ms << " ms in round "
                          << round;
  }
}

// N writer threads on one counter must merge exactly: a torn shard
// list or a racy registration would lose increments.
TEST(ConcurrencyLoad, MetricShardsMergeExactlyUnderWriterFanIn) {
  MetricsGuard guard;
  const int threads = loadThreads();
  constexpr int kPerThread = 20000;
  const obs::Counter counter = obs::counter("test.load_counter");
  const obs::Histogram hist = obs::histogram("test.load_hist");

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&counter, &hist] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.observe(1e-2);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counterValue("test.load_counter"),
            static_cast<long long>(threads) * kPerThread);
  const obs::HistogramSnapshot* h = snap.findHistogram("test.load_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<long long>(threads) * kPerThread);
}

// Concurrent registration of overlapping site names while other
// threads log through the sites they already hold.
TEST(ConcurrencyLoad, LogSiteRegistrationRacesStayConsistent) {
  obs::setLogLevel(obs::LogLevel::kOff);  // suppress output, keep the
                                          // registration path hot
  const int threads = loadThreads();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        const obs::LogSite site = obs::logSite(
            obs::LogLevel::kInfo,
            "test.load_site_" + std::to_string((t + i) % 5));
        if (site) site.log("load").num("i", i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

// Parallel store/lookup on one ResultCache: lookups must only ever see
// complete entries and the final size must be exact.
TEST(ConcurrencyLoad, ResultCacheSurvivesParallelReadersAndWriters) {
  rn::ResultCache cache;
  const int threads = loadThreads();
  constexpr int kKeys = 200;

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&cache, t] {
      for (int i = 0; i < kKeys; ++i) {
        const std::string key = "k" + std::to_string(i);
        if (t % 2 == 0) {
          rn::JobResult r;
          r.set("value", static_cast<double>(i));
          cache.store(key, r);
        } else if (auto hit = cache.lookup(key)) {
          EXPECT_EQ(hit->metrics.size(), 1u);
          EXPECT_EQ(hit->metrics[0].second, static_cast<double>(i));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
}

// Profiler start/stop cycles while worker threads burn CPU and write
// metrics: signals land mid-increment, rings are claimed and recycled
// across sessions, and a concurrent start during a running capture must
// be refused without disturbing it. Everything here runs under TSan in
// CI — the handler/collector/stop ordering is exactly the kind of bug
// it exists to catch.
TEST(ConcurrencyLoad, ProfilerStartStopUnderLoad) {
  MetricsGuard guard;
  const int threads = loadThreads();
  std::atomic<bool> stop{false};
  const obs::Counter counter = obs::counter("test.prof_load");

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&stop, &counter, t] {
      obs::profileSetThreadName(
          ("prof-load-" + std::to_string(t)).c_str());
      volatile double acc = 1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 2000; ++i) acc = acc * 1.0000001 + 1e-9;
        counter.add();
      }
    });
  }

  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE(obs::startProfiling()) << "cycle " << cycle;
    // A second start during the capture is refused, capture untouched.
    EXPECT_FALSE(obs::startProfiling());
    EXPECT_TRUE(obs::profilingActive());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const obs::ProfileReport report = obs::stopProfiling();
    EXPECT_FALSE(obs::profilingActive());
    EXPECT_EQ(report.clock, "cpu");
    EXPECT_GE(report.samples + report.dropped, 0) << "cycle " << cycle;
  }

  stop.store(true);
  for (std::thread& t : pool) t.join();
  EXPECT_FALSE(obs::profilingActive());
}

// Concurrent batches on one Session: distinct keys per thread plus one
// shared key, so the cache sees both independent and contended inserts;
// the shared text store is hammered from every thread.
TEST(ConcurrencyLoad, SessionRunsConcurrentBatchesOnSharedCache) {
  rn::RunnerOptions ropts;
  ropts.threads = 2;
  rn::Session session(ropts);
  const int threads = loadThreads();

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&session, t] {
      for (int round = 0; round < 10; ++round) {
        std::vector<rn::Job> jobs;
        jobs.push_back(trivialJob("shared"));
        jobs.push_back(
            trivialJob("t" + std::to_string(t) + "/" +
                       std::to_string(round)));
        const rn::BatchResult batch = session.run(jobs);
        ASSERT_EQ(batch.outcomes.size(), 2u);
        for (const rn::JobOutcome& out : batch.outcomes)
          EXPECT_TRUE(out.ok()) << out.record.error;
        session.storeText("t" + std::to_string(t), "text");
      }
    });
  }
  for (std::thread& t : pool) t.join();

  // One shared key + threads*10 distinct keys.
  EXPECT_EQ(session.cache().size(),
            1u + static_cast<size_t>(threads) * 10u);
  EXPECT_EQ(session.textCount(), static_cast<size_t>(threads));
}
