// Parser diagnostics audit: every ParseError must carry the offending
// token in its message and the 1-based deck line, so lint PARSE
// diagnostics and CLI errors always point somewhere actionable.

#include <gtest/gtest.h>

#include "spice/parser.h"
#include "util/error.h"

namespace sp = ahfic::spice;

namespace {

/// Parses and returns the ParseError; fails the test when none is thrown.
ahfic::ParseError parseFailure(const std::string& deck) {
  try {
    (void)sp::parseDeck(deck);
  } catch (const ahfic::ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "deck parsed although it is malformed:\n" << deck;
  return ahfic::ParseError("unreachable", -1);
}

void expectTokenAndLine(const std::string& deck, const std::string& token,
                        int line) {
  const auto e = parseFailure(deck);
  EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
      << "message lacks token '" << token << "': " << e.what();
  EXPECT_EQ(e.line(), line) << e.what();
}

}  // namespace

TEST(ParserErrors, ShortElementCardsNameTheDevice) {
  expectTokenAndLine("t\nR1 a b\n.END\n", "R1", 2);
  expectTokenAndLine("t\nC1 a b\n.END\n", "C1", 2);
  expectTokenAndLine("t\nL1 a b\n.END\n", "L1", 2);
  expectTokenAndLine("t\nV1 a\n.END\n", "V1", 2);
  expectTokenAndLine("t\nE1 a b c\n.END\n", "E1", 2);
  expectTokenAndLine("t\nF1 a b\n.END\n", "F1", 2);
  expectTokenAndLine("t\nD1 a b\n.END\n", "D1", 2);
  expectTokenAndLine("t\nQ1 c b\n.END\n", "Q1", 2);
  expectTokenAndLine("t\nM1 d g s\n.END\n", "M1", 2);
  expectTokenAndLine("t\nX1 a\n.END\n", "X1", 2);
}

TEST(ParserErrors, UnsupportedElementNamesTheToken) {
  expectTokenAndLine("t\nZ1 a b 5\n.END\n", "Z1", 2);
}

TEST(ParserErrors, UnknownModelsCarryDeviceLineNotThrowSite) {
  // The model reference resolves in pass 3, but the error must still
  // point at the instance line.
  expectTokenAndLine("t\nV1 a 0 1\nQ1 a a 0 nosuchmodel\n.OP\n.END\n",
                     "nosuchmodel", 3);
  expectTokenAndLine("t\nV1 a 0 1\nD1 a 0 ghost\n.OP\n.END\n", "ghost", 3);
}

TEST(ParserErrors, BadMosInstanceParameterNamesTheToken) {
  // Not key=value at all -> the whole token is named.
  expectTokenAndLine(
      "t\n.MODEL mn NMOS(VTO=0.7)\nM1 d g s b mn foo\n.END\n", "foo", 3);
  // key=value with an unknown key -> the key is named.
  expectTokenAndLine(
      "t\n.MODEL mn NMOS(VTO=0.7)\nM1 d g s b mn Q=3\n.END\n", "'Q'", 3);
}

TEST(ParserErrors, MalformedSourceFunctionNamesTheToken) {
  const auto e = parseFailure("t\nV1 a 0 SIN(\n.END\n");
  EXPECT_EQ(e.line(), 2) << e.what();
}

TEST(ParserErrors, ContinuationLinesKeepTheOriginalLineNumber) {
  // '+' continuation folds into the previous logical line; errors must
  // report where that logical line started.
  const auto e = parseFailure("t\nR1 a b\n+ bogus extra tokens\n.END\n");
  EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  EXPECT_EQ(e.line(), 2) << e.what();
}
