// Two-tone IM3 distortion tests plus the IRR yield study.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/blocks.h"
#include "tuner/distortion.h"
#include "tuner/irr.h"
#include "util/error.h"

namespace tn = ahfic::tuner;

TEST(Distortion, Im3MatchesTanhTheory) {
  tn::TwoToneSpec spec;
  spec.inputAmplitude = 0.05;
  const double gain = 4.0, vsat = 1.0;
  const auto r = tn::twoToneTestAmplifier(gain, vsat, spec);
  const double theory = tn::tanhIm3Theory(gain, vsat, spec.inputAmplitude);
  EXPECT_NEAR(r.im3Low, theory, theory * 0.2);
  EXPECT_NEAR(r.im3High, theory, theory * 0.2);
  EXPECT_NEAR(r.fundamental, gain * spec.inputAmplitude,
              gain * spec.inputAmplitude * 0.05);
}

TEST(Distortion, Im3GrowsCubically) {
  // +6 dB input -> +18 dB IM3 (3:1 slope), the defining IP3 behaviour.
  tn::TwoToneSpec spec;
  spec.inputAmplitude = 0.03;
  const auto r1 = tn::twoToneTestAmplifier(4.0, 1.0, spec);
  spec.inputAmplitude = 0.06;
  const auto r2 = tn::twoToneTestAmplifier(4.0, 1.0, spec);
  EXPECT_NEAR(r2.im3Low / r1.im3Low, 8.0, 1.2);
}

TEST(Distortion, LinearAmplifierHasNoIm3) {
  tn::TwoToneSpec spec;
  spec.inputAmplitude = 0.1;
  const auto r = tn::twoToneTestAmplifier(4.0, /*vsat=*/0.0, spec);
  EXPECT_LT(r.im3Low / r.fundamental, 1e-4);
  EXPECT_LT(r.im3Dbc(), -80.0);
}

TEST(Distortion, Oip3ExtrapolationConsistent) {
  // OIP3 from two different drive levels must agree (within the cubic
  // small-signal regime).
  tn::TwoToneSpec spec;
  spec.inputAmplitude = 0.02;
  const auto r1 = tn::twoToneTestAmplifier(4.0, 1.0, spec);
  spec.inputAmplitude = 0.04;
  const auto r2 = tn::twoToneTestAmplifier(4.0, 1.0, spec);
  EXPECT_NEAR(r1.oip3Amplitude(), r2.oip3Amplitude(),
              r1.oip3Amplitude() * 0.1);
}

TEST(Distortion, CustomDutBuilder) {
  // Cascade of two compressive stages has worse (lower) OIP3 than one.
  tn::TwoToneSpec spec;
  spec.inputAmplitude = 0.02;
  const auto one = tn::twoToneTestAmplifier(2.0, 1.0, spec);
  const auto two = tn::twoToneTest(
      [](ahfic::ahdl::System& sys, const std::string& in,
         const std::string& out) {
        sys.add<ahfic::ahdl::Amplifier>({in}, {"mid"}, "s1", 2.0, 1.0);
        sys.add<ahfic::ahdl::Amplifier>({"mid"}, {out}, "s2", 2.0, 1.0);
      },
      spec);
  EXPECT_GT(two.fundamental, one.fundamental * 1.5);
  EXPECT_GT(two.im3Dbc(), one.im3Dbc());  // dirtier in dBc
}

TEST(Distortion, Validation) {
  tn::TwoToneSpec spec;
  spec.f2 = spec.f1;  // degenerate
  EXPECT_THROW(tn::twoToneTestAmplifier(1.0, 1.0, spec), ahfic::Error);
  EXPECT_THROW(tn::twoToneTest(nullptr, tn::TwoToneSpec{}), ahfic::Error);
}

TEST(IrrYield, TightProcessYieldsHigh) {
  const auto r = tn::irrYield(/*sigmaPhase=*/1.0, /*sigmaGain=*/0.01,
                              /*target=*/30.0, 4000, 3);
  EXPECT_GT(r.yield(), 0.95);
  EXPECT_GT(r.meanIrrDb, 35.0);
}

TEST(IrrYield, SloppyProcessYieldsLow) {
  const auto r = tn::irrYield(/*sigmaPhase=*/6.0, /*sigmaGain=*/0.08,
                              /*target=*/30.0, 4000, 3);
  EXPECT_LT(r.yield(), 0.6);
  EXPECT_LT(r.worstIrrDb, 25.0);
}

TEST(IrrYield, MonotonicInSigma) {
  double prev = 2.0;
  for (double sig : {0.5, 1.5, 3.0, 6.0}) {
    const auto r = tn::irrYield(sig, 0.02, 30.0, 3000, 9);
    EXPECT_LE(r.yield(), prev + 0.02) << sig;
    prev = r.yield();
  }
}

TEST(IrrYield, Validation) {
  EXPECT_THROW(tn::irrYield(1.0, 0.01, 30.0, 0), ahfic::Error);
}
