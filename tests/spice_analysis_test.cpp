// Analysis-engine robustness: statistics, integration methods, sparse
// backend on nonlinear circuits, grids, and failure modes.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/diode.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace sp = ahfic::spice;

TEST(AnalysisGrids, LogspaceProperties) {
  const auto f = sp::logspace(1e3, 1e6, 10);
  EXPECT_NEAR(f.front(), 1e3, 1e-9);
  EXPECT_NEAR(f.back(), 1e6, 1e-3);
  // Log-uniform: constant ratio between consecutive points.
  const double ratio = f[1] / f[0];
  for (size_t k = 1; k < f.size(); ++k)
    EXPECT_NEAR(f[k] / f[k - 1], ratio, ratio * 1e-9);
  EXPECT_EQ(f.size(), 31u);  // 3 decades * 10 + 1
  EXPECT_THROW(sp::logspace(0.0, 1e3, 5), ahfic::Error);
  EXPECT_THROW(sp::logspace(1e6, 1e3, 5), ahfic::Error);
}

TEST(AnalysisGrids, LinspaceProperties) {
  const auto v = sp::linspace(-1.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_EQ(sp::linspace(3.0, 9.0, 1).size(), 1u);
}

TEST(AnalysisStats, CountersAdvance) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::ISource>("I1", 0, a, 1e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);
  sp::Analyzer an(ckt);
  EXPECT_EQ(an.stats().newtonIterations, 0);
  an.op();
  EXPECT_GT(an.stats().newtonIterations, 2);
  EXPECT_GT(an.stats().matrixSolves, 2);
}

TEST(AnalysisStats, CountersResetBetweenCalls) {
  // Per-call counter windows: the runner's manifests report stats() after
  // each job's analysis, which is only accurate if repeated calls on one
  // Analyzer do not accumulate.
  sp::Circuit ckt;
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::ISource>("I1", 0, a, 1e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);
  sp::Analyzer an(ckt);
  an.op();
  const long first = an.stats().newtonIterations;
  EXPECT_GT(first, 0);
  an.op();
  // DC solves always start from zero, so the second call does identical
  // work — and must report exactly it, not 2x.
  EXPECT_EQ(an.stats().newtonIterations, first);
}

TEST(AnalysisStats, TransientWindowIncludesItsOperatingPoint) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 1.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
  sp::Analyzer an(ckt);
  an.op();
  const long opSolves = an.stats().matrixSolves;
  EXPECT_GT(opSolves, 0);
  an.transient(1e-7, 10e-9);
  // The transient window covers its own initial OP plus the steps — and
  // none of the earlier op() call's work.
  EXPECT_GT(an.stats().matrixSolves, opSolves);
  EXPECT_GT(an.stats().acceptedSteps, 0);
  const long tranSolves = an.stats().matrixSolves;
  an.op();
  EXPECT_LT(an.stats().matrixSolves, tranSolves);
}

TEST(AnalysisStats, AcAndNoiseWindowsNeverAccumulate) {
  // Regression guard for the per-call stats audit: every entry point —
  // including the AC reuse path and noise() — opens a fresh window, so
  // calling any of them in a loop reports constant, not growing, counts.
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 1.0, /*acMag=*/1.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
  sp::Analyzer an(ckt);

  const auto freqs = sp::logspace(1e3, 1e6, 3);
  an.ac(freqs);
  const long full = an.stats().matrixSolves;
  EXPECT_GT(full, 0);
  an.ac(freqs);
  EXPECT_EQ(an.stats().matrixSolves, full);

  const auto xop = an.op();
  an.ac(freqs, xop);
  const long reuse = an.stats().matrixSolves;
  // The reuse overload skips the OP: one factor+solve per frequency.
  EXPECT_EQ(reuse, static_cast<long>(freqs.size()));
  an.ac(freqs, xop);
  EXPECT_EQ(an.stats().matrixSolves, reuse);

  an.noise(freqs, "out", xop);
  const long noise = an.stats().matrixSolves;
  EXPECT_GT(noise, 0);
  an.noise(freqs, "out", xop);
  EXPECT_EQ(an.stats().matrixSolves, noise);
}

TEST(AnalysisStats, TransientWindowsNeverAccumulate) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 1.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
  sp::Analyzer an(ckt);
  an.transient(1e-7, 10e-9);
  const long first = an.stats().matrixSolves;
  const long firstSteps = an.stats().acceptedSteps;
  an.transient(1e-7, 10e-9);
  EXPECT_EQ(an.stats().matrixSolves, first);
  EXPECT_EQ(an.stats().acceptedSteps, firstSteps);
}

TEST(AnalysisStats, TransientStepAccounting) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 1.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(1e-6, 10e-9);
  EXPECT_GT(an.stats().acceptedSteps, 50);
  EXPECT_EQ(tr.time.size(), static_cast<size_t>(an.stats().acceptedSteps) + 1);
}

TEST(AnalysisFailure, FloatingNodeIsSingular) {
  // A capacitor-only node has no DC path: the OP matrix is singular and
  // the engine reports non-convergence rather than nonsense.
  sp::Circuit ckt;
  const int a = ckt.node("a"), b = ckt.node("b");
  ckt.add<sp::VSource>("V1", a, 0, 1.0);
  ckt.add<sp::Capacitor>("C1", a, b, 1e-9);  // b floats at DC
  sp::Analyzer an(ckt);
  EXPECT_THROW(an.op(), ahfic::ConvergenceError);
}

TEST(AnalysisFailure, ShortedVoltageSourcesAreSingular) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::VSource>("V1", a, 0, 1.0);
  ckt.add<sp::VSource>("V2", a, 0, 2.0);  // conflicting ideal sources
  sp::Analyzer an(ckt);
  EXPECT_THROW(an.op(), ahfic::ConvergenceError);
}

TEST(AnalysisBackend, SparseMatchesDenseOnNonlinearCircuit) {
  auto build = [](sp::Circuit& ckt) {
    sp::BjtModel m;
    m.is = 1e-16;
    m.bf = 100.0;
    m.rb = 150.0;
    m.re = 3.0;
    const int vcc = ckt.node("vcc"), b = ckt.node("b"), c = ckt.node("c");
    ckt.add<sp::VSource>("VCC", vcc, 0, 5.0);
    ckt.add<sp::Resistor>("RB1", vcc, b, 47e3);
    ckt.add<sp::Resistor>("RB2", b, 0, 10e3);
    ckt.add<sp::Resistor>("RC", vcc, c, 2e3);
    const int e = ckt.node("e");
    ckt.add<sp::Bjt>("Q1", ckt, c, b, e, m);
    ckt.add<sp::Resistor>("RE", e, 0, 500.0);
  };
  sp::Circuit c1, c2;
  build(c1);
  build(c2);
  sp::AnalysisOptions dense, sparse;
  sparse.useSparse = true;
  sp::Analyzer ad(c1, dense), as(c2, sparse);
  const auto xd = ad.op();
  const auto xs = as.op();
  ASSERT_EQ(xd.size(), xs.size());
  for (size_t i = 0; i < xd.size(); ++i)
    EXPECT_NEAR(xd[i], xs[i], 1e-6) << i;
}

TEST(AnalysisIntegration, BackwardEulerConvergesToSameSteadyState) {
  auto run = [](sp::IntegMethod method) {
    sp::Circuit ckt;
    const int in = ckt.node("in"), out = ckt.node("out");
    ckt.add<sp::VSource>("V1", in, 0, 2.0);
    ckt.add<sp::Resistor>("R1", in, out, 1e3);
    ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
    sp::AnalysisOptions opt;
    opt.method = method;
    sp::Analyzer an(ckt, opt);
    const auto tr = an.transient(10e-6, 50e-9);
    return tr.voltage(out).back();
  };
  EXPECT_NEAR(run(sp::IntegMethod::kTrapezoidal), 2.0, 1e-6);
  EXPECT_NEAR(run(sp::IntegMethod::kBackwardEuler), 2.0, 1e-6);
}

TEST(AnalysisIntegration, TrapezoidalIsMoreAccurateThanBe) {
  // LC tank ringdown: BE's numerical damping shrinks the amplitude; trap
  // (with small damping) preserves it far better.
  auto peakAfterRing = [](sp::IntegMethod method, double trapDamping) {
    sp::Circuit ckt;
    const int n1 = ckt.node("n1");
    ckt.add<sp::Inductor>("L1", n1, 0, 100e-9);
    ckt.add<sp::Capacitor>("C1", n1, 0, 100e-12);
    ckt.add<sp::Resistor>("Rb", n1, 0, 1e6);
    ckt.add<sp::ISource>(
        "Ik", 0, n1,
        std::make_unique<sp::PulseWaveform>(0.0, 10e-3, 0.0, 1e-10, 1e-10,
                                            2e-9, 1.0));
    sp::AnalysisOptions opt;
    opt.method = method;
    opt.trapDamping = trapDamping;
    sp::Analyzer an(ckt, opt);
    const auto tr = an.transient(300e-9, 0.5e-9, 250e-9);
    double peak = 0.0;
    for (double v : tr.voltage(n1)) peak = std::max(peak, std::fabs(v));
    return peak;
  };
  const double trap = peakAfterRing(sp::IntegMethod::kTrapezoidal, 0.02);
  const double be = peakAfterRing(sp::IntegMethod::kBackwardEuler, 0.0);
  EXPECT_GT(trap, be * 1.5);
}

TEST(AnalysisOptions, TightToleranceStillConverges) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::ISource>("I1", 0, a, 1e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);
  sp::AnalysisOptions opt;
  opt.reltol = 1e-6;
  opt.vntol = 1e-9;
  sp::Analyzer an(ckt, opt);
  EXPECT_NO_THROW(an.op());
}

TEST(AnalysisOptions, BadTransientArgsRejected) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::VSource>("V1", a, 0, 1.0);
  ckt.add<sp::Resistor>("R1", a, 0, 1e3);
  sp::Analyzer an(ckt);
  EXPECT_THROW(an.transient(-1.0, 1e-9), ahfic::Error);
  EXPECT_THROW(an.transient(1e-6, 0.0), ahfic::Error);
}

TEST(AnalysisOp, WarmRestartViaSweepIsConsistent) {
  // Sweeping up and down lands on the same solutions (no hysteresis in a
  // monotone circuit).
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::VSource>("V1", in, 0, 0.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Diode>("D1", ckt, out, 0, dm);
  sp::Analyzer an(ckt);
  const auto up = an.dcSweep("V1", 0.0, 2.0, 0.25);
  const auto down = an.dcSweep("V1", 2.0, 0.0, -0.25);
  ASSERT_EQ(up.sweep.size(), down.sweep.size());
  const size_t n = up.sweep.size();
  // Agreement at the Newton-tolerance scale (reltol = 1e-3).
  for (size_t k = 0; k < n; ++k)
    EXPECT_NEAR(up.voltage(k, out), down.voltage(n - 1 - k, out), 2e-3);
}
