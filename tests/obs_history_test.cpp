// Metrics time-series: ring eviction at capacity, window retention,
// delta-compressed wire format correctness, and the Prometheus text
// exposition of a snapshot.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/history.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace u = ahfic::util;

namespace {

struct ObsGuard {
  ObsGuard() {
    obs::metrics().resetForTest();
    obs::setMetricsEnabled(true);
  }
  ~ObsGuard() {
    obs::setMetricsEnabled(false);
    obs::metrics().resetForTest();
  }
};

/// Rebuilds the cumulative series from {"first", "deltas"}.
std::vector<double> undelta(const u::JsonValue& wire) {
  std::vector<double> out;
  double v = wire.get("first").asNumber();
  out.push_back(v);
  const auto& deltas = wire.get("deltas");
  for (size_t i = 0; i < deltas.size(); ++i) {
    v += deltas.at(i).asNumber();
    out.push_back(v);
  }
  return out;
}

}  // namespace

TEST(ObsHistory, RingEvictsOldestAtCapacity) {
  ObsGuard guard;
  const obs::Counter c = obs::counter("test.hist_ring_counter");
  obs::MetricsHistory history(/*intervalSec=*/3600.0, /*capacity=*/4);

  for (int k = 1; k <= 10; ++k) {
    c.add(1);
    history.sampleNow();
    EXPECT_LE(history.size(), 4u);
  }
  EXPECT_EQ(history.size(), 4u);

  // The surviving four samples are the newest, oldest-first: counter
  // values 7, 8, 9, 10.
  const auto samples = history.window();
  ASSERT_EQ(samples.size(), 4u);
  for (size_t i = 0; i < samples.size(); ++i)
    EXPECT_EQ(samples[i].snap.counterValue("test.hist_ring_counter"),
              static_cast<long long>(7 + i))
        << "sample " << i;
}

TEST(ObsHistory, WindowTrimsByAge) {
  ObsGuard guard;
  obs::MetricsHistory history(3600.0, 16);
  history.sampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  history.sampleNow();
  ASSERT_EQ(history.size(), 2u);

  EXPECT_EQ(history.window(0.0).size(), 2u);       // 0 = everything
  EXPECT_EQ(history.window(3600.0).size(), 2u);    // wide window: both
  EXPECT_EQ(history.window(0.5).size(), 1u);       // narrow: latest only
}

TEST(ObsHistory, BackgroundSamplerCollectsAndStops) {
  ObsGuard guard;
  obs::MetricsHistory history(/*intervalSec=*/0.05, /*capacity=*/64);
  history.start();
  // start() samples immediately; the ring is never empty while running.
  EXPECT_GE(history.size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  history.stop();
  const size_t n = history.size();
  EXPECT_GE(n, 3u);
  // Stopped means stopped: no further growth.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(history.size(), n);
}

TEST(ObsHistory, JsonDeltaEncodingReconstructsSeries) {
  ObsGuard guard;
  const obs::Counter c = obs::counter("test.hist_json_counter");
  const obs::Gauge g = obs::gauge("test.hist_json_gauge");
  const obs::Histogram h = obs::histogram("test.hist_json_hist");
  obs::MetricsHistory history(3600.0, 16);

  const double expectGauge[] = {2.0, 5.0, 3.0};
  const long long expectCounter[] = {10, 17, 17};
  c.add(10); g.set(2.0); h.observe(1.0);
  history.sampleNow();
  c.add(7); g.set(5.0); h.observe(1.0);
  history.sampleNow();
  g.set(3.0);
  history.sampleNow();

  const auto doc = history.toJson();
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-metrics-history-v1");
  EXPECT_EQ(doc.get("samples").asNumber(), 3.0);
  ASSERT_EQ(doc.get("t").size(), 3u);

  const auto counter =
      undelta(doc.get("counters").get("test.hist_json_counter"));
  ASSERT_EQ(counter.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(counter[i], static_cast<double>(expectCounter[i])) << i;

  const auto& gauge = doc.get("gauges").get("test.hist_json_gauge");
  ASSERT_EQ(gauge.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(gauge.at(i).asNumber(), expectGauge[i]) << i;

  const auto& hist = doc.get("histograms").get("test.hist_json_hist");
  const auto histCount = undelta(hist.get("count"));
  ASSERT_EQ(histCount.size(), 3u);
  EXPECT_EQ(histCount[0], 1.0);
  EXPECT_EQ(histCount[2], 2.0);
  ASSERT_EQ(hist.get("p50").size(), 3u);
  EXPECT_GT(hist.get("p50").at(0).asNumber(), 0.0);
}

TEST(ObsHistory, EmptyHistorySerializesCleanly) {
  ObsGuard guard;
  obs::MetricsHistory history(3600.0, 8);
  const auto doc = history.toJson();
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-metrics-history-v1");
  EXPECT_EQ(doc.get("samples").asNumber(), 0.0);
  EXPECT_EQ(doc.get("t").size(), 0u);
  EXPECT_TRUE(doc.get("counters").isObject());
}

TEST(ObsPrometheus, TextExpositionCoversAllKindsAndMangling) {
  ObsGuard guard;
  obs::counter("test.prom_counter").add(5);
  obs::gauge("test.prom_gauge").set(1.25);
  const obs::Histogram h = obs::histogram("test.prom_hist_ms");
  h.observe(0.5);
  h.observe(0.5);
  h.observe(50.0);

  const std::string text = obs::metrics().snapshot().toPrometheusText();

  // Dots mangle to underscores under the ahfic_ prefix.
  EXPECT_NE(text.find("ahfic_test_prom_counter 5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ahfic_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("ahfic_test_prom_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ahfic_test_prom_gauge gauge"),
            std::string::npos);

  // Histogram: cumulative buckets ending in +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE ahfic_test_prom_hist_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ahfic_test_prom_hist_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ahfic_test_prom_hist_ms_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("ahfic_test_prom_hist_ms_sum 51"),
            std::string::npos);

  // Cumulative monotonicity: the le-bucket counts never decrease.
  size_t pos = 0;
  long long prev = -1;
  while ((pos = text.find("ahfic_test_prom_hist_ms_bucket{le=", pos)) !=
         std::string::npos) {
    const size_t close = text.find("} ", pos);
    ASSERT_NE(close, std::string::npos);
    const long long n = std::atoll(text.c_str() + close + 2);
    EXPECT_GE(n, prev);
    prev = n;
    pos = close;
  }
  EXPECT_EQ(prev, 3);  // the +Inf bucket saw every observation
}
