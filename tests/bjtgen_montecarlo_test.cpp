// Monte-Carlo process variation tests.

#include <gtest/gtest.h>

#include <cmath>

#include "bjtgen/ft.h"
#include "bjtgen/montecarlo.h"
#include "bjtgen/ringosc.h"
#include "util/numeric.h"

namespace bg = ahfic::bjtgen;
namespace u = ahfic::util;

TEST(MonteCarlo, SampledTechnologyPerturbsQuantities) {
  u::Rng rng(11);
  const auto nominal = bg::defaultTechnology();
  const auto die = bg::sampleTechnology(nominal, bg::ProcessVariation{}, rng);
  EXPECT_NE(die.process.pinchedBaseSheet, nominal.process.pinchedBaseSheet);
  EXPECT_NE(die.process.cjeArea, nominal.process.cjeArea);
  EXPECT_NE(die.process.tf0, nominal.process.tf0);
  // All quantities stay positive (lognormal factors).
  EXPECT_GT(die.process.pinchedBaseSheet, 0.0);
  EXPECT_GT(die.process.jsArea, 0.0);
}

TEST(MonteCarlo, ZeroVariationIsIdentity) {
  u::Rng rng(11);
  const auto nominal = bg::defaultTechnology();
  bg::ProcessVariation none;
  none.sheetResistance = none.contactRho = none.capDensity =
      none.currentDensity = none.transitTime = none.localMismatch = 0.0;
  const auto die = bg::sampleTechnology(nominal, none, rng);
  EXPECT_DOUBLE_EQ(die.process.pinchedBaseSheet,
                   nominal.process.pinchedBaseSheet);
  EXPECT_DOUBLE_EQ(die.process.tf0, nominal.process.tf0);
}

TEST(MonteCarlo, DieGeneratorsDiffer) {
  bg::MonteCarloGenerator mc(bg::defaultTechnology(),
                             bg::ProcessVariation{}, 5);
  const auto die1 = mc.sampleDie();
  const auto die2 = mc.sampleDie();
  const auto card1 = die1.generate("N1.2-12D");
  const auto card2 = die2.generate("N1.2-12D");
  EXPECT_NE(card1.rb, card2.rb);
  EXPECT_NE(card1.is, card2.is);
}

TEST(MonteCarlo, LocalMismatchPerturbsIsAndBf) {
  bg::MonteCarloGenerator mc(bg::defaultTechnology(),
                             bg::ProcessVariation{}, 7);
  const auto die = mc.sampleDie();
  const auto nominalCard = die.generate("N1.2-6D");
  const auto a = mc.withLocalMismatch(nominalCard);
  const auto b = mc.withLocalMismatch(nominalCard);
  EXPECT_NE(a.is, b.is);
  EXPECT_NE(a.bf, b.bf);
  // Mismatch is small: within a few sigma of 1%.
  EXPECT_NEAR(a.is / nominalCard.is, 1.0, 0.06);
}

TEST(MonteCarlo, DeterministicUnderSeed) {
  bg::MonteCarloGenerator m1(bg::defaultTechnology(),
                             bg::ProcessVariation{}, 42);
  bg::MonteCarloGenerator m2(bg::defaultTechnology(),
                             bg::ProcessVariation{}, 42);
  EXPECT_DOUBLE_EQ(m1.sampleDie().generate("N1.2-6D").rb,
                   m2.sampleDie().generate("N1.2-6D").rb);
}

TEST(Corners, SlowFastBracketTypical) {
  // Ring-oscillator frequency: fast > typical > slow.
  auto freqFor = [](bg::Corner c) {
    const auto gen = bg::cornerGenerator(c);
    bg::RingOscillatorSpec spec;
    spec.diffPairModel = gen.generate("N1.2-12D");
    spec.followerModel = gen.generate("N1.2-6D");
    const auto m = bg::measureRingFrequency(spec, 10.0, 3.0);
    EXPECT_TRUE(m.oscillating);
    return m.frequency;
  };
  const double slow = freqFor(bg::Corner::kSlow);
  const double typ = freqFor(bg::Corner::kTypical);
  const double fast = freqFor(bg::Corner::kFast);
  EXPECT_LT(slow, typ);
  EXPECT_LT(typ, fast);
  // 3-sigma corners spread meaningfully but not absurdly.
  EXPECT_GT(fast / slow, 1.2);
  EXPECT_LT(fast / slow, 4.0);
}

TEST(Corners, TypicalIsNominal) {
  const auto typ = bg::cornerTechnology(bg::defaultTechnology(),
                                        bg::ProcessVariation{},
                                        bg::Corner::kTypical);
  EXPECT_DOUBLE_EQ(typ.process.tf0, bg::defaultTechnology().process.tf0);
}

TEST(Corners, SlowRaisesResistancesAndTf) {
  const auto nominal = bg::defaultTechnology();
  const auto slow = bg::cornerTechnology(nominal, bg::ProcessVariation{},
                                         bg::Corner::kSlow);
  EXPECT_GT(slow.process.pinchedBaseSheet,
            nominal.process.pinchedBaseSheet);
  EXPECT_GT(slow.process.tf0, nominal.process.tf0);
  EXPECT_LT(slow.process.jKnee, nominal.process.jKnee);
  const auto fast = bg::cornerTechnology(nominal, bg::ProcessVariation{},
                                         bg::Corner::kFast);
  EXPECT_LT(fast.process.tf0, nominal.process.tf0);
}

TEST(MonteCarlo, FtSpreadIsPlausible) {
  // Peak fT of the reference family spreads by roughly the tf/cap sigmas;
  // it must vary but stay within a sane band.
  bg::MonteCarloGenerator mc(bg::defaultTechnology(),
                             bg::ProcessVariation{}, 3);
  std::vector<double> fts;
  for (int die = 0; die < 8; ++die) {
    const auto gen = mc.sampleDie();
    bg::FtExtractor fx(gen.generate("N1.2-6D"));
    fts.push_back(fx.measureAt(0.5e-3).ft);
  }
  const auto [mn, mx] = std::minmax_element(fts.begin(), fts.end());
  EXPECT_GT(*mx / *mn, 1.02);  // it actually varies
  EXPECT_LT(*mx / *mn, 1.8);   // but not absurdly
  for (double f : fts) {
    EXPECT_GT(f, 5e9);
    EXPECT_LT(f, 16e9);
  }
}
