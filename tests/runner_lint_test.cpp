// Pre-flight lint gating in the batch engine: a job whose preflight
// reports errors must be rejected before the cache and the solver are
// ever touched, consuming zero retry rungs and zero Newton iterations.

#include <gtest/gtest.h>

#include <atomic>

#include "lint/netlist.h"
#include "obs/metrics.h"
#include "runner/engine.h"

namespace rn = ahfic::runner;
namespace lint = ahfic::lint;
namespace obs = ahfic::obs;

namespace {

const char* kBrokenDeck = R"(vloop
V1 a 0 5
V2 a 0 4.9
R1 a 0 1k
.OP
.END
)";

const char* kGoodDeck = R"(divider
V1 in 0 DC 5
R1 in out 1k
R2 out 0 1k
.OP
.END
)";

}  // namespace

TEST(RunnerLint, RejectedJobNeverRunsAndConsumesNoRetries) {
  obs::setMetricsEnabled(true);
  obs::metrics().resetForTest();

  std::atomic<int> bodyRuns{0};

  rn::Job bad;
  bad.key = "lint/broken";
  bad.preflight = [] { return lint::lintDeckText(kBrokenDeck); };
  bad.run = [&bodyRuns](rn::JobContext&) {
    ++bodyRuns;
    return rn::JobResult{};
  };

  rn::Job good;
  good.key = "lint/good";
  good.preflight = [] { return lint::lintDeckText(kGoodDeck); };
  good.run = [](rn::JobContext&) {
    rn::JobResult r;
    r.set("answer", 42.0);
    return r;
  };

  rn::RunnerOptions opts;
  opts.threads = 1;
  rn::BatchRunner runner(opts);
  const auto batch = runner.run({bad, good});

  const auto& rejected = batch.outcomes[0];
  EXPECT_EQ(rejected.record.status, rn::JobStatus::kRejected);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.record.attempts, 0);
  EXPECT_EQ(rejected.record.rungName, "preflight");
  EXPECT_EQ(rejected.record.newtonIterations, 0);
  EXPECT_NE(rejected.record.error.find("NET_VSRC_LOOP"),
            std::string::npos);
  EXPECT_EQ(bodyRuns.load(), 0);

  const auto& accepted = batch.outcomes[1];
  EXPECT_TRUE(accepted.ok());
  EXPECT_EQ(accepted.result.get("answer"), 42.0);

  const auto snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counterValue("lint.rejected"), 1);
  EXPECT_EQ(snap.counterValue("lint.preflights"), 2);
  // The rejected deck never reached a solver.
  EXPECT_EQ(snap.counterValue("spice.newton_iterations"), 0);

  obs::setMetricsEnabled(false);
}

TEST(RunnerLint, RejectionBypassesTheCache) {
  // Even with caching on, a rejected job must not be served from or
  // stored into the cache.
  rn::Job bad;
  bad.key = "lint/broken-cached";
  bad.preflight = [] { return lint::lintDeckText(kBrokenDeck); };
  bad.run = [](rn::JobContext&) { return rn::JobResult{}; };

  rn::RunnerOptions opts;
  opts.threads = 1;
  opts.useCache = true;
  rn::BatchRunner runner(opts);

  const auto first = runner.run({bad});
  const auto second = runner.run({bad});
  EXPECT_EQ(first.outcomes[0].record.status, rn::JobStatus::kRejected);
  EXPECT_EQ(second.outcomes[0].record.status, rn::JobStatus::kRejected);
  EXPECT_FALSE(second.outcomes[0].record.cacheHit);
}

TEST(RunnerLint, WarningsDoNotGate) {
  rn::Job warned;
  warned.key = "lint/warned";
  warned.preflight = [] {
    lint::LintReport r;
    r.warning("NET_ZERO_CAP", "suspicious but legal");
    return r;
  };
  warned.run = [](rn::JobContext&) {
    rn::JobResult r;
    r.set("ran", 1.0);
    return r;
  };

  rn::BatchRunner runner({.threads = 1});
  const auto batch = runner.run({warned});
  EXPECT_EQ(batch.outcomes[0].record.status, rn::JobStatus::kOk);
  EXPECT_EQ(batch.outcomes[0].result.get("ran"), 1.0);
}

TEST(RunnerLint, ThrowingPreflightRejectsInsteadOfCrashing) {
  rn::Job evil;
  evil.key = "lint/throws";
  evil.preflight = []() -> lint::LintReport {
    throw std::runtime_error("lint pass exploded");
  };
  evil.run = [](rn::JobContext&) { return rn::JobResult{}; };

  rn::BatchRunner runner({.threads = 1});
  const auto batch = runner.run({evil});
  EXPECT_EQ(batch.outcomes[0].record.status, rn::JobStatus::kRejected);
  EXPECT_NE(batch.outcomes[0].record.error.find("LINT_CRASH"),
            std::string::npos);
}

TEST(RunnerLint, RejectionAppearsInTheManifest) {
  rn::Job bad;
  bad.key = "lint/manifest";
  bad.preflight = [] { return lint::lintDeckText(kBrokenDeck); };
  bad.run = [](rn::JobContext&) { return rn::JobResult{}; };

  rn::BatchRunner runner({.threads = 1});
  const auto batch = runner.run({bad});
  EXPECT_EQ(batch.manifest.countWithStatus(rn::JobStatus::kRejected), 1);
  const std::string json = batch.manifest.toJsonString();
  EXPECT_NE(json.find("\"status\": \"rejected\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected\": 1"), std::string::npos);
}
