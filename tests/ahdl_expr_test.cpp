// Expression engine tests.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/expr.h"
#include "util/error.h"

namespace ah = ahfic::ahdl;

namespace {
double eval(const std::string& text,
            const std::map<std::string, double>& params = {},
            double t = 0.0) {
  const auto e = ah::parseExpression(text);
  ah::EvalContext ctx;
  ctx.t = t;
  ctx.params = &params;
  return ah::evalExpr(*e, ctx);
}
}  // namespace

TEST(Expr, ArithmeticPrecedence) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("10 - 4 - 3"), 3.0);   // left associative
  EXPECT_DOUBLE_EQ(eval("12 / 4 / 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval("2 ^ 3 ^ 2"), 512.0);  // right associative
  EXPECT_DOUBLE_EQ(eval("-2 ^ 2"), 4.0);       // unary binds tighter here
}

TEST(Expr, UnaryOperators) {
  EXPECT_DOUBLE_EQ(eval("-5"), -5.0);
  EXPECT_DOUBLE_EQ(eval("--5"), 5.0);
  EXPECT_DOUBLE_EQ(eval("+5"), 5.0);
  EXPECT_DOUBLE_EQ(eval("3 * -2"), -6.0);
}

TEST(Expr, SpiceSuffixNumbers) {
  EXPECT_DOUBLE_EQ(eval("45MEG"), 45e6);
  EXPECT_DOUBLE_EQ(eval("1.2u * 2"), 2.4e-6);
  EXPECT_DOUBLE_EQ(eval("3k + 500"), 3500.0);
  EXPECT_DOUBLE_EQ(eval("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(eval("2.5E+3"), 2500.0);
}

TEST(Expr, Functions) {
  EXPECT_NEAR(eval("sin(pi/2)"), 1.0, 1e-12);
  EXPECT_NEAR(eval("cos(0)"), 1.0, 1e-12);
  EXPECT_NEAR(eval("exp(1)"), std::exp(1.0), 1e-12);
  EXPECT_NEAR(eval("sqrt(2)^2"), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(eval("abs(-3)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("min(2, 5)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("max(2, 5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 10)"), 1024.0);
  EXPECT_NEAR(eval("tanh(100)"), 1.0, 1e-9);
  EXPECT_NEAR(eval("atan2(1, 1)"), std::atan(1.0), 1e-12);
}

TEST(Expr, ParametersAndTime) {
  EXPECT_DOUBLE_EQ(eval("gain * 2", {{"gain", 3.0}}), 6.0);
  EXPECT_DOUBLE_EQ(eval("t * 10", {}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(eval("a + b", {{"a", 1.0}, {"b", 2.0}}), 3.0);
}

TEST(Expr, SignalReferences) {
  const auto e = ah::parseExpression("V(in1) * 2 + V(in2) - V(in1)");
  const auto sigs = ah::collectSignals(*e);
  ASSERT_EQ(sigs.size(), 2u);
  EXPECT_EQ(sigs[0], "in1");
  EXPECT_EQ(sigs[1], "in2");

  ah::EvalContext ctx;
  std::map<std::string, double> params;
  ctx.params = &params;
  ctx.signalValue = [](const std::string& s) {
    return s == "in1" ? 10.0 : 1.0;
  };
  EXPECT_DOUBLE_EQ(ah::evalExpr(*e, ctx), 11.0);
}

TEST(Expr, CloneIsDeep) {
  const auto e = ah::parseExpression("V(x) + gain");
  auto c = ah::cloneExpr(*e);
  // Mutate the clone's signal name; original unaffected.
  c->args[0]->name = "y";
  EXPECT_EQ(ah::collectSignals(*e)[0], "x");
  EXPECT_EQ(ah::collectSignals(*c)[0], "y");
}

TEST(Expr, ErrorsAreReported) {
  EXPECT_THROW(eval("1 +"), ahfic::ParseError);
  EXPECT_THROW(eval("(1 + 2"), ahfic::ParseError);
  EXPECT_THROW(eval("sin()"), ahfic::Error);        // arity
  EXPECT_THROW(eval("bogus(1)"), ahfic::Error);     // unknown function
  EXPECT_THROW(eval("unknown_var"), ahfic::Error);  // unknown identifier
  EXPECT_THROW(eval("1 2"), ahfic::ParseError);     // trailing tokens
  EXPECT_THROW(eval("V()"), ahfic::ParseError);
}

TEST(Expr, SignalOutsideSimulationContext) {
  const auto e = ah::parseExpression("V(x)");
  ah::EvalContext ctx;
  EXPECT_THROW(ah::evalExpr(*e, ctx), ahfic::Error);
}
