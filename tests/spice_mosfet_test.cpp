// Level-1 MOSFET physics checks.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/mosfet.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace sp = ahfic::spice;

namespace {

sp::MosModel simpleNmos() {
  sp::MosModel m;
  m.vto = 0.8;
  m.kp = 50e-6;
  m.lambda = 0.02;
  return m;
}

/// Drain current of a W/L = 10 device at the given bias.
double idAt(const sp::MosModel& m, double vgs, double vds, double vbs = 0.0,
            double w = 10e-6, double l = 1e-6) {
  sp::Circuit ckt;
  const int d = ckt.node("d"), g = ckt.node("g"), s = ckt.node("s"),
            b = ckt.node("b");
  ckt.add<sp::VSource>("VG", g, 0, vgs);
  auto& vd = ckt.add<sp::VSource>("VD", d, 0, vds);
  ckt.add<sp::VSource>("VS", s, 0, 0.0);
  ckt.add<sp::VSource>("VB", b, 0, vbs);
  ckt.add<sp::Mosfet>("M1", ckt, d, g, s, b, m, w, l);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution sol(&x);
  return -sol.at(vd.branchId());
}

}  // namespace

TEST(MosfetDc, CutoffBelowThreshold) {
  const double id = idAt(simpleNmos(), 0.5, 3.0);
  EXPECT_LT(std::fabs(id), 1e-8);  // only gmin leakage
}

TEST(MosfetDc, SaturationSquareLaw) {
  // Id = 0.5 * KP * W/L * (Vgs - Vt)^2 * (1 + lambda*Vds).
  const auto m = simpleNmos();
  const double vgs = 1.8, vds = 3.0;
  const double expected = 0.5 * m.kp * 10.0 * std::pow(vgs - m.vto, 2) *
                          (1.0 + m.lambda * vds);
  EXPECT_NEAR(idAt(m, vgs, vds), expected, expected * 1e-6);
}

TEST(MosfetDc, QuadraticInOverdrive) {
  const auto m = simpleNmos();
  const double i1 = idAt(m, m.vto + 0.5, 3.0);
  const double i2 = idAt(m, m.vto + 1.0, 3.0);
  EXPECT_NEAR(i2 / i1, 4.0, 0.01);
}

TEST(MosfetDc, TriodeRegion) {
  const auto m = simpleNmos();
  const double vgs = 2.8, vds = 0.1;  // deep triode
  const double expected =
      m.kp * 10.0 * (1.0 + m.lambda * vds) * (vgs - m.vto - vds / 2) * vds;
  EXPECT_NEAR(idAt(m, vgs, vds), expected, expected * 1e-6);
}

TEST(MosfetDc, ChannelLengthModulationSlope) {
  const auto m = simpleNmos();
  const double i3 = idAt(m, 1.8, 3.0);
  const double i5 = idAt(m, 1.8, 5.0);
  const double slope = (i5 - i3) / 2.0;
  const double gdsExpected = i3 / (1.0 / m.lambda + 3.0);
  EXPECT_NEAR(slope, gdsExpected, gdsExpected * 0.05);
}

TEST(MosfetDc, BodyEffectRaisesThreshold) {
  auto m = simpleNmos();
  m.gamma = 0.4;
  const double i0 = idAt(m, 1.8, 3.0, 0.0);
  const double iRev = idAt(m, 1.8, 3.0, -2.0);  // reverse body bias
  EXPECT_LT(iRev, i0 * 0.95);
}

TEST(MosfetDc, WOverLScaling) {
  const auto m = simpleNmos();
  const double i1 = idAt(m, 1.8, 3.0, 0.0, 10e-6, 1e-6);
  const double i2 = idAt(m, 1.8, 3.0, 0.0, 20e-6, 1e-6);
  const double i3 = idAt(m, 1.8, 3.0, 0.0, 10e-6, 2e-6);
  // gmin leakage adds ~1e-8 relative.
  EXPECT_NEAR(i2 / i1, 2.0, 1e-6);
  EXPECT_NEAR(i3 / i1, 0.5, 1e-6);
}

TEST(MosfetDc, ReverseVdsBySymmetry) {
  // Swapping drain and source voltages negates the current.
  const auto m = simpleNmos();
  sp::Circuit ckt;
  const int d = ckt.node("d"), g = ckt.node("g"), s = ckt.node("s");
  ckt.add<sp::VSource>("VG", g, 0, 2.5);
  auto& vd = ckt.add<sp::VSource>("VD", d, 0, -1.0);  // drain BELOW source
  ckt.add<sp::VSource>("VS", s, 0, 0.0);
  ckt.add<sp::Mosfet>("M1", ckt, d, g, s, 0, m);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution sol(&x);
  const double id = -sol.at(vd.branchId());
  EXPECT_LT(id, -1e-6);  // current flows out of the 'drain' terminal
}

TEST(MosfetDc, PmosMirrorsNmos) {
  sp::MosModel m = simpleNmos();
  m.pmos = true;
  sp::Circuit ckt;
  const int d = ckt.node("d"), g = ckt.node("g"), s = ckt.node("s");
  ckt.add<sp::VSource>("VS", s, 0, 5.0);
  ckt.add<sp::VSource>("VG", g, 0, 3.0);   // vgs = -2 V
  ckt.add<sp::VSource>("VD", d, 0, 1.0);   // vds = -4 V
  auto& mq = ckt.add<sp::Mosfet>("M1", ckt, d, g, s, s, m);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution sol(&x);
  const auto info = mq.opInfo(sol);
  EXPECT_TRUE(info.saturated);
  EXPECT_NEAR(info.vgs, 2.0, 1e-9);  // model polarity
  EXPECT_GT(info.id, 1e-5);
}

TEST(MosfetDc, CommonSourceAmplifierGain) {
  // Resistor-loaded common-source stage: |Av| = gm * (RD || ro).
  const auto m = simpleNmos();
  sp::Circuit ckt;
  const int vdd = ckt.node("vdd"), d = ckt.node("d"), g = ckt.node("g");
  ckt.add<sp::VSource>("VDD", vdd, 0, 5.0);
  ckt.add<sp::VSource>("VG", g, 0, 1.5, /*acMag=*/1.0);
  ckt.add<sp::Resistor>("RD", vdd, d, 10e3);
  auto& mq = ckt.add<sp::Mosfet>("M1", ckt, d, g, 0, 0, m);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  sp::Solution sol(&op);
  const auto info = mq.opInfo(sol);
  const auto ac = an.ac({1e3}, op);
  const double av = std::abs(ac.voltage(0, d));
  const double expected = info.gm / (1.0 / 10e3 + info.gds);
  EXPECT_NEAR(av, expected, expected * 0.01);
}

TEST(MosfetTran, SourceFollowerTracks) {
  sp::MosModel m = simpleNmos();
  m.cgso = 0.3e-9;
  m.cgdo = 0.3e-9;
  m.cox = 3e-3;
  sp::Circuit ckt;
  const int vdd = ckt.node("vdd"), in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("VDD", vdd, 0, 5.0);
  ckt.add<sp::VSource>("VIN", in, 0,
                       std::make_unique<sp::SinWaveform>(3.0, 0.5, 10e6));
  ckt.add<sp::Mosfet>("M1", ckt, vdd, in, out, 0, m, 50e-6, 1e-6);
  ckt.add<sp::Resistor>("RS", out, 0, 2e3);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(300e-9, 0.5e-9);
  const auto vin = tr.voltage(in);
  const auto vout = tr.voltage(out);
  // Follows with a Vgs-sized drop; the drop breathes with bias current
  // (sub-unity follower gain), so allow a band rather than a constant.
  for (size_t k = tr.time.size() / 2; k < tr.time.size(); ++k) {
    const double drop = vin[k] - vout[k];
    EXPECT_GT(drop, 1.0) << tr.time[k];
    EXPECT_LT(drop, 1.7) << tr.time[k];
  }
}

TEST(MosfetValidation, RejectsBadGeometry) {
  sp::Circuit ckt;
  EXPECT_THROW(ckt.add<sp::Mosfet>("M1", ckt, 1, 2, 3, 0, simpleNmos(),
                                   0.0, 1e-6),
               ahfic::Error);
  sp::MosModel m = simpleNmos();
  m.kp = 0.0;
  EXPECT_THROW(ckt.add<sp::Mosfet>("M2", ckt, 1, 2, 3, 0, m), ahfic::Error);
}
