// HTTP message layer: pure-parser cases (no sockets) and router
// dispatch semantics.

#include <gtest/gtest.h>

#include <string>

#include "serve/http.h"
#include "serve/router.h"

namespace sv = ahfic::serve;

namespace {

sv::ParseResult parse(const std::string& wire, sv::HttpRequest& out,
                      const sv::ParseLimits& limits = {}) {
  return sv::parseRequest(wire, out, limits);
}

}  // namespace

TEST(ServeHttpParse, SimpleGet) {
  sv::HttpRequest req;
  const auto r = parse(
      "GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n", req);
  ASSERT_EQ(r.state, sv::ParseState::kDone);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  ASSERT_NE(req.header("host"), nullptr);
  EXPECT_EQ(*req.header("host"), "x");
  EXPECT_TRUE(req.body.empty());
}

TEST(ServeHttpParse, PostWithBodyAndQuery) {
  sv::HttpRequest req;
  const std::string body = "{\"deck\":\"x\"}";
  const auto r = parse("POST /v1/jobs?dry=1 HTTP/1.1\r\n"
                       "Content-Type: application/json\r\n"
                       "Content-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body,
                       req);
  ASSERT_EQ(r.state, sv::ParseState::kDone);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/v1/jobs");
  EXPECT_EQ(req.query, "dry=1");
  EXPECT_EQ(req.body, body);
}

TEST(ServeHttpParse, BareLfLineEndingsAccepted) {
  sv::HttpRequest req;
  const auto r = parse("GET / HTTP/1.1\nHost: x\n\n", req);
  ASSERT_EQ(r.state, sv::ParseState::kDone);
  EXPECT_EQ(req.path, "/");
}

TEST(ServeHttpParse, IncrementalUntilComplete) {
  const std::string wire =
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  // Every prefix short of the full message must report kIncomplete.
  for (size_t n = 0; n < wire.size(); ++n) {
    sv::HttpRequest req;
    const auto r = parse(wire.substr(0, n), req);
    EXPECT_EQ(r.state, sv::ParseState::kIncomplete) << "prefix " << n;
  }
  sv::HttpRequest req;
  const auto r = parse(wire, req);
  ASSERT_EQ(r.state, sv::ParseState::kDone);
  EXPECT_EQ(req.body, "abcd");
  EXPECT_EQ(r.consumed, wire.size());
}

TEST(ServeHttpParse, ChunkedTransferEncodingRejected501) {
  sv::HttpRequest req;
  const auto r = parse("POST /v1/jobs HTTP/1.1\r\n"
                       "Transfer-Encoding: chunked\r\n\r\n",
                       req);
  ASSERT_EQ(r.state, sv::ParseState::kError);
  EXPECT_EQ(r.errorStatus, 501);
}

TEST(ServeHttpParse, OversizedDeclaredBodyRejected413BeforeBody) {
  sv::ParseLimits limits;
  limits.maxBodyBytes = 16;
  sv::HttpRequest req;
  // Note: no body bytes sent — the declared length alone must reject.
  const auto r = parse("POST /v1/jobs HTTP/1.1\r\nContent-Length: 17\r\n\r\n",
                       req, limits);
  ASSERT_EQ(r.state, sv::ParseState::kError);
  EXPECT_EQ(r.errorStatus, 413);
}

TEST(ServeHttpParse, MalformedRequestLineRejected400) {
  sv::HttpRequest req;
  EXPECT_EQ(parse("NONSENSE\r\n\r\n", req).errorStatus, 400);
  EXPECT_EQ(parse("get / HTTP/1.1\r\n\r\n", req).errorStatus, 400);
  EXPECT_EQ(parse("GET / SMTP/1.0\r\n\r\n", req).errorStatus, 400);
  EXPECT_EQ(parse("GET  HTTP/1.1\r\n\r\n", req).errorStatus, 400);
}

TEST(ServeHttpParse, HeaderBlockCapRejected431) {
  sv::ParseLimits limits;
  limits.maxHeaderBytes = 64;
  sv::HttpRequest req;
  const std::string wire = "GET / HTTP/1.1\r\nX-Pad: " +
                           std::string(128, 'a') + "\r\n\r\n";
  const auto r = parse(wire, req, limits);
  ASSERT_EQ(r.state, sv::ParseState::kError);
  EXPECT_EQ(r.errorStatus, 431);
}

TEST(ServeHttpParse, HeaderCountCapRejected431) {
  sv::ParseLimits limits;
  limits.maxHeaderCount = 4;
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int k = 0; k < 8; ++k)
    wire += "X-H" + std::to_string(k) + ": v\r\n";
  wire += "\r\n";
  sv::HttpRequest req;
  const auto r = parse(wire, req, limits);
  ASSERT_EQ(r.state, sv::ParseState::kError);
  EXPECT_EQ(r.errorStatus, 431);
}

TEST(ServeHttpParse, BadContentLengthRejected400) {
  sv::HttpRequest req;
  const auto r = parse(
      "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", req);
  ASSERT_EQ(r.state, sv::ParseState::kError);
  EXPECT_EQ(r.errorStatus, 400);
}

TEST(ServeHttpSerialize, ResponseCarriesLengthAndClose) {
  sv::HttpResponse resp = sv::HttpResponse::json(200, "{\"a\":1}");
  const std::string wire = sv::serializeResponse(resp);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), "{\"a\":1}");
}

TEST(ServeHttpSerialize, ErrorBodyIsStructuredJson) {
  const sv::HttpResponse resp = sv::HttpResponse::error(429, "slow down");
  EXPECT_EQ(resp.status, 429);
  EXPECT_NE(resp.body.find("\"status\""), std::string::npos);
  EXPECT_NE(resp.body.find("slow down"), std::string::npos);
}

TEST(ServeHttpPercent, DecodeAndRejectMalformed) {
  EXPECT_EQ(sv::percentDecode("a%20b"), "a b");
  EXPECT_EQ(sv::percentDecode("%41%2Fx"), "A/x");
  EXPECT_EQ(sv::percentDecode("100%"), "100%");    // dangling escape
  EXPECT_EQ(sv::percentDecode("%zz"), "%zz");      // bad hex
  EXPECT_EQ(sv::percentDecode("a+b"), "a+b");      // '+' is literal
}

namespace {

sv::Router demoRouter() {
  sv::Router router;
  router.add("GET", "/v1/jobs/<id>", "jobs_status",
             [](const sv::HttpRequest&, const sv::RouteParams& p) {
               return sv::HttpResponse::json(200, "id=" + p.get("id"));
             });
  router.add("POST", "/v1/jobs", "jobs_submit",
             [](const sv::HttpRequest&, const sv::RouteParams&) {
               return sv::HttpResponse::json(202, "{}");
             });
  router.add("GET", "/boom", "boom",
             [](const sv::HttpRequest&, const sv::RouteParams&)
                 -> sv::HttpResponse {
               throw std::runtime_error("handler bug");
             });
  return router;
}

sv::HttpRequest get(const std::string& path) {
  sv::HttpRequest req;
  req.method = "GET";
  req.path = path;
  return req;
}

}  // namespace

TEST(ServeRouter, MatchesParamsAndDecodesThem) {
  const auto d = demoRouter().dispatch(get("/v1/jobs/job%2D7"));
  EXPECT_EQ(d.response.status, 200);
  EXPECT_EQ(d.response.body, "id=job-7");
  EXPECT_EQ(d.routeName, "jobs_status");
}

TEST(ServeRouter, UnknownPathIs404WithRouteNameOther) {
  const auto d = demoRouter().dispatch(get("/nope"));
  EXPECT_EQ(d.response.status, 404);
  EXPECT_EQ(d.routeName, "other");
}

TEST(ServeRouter, WrongMethodIs405WithAllowHeader) {
  sv::HttpRequest req = get("/v1/jobs");
  const auto d = demoRouter().dispatch(req);
  EXPECT_EQ(d.response.status, 405);
  bool sawAllow = false;
  for (const auto& [k, v] : d.response.extraHeaders)
    if (k == "Allow") {
      sawAllow = true;
      EXPECT_NE(v.find("POST"), std::string::npos);
    }
  EXPECT_TRUE(sawAllow);
}

TEST(ServeRouter, HandlerExceptionBecomes500) {
  const auto d = demoRouter().dispatch(get("/boom"));
  EXPECT_EQ(d.response.status, 500);
  EXPECT_EQ(d.routeName, "boom");
}

TEST(ServeRouter, RouteNamesIncludeOtherForMetrics) {
  const auto names = demoRouter().routeNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "other"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "jobs_submit"),
            names.end());
}
