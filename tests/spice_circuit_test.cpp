// Circuit container semantics: node registry, device registry, model
// registries, removal.

#include <gtest/gtest.h>

#include "spice/circuit.h"
#include "spice/passive.h"
#include "util/error.h"

namespace sp = ahfic::spice;

TEST(Circuit, GroundAliases) {
  sp::Circuit ckt;
  EXPECT_EQ(ckt.node("0"), 0);
  EXPECT_EQ(ckt.node("gnd"), 0);
  EXPECT_EQ(ckt.node("GND"), 0);
  EXPECT_EQ(ckt.nodeCount(), 1);
}

TEST(Circuit, NodeNamesAreCaseInsensitive) {
  sp::Circuit ckt;
  const int a = ckt.node("OutNode");
  EXPECT_EQ(ckt.node("outnode"), a);
  EXPECT_EQ(ckt.node("OUTNODE"), a);
  EXPECT_EQ(ckt.nodeCount(), 2);
  // The first-seen spelling is preserved for display.
  EXPECT_EQ(ckt.nodeName(a), "OutNode");
}

TEST(Circuit, FindNodeIsConst) {
  sp::Circuit ckt;
  ckt.node("a");
  const sp::Circuit& cref = ckt;
  EXPECT_GT(cref.findNode("a"), 0);
  EXPECT_EQ(cref.findNode("missing"), -1);
  EXPECT_EQ(ckt.nodeCount(), 2);  // findNode did not create anything
}

TEST(Circuit, NodeNameBoundsChecked) {
  sp::Circuit ckt;
  EXPECT_THROW(ckt.nodeName(-1), ahfic::Error);
  EXPECT_THROW(ckt.nodeName(99), ahfic::Error);
}

TEST(Circuit, InternalNodesAreUnique) {
  sp::Circuit ckt;
  const int a = ckt.internalNode("q1");
  const int b = ckt.internalNode("q1");
  EXPECT_NE(a, b);
  EXPECT_NE(ckt.nodeName(a), ckt.nodeName(b));
  EXPECT_NE(ckt.nodeName(a).find('#'), std::string::npos);
}

TEST(Circuit, DeviceRegistry) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::Resistor>("R1", a, 0, 1e3);
  ckt.add<sp::Resistor>("R2", a, 0, 2e3);
  EXPECT_NE(ckt.findDevice("r1"), nullptr);  // case-insensitive
  EXPECT_EQ(ckt.findDevice("r3"), nullptr);
  EXPECT_THROW(ckt.add<sp::Resistor>("r1", a, 0, 5e3), ahfic::Error);
}

TEST(Circuit, RemoveDeviceFixesIndex) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::Resistor>("R1", a, 0, 1e3);
  ckt.add<sp::Resistor>("R2", a, 0, 2e3);
  ckt.add<sp::Resistor>("R3", a, 0, 3e3);
  EXPECT_TRUE(ckt.removeDevice("R2"));
  EXPECT_FALSE(ckt.removeDevice("R2"));
  EXPECT_EQ(ckt.devices().size(), 2u);
  // R3 is still reachable after the index shift.
  auto* r3 = dynamic_cast<sp::Resistor*>(ckt.findDevice("R3"));
  ASSERT_NE(r3, nullptr);
  EXPECT_DOUBLE_EQ(r3->resistance(), 3e3);
  auto* r1 = dynamic_cast<sp::Resistor*>(ckt.findDevice("R1"));
  ASSERT_NE(r1, nullptr);
  EXPECT_DOUBLE_EQ(r1->resistance(), 1e3);
}

TEST(Circuit, ModelRegistries) {
  sp::Circuit ckt;
  sp::BjtModel q;
  q.bf = 77.0;
  ckt.addBjtModel("MyNpn", q);
  EXPECT_TRUE(ckt.hasBjtModel("mynpn"));
  EXPECT_FALSE(ckt.hasBjtModel("other"));
  EXPECT_DOUBLE_EQ(ckt.bjtModel("MYNPN").bf, 77.0);
  EXPECT_THROW(ckt.bjtModel("other"), ahfic::Error);

  sp::DiodeModel d;
  d.is = 3e-15;
  ckt.addDiodeModel("dd", d);
  EXPECT_DOUBLE_EQ(ckt.diodeModel("DD").is, 3e-15);
  EXPECT_THROW(ckt.diodeModel("nope"), ahfic::Error);
}

TEST(Circuit, ResistorSetterValidates) {
  sp::Circuit ckt;
  auto& r = ckt.add<sp::Resistor>("R1", ckt.node("a"), 0, 1e3);
  r.setResistance(2e3);
  EXPECT_DOUBLE_EQ(r.resistance(), 2e3);
  EXPECT_THROW(r.setResistance(0.0), ahfic::Error);
  EXPECT_THROW(ckt.add<sp::Resistor>("R2", ckt.node("a"), 0, -5.0),
               ahfic::Error);
  EXPECT_THROW(ckt.add<sp::Capacitor>("C1", ckt.node("a"), 0, -1e-12),
               ahfic::Error);
  EXPECT_THROW(ckt.add<sp::Inductor>("L1", ckt.node("a"), 0, 0.0),
               ahfic::Error);
}
