// Observability subsystem: histogram bucket invariants, lock-free shard
// merging under concurrent writers, Chrome trace well-formedness, and the
// runner's manifest metrics section.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bjtgen/generator.h"
#include "obs/cli.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/diode.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/json.h"

namespace bg = ahfic::bjtgen;
namespace obs = ahfic::obs;
namespace rn = ahfic::runner;
namespace u = ahfic::util;

namespace {

/// RAII guard: enables metrics (and optionally tracing) for one test and
/// restores the disabled default afterwards, so obs tests cannot leak
/// global state into unrelated tests in the same process.
struct ObsGuard {
  explicit ObsGuard(bool tracing = false) {
    obs::metrics().resetForTest();
    obs::setMetricsEnabled(true);
    if (tracing) {
      obs::clearTrace();
      obs::setTracingEnabled(true);
    }
  }
  ~ObsGuard() {
    obs::setMetricsEnabled(false);
    obs::setTracingEnabled(false);
    obs::clearTrace();
    obs::metrics().resetForTest();
  }
};

}  // namespace

TEST(ObsHistogram, BucketBoundariesAreLogUniform) {
  // ub(i) = 1e-3 * 10^(i/4): four buckets per decade, overflow at the
  // end. Every boundary must index into its own bucket (inclusive upper
  // bounds), and a nudge above it into the next.
  EXPECT_NEAR(obs::histogramBucketUpperBound(0), 1e-3, 1e-12);
  EXPECT_NEAR(obs::histogramBucketUpperBound(4), 1e-2, 1e-11);
  EXPECT_NEAR(obs::histogramBucketUpperBound(8), 1e-1, 1e-10);
  EXPECT_TRUE(std::isinf(
      obs::histogramBucketUpperBound(obs::kHistogramBuckets - 1)));

  for (int b = 0; b + 1 < obs::kHistogramBuckets; ++b) {
    const double ub = obs::histogramBucketUpperBound(b);
    EXPECT_EQ(obs::histogramBucketIndex(ub), b) << "boundary of bucket "
                                                << b;
    EXPECT_EQ(obs::histogramBucketIndex(ub * 1.0001), b + 1)
        << "just above bucket " << b;
    if (b > 0)
      EXPECT_GT(ub, obs::histogramBucketUpperBound(b - 1))
          << "bounds must be strictly increasing";
  }

  // Underflow, overflow, and junk all land in a valid bucket.
  EXPECT_EQ(obs::histogramBucketIndex(0.0), 0);
  EXPECT_EQ(obs::histogramBucketIndex(-5.0), 0);
  EXPECT_EQ(obs::histogramBucketIndex(std::nan("")), 0);
  EXPECT_EQ(obs::histogramBucketIndex(1e300),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogramBucketIndex(
                std::numeric_limits<double>::infinity()),
            obs::kHistogramBuckets - 1);
}

TEST(ObsHistogram, ObservationsLandInTheRightBuckets) {
  ObsGuard guard;
  const obs::Histogram h = obs::histogram("test.hist_buckets");
  h.observe(0.5);     // bucket for 0.5
  h.observe(0.5);
  h.observe(5000.0);  // a few decades up
  const auto snap = obs::metrics().snapshot();
  const auto* hs = snap.findHistogram("test.hist_buckets");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 3);
  EXPECT_NEAR(hs->sum, 5001.0, 1e-9);
  EXPECT_EQ(hs->buckets[static_cast<size_t>(
                obs::histogramBucketIndex(0.5))],
            2);
  EXPECT_EQ(hs->buckets[static_cast<size_t>(
                obs::histogramBucketIndex(5000.0))],
            1);
  // The p50 bucket bound must bracket 0.5 from above.
  EXPECT_GE(hs->quantile(0.5), 0.5);
  EXPECT_LT(hs->quantile(0.5), 1.0);
}

TEST(ObsHistogram, InterpolatedQuantilesAreFiniteAndOrdered) {
  ObsGuard guard;
  const obs::Histogram h = obs::histogram("test.hist_quantiles");
  // A two-decade spread: 90 fast observations, 10 slow ones.
  for (int k = 0; k < 90; ++k) h.observe(1.0);
  for (int k = 0; k < 10; ++k) h.observe(100.0);
  const auto snap = obs::metrics().snapshot();
  const auto* hs = snap.findHistogram("test.hist_quantiles");
  ASSERT_NE(hs, nullptr);

  const double p50 = hs->quantileInterpolated(0.50);
  const double p95 = hs->quantileInterpolated(0.95);
  const double p99 = hs->quantileInterpolated(0.99);
  // Interpolated values stay inside the landing bucket: p50 near 1,
  // p95/p99 near 100 — and the ordering is monotone and finite.
  EXPECT_GT(p50, 0.5);
  EXPECT_LT(p50, 2.0);
  EXPECT_GT(p95, 50.0);
  EXPECT_LT(p95, 200.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_TRUE(std::isfinite(p99));

  // Unlike quantile(), the overflow bucket stays finite.
  const obs::Histogram over = obs::histogram("test.hist_overflow_q");
  const obs::Histogram empty = obs::histogram("test.hist_empty_q");
  over.observe(1e300);
  const auto snap2 = obs::metrics().snapshot();
  const auto* os = snap2.findHistogram("test.hist_overflow_q");
  ASSERT_NE(os, nullptr);
  EXPECT_TRUE(std::isinf(os->quantile(0.5)));
  EXPECT_TRUE(std::isfinite(os->quantileInterpolated(0.5)));

  // Empty histogram: all quantiles are 0.
  const auto* es = snap2.findHistogram("test.hist_empty_q");
  ASSERT_NE(es, nullptr);
  EXPECT_EQ(es->quantileInterpolated(0.99), 0.0);
}

TEST(ObsMetrics, SummaryAndJsonCarryInterpolatedQuantiles) {
  ObsGuard guard;
  const obs::Histogram h = obs::histogram("test.hist_summary_q");
  for (int k = 0; k < 100; ++k) h.observe(10.0);
  const auto snap = obs::metrics().snapshot();

  const auto doc = u::parseJson(snap.toJsonString());
  const auto& e = doc.get("histograms").get("test.hist_summary_q");
  ASSERT_TRUE(e.has("p50"));
  ASSERT_TRUE(e.has("p95"));
  ASSERT_TRUE(e.has("p99"));
  EXPECT_GT(e.get("p50").asNumber(), 5.0);
  EXPECT_LT(e.get("p99").asNumber(), 20.0);

  const std::string tables = snap.summary();
  EXPECT_NE(tables.find("p95"), std::string::npos);
  EXPECT_NE(tables.find("p99"), std::string::npos);
}

TEST(ObsMetrics, RegistrySaturationDegradesVisibly) {
  ObsGuard guard;
  // Clamp the effective caps so the very next registration of each kind
  // saturates without burning real capacity (handles registered earlier
  // stay valid). Counters clamp to 1 — the pre-registered
  // obs.registry_saturated itself — and the value kinds to 0.
  obs::metrics().limitCapsForTest(1, 0, 0);

  const long long satBefore =
      obs::metrics().snapshot().counterValue("obs.registry_saturated");

  const obs::Counter c = obs::counter("test.sat_counter_overflow");
  const obs::Gauge g = obs::gauge("test.sat_gauge_overflow");
  const obs::Histogram h = obs::histogram("test.sat_hist_overflow");
  // Inert handles: writes are dropped, not crashed.
  c.add(5);
  g.set(1.0);
  h.observe(2.0);

  const auto snap = obs::metrics().snapshot();
  // The rejected registrations were counted on the pre-registered
  // saturation counter (one per rejected registration)...
  EXPECT_GE(snap.counterValue("obs.registry_saturated"), satBefore + 3);
  // ...and the overflow metrics never appeared.
  EXPECT_EQ(snap.counterValue("test.sat_counter_overflow"), 0);
  EXPECT_EQ(snap.findHistogram("test.sat_hist_overflow"), nullptr);

  obs::metrics().limitCapsForTest(-1, -1, -1);
  // Restored caps accept registrations again.
  const obs::Counter after = obs::counter("test.sat_counter_after");
  after.add(2);
  EXPECT_EQ(obs::metrics().snapshot().counterValue(
                "test.sat_counter_after"),
            2);
}

TEST(ObsMetrics, DisabledWritesAreDropped) {
  obs::metrics().resetForTest();
  ASSERT_FALSE(obs::metricsEnabled());
  const obs::Counter c = obs::counter("test.disabled_counter");
  c.add(100);
  EXPECT_EQ(obs::metrics().snapshot().counterValue(
                "test.disabled_counter"),
            0);
}

TEST(ObsMetrics, ConcurrentShardWritesMergeExactly) {
  ObsGuard guard;
  const obs::Counter c = obs::counter("test.concurrent_counter");
  const obs::Histogram h = obs::histogram("test.concurrent_hist");

  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c, &h] {
      for (int k = 0; k < kAddsPerThread; ++k) {
        c.add(1);
        h.observe(1.0);
      }
    });
  }
  for (auto& t : pool) t.join();

  const auto snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counterValue("test.concurrent_counter"),
            static_cast<long long>(kThreads) * kAddsPerThread);
  const auto* hs = snap.findHistogram("test.concurrent_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<long long>(kThreads) * kAddsPerThread);
  EXPECT_NEAR(hs->sum, static_cast<double>(kThreads) * kAddsPerThread,
              1e-6);
}

TEST(ObsMetrics, SnapshotSinceWindowsCounters) {
  ObsGuard guard;
  const obs::Counter c = obs::counter("test.windowed_counter");
  c.add(7);
  const auto before = obs::metrics().snapshot();
  c.add(5);
  const auto delta = obs::metrics().snapshot().since(before);
  EXPECT_EQ(delta.counterValue("test.windowed_counter"), 5);
}

TEST(ObsMetrics, JsonRoundTripsThroughParser) {
  ObsGuard guard;
  obs::counter("test.json_counter").add(3);
  obs::gauge("test.json_gauge").set(2.5);
  obs::histogram("test.json_hist").observe(10.0);

  const auto doc = u::parseJson(obs::metrics().snapshot().toJsonString());
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-metrics-v1");
  EXPECT_EQ(doc.get("counters").get("test.json_counter").asNumber(), 3.0);
  EXPECT_EQ(doc.get("gauges").get("test.json_gauge").asNumber(), 2.5);
  ASSERT_TRUE(doc.get("histograms").has("test.json_hist"));
  const auto& e = doc.get("histograms").get("test.json_hist");
  EXPECT_EQ(e.get("count").asNumber(), 1.0);
  EXPECT_EQ(e.get("sum").asNumber(), 10.0);
  ASSERT_GE(e.get("buckets").size(), 1u);
  EXPECT_EQ(e.get("buckets").at(0).get("n").asNumber(), 1.0);
  EXPECT_NEAR(e.get("buckets").at(0).get("le").asNumber(),
              obs::histogramBucketUpperBound(
                  obs::histogramBucketIndex(10.0)),
              1e-9);
}

TEST(ObsMetrics, RunnerAt8JobsProducesConsistentManifestMetrics) {
  // The satellite's concurrency check: a real batch at 8 workers with
  // metrics enabled — the manifest's metrics section must agree exactly
  // with the manifest's own per-job accounting.
  ObsGuard guard;
  const auto jobs = rn::monteCarloFtJobs(bg::defaultTechnology(),
                                         bg::ProcessVariation{}, 24,
                                         "N1.2-12D", 3e-3);
  rn::RunnerOptions opts;
  opts.threads = 8;
  opts.useCache = false;
  rn::BatchRunner runner(opts);
  const auto batch = runner.run(jobs);

  ASSERT_TRUE(batch.manifest.metrics.isObject());
  const auto& m = batch.manifest.metrics;
  EXPECT_EQ(m.get("counters").get("runner.jobs_completed").asNumber(),
            24.0);
  EXPECT_EQ(m.get("counters")
                .get("spice.newton_iterations")
                .asNumber(),
            static_cast<double>(batch.manifest.totalNewtonIterations()));

  // And the section survives the JSON round trip.
  const auto doc = u::parseJson(batch.manifest.toJsonString());
  ASSERT_TRUE(doc.has("metrics"));
  EXPECT_EQ(doc.get("metrics")
                .get("counters")
                .get("runner.jobs_completed")
                .asNumber(),
            24.0);
}

TEST(ObsMetrics, ManifestOmitsMetricsSectionWhenDisabled) {
  obs::metrics().resetForTest();
  ASSERT_FALSE(obs::metricsEnabled());
  const auto jobs = rn::monteCarloFtJobs(bg::defaultTechnology(),
                                         bg::ProcessVariation{}, 4,
                                         "N1.2-12D", 3e-3);
  rn::RunnerOptions opts;
  opts.threads = 2;
  opts.useCache = false;
  rn::BatchRunner runner(opts);
  const auto batch = runner.run(jobs);
  EXPECT_FALSE(batch.manifest.metrics.isObject());
  EXPECT_FALSE(u::parseJson(batch.manifest.toJsonString()).has("metrics"));
}

TEST(ObsTrace, ChromeTraceJsonIsWellFormedWithNestingAndLanes) {
  ObsGuard guard(/*tracing=*/true);
  obs::nameCurrentThreadLane("main");

  // A real multi-worker batch: spans nest job -> analysis -> Newton and
  // every worker gets its own named lane. Each job sleeps long enough
  // that all four workers participate before the queue drains (25 ms
  // per job vs. microseconds of thread spawn skew).
  std::vector<rn::Job> jobs;
  for (int k = 0; k < 8; ++k) {
    rn::Job job;
    job.key = "trace/j" + std::to_string(k);
    job.run = [](rn::JobContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      ahfic::spice::Circuit ckt;
      const int a = ckt.node("a");
      ahfic::spice::DiodeModel dm;
      dm.is = 1e-14;
      ckt.add<ahfic::spice::ISource>("I1", 0, a, 1e-3);
      ckt.add<ahfic::spice::Diode>("D1", ckt, a, 0, dm);
      ahfic::spice::Analyzer an(ckt);
      an.op();
      return rn::JobResult{};
    };
    jobs.push_back(std::move(job));
  }
  rn::RunnerOptions opts;
  opts.threads = 4;
  opts.useCache = false;
  rn::BatchRunner runner(opts);
  runner.run(jobs);

  const auto doc = u::parseJson(obs::traceJson());
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& evs = doc.get("traceEvents");
  ASSERT_GT(evs.size(), 0u);

  std::vector<std::string> laneNames;
  struct Ev {
    double ts, dur;
    long tid;
    std::string name;
  };
  std::vector<Ev> spans;
  for (size_t k = 0; k < evs.size(); ++k) {
    const auto& e = evs.at(k);
    const std::string ph = e.get("ph").asString();
    if (ph == "M" && e.get("name").asString() == "thread_name") {
      laneNames.push_back(e.get("args").get("name").asString());
    } else if (ph == "X") {
      spans.push_back({e.get("ts").asNumber(), e.get("dur").asNumber(),
                       static_cast<long>(e.get("tid").asNumber()),
                       e.get("name").asString()});
      EXPECT_GE(spans.back().dur, 0.0);
    }
  }
  // One named lane per worker.
  for (const char* want : {"worker-0", "worker-1", "worker-2", "worker-3"})
    EXPECT_NE(std::find(laneNames.begin(), laneNames.end(), want),
              laneNames.end())
        << "missing lane " << want;

  // Nesting: per lane, events are properly contained — and at least one
  // chain reaches job -> extraction -> solver depth (>= 3).
  int maxDepth = 0;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Ev& a, const Ev& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<const Ev*> stack;
  long tid = -1;
  for (const Ev& e : spans) {
    if (e.tid != tid) {
      stack.clear();
      tid = e.tid;
    }
    while (!stack.empty() &&
           e.ts >= stack.back()->ts + stack.back()->dur)
      stack.pop_back();
    // Containment, not straddling: a nested span ends within its parent.
    if (!stack.empty())
      EXPECT_LE(e.ts + e.dur,
                stack.back()->ts + stack.back()->dur + 1e-3);
    stack.push_back(&e);
    maxDepth = std::max(maxDepth, static_cast<int>(stack.size()));
  }
  EXPECT_GE(maxDepth, 3);
}

TEST(ObsTrace, WriteTraceFileRoundTrips) {
  ObsGuard guard(/*tracing=*/true);
  {
    obs::ScopedSpan outer("test.outer", "test");
    obs::ScopedSpan inner("test.inner", "test");
    inner.note("k", 42.0);
  }
  const std::string path = "obs_test_trace.json";
  obs::writeTraceFile(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream ss;
  ss << f.rdbuf();
  std::remove(path.c_str());

  const auto doc = u::parseJson(ss.str());
  const auto& evs = doc.get("traceEvents");
  bool sawInner = false;
  for (size_t k = 0; k < evs.size(); ++k) {
    const auto& e = evs.at(k);
    if (e.get("ph").asString() == "X" &&
        e.get("name").asString() == "test.inner") {
      sawInner = true;
      EXPECT_EQ(e.get("cat").asString(), "test");
      EXPECT_EQ(e.get("args").get("k").asNumber(), 42.0);
    }
  }
  EXPECT_TRUE(sawInner);
  EXPECT_EQ(obs::droppedTraceEvents(), 0);
}

TEST(ObsTrace, SpanTotalsAggregateByName) {
  ObsGuard guard(/*tracing=*/true);
  for (int k = 0; k < 3; ++k) obs::ScopedSpan span("test.repeat", "test");
  const auto totals = obs::spanTotals();
  bool found = false;
  for (const auto& t : totals) {
    if (t.name != "test.repeat") continue;
    found = true;
    EXPECT_EQ(t.count, 3);
    EXPECT_GE(t.totalUs, 0.0);
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(obs::spanSummary().empty());
}

TEST(ObsCli, ConsumeParsesAndValidatesFlags) {
  obs::CliOptions cli;
  const char* argvIn[] = {"prog", "--trace", "t.json", "--other",
                         "--metrics", "m.json"};
  char* argv[6];
  for (int k = 0; k < 6; ++k) argv[k] = const_cast<char*>(argvIn[k]);
  std::vector<std::string> rest;
  for (int k = 1; k < 6; ++k) {
    if (cli.consume(6, argv, k)) continue;
    rest.emplace_back(argv[k]);
  }
  EXPECT_EQ(cli.tracePath, "t.json");
  EXPECT_EQ(cli.metricsPath, "m.json");
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "--other");
  EXPECT_TRUE(cli.anyEnabled());

  obs::CliOptions bad;
  const char* argvBad[] = {"prog", "--trace"};
  char* argv2[2];
  for (int k = 0; k < 2; ++k) argv2[k] = const_cast<char*>(argvBad[k]);
  int k = 1;
  EXPECT_THROW(bad.consume(2, argv2, k), ahfic::Error);
}
