// AHDL dataflow and expression-dimension checks.

#include "lint/ahdl.h"

#include <gtest/gtest.h>

#include "ahdl/blocks.h"
#include "ahdl/expr.h"
#include "ahdl/lang.h"
#include "ahdl/system.h"

namespace lint = ahfic::lint;
namespace ah = ahfic::ahdl;

TEST(LintAhdl, CleanChainHasNoDiagnostics) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"rf"}, "src", 45e6, 1.0);
  sys.add<ah::Amplifier>({"rf"}, {"out"}, "a1", 4.0);
  sys.probe("out");
  const auto r = lint::lintSystem(sys);
  EXPECT_TRUE(r.empty()) << r.renderText();
}

TEST(LintAhdl, ReadButNeverWrittenSignalIsUndriven) {
  ah::System sys;
  sys.add<ah::Amplifier>({"ghost"}, {"out"}, "a1", 2.0);
  sys.probe("out");
  const auto r = lint::lintSystem(sys);
  ASSERT_TRUE(r.hasCode("AHDL_UNDRIVEN")) << r.renderText();
  const auto* d = r.find("AHDL_UNDRIVEN");
  EXPECT_NE(d->message.find("ghost"), std::string::npos);
  EXPECT_NE(d->message.find("a1"), std::string::npos);
}

TEST(LintAhdl, TwoWritersOfOneSignalAreMultiDriven) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"x"}, "s1", 1e6, 1.0);
  sys.add<ah::SineSource>({}, {"x"}, "s2", 2e6, 1.0);
  sys.probe("x");
  const auto r = lint::lintSystem(sys);
  ASSERT_TRUE(r.hasCode("AHDL_MULTI_DRIVEN")) << r.renderText();
  EXPECT_NE(r.find("AHDL_MULTI_DRIVEN")->message.find("s2"),
            std::string::npos);
}

TEST(LintAhdl, UnreadUnprobedOutputIsUnusedBlock) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"used"}, "s1", 1e6, 1.0);
  sys.add<ah::SineSource>({}, {"dead"}, "s2", 2e6, 1.0);
  sys.probe("used");
  const auto r = lint::lintSystem(sys);
  ASSERT_TRUE(r.hasCode("AHDL_UNUSED_BLOCK")) << r.renderText();
  EXPECT_NE(r.find("AHDL_UNUSED_BLOCK")->message.find("s2"),
            std::string::npos);
  EXPECT_EQ(r.find("AHDL_UNUSED_BLOCK")->severity,
            lint::Severity::kWarning);
}

TEST(LintAhdl, ProbedSignalWithoutDriverWarns) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"x"}, "s1", 1e6, 1.0);
  sys.signal("silent");
  sys.probe("x");
  sys.probe("silent");
  const auto r = lint::lintSystem(sys);
  EXPECT_TRUE(r.hasCode("AHDL_PROBE_UNDRIVEN")) << r.renderText();
}

TEST(LintAhdl, MemorylessFeedbackLoopIsACombCycle) {
  ah::System sys;
  // adder -> amp -> back into the adder: no delay element anywhere.
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 1.0);
  sys.add<ah::Adder>({"in", "fb"}, {"sum"}, "add", 2);
  sys.add<ah::Amplifier>({"sum"}, {"fb"}, "gain", 0.5);
  sys.probe("sum");
  const auto r = lint::lintSystem(sys);
  ASSERT_TRUE(r.hasCode("AHDL_COMB_CYCLE")) << r.renderText();
  const auto& msg = r.find("AHDL_COMB_CYCLE")->message;
  EXPECT_NE(msg.find("add"), std::string::npos);
  EXPECT_NE(msg.find("gain"), std::string::npos);
}

TEST(LintAhdl, LoopThroughIntegratorIsNotFlagged) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 1.0);
  sys.add<ah::Adder>({"in", "fb"}, {"sum"}, "add", 2);
  sys.add<ah::IntegratorBlock>({"sum"}, {"fb"}, "int", 0.5);
  sys.probe("sum");
  const auto r = lint::lintSystem(sys);
  EXPECT_FALSE(r.hasCode("AHDL_COMB_CYCLE")) << r.renderText();
}

TEST(LintAhdl, SelfLoopOnMemorylessBlockIsACombCycle) {
  ah::System sys;
  sys.add<ah::Amplifier>({"x"}, {"x"}, "osc", 1.01);
  sys.probe("x");
  const auto r = lint::lintSystem(sys);
  EXPECT_TRUE(r.hasCode("AHDL_COMB_CYCLE")) << r.renderText();
}

TEST(LintAhdl, VoltagePlusTimeIsADimensionMismatch) {
  const auto expr = ah::parseExpression("V(in) + t");
  lint::LintReport r;
  lint::lintExpr(*expr, "m1.out", r);
  ASSERT_TRUE(r.hasCode("AHDL_DIM_MISMATCH")) << r.renderText();
  EXPECT_NE(r.find("AHDL_DIM_MISMATCH")->message.find("voltage"),
            std::string::npos);
}

TEST(LintAhdl, ParameterScaledMixesAreNotFlagged) {
  // gain*V(in) + offset, sin(2*pi*f*t): parameters absorb dimensions.
  lint::LintReport r;
  lint::lintExpr(*ah::parseExpression("gain * V(in) + offset"), "m", r);
  lint::lintExpr(*ah::parseExpression("sin(2*pi*f*t) * V(a)/2"), "m", r);
  lint::lintExpr(*ah::parseExpression("V(a) - V(b)"), "m", r);
  lint::lintExpr(*ah::parseExpression("V(a)/V(b) + 1"), "m", r);
  EXPECT_TRUE(r.empty()) << r.renderText();
}

TEST(LintAhdl, DimensionlessPlusVoltageIsFlagged) {
  lint::LintReport r;
  lint::lintExpr(*ah::parseExpression("V(in) + 1"), "m", r);
  EXPECT_TRUE(r.hasCode("AHDL_DIM_MISMATCH")) << r.renderText();
}

TEST(LintAhdl, ExprBlocksInsideSystemsAreChecked) {
  const auto netlist = ah::parseAhdl(R"(
module bad (in, out) {
  analog { V(out) <- V(in) + t; }
}
signal a, b;
instance src = sine(freq=1MEG, amp=1) (a);
instance m = bad() (a, b);
probe b;
run tstop=1u, fs=100MEG;
)");
  const auto r = lint::lintSystem(netlist.system);
  EXPECT_TRUE(r.hasCode("AHDL_DIM_MISMATCH")) << r.renderText();
}

TEST(LintAhdl, LintAhdlTextHandlesParseFailures) {
  const auto r = lint::lintAhdlText("instance x = nosuchblock() (a);\n");
  EXPECT_TRUE(r.hasCode("PARSE")) << r.renderText();
  EXPECT_TRUE(r.hasErrors());
}

TEST(LintAhdl, LintAhdlTextFlagsMissingRunSpec) {
  const auto r = lint::lintAhdlText(R"(
signal a;
instance src = sine(freq=1MEG, amp=1) (a);
probe a;
)");
  EXPECT_TRUE(r.hasCode("AHDL_NO_RUN")) << r.renderText();
  EXPECT_FALSE(r.hasErrors()) << r.renderText();
}
