// Subcircuit (.SUBCKT / X) flattening tests.

#include <gtest/gtest.h>

#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/mosfet.h"
#include "spice/parser.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace sp = ahfic::spice;

TEST(Subckt, BasicDividerExpansion) {
  auto deck = sp::parseDeck(R"(divider as subckt
.SUBCKT div in out
R1 in out 1k
R2 out 0 1k
.ENDS
V1 a 0 10
X1 a mid div
.END
)");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(deck.circuit.findNode("mid")), 5.0, 1e-9);
  // Devices got hierarchical names.
  EXPECT_NE(deck.circuit.findDevice("X1.R1"), nullptr);
  EXPECT_NE(deck.circuit.findDevice("X1.R2"), nullptr);
}

TEST(Subckt, TwoInstancesAreIndependent) {
  auto deck = sp::parseDeck(R"(two dividers
.SUBCKT div in out
R1 in out 1k
R2 out 0 3k
.ENDS
V1 a 0 8
X1 a m1 div
X2 m1 m2 div
)");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  // Loading of the first divider by the second shifts m1 below 6 V.
  EXPECT_LT(s.at(deck.circuit.findNode("m1")), 6.0);
  EXPECT_GT(s.at(deck.circuit.findNode("m2")), 0.0);
  EXPECT_NE(deck.circuit.findDevice("X2.R1"), nullptr);
}

TEST(Subckt, InternalNodesAreScoped) {
  auto deck = sp::parseDeck(R"(internal node isolation
.SUBCKT rr a b
R1 a mid 1k
R2 mid b 1k
.ENDS
V1 in 0 2
X1 in out rr
X2 in out rr
RL out 0 1k
)");
  // Each instance has its own "mid": 2 instances in parallel halves the
  // series resistance.
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  // Vout = 2 * 1k/(1k + 1k) = 1.0 (two parallel 2k paths = 1k).
  EXPECT_NEAR(s.at(deck.circuit.findNode("out")), 1.0, 1e-9);
  EXPECT_NE(deck.circuit.findNode("x1.mid"), -1);
  EXPECT_NE(deck.circuit.findNode("x2.mid"), -1);
  EXPECT_NE(deck.circuit.findNode("x1.mid"),
            deck.circuit.findNode("x2.mid"));
}

TEST(Subckt, GroundIsGlobal) {
  auto deck = sp::parseDeck(R"(ground stays global
.SUBCKT g2 a
R1 a 0 1k
.ENDS
V1 in 0 5
X1 in g2
)");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  auto* v1 = dynamic_cast<sp::VSource*>(deck.circuit.findDevice("V1"));
  EXPECT_NEAR(s.at(v1->branchId()), -5e-3, 1e-9);
}

TEST(Subckt, DefinitionAfterUse) {
  auto deck = sp::parseDeck(R"(use before definition
V1 a 0 1
X1 a b div
RL b 0 1k
.SUBCKT div in out
R1 in out 1k
.ENDS
)");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(deck.circuit.findNode("b")), 0.5, 1e-9);
}

TEST(Subckt, NestedCalls) {
  auto deck = sp::parseDeck(R"(nested subcircuits
.SUBCKT unit a b
R1 a b 1k
.ENDS
.SUBCKT pair a b
X1 a m unit
X2 m b unit
.ENDS
V1 in 0 3
X1 in out pair
RL out 0 1k
)");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  // 2k series into 1k load: Vout = 1.0.
  EXPECT_NEAR(s.at(deck.circuit.findNode("out")), 1.0, 1e-9);
  EXPECT_NE(deck.circuit.findDevice("X1.X1.R1"), nullptr);
  EXPECT_NE(deck.circuit.findDevice("X1.X2.R1"), nullptr);
}

TEST(Subckt, SemiconductorsInsideSubckt) {
  auto deck = sp::parseDeck(R"(bjt stage as a cell
.MODEL n1 NPN(IS=1e-16 BF=100)
.SUBCKT ce in out vcc
RC vcc out 1k
Q1 out in e n1
RE e 0 200
.ENDS
VCC vdd 0 8
VIN b 0 1.8
X1 b c vdd ce
)");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  const double vout = s.at(deck.circuit.findNode("c"));
  EXPECT_GT(vout, 1.0);
  EXPECT_LT(vout, 7.0);
  auto* q = dynamic_cast<sp::Bjt*>(deck.circuit.findDevice("X1.Q1"));
  ASSERT_NE(q, nullptr);
}

TEST(Subckt, MosfetCardParses) {
  auto deck = sp::parseDeck(R"(mos divider
.MODEL nm NMOS(VTO=0.8 KP=50u LAMBDA=0.02)
VDD vdd 0 5
VG g 0 1.5
RD vdd d 10k
M1 d g 0 0 nm W=20u L=2u
)");
  auto* m = dynamic_cast<sp::Mosfet*>(deck.circuit.findDevice("M1"));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->width(), 20e-6);
  EXPECT_DOUBLE_EQ(m->length(), 2e-6);
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_LT(s.at(deck.circuit.findNode("d")), 5.0);  // draws current
}

class SubcktErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SubcktErrorTest, Rejected) {
  EXPECT_THROW(sp::parseDeck(GetParam()), ahfic::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Errors, SubcktErrorTest,
    ::testing::Values(
        "t\n.SUBCKT s a\nR1 a 0 1k\n",                    // missing .ENDS
        "t\n.ENDS\n",                                      // stray .ENDS
        "t\n.SUBCKT s a\n.SUBCKT t b\n.ENDS\n.ENDS\n",     // nested defs
        "t\n.SUBCKT s\n.ENDS\n",                           // no ports
        "t\nX1 a b nosuch\n",                              // unknown subckt
        "t\n.SUBCKT s a b\nR1 a b 1k\n.ENDS\nX1 a s\n",    // arity
        "t\n.SUBCKT s a\n.TRAN 1n 10n\n.ENDS\nX1 a s\n",   // card in body
        "t\n.SUBCKT s a\nR1 a 0 1k\n.ENDS\n"
        ".SUBCKT s a\nR1 a 0 2k\n.ENDS\n",                 // duplicate
        "t\nM1 d g s nm\n",                                // M needs 4 nodes
        "t\n.MODEL nm NMOS(VTO=1)\nM1 d g s b nm Q=1\n")); // bad param

TEST(Subckt, RecursionGuard) {
  EXPECT_THROW(sp::parseDeck(R"(self reference
.SUBCKT loop a
X1 a loop
.ENDS
X0 n loop
)"),
               ahfic::Error);
}
