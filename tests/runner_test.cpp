// Batch runner: determinism across worker counts, retry escalation,
// cache behaviour (in-memory and on-disk), and manifest accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bjtgen/generator.h"
#include "bjtgen/montecarlo.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/json.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace sp = ahfic::spice;

namespace {

/// The Monte-Carlo workload of the acceptance criteria: >= 64 dies, one
/// cheap analytic-fT job each, all randomness from the job seed.
std::vector<rn::Job> mcJobs(int dies) {
  return rn::monteCarloFtJobs(bg::defaultTechnology(),
                              bg::ProcessVariation{}, dies, "N1.2-12D",
                              3e-3);
}

rn::BatchResult runWithThreads(const std::vector<rn::Job>& jobs,
                               int threads, bool useCache = false) {
  rn::RunnerOptions opts;
  opts.threads = threads;
  opts.baseSeed = 42;
  opts.useCache = useCache;
  rn::BatchRunner runner(opts);
  return runner.run(jobs);
}

void expectIdenticalBatches(const rn::BatchResult& a,
                            const rn::BatchResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t k = 0; k < a.outcomes.size(); ++k) {
    SCOPED_TRACE("job " + a.outcomes[k].record.key);
    EXPECT_EQ(a.outcomes[k].record.status, b.outcomes[k].record.status);
    ASSERT_EQ(a.outcomes[k].result.metrics.size(),
              b.outcomes[k].result.metrics.size());
    for (size_t m = 0; m < a.outcomes[k].result.metrics.size(); ++m) {
      EXPECT_EQ(a.outcomes[k].result.metrics[m].first,
                b.outcomes[k].result.metrics[m].first);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a.outcomes[k].result.metrics[m].second,
                b.outcomes[k].result.metrics[m].second);
    }
  }
}

}  // namespace

TEST(RunnerSeeds, DerivedSeedsAreStableAndDecorrelated) {
  EXPECT_EQ(rn::deriveJobSeed(1, 0), rn::deriveJobSeed(1, 0));
  EXPECT_NE(rn::deriveJobSeed(1, 0), rn::deriveJobSeed(1, 1));
  EXPECT_NE(rn::deriveJobSeed(1, 0), rn::deriveJobSeed(2, 0));
}

TEST(RunnerDeterminism, MonteCarlo64DiesIdenticalAcross1And2And8Threads) {
  const auto jobs = mcJobs(64);
  const auto serial = runWithThreads(jobs, 1);
  const auto two = runWithThreads(jobs, 2);
  const auto eight = runWithThreads(jobs, 8);

  ASSERT_EQ(serial.outcomes.size(), 64u);
  EXPECT_EQ(serial.manifest.threads, 1);
  EXPECT_EQ(two.manifest.threads, 2);
  EXPECT_EQ(eight.manifest.threads, 8);
  expectIdenticalBatches(serial, two);
  expectIdenticalBatches(serial, eight);

  // The dies genuinely differ from each other (the variation model is on).
  const double f0 = serial.outcomes[0].result.get("ft");
  const double f1 = serial.outcomes[1].result.get("ft");
  EXPECT_GT(f0, 1e9);
  EXPECT_NE(f0, f1);
}

TEST(RunnerDeterminism, Fig9SweepIdenticalAcrossThreadCounts) {
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const auto jobs =
      rn::fig9SweepJobs(gen, bg::fig9Shapes(), {0.5e-3, 2e-3, 8e-3});
  const auto serial = runWithThreads(jobs, 1);
  const auto four = runWithThreads(jobs, 4);
  expectIdenticalBatches(serial, four);
  // Spot-check physics: fT at 2 mA is in the GHz range for every shape.
  for (size_t s = 0; s < bg::fig9Shapes().size(); ++s)
    EXPECT_GT(serial.outcomes[s * 3 + 1].result.get("ft"), 1e9);
}

TEST(RunnerRetry, HardOpRecoversOnLadderAndFailureStaysContained) {
  // A real circuit job that genuinely fails at rung 0: with a single
  // Newton iteration per solve, no nonlinear circuit can ever satisfy the
  // (converged && iter > 0) acceptance rule, so plain Newton, gmin
  // stepping, and source stepping all exhaust. The standard options of
  // the next rung solve it.
  sp::AnalysisOptions strangled;
  strangled.maxNewtonIters = 1;
  rn::RetryLadder ladder({{"strangled", strangled},
                          {"standard", sp::AnalysisOptions{}}});

  auto makeOpJob = [](const std::string& key) {
    rn::Job job;
    job.key = key;
    job.run = [](rn::JobContext& ctx) {
      sp::Circuit ckt;
      const int c = ckt.node("c"), b = ckt.node("b");
      ckt.add<sp::VSource>("VB", b, 0, 0.85);
      ckt.add<sp::VSource>("VC", c, 0, 2.0);
      ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, sp::BjtModel{});
      sp::Analyzer an(ckt, ctx.options);
      const auto x = an.op();
      ctx.noteStats(an.stats());
      rn::JobResult r;
      r.set("vc", x[static_cast<size_t>(c - 1)]);
      return r;
    };
    return job;
  };

  // One recoverable job, one unconditionally-failing job, one easy job:
  // the batch must complete with per-job statuses, no exception escaping.
  rn::Job doomed;
  doomed.key = "doomed";
  doomed.run = [](rn::JobContext&) -> rn::JobResult {
    throw ahfic::ConvergenceError("synthetic: never converges");
  };
  rn::Job broken;
  broken.key = "broken";
  broken.run = [](rn::JobContext&) -> rn::JobResult {
    throw ahfic::Error("synthetic: bad input");  // non-retryable
  };

  rn::RunnerOptions opts;
  opts.threads = 2;
  opts.ladder = ladder;
  opts.useCache = false;
  rn::BatchRunner runner(opts);
  const auto batch =
      runner.run({makeOpJob("hard-op"), doomed, broken,
                  makeOpJob("hard-op-2")});

  const auto& hard = batch.outcomes[0];
  EXPECT_EQ(hard.record.status, rn::JobStatus::kRecovered);
  EXPECT_EQ(hard.record.rung, 1);
  EXPECT_EQ(hard.record.rungName, "standard");
  EXPECT_EQ(hard.record.attempts, 2);
  EXPECT_GT(hard.record.newtonIterations, 0);
  EXPECT_NEAR(hard.result.get("vc"), 2.0, 1e-9);

  const auto& d = batch.outcomes[1];
  EXPECT_EQ(d.record.status, rn::JobStatus::kFailed);
  EXPECT_EQ(d.record.attempts, 2);  // tried every rung
  EXPECT_NE(d.record.error.find("never converges"), std::string::npos);

  const auto& b = batch.outcomes[2];
  EXPECT_EQ(b.record.status, rn::JobStatus::kFailed);
  EXPECT_EQ(b.record.attempts, 1);  // no pointless escalation

  EXPECT_EQ(batch.manifest.countWithStatus(rn::JobStatus::kRecovered), 2);
  EXPECT_EQ(batch.manifest.countWithStatus(rn::JobStatus::kFailed), 2);
  EXPECT_EQ(batch.manifest.totalRetries(), 3);
}

TEST(RunnerCache, RepeatedBatchHitsWithoutRecomputing) {
  // Execution counter shared by every job body: cache hits must not
  // re-enter the lambdas.
  auto counter = std::make_shared<std::atomic<int>>(0);
  std::vector<rn::Job> jobs;
  for (int k = 0; k < 6; ++k) {
    rn::Job job;
    job.key = "count/" + std::to_string(k % 3);  // 3 distinct keys
    job.run = [counter, k](rn::JobContext&) {
      ++*counter;
      rn::JobResult r;
      r.set("value", (k % 3) * 10.0);
      return r;
    };
    jobs.push_back(std::move(job));
  }

  rn::RunnerOptions opts;
  opts.threads = 1;  // serial: duplicate keys hit within the batch too
  rn::BatchRunner runner(opts);
  const auto first = runner.run(jobs);
  EXPECT_EQ(counter->load(), 3);
  EXPECT_EQ(first.manifest.cacheHits(), 3);

  const auto second = runner.run(jobs);
  EXPECT_EQ(counter->load(), 3);  // nothing recomputed
  EXPECT_EQ(second.manifest.cacheHits(), 6);
  for (size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_TRUE(second.outcomes[k].record.cacheHit);
    EXPECT_EQ(second.outcomes[k].result.get("value"),
              first.outcomes[k].result.get("value"));
  }
}

TEST(RunnerCache, SeededJobsDoNotAliasAcrossBaseSeeds) {
  const auto jobs = mcJobs(4);
  rn::RunnerOptions opts;
  opts.threads = 1;
  opts.baseSeed = 1;
  rn::BatchRunner r1(opts);
  const auto a = r1.run(jobs);
  opts.baseSeed = 2;
  rn::BatchRunner r2(opts);
  const auto b = r2.run(jobs);
  // Different base seed -> different dies; a shared cache must not serve
  // seed-1 results for seed-2 (distinct effective keys).
  EXPECT_NE(a.outcomes[0].result.get("ft"), b.outcomes[0].result.get("ft"));
}

TEST(RunnerCache, DiskRoundTripReproducesBitIdenticalResults) {
  const std::string path = "runner_test_cache.json";
  std::remove(path.c_str());

  const auto jobs = mcJobs(8);
  rn::RunnerOptions opts;
  opts.threads = 2;
  opts.baseSeed = 7;
  opts.cacheFile = path;
  rn::BatchRunner writer(opts);
  const auto computed = writer.run(jobs);

  // A fresh runner process loads the file and serves every job from it.
  rn::BatchRunner reader(opts);
  const auto cached = reader.run(jobs);
  EXPECT_EQ(cached.manifest.cacheHits(), 8);
  expectIdenticalBatches(computed, cached);
  std::remove(path.c_str());
}

TEST(RunnerManifest, JsonExportIsParseableAndAccurate) {
  const auto jobs = mcJobs(5);
  const auto batch = runWithThreads(jobs, 2);
  const auto doc = ahfic::util::parseJson(batch.manifest.toJsonString());

  EXPECT_EQ(doc.get("schema").asString(), "ahfic-run-manifest-v1");
  EXPECT_EQ(doc.get("threads").asNumber(), 2.0);
  EXPECT_EQ(doc.get("jobs").size(), 5u);
  EXPECT_EQ(doc.get("aggregate").get("jobs").asNumber(), 5.0);
  EXPECT_EQ(doc.get("aggregate").get("ok").asNumber(), 5.0);
  EXPECT_EQ(doc.get("aggregate").get("failed").asNumber(), 0.0);
  EXPECT_GT(doc.get("aggregate").get("newtonIterations").asNumber(), 0.0);
  EXPECT_GT(doc.get("wallMs").asNumber(), 0.0);
  const auto& job0 = doc.get("jobs").at(0);
  EXPECT_EQ(job0.get("status").asString(), "ok");
  EXPECT_GT(job0.get("newtonIterations").asNumber(), 0.0);
  EXPECT_NE(job0.get("key").asString().find("mc-ft/die0"),
            std::string::npos);

  // First-try successes still carry explicit retry fields, so downstream
  // parsers never need null-handling.
  for (size_t k = 0; k < doc.get("jobs").size(); ++k) {
    const auto& j = doc.get("jobs").at(k);
    ASSERT_TRUE(j.has("retries"));
    ASSERT_TRUE(j.has("rungName"));
    EXPECT_EQ(j.get("retries").asNumber(), 0.0);
    EXPECT_EQ(j.get("rungName").asString(), "default");
  }
}

TEST(RunnerWorkloads, IrrYieldChunkingMatchesLayoutAndIsDeterministic) {
  const std::vector<rn::IrrYieldCorner> corners = {{1.0, 0.01},
                                                   {4.0, 0.04}};
  const auto jobs = rn::irrYieldJobs(corners, 30.0, 1000, 4);
  ASSERT_EQ(jobs.size(), 8u);

  const auto serial = runWithThreads(jobs, 1);
  const auto parallel = runWithThreads(jobs, 8);
  expectIdenticalBatches(serial, parallel);

  const auto yields = rn::reduceIrrYield(serial.outcomes, 2, 4);
  ASSERT_EQ(yields.size(), 2u);
  EXPECT_EQ(yields[0].samples, 1000);
  EXPECT_EQ(yields[1].samples, 1000);
  // Tighter mismatch -> better yield, by a wide margin.
  EXPECT_GT(yields[0].yield(), yields[1].yield());
  EXPECT_GT(yields[0].yield(), 0.9);
}

TEST(RunnerWorkloads, CornerJobsBracketTypical) {
  const auto jobs = rn::cornerFtJobs(bg::defaultTechnology(),
                                     bg::ProcessVariation{}, "N1.2-12D",
                                     3e-3);
  ASSERT_EQ(jobs.size(), 3u);
  const auto batch = runWithThreads(jobs, 2);
  ASSERT_TRUE(batch.outcomes[0].ok());
  ASSERT_TRUE(batch.outcomes[1].ok());
  ASSERT_TRUE(batch.outcomes[2].ok());
  const double slow = batch.outcomes[0].result.get("ft");
  const double typical = batch.outcomes[1].result.get("ft");
  const double fast = batch.outcomes[2].result.get("ft");
  EXPECT_LT(slow, typical);
  EXPECT_LT(typical, fast);
}
