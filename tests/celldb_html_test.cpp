// celldb HTML renderers: escaping of user-controlled content (the same
// code path serves static reports and the live ahficd pages) and the
// static/live renderer split.

#include <gtest/gtest.h>

#include <string>

#include "celldb/cell.h"
#include "celldb/database.h"
#include "celldb/html.h"

namespace cd = ahfic::celldb;

TEST(CelldbEscape, AngleBracketsAmpersandAndQuotes) {
  EXPECT_EQ(cd::escapeHtml("<script>"), "&lt;script&gt;");
  EXPECT_EQ(cd::escapeHtml("R1 & R2"), "R1 &amp; R2");
  EXPECT_EQ(cd::escapeHtml("say \"hi\""), "say &quot;hi&quot;");
  EXPECT_EQ(cd::escapeHtml("it's"), "it&#39;s");
  EXPECT_EQ(cd::escapeHtml("plain text 1.2"), "plain text 1.2");
  EXPECT_EQ(cd::escapeHtml("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
}

namespace {

cd::Cell hostileCell() {
  cd::Cell cell;
  cell.name = "<evil>&cell";
  cell.library = "TV";
  cell.category1 = "Croma\"";
  cell.category2 = "x'y";
  cell.document = "gain <b>must not</b> render & \"quotes\" stay text";
  cell.schematic = "R1 in out 1k <tag>";
  cell.keywords = {"agc", "<kw>"};
  cell.author = "o'hara";
  return cell;
}

}  // namespace

TEST(CelldbHtml, CellFragmentEscapesEveryUserField) {
  const std::string html = cd::cellToHtml(hostileCell());
  // No raw user-controlled markup may survive.
  EXPECT_EQ(html.find("<evil>"), std::string::npos);
  EXPECT_EQ(html.find("<b>must"), std::string::npos);
  EXPECT_EQ(html.find("<tag>"), std::string::npos);
  EXPECT_EQ(html.find("<kw>"), std::string::npos);
  // The escaped forms must.
  EXPECT_NE(html.find("&lt;evil&gt;&amp;cell"), std::string::npos);
  EXPECT_NE(html.find("&quot;quotes&quot;"), std::string::npos);
  EXPECT_NE(html.find("o&#39;hara"), std::string::npos);
}

TEST(CelldbHtml, CellPageIsAStandaloneDocument) {
  cd::HtmlOptions opts;
  opts.liveLinks = true;
  const std::string page = cd::cellPageHtml(hostileCell(), opts);
  EXPECT_EQ(page.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(page.find("</html>"), std::string::npos);
  EXPECT_NE(page.find("href=\"/celldb\""), std::string::npos);  // back link
  EXPECT_EQ(page.find("<evil>"), std::string::npos);

  // Static flavour: no back link.
  const std::string plain = cd::cellPageHtml(hostileCell());
  EXPECT_EQ(plain.find("back to index"), std::string::npos);
}

TEST(CelldbHtml, IndexLiveLinksArePercentEncoded) {
  cd::CellDatabase db;
  cd::Cell cell;
  cell.name = "ACC 1+";  // space and '+' must be encoded in the href
  cell.library = "TV";
  cell.category1 = "Croma";
  cell.schematic = "R1 in out 1k";
  db.registerCell(cell);

  cd::HtmlOptions live;
  live.liveLinks = true;
  const std::string html = cd::libraryIndexHtml(db, live);
  EXPECT_NE(html.find("href=\"/celldb/cell/TV/ACC%201%2B\""),
            std::string::npos);
  EXPECT_NE(html.find("<b>ACC 1+</b>"), std::string::npos);

  // The static flavour renders the same entry without links — this is
  // what CellDatabase::toHtml() returns.
  const std::string statics = cd::libraryIndexHtml(db);
  EXPECT_EQ(statics.find("href=\"/celldb/cell/"), std::string::npos);
  EXPECT_EQ(statics, db.toHtml());
}
