// Property tests of the shared junction physics helpers: continuity of
// the depletion charge/capacitance at the FC transition, the exponential
// continuation at the overflow limit, and pnjlim's fixpoint behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/junction.h"

namespace sp = ahfic::spice;

class DepletionParamTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
};

TEST_P(DepletionParamTest, ContinuousAtFcTransition) {
  const auto [vj, m, fc] = GetParam();
  const double cj0 = 10e-15;
  const double vt = fc * vj;
  const double eps = vj * 1e-9;
  const auto below = sp::depletionQC(vt - eps, cj0, vj, m, fc);
  const auto above = sp::depletionQC(vt + eps, cj0, vj, m, fc);
  // Charge and capacitance are both continuous across the linearisation
  // boundary.
  EXPECT_NEAR(below.q, above.q, std::fabs(below.q) * 1e-5 + 1e-22);
  EXPECT_NEAR(below.c, above.c, below.c * 1e-4);
}

TEST_P(DepletionParamTest, CapacitanceIsChargeDerivative) {
  const auto [vj, m, fc] = GetParam();
  const double cj0 = 10e-15;
  for (double v : {-5.0, -1.0, 0.0, 0.3 * vj, fc * vj + 0.2, 1.5}) {
    const double h = 1e-6;
    const auto lo = sp::depletionQC(v - h, cj0, vj, m, fc);
    const auto hi = sp::depletionQC(v + h, cj0, vj, m, fc);
    const auto mid = sp::depletionQC(v, cj0, vj, m, fc);
    EXPECT_NEAR((hi.q - lo.q) / (2 * h), mid.c, mid.c * 1e-3 + 1e-20)
        << "v=" << v;
  }
}

TEST_P(DepletionParamTest, CapacitanceGrowsTowardForwardBias) {
  const auto [vj, m, fc] = GetParam();
  const double cj0 = 10e-15;
  double prev = 0.0;
  for (double v = -3.0; v < vj; v += 0.1) {
    const auto qc = sp::depletionQC(v, cj0, vj, m, fc);
    EXPECT_GT(qc.c, prev) << v;
    prev = qc.c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    JunctionShapes, DepletionParamTest,
    ::testing::Values(std::make_tuple(0.75, 0.33, 0.5),
                      std::make_tuple(0.85, 0.35, 0.5),
                      std::make_tuple(0.65, 0.5, 0.5),
                      std::make_tuple(0.55, 0.4, 0.0)));

TEST(Depletion, ZeroCj0IsZero) {
  const auto qc = sp::depletionQC(0.3, 0.0, 0.75, 0.33, 0.5);
  EXPECT_EQ(qc.q, 0.0);
  EXPECT_EQ(qc.c, 0.0);
}

TEST(JunctionIv, MatchesIdealExponentialInRange) {
  const double isat = 1e-16, vte = 0.02585;
  for (double v : {-0.5, 0.0, 0.3, 0.6, 0.8}) {
    const auto iv = sp::junctionIV(v, isat, vte);
    EXPECT_NEAR(iv.i, isat * (std::exp(v / vte) - 1.0),
                std::fabs(iv.i) * 1e-12 + 1e-30);
    EXPECT_NEAR(iv.g, isat / vte * std::exp(v / vte), iv.g * 1e-12);
  }
}

TEST(JunctionIv, ContinuousAtOverflowLimit) {
  const double isat = 1e-16, vte = 0.02585;
  const double vLim = 80.0 * vte;
  const auto below = sp::junctionIV(vLim - 1e-9, isat, vte);
  const auto above = sp::junctionIV(vLim + 1e-9, isat, vte);
  EXPECT_NEAR(below.i, above.i, below.i * 1e-6);
  EXPECT_NEAR(below.g, above.g, below.g * 1e-6);
  // Beyond the limit growth is linear, not exponential: finite values at
  // absurd voltages.
  const auto far = sp::junctionIV(100.0, isat, vte);
  EXPECT_TRUE(std::isfinite(far.i));
  EXPECT_TRUE(std::isfinite(far.g));
}

TEST(JunctionIv, DeepReverseSaturates) {
  const auto iv = sp::junctionIV(-50.0, 1e-14, 0.02585);
  EXPECT_NEAR(iv.i, -1e-14, 1e-20);
  EXPECT_GE(iv.g, 0.0);
}

TEST(Pnjlim, IdentityWhenCloseOrBelowCritical) {
  const double vte = 0.02585;
  const double vcrit = sp::junctionVcrit(1e-16, vte);
  // Below vcrit: never limited.
  EXPECT_DOUBLE_EQ(sp::pnjlim(0.3, 0.0, vte, vcrit), 0.3);
  // Small steps above vcrit: unchanged.
  EXPECT_DOUBLE_EQ(sp::pnjlim(vcrit + 0.01, vcrit + 0.005, vte, vcrit),
                   vcrit + 0.01);
}

TEST(Pnjlim, LargeForwardStepsAreDamped) {
  const double vte = 0.02585;
  const double vcrit = sp::junctionVcrit(1e-16, vte);
  const double vOld = 0.6;
  const double vNew = sp::pnjlim(5.0, vOld, vte, vcrit);
  EXPECT_LT(vNew, 5.0);
  EXPECT_GT(vNew, vOld);  // still makes progress
  // Iterating converges to any target above vcrit.
  double v = 0.6;
  const double target = 0.95;
  for (int k = 0; k < 200; ++k) v = sp::pnjlim(target, v, vte, vcrit);
  EXPECT_NEAR(v, target, 1e-9);
}

TEST(Pnjlim, FixpointIsStable) {
  const double vte = 0.02585;
  const double vcrit = sp::junctionVcrit(1e-16, vte);
  for (double v : {0.1, 0.7, 0.9, 1.1})
    EXPECT_DOUBLE_EQ(sp::pnjlim(v, v, vte, vcrit), v);
}

TEST(JunctionVcrit, TypicalSiliconValue) {
  // vcrit = vte * ln(vte / (sqrt(2) * is)): ~0.8 V for is = 1e-16.
  const double vcrit = sp::junctionVcrit(1e-16, 0.02585);
  EXPECT_GT(vcrit, 0.7);
  EXPECT_LT(vcrit, 0.95);
}
