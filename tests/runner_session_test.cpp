// runner::Session: warm-state reuse across batches — the contract the
// ahficd daemon is built on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bjtgen/generator.h"
#include "bjtgen/montecarlo.h"
#include "obs/metrics.h"
#include "runner/session.h"
#include "runner/workloads.h"
#include "util/error.h"

namespace bg = ahfic::bjtgen;
namespace obs = ahfic::obs;
namespace rn = ahfic::runner;

namespace {

std::vector<rn::Job> mcJobs(int dies) {
  return rn::monteCarloFtJobs(bg::defaultTechnology(),
                              bg::ProcessVariation{}, dies, "N1.2-12D",
                              3e-3);
}

/// Enables metrics for one test, restoring the disabled default after.
struct MetricsGuard {
  MetricsGuard() { obs::setMetricsEnabled(true); }
  ~MetricsGuard() { obs::setMetricsEnabled(false); }
};

}  // namespace

TEST(RunnerSession, RejectsOnDiskCacheFiles) {
  rn::RunnerOptions opts;
  opts.cacheFile = "/tmp/session_cache.json";
  EXPECT_THROW(rn::Session{opts}, ahfic::Error);
}

TEST(RunnerSession, SecondIdenticalBatchIsServedEntirelyFromCache) {
  MetricsGuard guard;
  const auto before = obs::metrics().snapshot();

  rn::RunnerOptions opts;
  opts.threads = 2;
  rn::Session session(opts);
  const auto jobs = mcJobs(8);

  const auto cold = session.run(jobs);
  ASSERT_EQ(cold.outcomes.size(), 8u);
  for (const auto& out : cold.outcomes) {
    EXPECT_TRUE(out.ok());
    EXPECT_FALSE(out.record.cacheHit);
  }

  const auto warm = session.run(jobs);
  ASSERT_EQ(warm.outcomes.size(), 8u);
  for (size_t k = 0; k < warm.outcomes.size(); ++k) {
    SCOPED_TRACE(warm.outcomes[k].record.key);
    EXPECT_TRUE(warm.outcomes[k].record.cacheHit);
    // Bit-identical metrics, not approximately equal.
    ASSERT_EQ(warm.outcomes[k].result.metrics.size(),
              cold.outcomes[k].result.metrics.size());
    for (size_t m = 0; m < warm.outcomes[k].result.metrics.size(); ++m) {
      EXPECT_EQ(warm.outcomes[k].result.metrics[m].first,
                cold.outcomes[k].result.metrics[m].first);
      EXPECT_EQ(warm.outcomes[k].result.metrics[m].second,
                cold.outcomes[k].result.metrics[m].second);
    }
  }

  const auto delta = obs::metrics().snapshot().since(before);
  EXPECT_GE(delta.counterValue("runner.cache_hits"), 8);
  EXPECT_EQ(session.batchesRun(), 2u);
}

TEST(RunnerSession, ConcurrentBatchesShareTheCache) {
  rn::RunnerOptions opts;
  opts.threads = 1;
  rn::Session session(opts);
  const auto jobs = mcJobs(4);

  // Warm the cache, then hammer it from several threads at once: every
  // outcome must be a hit and nothing may crash or deadlock.
  session.run(jobs);
  std::vector<std::thread> threads;
  std::vector<int> hits(4, 0);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&session, &jobs, &hits, t] {
      const auto batch = session.run(jobs);
      for (const auto& out : batch.outcomes)
        if (out.record.cacheHit) ++hits[static_cast<size_t>(t)];
    });
  for (auto& t : threads) t.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(hits[static_cast<size_t>(t)], 4);
}

TEST(RunnerSession, TextStoreRoundTripsArtefacts) {
  rn::Session session;
  EXPECT_FALSE(session.fetchText("deck/1").has_value());
  session.storeText("deck/1", "listing one");
  session.storeText("deck/2", "listing two");
  ASSERT_TRUE(session.fetchText("deck/1").has_value());
  EXPECT_EQ(*session.fetchText("deck/1"), "listing one");
  EXPECT_EQ(session.textCount(), 2u);
  session.storeText("deck/1", "rewritten");
  EXPECT_EQ(*session.fetchText("deck/1"), "rewritten");
  EXPECT_EQ(session.textCount(), 2u);
}
