// Scalar-vs-batched equivalence for the Monte-Carlo data plane.
//
// The contract under test (spice/batch.h): for identical circuits and
// options, every solution ReplicaBatch::op() returns is BIT-identical —
// hex-float compare, not a tolerance — to a fresh sparse Analyzer::op()
// on that replica's circuit. Randomized over perturbed Gummel-Poon and
// diode cards, plus the failure-path cases: pivot-collapse replay inside
// SparseLU, iteration-starved fallback, and topology-mismatch rejection.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bjtgen/batchft.h"
#include "bjtgen/ft.h"
#include "bjtgen/montecarlo.h"
#include "spice/analysis.h"
#include "spice/batch.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/csr.h"
#include "spice/diode.h"
#include "spice/mosfet.h"
#include "spice/passive.h"
#include "spice/solution.h"
#include "spice/sources.h"
#include "spice/sparse_lu.h"
#include "util/numeric.h"

namespace sp = ahfic::spice;
namespace bg = ahfic::bjtgen;

namespace {

std::string hexFloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Bit-exact vector compare with a readable failure message.
void expectBitIdentical(const std::vector<double>& scalar,
                        const std::vector<double>& batched,
                        const std::string& what) {
  ASSERT_EQ(scalar.size(), batched.size()) << what;
  for (size_t i = 0; i < scalar.size(); ++i)
    EXPECT_EQ(hexFloat(scalar[i]), hexFloat(batched[i]))
        << what << " unknown " << i + 1;
}

sp::AnalysisOptions sparseOpts() {
  sp::AnalysisOptions opts;
  opts.solver = sp::SolverKind::kSparse;
  return opts;
}

/// The scalar icAtVbe bias cell from bjtgen/ft.cpp.
std::unique_ptr<sp::Circuit> biasCell(const sp::BjtModel& card, double vbe,
                                      double vce) {
  auto ckt = std::make_unique<sp::Circuit>();
  const int c = ckt->node("c"), b = ckt->node("b");
  ckt->add<sp::VSource>("VB", b, 0, vbe);
  ckt->add<sp::VSource>("VC", c, 0, vce);
  ckt->add<sp::Bjt>("Q1", *ckt, c, b, 0, card);
  return ckt;
}

/// A diode-bridge-ish cell exercising the diode SoA kernel: series
/// resistor, two diodes (one floating junction, one to ground).
std::unique_ptr<sp::Circuit> diodeCell(const sp::DiodeModel& m, double vs) {
  auto ckt = std::make_unique<sp::Circuit>();
  const int in = ckt->node("in"), a = ckt->node("a"), mid = ckt->node("mid");
  ckt->add<sp::VSource>("VS", in, 0, vs);
  ckt->add<sp::Resistor>("R1", in, a, 1e3);
  ckt->add<sp::Diode>("D1", *ckt, a, mid, m);
  ckt->add<sp::Diode>("D2", *ckt, mid, 0, m);
  return ckt;
}

std::vector<sp::BjtModel> perturbedCards(int count, std::uint64_t seed) {
  std::vector<sp::BjtModel> cards;
  cards.reserve(static_cast<size_t>(count));
  const bg::Technology nominal = bg::defaultTechnology();
  const bg::ProcessVariation var;
  for (int d = 0; d < count; ++d) {
    const auto gen = bg::dieGenerator(nominal, var, seed + d);
    cards.push_back(gen.generate("N1.2-6S"));
  }
  return cards;
}

}  // namespace

TEST(ReplicaBatchTest, BitIdenticalToScalarSparseAnalyzerOnBjtCells) {
  const auto cards = perturbedCards(12, 20260808);
  const double vce = 2.0;
  const double vbes[] = {0.3, 0.65, 0.8, 1.15};

  std::vector<std::unique_ptr<sp::Circuit>> replicas;
  for (const auto& card : cards) replicas.push_back(biasCell(card, 0.0, vce));
  sp::ReplicaBatch::Options bo;
  bo.analysis = sparseOpts();
  sp::ReplicaBatch batch(std::move(replicas), bo);

  for (const double vbe : vbes) {
    for (int r = 0; r < batch.replicaCount(); ++r) {
      auto* vb = dynamic_cast<sp::VSource*>(batch.circuit(r).findDevice("VB"));
      ASSERT_NE(vb, nullptr);
      vb->setWaveform(std::make_unique<sp::DcWaveform>(vbe));
    }
    const auto res = batch.op();
    for (int r = 0; r < batch.replicaCount(); ++r) {
      auto scalarCkt = biasCell(cards[static_cast<size_t>(r)], vbe, vce);
      sp::Analyzer an(*scalarCkt, sparseOpts());
      const auto xs = an.op();
      expectBitIdentical(xs, res.x[static_cast<size_t>(r)],
                         "vbe=" + hexFloat(vbe) + " replica " +
                             std::to_string(r));
      EXPECT_EQ(res.fellBack[static_cast<size_t>(r)], 0);
    }
  }
  // Shared-structure accounting: with R replicas and one full factor per
  // replica per op, every further iteration must replay.
  EXPECT_GT(batch.stats().refactors, 0);
  EXPECT_EQ(batch.stats().fallbacks, 0);
  EXPECT_EQ(batch.stats().patternInserts, 0);
}

TEST(ReplicaBatchTest, BitIdenticalOnDiodeCells) {
  sp::DiodeModel base;
  base.is = 1e-14;
  base.n = 1.05;
  base.rs = 4.0;
  base.cj0 = 0.4e-12;
  std::vector<std::unique_ptr<sp::Circuit>> replicas;
  std::vector<sp::DiodeModel> models;
  for (int r = 0; r < 8; ++r) {
    sp::DiodeModel m = base;
    m.is *= 1.0 + 0.07 * r;
    m.rs *= 1.0 + 0.03 * r;
    models.push_back(m);
    replicas.push_back(diodeCell(m, 2.5));
  }
  sp::ReplicaBatch::Options bo;
  bo.analysis = sparseOpts();
  sp::ReplicaBatch batch(std::move(replicas), bo);
  const auto res = batch.op();
  for (int r = 0; r < batch.replicaCount(); ++r) {
    auto scalarCkt = diodeCell(models[static_cast<size_t>(r)], 2.5);
    sp::Analyzer an(*scalarCkt, sparseOpts());
    expectBitIdentical(an.op(), res.x[static_cast<size_t>(r)],
                       "diode replica " + std::to_string(r));
  }
}

TEST(ReplicaBatchTest, IterationStarvedReplicaFallsBackBitIdentically) {
  // With maxNewtonIters too small, plain Newton fails in both paths; the
  // scalar Analyzer escalates to gmin stepping inside op(), and the batch
  // falls back to exactly that Analyzer — results must still match bits.
  const auto cards = perturbedCards(4, 77);
  sp::AnalysisOptions opts = sparseOpts();
  opts.maxNewtonIters = 8;  // plain Newton needs ~16 from x = 0 here

  std::vector<std::unique_ptr<sp::Circuit>> replicas;
  for (const auto& card : cards) replicas.push_back(biasCell(card, 0.9, 2.0));
  sp::ReplicaBatch::Options bo;
  bo.analysis = opts;
  sp::ReplicaBatch batch(std::move(replicas), bo);
  const auto res = batch.op();
  ASSERT_GT(batch.stats().fallbacks, 0);
  for (int r = 0; r < batch.replicaCount(); ++r) {
    EXPECT_EQ(res.fellBack[static_cast<size_t>(r)], 1);
    auto scalarCkt = biasCell(cards[static_cast<size_t>(r)], 0.9, 2.0);
    sp::Analyzer an(*scalarCkt, opts);
    expectBitIdentical(an.op(), res.x[static_cast<size_t>(r)],
                       "starved replica " + std::to_string(r));
  }
}

TEST(ReplicaBatchTest, RejectsTopologyMismatch) {
  const auto cards = perturbedCards(2, 5);
  std::vector<std::unique_ptr<sp::Circuit>> replicas;
  replicas.push_back(biasCell(cards[0], 0.7, 2.0));
  // Same device count but a different wiring: Q1's base tied to the
  // collector node instead of its own — a different sparsity pattern.
  {
    auto ckt = std::make_unique<sp::Circuit>();
    const int c = ckt->node("c"), b = ckt->node("b");
    ckt->add<sp::VSource>("VB", b, 0, 0.7);
    ckt->add<sp::VSource>("VC", c, 0, 2.0);
    ckt->add<sp::Bjt>("Q1", *ckt, c, c, 0, cards[1]);
    replicas.push_back(std::move(ckt));
  }
  EXPECT_THROW(
      {
        sp::ReplicaBatch::Options bo;
        bo.analysis = sparseOpts();
        sp::ReplicaBatch batch(std::move(replicas), bo);
      },
      ahfic::Error);
}

TEST(ReplicaBatchTest, RejectsUnsupportedNonlinearDevice) {
  std::vector<std::unique_ptr<sp::Circuit>> replicas;
  for (int r = 0; r < 2; ++r) {
    auto ckt = std::make_unique<sp::Circuit>();
    const int d = ckt->node("d"), g = ckt->node("g");
    ckt->add<sp::VSource>("VD", d, 0, 1.0);
    ckt->add<sp::VSource>("VG", g, 0, 1.0);
    ckt->add<sp::Mosfet>("M1", *ckt, d, g, 0, 0, sp::MosModel{});
    replicas.push_back(std::move(ckt));
  }
  sp::ReplicaBatch::Options bo;
  bo.analysis = sparseOpts();
  EXPECT_THROW(sp::ReplicaBatch(std::move(replicas), bo), ahfic::Error);
}

TEST(SparseLuBatchTest, PivotCollapseReplayFallsBackToFullFactor) {
  // Record a factorization whose pivot order becomes untenable for the
  // second value set: refactor must detect the collapsed pivot and
  // factor() must auto-recover with a fresh pivoting factorization.
  sp::CsrPattern pat;
  pat.build(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  sp::SparseLU<double> lu;
  lu.analyze(pat);

  // Diagonally dominant: pivots stay on the diagonal.
  std::vector<double> good(pat.nonzeros(), 0.0);
  good[static_cast<size_t>(pat.slot(0, 0))] = 4.0;
  good[static_cast<size_t>(pat.slot(0, 1))] = 1.0;
  good[static_cast<size_t>(pat.slot(1, 0))] = 1.0;
  good[static_cast<size_t>(pat.slot(1, 1))] = 4.0;
  ASSERT_EQ(lu.factor(good), sp::SparseLU<double>::FactorOutcome::kFullFactor);
  ASSERT_TRUE(lu.hasRecordedFactorization());

  // Kill the recorded first pivot; the matrix stays well-conditioned via
  // the off-diagonals, so a full factor succeeds where the replay cannot.
  std::vector<double> collapsed = good;
  collapsed[static_cast<size_t>(pat.slot(0, 0))] = 0.0;
  EXPECT_EQ(lu.factor(collapsed),
            sp::SparseLU<double>::FactorOutcome::kFullFactor);
  std::vector<double> x(2, 0.0);
  lu.solve({1.0, 1.0}, x);
  // Solution of [[0,1],[1,4]] x = [1,1]: x = [-3, 1].
  EXPECT_NEAR(x[0], -3.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(BatchFtExtractorTest, BitIdenticalToScalarFtExtractor) {
  const auto cards = perturbedCards(6, 424242);
  const double ic = 1e-3;
  bg::BatchFtExtractor bx(cards, 2.0, sparseOpts());
  const auto batched = bx.measureAnalyticAt(ic);
  ASSERT_EQ(batched.size(), cards.size());
  for (size_t r = 0; r < cards.size(); ++r) {
    const bg::FtExtractor fx(cards[r], 2.0, sparseOpts());
    const auto scalar = fx.measureAnalyticAt(ic);
    ASSERT_TRUE(batched[r].ok) << batched[r].error;
    EXPECT_EQ(hexFloat(scalar.vbe), hexFloat(batched[r].point.vbe))
        << "die " << r;
    EXPECT_EQ(hexFloat(scalar.ft), hexFloat(batched[r].point.ft))
        << "die " << r;
  }
}

TEST(BatchFtExtractorTest, OutOfRangeDieReportsScalarErrorWithoutThrowing) {
  const auto cards = perturbedCards(3, 9);
  bg::BatchFtExtractor bx(cards, 2.0, sparseOpts());
  const auto res = bx.measureAnalyticAt(1e3);  // far beyond any bias cell
  for (const auto& die : res) {
    EXPECT_FALSE(die.ok);
    EXPECT_EQ(die.error, "FtExtractor: target current out of bias range");
  }
  EXPECT_THROW(bx.measureAnalyticAt(0.0), ahfic::Error);
}
