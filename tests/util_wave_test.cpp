// ahfic-wave-v1 binary waveform tables: exact round-trips, canonical
// encoding, malformed-input rejection, the JSON converter, and the
// result-cache sidecar integration.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "runner/cache.h"
#include "runner/job.h"
#include "util/error.h"
#include "util/json.h"
#include "util/numeric.h"
#include "util/wave.h"

namespace u = ahfic::util;
namespace rn = ahfic::runner;

namespace {

u::WaveTable sampleTable() {
  u::WaveTable t;
  t.addColumn("time", {0.0, 1e-9, 2e-9, 3e-9});
  t.addColumn("v(out)", {-1.5, 0.25, 3.75, -0.0});
  return t;
}

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

TEST(WaveTableTest, AddColumnValidatesShape) {
  u::WaveTable t;
  t.addColumn("a", {1.0, 2.0});
  EXPECT_THROW(t.addColumn("b", {1.0}), ahfic::Error);      // row mismatch
  EXPECT_THROW(t.addColumn("a", {3.0, 4.0}), ahfic::Error); // duplicate name
  EXPECT_EQ(t.findColumn("a"), 0);
  EXPECT_EQ(t.findColumn("missing"), -1);
}

TEST(WaveTableTest, BitIdenticalDistinguishesSignedZeroAndNan) {
  u::WaveTable a, b;
  a.addColumn("x", {0.0});
  b.addColumn("x", {-0.0});
  EXPECT_FALSE(a.bitIdentical(b));  // 0.0 == -0.0 numerically, not bitwise

  const double nan = std::numeric_limits<double>::quiet_NaN();
  u::WaveTable c, d;
  c.addColumn("x", {nan});
  d.addColumn("x", {nan});
  EXPECT_TRUE(c.bitIdentical(d));  // NaN != NaN numerically, equal bitwise
}

TEST(WaveEncodingTest, RoundTripIsBitExact) {
  u::WaveTable t;
  u::Rng rng(7);
  std::vector<double> a, b;
  for (int k = 0; k < 257; ++k) {  // odd size exercises the name padding
    a.push_back(rng.normal() * std::pow(10.0, rng.uniform(-300, 300)));
    b.push_back(rng.uniform(-1, 1));
  }
  t.addColumn("odd-name!", std::move(a));
  t.addColumn("ft", std::move(b));

  const std::vector<std::uint8_t> bytes = u::encodeWave(t);
  const u::WaveTable back = u::decodeWave(bytes);
  EXPECT_TRUE(back.bitIdentical(t));

  // Canonical encoding: re-encoding the decoded table is byte-identical.
  EXPECT_EQ(u::encodeWave(back), bytes);
}

TEST(WaveEncodingTest, HeaderLayoutIsStable) {
  const std::vector<std::uint8_t> bytes = u::encodeWave(sampleTable());
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "ahficwv1");
  // u32 little-endian column count 2, row count 4.
  EXPECT_EQ(bytes[8], 2u);
  EXPECT_EQ(bytes[12], 4u);
  // Column payload is 8-byte aligned and sized exactly C*R doubles.
  EXPECT_EQ(bytes.size() % 8, 0u);
  EXPECT_EQ(bytes.size(),
            ((16 + 2 * 4 + 4 + 6 + 7) & ~size_t{7}) + 2 * 4 * 8);
}

TEST(WaveEncodingTest, RejectsMalformedBuffers) {
  std::vector<std::uint8_t> bytes = u::encodeWave(sampleTable());

  std::vector<std::uint8_t> badMagic = bytes;
  badMagic[0] = 'x';
  EXPECT_THROW(u::decodeWave(badMagic), ahfic::ParseError);

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + 12);
  EXPECT_THROW(u::decodeWave(truncated), ahfic::ParseError);

  std::vector<std::uint8_t> shortPayload(bytes.begin(), bytes.end() - 8);
  EXPECT_THROW(u::decodeWave(shortPayload), ahfic::ParseError);

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(u::decodeWave(trailing), ahfic::ParseError);

  EXPECT_THROW(u::decodeWave(nullptr, 0), ahfic::ParseError);
}

TEST(WaveFileTest, WriteReadRoundTrip) {
  const std::string path = tempPath("ahfic_wave_test.wave");
  const u::WaveTable t = sampleTable();
  u::writeWaveFile(path, t);
  const u::WaveTable back = u::readWaveFile(path);
  EXPECT_TRUE(back.bitIdentical(t));
  std::remove(path.c_str());
  EXPECT_THROW(u::readWaveFile(path), ahfic::Error);  // now gone
}

TEST(WaveJsonTest, ConverterRoundTripsSchemaAndShape) {
  const u::WaveTable t = sampleTable();
  const u::JsonValue j = u::waveToJson(t);
  EXPECT_EQ(j.get("schema").asString(), "ahfic-wave-v1");
  EXPECT_EQ(static_cast<int>(j.get("rows").asNumber()), 4);
  const u::WaveTable back = u::waveFromJson(j);
  ASSERT_EQ(back.columnCount(), t.columnCount());
  ASSERT_EQ(back.rowCount(), t.rowCount());
  EXPECT_EQ(back.columns, t.columns);

  u::JsonValue bad = u::JsonValue::object();
  bad.set("schema", "something-else");
  EXPECT_THROW(u::waveFromJson(bad), ahfic::Error);
}

TEST(ResultCacheWaveTest, SidecarRoundTripsBitExactly) {
  const std::string path = tempPath("ahfic_wave_cache_test.json");
  const std::string waves = path + ".waves";
  std::filesystem::remove_all(waves);

  rn::JobResult r;
  r.set("ft", 1.25e9);
  auto wave = std::make_shared<u::WaveTable>(sampleTable());
  r.wave = wave;
  rn::ResultCache cache;
  cache.store("k/with-wave", r);
  rn::JobResult plain;
  plain.set("ft", 2.0e9);
  cache.store("k/plain", plain);
  cache.saveFile(path);

  rn::ResultCache back;
  ASSERT_TRUE(back.loadFile(path));
  const auto hit = back.lookup("k/with-wave");
  ASSERT_TRUE(hit.has_value());
  ASSERT_NE(hit->wave, nullptr);
  EXPECT_TRUE(hit->wave->bitIdentical(*wave));
  EXPECT_TRUE(*hit == r);  // JobResult equality includes the wave payload
  const auto plainHit = back.lookup("k/plain");
  ASSERT_TRUE(plainHit.has_value());
  EXPECT_EQ(plainHit->wave, nullptr);

  // A missing sidecar drops only the entry that referenced it.
  std::filesystem::remove_all(waves);
  rn::ResultCache degraded;
  ASSERT_TRUE(degraded.loadFile(path));
  EXPECT_FALSE(degraded.lookup("k/with-wave").has_value());
  EXPECT_TRUE(degraded.lookup("k/plain").has_value());

  std::remove(path.c_str());
}

TEST(ResultCacheWaveTest, WaveChangesJobResultEquality) {
  rn::JobResult a, b;
  a.set("ft", 1.0);
  b.set("ft", 1.0);
  EXPECT_TRUE(a == b);
  a.wave = std::make_shared<u::WaveTable>(sampleTable());
  EXPECT_FALSE(a == b);
  b.wave = std::make_shared<u::WaveTable>(sampleTable());
  EXPECT_TRUE(a == b);
  u::WaveTable other = sampleTable();
  other.data[0][0] = 42.0;
  b.wave = std::make_shared<u::WaveTable>(std::move(other));
  EXPECT_FALSE(a == b);
}
