// Golden decks for every netlist diagnostic code: each broken deck must
// produce exactly the expected code, and the clean reference decks must
// stay silent.

#include "lint/netlist.h"

#include <gtest/gtest.h>

#include "spice/circuit.h"
#include "spice/parser.h"
#include "spice/passive.h"
#include "spice/sources.h"

namespace lint = ahfic::lint;
namespace sp = ahfic::spice;

namespace {

lint::LintReport lintText(const char* deck) {
  return lint::lintDeckText(deck);
}

}  // namespace

TEST(LintNetlist, CleanDeckHasNoDiagnostics) {
  const auto r = lintText(R"(clean divider
V1 in 0 DC 5
R1 in out 1k
R2 out 0 1k
.OP
.END
)");
  EXPECT_FALSE(r.hasErrors()) << r.renderText();
  EXPECT_EQ(r.count(lint::Severity::kWarning), 0u) << r.renderText();
}

TEST(LintNetlist, ParallelVoltageSourcesAreAVsrcLoop) {
  const auto r = lintText(R"(vloop
V1 a 0 5
V2 a 0 4.9
R1 a 0 1k
.OP
.END
)");
  ASSERT_TRUE(r.hasCode("NET_VSRC_LOOP")) << r.renderText();
  // The second source closes the loop; the deck line travels with it.
  const auto* d = r.find("NET_VSRC_LOOP");
  EXPECT_EQ(d->loc.object, "V2");
  EXPECT_EQ(d->loc.line, 3);
}

TEST(LintNetlist, VsourceInductorLoopIsAVsrcLoop) {
  const auto r = lintText(R"(v-l loop
V1 a 0 5
L1 a 0 10n
R1 a 0 1k
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("NET_VSRC_LOOP")) << r.renderText();
}

TEST(LintNetlist, PureInductorLoopIsAnIndLoop) {
  const auto r = lintText(R"(l-l loop
I1 0 a 1m
L1 a b 10n
L2 a b 20n
R1 b 0 1k
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("NET_IND_LOOP")) << r.renderText();
  EXPECT_FALSE(r.hasCode("NET_VSRC_LOOP")) << r.renderText();
}

TEST(LintNetlist, CurrentSourceOnlyNodeIsACutset) {
  const auto r = lintText(R"(cutset
I1 0 x 1m
I2 x 0 2m
R1 y 0 1k
V1 y 0 1
.OP
.END
)");
  ASSERT_TRUE(r.hasCode("NET_ISRC_CUTSET")) << r.renderText();
  EXPECT_EQ(r.find("NET_ISRC_CUTSET")->loc.object, "node x");
}

TEST(LintNetlist, CapacitorIsolatedNodeIsFloating) {
  const auto r = lintText(R"(floating
V1 in 0 DC 5
R1 in mid 1k
C1 mid iso 1p
R2 iso iso2 1k
C2 iso2 0 1p
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("NET_FLOATING_NODE")) << r.renderText();
}

TEST(LintNetlist, IslandDisconnectedFromGroundIsReportedOnce) {
  const auto r = lintText(R"(island
V1 in 0 DC 5
R1 in 0 1k
R2 a b 1k
R3 b a 2k
.OP
.END
)");
  ASSERT_TRUE(r.hasCode("NET_DISCONNECTED")) << r.renderText();
  // One island -> one diagnostic, not one per node.
  size_t n = 0;
  for (const auto& d : r.diagnostics())
    if (d.code == "NET_DISCONNECTED") ++n;
  EXPECT_EQ(n, 1u);
}

TEST(LintNetlist, SingleTerminalNodeDangles) {
  const auto r = lintText(R"(dangling
V1 in 0 DC 5
R1 in out 1k
R2 in 0 2k
.OP
.END
)");
  ASSERT_TRUE(r.hasCode("NET_DANGLING_NODE")) << r.renderText();
  EXPECT_EQ(r.find("NET_DANGLING_NODE")->severity,
            lint::Severity::kWarning);
}

TEST(LintNetlist, ZeroCapacitorWarns) {
  const auto r = lintText(R"(zero cap
V1 in 0 DC 5
R1 in 0 1k
C1 in 0 0
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("NET_ZERO_CAP")) << r.renderText();
  EXPECT_FALSE(r.hasErrors()) << r.renderText();
}

TEST(LintNetlist, AcSpecWithoutAcAnalysisWarns) {
  const auto r = lintText(R"(unused ac
V1 in 0 DC 5 AC 1
R1 in 0 1k
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("NET_UNUSED_AC")) << r.renderText();
}

TEST(LintNetlist, TimeVaryingSourceWithoutTranWarns) {
  const auto r = lintText(R"(unused tran
V1 in 0 SIN(0 1 1MEG)
R1 in 0 1k
.OP
.END
)");
  EXPECT_TRUE(r.hasCode("NET_UNUSED_TRAN")) << r.renderText();
}

TEST(LintNetlist, AcAnalysisWithoutAcSourceWarns) {
  const auto r = lintText(R"(quiet ac
V1 in 0 DC 5
R1 in 0 1k
.AC DEC 4 1k 1MEG
.END
)");
  EXPECT_TRUE(r.hasCode("NET_NO_AC_SOURCE")) << r.renderText();
}

TEST(LintNetlist, DeckWithoutAnalysesGetsInfo) {
  const auto r = lintText(R"(nothing to do
V1 in 0 DC 5
R1 in 0 1k
.END
)");
  ASSERT_TRUE(r.hasCode("NET_NO_ANALYSIS")) << r.renderText();
  EXPECT_EQ(r.find("NET_NO_ANALYSIS")->severity, lint::Severity::kInfo);
}

TEST(LintNetlist, MalformedDeckBecomesParseDiagnosticWithLine) {
  const auto r = lintText(R"(broken
R1 a b
.OP
.END
)");
  ASSERT_TRUE(r.hasCode("PARSE")) << r.renderText();
  const auto* d = r.find("PARSE");
  EXPECT_EQ(d->loc.line, 2);
  EXPECT_NE(d->message.find("R1"), std::string::npos);
  EXPECT_FALSE(lint::lintDeckText("junk\nZ1 a b 5\n.END\n").empty());
}

TEST(LintNetlist, ProgrammaticCircuitLintsWithoutDeck) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::VSource>("v1", a, 0, 5.0);
  ckt.add<sp::VSource>("v2", a, 0, 4.0);
  const auto r = lint::lintCircuit(ckt);
  ASSERT_TRUE(r.hasCode("NET_VSRC_LOOP")) << r.renderText();
  // No parser involved: the location carries the device, not a line.
  EXPECT_EQ(r.find("NET_VSRC_LOOP")->loc.line, -1);
}

TEST(LintNetlist, EclDemoStyleDeckIsCleanOfErrors) {
  // Representative real deck: the spice_cli demo topology.
  const auto r = lintText(R"(ECL gate demo
.MODEL n1 NPN(IS=1e-16 BF=110 VAF=45 RB=120 RE=3 RC=20 CJE=20f CJC=25f TF=12p)
VCC vcc 0 5
VIN inp 0 DC 3.8 AC 1
RC1 vcc c1 170
Q1 c1 inp e n1
IT e 0 3m
RL c1 0 10k
.OP
.AC DEC 4 1MEG 1G
.END
)");
  EXPECT_FALSE(r.hasErrors()) << r.renderText();
}

TEST(LintNetlist, LargeDeckWithoutSolverChoiceGetsInfo) {
  std::string body = "big ladder\nV1 n0 0 DC 1\n";
  for (int k = 0; k < 150; ++k) {
    body += "R" + std::to_string(k) + " n" + std::to_string(k) + " n" +
            std::to_string(k + 1) + " 1k\n";
    body += "C" + std::to_string(k) + " n" + std::to_string(k + 1) +
            " 0 1p\n";
  }
  const auto noisy = lintText((body + ".OP\n.END\n").c_str());
  ASSERT_TRUE(noisy.hasCode("NET_SOLVER_CHOICE")) << noisy.renderText();
  // Informational only — never gates.
  EXPECT_FALSE(noisy.hasErrors());
  // An explicit choice silences it.
  const auto quiet =
      lintText((body + ".OPTIONS SOLVER=sparse\n.OP\n.END\n").c_str());
  EXPECT_FALSE(quiet.hasCode("NET_SOLVER_CHOICE")) << quiet.renderText();
}
