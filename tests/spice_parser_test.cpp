// SPICE deck parser tests: element coverage, model cards, analyses,
// diagnostics, and model-card round-trip through BjtModel::toSpiceLine.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/parser.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace sp = ahfic::spice;

TEST(Parser, TitleAndDivider) {
  auto deck = sp::parseDeck(
      "simple divider\n"
      "V1 in 0 DC 10\n"
      "R1 in out 1k\n"
      "R2 out 0 3k\n"
      ".END\n");
  EXPECT_EQ(deck.title, "simple divider");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(deck.circuit.findNode("out")), 7.5, 1e-9);
}

TEST(Parser, CommentsAndContinuations) {
  auto deck = sp::parseDeck(
      "title\n"
      "* a comment line\n"
      "R1 a 0\n"
      "+ 2k $ trailing comment\n"
      "V1 a 0 1 ; another trailer\n");
  auto* r = dynamic_cast<sp::Resistor*>(deck.circuit.findDevice("R1"));
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->resistance(), 2000.0);
}

TEST(Parser, AllPassivesAndSuffixes) {
  auto deck = sp::parseDeck(
      "t\n"
      "R1 1 0 4.7MEG\n"
      "C1 1 0 10pF\n"
      "L1 1 2 100n\n");
  EXPECT_NE(deck.circuit.findDevice("R1"), nullptr);
  EXPECT_NE(deck.circuit.findDevice("C1"), nullptr);
  EXPECT_NE(deck.circuit.findDevice("L1"), nullptr);
  auto* c = dynamic_cast<sp::Capacitor*>(deck.circuit.findDevice("C1"));
  EXPECT_DOUBLE_EQ(c->capacitance(), 10e-12);
}

TEST(Parser, SourceFunctions) {
  auto deck = sp::parseDeck(
      "t\n"
      "V1 1 0 SIN(0 1 1MEG)\n"
      "V2 2 0 PULSE(0 5 1n 1n 1n 5n 20n)\n"
      "V3 3 0 PWL(0 0 1u 1 2u 0)\n"
      "V4 4 0 EXP(0 1 0 1n 10n 1n)\n"
      "V5 5 0 DC 2 AC 1 45\n"
      "I1 6 0 DC 1m\n");
  auto* v1 = dynamic_cast<sp::VSource*>(deck.circuit.findDevice("V1"));
  ASSERT_NE(v1, nullptr);
  EXPECT_NEAR(v1->waveform().value(0.25e-6), 1.0, 1e-9);
  auto* v5 = dynamic_cast<sp::VSource*>(deck.circuit.findDevice("V5"));
  ASSERT_NE(v5, nullptr);
  EXPECT_DOUBLE_EQ(v5->waveform().dcValue(), 2.0);
  EXPECT_DOUBLE_EQ(v5->acMagnitude(), 1.0);
}

TEST(Parser, SffmAndAmSources) {
  auto deck = sp::parseDeck(
      "t\n"
      "V1 1 0 SFFM(0 1 100MEG 5 1MEG)\n"
      "V2 2 0 AM(2 1 1MEG 50MEG)\n");
  auto* v1 = dynamic_cast<sp::VSource*>(deck.circuit.findDevice("V1"));
  ASSERT_NE(v1, nullptr);
  EXPECT_LE(std::fabs(v1->waveform().value(3.3e-8)), 1.0);
  auto* v2 = dynamic_cast<sp::VSource*>(deck.circuit.findDevice("V2"));
  ASSERT_NE(v2, nullptr);
  EXPECT_DOUBLE_EQ(v2->waveform().dcValue(), 0.0);
}

TEST(Parser, ControlledSources) {
  auto deck = sp::parseDeck(
      "t\n"
      "V1 in 0 1\n"
      "E1 o1 0 in 0 4\n"
      "G1 o2 0 in 0 1m\n"
      "F1 o3 0 V1 2\n"
      "H1 o4 0 V1 100\n"
      "R1 o1 0 1k\nR2 o2 0 1k\nR3 o3 0 1k\nR4 o4 0 1k\n");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(deck.circuit.findNode("o1")), 4.0, 1e-9);
  EXPECT_NEAR(s.at(deck.circuit.findNode("o2")), -1.0, 1e-9);
}

TEST(Parser, BjtWithModelAfterUse) {
  // Q card may reference a model defined later in the deck.
  auto deck = sp::parseDeck(
      "t\n"
      "IB 0 b 10u\n"
      "VC c 0 3\n"
      "Q1 c b 0 mynpn\n"
      ".MODEL mynpn NPN(IS=1e-16 BF=100 VAF=50)\n");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  auto* q = dynamic_cast<sp::Bjt*>(deck.circuit.findDevice("Q1"));
  ASSERT_NE(q, nullptr);
  EXPECT_NEAR(q->opInfo(s).ic / 10e-6, 106.0, 3.0);
}

TEST(Parser, BjtWithSubstrateAndArea) {
  auto deck = sp::parseDeck(
      "t\n"
      "Q1 c b e subs mynpn 2.5\n"
      ".MODEL mynpn NPN(IS=1e-16 BF=100)\n");
  auto* q = dynamic_cast<sp::Bjt*>(deck.circuit.findDevice("Q1"));
  ASSERT_NE(q, nullptr);
  EXPECT_DOUBLE_EQ(q->scaledModel().is, 2.5e-16);
  EXPECT_EQ(q->nodes()[3], deck.circuit.findNode("subs"));
}

TEST(Parser, DiodeWithModel) {
  auto deck = sp::parseDeck(
      "t\n"
      ".MODEL dd D(IS=1e-14 RS=5 CJO=2p)\n"
      "D1 a 0 dd\n"
      "D2 a 0 dd 3\n");
  EXPECT_NE(deck.circuit.findDevice("D1"), nullptr);
  EXPECT_NE(deck.circuit.findDevice("D2"), nullptr);
}

TEST(Parser, ModelNoSpaceBeforeParen) {
  auto deck = sp::parseDeck(
      "t\n"
      ".MODEL m1 NPN(IS=2e-16 BF=80 RB=120 CJE=30f TF=15p)\n");
  const auto& m = deck.circuit.bjtModel("m1");
  EXPECT_DOUBLE_EQ(m.is, 2e-16);
  EXPECT_DOUBLE_EQ(m.bf, 80.0);
  EXPECT_DOUBLE_EQ(m.rb, 120.0);
  EXPECT_DOUBLE_EQ(m.cje, 30e-15);
  EXPECT_DOUBLE_EQ(m.tf, 15e-12);
}

TEST(Parser, AnalysisCards) {
  auto deck = sp::parseDeck(
      "t\n"
      "V1 a 0 1\nR1 a 0 1k\n"
      ".OP\n"
      ".TRAN 1n 100n\n"
      ".AC DEC 10 1k 1G\n"
      ".DC V1 0 5 0.5\n");
  ASSERT_EQ(deck.analyses.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<sp::OpRequest>(deck.analyses[0]));
  const auto& tran = std::get<sp::TranRequest>(deck.analyses[1]);
  EXPECT_DOUBLE_EQ(tran.tstop, 100e-9);
  const auto& ac = std::get<sp::AcRequest>(deck.analyses[2]);
  EXPECT_EQ(ac.pointsPerDecade, 10);
  const auto& dc = std::get<sp::DcRequest>(deck.analyses[3]);
  EXPECT_EQ(dc.source, "V1");
}

TEST(Parser, TempCard) {
  auto deck = sp::parseDeck("t\n.TEMP 85\nR1 a 0 1k\n");
  EXPECT_DOUBLE_EQ(deck.circuit.temperatureC(), 85.0);
}

TEST(Parser, EndStopsParsing) {
  auto deck = sp::parseDeck(
      "t\nR1 a 0 1k\n.END\nR2 b 0 not-even-valid\n");
  EXPECT_NE(deck.circuit.findDevice("R1"), nullptr);
  EXPECT_EQ(deck.circuit.findDevice("R2"), nullptr);
}

TEST(ParserErrors, ReportLineNumbers) {
  try {
    sp::parseDeck("t\nR1 a 0 1k\nR2 b 0 oops\n");
    FAIL() << "expected ParseError";
  } catch (const ahfic::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(ParserErrors, UnknownElement) {
  EXPECT_THROW(sp::parseDeck("t\nX1 a b c\n"), ahfic::ParseError);
}

TEST(ParserErrors, UnknownModelParameter) {
  EXPECT_THROW(sp::parseDeck("t\n.MODEL m NPN(BOGUS=1)\n"),
               ahfic::ParseError);
}

TEST(ParserErrors, MissingModel) {
  EXPECT_THROW(sp::parseDeck("t\nQ1 c b 0 nomodel\n"), ahfic::Error);
}

TEST(ParserErrors, FControlMustBeVsource) {
  EXPECT_THROW(sp::parseDeck("t\nR1 a 0 1k\nF1 b 0 R1 2\n"),
               ahfic::ParseError);
}

TEST(ParserErrors, DuplicateDeviceName) {
  EXPECT_THROW(sp::parseDeck("t\nR1 a 0 1k\nR1 b 0 2k\n"), ahfic::Error);
}

TEST(ModelRoundTrip, BjtCardSurvivesEmitAndReparse) {
  sp::BjtModel m;
  m.is = 3.2e-17;
  m.bf = 95.0;
  m.vaf = 42.0;
  m.ikf = 2.3e-3;
  m.ise = 4e-15;
  m.rb = 210.0;
  m.rbm = 35.0;
  m.re = 2.4;
  m.rc = 28.0;
  m.cje = 42e-15;
  m.cjc = 18e-15;
  m.cjs = 55e-15;
  m.tf = 11e-12;
  m.xtf = 2.0;
  m.vtf = 3.0;
  m.itf = 8e-3;
  m.tr = 200e-12;

  const std::string line = m.toSpiceLine("gen1");
  auto deck = sp::parseDeck("t\n" + line + "\n");
  const auto& p = deck.circuit.bjtModel("gen1");
  EXPECT_NEAR(p.is, m.is, m.is * 1e-5);
  EXPECT_NEAR(p.bf, m.bf, 1e-9);
  EXPECT_NEAR(p.vaf, m.vaf, 1e-9);
  EXPECT_NEAR(p.ikf, m.ikf, m.ikf * 1e-5);
  EXPECT_NEAR(p.rb, m.rb, 1e-9);
  EXPECT_NEAR(p.rbm, m.rbm, 1e-9);
  EXPECT_NEAR(p.cje, m.cje, m.cje * 1e-5);
  EXPECT_NEAR(p.tf, m.tf, m.tf * 1e-5);
  EXPECT_NEAR(p.tr, m.tr, m.tr * 1e-5);
}

TEST(ParseInto, SplicesIntoExistingCircuit) {
  sp::Circuit ckt;
  const int in = ckt.node("in");
  ckt.add<sp::VSource>("Vtop", in, 0, 1.0);
  sp::parseInto(ckt, "R1 in mid 1k\nR2 mid 0 1k\n");
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(ckt.findNode("mid")), 0.5, 1e-9);
}

TEST(ParserOptions, SolverChoiceReachesTheDeck) {
  auto deck = sp::parseDeck(
      "opts\nR1 in 0 1k\nV1 in 0 1\n.OPTIONS SOLVER=sparse\n.OP\n.END\n");
  EXPECT_EQ(deck.solverOption, "sparse");
  // Bare keyword spellings and the .OPTION singular both work; unknown
  // options are tolerated (decks carry simulator-specific flags).
  deck = sp::parseDeck(
      "opts\nR1 in 0 1k\nV1 in 0 1\n.OPTION RELTOL=1e-4 DENSE\n.OP\n.END\n");
  EXPECT_EQ(deck.solverOption, "dense");
  deck = sp::parseDeck("opts\nR1 in 0 1k\nV1 in 0 1\n.OP\n.END\n");
  EXPECT_TRUE(deck.solverOption.empty());
  EXPECT_THROW(
      sp::parseDeck("opts\nR1 in 0 1k\n.OPTIONS SOLVER=magic\n.END\n"),
      ahfic::ParseError);
}
