// Analytic checks of the MNA engine on linear circuits: dividers,
// controlled sources, RC/RL transients, RLC resonance, dense vs sparse.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/numeric.h"
#include "util/units.h"

namespace sp = ahfic::spice;
namespace u = ahfic::util;
using u::constants::kTwoPi;

TEST(LinearDc, ResistorDivider) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 10.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Resistor>("R2", out, 0, 3e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(out), 7.5, 1e-9);
  EXPECT_NEAR(s.at(in), 10.0, 1e-12);
}

TEST(LinearDc, VsourceBranchCurrent) {
  sp::Circuit ckt;
  const int in = ckt.node("in");
  auto& v1 = ckt.add<sp::VSource>("V1", in, 0, 5.0);
  ckt.add<sp::Resistor>("R1", in, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  // Branch current = current from + through source to -, so the source
  // delivers -i into node "in": i = -5 mA.
  EXPECT_NEAR(s.at(v1.branchId()), -5e-3, 1e-9);
}

TEST(LinearDc, CurrentSourceIntoResistor) {
  sp::Circuit ckt;
  const int n1 = ckt.node("n1");
  ckt.add<sp::ISource>("I1", 0, n1, 1e-3);  // 1 mA from gnd into n1
  ckt.add<sp::Resistor>("R1", n1, 0, 2e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(n1), 2.0, 1e-9);
}

TEST(LinearDc, InductorIsDcShort) {
  sp::Circuit ckt;
  const int a = ckt.node("a"), b = ckt.node("b");
  ckt.add<sp::VSource>("V1", a, 0, 1.0);
  ckt.add<sp::Inductor>("L1", a, b, 1e-6);
  auto& rl = ckt.add<sp::Resistor>("R1", b, 0, 50.0);
  (void)rl;
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(b), 1.0, 1e-9);
}

TEST(LinearDc, CapacitorIsDcOpen) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 3.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
  ckt.add<sp::Resistor>("R2", out, 0, 1e6);  // bleeder defines the node
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(out), 3.0 * 1e6 / (1e6 + 1e3), 1e-6);
}

TEST(LinearDc, VcvsGain) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 0.5);
  ckt.add<sp::Vcvs>("E1", out, 0, in, 0, 8.0);
  ckt.add<sp::Resistor>("RL", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(out), 4.0, 1e-9);
}

TEST(LinearDc, VccsIntoLoad) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 2.0);
  // gm = 1 mS, current flows out->gnd through source: v(out) = -gm*v(in)*R
  ckt.add<sp::Vccs>("G1", out, 0, in, 0, 1e-3);
  ckt.add<sp::Resistor>("RL", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(s.at(out), -2.0, 1e-9);
}

TEST(LinearDc, CccsMirrorsCurrent) {
  sp::Circuit ckt;
  const int a = ckt.node("a"), out = ckt.node("out");
  auto& vs = ckt.add<sp::VSource>("Vsense", a, 0, 0.0);
  ckt.add<sp::ISource>("I1", a, 0, 1e-3);  // 1 mA a -> gnd: i(Vsense) = 1 mA
  ckt.add<sp::Cccs>("F1", out, 0, vs, 2.0);
  ckt.add<sp::Resistor>("RL", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  // i(Vsense) = +1 mA (flows a->gnd through it); F injects 2 mA out->gnd,
  // i.e. -2 V across 1k.
  EXPECT_NEAR(std::fabs(s.at(out)), 2.0, 1e-9);
}

TEST(LinearDc, CcvsProducesVoltage) {
  sp::Circuit ckt;
  const int a = ckt.node("a"), out = ckt.node("out");
  auto& vs = ckt.add<sp::VSource>("Vsense", a, 0, 0.0);
  ckt.add<sp::ISource>("I1", a, 0, 2e-3);
  ckt.add<sp::Ccvs>("H1", out, 0, vs, 500.0);
  ckt.add<sp::Resistor>("RL", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(std::fabs(s.at(out)), 1.0, 1e-9);
}

TEST(LinearDc, SparseBackendMatchesDense) {
  sp::Circuit ckt;
  const int in = ckt.node("in");
  int prev = in;
  ckt.add<sp::VSource>("V1", in, 0, 10.0);
  for (int k = 0; k < 20; ++k) {
    const int next = ckt.node("n" + std::to_string(k));
    ckt.add<sp::Resistor>("Rs" + std::to_string(k), prev, next, 100.0);
    ckt.add<sp::Resistor>("Rg" + std::to_string(k), next, 0, 1e3);
    prev = next;
  }
  sp::AnalysisOptions dense, sparse;
  sparse.useSparse = true;
  sp::Analyzer anD(ckt, dense);
  const auto xd = anD.op();
  sp::Analyzer anS(ckt, sparse);
  const auto xs = anS.op();
  ASSERT_EQ(xd.size(), xs.size());
  for (size_t i = 0; i < xd.size(); ++i) EXPECT_NEAR(xd[i], xs[i], 1e-9);
}

TEST(LinearTran, RcChargingMatchesAnalytic) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  const double r = 1e3, c = 1e-9;  // tau = 1 us
  ckt.add<sp::VSource>(
      "V1", in, 0,
      std::make_unique<sp::PulseWaveform>(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0,
                                          2.0));
  ckt.add<sp::Resistor>("R1", in, out, r);
  ckt.add<sp::Capacitor>("C1", out, 0, c);
  sp::Analyzer an(ckt);
  const double tau = r * c;
  const auto tr = an.transient(5 * tau, tau / 100.0);
  const auto t = tr.time;
  const auto v = tr.voltage(out);
  for (size_t k = 0; k < t.size(); ++k) {
    const double expected = 1.0 - std::exp(-t[k] / tau);
    EXPECT_NEAR(v[k], expected, 5e-3) << "at t=" << t[k];
  }
}

TEST(LinearTran, RlDecayMatchesAnalytic) {
  // Current source switched into an RL pair: i_L(t) = I*(1 - e^{-tR/L}).
  sp::Circuit ckt;
  const int n1 = ckt.node("n1");
  const double r = 50.0, l = 1e-6;  // tau = 20 ns
  ckt.add<sp::ISource>(
      "I1", 0, n1,
      std::make_unique<sp::PulseWaveform>(0.0, 10e-3, 0.0, 1e-13, 1e-13, 1.0,
                                          2.0));
  ckt.add<sp::Resistor>("R1", n1, 0, r);
  auto& l1 = ckt.add<sp::Inductor>("L1", n1, 0, l);
  sp::Analyzer an(ckt);
  const double tau = l / r;
  const auto tr = an.transient(5 * tau, tau / 200.0);
  const auto t = tr.time;
  const auto il = tr.unknown(l1.branchId());
  for (size_t k = 0; k < t.size(); ++k) {
    const double expected = 10e-3 * (1.0 - std::exp(-t[k] / tau));
    EXPECT_NEAR(il[k], expected, 2e-4) << "at t=" << t[k];
  }
}

TEST(LinearTran, LcOscillatorConservesFrequency) {
  // Parallel LC with initial energy injected by a current pulse; resonant
  // f0 = 1/(2*pi*sqrt(LC)) = 50.33 MHz.
  sp::Circuit ckt;
  const int n1 = ckt.node("n1");
  const double l = 100e-9, c = 100e-12;
  ckt.add<sp::Inductor>("L1", n1, 0, l);
  ckt.add<sp::Capacitor>("C1", n1, 0, c);
  ckt.add<sp::Resistor>("Rbig", n1, 0, 1e6);  // tiny loss
  ckt.add<sp::ISource>(
      "Ikick", 0, n1,
      std::make_unique<sp::PulseWaveform>(0.0, 10e-3, 0.0, 1e-10, 1e-10,
                                          2e-9, 1.0));
  sp::Analyzer an(ckt);
  const double f0 = 1.0 / (kTwoPi * std::sqrt(l * c));
  const auto tr = an.transient(20.0 / f0, 0.005 / f0);
  const auto f = u::oscillationFrequency(tr.time, tr.voltage(n1));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, f0, f0 * 0.01);
}

TEST(LinearAc, RcLowPassPole) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  const double r = 1e3, c = 159e-12;  // f3dB ~ 1 MHz
  ckt.add<sp::VSource>("V1", in, 0, 0.0, /*acMag=*/1.0);
  ckt.add<sp::Resistor>("R1", in, out, r);
  ckt.add<sp::Capacitor>("C1", out, 0, c);
  sp::Analyzer an(ckt);
  const double f3 = 1.0 / (kTwoPi * r * c);
  const auto ac = an.ac({f3 / 100.0, f3, f3 * 100.0});
  // Passband ~ 0 dB.
  EXPECT_NEAR(ac.magnitudeDb(0, out), 0.0, 0.01);
  // -3 dB at the pole.
  EXPECT_NEAR(ac.magnitudeDb(1, out), -3.01, 0.05);
  // -40 dB two decades above.
  EXPECT_NEAR(ac.magnitudeDb(2, out), -40.0, 0.1);
  // Phase at the pole is -45 degrees.
  const auto v = ac.voltage(1, out);
  EXPECT_NEAR(std::arg(v) * 180.0 / u::constants::kPi, -45.0, 0.5);
}

TEST(LinearAc, SeriesRlcResonance) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), n1 = ckt.node("n1"), out = ckt.node("out");
  const double r = 10.0, l = 1e-6, c = 1e-9;
  ckt.add<sp::VSource>("V1", in, 0, 0.0, 1.0);
  ckt.add<sp::Resistor>("R1", in, n1, r);
  ckt.add<sp::Inductor>("L1", n1, out, l);
  ckt.add<sp::Capacitor>("C1", out, 0, c);
  ckt.add<sp::Resistor>("Rload", out, 0, 1e9);
  sp::Analyzer an(ckt);
  const double f0 = 1.0 / (kTwoPi * std::sqrt(l * c));
  const double q = std::sqrt(l / c) / r;
  const auto ac = an.ac({f0});
  // At resonance the capacitor voltage is Q times the input.
  EXPECT_NEAR(std::abs(ac.voltage(0, out)), q, q * 0.01);
}

TEST(LinearDcSweep, SweepsSourceValues) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("V1", in, 0, 0.0);
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Resistor>("R2", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto sw = an.dcSweep("V1", 0.0, 2.0, 0.5);
  ASSERT_EQ(sw.sweep.size(), 5u);
  for (size_t k = 0; k < sw.sweep.size(); ++k)
    EXPECT_NEAR(sw.voltage(k, out), sw.sweep[k] / 2.0, 1e-9);
}

TEST(LinearDcSweep, RejectsBadArguments) {
  sp::Circuit ckt;
  const int in = ckt.node("in");
  ckt.add<sp::VSource>("V1", in, 0, 1.0);
  ckt.add<sp::Resistor>("R1", in, 0, 1e3);
  sp::Analyzer an(ckt);
  EXPECT_THROW(an.dcSweep("nosuch", 0, 1, 0.1), ahfic::Error);
  EXPECT_THROW(an.dcSweep("R1", 0, 1, 0.1), ahfic::Error);
  EXPECT_THROW(an.dcSweep("V1", 0, 1, -0.1), ahfic::Error);
}
