// VCO / integrator blocks and a behavioural PLL closing the loop through
// the engine's one-sample feedback delay (the "PLL" box of Fig. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/blocks.h"
#include "ahdl/system.h"
#include "util/error.h"
#include "util/fft.h"
#include "util/numeric.h"

namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

TEST(Vco, FreeRunsAtCenterFrequency) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"ctl"}, "vc", 0.0);
  sys.add<ah::Vco>({"ctl"}, {"s", "c"}, "vco", 10e6, 1e6);
  sys.probe("s");
  const double fs = 1e9;
  const auto res = sys.run(5e-6, fs);
  const auto f = u::oscillationFrequency(res.time, res.trace("s"));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 10e6, 0.05e6);
}

TEST(Vco, ControlVoltageShiftsFrequency) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"ctl"}, "vc", 2.0);
  sys.add<ah::Vco>({"ctl"}, {"s", "c"}, "vco", 10e6, 1e6);
  sys.probe("s");
  const auto res = sys.run(5e-6, 1e9);
  const auto f = u::oscillationFrequency(res.time, res.trace("s"));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 12e6, 0.05e6);
}

TEST(Vco, QuadratureOutputs) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"ctl"}, "vc", 0.0);
  sys.add<ah::Vco>({"ctl"}, {"s", "c"}, "vco", 5e6, 0.0, 2.0);
  sys.probe("s");
  sys.probe("c");
  const auto res = sys.run(2e-6, 1e9);
  const auto& s = res.trace("s");
  const auto& c = res.trace("c");
  for (size_t k = 0; k < s.size(); k += 53)
    EXPECT_NEAR(s[k] * s[k] + c[k] * c[k], 4.0, 1e-6);
}

TEST(Vco, NegativeFrequencyClamped) {
  // Large negative control: frequency clamps at 0 instead of going
  // negative (phase must be monotone).
  ah::System sys;
  sys.add<ah::DcSource>({}, {"ctl"}, "vc", -100.0);
  sys.add<ah::Vco>({"ctl"}, {"s", "c"}, "vco", 10e6, 1e6);
  sys.probe("s");
  const auto res = sys.run(1e-6, 1e9);
  for (double v : res.trace("s")) EXPECT_NEAR(v, 0.0, 1e-2);
}

TEST(Integrator, RampsOnDc) {
  ah::System sys;
  sys.add<ah::DcSource>({}, {"x"}, "src", 3.0);
  sys.add<ah::IntegratorBlock>({"x"}, {"y"}, "int", 2.0);
  sys.probe("y");
  const auto res = sys.run(1e-3, 1e6);
  // y(T) ~ gain * x * T = 2 * 3 * 1e-3.
  EXPECT_NEAR(res.trace("y").back(), 6e-3, 1e-4);
}

TEST(Pll, LocksToReferenceTone) {
  // Classic multiplier PLL: phase detector (mixer) -> loop filter
  // (lowpass + integrator via lag) -> VCO. Reference at 10.5 MHz, VCO
  // centred at 10 MHz with 1 MHz/V gain: lock needs ~0.5 V of control.
  ah::System sys;
  const double fRef = 10.5e6;
  sys.add<ah::SineSource>({}, {"ref"}, "ref", fRef, 1.0);
  // Phase detector: multiply reference by VCO quadrature output (reads
  // the previous sample of "vq" — the loop's implicit delay).
  sys.add<ah::Mixer>({"ref", "vq"}, {"pd"}, "pd", 1.0);
  sys.add<ah::FilterBlock>({"pd"}, {"pdf"}, "lpf",
                           ah::FilterBlock::Kind::kLowpass, 1, 0.8e6);
  // Proportional + integral control.
  sys.add<ah::Amplifier>({"pdf"}, {"prop"}, "kp", 2.0);
  sys.add<ah::IntegratorBlock>({"pdf"}, {"integ"}, "ki", 4e6);
  sys.add<ah::Adder>({"prop", "integ"}, {"ctl"}, "sum", 2);
  sys.add<ah::Vco>({"ctl"}, {"vs", "vq"}, "vco", 10e6, 1e6);
  sys.probe("vs");
  sys.probe("ctl");

  const double fs = 400e6;
  const auto res = sys.run(60e-6, fs, 40e-6);  // settle, then observe
  const auto f = u::oscillationFrequency(res.time, res.trace("vs"));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, fRef, 0.02e6);  // locked to the reference
  // Control voltage settled near the expected 0.5 V.
  const auto& ctl = res.trace("ctl");
  double mean = 0.0;
  for (double v : ctl) mean += v;
  mean /= static_cast<double>(ctl.size());
  EXPECT_NEAR(mean, 0.5, 0.1);
}

TEST(Vco, RejectsBadFrequency) {
  EXPECT_THROW(ah::Vco("v", 0.0, 1.0), ahfic::Error);
}
