#include "spice/sparse_lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/csr.h"
#include "spice/diode.h"
#include "spice/linalg.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/numeric.h"

namespace sp = ahfic::spice;
namespace obs = ahfic::obs;
namespace u = ahfic::util;

namespace {

/// A random sparse pattern with a full diagonal plus `extra` off-diagonal
/// positions, mirrored so the symbolic ordering sees a symmetric
/// structure (as MNA stamps produce).
sp::CsrPattern randomPattern(int n, int extra, u::Rng& rng) {
  std::vector<std::pair<int, int>> entries;
  for (int k = 0; k < extra; ++k) {
    const int r = static_cast<int>(rng.next(static_cast<std::uint64_t>(n)));
    const int c = static_cast<int>(rng.next(static_cast<std::uint64_t>(n)));
    entries.emplace_back(r, c);
    entries.emplace_back(c, r);
  }
  sp::CsrPattern pat;
  pat.build(n, std::move(entries));
  return pat;
}

template <typename T>
T makeValue(u::Rng& rng);
template <>
double makeValue<double>(u::Rng& rng) {
  return rng.uniform(-2.0, 2.0);
}
template <>
std::complex<double> makeValue<std::complex<double>>(u::Rng& rng) {
  return {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
}

/// Fills slot-ordered values: random off-diagonals with a diagonally
/// dominant diagonal, so the system is comfortably nonsingular.
template <typename T>
void fillValues(const sp::CsrPattern& pat, std::vector<T>& vals,
                u::Rng& rng) {
  vals.assign(pat.nonzeros(), T{});
  for (size_t s = 0; s < pat.nonzeros(); ++s) vals[s] = makeValue<T>(rng);
  for (int r = 0; r < pat.size(); ++r) {
    double rowSum = 0.0;
    for (int p = pat.rowPtr()[static_cast<size_t>(r)];
         p < pat.rowPtr()[static_cast<size_t>(r) + 1]; ++p)
      rowSum += std::abs(vals[static_cast<size_t>(p)]);
    const int d = pat.slot(r, r);
    vals[static_cast<size_t>(d)] += T(rowSum + 1.0);
  }
}

/// Dense mirror of (pattern, values) for the oracle solve.
template <typename T>
sp::DenseMatrix<T> toDense(const sp::CsrPattern& pat,
                           const std::vector<T>& vals) {
  sp::DenseMatrix<T> a(pat.size(), pat.size());
  for (int r = 0; r < pat.size(); ++r)
    for (int p = pat.rowPtr()[static_cast<size_t>(r)];
         p < pat.rowPtr()[static_cast<size_t>(r) + 1]; ++p)
      a.at(r, pat.colIdx()[static_cast<size_t>(p)]) +=
          vals[static_cast<size_t>(p)];
  return a;
}

template <typename T>
std::vector<T> randomRhs(int n, u::Rng& rng) {
  std::vector<T> b(static_cast<size_t>(n));
  for (auto& v : b) v = makeValue<T>(rng);
  return b;
}

/// Diode-RC ladder shared by the dense-vs-sparse equivalence tests; the
/// diodes keep the system nonlinear so Newton actually iterates.
void buildLadder(sp::Circuit& ckt, int stages) {
  const int in = ckt.node("in");
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(1.0, 0.5, 1e6),
                       1.0);
  sp::DiodeModel dm;
  dm.is = 1e-14;
  dm.cj0 = 1e-12;
  dm.rs = 10.0;
  int prev = in;
  for (int k = 0; k < stages; ++k) {
    const int n = ckt.node("n" + std::to_string(k));
    ckt.add<sp::Resistor>("R" + std::to_string(k), prev, n, 1e3);
    ckt.add<sp::Capacitor>("C" + std::to_string(k), n, 0, 1e-12);
    if (k % 3 == 0)
      ckt.add<sp::Diode>("D" + std::to_string(k), ckt, n, 0, dm);
    prev = n;
  }
}

}  // namespace

TEST(SparseLu, MatchesDenseOnRandomRealSystems) {
  for (int n : {3, 12, 40, 90}) {
    for (int rep = 0; rep < 4; ++rep) {
      u::Rng rng(static_cast<std::uint64_t>(n * 131 + rep));
      auto pat = randomPattern(n, 3 * n, rng);
      std::vector<double> vals;
      fillValues(pat, vals, rng);
      const auto b = randomRhs<double>(n, rng);

      sp::SparseLU<double> lu;
      lu.analyze(pat);
      ASSERT_EQ(lu.factor(vals), sp::SparseLU<double>::FactorOutcome::
                                     kFullFactor);
      std::vector<double> x;
      lu.solve(b, x);

      const auto xd = sp::solveDense(toDense(pat, vals), b);
      for (int i = 0; i < n; ++i)
        EXPECT_NEAR(x[static_cast<size_t>(i)], xd[static_cast<size_t>(i)],
                    1e-10)
            << "n=" << n << " rep=" << rep << " i=" << i;
    }
  }
}

TEST(SparseLu, MatchesDenseOnRandomComplexSystems) {
  using C = std::complex<double>;
  for (int n : {4, 25, 70}) {
    u::Rng rng(static_cast<std::uint64_t>(n * 977));
    auto pat = randomPattern(n, 3 * n, rng);
    std::vector<C> vals;
    fillValues(pat, vals, rng);
    const auto b = randomRhs<C>(n, rng);

    sp::SparseLU<C> lu;
    lu.analyze(pat);
    ASSERT_NE(lu.factor(vals), sp::SparseLU<C>::FactorOutcome::kSingular);
    std::vector<C> x;
    lu.solve(b, x);

    const auto xd = sp::solveDense(toDense(pat, vals), b);
    for (int i = 0; i < n; ++i)
      EXPECT_LT(std::abs(x[static_cast<size_t>(i)] -
                         xd[static_cast<size_t>(i)]),
                1e-10)
          << "n=" << n << " i=" << i;
  }
}

TEST(SparseLu, RejectsSingularSystem) {
  // Row 2 = 2 * row 1 on a shared pattern.
  sp::CsrPattern pat;
  pat.build(3, {{0, 1}, {1, 0}, {1, 2}, {2, 0}, {2, 2}, {0, 2}, {2, 1}});
  std::vector<double> vals(pat.nonzeros(), 0.0);
  auto set = [&](int r, int c, double v) {
    vals[static_cast<size_t>(pat.slot(r, c))] = v;
  };
  set(0, 0, 1.0);
  set(0, 1, 2.0);
  set(0, 2, 3.0);
  set(1, 0, 1.0);
  set(1, 1, 2.0);
  set(1, 2, 3.0);
  set(2, 0, 5.0);
  set(2, 1, -1.0);
  set(2, 2, 0.5);

  sp::SparseLU<double> lu;
  lu.analyze(pat);
  EXPECT_EQ(lu.factor(vals),
            sp::SparseLU<double>::FactorOutcome::kSingular);
  // A singular outcome invalidates the recorded factorization: the next
  // factor of a good matrix must be a fresh full factorization.
  set(1, 1, 7.0);
  EXPECT_EQ(lu.factor(vals),
            sp::SparseLU<double>::FactorOutcome::kFullFactor);
}

TEST(SparseLu, RefactorReusesPatternAcrossValueChanges) {
  const int n = 30;
  u::Rng rng(42);
  auto pat = randomPattern(n, 2 * n, rng);
  std::vector<double> vals;
  sp::SparseLU<double> lu;
  lu.analyze(pat);

  for (int rep = 0; rep < 5; ++rep) {
    fillValues(pat, vals, rng);
    const auto outcome = lu.factor(vals);
    if (rep == 0)
      EXPECT_EQ(outcome, sp::SparseLU<double>::FactorOutcome::kFullFactor);
    else
      EXPECT_EQ(outcome, sp::SparseLU<double>::FactorOutcome::kRefactor);

    const auto b = randomRhs<double>(n, rng);
    std::vector<double> x;
    lu.solve(b, x);
    const auto xd = sp::solveDense(toDense(pat, vals), b);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(x[static_cast<size_t>(i)], xd[static_cast<size_t>(i)],
                  1e-10)
          << "rep=" << rep;
  }
  EXPECT_EQ(lu.stats().fullFactors, 1);
  EXPECT_EQ(lu.stats().refactors, 4);
}

TEST(SparseLu, TopologyChangeInvalidatesAnalysis) {
  u::Rng rng(7);
  auto pat = randomPattern(10, 12, rng);
  sp::SparseLU<double> lu;
  lu.analyze(pat);
  EXPECT_TRUE(lu.analyzedFor(pat.epoch()));

  // Growing the pattern with a genuinely new position bumps the epoch and
  // must invalidate the bound analysis...
  const auto before = pat.epoch();
  ASSERT_GT(pat.grow({{0, 9}, {9, 0}}), 0u);
  EXPECT_NE(pat.epoch(), before);
  EXPECT_FALSE(lu.analyzedFor(pat.epoch()));

  // ... while growth with only already-present positions keeps the epoch
  // (slots are stable, caches stay valid).
  const auto stable = pat.epoch();
  EXPECT_EQ(pat.grow({{0, 9}, {0, 0}}), 0u);
  EXPECT_EQ(pat.epoch(), stable);

  // Re-analyzing the grown pattern restarts the full/refactor cycle.
  lu.analyze(pat);
  std::vector<double> vals;
  fillValues(pat, vals, rng);
  EXPECT_EQ(lu.factor(vals),
            sp::SparseLU<double>::FactorOutcome::kFullFactor);
  EXPECT_EQ(lu.factor(vals),
            sp::SparseLU<double>::FactorOutcome::kRefactor);
}

TEST(SparseLu, ThrowsWhenFactoredBeforeAnalyze) {
  sp::SparseLU<double> lu;
  EXPECT_THROW(lu.factor(std::vector<double>{1.0}), ahfic::Error);
}

TEST(SparseBackend, AutoSelectsByUnknownCount) {
  {
    sp::Circuit small;
    buildLadder(small, 5);
    sp::Analyzer an(small);
    EXPECT_EQ(an.solverKind(), sp::SolverKind::kDense);
  }
  {
    sp::Circuit big;
    buildLadder(big, sp::kDenseBackendMaxUnknowns + 20);
    sp::Analyzer an(big);
    EXPECT_EQ(an.solverKind(), sp::SolverKind::kSparse);
  }
  {
    // The legacy flag keeps its meaning for existing call sites.
    sp::Circuit small;
    buildLadder(small, 5);
    sp::AnalysisOptions opts;
    opts.useSparse = true;
    sp::Analyzer an(small, opts);
    EXPECT_EQ(an.solverKind(), sp::SolverKind::kSparseLegacy);
  }
  {
    // An explicit choice beats both the heuristic and the legacy flag.
    sp::Circuit small;
    buildLadder(small, 5);
    sp::AnalysisOptions opts;
    opts.solver = sp::SolverKind::kSparse;
    sp::Analyzer an(small, opts);
    EXPECT_EQ(an.solverKind(), sp::SolverKind::kSparse);
  }
}

TEST(SparseBackend, MatchesDenseAcrossAnalyses) {
  sp::Circuit cd, cs;
  buildLadder(cd, 40);
  buildLadder(cs, 40);
  sp::AnalysisOptions od, os;
  od.solver = sp::SolverKind::kDense;
  os.solver = sp::SolverKind::kSparse;
  sp::Analyzer ad(cd, od), as(cs, os);
  ASSERT_EQ(as.solverKind(), sp::SolverKind::kSparse);

  // Operating point.
  const auto xd = ad.op();
  const auto xs = as.op();
  ASSERT_EQ(xd.size(), xs.size());
  for (size_t i = 0; i < xd.size(); ++i)
    EXPECT_NEAR(xs[i], xd[i], 1e-9) << "op unknown " << i;
  EXPECT_GT(as.stats().sparseRefactors, 0);

  // Transient: both backends must accept the same points and agree.
  const auto td = ad.transient(5e-7, 1e-8);
  const auto ts = as.transient(5e-7, 1e-8);
  ASSERT_EQ(td.time.size(), ts.time.size());
  for (size_t k = 0; k < td.time.size(); ++k)
    for (size_t i = 0; i < td.values[k].size(); ++i)
      EXPECT_NEAR(ts.values[k][i], td.values[k][i], 1e-8)
          << "tran point " << k << " unknown " << i;

  // AC sweep (complex path).
  const auto freqs = sp::logspace(1e3, 1e9, 4);
  const auto fd = ad.ac(freqs, xd);
  const auto fs = as.ac(freqs, xs);
  for (size_t k = 0; k < fd.values.size(); ++k)
    for (size_t i = 0; i < fd.values[k].size(); ++i)
      EXPECT_LT(std::abs(fs.values[k][i] - fd.values[k][i]), 1e-9)
          << "ac point " << k << " unknown " << i;

  // Noise (many solves per factorization).
  const auto nd = ad.noise(freqs, "n1", xd);
  const auto ns = as.noise(freqs, "n1", xs);
  ASSERT_EQ(nd.outputPsd.size(), ns.outputPsd.size());
  for (size_t k = 0; k < nd.outputPsd.size(); ++k) {
    const double scale = std::max(1e-300, nd.outputPsd[k]);
    EXPECT_LT(std::abs(ns.outputPsd[k] - nd.outputPsd[k]) / scale, 1e-9)
        << "noise point " << k;
  }
}

TEST(SparseBackend, NoPatternInsertsAfterPriming) {
  // The acceptance property of the stamp-memo design: once the priming
  // pass has built the pattern, steady-state Newton iteration performs
  // zero pattern insertions — every stamp lands on a memoized slot.
  const bool wasEnabled = obs::metricsEnabled();
  obs::setMetricsEnabled(true);
  const auto before = obs::metrics().snapshot();

  sp::Circuit ckt;
  buildLadder(ckt, 60);
  sp::AnalysisOptions opts;
  opts.solver = sp::SolverKind::kSparse;
  sp::Analyzer an(ckt, opts);
  const auto x = an.op();
  EXPECT_EQ(an.stats().sparsePatternInserts, 0);
  EXPECT_EQ(an.stats().sparseFullFactors, 1);
  EXPECT_GT(an.stats().sparseRefactors, 0);

  an.transient(2e-7, 1e-8);
  EXPECT_EQ(an.stats().sparsePatternInserts, 0);

  an.ac(sp::logspace(1e3, 1e9, 3), x);
  EXPECT_EQ(an.stats().sparsePatternInserts, 0);

  const auto delta = obs::metrics().snapshot().since(before);
  obs::setMetricsEnabled(wasEnabled);
  EXPECT_EQ(delta.counterValue("spice.sparse.pattern_inserts"), 0);
  EXPECT_GT(delta.counterValue("spice.sparse.refactors"), 0);
  EXPECT_GT(delta.counterValue("spice.sparse.full_factors"), 0);
}
