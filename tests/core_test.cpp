// Top-down methodology layer: spec sheets, characterisation, view
// swapping.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/blocks.h"
#include "core/design.h"
#include "util/error.h"
#include "util/fft.h"

namespace co = ahfic::core;
namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

namespace {

// A resistor-loaded common-emitter stage with emitter degeneration:
// gain ~ -RC/RE = -5, well-defined swing, GHz-range bandwidth.
const char* kCeStage =
    ".MODEL nref NPN(IS=1e-16 BF=110 VAF=45 RB=200 RE=4 RC=30 CJE=12f "
    "CJC=15f TF=12p)\n"
    "VCC vcc 0 8\n"
    "VIN in 0 DC 1.8\n"
    "RC vcc out 1k\n"
    "Q1 out in e nref\n"
    "RED e 0 200\n";

co::CharacterizationSetup ceSetup() {
  co::CharacterizationSetup s;
  s.netlist = kCeStage;
  s.inputSource = "VIN";
  s.outputNode = "out";
  s.f0 = 10e6;
  s.dcSweepSpan = 2.0;
  return s;
}

}  // namespace

TEST(SpecSheet, BoundsChecking) {
  co::SpecSheet specs;
  specs.addMax("shifter", "phase error", "deg", 3.0);
  specs.addMin("system", "image rejection", "dB", 30.0);
  specs.addRange("amp", "gain", "dB", 18.0, 22.0);

  EXPECT_TRUE(specs.check("shifter", "phase error", 2.0));
  EXPECT_FALSE(specs.check("shifter", "phase error", 4.0));
  EXPECT_TRUE(specs.check("system", "image rejection", 35.0));
  EXPECT_FALSE(specs.check("system", "image rejection", 25.0));
  EXPECT_TRUE(specs.check("amp", "gain", 20.0));
  EXPECT_FALSE(specs.check("amp", "gain", 25.0));
  EXPECT_THROW(specs.check("nope", "gain", 1.0), ahfic::Error);
}

TEST(SpecSheet, Validation) {
  co::SpecSheet specs;
  EXPECT_THROW(specs.add(co::SpecItem{"", "x", "", 0.0, 1.0}),
               ahfic::Error);
  EXPECT_THROW(specs.addRange("b", "n", "", 5.0, 1.0), ahfic::Error);
}

TEST(SpecSheet, ToStringListsEverything) {
  co::SpecSheet specs;
  specs.addMax("shifter", "phase error", "deg", 3.0);
  specs.addMin("system", "IRR", "dB", 30.0);
  const std::string s = specs.toString();
  EXPECT_NE(s.find("phase error"), std::string::npos);
  EXPECT_NE(s.find("<= 3"), std::string::npos);
  EXPECT_NE(s.find(">= 30"), std::string::npos);
}

TEST(SpecSheet, ComplianceReport) {
  co::SpecSheet specs;
  specs.addMax("shifter", "phase error", "deg", 3.0);
  specs.addMin("system", "IRR", "dB", 30.0);
  specs.addMax("paths", "gain balance", "%", 1.0);
  const std::string report = specs.complianceReport({
      {"shifter", "phase error", 2.1},
      {"system", "IRR", 28.0},
      {"other", "thing", 5.0},
  });
  EXPECT_NE(report.find("shifter / phase error : 2.1"), std::string::npos);
  EXPECT_NE(report.find("PASS"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  EXPECT_NE(report.find("(no spec)"), std::string::npos);
  EXPECT_NE(report.find("gain balance : (not measured)"),
            std::string::npos);
}

TEST(Characterize, CommonEmitterStage) {
  const auto model = co::characterizeAmplifier(ceSetup());
  // Gain ~ RC / (RE_deg + re') ~ 1000 / ~225 = ~4.4, inverting.
  EXPECT_GT(model.gainAtF0, 3.0);
  EXPECT_LT(model.gainAtF0, 6.0);
  EXPECT_GT(std::fabs(model.phaseDegAtF0), 150.0);  // inverting
  EXPECT_GT(model.bandwidth3Db, 50e6);              // fast stage
  EXPECT_GT(model.outputSwing, 1.0);                // healthy swing
  EXPECT_GT(model.outputBias, 2.0);
  EXPECT_LT(model.outputBias, 8.0);
}

TEST(Characterize, SetupErrors) {
  auto s = ceSetup();
  s.inputSource = "NOPE";
  EXPECT_THROW(co::characterizeAmplifier(s), ahfic::Error);
  s = ceSetup();
  s.outputNode = "nope";
  EXPECT_THROW(co::characterizeAmplifier(s), ahfic::Error);
  s = ceSetup();
  s.f0 = 0.0;
  EXPECT_THROW(co::characterizeAmplifier(s), ahfic::Error);
}

TEST(Characterize, ExtractedModelMatchesCircuitInBehavioralSim) {
  // The heart of Fig. 1's loop: the extracted behavioural model must
  // reproduce the transistor-level small-signal gain.
  const auto model = co::characterizeAmplifier(ceSetup());

  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 0.01);  // small signal
  co::addExtractedAmplifier(sys, "ce", "in", "out", model);
  sys.probe("out");
  const double fs = 64e6;
  const auto res = sys.run(8e-6, fs, 1e-6);
  const double amp = u::toneAmplitude(res.trace("out"), fs, 1e6);
  EXPECT_NEAR(amp, 0.01 * model.gainAtF0, 0.01 * model.gainAtF0 * 0.1);
}

TEST(Characterize, SwingLimitsLargeSignals) {
  const auto model = co::characterizeAmplifier(ceSetup());
  ah::System sys;
  sys.add<ah::SineSource>({}, {"in"}, "src", 1e6, 10.0);  // huge input
  co::addExtractedAmplifier(sys, "ce", "in", "out", model);
  sys.probe("out");
  const auto res = sys.run(4e-6, 64e6);
  // 5% headroom: the bilinear-transformed pole near Nyquist rings a
  // little on the saturated (square-ish) waveform.
  for (double v : res.trace("out"))
    EXPECT_LE(std::fabs(v), model.outputSwing * 1.05);
}

TEST(DesignChain, BuildBehavioralChain) {
  co::DesignChain chain("rx");
  chain.addBlock("lna", [](ah::System& sys, const std::string& in,
                           const std::string& out) {
    sys.add<ah::Amplifier>({in}, {out}, "lna", 4.0);
  });
  chain.addBlock("vga", [](ah::System& sys, const std::string& in,
                           const std::string& out) {
    sys.add<ah::Amplifier>({in}, {out}, "vga", 2.5);
  });

  ah::System sys;
  sys.add<ah::DcSource>({}, {"x"}, "src", 1.0);
  chain.build(sys, "x", "y");
  sys.probe("y");
  const auto res = sys.run(1e-6, 1e6);
  EXPECT_DOUBLE_EQ(res.trace("y").back(), 10.0);
}

TEST(DesignChain, SwapInTransistorView) {
  co::DesignChain chain("rx");
  // Behavioural guess: gain of -5.
  chain.addBlock("stage", [](ah::System& sys, const std::string& in,
                             const std::string& out) {
    sys.add<ah::Amplifier>({in}, {out}, "stage", -5.0);
  });
  chain.setTransistorView("stage", ceSetup());
  EXPECT_TRUE(chain.hasTransistorView("stage"));

  auto gainOf = [&](const std::set<std::string>& views) {
    ah::System sys;
    sys.add<ah::SineSource>({}, {"x"}, "src", 1e6, 0.01);
    chain.build(sys, "x", "y", views);
    sys.probe("y");
    const double fs = 64e6;
    const auto res = sys.run(8e-6, fs, 1e-6);
    return u::toneAmplitude(res.trace("y"), fs, 1e6) / 0.01;
  };

  const double behavioral = gainOf({});
  const double transistor = gainOf({"stage"});
  EXPECT_NEAR(behavioral, 5.0, 0.1);
  // Real circuit differs from the idealised guess — that is the insight
  // the swap delivers.
  EXPECT_GT(std::fabs(transistor - behavioral), 0.2);
  EXPECT_NEAR(transistor, chain.characterized("stage").gainAtF0, 0.5);
}

TEST(DesignChain, Validation) {
  co::DesignChain chain("rx");
  EXPECT_THROW(chain.addBlock("", nullptr), ahfic::Error);
  chain.addBlock("a", [](ah::System& sys, const std::string& in,
                         const std::string& out) {
    sys.add<ah::Amplifier>({in}, {out}, "a", 1.0);
  });
  EXPECT_THROW(chain.addBlock("a", [](ah::System&, const std::string&,
                                      const std::string&) {}),
               ahfic::Error);
  EXPECT_THROW(chain.setTransistorView("nope", ceSetup()), ahfic::Error);
  EXPECT_THROW(chain.characterized("a"), ahfic::Error);

  ah::System sys;
  sys.add<ah::DcSource>({}, {"x"}, "src", 1.0);
  EXPECT_THROW(chain.build(sys, "x", "y", {"a"}), ahfic::Error);
  EXPECT_THROW(chain.build(sys, "x", "y", {"ghost"}), ahfic::Error);
}

TEST(DesignChain, SpecsTravelWithTheChain) {
  co::DesignChain chain("tuner");
  chain.specs().addMax("shifter", "phase error", "deg", 3.0);
  chain.specs().addMax("paths", "gain balance", "%", 1.0);
  EXPECT_EQ(chain.specs().size(), 2u);
  EXPECT_TRUE(chain.specs().check("shifter", "phase error", 2.5));
}
