#include "util/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/numeric.h"
#include "util/units.h"

namespace u = ahfic::util;
using u::constants::kTwoPi;

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(u::fft(data), ahfic::Error);
}

TEST(Fft, ForwardInverseRoundTrip) {
  u::Rng rng(3);
  std::vector<std::complex<double>> data(256);
  for (auto& x : data) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = data;
  u::fft(data);
  u::fft(data, /*inverse=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  u::Rng rng(5);
  std::vector<std::complex<double>> data(512);
  double timeEnergy = 0.0;
  for (auto& x : data) {
    x = {rng.normal(), 0.0};
    timeEnergy += std::norm(x);
  }
  u::fft(data);
  double freqEnergy = 0.0;
  for (const auto& x : data) freqEnergy += std::norm(x);
  freqEnergy /= static_cast<double>(data.size());
  EXPECT_NEAR(freqEnergy, timeEnergy, 1e-8 * timeEnergy);
}

TEST(Fft, SingleToneBin) {
  // A sine exactly on bin 32 of a 256-point FFT.
  const size_t n = 256;
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i)
    data[i] = {std::sin(kTwoPi * 32.0 * i / n), 0.0};
  u::fft(data);
  // Magnitude at bin 32 should be n/2 (sine amplitude 1).
  EXPECT_NEAR(std::abs(data[32]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[31]), 0.0, 1e-9);
}

class SpectrumWindowTest : public ::testing::TestWithParam<u::Window> {};

TEST_P(SpectrumWindowTest, AmplitudeIsWindowCorrected) {
  const double fs = 1e9;
  const double f0 = 125e6;  // exactly on a bin for n = 4096
  const double amp = 0.42;
  std::vector<double> sig(4096);
  for (size_t i = 0; i < sig.size(); ++i)
    sig[i] = amp * std::sin(kTwoPi * f0 * static_cast<double>(i) / fs);
  const auto spec = u::amplitudeSpectrum(sig, fs, GetParam());
  const double measured = u::amplitudeNear(spec, f0, 2e6);
  EXPECT_NEAR(measured, amp, amp * 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllWindows, SpectrumWindowTest,
                         ::testing::Values(u::Window::kRect, u::Window::kHann,
                                           u::Window::kBlackman));

TEST(Spectrum, TwoTonesFoundAsPeaks) {
  const double fs = 1e9;
  std::vector<double> sig(8192);
  for (size_t i = 0; i < sig.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    sig[i] = 1.0 * std::sin(kTwoPi * 45e6 * t) +
             0.3 * std::sin(kTwoPi * 200e6 * t);
  }
  const auto spec = u::amplitudeSpectrum(sig, fs);
  const auto peaks = u::findPeaks(spec, 2, 0.05);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].frequency, 45e6, 1e6);
  EXPECT_NEAR(peaks[1].frequency, 200e6, 1e6);
  EXPECT_GT(peaks[0].amplitude, peaks[1].amplitude);
}

TEST(Spectrum, NextPow2) {
  EXPECT_EQ(u::nextPow2(1), 1u);
  EXPECT_EQ(u::nextPow2(2), 2u);
  EXPECT_EQ(u::nextPow2(3), 4u);
  EXPECT_EQ(u::nextPow2(1000), 1024u);
}

TEST(Spectrum, RejectsBadInputs) {
  EXPECT_THROW(u::amplitudeSpectrum({1.0}, 1e9), ahfic::Error);
  EXPECT_THROW(u::amplitudeSpectrum({1.0, 2.0}, 0.0), ahfic::Error);
}
