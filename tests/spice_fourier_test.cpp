// Fourier / THD analysis tests.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/diode.h"
#include "spice/fourier.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace sp = ahfic::spice;

TEST(Fourier, PureSineHasNoDistortion) {
  sp::Circuit ckt;
  const int in = ckt.node("in");
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(0.5, 2.0, 1e6));
  ckt.add<sp::Resistor>("R1", in, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(8e-6, 2e-9);
  const auto f = sp::fourierAnalysis(tr, in, 1e6, 5);
  EXPECT_NEAR(f.amplitudes[0], 2.0, 0.01);
  EXPECT_NEAR(f.dcComponent, 0.5, 0.01);
  EXPECT_LT(f.thdPercent(), 0.5);
}

TEST(Fourier, DiodeClipperIsRichInHarmonics) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(0.0, 3.0, 1e6));
  ckt.add<sp::Resistor>("R1", in, out, 1e3);
  ckt.add<sp::Diode>("D1", ckt, out, 0, dm);
  ckt.add<sp::Diode>("D2", ckt, 0, out, dm);  // back-to-back clamp
  sp::Analyzer an(ckt);
  const auto tr = an.transient(8e-6, 2e-9);
  const auto f = sp::fourierAnalysis(tr, out, 1e6, 9);
  // Symmetric clipping: strong odd harmonics, weak even ones.
  EXPECT_GT(f.thdPercent(), 10.0);
  EXPECT_GT(f.amplitudes[2], 5.0 * f.amplitudes[1]);  // H3 >> H2
  EXPECT_GT(f.amplitudes[4], 5.0 * f.amplitudes[3]);  // H5 >> H4
}

TEST(Fourier, HalfWaveRectifierHasEvenHarmonicsAndDc) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(0.0, 5.0, 1e6));
  ckt.add<sp::Diode>("D1", ckt, in, out, dm);
  ckt.add<sp::Resistor>("RL", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(8e-6, 2e-9);
  const auto f = sp::fourierAnalysis(tr, out, 1e6, 6);
  EXPECT_GT(f.dcComponent, 0.8);                      // rectified mean
  EXPECT_GT(f.amplitudes[1], 0.3 * f.amplitudes[0]);  // strong H2
}

TEST(Fourier, Validation) {
  sp::TranResult tiny;
  tiny.time = {0.0, 1e-9};
  tiny.values = {{0.0}, {0.0}};
  EXPECT_THROW(sp::fourierAnalysis(tiny, 1, 1e6), ahfic::Error);

  sp::Circuit ckt;
  const int in = ckt.node("in");
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(0.0, 1.0, 1e6));
  ckt.add<sp::Resistor>("R1", in, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(2e-6, 5e-9);
  EXPECT_THROW(sp::fourierAnalysis(tr, in, 1e6, 5, /*periods=*/10),
               ahfic::Error);  // record shorter than 10 periods
  EXPECT_THROW(sp::fourierAnalysis(tr, in, 0.0), ahfic::Error);
}
