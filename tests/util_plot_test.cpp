// ASCII chart tests.

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/plot.h"
#include "util/units.h"

namespace u = ahfic::util;

namespace {
std::pair<std::vector<double>, std::vector<double>> sineWave(int n) {
  std::vector<double> xs(static_cast<size_t>(n)), ys(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    xs[static_cast<size_t>(k)] = k * 1e-9;
    ys[static_cast<size_t>(k)] =
        std::sin(u::constants::kTwoPi * 3.0 * k / n);
  }
  return {xs, ys};
}
}  // namespace

TEST(AsciiChart, HasExpectedGeometry) {
  const auto [xs, ys] = sineWave(500);
  u::PlotOptions opt;
  opt.width = 60;
  opt.height = 12;
  const std::string s = u::asciiChart(xs, ys, opt);
  // height rows + axis + labels line.
  int lines = 0;
  for (char c : s)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 12 + 2);
  // Marks exist in both the top and bottom rows (full swing visible).
  const size_t firstNl = s.find('\n');
  EXPECT_NE(s.substr(0, firstNl).find('*'), std::string::npos);
}

TEST(AsciiChart, AxisLabelsShowRange) {
  const auto [xs, ys] = sineWave(200);
  u::PlotOptions opt;
  opt.xLabel = "time";
  opt.yLabel = "volts";
  const std::string s = u::asciiChart(xs, ys, opt);
  EXPECT_NE(s.find("volts"), std::string::npos);
  EXPECT_NE(s.find("time"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);    // ymax
  EXPECT_NE(s.find("-1"), std::string::npos);   // ymin
}

TEST(AsciiChart, ConstantSignalDoesNotDivideByZero) {
  std::vector<double> xs{0.0, 1.0, 2.0}, ys{5.0, 5.0, 5.0};
  EXPECT_NO_THROW(u::asciiChart(xs, ys));
  const std::string s = u::asciiChart(xs, ys);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(AsciiChart, FastSwingsSurviveDecimation) {
  // A waveform much denser than the plot width: the per-column banding
  // must still reach both extremes.
  const auto [xs, ys] = sineWave(40000);
  u::PlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  const std::string s = u::asciiChart(xs, ys, opt);
  // Top and bottom plot rows both contain marks.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t nl = s.find('\n', pos);
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  EXPECT_NE(lines[0].find('*'), std::string::npos);
  EXPECT_NE(lines[9].find('*'), std::string::npos);
}

TEST(AsciiChart, TwoSeriesOverlayUsesDistinctMarks) {
  const auto [xs, y1] = sineWave(300);
  std::vector<double> y2(y1.size());
  for (size_t k = 0; k < y2.size(); ++k) y2[k] = 0.25;
  const std::string s = u::asciiChart2(xs, y1, y2);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW(u::asciiChart({1.0}, {1.0}), ahfic::Error);
  EXPECT_THROW(u::asciiChart({1.0, 2.0}, {1.0}), ahfic::Error);
  u::PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(u::asciiChart({1.0, 2.0}, {1.0, 2.0}, tiny), ahfic::Error);
}
