// Analog cell database: registration validation, search, checkout,
// persistence round trip, HTML view, and the re-use study.

#include <gtest/gtest.h>

#include "celldb/database.h"
#include "celldb/reuse.h"
#include "celldb/seed.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/parser.h"
#include "spice/passive.h"
#include "util/error.h"

namespace cd = ahfic::celldb;
namespace sp = ahfic::spice;

namespace {
cd::Cell minimalCell(const char* name = "CELL1") {
  cd::Cell c;
  c.name = name;
  c.library = "TV";
  c.category1 = "Croma";
  c.category2 = "ACC";
  c.document = "A test cell.";
  c.schematic = "R1 in out 1k\nC1 out 0 1p\n";
  return c;
}
}  // namespace

TEST(CellDb, RegisterAndFind) {
  cd::CellDatabase db;
  db.registerCell(minimalCell());
  ASSERT_NE(db.find("TV", "CELL1"), nullptr);
  EXPECT_EQ(db.find("TV", "CELL1")->category2, "ACC");
  EXPECT_EQ(db.find("TV", "NOPE"), nullptr);
  EXPECT_EQ(db.find("XX", "CELL1"), nullptr);
  // Lookups are case-insensitive, as designers expect.
  EXPECT_NE(db.find("tv", "cell1"), nullptr);
}

TEST(CellDb, RejectsDuplicatesAndJunk) {
  cd::CellDatabase db;
  db.registerCell(minimalCell());
  EXPECT_THROW(db.registerCell(minimalCell()), ahfic::Error);

  cd::Cell noName = minimalCell("X");
  noName.name.clear();
  EXPECT_THROW(db.registerCell(noName), ahfic::Error);

  cd::Cell noContent = minimalCell("Y");
  noContent.schematic.clear();
  noContent.behavioral.clear();
  EXPECT_THROW(db.registerCell(noContent), ahfic::Error);
}

TEST(CellDb, ValidatesSchematicParses) {
  cd::Cell bad = minimalCell("BAD");
  bad.schematic = "R1 in out not-a-number\n";
  cd::CellDatabase db;
  EXPECT_THROW(db.registerCell(bad), ahfic::Error);
}

TEST(CellDb, ValidatesBehavioralParses) {
  cd::Cell bad = minimalCell("BAD");
  bad.behavioral = "module broken ( { nonsense";
  cd::CellDatabase db;
  EXPECT_THROW(db.registerCell(bad), ahfic::Error);
}

TEST(CellDb, UpdateAndRemove) {
  cd::CellDatabase db;
  db.registerCell(minimalCell());
  cd::Cell v2 = minimalCell();
  v2.document = "updated";
  db.updateCell(v2);
  EXPECT_EQ(db.find("TV", "CELL1")->document, "updated");
  EXPECT_THROW(db.updateCell(minimalCell("NOPE")), ahfic::Error);
  EXPECT_TRUE(db.removeCell("TV", "CELL1"));
  EXPECT_FALSE(db.removeCell("TV", "CELL1"));
}

TEST(CellDb, CategoryBrowsing) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const auto libs = db.libraries();
  ASSERT_EQ(libs.size(), 2u);  // TV and TVR, as in Fig. 6
  EXPECT_EQ(libs[0], "TV");
  EXPECT_EQ(libs[1], "TVR");
  const auto cats = db.categories("TV");
  EXPECT_NE(std::find(cats.begin(), cats.end(), "Croma"), cats.end());
  EXPECT_NE(std::find(cats.begin(), cats.end(), "Video"), cats.end());
  const auto subs = db.subcategories("TV", "Croma");
  EXPECT_NE(std::find(subs.begin(), subs.end(), "ACC"), subs.end());
  // Fig. 6 names both ACC1 and ACC2 under TV/Croma/ACC.
  EXPECT_EQ(db.byCategory("TV", "Croma", "ACC").size(), 2u);
}

TEST(CellDb, SearchIsCaseInsensitiveAndBroad) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  EXPECT_FALSE(db.search("gain controlled").empty());  // document text
  EXPECT_FALSE(db.search("GILBERT").empty());          // keyword
  EXPECT_FALSE(db.search("acc").empty());              // name
  EXPECT_TRUE(db.search("zebra-xylophone").empty());
}

TEST(CellDb, CheckoutCountsReuse) {
  cd::CellDatabase db;
  db.registerCell(minimalCell());
  EXPECT_EQ(db.find("TV", "CELL1")->reuseCount, 0);
  const cd::Cell copy = db.checkout("TV", "CELL1");
  EXPECT_EQ(copy.name, "CELL1");
  EXPECT_EQ(db.find("TV", "CELL1")->reuseCount, 1);
  db.checkout("TV", "CELL1");
  EXPECT_EQ(db.find("TV", "CELL1")->reuseCount, 2);
  EXPECT_THROW(db.checkout("TV", "NOPE"), ahfic::Error);
}

TEST(CellDb, TextRoundTripPreservesEverything) {
  cd::CellDatabase db;
  cd::Cell c = minimalCell();
  c.keywords = {"agc", "gain control"};
  c.author = "tanaka";
  c.registeredOn = "1995-06-01";
  c.reuseCount = 7;
  c.behavioral =
      "module m (in, out) { analog { V(out) <- 2 * V(in); } }\n";
  c.simulationData["sweep"] = "x,y\n1,2\n3,4\n";
  db.registerCell(c);

  const auto db2 = cd::CellDatabase::fromText(db.toText());
  ASSERT_EQ(db2.size(), 1u);
  const cd::Cell* r = db2.find("TV", "CELL1");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->document, c.document + "\n");  // heredoc adds final newline
  EXPECT_EQ(r->schematic, c.schematic);
  EXPECT_EQ(r->behavioral, c.behavioral);
  EXPECT_EQ(r->author, "tanaka");
  EXPECT_EQ(r->registeredOn, "1995-06-01");
  EXPECT_EQ(r->reuseCount, 7);
  ASSERT_EQ(r->keywords.size(), 2u);
  EXPECT_EQ(r->keywords[1], "gain control");
  EXPECT_EQ(r->simulationData.at("sweep"), "x,y\n1,2\n3,4\n");
}

TEST(CellDb, SeededLibraryRoundTrips) {
  cd::CellDatabase db;
  const size_t n = cd::seedExampleLibrary(db);
  EXPECT_GE(n, 8u);
  const auto db2 = cd::CellDatabase::fromText(db.toText());
  EXPECT_EQ(db2.size(), db.size());
  EXPECT_EQ(db2.toText(), db.toText());  // stable serialisation
}

TEST(CellDb, FromTextDiagnostics) {
  EXPECT_THROW(cd::CellDatabase::fromText("library TV\n"),
               ahfic::ParseError);
  EXPECT_THROW(cd::CellDatabase::fromText("cell A\ncell B\n"),
               ahfic::ParseError);
  EXPECT_THROW(cd::CellDatabase::fromText(
                   "cell A\nlibrary L\ncategory1 C\nschematic <<END\nR1 a "
                   "0 1k\n"),
               ahfic::ParseError);  // unterminated heredoc
  EXPECT_THROW(cd::CellDatabase::fromText("cell A\nbogusfield x\nend\n"),
               ahfic::ParseError);
}

TEST(CellDb, SaveAndLoadFile) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const std::string path = "/tmp/ahfic_celldb_test.txt";
  db.save(path);
  const auto db2 = cd::CellDatabase::load(path);
  EXPECT_EQ(db2.size(), db.size());
  EXPECT_THROW(cd::CellDatabase::load("/nonexistent/dir/db.txt"),
               ahfic::Error);
}

TEST(CellDb, EverySeededSchematicSimulates) {
  // Stronger than parse-validation: each seeded schematic must reach a DC
  // operating point when spliced into a scratch circuit.
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  for (const auto& cell : db.cells()) {
    if (cell.schematic.empty()) continue;
    sp::Circuit ckt;
    sp::parseInto(ckt, cell.schematic);
    // Ground any floating input-ish nodes through large resistors so the
    // OP is well-posed.
    for (const char* n : {"in", "in1", "in2", "rfP", "rfN", "loP", "loN",
                          "ctl", "x"}) {
      const int id = ckt.findNode(n);
      if (id > 0)
        ckt.add<sp::Resistor>(std::string("Rtest_") + n, id, 0, 1e5);
    }
    sp::Analyzer an(ckt);
    EXPECT_NO_THROW(an.op()) << cell.key();
  }
}

TEST(CellDb, HtmlViewContainsTaxonomyAndContent) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const std::string html = db.toHtml();
  EXPECT_NE(html.find("<h2>Library TV</h2>"), std::string::npos);
  EXPECT_NE(html.find("<h2>Library TVR</h2>"), std::string::npos);
  EXPECT_NE(html.find("Croma"), std::string::npos);
  EXPECT_NE(html.find("ACC1"), std::string::npos);
  EXPECT_NE(html.find("gain controlled amp"), std::string::npos);
  // Schematics are escaped, not raw.
  EXPECT_EQ(html.find("<Q1"), std::string::npos);
}

TEST(CellDb, StatsAggregation) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  db.checkout("TV", "ACC1");
  db.checkout("TV", "ACC1");
  const auto st = db.stats();
  EXPECT_EQ(st.cellCount, db.size());
  EXPECT_EQ(st.libraryCount, 2u);
  EXPECT_EQ(st.totalCheckouts, 2);
  EXPECT_GE(st.cellsWithBehavioralView, 5u);
}

TEST(ReuseStudy, SteadyStateAboveSeventyPercent) {
  // The paper's Sec. 3 claim: "above 70% of the circuits can be re-used".
  cd::CellDatabase db;
  cd::ReuseSimConfig cfg;
  const auto res = cd::runReuseStudy(db, cfg);
  EXPECT_EQ(static_cast<int>(res.projects.size()), cfg.projects);
  EXPECT_GT(res.steadyStateReuseRatio(), 0.70);
  // The library has grown but stays bounded by the taxonomy size.
  EXPECT_LE(static_cast<int>(db.size()), cfg.distinctBlockKinds);
  // First project necessarily designs everything from scratch.
  EXPECT_EQ(res.projects.front().blocksReused, 0);
}

TEST(ReuseStudy, ReuseRatioImprovesOverTime) {
  cd::CellDatabase db;
  cd::ReuseSimConfig cfg;
  const auto res = cd::runReuseStudy(db, cfg);
  double early = 0.0, late = 0.0;
  const size_t third = res.projects.size() / 3;
  for (size_t i = 0; i < third; ++i)
    early += res.projects[i].reuseRatio();
  for (size_t i = res.projects.size() - third; i < res.projects.size(); ++i)
    late += res.projects[i].reuseRatio();
  EXPECT_GT(late, early);
}

TEST(ReuseStudy, DeterministicUnderSeed) {
  cd::CellDatabase a, b;
  cd::ReuseSimConfig cfg;
  const auto ra = cd::runReuseStudy(a, cfg);
  const auto rb = cd::runReuseStudy(b, cfg);
  EXPECT_EQ(ra.totalNeeded, rb.totalNeeded);
  EXPECT_EQ(ra.totalReused, rb.totalReused);
}

TEST(ReuseStudy, RejectsBadConfig) {
  cd::CellDatabase db;
  cd::ReuseSimConfig cfg;
  cfg.projects = 0;
  EXPECT_THROW(cd::runReuseStudy(db, cfg), ahfic::Error);
  cfg = {};
  cfg.blocksPerProjectMax = 1;  // below min
  EXPECT_THROW(cd::runReuseStudy(db, cfg), ahfic::Error);
}
