// fT extraction harness: AC vs analytic agreement and the Fig. 9 physics
// (peak-fT current tracks emitter area; curves roll off past the knee).

#include <gtest/gtest.h>

#include "bjtgen/ft.h"
#include "bjtgen/generator.h"
#include "util/error.h"

namespace bg = ahfic::bjtgen;

namespace {
const bg::ModelGenerator& gen() {
  static bg::ModelGenerator g = bg::ModelGenerator::withDefaultTechnology();
  return g;
}
}  // namespace

TEST(FtExtractor, AcAndAnalyticAgree) {
  bg::FtExtractor fx(gen().generate("N1.2-6D"));
  for (double ic : {0.2e-3, 0.8e-3, 2.0e-3}) {
    const auto ac = fx.measureAt(ic);
    const auto an = fx.measureAnalyticAt(ic);
    EXPECT_NEAR(ac.ft, an.ft, an.ft * 0.12) << "ic=" << ic;
    EXPECT_NEAR(ac.vbe, an.vbe, 1e-3);
  }
}

TEST(FtExtractor, BiasSolveHitsTargetCurrent) {
  bg::FtExtractor fx(gen().generate("N1.2-12D"));
  const auto pt = fx.measureAt(1.0e-3);
  EXPECT_NEAR(pt.ic, 1.0e-3, 1e-6);
  EXPECT_GT(pt.vbe, 0.7);
  EXPECT_LT(pt.vbe, 0.9);
}

TEST(FtExtractor, CurveRisesThenFalls) {
  bg::FtExtractor fx(gen().generate("N1.2-6D"));
  const auto pts = fx.sweep({0.05e-3, 0.5e-3, 5.0e-3});
  EXPECT_LT(pts[0].ft, pts[1].ft);  // depletion-cap limited at low Ic
  EXPECT_GT(pts[1].ft, pts[2].ft);  // high-injection droop past the knee
}

TEST(FtExtractor, PeakInCalibratedBand) {
  // The synthetic process is calibrated for the reference family to peak
  // in the upper half of Fig. 9's 5..10 GHz axis.
  bg::FtExtractor fx(gen().generate("N1.2-6D"));
  const auto peak = fx.findPeak(0.05e-3, 10e-3, 17);
  EXPECT_GT(peak.ftPeak, 8.0e9);
  EXPECT_LT(peak.ftPeak, 12.0e9);
  EXPECT_GT(peak.icPeak, 0.1e-3);
  EXPECT_LT(peak.icPeak, 3.0e-3);
}

TEST(FtExtractor, PeakCurrentScalesWithEmitterLength) {
  // Fig. 9's headline: "the collector current which gives the peak ft
  // changes depending on the shapes of the transistors."
  double prevIc = 0.0;
  for (const auto& shape : bg::fig9Shapes()) {
    bg::FtExtractor fx(gen().generate(shape));
    const auto peak = fx.findPeak(0.05e-3, 40e-3, 17);
    EXPECT_GT(peak.icPeak, prevIc) << shape.name();
    prevIc = peak.icPeak;
  }
}

TEST(FtExtractor, PeakFtSimilarAcrossFamily) {
  // Same vertical profile => similar peak fT across the Fig. 9 family.
  std::vector<double> peaks;
  for (const auto& shape : bg::fig9Shapes()) {
    bg::FtExtractor fx(gen().generate(shape));
    peaks.push_back(fx.findPeak(0.05e-3, 40e-3, 13).ftPeak);
  }
  const auto [mn, mx] = std::minmax_element(peaks.begin(), peaks.end());
  EXPECT_LT(*mx / *mn, 1.4);
}

TEST(FtExtractor, RejectsBadInputs) {
  bg::FtExtractor fx(gen().generate("N1.2-6D"));
  EXPECT_THROW(fx.measureAt(0.0), ahfic::Error);
  EXPECT_THROW(fx.measureAt(1.0), ahfic::Error);  // 1 A: beyond the cell
  EXPECT_THROW(fx.findPeak(1e-3, 1e-4), ahfic::Error);
  EXPECT_THROW(bg::FtExtractor(gen().generate("N1.2-6D"), -1.0),
               ahfic::Error);
}

TEST(FtExtractor, MaxBiasCurrentIsFiniteAndScales) {
  bg::FtExtractor small(gen().generate("N1.2-6D"));
  bg::FtExtractor large(gen().generate("N1.2-24D"));
  EXPECT_GT(small.maxBiasCurrent(), 1e-3);
  EXPECT_GT(large.maxBiasCurrent(), 2.0 * small.maxBiasCurrent());
}
