// Model parameter generator: reference-anchored scaling, baseline area
// factor, and emitted SPICE cards.

#include <gtest/gtest.h>

#include "bjtgen/generator.h"
#include "spice/analysis.h"
#include "spice/parser.h"
#include "util/error.h"

namespace bg = ahfic::bjtgen;
namespace sp = ahfic::spice;

namespace {
bg::ModelGenerator gen() { return bg::ModelGenerator::withDefaultTechnology(); }
}  // namespace

TEST(Generator, ReferenceShapeReproducesReferenceCard) {
  const auto g = gen();
  const auto m = g.generate(g.referenceShape());
  const auto& ref = g.referenceCard();
  EXPECT_NEAR(m.is, ref.is, ref.is * 1e-12);
  EXPECT_NEAR(m.rb, ref.rb, ref.rb * 1e-12);
  EXPECT_NEAR(m.cje, ref.cje, ref.cje * 1e-12);
  EXPECT_NEAR(m.cjc, ref.cjc, ref.cjc * 1e-12);
  EXPECT_NEAR(m.re, ref.re, ref.re * 1e-12);
  EXPECT_NEAR(m.tf, ref.tf, 0.0);
  EXPECT_NEAR(m.bf, ref.bf, 0.0);
}

TEST(Generator, AreaFactorIsEmitterAreaRatio) {
  const auto g = gen();
  EXPECT_NEAR(g.areaFactor(bg::TransistorShape::fromName("N1.2-12D")), 2.0,
              1e-12);
  EXPECT_NEAR(g.areaFactor(bg::TransistorShape::fromName("N1.2x2-6T")), 2.0,
              1e-12);
  EXPECT_NEAR(g.areaFactor(bg::TransistorShape::fromName("N2.4-6D")), 2.0,
              1e-12);
  EXPECT_NEAR(g.areaFactor(bg::TransistorShape::fromName("N1.2-48D")), 8.0,
              1e-12);
}

TEST(Generator, GeneratedDiffersFromAreaFactorBaseline) {
  // Three shapes with identical area factor 2.0 get three *different*
  // geometry-aware cards — the point of the paper's Sec. 4.
  const auto g = gen();
  const auto m12d = g.generate("N1.2-12D");
  const auto m24 = g.generate("N2.4-6D");
  const auto mX2 = g.generate("N1.2x2-6T");
  EXPECT_NE(m12d.rb, m24.rb);
  EXPECT_NE(m12d.rb, mX2.rb);
  EXPECT_NE(m12d.cjc, m24.cjc);
  // The baseline would predict rb_ref/2 for all three.
  const double baselineRb = g.referenceCard().rb / 2.0;
  EXPECT_GT(std::abs(m12d.rb - baselineRb) / baselineRb, 0.3);
}

TEST(Generator, IsScalesWithAreaPlusPerimeter) {
  const auto g = gen();
  const auto m6 = g.generate("N1.2-6D");
  const auto m12 = g.generate("N1.2-12D");
  const double ratio = m12.is / m6.is;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.1);  // slightly below 2: end perimeter does not double
}

TEST(Generator, LongerEmitterLowersRbRaisesCjc) {
  const auto g = gen();
  const auto m6 = g.generate("N1.2-6D");
  const auto m48 = g.generate("N1.2-48D");
  EXPECT_LT(m48.rb, m6.rb / 4.0);
  EXPECT_GT(m48.cjc, 2.0 * m6.cjc);
  EXPECT_GT(m48.ikf, 7.0 * m6.ikf);
}

TEST(Generator, ShapeIndependentParametersUnchanged) {
  const auto g = gen();
  for (const auto& shape : bg::fig8Shapes()) {
    const auto m = g.generate(shape);
    EXPECT_EQ(m.bf, g.referenceCard().bf) << shape.name();
    EXPECT_EQ(m.vaf, g.referenceCard().vaf) << shape.name();
    EXPECT_EQ(m.tf, g.referenceCard().tf) << shape.name();
    EXPECT_EQ(m.vje, g.referenceCard().vje) << shape.name();
    EXPECT_EQ(m.mjc, g.referenceCard().mjc) << shape.name();
  }
}

TEST(Generator, ModelNamesAreSpiceSafe) {
  EXPECT_EQ(bg::ModelGenerator::modelName(
                bg::TransistorShape::fromName("N1.2-6D")),
            "QN1p2_6D");
  EXPECT_EQ(bg::ModelGenerator::modelName(
                bg::TransistorShape::fromName("N1.2x2-6T")),
            "QN1p2x2_6T");
}

TEST(Generator, EmittedCardRoundTripsThroughParser) {
  const auto g = gen();
  const auto shape = bg::TransistorShape::fromName("N1.2-12D");
  const auto direct = g.generate(shape);
  auto deck =
      sp::parseDeck("round trip\n" + g.generateSpiceLine(shape) + "\n");
  const auto& parsed = deck.circuit.bjtModel("QN1p2_12D");
  EXPECT_NEAR(parsed.is, direct.is, direct.is * 1e-4);
  EXPECT_NEAR(parsed.rb, direct.rb, direct.rb * 1e-4);
  EXPECT_NEAR(parsed.cjc, direct.cjc, direct.cjc * 1e-4);
  EXPECT_NEAR(parsed.xcjc, direct.xcjc, 1e-4);
}

TEST(Generator, EmittedCardRunsEndToEnd) {
  const auto g = gen();
  const std::string card =
      g.generateSpiceLine(bg::TransistorShape::fromName("N1.2-12D"));
  auto deck = sp::parseDeck("generated card\n" + card +
                            "\nIB 0 b 30u\nVC c 0 2\nQ1 c b 0 QN1p2_12D\n");
  sp::Analyzer an(deck.circuit);
  const auto x = an.op();
  sp::Solution s(&x);
  // Forward active: collector node held at 2 V, some mA flowing.
  EXPECT_GT(-s.at(deck.circuit.findNode("c")), -3.0);
}

TEST(Generator, ZeroReferenceCardValueScalesToZero) {
  // A parameter the reference card does not use stays absent in every
  // generated card (the geometry only provides relative scaling).
  auto card = bg::referenceModel();
  card.cjs = 0.0;
  bg::ModelGenerator g(bg::defaultTechnology(),
                       bg::TransistorShape::fromName("N1.2-6S"), card);
  EXPECT_DOUBLE_EQ(g.generate("N1.2-6D").cjs, 0.0);
}
