// ahficd's HTTP stack end-to-end over real sockets: submission flow,
// warm-cache identity, admission gating (422/429), protocol errors,
// concurrency, graceful drain and half-open peers.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>

#include "celldb/database.h"
#include "obs/history.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "runner/session.h"
#include "serve/api.h"
#include "serve/jobs.h"
#include "serve/server.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace sv = ahfic::serve;
namespace u = ahfic::util;

namespace {

/// Flips the metrics master switch on for one test (without resetting
/// the registry, which other tests' static handles rely on).
struct MetricsOn {
  MetricsOn() { obs::setMetricsEnabled(true); }
  ~MetricsOn() { obs::setMetricsEnabled(false); }
};

constexpr const char* kGoodDeck = R"(serve test deck
V1 in 0 DC 1
R1 in out 1k
R2 out 0 2k
.OP
.END
)";

// Two parallel voltage sources: statically doomed (NET_VSRC_LOOP).
constexpr const char* kVloopDeck = R"(vloop deck
V1 a 0 DC 1
V2 a 0 DC 2
R1 a 0 1k
.OP
.END
)";

struct Reply {
  int status = 0;  // 0 = transport failure
  std::string body;
  std::string raw;
};

/// One blocking request/response exchange against 127.0.0.1:port.
Reply exchange(int port, const std::string& wire) {
  Reply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return reply;
  }
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  char chunk[8192];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    reply.raw.append(chunk, static_cast<size_t>(n));
  ::close(fd);
  if (reply.raw.compare(0, 5, "HTTP/") != 0) return reply;
  reply.status = std::atoi(reply.raw.c_str() + reply.raw.find(' ') + 1);
  const size_t split = reply.raw.find("\r\n\r\n");
  if (split != std::string::npos) reply.body = reply.raw.substr(split + 4);
  return reply;
}

std::string getRequest(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

std::string postRequest(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: t\r\n"
         "Content-Type: application/json\r\n"
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
         body;
}

std::string deckSubmission(const std::string& deck) {
  u::JsonValue doc = u::JsonValue::object();
  doc.set("deck", deck);
  return doc.dump();
}

/// A full daemon stack on an ephemeral port, torn down in order.
struct TestDaemon {
  explicit TestDaemon(sv::JobServiceOptions jobOpts = {},
                      sv::ServerOptions serverOpts = {},
                      bool withHistory = true) {
    jobs = std::make_unique<sv::JobService>(session, jobOpts);
    if (withHistory)
      history = std::make_unique<ahfic::obs::MetricsHistory>(
          /*intervalSec=*/3600.0, /*capacity=*/8);
    sv::ApiContext ctx;
    ctx.jobs = jobs.get();
    ctx.db = &db;
    ctx.dbMutex = &dbMutex;
    ctx.history = history.get();
    serverOpts.port = 0;  // always ephemeral in tests
    server = std::make_unique<sv::HttpServer>(sv::buildApiRouter(ctx),
                                              serverOpts);
    server->start();
  }
  ~TestDaemon() {
    jobs->stop(/*drain=*/false);
    server->stop();
  }

  int port() const { return server->port(); }

  /// Polls GET /v1/jobs/<id> until state == "done"; returns the parsed
  /// final envelope.
  u::JsonValue waitForJob(const std::string& id) {
    for (int k = 0; k < 600; ++k) {
      const Reply r = exchange(port(), getRequest("/v1/jobs/" + id));
      if (r.status != 200) break;
      u::JsonValue doc = u::parseJson(r.body);
      if (doc.get("state").asString() == "done") return doc;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "job " << id << " never reached state=done";
    return u::JsonValue::object();
  }

  ahfic::runner::Session session;
  ahfic::celldb::CellDatabase db;
  ahfic::util::Mutex dbMutex;
  std::unique_ptr<sv::JobService> jobs;
  std::unique_ptr<ahfic::obs::MetricsHistory> history;
  std::unique_ptr<sv::HttpServer> server;
};

/// Extracts a response header value from the raw reply (nullopt-style:
/// empty when absent).
std::string headerValue(const Reply& r, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const size_t pos = r.raw.find(needle);
  if (pos == std::string::npos) return "";
  const size_t start = pos + needle.size();
  return r.raw.substr(start, r.raw.find("\r\n", start) - start);
}

}  // namespace

TEST(ServeServer, HealthzAnswers) {
  TestDaemon daemon;
  const Reply r = exchange(daemon.port(), getRequest("/healthz"));
  ASSERT_EQ(r.status, 200);
  const u::JsonValue doc = u::parseJson(r.body);
  EXPECT_EQ(doc.get("status").asString(), "ok");
  EXPECT_TRUE(doc.get("accepting").asBool());
}

TEST(ServeServer, DeckSubmissionRunsToConvergedListing) {
  TestDaemon daemon;
  const Reply r = exchange(daemon.port(),
                           postRequest("/v1/jobs", deckSubmission(kGoodDeck)));
  ASSERT_EQ(r.status, 202);
  const u::JsonValue accepted = u::parseJson(r.body);
  EXPECT_EQ(accepted.get("schema").asString(), "ahfic-job-v1");
  const std::string id = accepted.get("id").asString();
  ASSERT_FALSE(id.empty());

  const u::JsonValue done = daemon.waitForJob(id);
  EXPECT_EQ(done.get("status").asString(), "ok");
  EXPECT_FALSE(done.get("cacheHit").asBool());
  const std::string listing = done.get("listing").asString();
  EXPECT_NE(listing.find("operating point"), std::string::npos);
}

TEST(ServeServer, RepeatSubmissionIsABitIdenticalCacheHit) {
  TestDaemon daemon;
  const std::string submission = deckSubmission(kGoodDeck);

  const Reply first =
      exchange(daemon.port(), postRequest("/v1/jobs", submission));
  ASSERT_EQ(first.status, 202);
  const u::JsonValue cold =
      daemon.waitForJob(u::parseJson(first.body).get("id").asString());
  ASSERT_EQ(cold.get("status").asString(), "ok");

  const Reply second =
      exchange(daemon.port(), postRequest("/v1/jobs", submission));
  ASSERT_EQ(second.status, 202);
  const u::JsonValue warm =
      daemon.waitForJob(u::parseJson(second.body).get("id").asString());
  EXPECT_TRUE(warm.get("cacheHit").asBool());
  EXPECT_EQ(warm.get("key").asString(), cold.get("key").asString());
  // The whole listing reproduces bit-for-bit from the warm session.
  EXPECT_EQ(warm.get("listing").asString(), cold.get("listing").asString());
}

TEST(ServeServer, LintRejectedDeckGets422WithStructuredReport) {
  TestDaemon daemon;
  const Reply r = exchange(
      daemon.port(), postRequest("/v1/jobs", deckSubmission(kVloopDeck)));
  ASSERT_EQ(r.status, 422);
  const u::JsonValue doc = u::parseJson(r.body);
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-lint-v1");
  bool sawLoop = false;
  const u::JsonValue& diags = doc.get("diagnostics");
  for (size_t k = 0; k < diags.size(); ++k)
    if (diags.at(k).get("code").asString() == "NET_VSRC_LOOP")
      sawLoop = true;
  EXPECT_TRUE(sawLoop);
}

TEST(ServeServer, MalformedJsonBodyGets400) {
  TestDaemon daemon;
  const Reply r =
      exchange(daemon.port(), postRequest("/v1/jobs", "{not json"));
  EXPECT_EQ(r.status, 400);
  // Exactly one of deck/workload is also a 400, not a crash.
  const Reply both = exchange(
      daemon.port(),
      postRequest("/v1/jobs", "{\"deck\":\"x\",\"workload\":\"mc-ft\"}"));
  EXPECT_EQ(both.status, 400);
}

TEST(ServeServer, OversizedBodyGets413) {
  sv::ServerOptions serverOpts;
  serverOpts.limits.maxBodyBytes = 256;
  TestDaemon daemon({}, serverOpts);
  const Reply r = exchange(
      daemon.port(),
      postRequest("/v1/jobs", deckSubmission(std::string(1024, 'x'))));
  EXPECT_EQ(r.status, 413);
}

TEST(ServeServer, ChunkedUploadGets501) {
  TestDaemon daemon;
  const Reply r = exchange(daemon.port(),
                           "POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"
                           "5\r\nhello\r\n0\r\n\r\n");
  EXPECT_EQ(r.status, 501);
}

TEST(ServeServer, QueueOverflowGets429) {
  sv::JobServiceOptions jobOpts;
  jobOpts.workers = 0;  // admit but never execute: queue fills for sure
  jobOpts.queueDepth = 2;
  TestDaemon daemon(jobOpts);

  EXPECT_EQ(exchange(daemon.port(),
                     postRequest("/v1/jobs", deckSubmission(kGoodDeck)))
                .status,
            202);
  EXPECT_EQ(exchange(daemon.port(),
                     postRequest("/v1/jobs", deckSubmission(kGoodDeck)))
                .status,
            202);
  const Reply full = exchange(
      daemon.port(), postRequest("/v1/jobs", deckSubmission(kGoodDeck)));
  ASSERT_EQ(full.status, 429);
  EXPECT_NE(full.body.find("queue full"), std::string::npos);
}

TEST(ServeServer, ConcurrentSubmissionsAllComplete) {
  sv::JobServiceOptions jobOpts;
  jobOpts.workers = 2;
  jobOpts.queueDepth = 64;
  TestDaemon daemon(jobOpts);

  constexpr int kThreads = 8;
  std::vector<std::string> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&daemon, &ids, t] {
      // Distinct decks (unique resistor value) so nothing is coalesced
      // by the result cache.
      std::string deck = "deck " + std::to_string(t) +
                         "\nV1 in 0 DC 1\nR1 in out " +
                         std::to_string(1000 + t) + "\nR2 out 0 2k\n.OP\n.END\n";
      u::JsonValue doc = u::JsonValue::object();
      doc.set("deck", deck);
      const Reply r =
          exchange(daemon.port(), postRequest("/v1/jobs", doc.dump()));
      if (r.status == 202)
        ids[static_cast<size_t>(t)] =
            u::parseJson(r.body).get("id").asString();
    });
  for (auto& t : threads) t.join();

  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("submission " + std::to_string(t));
    ASSERT_FALSE(ids[static_cast<size_t>(t)].empty());
    const u::JsonValue done = daemon.waitForJob(ids[static_cast<size_t>(t)]);
    EXPECT_EQ(done.get("status").asString(), "ok");
  }
}

TEST(ServeServer, GracefulStopDrainsQueuedJobs) {
  sv::JobServiceOptions jobOpts;
  jobOpts.workers = 1;
  TestDaemon daemon(jobOpts);

  std::vector<std::string> ids;
  for (int k = 0; k < 3; ++k) {
    std::string deck = "drain deck " + std::to_string(k) +
                       "\nV1 in 0 DC 1\nR1 in out " +
                       std::to_string(3000 + k) + "\nR2 out 0 2k\n.OP\n.END\n";
    u::JsonValue doc = u::JsonValue::object();
    doc.set("deck", deck);
    const Reply r =
        exchange(daemon.port(), postRequest("/v1/jobs", doc.dump()));
    ASSERT_EQ(r.status, 202);
    ids.push_back(u::parseJson(r.body).get("id").asString());
  }

  // SIGTERM path: drain refuses new work but finishes what is queued.
  EXPECT_TRUE(daemon.jobs->stop(/*drain=*/true, std::chrono::minutes(1)));
  EXPECT_FALSE(daemon.jobs->accepting());
  for (const std::string& id : ids) {
    const auto out = daemon.jobs->status(id);
    ASSERT_TRUE(out.found);
    EXPECT_EQ(out.body.get("state").asString(), "done");
  }

  // New submissions after the drain are refused with 503.
  const Reply late = exchange(
      daemon.port(), postRequest("/v1/jobs", deckSubmission(kGoodDeck)));
  EXPECT_EQ(late.status, 503);
}

TEST(ServeServer, HalfOpenPeerDoesNotBlockOtherRequests) {
  sv::ServerOptions serverOpts;
  serverOpts.connectionThreads = 2;
  serverOpts.socketTimeoutSec = 1;
  TestDaemon daemon({}, serverOpts);

  // A client that connects, sends half a request and goes silent.
  const int lazy = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lazy, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(daemon.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(lazy, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char* partial = "GET /healthz HTT";
  ASSERT_GT(::send(lazy, partial, std::strlen(partial), 0), 0);

  // Other connections keep being served while the lazy one idles.
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(exchange(daemon.port(), getRequest("/healthz")).status, 200);

  // The receive timeout eventually evicts the half-open peer (the 408
  // is best-effort; an empty read means the server just closed us).
  char buf[512];
  const ssize_t n = ::recv(lazy, buf, sizeof buf, 0);
  if (n > 0) {
    const std::string head(buf, static_cast<size_t>(n));
    EXPECT_NE(head.find("408"), std::string::npos);
  }
  ::close(lazy);
  EXPECT_EQ(exchange(daemon.port(), getRequest("/healthz")).status, 200);
}

TEST(ServeServer, CelldbPagesServeLiveHtmlAndRegistration) {
  TestDaemon daemon;

  // Register a cell over HTTP, with the existing content validation.
  u::JsonValue doc = u::JsonValue::object();
  doc.set("name", "ACC1");
  doc.set("library", "TV");
  doc.set("category1", "Croma");
  doc.set("schematic", "R1 in out 1k\nC1 out 0 1p");
  const Reply created = exchange(
      daemon.port(), postRequest("/v1/celldb/cells", doc.dump()));
  ASSERT_EQ(created.status, 201);

  // Duplicate -> 409; invalid schematic -> 422.
  EXPECT_EQ(exchange(daemon.port(),
                     postRequest("/v1/celldb/cells", doc.dump()))
                .status,
            409);
  u::JsonValue bad = u::JsonValue::object();
  bad.set("name", "BROKEN");
  bad.set("library", "TV");
  bad.set("category1", "Croma");
  bad.set("schematic", "R1 only-two-tokens");
  EXPECT_EQ(exchange(daemon.port(),
                     postRequest("/v1/celldb/cells", bad.dump()))
                .status,
            422);

  // The index and both cell-page routes serve the registered cell.
  const Reply index = exchange(daemon.port(), getRequest("/celldb"));
  ASSERT_EQ(index.status, 200);
  EXPECT_NE(index.raw.find("Content-Type: text/html"), std::string::npos);
  EXPECT_NE(index.body.find("ACC1"), std::string::npos);
  EXPECT_NE(index.body.find("href=\"/celldb/cell/TV/ACC1\""),
            std::string::npos);

  EXPECT_EQ(exchange(daemon.port(), getRequest("/celldb/cell/TV/ACC1"))
                .status,
            200);
  const Reply byName =
      exchange(daemon.port(), getRequest("/celldb/cell/ACC1"));
  EXPECT_EQ(byName.status, 200);
  EXPECT_NE(byName.body.find("ACC1"), std::string::npos);
  EXPECT_EQ(exchange(daemon.port(), getRequest("/celldb/cell/TV/NOPE"))
                .status,
            404);
}

TEST(ServeServer, MetricsEndpointServesEnvelope) {
  TestDaemon daemon;
  const Reply r = exchange(daemon.port(), getRequest("/v1/metrics"));
  ASSERT_EQ(r.status, 200);
  const u::JsonValue doc = u::parseJson(r.body);
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-metrics-v1");
}

TEST(ServeServer, UnknownJobIdGets404) {
  TestDaemon daemon;
  EXPECT_EQ(exchange(daemon.port(), getRequest("/v1/jobs/job-999")).status,
            404);
}

TEST(ServeServer, EveryResponseCarriesARequestId) {
  TestDaemon daemon;
  // No inbound id: the server mints one in its canonical req- form.
  const Reply r = exchange(daemon.port(), getRequest("/healthz"));
  ASSERT_EQ(r.status, 200);
  const std::string minted = headerValue(r, "X-Ahfic-Request-Id");
  ASSERT_FALSE(minted.empty());
  EXPECT_EQ(minted.compare(0, 4, "req-"), 0) << minted;

  // Distinct requests get distinct ids.
  const Reply r2 = exchange(daemon.port(), getRequest("/healthz"));
  EXPECT_NE(headerValue(r2, "X-Ahfic-Request-Id"), minted);

  // A client-supplied id is honored and echoed verbatim.
  const Reply echoed = exchange(
      daemon.port(),
      "GET /healthz HTTP/1.1\r\nHost: t\r\n"
      "X-Ahfic-Request-Id: req-client-chosen-42\r\n\r\n");
  EXPECT_EQ(headerValue(echoed, "X-Ahfic-Request-Id"),
            "req-client-chosen-42");
}

TEST(ServeServer, JobEnvelopeCarriesTheSubmittingRequestId) {
  TestDaemon daemon;
  const Reply r = exchange(
      daemon.port(),
      "POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
      "X-Ahfic-Request-Id: req-envelope-test-7\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " +
          std::to_string(deckSubmission(kGoodDeck).size()) + "\r\n\r\n" +
          deckSubmission(kGoodDeck));
  ASSERT_EQ(r.status, 202);
  EXPECT_EQ(headerValue(r, "X-Ahfic-Request-Id"), "req-envelope-test-7");
  const u::JsonValue accepted = u::parseJson(r.body);
  EXPECT_EQ(accepted.get("requestId").asString(), "req-envelope-test-7");

  // The id survives into the *final* envelope, polled much later by a
  // different connection (with a different request id of its own).
  const u::JsonValue done =
      daemon.waitForJob(accepted.get("id").asString());
  EXPECT_EQ(done.get("requestId").asString(), "req-envelope-test-7");
  EXPECT_EQ(done.get("status").asString(), "ok");
}

TEST(ServeServer, RequestIdCorrelatesHeaderLogAndTrace) {
  // The tentpole's end-to-end check: one submission's id must appear in
  // (a) the response header, (b) the structured JSONL log lines of the
  // serve AND runner layers, and (c) the trace span annotations.
  const std::string jsonlPath = "serve_e2e_correlation.jsonl";
  obs::resetLoggingForTest();
  obs::setTextLogSink(false);
  obs::setJsonlLogSink(true, jsonlPath);
  obs::setLogLevel(obs::LogLevel::kDebug);
  obs::clearTrace();
  obs::setTracingEnabled(true);

  const std::string id = "req-e2e-correlation-99";
  {
    TestDaemon daemon;
    const std::string body = deckSubmission(kGoodDeck);
    const Reply r = exchange(
        daemon.port(),
        "POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
        "X-Ahfic-Request-Id: " + id + "\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
            body);
    ASSERT_EQ(r.status, 202);
    EXPECT_EQ(headerValue(r, "X-Ahfic-Request-Id"), id);  // (a)
    daemon.waitForJob(u::parseJson(r.body).get("id").asString());
  }

  obs::setTracingEnabled(false);
  obs::setJsonlLogSink(false);

  // (b) JSONL: the id is stamped on serve-layer and runner-layer lines.
  std::ifstream f(jsonlPath);
  ASSERT_TRUE(f.good());
  bool serveLine = false, runnerLine = false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const u::JsonValue doc = u::parseJson(line);
    if (!doc.has("request_id") ||
        doc.get("request_id").asString() != id)
      continue;
    const std::string site = doc.get("site").asString();
    if (site.compare(0, 6, "serve.") == 0) serveLine = true;
    if (site.compare(0, 7, "runner.") == 0) runnerLine = true;
  }
  f.close();
  std::remove(jsonlPath.c_str());
  EXPECT_TRUE(serveLine) << "no serve.* log line carried " << id;
  EXPECT_TRUE(runnerLine) << "no runner.* log line carried " << id;

  // (c) Trace: both the HTTP span and the job span annotate the id.
  const u::JsonValue trace = u::parseJson(obs::traceJson());
  const u::JsonValue& evs = trace.get("traceEvents");
  bool serveSpan = false, jobSpan = false;
  for (size_t k = 0; k < evs.size(); ++k) {
    const u::JsonValue& e = evs.at(k);
    if (e.get("ph").asString() != "X" || !e.has("args")) continue;
    const u::JsonValue& args = e.get("args");
    if (!args.has("request_id") ||
        args.get("request_id").asString() != id)
      continue;
    const std::string name = e.get("name").asString();
    if (name == "serve.request") serveSpan = true;
    if (name.compare(0, 4, "job:") == 0) jobSpan = true;
  }
  obs::clearTrace();
  obs::resetLoggingForTest();
  EXPECT_TRUE(serveSpan) << "serve.request span missing the id";
  EXPECT_TRUE(jobSpan) << "runner job span missing the id";
}

TEST(ServeServer, MetricsHistoryEndpointServesDeltaEnvelope) {
  MetricsOn metricsOn;
  TestDaemon daemon;
  // Generate some traffic, then take explicit samples (the test daemon
  // does not run the background sampler — determinism over realism).
  exchange(daemon.port(), getRequest("/healthz"));
  daemon.history->sampleNow();
  exchange(daemon.port(), getRequest("/healthz"));
  exchange(daemon.port(), getRequest("/healthz"));
  daemon.history->sampleNow();

  const Reply r =
      exchange(daemon.port(), getRequest("/v1/metrics/history"));
  ASSERT_EQ(r.status, 200);
  const u::JsonValue doc = u::parseJson(r.body);
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-metrics-history-v1");
  EXPECT_GE(doc.get("samples").asNumber(), 2.0);
  EXPECT_EQ(doc.get("t").size(),
            static_cast<size_t>(doc.get("samples").asNumber()));
  ASSERT_TRUE(doc.get("counters").has("serve.requests"));
  // serve.requests grew between the two samples: some delta is positive.
  const u::JsonValue& wire = doc.get("counters").get("serve.requests");
  double total = 0;
  for (size_t k = 0; k < wire.get("deltas").size(); ++k)
    total += wire.get("deltas").at(k).asNumber();
  EXPECT_GE(total, 2.0);

  // window=N trims; a malformed window is a 400, not a crash.
  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/metrics/history?window=3600"))
                .status,
            200);
  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/metrics/history?window=banana"))
                .status,
            400);
}

TEST(ServeServer, MetricsEndpointSpeaksPrometheus) {
  MetricsOn metricsOn;
  TestDaemon daemon;
  exchange(daemon.port(), getRequest("/healthz"));
  const Reply r = exchange(
      daemon.port(), getRequest("/v1/metrics?format=prometheus"));
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.raw.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(r.body.find("# TYPE ahfic_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(r.body.find("ahfic_serve_request_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);

  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/metrics?format=msgpack"))
                .status,
            400);
}

TEST(ServeServer, DebugDashboardServesLiveHtml) {
  TestDaemon daemon;
  exchange(daemon.port(), getRequest("/healthz"));
  daemon.history->sampleNow();
  daemon.history->sampleNow();

  const Reply r = exchange(daemon.port(), getRequest("/debug"));
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.raw.find("Content-Type: text/html"), std::string::npos);
  EXPECT_NE(r.body.find("<svg"), std::string::npos);
  for (const char* title : {"queue depth", "job throughput",
                            "cache hit rate", "newton iters p99"})
    EXPECT_NE(r.body.find(title), std::string::npos) << title;
  EXPECT_NE(r.body.find("/v1/metrics/history"), std::string::npos);
}

TEST(ServeServer, WindowParamIsValidatedNotCoerced) {
  MetricsOn metricsOn;
  TestDaemon daemon;
  daemon.history->sampleNow();

  // Values std::stod would have silently coerced (trailing garbage),
  // plus plain junk and negatives: all 400 with a structured error body.
  for (const char* bad : {"abc", "5x", "-1", "1e", "inf", "nan"}) {
    for (const char* route : {"/v1/metrics/history", "/debug"}) {
      const Reply r = exchange(
          daemon.port(),
          getRequest(std::string(route) + "?window=" + bad));
      EXPECT_EQ(r.status, 400) << route << "?window=" << bad;
      const u::JsonValue doc = u::parseJson(r.body);
      ASSERT_TRUE(doc.has("error")) << r.body;
      EXPECT_EQ(doc.get("error").get("status").asNumber(), 400.0);
      EXPECT_NE(doc.get("error").get("message").asString().find(bad),
                std::string::npos);
    }
  }
  // Well-formed values (including fractions and 0 = everything) pass.
  for (const char* good : {"0", "2.5", "3600"})
    EXPECT_EQ(exchange(daemon.port(),
                       getRequest(std::string("/v1/metrics/history?window=") +
                                  good))
                  .status,
              200)
        << good;
}

TEST(ServeServer, ProfileEndpointCapturesOnDemand) {
  TestDaemon daemon;

  // Parameter validation before any capture starts.
  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/profile?seconds=abc")).status,
            400);
  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/profile?seconds=35")).status,
            400);
  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/profile?seconds=0")).status,
            400);
  EXPECT_EQ(exchange(daemon.port(),
                     getRequest("/v1/profile?format=pprof")).status,
            400);

  // A short capture returns the enveloped ahfic-profile-v1 document.
  const Reply r = exchange(
      daemon.port(), getRequest("/v1/profile?seconds=0.3"));
  ASSERT_EQ(r.status, 200);
  const u::JsonValue env = u::parseJson(r.body);
  EXPECT_EQ(env.get("schema").asString(), "ahfic-bench-v1");
  EXPECT_EQ(env.get("name").asString(), "profile");
  const u::JsonValue& payload = env.get("payload");
  EXPECT_EQ(payload.get("schema").asString(), "ahfic-profile-v1");
  EXPECT_EQ(payload.get("clock").asString(), "cpu");
  EXPECT_GE(payload.get("durationSec").asNumber(), 0.25);
  EXPECT_TRUE(payload.has("samples"));
  EXPECT_TRUE(payload.has("dropped"));
  EXPECT_TRUE(payload.has("stacks"));

  // The capture is replayable without re-profiling.
  const Reply latest =
      exchange(daemon.port(), getRequest("/v1/profile/latest"));
  ASSERT_EQ(latest.status, 200);
  EXPECT_EQ(u::parseJson(latest.body).get("name").asString(), "profile");

  // Collapsed format answers as plain text.
  const Reply collapsed = exchange(
      daemon.port(),
      getRequest("/v1/profile?seconds=0.2&format=collapsed"));
  EXPECT_EQ(collapsed.status, 200);
  EXPECT_NE(collapsed.raw.find("Content-Type: text/plain"),
            std::string::npos);
}

TEST(ServeServer, ProfileEndpointRefusesConcurrentCapture) {
  TestDaemon daemon;
  // Hold the process-wide capture slot the way a --profile flag would.
  ASSERT_TRUE(obs::startProfiling());
  const Reply r =
      exchange(daemon.port(), getRequest("/v1/profile?seconds=0.1"));
  obs::stopProfiling();
  ASSERT_EQ(r.status, 409);
  const u::JsonValue doc = u::parseJson(r.body);
  EXPECT_EQ(doc.get("error").get("status").asNumber(), 409.0);
}

TEST(ServeServer, HistoryEndpointsAnswer503WithoutASampler) {
  TestDaemon daemon({}, {}, /*withHistory=*/false);
  EXPECT_EQ(exchange(daemon.port(), getRequest("/v1/metrics/history"))
                .status,
            503);
  EXPECT_EQ(exchange(daemon.port(), getRequest("/debug")).status, 503);
}
