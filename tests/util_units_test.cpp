#include "util/units.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace u = ahfic::util;

TEST(Units, ParsePlainNumbers) {
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("42"), 42.0);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("  7.25  "), 7.25);
}

TEST(Units, ParseEngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("1.2u"), 1.2e-6);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("45MEG"), 45e6);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("45meg"), 45e6);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("3k"), 3e3);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("2G"), 2e9);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("1T"), 1e12);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("5f"), 5e-15);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("7n"), 7e-9);
}

TEST(Units, MIsMilliNotMega) {
  // The classic SPICE trap.
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("1M"), 1e-3);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("1m"), 1e-3);
}

TEST(Units, ParseUnitTails) {
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("1.2um"), 1.2e-6);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("45MEGHz"), 45e6);
  EXPECT_DOUBLE_EQ(*u::parseSpiceNumber("5V"), 5.0);
}

TEST(Units, ParseRejectsGarbage) {
  EXPECT_FALSE(u::parseSpiceNumber("abc").has_value());
  EXPECT_FALSE(u::parseSpiceNumber("").has_value());
  EXPECT_FALSE(u::parseSpiceNumber("1.2.3").has_value());
  EXPECT_FALSE(u::parseSpiceNumber("3k3").has_value());
}

TEST(Units, ParseOrThrowNamesTheContext) {
  EXPECT_DOUBLE_EQ(u::parseSpiceNumberOrThrow("1k", "resistance"), 1000.0);
  EXPECT_THROW(u::parseSpiceNumberOrThrow("oops", "resistance"),
               ahfic::ParseError);
}

TEST(Units, FormatEngineering) {
  EXPECT_EQ(u::formatEngineering(0.0), "0");
  EXPECT_EQ(u::formatEngineering(4.5e7), "45M");
  EXPECT_EQ(u::formatEngineering(1.2e-6), "1.2u");
  EXPECT_EQ(u::formatEngineering(-3e3), "-3k");
}

TEST(Units, FormatFrequency) {
  EXPECT_EQ(u::formatFrequency(1.3e9), "1.3 GHz");
  EXPECT_EQ(u::formatFrequency(45e6), "45 MHz");
  EXPECT_EQ(u::formatFrequency(999.0), "999 Hz");
}

TEST(Units, ThermalVoltageAt27C) {
  const double vt = u::constants::thermalVoltage(27.0);
  EXPECT_NEAR(vt, 0.02585, 1e-4);
}
