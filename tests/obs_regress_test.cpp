// Perf-regression gate policy core (obs/regress.h): path extraction,
// best-of-K folding, noise-aware comparison, waiving, and the two
// properties the CI gate stands on — a self-comparison never flags, an
// injected 2x slowdown always does.

#include "obs/regress.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/bench.h"
#include "util/error.h"
#include "util/json.h"

namespace obs = ahfic::obs;
namespace u = ahfic::util;

namespace {

u::JsonValue parse(const std::string& text) { return u::parseJson(text); }

/// A small solver-shaped payload with one array level.
u::JsonValue samplePayload(double lu, double speedup) {
  return parse(R"({
    "schema": "ahfic-bench-test-v1",
    "total": 12.5,
    "kernel": [
      {"n": 16, "luNs": 100.0, "speedup": 1.1},
      {"n": 1024, "luNs": )" + std::to_string(lu) +
               R"(, "speedup": )" + std::to_string(speedup) + R"(}
    ]
  })");
}

obs::BenchGates sampleGates() {
  obs::BenchGates gates;
  gates.metrics.push_back({"kernel[n=1024].luNs", 0.5, false});
  gates.metrics.push_back({"kernel[n=1024].speedup", 0.35, true});
  gates.metrics.push_back({"kernel[n=16].luNs", 0.5, false});
  gates.waived.push_back("kernel[n=16].luNs");
  return gates;
}

u::JsonValue envelope(u::JsonValue payload) {
  return obs::benchEnvelope("micro", std::move(payload), "");
}

TEST(ObsRegress, ExtractMetricWalksObjectsAndSelectors) {
  const u::JsonValue payload = samplePayload(4000.0, 3.0);
  EXPECT_DOUBLE_EQ(obs::extractMetric(payload, "total"), 12.5);
  EXPECT_DOUBLE_EQ(obs::extractMetric(payload, "kernel[n=1024].luNs"),
                   4000.0);
  EXPECT_DOUBLE_EQ(obs::extractMetric(payload, "kernel[n=16].speedup"),
                   1.1);
}

TEST(ObsRegress, ExtractMetricNamesTheFailingSegment) {
  const u::JsonValue payload = samplePayload(4000.0, 3.0);
  EXPECT_THROW(obs::extractMetric(payload, "missing"), ahfic::Error);
  EXPECT_THROW(obs::extractMetric(payload, "kernel[n=999].luNs"),
               ahfic::Error);
  EXPECT_THROW(obs::extractMetric(payload, "total[n=1].x"), ahfic::Error);
  EXPECT_THROW(obs::extractMetric(payload, "kernel[n=16]"), ahfic::Error)
      << "an object is not a number";
  EXPECT_THROW(obs::extractMetric(payload, "kernel[n16].luNs"),
               ahfic::Error);
  EXPECT_THROW(obs::extractMetric(payload, "a..b"), ahfic::Error);
}

TEST(ObsRegress, GateConfigParsesAndValidates) {
  const obs::GateConfig config = obs::GateConfig::fromJson(parse(R"({
    "schema": "ahfic-gates-v1",
    "benches": {
      "micro": {
        "metrics": [
          {"path": "kernel[n=1024].luNs", "maxRegress": 0.5},
          {"path": "kernel[n=1024].speedup", "maxRegress": 0.35,
           "higherIsBetter": true}
        ],
        "waived": ["kernel[n=1024].luNs"]
      }
    }
  })"));
  const obs::BenchGates* gates = config.find("micro");
  ASSERT_NE(gates, nullptr);
  EXPECT_EQ(gates->metrics.size(), 2u);
  EXPECT_TRUE(gates->metrics[1].higherIsBetter);
  EXPECT_TRUE(gates->isWaived("kernel[n=1024].luNs"));
  EXPECT_FALSE(gates->isWaived("kernel[n=1024].speedup"));
  EXPECT_EQ(config.find("nope"), nullptr);

  // Schema tag, waive-of-ungated, and zero thresholds are all rejected.
  EXPECT_THROW(obs::GateConfig::fromJson(parse(R"({"schema": "x"})")),
               ahfic::Error);
  EXPECT_THROW(obs::GateConfig::fromJson(parse(R"({
    "schema": "ahfic-gates-v1",
    "benches": {"micro": {"metrics": [{"path": "a"}],
                          "waived": ["not-gated"]}}
  })")),
               ahfic::Error);
  EXPECT_THROW(obs::GateConfig::fromJson(parse(R"({
    "schema": "ahfic-gates-v1",
    "benches": {"micro": {"metrics": [{"path": "a", "maxRegress": 0}]}}
  })")),
               ahfic::Error);
}

TEST(ObsRegress, ReduceArtifactsFoldsBestOfK) {
  const obs::BenchGates gates = sampleGates();
  std::vector<u::JsonValue> runs;
  runs.push_back(envelope(samplePayload(4200.0, 2.8)));
  runs.push_back(envelope(samplePayload(4000.0, 3.1)));  // best luNs
  runs.push_back(envelope(samplePayload(4500.0, 3.3)));  // best speedup

  const obs::BaselineDoc doc = obs::reduceArtifacts(runs, gates);
  EXPECT_EQ(doc.bench, "micro");
  EXPECT_EQ(doc.repeats, 3);
  EXPECT_DOUBLE_EQ(doc.metrics.at("kernel[n=1024].luNs"), 4000.0);  // min
  EXPECT_DOUBLE_EQ(doc.metrics.at("kernel[n=1024].speedup"), 3.3);  // max

  // Round-trips through the ahfic-bench-baseline-v1 document.
  const obs::BaselineDoc back = obs::BaselineDoc::fromJson(doc.toJson());
  EXPECT_EQ(back.bench, doc.bench);
  EXPECT_EQ(back.repeats, doc.repeats);
  EXPECT_EQ(back.metrics, doc.metrics);

  // Mixed bench names and foreign documents are refused.
  std::vector<u::JsonValue> mixed = {envelope(samplePayload(1, 1)),
                                     obs::benchEnvelope(
                                         "other", samplePayload(1, 1), "")};
  EXPECT_THROW(obs::reduceArtifacts(mixed, gates), ahfic::Error);
  EXPECT_THROW(obs::reduceArtifacts({samplePayload(1, 1)}, gates),
               ahfic::Error)
      << "a bare payload is not an envelope";
  EXPECT_THROW(obs::reduceArtifacts({}, gates), ahfic::Error);
}

TEST(ObsRegress, SelfComparisonNeverFlags) {
  const obs::BenchGates gates = sampleGates();
  std::vector<u::JsonValue> runs;
  runs.push_back(envelope(samplePayload(4000.0, 3.0)));
  const obs::BaselineDoc doc = obs::reduceArtifacts(runs, gates);

  const obs::RegressReport report =
      obs::compareToBaseline(doc, doc, gates);
  EXPECT_FALSE(report.anyRegression());
  for (const obs::MetricComparison& m : report.metrics)
    EXPECT_DOUBLE_EQ(m.change, 0.0) << m.path;
}

TEST(ObsRegress, TwoTimesSlowdownFlagsEveryDirection) {
  const obs::BenchGates gates = sampleGates();
  const obs::BaselineDoc base = obs::reduceArtifacts(
      {envelope(samplePayload(4000.0, 3.0))}, gates);
  // 2x slower timing AND halved speedup: both gated directions trip.
  const obs::BaselineDoc bad = obs::reduceArtifacts(
      {envelope(samplePayload(8000.0, 1.5))}, gates);

  const obs::RegressReport report =
      obs::compareToBaseline(base, bad, gates);
  EXPECT_TRUE(report.anyRegression());
  ASSERT_EQ(report.metrics.size(), 3u);
  EXPECT_TRUE(report.metrics[0].regressed);                // luNs +100%
  EXPECT_DOUBLE_EQ(report.metrics[0].change, 1.0);
  EXPECT_TRUE(report.metrics[1].regressed);                // speedup -50%
  EXPECT_DOUBLE_EQ(report.metrics[1].change, 0.5);

  const u::JsonValue doc = report.toJson();
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-regress-v1");
  EXPECT_TRUE(doc.get("regressed").asBool());
  EXPECT_NE(report.summary().find("REGRESSED"), std::string::npos);
}

TEST(ObsRegress, ImprovementsAndWaivedMetricsPass) {
  const obs::BenchGates gates = sampleGates();
  const obs::BaselineDoc base = obs::reduceArtifacts(
      {envelope(samplePayload(4000.0, 3.0))}, gates);
  // Faster timing, higher speedup — negative "change", never a flag.
  const obs::BaselineDoc good = obs::reduceArtifacts(
      {envelope(samplePayload(2000.0, 6.0))}, gates);
  EXPECT_FALSE(
      obs::compareToBaseline(base, good, gates).anyRegression());

  // The waived kernel[n=16].luNs is reported but cannot fail the gate:
  // regress only the waived metric (n=16 is identical in samplePayload,
  // so fake it via a hand-built current doc).
  obs::BaselineDoc waivedBad = base;
  waivedBad.metrics["kernel[n=16].luNs"] = 1e9;
  const obs::RegressReport report =
      obs::compareToBaseline(base, waivedBad, gates);
  EXPECT_FALSE(report.anyRegression());
  ASSERT_EQ(report.metrics.size(), 3u);
  EXPECT_TRUE(report.metrics[2].waived);
  EXPECT_GT(report.metrics[2].change, 0.5);
  EXPECT_NE(report.summary().find("waived"), std::string::npos);
}

TEST(ObsRegress, MissingOrZeroBaselineReportsWithoutGating) {
  const obs::BenchGates gates = sampleGates();
  obs::BaselineDoc base;
  base.bench = "micro";
  base.metrics["kernel[n=1024].luNs"] = 0.0;  // degenerate baseline
  // speedup and n=16 luNs entirely absent from the baseline.
  obs::BaselineDoc cur;
  cur.bench = "micro";
  cur.metrics["kernel[n=1024].luNs"] = 5000.0;
  cur.metrics["kernel[n=1024].speedup"] = 3.0;

  const obs::RegressReport report =
      obs::compareToBaseline(base, cur, gates);
  EXPECT_FALSE(report.anyRegression());
  for (const obs::MetricComparison& m : report.metrics)
    EXPECT_DOUBLE_EQ(m.change, 0.0) << m.path;
}

}  // namespace
