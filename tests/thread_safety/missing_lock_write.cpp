// NEGATIVE CASE: writing a GUARDED_BY member without its mutex — the
// classic data race TSan only catches when the interleaving happens to
// fire. Must FAIL under clang -Wthread-safety -Werror ("writing
// variable 'depth_' requires holding mutex 'mu_' exclusively").

#include <deque>

#include "util/mutex.h"

namespace u = ahfic::util;

class Queue {
 public:
  void push(int v) {
    {
      u::MutexLock lock(&mu_);
      items_.push_back(v);
    }
    depth_ = items_.size();  // BAD: both accesses are outside the lock
  }

 private:
  u::Mutex mu_;
  std::deque<int> items_ AHFIC_GUARDED_BY(mu_);
  size_t depth_ AHFIC_GUARDED_BY(mu_) = 0;
};

int main() {
  Queue q;
  q.push(7);
  return 0;
}
