// NEGATIVE CASE: holding *a* mutex, just not the one that guards the
// member — the bug GUARDED_BY exists to catch (a lock_guard in the
// function body looks correct in review). Must FAIL under clang
// -Wthread-safety -Werror ("requires holding mutex 'dataMu_'").

#include <string>

#include "util/mutex.h"

namespace u = ahfic::util;

class TwoLocks {
 public:
  void setLabel(const std::string& label) {
    u::MutexLock lock(&labelMu_);
    label_ = label;
    data_ = 1;  // BAD: data_ is guarded by dataMu_, we hold labelMu_
  }

 private:
  u::Mutex labelMu_;
  u::Mutex dataMu_;
  std::string label_ AHFIC_GUARDED_BY(labelMu_);
  int data_ AHFIC_GUARDED_BY(dataMu_) = 0;
};

int main() {
  TwoLocks t;
  t.setLabel("x");
  return 0;
}
