// Positive control for the thread-safety compile harness: idiomatic use
// of every annotation the codebase relies on. MUST compile cleanly on
// every compiler, including clang with -Wthread-safety
// -Wthread-safety-beta -Werror — if this file fails, the harness is
// reporting toolchain breakage, not an annotation regression.

#include <deque>

#include "util/mutex.h"

namespace u = ahfic::util;

class BoundedQueue {
 public:
  void push(int v) {
    bool queued = false;
    {
      u::MutexLock lock(&mu_);
      if (items_.size() < 8) {
        items_.push_back(v);
        queued = true;
      }
    }
    if (queued) cv_.notifyOne();
  }

  int pop() {
    u::MutexLock lock(&mu_);
    while (!stopping_ && items_.empty()) cv_.wait(&mu_);
    if (stopping_ || items_.empty()) return -1;
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

  void stop() {
    {
      u::MutexLock lock(&mu_);
      stopping_ = true;
    }
    cv_.notifyAll();
  }

  size_t size() const {
    u::MutexLock lock(&mu_);
    return sizeLocked();
  }

 private:
  size_t sizeLocked() const AHFIC_REQUIRES(mu_) { return items_.size(); }

  mutable u::Mutex mu_;
  u::CondVar cv_;
  std::deque<int> items_ AHFIC_GUARDED_BY(mu_);
  bool stopping_ AHFIC_GUARDED_BY(mu_) = false;
};

// Declared lock order: first_ before second_ (checked under -beta).
class Ordered {
 public:
  void both() {
    u::MutexLock a(&first_);
    u::MutexLock b(&second_);
    ++x_;
    ++y_;
  }

 private:
  u::Mutex first_;
  u::Mutex second_ AHFIC_ACQUIRED_AFTER(first_);
  int x_ AHFIC_GUARDED_BY(first_) = 0;
  int y_ AHFIC_GUARDED_BY(second_) = 0;
};

int main() {
  BoundedQueue q;
  q.push(1);
  const int v = q.pop();
  q.stop();
  Ordered o;
  o.both();
  return v == 1 ? 0 : 1;
}
