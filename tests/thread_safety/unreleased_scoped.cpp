// NEGATIVE CASE: a capability acquired on one path and never released —
// every later caller deadlocks. Must FAIL under clang -Wthread-safety
// -Werror ("mutex 'mu_' is still held at the end of function").

#include "util/mutex.h"

namespace u = ahfic::util;

class Leaky {
 public:
  void update(int v) {
    mu_.lock();
    value_ = v;
    if (v < 0) return;  // BAD: early return with mu_ still held
    mu_.unlock();
  }

 private:
  u::Mutex mu_;
  int value_ AHFIC_GUARDED_BY(mu_) = 0;
};

int main() {
  Leaky l;
  l.update(1);
  return 0;
}
