// NEGATIVE CASE: acquiring mutexes against their declared
// ACQUIRED_AFTER order — a deadlock waiting for the right interleaving.
// Must FAIL under clang -Wthread-safety -Wthread-safety-beta -Werror
// (ordering is a -beta check: "mutex 'first_' must be acquired before
// 'second_'").

#include "util/mutex.h"

namespace u = ahfic::util;

class Ordered {
 public:
  void forward() {
    u::MutexLock a(&first_);
    u::MutexLock b(&second_);
  }

  void inverted() {
    u::MutexLock b(&second_);
    u::MutexLock a(&first_);  // BAD: first_ must come before second_
  }

 private:
  u::Mutex first_;
  u::Mutex second_ AHFIC_ACQUIRED_AFTER(first_);
};

int main() {
  Ordered o;
  o.forward();
  o.inverted();
  return 0;
}
