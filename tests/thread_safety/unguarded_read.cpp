// NEGATIVE CASE: reading a GUARDED_BY member without its mutex held.
// Must FAIL to compile under clang -Wthread-safety -Werror with a
// diagnostic naming mu_ ("reading variable 'value_' requires holding
// mutex 'mu_'"). On non-clang compilers the annotations are no-ops and
// this file must compile — the harness only asserts failure on clang.

#include "util/mutex.h"

namespace u = ahfic::util;

class Counter {
 public:
  void increment() {
    u::MutexLock lock(&mu_);
    ++value_;
  }

  int value() const {
    return value_;  // BAD: no lock held
  }

 private:
  mutable u::Mutex mu_;
  int value_ AHFIC_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.increment();
  return c.value();
}
