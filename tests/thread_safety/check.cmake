# Negative-compile harness for the AHFIC_* thread-safety annotations
# (ctest target: thread_safety_compile_test).
#
# Usage:
#   cmake -DCXX=<compiler> -DCOMPILER_ID=<CMAKE_CXX_COMPILER_ID>
#         -DINC=<repo src dir> -DCASE_DIR=<tests/thread_safety>
#         -P check.cmake
#
# Under clang: positive_control.cpp must compile cleanly with
# -Wthread-safety -Wthread-safety-beta -Werror, and every other case
# must FAIL with a diagnostic mentioning "thread-safety" — a failure for
# any other reason (syntax error, missing include) is a harness bug and
# is reported as such, never as a pass.
#
# Under any other compiler the annotation macros are no-ops, so every
# case must simply compile: that direction protects the gcc build from
# a macro that stops expanding to nothing.

foreach(var CXX COMPILER_ID INC CASE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check.cmake: -D${var}=... is required")
  endif()
endforeach()

set(is_clang FALSE)
if(COMPILER_ID MATCHES "Clang")
  set(is_clang TRUE)
endif()

set(flags -std=c++20 -fsyntax-only -I${INC})
if(is_clang)
  list(APPEND flags -Wthread-safety -Wthread-safety-beta -Werror)
endif()

file(GLOB cases "${CASE_DIR}/*.cpp")
list(SORT cases)
list(LENGTH cases case_count)
if(case_count LESS 6)
  message(FATAL_ERROR
          "check.cmake: expected >= 6 cases in ${CASE_DIR}, "
          "found ${case_count}")
endif()

set(failures "")
foreach(case IN LISTS cases)
  get_filename_component(name "${case}" NAME_WE)
  execute_process(
    COMMAND ${CXX} ${flags} ${case}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(log "${out}${err}")

  if(name STREQUAL "positive_control" OR NOT is_clang)
    # Must compile.
    if(rc EQUAL 0)
      message(STATUS "PASS ${name} (compiles)")
    else()
      list(APPEND failures "${name}: expected to compile, got:\n${log}")
    endif()
  else()
    # Must fail, and fail for the right reason.
    if(NOT rc EQUAL 0 AND log MATCHES "thread-safety")
      message(STATUS "PASS ${name} (rejected by -Wthread-safety)")
    elseif(rc EQUAL 0)
      list(APPEND failures
           "${name}: compiled, but the annotations must reject it")
    else()
      list(APPEND failures
           "${name}: failed for a reason other than thread safety "
           "(harness bug?):\n${log}")
    endif()
  endif()
endforeach()

if(failures)
  string(JOIN "\n" msg ${failures})
  message(FATAL_ERROR "thread_safety_compile_test failed:\n${msg}")
endif()
message(STATUS "thread_safety_compile_test: all ${case_count} cases ok "
               "(clang mode: ${is_clang})")
