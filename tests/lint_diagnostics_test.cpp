// LintReport container, renderers, and the ahfic-lint-v1 JSON schema.

#include "lint/diagnostics.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/json.h"

namespace lint = ahfic::lint;
namespace util = ahfic::util;

TEST(LintReport, CountsAndLookupBySeverityAndCode) {
  lint::LintReport r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.hasErrors());

  r.error("NET_VSRC_LOOP", "loop", lint::SourceLoc::forObject("V2"));
  r.warning("NET_ZERO_CAP", "zero cap");
  r.info("NET_NO_ANALYSIS", "no analysis");

  EXPECT_EQ(r.diagnostics().size(), 3u);
  EXPECT_EQ(r.count(lint::Severity::kError), 1u);
  EXPECT_EQ(r.count(lint::Severity::kWarning), 1u);
  EXPECT_EQ(r.count(lint::Severity::kInfo), 1u);
  EXPECT_TRUE(r.hasErrors());
  EXPECT_TRUE(r.hasCode("NET_ZERO_CAP"));
  EXPECT_FALSE(r.hasCode("NET_IND_LOOP"));
  ASSERT_NE(r.find("NET_VSRC_LOOP"), nullptr);
  EXPECT_EQ(r.find("NET_VSRC_LOOP")->loc.object, "V2");
}

TEST(LintReport, RenderTextIsCompilerStyle) {
  lint::LintReport r;
  lint::SourceLoc loc = lint::SourceLoc::forLine(7, "V2");
  loc.file = "deck.sp";
  r.error("NET_VSRC_LOOP", "sources in parallel", loc);
  const std::string text = r.renderText();
  EXPECT_NE(text.find("deck.sp:7:"), std::string::npos);
  EXPECT_NE(text.find("error NET_VSRC_LOOP"), std::string::npos);
  EXPECT_NE(text.find("sources in parallel"), std::string::npos);
}

TEST(LintReport, SummaryLineTruncates) {
  lint::LintReport r;
  for (int k = 0; k < 5; ++k)
    r.error("CODE" + std::to_string(k), "msg",
            lint::SourceLoc::forObject("obj" + std::to_string(k)));
  const std::string s = r.summaryLine(2);
  EXPECT_NE(s.find("5 lint error(s)"), std::string::npos);
  EXPECT_NE(s.find("CODE0"), std::string::npos);
  EXPECT_NE(s.find("CODE1"), std::string::npos);
  EXPECT_EQ(s.find("CODE2"), std::string::npos);
}

TEST(LintReport, MergeStampsFileOntoBareLocations) {
  lint::LintReport a;
  a.error("X", "bare location");
  lint::SourceLoc withFile;
  withFile.file = "other.sp";
  a.warning("Y", "already filed", withFile);

  lint::LintReport merged;
  merged.merge(a, "deck.sp");
  EXPECT_EQ(merged.diagnostics()[0].loc.file, "deck.sp");
  EXPECT_EQ(merged.diagnostics()[1].loc.file, "other.sp");
}

TEST(LintReport, JsonRoundTripPreservesEverything) {
  lint::LintReport r;
  lint::SourceLoc loc = lint::SourceLoc::forLine(12, "node d");
  loc.file = "bad.sp";
  r.error("NET_FLOATING_NODE", "no DC path", loc);
  r.warning("NET_ZERO_CAP", "zero cap",
            lint::SourceLoc::forObject("C1"));
  r.info("NET_NO_ANALYSIS", "nothing to run");

  const util::JsonValue doc = util::parseJson(r.toJsonString());
  EXPECT_EQ(doc.get("schema").asString(), "ahfic-lint-v1");
  const lint::LintReport back = lint::LintReport::fromJson(doc);
  ASSERT_EQ(back.diagnostics().size(), r.diagnostics().size());
  for (size_t k = 0; k < back.diagnostics().size(); ++k) {
    const auto& x = r.diagnostics()[k];
    const auto& y = back.diagnostics()[k];
    EXPECT_EQ(x.severity, y.severity);
    EXPECT_EQ(x.code, y.code);
    EXPECT_EQ(x.message, y.message);
    EXPECT_EQ(x.loc.file, y.loc.file);
    EXPECT_EQ(x.loc.line, y.loc.line);
    EXPECT_EQ(x.loc.object, y.loc.object);
  }
}

TEST(LintReport, JsonCountsSectionMatches) {
  lint::LintReport r;
  r.error("A", "a");
  r.error("B", "b");
  r.warning("C", "c");
  const util::JsonValue doc = r.toJson();
  EXPECT_EQ(doc.get("counts").get("error").asNumber(), 2);
  EXPECT_EQ(doc.get("counts").get("warning").asNumber(), 1);
  EXPECT_EQ(doc.get("counts").get("info").asNumber(), 0);
}

TEST(LintReport, FromJsonRejectsWrongSchema) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "something-else");
  doc.set("diagnostics", util::JsonValue::array());
  EXPECT_THROW(lint::LintReport::fromJson(doc), ahfic::Error);
}
