// Shape descriptor and name-codec tests.

#include <gtest/gtest.h>

#include "bjtgen/shape.h"
#include "util/error.h"

namespace bg = ahfic::bjtgen;

TEST(Shape, NameRoundTripCanonical) {
  for (const char* nm :
       {"N1.2-6S", "N1.2-6D", "N2.4-6D", "N1.2x2-6S", "N1.2-12D",
        "N1.2x2-6T", "N1.2-24D", "N1.2-48D", "N0.8x4-10T"}) {
    const auto s = bg::TransistorShape::fromName(nm);
    EXPECT_EQ(s.name(), nm);
  }
}

TEST(Shape, FromNameFields) {
  const auto s = bg::TransistorShape::fromName("N1.2x2-6T");
  EXPECT_DOUBLE_EQ(s.emitterWidth, 1.2e-6);
  EXPECT_DOUBLE_EQ(s.emitterLength, 6e-6);
  EXPECT_EQ(s.emitterStripes, 2);
  EXPECT_EQ(s.baseStripes, 3);
  EXPECT_TRUE(s.fullyInterdigitated());
}

TEST(Shape, SingleBaseIsNotInterdigitated) {
  EXPECT_FALSE(bg::TransistorShape::fromName("N1.2-6S").fullyInterdigitated());
  EXPECT_TRUE(bg::TransistorShape::fromName("N1.2-6D").fullyInterdigitated());
}

TEST(Shape, AreaAndPerimeter) {
  const auto s = bg::TransistorShape::fromName("N1.2-6S");
  EXPECT_NEAR(s.emitterArea(), 7.2e-12, 1e-18);
  EXPECT_NEAR(s.emitterPerimeter(), 14.4e-6, 1e-12);
  const auto d = bg::TransistorShape::fromName("N1.2x2-6S");
  EXPECT_NEAR(d.emitterArea(), 14.4e-12, 1e-18);
  EXPECT_NEAR(d.emitterPerimeter(), 28.8e-6, 1e-12);
}

class BadShapeNameTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BadShapeNameTest, Rejected) {
  EXPECT_THROW(bg::TransistorShape::fromName(GetParam()),
               ahfic::ParseError);
}

INSTANTIATE_TEST_SUITE_P(Garbage, BadShapeNameTest,
                         ::testing::Values("", "N", "X1.2-6S", "N1.2-6",
                                           "N1.2-6Q", "N-6S", "N1.2x-6S",
                                           "N1.26S", "N1.2-6Sx",
                                           "N1.2x99-6S"));

TEST(Shape, PaperShapeLists) {
  const auto f8 = bg::fig8Shapes();
  ASSERT_EQ(f8.size(), 6u);
  EXPECT_EQ(f8[0].name(), "N1.2-6S");
  EXPECT_EQ(f8[4].name(), "N1.2-12D");
  const auto f9 = bg::fig9Shapes();
  ASSERT_EQ(f9.size(), 4u);
  // Fig. 9 family: emitter length doubles along the list.
  for (size_t i = 1; i < f9.size(); ++i)
    EXPECT_NEAR(f9[i].emitterLength / f9[i - 1].emitterLength, 2.0, 1e-9);
}
