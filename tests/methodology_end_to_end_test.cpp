// The whole paper in one test: the three methodology pillars exercised
// end-to-end against each other.
//
//   Sec. 2 — derive a block spec from a system-level AHDL sweep, verify
//            it by time-domain simulation, and close the Fig. 1 loop by
//            swapping in a characterised transistor-level block.
//   Sec. 3 — pull the transistor-level block's circuit from the cell
//            database (checkout + subcircuit instantiation).
//   Sec. 4 — generate the transistor shape's model card from geometry and
//            confirm the shape choice on the ring oscillator.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/blocks.h"
#include "bjtgen/ft.h"
#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "celldb/database.h"
#include "celldb/seed.h"
#include "core/design.h"
#include "spice/analysis.h"
#include "spice/parser.h"
#include "spice/sources.h"
#include "tuner/irr.h"
#include "util/fft.h"

namespace ah = ahfic::ahdl;
namespace bg = ahfic::bjtgen;
namespace cd = ahfic::celldb;
namespace co = ahfic::core;
namespace sp = ahfic::spice;
namespace tn = ahfic::tuner;
namespace u = ahfic::util;

TEST(MethodologyEndToEnd, PaperFlow) {
  // ------------------------------------------------------------------
  // Sec. 2, step 1: the system designer asks for 30 dB image rejection.
  // Sweep the impairment plane (Fig. 5) to derive the block specs.
  // ------------------------------------------------------------------
  co::SpecSheet specs;
  const double gainBudget = 0.02;  // trimming holds gain balance to 2%
  double phaseBudget = 0.0;
  for (double phi = 0.0; phi <= 10.0; phi += 0.05)
    if (tn::analyticImageRejectionDb(phi, gainBudget) >= 30.0)
      phaseBudget = phi;
  ASSERT_GT(phaseBudget, 1.0);  // the spec is achievable
  specs.addMax("90deg shifters", "phase error", "deg", phaseBudget);
  specs.addMax("IF paths", "gain balance", "%", gainBudget * 100.0);

  // Verify the derived corner by time-domain (AHDL) simulation.
  tn::ImageRejectImpairments corner;
  corner.loPhaseErrorDeg = phaseBudget;
  corner.gainImbalance = gainBudget;
  const double irrAtCorner = tn::simulateImageRejectionDb(corner);
  EXPECT_GT(irrAtCorner, 29.0);
  EXPECT_LT(irrAtCorner, 33.0);  // the corner is tight, not slack

  // ------------------------------------------------------------------
  // Sec. 3: the 2nd-IF amplifier is not designed from scratch — it is
  // checked out of the cell database and simulated in-situ.
  // ------------------------------------------------------------------
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  const auto hits = db.search("gain controlled");
  ASSERT_FALSE(hits.empty());
  const cd::Cell acc = db.checkout("TV", "ACC1");
  EXPECT_EQ(db.find("TV", "ACC1")->reuseCount, 1);

  // Splice the cell into a bias harness and confirm it lives.
  sp::Circuit cellTest;
  cellTest.add<sp::VSource>("VB1", cellTest.node("p"), 0, 2.0);
  cellTest.add<sp::VSource>("VB2", cellTest.node("n"), 0, 2.0);
  cd::instantiateCell(cellTest, acc, "Xacc", {"p", "n", "o1", "o2"});
  sp::Analyzer cellAn(cellTest);
  const auto cellOp = cellAn.op();
  sp::Solution cellSol(&cellOp);
  EXPECT_GT(cellSol.at(cellTest.findNode("o1")), 5.0);

  // ------------------------------------------------------------------
  // Sec. 4: the amplifier's transistors need a shape. The operating
  // current is fixed; pick the shape whose fT peaks nearest it, using
  // geometry-generated cards — then confirm on the ring oscillator.
  // ------------------------------------------------------------------
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const double icOperating = 3e-3;

  // Shortlist by fT at the operating current: the large-emitter shapes
  // clearly beat the 6 um singles...
  std::vector<std::pair<std::string, double>> fts;
  for (const auto& shape : bg::fig8Shapes()) {
    bg::FtExtractor fx(gen.generate(shape));
    fts.emplace_back(shape.name(), fx.measureAt(icOperating).ft);
  }
  std::sort(fts.begin(), fts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  // Best shape at 3 mA is ~60% faster than the worst (the 6 um singles
  // are past their knee).
  EXPECT_GT(fts.front().second, 1.5 * fts.back().second);

  // ...but fT alone cannot decide between the area-factor-2 shapes — the
  // paper's point is that the full circuit simulation does. The ring
  // oscillator picks N1.2-12D.
  bg::RingOscillatorSpec ringSpec;
  ringSpec.followerModel = gen.generate("N1.2-6D");
  std::string bestShape;
  double bestF = 0.0;
  for (const auto& shape : bg::fig8Shapes()) {
    ringSpec.diffPairModel = gen.generate(shape);
    const auto m = bg::measureRingFrequency(ringSpec, 8.0, 3.0);
    ASSERT_TRUE(m.oscillating) << shape.name();
    if (m.frequency > bestF) {
      bestF = m.frequency;
      bestShape = shape.name();
    }
  }
  EXPECT_EQ(bestShape, "N1.2-12D");  // the paper's Table 1 answer
  EXPECT_GT(bestF, 1.5e9);

  // ------------------------------------------------------------------
  // Sec. 2, step 3 (Fig. 1 loop): implement the IF amplifier at the
  // transistor level with the generated card, characterise it, swap it
  // into the behavioural chain, and check the system still meets spec.
  // ------------------------------------------------------------------
  co::DesignChain chain("if2");
  chain.addBlock("amp", [](ah::System& sys, const std::string& in,
                           const std::string& out) {
    sys.add<ah::Amplifier>({in}, {out}, "ideal", -4.0);
  });
  const auto winner = bg::TransistorShape::fromName(bestShape);
  co::CharacterizationSetup setup;
  setup.netlist = gen.generateSpiceLine(winner) +
                  "\n"
                  "VCC vcc 0 8\n"
                  "VIN in 0 DC 1.8 AC 1\n"
                  "RC vcc out 820\n"
                  "Q1 out in e " +
                  bg::ModelGenerator::modelName(winner) +
                  "\n"
                  "RE2 e 0 180\n";
  setup.inputSource = "VIN";
  setup.outputNode = "out";
  setup.f0 = 45e6;
  chain.setTransistorView("amp", setup);
  const auto& model = chain.characterized("amp");
  EXPECT_GT(model.gainAtF0, 3.0);
  EXPECT_GT(model.bandwidth3Db, 200e6);  // comfortably covers 45 MHz

  // System-level check with the REAL block in place.
  ah::System sys;
  sys.add<ah::SineSource>({}, {"ifin"}, "src", 45e6, 0.05);
  chain.build(sys, "ifin", "ifout", {"amp"});
  sys.probe("ifout");
  const double fs = 2e9;
  const auto res = sys.run(2e-6, fs, 0.5e-6);
  const double systemGain =
      u::toneAmplitude(res.trace("ifout"), fs, 45e6) / 0.05;
  EXPECT_NEAR(systemGain, model.gainAtF0, model.gainAtF0 * 0.1);

  // Final compliance report: every derived spec is met.
  EXPECT_TRUE(specs.check("90deg shifters", "phase error",
                          phaseBudget * 0.8));
  EXPECT_TRUE(specs.check("IF paths", "gain balance", 1.5));
  const std::string report = specs.complianceReport({
      {"90deg shifters", "phase error", phaseBudget * 0.8},
      {"IF paths", "gain balance", 1.5},
  });
  EXPECT_NE(report.find("PASS"), std::string::npos);
  EXPECT_EQ(report.find("FAIL"), std::string::npos);
}
