// AHDL netlist language: modules, builtins, elaboration, run statements.

#include <gtest/gtest.h>

#include <cmath>

#include "ahdl/lang.h"
#include "util/error.h"
#include "util/fft.h"

namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

TEST(AhdlLang, PaperStyleAmpModule) {
  // The module from the paper's Fig. 1.
  auto nl = ah::parseAhdl(R"(
    module amp (in, out) {
      parameter real gain = 1;
      analog { V(out) <- gain * V(in); }
    }
    signal a, b;
    instance src = dc(value=0.5) (a);
    instance a1 = amp(gain=4) (a, b);
    probe b;
    run tstop=1u, fs=10MEG;
  )");
  const auto res = nl.run();
  EXPECT_DOUBLE_EQ(res.trace("b").back(), 2.0);
}

TEST(AhdlLang, ModuleParameterDefaultsApply) {
  auto nl = ah::parseAhdl(R"(
    module amp (in, out) {
      parameter real gain = 7;
      analog { V(out) <- gain * V(in); }
    }
    signal a, b;
    instance src = dc(value=1) (a);
    instance a1 = amp() (a, b);
    probe b;
    run tstop=1u, fs=10MEG;
  )");
  EXPECT_DOUBLE_EQ(nl.run().trace("b").back(), 7.0);
}

TEST(AhdlLang, NonlinearModuleExpression) {
  auto nl = ah::parseAhdl(R"(
    module softclip (in, out) {
      parameter real vsat = 1;
      analog { V(out) <- vsat * tanh(V(in) / vsat); }
    }
    signal x, y;
    instance src = dc(value=10) (x);
    instance c1 = softclip(vsat=2) (x, y);
    probe y;
    run tstop=1u, fs=10MEG;
  )");
  EXPECT_NEAR(nl.run().trace("y").back(), 2.0, 1e-3);
}

TEST(AhdlLang, MultipleAssignmentsPerModule) {
  auto nl = ah::parseAhdl(R"(
    module splitter (in, outp, outn) {
      analog {
        V(outp) <- V(in);
        V(outn) <- -V(in);
      }
    }
    signal a, p, n;
    instance src = dc(value=3) (a);
    instance s1 = splitter() (a, p, n);
    probe p, n;
    run tstop=1u, fs=10MEG;
  )");
  const auto res = nl.run();
  EXPECT_DOUBLE_EQ(res.trace("p").back(), 3.0);
  EXPECT_DOUBLE_EQ(res.trace("n").back(), -3.0);
}

TEST(AhdlLang, GlobalParametersVisibleInInstanceArgs) {
  auto nl = ah::parseAhdl(R"(
    parameter real vin = 2.5;
    signal a;
    instance src = dc(value=vin*2) (a);
    probe a;
    run tstop=1u, fs=10MEG;
  )");
  EXPECT_DOUBLE_EQ(nl.run().trace("a").back(), 5.0);
}

TEST(AhdlLang, BuiltinChainSineMixerFilter) {
  auto nl = ah::parseAhdl(R"(
    signal rf, lo, mixed, ifout;
    instance s1 = sine(freq=100MEG, amp=1) (rf);
    instance s2 = sine(freq=145MEG, amp=1) (lo);
    instance m1 = mixer(gain=2) (rf, lo, mixed);
    instance f1 = lowpass(order=3, fc=80MEG) (mixed, ifout);
    probe ifout;
    run tstop=2u, fs=2G, record_from=0.5u;
  )");
  const auto res = nl.run();
  const double amp = u::toneAmplitude(res.trace("ifout"), 2e9, 45e6);
  EXPECT_NEAR(amp, 1.0, 0.05);
  EXPECT_LT(u::toneAmplitude(res.trace("ifout"), 2e9, 245e6), 0.05);
}

TEST(AhdlLang, QuadloAndSubtract) {
  auto nl = ah::parseAhdl(R"(
    signal i, q, d;
    instance lo = quadlo(freq=10MEG, amp=2) (i, q);
    instance s = subtract() (i, q, d);
    probe i, q, d;
    run tstop=1u, fs=1G;
  )");
  const auto res = nl.run();
  // d = 2cos - 2sin has amplitude 2*sqrt(2).
  const double amp = u::toneAmplitude(res.trace("d"), 1e9, 10e6);
  EXPECT_NEAR(amp, 2.0 * std::sqrt(2.0), 0.05);
}

TEST(AhdlLang, VcoAndIntegratorBuiltins) {
  auto nl = ah::parseAhdl(R"(
    signal ctl, s, c, ramp;
    instance vc = dc(value=1) (ctl);
    instance osc = vco(freq=10MEG, kvco=2MEG) (ctl, s, c);
    instance i1 = integrator(gain=2) (ctl, ramp);
    probe s, ramp;
    run tstop=2u, fs=500MEG;
  )");
  const auto res = nl.run();
  // VCO runs at 12 MHz: count positive-going zero crossings.
  int crossings = 0;
  const auto& s = res.trace("s");
  for (size_t k = 1; k < s.size(); ++k)
    if (s[k - 1] < 0.0 && s[k] >= 0.0) ++crossings;
  EXPECT_NEAR(crossings, 24, 1);
  // Integrator ramps to gain * v * t = 2 * 1 * 2u.
  EXPECT_NEAR(res.trace("ramp").back(), 4e-6, 2e-8);
}

TEST(AhdlLang, DigitalBuiltins) {
  auto nl = ah::parseAhdl(R"(
    signal s, sq, dv, held;
    instance o = sine(freq=8MEG, amp=1) (s);
    instance c = comparator(low=0, high=1) (s, sq);
    instance d = divider(n=4) (s, dv);
    instance h = samplehold() (s, sq, held);
    probe sq, dv, held;
    run tstop=4u, fs=256MEG;
  )");
  const auto res = nl.run();
  for (double v : res.trace("sq")) EXPECT_TRUE(v == 0.0 || v == 1.0);
  for (double v : res.trace("dv")) EXPECT_TRUE(v == -1.0 || v == 1.0);
  // The divider output is 4x slower: count toggles.
  int t1 = 0, t2 = 0;
  const auto& sq = res.trace("sq");
  const auto& dv = res.trace("dv");
  for (size_t k = 1; k < sq.size(); ++k) {
    if (sq[k] != sq[k - 1]) ++t1;
    if (dv[k] != dv[k - 1]) ++t2;
  }
  EXPECT_NEAR(t1, 4 * t2, 4);
}

TEST(AhdlLang, CommentsAndWhitespace) {
  auto nl = ah::parseAhdl(
      "// comment line\n"
      "# another comment\n"
      "signal a;  // trailing\n"
      "instance s = dc(value=1) (a);\n"
      "probe a;\n"
      "run tstop=1u, fs=1MEG;\n");
  EXPECT_DOUBLE_EQ(nl.run().trace("a").back(), 1.0);
}

TEST(AhdlLang, RunSpecOptional) {
  auto nl = ah::parseAhdl("signal a; instance s = dc(value=1) (a);");
  EXPECT_FALSE(nl.runSpec.has_value());
  EXPECT_THROW(nl.run(), ahfic::Error);
  // But the system can still be run manually.
  nl.system.probe("a");
  EXPECT_NO_THROW(nl.system.run(1e-6, 1e6));
}

class AhdlLangErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AhdlLangErrorTest, Rejected) {
  EXPECT_THROW(ah::parseAhdl(GetParam()), ahfic::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, AhdlLangErrorTest,
    ::testing::Values(
        "bogus statement;",
        "signal a; instance x = nosuchtype() (a);",
        "signal a; instance s = sine(amp=1) (a);",       // missing freq
        "signal a; instance s = dc(value=1) (a, a);",    // too many conns
        "module m (p) { analog { V(q) <- 1; } } signal a; "
        "instance i = m() (a);",                          // unknown port
        "module m (p) { parameter int x = 1; }",          // not real
        "module m (p) { analog { V(p) <- V(zz); } } signal a; "
        "instance i = m() (a);",                          // V of non-port
        "signal a; instance s = dc(value=1) (a); run tstop=1u;",  // no fs
        "module m (in, out) { analog { V(out) <- V(in); } } "
        "module m (in, out) { analog { V(out) <- V(in); } }"));  // dup

TEST(AhdlLang, ErrorCarriesLineNumber) {
  try {
    ah::parseAhdl("signal a;\nsignal b;\nbogus;\n");
    FAIL() << "expected ParseError";
  } catch (const ahfic::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(AhdlLang, InstanceArgMustMatchModuleParameter) {
  EXPECT_THROW(ah::parseAhdl(R"(
    module amp (in, out) {
      parameter real gain = 1;
      analog { V(out) <- gain * V(in); }
    }
    signal a, b;
    instance a1 = amp(nosuch=4) (a, b);
  )"),
               ahfic::ParseError);
}

TEST(AhdlLang, TimeVariableInModuleBody) {
  auto nl = ah::parseAhdl(R"(
    module ramp (out) {
      parameter real slope = 2;
      analog { V(out) <- slope * t; }
    }
    signal r;
    instance r1 = ramp(slope=3) (r);
    probe r;
    run tstop=1, fs=1k;
  )");
  const auto res = nl.run();
  EXPECT_NEAR(res.trace("r").back(), 3.0 * res.time.back(), 1e-9);
}
