// Geometry engine: layout physics the single AREA factor cannot capture.

#include <gtest/gtest.h>

#include "bjtgen/geometry.h"
#include "util/error.h"

namespace bg = ahfic::bjtgen;

namespace {
bg::GeometrySummary geom(const char* name) {
  return bg::computeGeometry(bg::TransistorShape::fromName(name),
                             bg::defaultTechnology());
}
bg::ElectricalGeometry elec(const char* name) {
  return bg::computeElectrical(bg::TransistorShape::fromName(name),
                               bg::defaultTechnology());
}
}  // namespace

TEST(Geometry, DoubleBaseQuartersIntrinsicRb) {
  // Both-side contact: rho*W/(12L) vs rho*W/(3L) -> factor 4.
  const auto s = geom("N1.2-6S");
  const auto d = geom("N1.2-6D");
  EXPECT_NEAR(s.rbIntrinsic / d.rbIntrinsic, 4.0, 1e-9);
}

TEST(Geometry, LongerEmitterScalesRbInversely) {
  const auto a = geom("N1.2-6D");
  const auto b = geom("N1.2-12D");
  EXPECT_NEAR(a.rbIntrinsic / b.rbIntrinsic, 2.0, 1e-9);
}

TEST(Geometry, WiderEmitterRaisesRb) {
  EXPECT_GT(geom("N2.4-6D").rbIntrinsic, geom("N1.2-6D").rbIntrinsic);
}

TEST(Geometry, StripesReduceRb) {
  // Interdigitated 2-stripe device: intrinsic halves vs single stripe.
  const auto one = geom("N1.2-6D");
  const auto two = geom("N1.2x2-6T");
  EXPECT_NEAR(one.rbIntrinsic / two.rbIntrinsic, 2.0, 1e-9);
}

TEST(Geometry, ContactedSides) {
  EXPECT_NEAR(geom("N1.2-6S").contactedSidesPerStripe, 1.0, 1e-12);
  EXPECT_NEAR(geom("N1.2-6D").contactedSidesPerStripe, 2.0, 1e-12);
  EXPECT_NEAR(geom("N1.2x2-6S").contactedSidesPerStripe, 1.0, 1e-12);
  EXPECT_NEAR(geom("N1.2x2-6D").contactedSidesPerStripe, 1.5, 1e-12);
  EXPECT_NEAR(geom("N1.2x2-6T").contactedSidesPerStripe, 2.0, 1e-12);
}

TEST(Geometry, BaseAreaGrowsWithBaseStripes) {
  // The paper's interdigitation trade-off: extra base stripes buy RB at
  // the cost of B-C junction area (CJC).
  EXPECT_GT(geom("N1.2-6D").baseArea, geom("N1.2-6S").baseArea);
  EXPECT_GT(geom("N1.2x2-6T").baseArea, geom("N1.2x2-6S").baseArea);
}

TEST(Geometry, CollectorContainsBase) {
  for (const char* n : {"N1.2-6S", "N1.2-12D", "N1.2x2-6T"}) {
    const auto g = geom(n);
    EXPECT_GT(g.collectorArea, g.baseArea) << n;
    EXPECT_GT(g.baseArea, g.emitterArea) << n;
  }
}

TEST(Geometry, EmitterResistanceInverseInArea) {
  const auto a = geom("N1.2-6S");
  const auto b = geom("N1.2-12D");
  EXPECT_NEAR(a.re / b.re, 2.0, 1e-9);
}

TEST(Geometry, RbmBelowRb) {
  for (const char* n : {"N1.2-6S", "N1.2-6D", "N1.2-48D"}) {
    const auto g = geom(n);
    EXPECT_LT(g.rbMin(), g.rbTotal()) << n;
    EXPECT_GT(g.rbMin(), 0.0) << n;
  }
}

TEST(Geometry, RejectsImpossibleLayouts) {
  bg::TransistorShape s = bg::TransistorShape::fromName("N1.2-6S");
  s.baseStripes = 3;  // one emitter stripe cannot have three base stripes
  EXPECT_THROW(bg::computeGeometry(s, bg::defaultTechnology()),
               ahfic::Error);
  s.baseStripes = 0;
  EXPECT_THROW(bg::computeGeometry(s, bg::defaultTechnology()),
               ahfic::Error);
}

TEST(ElectricalGeometry, IsHasPerimeterComponent) {
  // A long-thin and a short-fat emitter with equal areas must differ in IS
  // because of the perimeter term; a pure area factor would equate them.
  bg::TransistorShape thin;   // 0.6 x 12 um
  thin.emitterWidth = 0.6e-6;
  thin.emitterLength = 12e-6;
  bg::TransistorShape fat;    // 1.2 x 6 um
  fat.emitterWidth = 1.2e-6;
  fat.emitterLength = 6e-6;
  ASSERT_NEAR(thin.emitterArea(), fat.emitterArea(), 1e-18);
  const auto tech = bg::defaultTechnology();
  const auto eThin = bg::computeElectrical(thin, tech);
  const auto eFat = bg::computeElectrical(fat, tech);
  EXPECT_GT(eThin.is, eFat.is);    // more perimeter injection
  EXPECT_GT(eThin.cje, eFat.cje);  // more sidewall capacitance
}

TEST(ElectricalGeometry, XcjcIsAFraction) {
  for (const char* n : {"N1.2-6S", "N1.2-6D", "N1.2x2-6T", "N1.2-48D"}) {
    const auto e = elec(n);
    EXPECT_GT(e.xcjc, 0.0) << n;
    EXPECT_LE(e.xcjc, 1.0) << n;
  }
}

TEST(ElectricalGeometry, KneeTracksEmitterArea) {
  const auto a = elec("N1.2-6D");
  const auto b = elec("N1.2-24D");
  EXPECT_NEAR(b.ikf / a.ikf, 4.0, 1e-9);
  EXPECT_NEAR(b.itf / a.itf, 4.0, 1e-9);
  EXPECT_NEAR(b.irb / a.irb, 4.0, 1e-9);
}

TEST(ElectricalGeometry, CjcGrowsFasterThanAreaFactorPredicts) {
  // Doubling emitter stripes with interdigitation doubles the area factor,
  // but CJC grows by more than the emitter-area ratio predicts for the
  // extra base stripe — the core of the paper's Sec. 4 argument.
  const auto one = elec("N1.2-6D");
  const auto two = elec("N1.2x2-6T");
  EXPECT_GT(two.cjc / one.cjc, 1.0);
  // And RB does NOT simply halve as the area factor would claim.
  EXPECT_NE(two.rb, one.rb / 2.0);
}
