// Noise analysis tests against closed-form results.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace sp = ahfic::spice;

namespace {
constexpr double kBoltzmann = 1.380649e-23;
constexpr double kQ = 1.602176634e-19;
constexpr double kT300 = kBoltzmann * 300.15;  // 27 C
}  // namespace

TEST(Noise, SingleResistorGives4kTR) {
  // A resistor to ground: output voltage PSD = 4kTR, flat.
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::Resistor>("R1", a, 0, 10e3);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  const auto res = an.noise({1e3, 1e6, 1e9}, "a", op);
  const double expected = 4.0 * kT300 * 10e3;
  for (double psd : res.outputPsd)
    EXPECT_NEAR(psd, expected, expected * 1e-6);
}

TEST(Noise, ParallelResistorsCombine) {
  // Two resistors in parallel: 4kT * (R1 || R2).
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::Resistor>("R1", a, 0, 3e3);
  ckt.add<sp::Resistor>("R2", a, 0, 6e3);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  const auto res = an.noise({1e6}, "a", op);
  EXPECT_NEAR(res.outputPsd[0], 4.0 * kT300 * 2e3, 4.0 * kT300 * 2e3 * 1e-6);
}

TEST(Noise, RcIntegratedNoiseIsKTOverC) {
  // The classic: total noise of an RC filter = kT/C, independent of R.
  for (double r : {1e3, 100e3}) {
    sp::Circuit ckt;
    const int in = ckt.node("in"), out = ckt.node("out");
    ckt.add<sp::VSource>("V1", in, 0, 0.0);  // noiseless source
    ckt.add<sp::Resistor>("R1", in, out, r);
    const double c = 10e-12;
    ckt.add<sp::Capacitor>("C1", out, 0, c);
    sp::Analyzer an(ckt);
    const auto op = an.op();
    // Integrate far past the pole.
    const double fPole = 1.0 / (2.0 * 3.14159265 * r * c);
    const auto res =
        an.noise(sp::logspace(fPole / 1e3, fPole * 1e4, 24), "out", op);
    const double expected = kT300 / c;
    EXPECT_NEAR(res.totalVariance(), expected, expected * 0.02) << r;
  }
}

TEST(Noise, VoltageDividerAttenuatesSourceNoise) {
  // Output PSD of a loaded divider equals 4kT * (R1 || R2) seen at the
  // tap — same as the parallel combination.
  sp::Circuit ckt;
  const int top = ckt.node("top"), mid = ckt.node("mid");
  ckt.add<sp::VSource>("V1", top, 0, 5.0);  // ideal source: no noise
  ckt.add<sp::Resistor>("R1", top, mid, 1e3);
  ckt.add<sp::Resistor>("R2", mid, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  const auto res = an.noise({1e6}, "mid", op);
  EXPECT_NEAR(res.outputPsd[0], 4.0 * kT300 * 500.0,
              4.0 * kT300 * 500.0 * 1e-6);
}

TEST(Noise, BjtCollectorShotDominatesCeStage) {
  // Common-emitter stage: output noise contains 4kT*RC plus gm^2*RC^2 *
  // 2q*Ic (collector shot amplified) — the shot term dominates.
  sp::Circuit ckt;
  const int vcc = ckt.node("vcc"), b = ckt.node("b"), c = ckt.node("c");
  sp::BjtModel m;
  m.is = 1e-16;
  m.bf = 100.0;
  ckt.add<sp::VSource>("VCC", vcc, 0, 5.0);
  ckt.add<sp::VSource>("VB", b, 0, 0.75);
  ckt.add<sp::Resistor>("RC", vcc, c, 1e3);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, m);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  sp::Solution s(&op);
  const auto info = q.opInfo(s);
  const auto res = an.noise({1e5}, "c", op);

  const double rcThermal = 4.0 * kT300 * 1e-3 * 1e6;  // 4kT/RC * RC^2
  const double shot = 2.0 * kQ * info.ic * 1e6;       // * RC^2
  EXPECT_NEAR(res.outputPsd[0], rcThermal + shot,
              (rcThermal + shot) * 0.05);
  EXPECT_GT(shot, rcThermal);  // the amplified shot noise dominates? no:
  // 2qIc*RC^2 vs 4kT*RC: ratio = Ic*RC/(2*25.9mV) = Vrc/52mV >> 1 here.
  // Contribution ranking reflects that.
  ASSERT_FALSE(res.contributions.empty());
  EXPECT_EQ(res.contributions[0].label, "Q1 collector shot");
}

TEST(Noise, ColdResistorIsQuieter) {
  auto psdAt = [](double tempC) {
    sp::Circuit ckt;
    ckt.setTemperatureC(tempC);
    const int a = ckt.node("a");
    ckt.add<sp::Resistor>("R1", a, 0, 1e3);
    sp::Analyzer an(ckt);
    const auto op = an.op();
    return an.noise({1e6}, "a", op).outputPsd[0];
  };
  EXPECT_NEAR(psdAt(-73.0) / psdAt(27.0), 200.15 / 300.15, 1e-6);
}

TEST(Noise, Validation) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  ckt.add<sp::Resistor>("R1", a, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  EXPECT_THROW(an.noise({1e6}, "nope", op), ahfic::Error);
  EXPECT_THROW(an.noise({}, "a", op), ahfic::Error);
}
