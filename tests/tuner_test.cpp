// Tuner system models: frequency plan, Fig. 2/4 chains, IRR (Fig. 5).

#include <gtest/gtest.h>

#include <cmath>

#include "tuner/doublesuper.h"
#include "tuner/irr.h"
#include "util/error.h"
#include "util/fft.h"

namespace tn = ahfic::tuner;
namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

TEST(FrequencyPlan, PaperNumbers) {
  tn::FrequencyPlan plan;
  plan.validate();
  EXPECT_DOUBLE_EQ(plan.if1, 1.3e9);
  EXPECT_DOUBLE_EQ(plan.if2, 45e6);
  EXPECT_DOUBLE_EQ(plan.downLo(), 1.255e9);
  EXPECT_DOUBLE_EQ(plan.if1Image(), 1.21e9);
  EXPECT_DOUBLE_EQ(plan.upLo(500e6), 1.8e9);
  // The RF image channel sits 2 x 45 MHz = 90 MHz from the tuned channel.
  EXPECT_DOUBLE_EQ(plan.rfImage(500e6) - 500e6, 90e6);
}

TEST(FrequencyPlan, ValidationRejectsBadPlans) {
  tn::FrequencyPlan p;
  p.if1 = 500e6;  // inside the RF band
  EXPECT_THROW(p.validate(), ahfic::Error);
  p = tn::FrequencyPlan{};
  p.if2 = 800e6;  // not well below if1
  EXPECT_THROW(p.validate(), ahfic::Error);
  p = tn::FrequencyPlan{};
  p.rfMax = 10e6;  // below rfMin
  EXPECT_THROW(p.validate(), ahfic::Error);
}

namespace {

/// Runs a chain and returns the spectrum amplitude of `signal` at `freq`.
double toneOf(ah::System& sys, const std::string& signal, double fs,
              double freq) {
  sys.probe(signal);
  const auto res = sys.run(1.6e-6, fs, 0.6e-6);
  return u::toneAmplitude(res.trace(signal), fs, freq);
}

}  // namespace

TEST(ConventionalTuner, WantedChannelReaches2ndIf) {
  tn::FrequencyPlan plan;
  tn::TunerStimulus stim;
  stim.rfTuned = 500e6;
  ah::System sys;
  const auto sigs = tn::buildConventionalTuner(sys, plan, stim);
  const double fs = tn::recommendedSampleRate(plan, stim);
  const double amp = toneOf(sys, sigs.secondIf, fs, plan.if2);
  EXPECT_GT(amp, 0.5);  // conversion chain delivers the tone
}

TEST(ConventionalTuner, ImageChannelAliasesOnto2ndIf) {
  // Fig. 3's problem: with only the (wide) 1st IF band-pass, the image
  // channel lands on the same 45 MHz output.
  tn::FrequencyPlan plan;
  tn::TunerStimulus stim;
  stim.rfTuned = 500e6;
  stim.tunedAmplitude = 1e-30;  // image only
  stim.imageAmplitude = 1.0;
  ah::System sys;
  const auto sigs = tn::buildConventionalTuner(sys, plan, stim);
  const double fs = tn::recommendedSampleRate(plan, stim);
  const double amp = toneOf(sys, sigs.secondIf, fs, plan.if2);
  EXPECT_GT(amp, 0.3);  // the image is NOT rejected
}

TEST(ImageRejectTuner, ImageSuppressedWantedKept) {
  tn::FrequencyPlan plan;
  tn::ImageRejectImpairments perfect;  // no impairments

  auto ampFor = [&](bool imageOnly) {
    tn::TunerStimulus stim;
    stim.rfTuned = 500e6;
    stim.tunedAmplitude = imageOnly ? 1e-30 : 1.0;
    stim.imageAmplitude = imageOnly ? 1.0 : 1e-30;
    ah::System sys;
    const auto sigs = tn::buildImageRejectTuner(sys, plan, stim, perfect);
    const double fs = tn::recommendedSampleRate(plan, stim);
    return toneOf(sys, sigs.secondIf, fs, plan.if2);
  };
  const double wanted = ampFor(false);
  const double image = ampFor(true);
  EXPECT_GT(wanted, 0.5);
  EXPECT_GT(wanted / image, 100.0);  // > 40 dB with ideal hardware
}

TEST(Irr, AnalyticReferencePoints) {
  // phi = 0: IRR = ((2+g)/g)^2 as a power ratio.
  EXPECT_NEAR(tn::analyticImageRejectionDb(0.0, 0.01),
              10.0 * std::log10(std::pow(2.01 / 0.01, 2)), 1e-9);
  EXPECT_NEAR(tn::analyticImageRejectionDb(0.0, 0.09),
              10.0 * std::log10(std::pow(2.09 / 0.09, 2)), 1e-9);
  // Perfect hardware: unbounded rejection (capped).
  EXPECT_GE(tn::analyticImageRejectionDb(0.0, 0.0), 150.0);
}

TEST(Irr, AnalyticMonotonicity) {
  // IRR falls with phase error at fixed gain error...
  double prev = 1e9;
  for (double phi : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double v = tn::analyticImageRejectionDb(phi, 0.01);
    EXPECT_LT(v, prev);
    prev = v;
  }
  // ...and falls with gain error at fixed phase error.
  prev = 1e9;
  for (double g : {0.01, 0.03, 0.05, 0.07, 0.09}) {
    const double v = tn::analyticImageRejectionDb(1.0, g);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

class IrrGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(IrrGridTest, SimulationMatchesAnalytic) {
  const auto [phi, g] = GetParam();
  tn::ImageRejectImpairments imp;
  imp.loPhaseErrorDeg = phi;
  imp.gainImbalance = g;
  const double sim = tn::simulateImageRejectionDb(imp);
  const double an = tn::analyticImageRejectionDb(phi, g);
  EXPECT_NEAR(sim, an, 1.0) << "phi=" << phi << " g=" << g;
}

INSTANTIATE_TEST_SUITE_P(
    Fig5Grid, IrrGridTest,
    ::testing::Combine(::testing::Values(0.0, 2.0, 6.0, 10.0),
                       ::testing::Values(0.01, 0.05, 0.09)));

TEST(Irr, ShifterErrorEquivalentToLoError) {
  // A 90-degree-shifter error and an LO quadrature error of the same size
  // degrade the IRR comparably (the paper lumps them as "phase balance").
  tn::ImageRejectImpairments loErr;
  loErr.loPhaseErrorDeg = 4.0;
  tn::ImageRejectImpairments ifErr;
  ifErr.ifPhaseErrorDeg = 4.0;
  const double a = tn::simulateImageRejectionDb(loErr);
  const double b = tn::simulateImageRejectionDb(ifErr);
  EXPECT_NEAR(a, b, 1.5);
}

TEST(Irr, SpecDerivationFor30Db) {
  // The paper's usage: a system designer requests 30 dB image rejection;
  // the circuit designer reads off feasible (gain, phase) pairs. Verify
  // the 1%-gain curve still meets 30 dB at 3 degrees but the 9% curve
  // does not.
  EXPECT_GT(tn::analyticImageRejectionDb(3.0, 0.01), 30.0);
  EXPECT_LT(tn::analyticImageRejectionDb(3.0, 0.09), 30.0);
}
