#include "spice/linalg.h"

#include <gtest/gtest.h>

#include "util/numeric.h"

namespace sp = ahfic::spice;
namespace u = ahfic::util;

TEST(DenseLu, SolvesKnownSystem) {
  sp::DenseMatrix<double> a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = sp::solveDense(a, std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, DetectsSingular) {
  sp::DenseMatrix<double> a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(sp::solveDense(a, std::vector<double>{1.0, 2.0}),
               ahfic::Error);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the initial diagonal: fails without partial pivoting.
  sp::DenseMatrix<double> a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = sp::solveDense(a, std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

class RandomSystemTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSystemTest, DenseResidualIsSmall) {
  const int n = GetParam();
  u::Rng rng(static_cast<std::uint64_t>(n) * 7919);
  sp::DenseMatrix<double> a(n, n);
  std::vector<double> b(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += n;  // diagonally dominant => well conditioned
    b[static_cast<size_t>(i)] = rng.uniform(-1, 1);
  }
  const auto aCopy = a;
  const auto x = sp::solveDense(a, b);
  // Residual || A x - b ||_inf
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    double s = -b[static_cast<size_t>(i)];
    for (int j = 0; j < n; ++j)
      s += aCopy.at(i, j) * x[static_cast<size_t>(j)];
    worst = std::max(worst, std::fabs(s));
  }
  EXPECT_LT(worst, 1e-10);
}

TEST_P(RandomSystemTest, SparseMatchesDense) {
  const int n = GetParam();
  u::Rng rng(static_cast<std::uint64_t>(n) * 104729);
  sp::DenseMatrix<double> a(n, n);
  sp::SparseMatrix<double> s(n);
  std::vector<double> b(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // ~30% fill plus a strong diagonal.
      double v = (rng.uniform() < 0.3) ? rng.uniform(-1, 1) : 0.0;
      if (i == j) v += n;
      a.at(i, j) = v;
      if (v != 0.0) s.add(i, j, v);
    }
    b[static_cast<size_t>(i)] = rng.uniform(-1, 1);
  }
  const auto xd = sp::solveDense(a, b);
  std::vector<double> bb = b, xs;
  ASSERT_TRUE(s.solveInPlace(bb, xs));
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(xs[static_cast<size_t>(i)], xd[static_cast<size_t>(i)],
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSystemTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(SparseMatrix, AccumulatesDuplicateAdds) {
  sp::SparseMatrix<double> s(3);
  s.add(1, 2, 1.5);
  s.add(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(s.get(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(s.get(2, 1), 0.0);
  EXPECT_EQ(s.nonzeros(), 1u);
}

TEST(ComplexLu, SolvesComplexSystem) {
  using C = std::complex<double>;
  sp::DenseMatrix<C> a(2, 2);
  a.at(0, 0) = {1.0, 1.0};
  a.at(0, 1) = {0.0, -1.0};
  a.at(1, 0) = {2.0, 0.0};
  a.at(1, 1) = {3.0, 1.0};
  const std::vector<C> xTrue{{1.0, -1.0}, {0.5, 2.0}};
  std::vector<C> b(2);
  for (int i = 0; i < 2; ++i) {
    b[static_cast<size_t>(i)] = a.at(i, 0) * xTrue[0] + a.at(i, 1) * xTrue[1];
  }
  const auto x = sp::solveDense(a, b);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(x[static_cast<size_t>(i)] -
                         xTrue[static_cast<size_t>(i)]),
                0.0, 1e-12);
  }
}
