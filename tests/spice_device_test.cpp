// Physics checks of the diode and Gummel-Poon BJT models.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/diode.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/numeric.h"
#include "util/units.h"

namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

const double kVt = u::constants::thermalVoltage(27.0);

sp::BjtModel simpleNpn() {
  sp::BjtModel m;
  m.is = 1e-16;
  m.bf = 100.0;
  m.br = 2.0;
  m.vaf = 50.0;
  return m;
}

}  // namespace

TEST(DiodeDc, ForwardDropNearIdeal) {
  // 1 mA through IS=1e-14 diode: V = Vt * ln(I/IS) ~ 0.655 V.
  sp::Circuit ckt;
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::ISource>("I1", 0, a, 1e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const double expected = kVt * std::log(1e-3 / 1e-14);
  EXPECT_NEAR(s.at(a), expected, 1e-3);
}

TEST(DiodeDc, SeriesResistanceAddsDrop) {
  sp::Circuit ckt;
  const int a = ckt.node("a");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  dm.rs = 10.0;
  ckt.add<sp::ISource>("I1", 0, a, 10e-3);
  ckt.add<sp::Diode>("D1", ckt, a, 0, dm);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const double junction = kVt * std::log(10e-3 / 1e-14);
  EXPECT_NEAR(s.at(a), junction + 10e-3 * 10.0, 2e-3);
}

TEST(DiodeDc, ReverseLeakageIsMinusIs) {
  sp::Circuit ckt;
  const int a = ckt.node("a"), b = ckt.node("b");
  sp::DiodeModel dm;
  dm.is = 1e-12;
  ckt.add<sp::VSource>("V1", a, 0, -5.0);
  auto& d = ckt.add<sp::Diode>("D1", ckt, a, b, dm);
  ckt.add<sp::Resistor>("R1", b, 0, 1.0);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_NEAR(d.current(s), -1e-12, 1e-13);
}

TEST(DiodeDc, AreaScalesCurrent) {
  // Same drive current, x10 area -> Vt*ln(10) lower drop.
  auto solveFor = [](double area) {
    sp::Circuit ckt;
    const int a = ckt.node("a");
    sp::DiodeModel dm;
    dm.is = 1e-14;
    ckt.add<sp::ISource>("I1", 0, a, 1e-3);
    ckt.add<sp::Diode>("D1", ckt, a, 0, dm, area);
    sp::Analyzer an(ckt);
    const auto x = an.op();
    sp::Solution s(&x);
    return s.at(a);
  };
  EXPECT_NEAR(solveFor(1.0) - solveFor(10.0), kVt * std::log(10.0), 1e-3);
}

TEST(DiodeTran, HalfWaveRectifier) {
  sp::Circuit ckt;
  const int in = ckt.node("in"), out = ckt.node("out");
  sp::DiodeModel dm;
  dm.is = 1e-14;
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(0.0, 5.0, 1e6));
  ckt.add<sp::Diode>("D1", ckt, in, out, dm);
  ckt.add<sp::Resistor>("RL", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(2e-6, 2e-9);
  const auto v = tr.voltage(out);
  double vmin = 1e9, vmax = -1e9;
  for (double vv : v) {
    vmin = std::min(vmin, vv);
    vmax = std::max(vmax, vv);
  }
  EXPECT_GT(vmax, 4.0);    // passes positive peaks minus a diode drop
  EXPECT_GT(vmin, -0.1);   // blocks negative half-cycles
}

TEST(BjtDc, ForwardActiveBetaRelation) {
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::ISource>("IB", 0, b, 10e-6);
  ckt.add<sp::VSource>("VC", c, 0, 3.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, simpleNpn());
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const auto info = q.opInfo(s);
  EXPECT_NEAR(info.ib, 10e-6, 1e-8);
  // With VAF=50 and Vce=3: beta_eff ~ BF * (1 + Vce/VAF).
  EXPECT_NEAR(info.ic / info.ib, 100.0 * (1.0 + 3.0 / 50.0), 2.0);
}

TEST(BjtDc, GummelSlope60mVPerDecade) {
  // Ic(vbe) follows exp(vbe/Vt) over the ideal region.
  auto icAt = [](double vbe) {
    sp::Circuit ckt;
    const int c = ckt.node("c"), b = ckt.node("b");
    ckt.add<sp::VSource>("VB", b, 0, vbe);
    auto& vc = ckt.add<sp::VSource>("VC", c, 0, 2.0);
    ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, simpleNpn());
    sp::Analyzer an(ckt);
    const auto x = an.op();
    sp::Solution s(&x);
    return -s.at(vc.branchId());  // current into the collector node
  };
  const double i1 = icAt(0.55);
  const double i2 = icAt(0.55 + kVt * std::log(10.0));
  EXPECT_NEAR(i2 / i1, 10.0, 0.15);
}

TEST(BjtDc, EarlyEffectSlope) {
  // dIc/dVce ~ Ic/VAF in forward active.
  auto icAt = [](double vce) {
    sp::Circuit ckt;
    const int c = ckt.node("c"), b = ckt.node("b");
    ckt.add<sp::ISource>("IB", 0, b, 20e-6);
    auto& vc = ckt.add<sp::VSource>("VC", c, 0, vce);
    ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, simpleNpn());
    sp::Analyzer an(ckt);
    const auto x = an.op();
    sp::Solution s(&x);
    return -s.at(vc.branchId());
  };
  const double ic2 = icAt(2.0), ic4 = icAt(4.0);
  const double slope = (ic4 - ic2) / 2.0;
  const double expected = ic2 / (50.0 + 2.0);
  EXPECT_NEAR(slope, expected, expected * 0.1);
}

TEST(BjtDc, HighInjectionBetaDroop) {
  // With IKF set, beta at Ic >> IKF falls well below BF.
  sp::BjtModel m = simpleNpn();
  m.ikf = 1e-3;
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::VSource>("VB", b, 0, 0.85);  // hard drive
  ckt.add<sp::VSource>("VC", c, 0, 2.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, m);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const auto info = q.opInfo(s);
  EXPECT_GT(info.ic, 1e-3);          // beyond the knee
  EXPECT_LT(info.ic / info.ib, 60);  // substantially degraded beta
  EXPECT_GT(info.qb, 2.0);           // base charge clearly modulated
}

TEST(BjtDc, LeakageDegradesLowCurrentBeta) {
  sp::BjtModel m = simpleNpn();
  m.ise = 1e-13;
  m.ne = 2.0;
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::VSource>("VB", b, 0, 0.45);  // weak drive
  ckt.add<sp::VSource>("VC", c, 0, 2.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, m);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const auto info = q.opInfo(s);
  EXPECT_LT(info.ic / info.ib, 50.0);  // leakage dominates base current
}

TEST(BjtDc, SaturationPullsVceLow) {
  // Heavy base drive with a large collector resistor: Vce < 0.3 V.
  sp::Circuit ckt;
  const int vcc = ckt.node("vcc"), c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::VSource>("VCC", vcc, 0, 5.0);
  ckt.add<sp::Resistor>("RC", vcc, c, 10e3);
  ckt.add<sp::ISource>("IB", 0, b, 1e-3);
  ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, simpleNpn());
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  EXPECT_LT(s.at(c), 0.3);
  EXPECT_GT(s.at(c), 0.0);
}

TEST(BjtDc, PnpMirrorsNpn) {
  sp::BjtModel m = simpleNpn();
  m.pnp = true;
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b"), e = ckt.node("e");
  ckt.add<sp::VSource>("VE", e, 0, 5.0);
  ckt.add<sp::ISource>("IB", b, 0, 10e-6);  // pull current out of base
  ckt.add<sp::VSource>("VC", c, 0, 2.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, e, m);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const auto info = q.opInfo(s);
  EXPECT_GT(info.ic, 0.5e-3);  // model-polarity collector current
  // Junction drop consistent with the exponential law.
  EXPECT_NEAR(info.vbe, kVt * std::log(info.ic / 1e-16), 0.02);
}

TEST(BjtDc, ParasiticResistancesDropVoltage) {
  sp::BjtModel m = simpleNpn();
  m.re = 10.0;
  m.rc = 50.0;
  m.rb = 200.0;
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::ISource>("IB", 0, b, 50e-6);
  ckt.add<sp::VSource>("VC", c, 0, 3.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, m);
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const auto info = q.opInfo(s);
  // External base voltage exceeds the junction vbe by rb*ib + re*ie.
  const double vbExt = s.at(b);
  EXPECT_GT(vbExt, info.vbe + 0.005);
}

TEST(BjtOp, GmMatchesIcOverVt) {
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::ISource>("IB", 0, b, 10e-6);
  ckt.add<sp::VSource>("VC", c, 0, 3.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, simpleNpn());
  sp::Analyzer an(ckt);
  const auto x = an.op();
  sp::Solution s(&x);
  const auto info = q.opInfo(s);
  EXPECT_NEAR(info.gm, info.ic / kVt, info.gm * 0.1);
  EXPECT_NEAR(info.gpi, info.gm / 100.0, info.gpi * 0.15);
}

namespace {

/// h21 test bench: base driven by 1 A AC current source, collector held by
/// a DC voltage source (AC short). Returns |ic/ib| at each frequency.
std::vector<double> h21Magnitudes(sp::Circuit& ckt, const sp::BjtModel& m,
                                  double ibBias,
                                  const std::vector<double>& freqs,
                                  sp::Bjt** qOut = nullptr,
                                  std::vector<double>* opOut = nullptr) {
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::ISource>("IB", 0, b, ibBias, /*acMag=*/1.0);
  auto& vc = ckt.add<sp::VSource>("VC", c, 0, 2.0);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, m);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  const auto ac = an.ac(freqs, op);
  std::vector<double> h;
  for (size_t k = 0; k < freqs.size(); ++k)
    h.push_back(std::abs(ac.unknown(k, vc.branchId())));
  if (qOut != nullptr) *qOut = &q;
  if (opOut != nullptr) *opOut = op;
  return h;
}

}  // namespace

TEST(BjtAc, H21LowFrequencyEqualsBeta) {
  sp::BjtModel m = simpleNpn();
  m.tf = 20e-12;
  m.cje = 50e-15;
  m.cjc = 30e-15;
  sp::Circuit ckt;
  const auto h = h21Magnitudes(ckt, m, 10e-6, {1e3});
  EXPECT_NEAR(h[0], 106.0, 8.0);  // BF * Early boost at Vce = 2
}

TEST(BjtAc, H21RollsOff20DbPerDecade) {
  sp::BjtModel m = simpleNpn();
  m.tf = 20e-12;
  m.cje = 50e-15;
  m.cjc = 30e-15;
  sp::Circuit ckt;
  const auto h = h21Magnitudes(ckt, m, 100e-6, {1e9, 2e9});
  // Well above the beta corner: |h21| halves per octave.
  EXPECT_NEAR(h[0] / h[1], 2.0, 0.1);
}

TEST(BjtAc, FtFromAcMatchesAnalytic) {
  sp::BjtModel m = simpleNpn();
  m.tf = 20e-12;
  m.cje = 50e-15;
  m.cjc = 30e-15;
  sp::Circuit ckt;
  sp::Bjt* q = nullptr;
  std::vector<double> op;
  const double fProbe = 1e9;
  const auto h = h21Magnitudes(ckt, m, 100e-6, {fProbe}, &q, &op);
  ASSERT_NE(q, nullptr);
  // Single-pole extrapolation: fT = f * |h21(f)| in the -20 dB/dec region.
  const double ftExtrapolated = fProbe * h[0];
  sp::Solution s(&op);
  const double ftAnalytic = q->opInfo(s).ft();
  EXPECT_NEAR(ftExtrapolated, ftAnalytic, ftAnalytic * 0.1);
  EXPECT_GT(ftAnalytic, 1e9);
}

TEST(BjtTran, EmitterFollowerTracksInput) {
  sp::BjtModel m = simpleNpn();
  m.tf = 20e-12;
  m.cje = 50e-15;
  m.cjc = 30e-15;
  sp::Circuit ckt;
  const int vcc = ckt.node("vcc"), in = ckt.node("in"), out = ckt.node("out");
  ckt.add<sp::VSource>("VCC", vcc, 0, 5.0);
  ckt.add<sp::VSource>("VIN", in, 0,
                       std::make_unique<sp::SinWaveform>(2.5, 0.5, 50e6));
  ckt.add<sp::Bjt>("Q1", ckt, vcc, in, out, m);
  ckt.add<sp::Resistor>("RE", out, 0, 1e3);
  sp::Analyzer an(ckt);
  const auto tr = an.transient(60e-9, 0.1e-9);
  const auto vin = tr.voltage(in);
  const auto vout = tr.voltage(out);
  // Output follows input shifted down one Vbe.
  for (size_t k = tr.time.size() / 2; k < tr.time.size(); ++k) {
    EXPECT_NEAR(vin[k] - vout[k], 0.72, 0.1) << "t=" << tr.time[k];
  }
}

TEST(BjtModelCard, AreaFactorScalesResistances) {
  sp::BjtModel m = simpleNpn();
  m.rb = 100.0;
  m.re = 4.0;
  m.rc = 40.0;
  m.cje = 10e-15;
  sp::Circuit ckt;
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, ckt.node("c"), ckt.node("b"), 0, m,
                             /*area=*/2.0);
  EXPECT_DOUBLE_EQ(q.scaledModel().rb, 50.0);
  EXPECT_DOUBLE_EQ(q.scaledModel().re, 2.0);
  EXPECT_DOUBLE_EQ(q.scaledModel().cje, 20e-15);
  EXPECT_DOUBLE_EQ(q.scaledModel().is, 2e-16);
}

TEST(BjtModelCard, RejectsBadArea) {
  sp::Circuit ckt;
  EXPECT_THROW(ckt.add<sp::Bjt>("Q1", ckt, ckt.node("c"), ckt.node("b"), 0,
                                simpleNpn(), 0.0),
               ahfic::Error);
}
