// Deck-runner tests: parsed analysis cards execute and print.

#include <gtest/gtest.h>

#include <sstream>

#include "spice/rundeck.h"
#include "util/error.h"

namespace sp = ahfic::spice;

TEST(RunDeck, OpListsNodeVoltages) {
  auto deck = sp::parseDeck("divider\nV1 in 0 10\nR1 in out 1k\n"
                            "R2 out 0 1k\n.OP\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("operating point"), std::string::npos);
  EXPECT_NE(s.find("out"), std::string::npos);
  EXPECT_NE(s.find("5.000000"), std::string::npos);
}

TEST(RunDeck, DcSweepTable) {
  auto deck = sp::parseDeck(
      "sweep\nV1 in 0 0\nR1 in out 1k\nR2 out 0 1k\n.DC V1 0 4 1\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("dc sweep of V1"), std::string::npos);
  EXPECT_NE(s.find("2.000000"), std::string::npos);  // V(out) at V1 = 4
}

TEST(RunDeck, AcTableHasMagnitudeAndPhase) {
  auto deck = sp::parseDeck(
      "rc\nV1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 159p\n"
      ".AC DEC 4 10k 100MEG\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("ac analysis"), std::string::npos);
  EXPECT_NE(s.find("|V(out)| dB"), std::string::npos);
  EXPECT_NE(s.find("ph deg"), std::string::npos);
}

TEST(RunDeck, TranTableDecimated) {
  auto deck = sp::parseDeck(
      "rc step\nV1 in 0 PULSE(0 1 0 1p 1p 1 2)\nR1 in out 1k\n"
      "C1 out 0 1n\n.TRAN 10n 5u\n");
  std::ostringstream os;
  sp::RunDeckOptions opt;
  opt.maxTranRows = 10;
  sp::runDeck(deck, os, opt);
  const std::string s = os.str();
  EXPECT_NE(s.find("transient analysis"), std::string::npos);
  // Decimation: table rows bounded (~12 rows + header) plus the ~21-line
  // ASCII plot.
  int lines = 0;
  for (char c : s)
    if (c == '\n') ++lines;
  EXPECT_LT(lines, 45);
  // The .PLOT-style chart is present.
  EXPECT_NE(s.find("V(in) [V]"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(RunDeck, NoiseCardRunsAndPrints) {
  auto deck = sp::parseDeck(
      "noisy divider\nV1 in 0 1\nR1 in out 10k\nR2 out 0 10k\n"
      ".NOISE out DEC 3 1k 1MEG\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("noise analysis at node out"), std::string::npos);
  EXPECT_NE(s.find("nV/rtHz"), std::string::npos);
  EXPECT_NE(s.find("top contributors"), std::string::npos);
  EXPECT_NE(s.find("R1 thermal"), std::string::npos);
}

TEST(RunDeck, NoiseCardSyntaxErrors) {
  EXPECT_THROW(sp::parseDeck("t\n.NOISE out 1k 1MEG\n"),
               ahfic::ParseError);
  EXPECT_THROW(sp::parseDeck("t\n.NOISE out DEC 3 1k\n"),
               ahfic::ParseError);
}

TEST(RunDeck, NoAnalysesIsGraceful) {
  auto deck = sp::parseDeck("empty\nR1 a 0 1k\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  EXPECT_NE(os.str().find("nothing to do"), std::string::npos);
}

TEST(RunDeck, MultipleAnalysesRunInOrder) {
  auto deck = sp::parseDeck(
      "combo\nV1 in 0 DC 2 AC 1\nR1 in out 1k\nR2 out 0 1k\n"
      ".OP\n.AC DEC 2 1k 1MEG\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  const std::string s = os.str();
  const size_t opPos = s.find("operating point");
  const size_t acPos = s.find("ac analysis");
  ASSERT_NE(opPos, std::string::npos);
  ASSERT_NE(acPos, std::string::npos);
  EXPECT_LT(opPos, acPos);
}

TEST(RunDeck, InternalNodesHiddenFromSweeps) {
  auto deck = sp::parseDeck(
      "subckt sweep\n.SUBCKT dv a b\nR1 a m 1k\nR2 m b 1k\n.ENDS\n"
      "V1 in 0 1\nX1 in out dv\nRL out 0 1k\n.DC V1 0 1 0.5\n");
  std::ostringstream os;
  sp::runDeck(deck, os);
  const std::string s = os.str();
  // The scoped internal node x1.m is not a sweep column.
  EXPECT_EQ(s.find("V(x1.m)"), std::string::npos);
  EXPECT_NE(s.find("V(out)"), std::string::npos);
}
