#include "util/numeric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace u = ahfic::util;

TEST(Numeric, DbConversionsRoundTrip) {
  EXPECT_NEAR(u::toDb(10.0), 20.0, 1e-12);
  EXPECT_NEAR(u::fromDb(20.0), 10.0, 1e-12);
  EXPECT_NEAR(u::toDbPower(100.0), 20.0, 1e-12);
  for (double x : {0.01, 0.5, 1.0, 3.3, 1e4}) {
    EXPECT_NEAR(u::fromDb(u::toDb(x)), x, 1e-9 * x);
  }
}

TEST(Numeric, DbOfZeroIsFloored) {
  EXPECT_LT(u::toDb(0.0), -1000.0);
  EXPECT_LT(u::toDbPower(0.0), -1000.0);
}

TEST(Numeric, Interp1InsideAndOutside) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(u::interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(u::interp1(xs, ys, 1.5), 25.0);
  // Linear extrapolation with edge segments.
  EXPECT_DOUBLE_EQ(u::interp1(xs, ys, -1.0), -10.0);
  EXPECT_DOUBLE_EQ(u::interp1(xs, ys, 3.0), 70.0);
}

TEST(Numeric, Interp1Throws) {
  EXPECT_THROW(u::interp1({1.0}, {1.0}, 0.5), ahfic::Error);
  EXPECT_THROW(u::interp1({1.0, 2.0}, {1.0}, 0.5), ahfic::Error);
}

TEST(Numeric, FindCurvePeakRefinesParabolically) {
  // y = 5 - (x - 1.3)^2 sampled coarsely: true peak at x = 1.3.
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= 3.01; x += 0.5) {
    xs.push_back(x);
    ys.push_back(5.0 - (x - 1.3) * (x - 1.3));
  }
  const auto peak = u::findCurvePeak(xs, ys);
  EXPECT_NEAR(peak.x, 1.3, 1e-9);
  EXPECT_NEAR(peak.y, 5.0, 1e-9);
}

TEST(Numeric, FindCurvePeakAtEdge) {
  const auto peak = u::findCurvePeak({0.0, 1.0, 2.0}, {9.0, 5.0, 1.0});
  EXPECT_DOUBLE_EQ(peak.x, 0.0);
  EXPECT_DOUBLE_EQ(peak.y, 9.0);
}

TEST(Numeric, RisingCrossingsInterpolate) {
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> v{-1.0, 1.0, -1.0, 1.0};
  const auto c = u::risingCrossings(t, v, 0.0);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 0.5, 1e-12);
  EXPECT_NEAR(c[1], 2.5, 1e-12);
}

TEST(Numeric, OscillationFrequencyOfPureSine) {
  const double f0 = 123.0e6;
  std::vector<double> t, v;
  const double dt = 1.0 / (f0 * 64.0);
  for (int i = 0; i < 4096; ++i) {
    t.push_back(i * dt);
    v.push_back(0.7 + 0.3 * std::sin(u::constants::kTwoPi * f0 * i * dt));
  }
  const auto f = u::oscillationFrequency(t, v);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, f0, f0 * 1e-3);
}

TEST(Numeric, OscillationFrequencyNeedsCrossings) {
  const std::vector<double> t{0, 1, 2, 3, 4, 5};
  const std::vector<double> flat{1, 1, 1, 1, 1, 1};
  EXPECT_FALSE(u::oscillationFrequency(t, flat).has_value());
}

TEST(Numeric, SteadyStatePeakToPeakSkipsStartup) {
  // Huge start-up transient followed by a small steady ripple.
  std::vector<double> t, v;
  for (int i = 0; i < 100; ++i) {
    t.push_back(i);
    v.push_back(i < 20 ? 100.0 : std::sin(i * 0.7));
  }
  const double pp = u::steadyStatePeakToPeak(t, v, 0.3);
  EXPECT_LT(pp, 2.1);
  EXPECT_GT(pp, 1.5);
}

TEST(NumericRng, UniformInRangeAndDeterministic) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = a.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_DOUBLE_EQ(x, b.uniform());
  }
}

TEST(NumericRng, NormalMomentsRoughlyCorrect) {
  u::Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(NumericRng, NextBounded) {
  u::Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next(17), 17u);
  EXPECT_EQ(rng.next(0), 0u);
}
