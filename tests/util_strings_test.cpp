#include "util/strings.h"

#include <gtest/gtest.h>

namespace u = ahfic::util;

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(u::trim("  abc \t"), "abc");
  EXPECT_EQ(u::trim("abc"), "abc");
  EXPECT_EQ(u::trim("   "), "");
  EXPECT_EQ(u::trim(""), "");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(u::toLower("AbC123"), "abc123");
  EXPECT_EQ(u::toUpper("AbC123"), "ABC123");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(u::startsWith("hello world", "hello"));
  EXPECT_FALSE(u::startsWith("hello", "hello world"));
  EXPECT_TRUE(u::startsWithNoCase("HeLLo", "heLl"));
  EXPECT_FALSE(u::startsWithNoCase("he", "hello"));
}

TEST(Strings, EqualsNoCase) {
  EXPECT_TRUE(u::equalsNoCase("MEG", "meg"));
  EXPECT_FALSE(u::equalsNoCase("MEG", "me"));
  EXPECT_TRUE(u::equalsNoCase("", ""));
}

TEST(Strings, SplitDropsEmptyFields) {
  const auto parts = u::split("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptyInput) {
  EXPECT_TRUE(u::split("", ",").empty());
  EXPECT_TRUE(u::split(",,,", ",").empty());
}

TEST(Strings, TokenizeHandlesQuotes) {
  const auto toks = u::tokenize("alpha \"two words\" gamma");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1], "two words");
}

TEST(Strings, TokenizeUnterminatedQuote) {
  const auto toks = u::tokenize("a \"open ended");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1], "open ended");
}

TEST(Strings, Join) {
  EXPECT_EQ(u::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(u::join({}, ","), "");
  EXPECT_EQ(u::join({"solo"}, ","), "solo");
}

TEST(Strings, ContainsNoCase) {
  EXPECT_TRUE(u::containsNoCase("The Quick Fox", "quick"));
  EXPECT_FALSE(u::containsNoCase("The Quick Fox", "slow"));
  EXPECT_TRUE(u::containsNoCase("anything", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(u::replaceAll("a=b=c", "=", " = "), "a = b = c");
  EXPECT_EQ(u::replaceAll("aaaa", "aa", "b"), "bb");
  EXPECT_EQ(u::replaceAll("xyz", "q", "r"), "xyz");
}
