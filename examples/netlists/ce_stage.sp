common-emitter stage (run with: spice_cli ce_stage.sp)
.MODEL n1 NPN(IS=1e-16 BF=110 VAF=45 RB=200 RE=4 RC=30 CJE=12f CJC=15f TF=12p)
VCC vcc 0 8
VIN in 0 DC 1.8 AC 1
RC vcc out 1k
Q1 out in e n1
RE2 e 0 200
.OP
.DC VIN 1.0 2.6 0.1
.AC DEC 5 100k 20G
.NOISE out DEC 5 1k 1G
.END
