Deliberately broken deck: a loop of ideal voltage sources.
* Two ideal sources in parallel overdetermine KVL — the MNA matrix is
* singular before Newton ever starts. lint_cli flags NET_VSRC_LOOP.
V1 a 0 5
V2 a 0 4.9
R1 a b 1k
RL b 0 1k

* The inductor shorts node c to ground at DC while only a capacitor
* feeds it — and C1's far side (node d) floats entirely.
L1 c 0 10n
C1 c d 1p

.OP
.END
