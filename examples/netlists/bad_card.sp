Deliberately broken deck: a non-physical BJT model card.
* MJE > 1 (grading coefficient outside (0,1)) and a negative RB are
* impossible for a real junction; lint_cli flags MOD_BJT_RANGE twice.
.MODEL badnpn NPN(IS=1e-16 BF=100 RB=-5 CJE=20f MJE=1.4 TF=12p)
VCC vcc 0 5
VIN b 0 0.8
Q1 vcc b e badnpn
RE e 0 1k
.OP
.END
