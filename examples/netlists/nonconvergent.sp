Deliberately non-convergent deck (CI forensics smoke test)
* Node "b" is reachable only through capacitors, so the DC operating
* point matrix is singular at every homotopy rung: Newton, gmin
* stepping and source stepping all fail, and the solver must emit an
* "ahfic-diag-v1" report naming V(b) as the floating unknown.
V1 in 0 DC 1
R1 in a 1k
C1 a b 1p
C2 b 0 1p
.OP
.END
