// The paper's Sec. 3 systems in action: the Analog Cell-based Design
// Supporting System (register / search / copy) and the WWW library view.
//
//   1. Seed the database with the Fig. 6 taxonomy.
//   2. Search it the way a re-using designer would.
//   3. Check a cell out, splice its schematic into a new IC design, and
//      simulate the combination.
//   4. Register a new cell (with content validation).
//   5. Emit the browsable HTML library and the persistent text database.

#include <fstream>
#include <iostream>

#include "celldb/database.h"
#include "celldb/seed.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/parser.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/table.h"
#include "util/units.h"

namespace cd = ahfic::celldb;
namespace sp = ahfic::spice;
namespace u = ahfic::util;

int main() {
  // ---- 1: seed ----
  cd::CellDatabase db;
  const size_t seeded = cd::seedExampleLibrary(db);
  std::cout << "Seeded " << seeded << " cells. Libraries:";
  for (const auto& lib : db.libraries()) std::cout << " " << lib;
  std::cout << "\n\n";

  // ---- 2: search ----
  std::cout << "Search \"gain\":\n";
  u::Table hits({"cell", "library", "category", "re-used"});
  for (const cd::Cell* c : db.search("gain"))
    hits.addRow({c->name, c->library, c->category1 + "/" + c->category2,
                 std::to_string(c->reuseCount) + "x"});
  hits.print(std::cout);

  // ---- 3: checkout + splice + simulate ----
  std::cout << "\nChecking out TV/ACC1 and simulating it inside a new "
               "design...\n";
  const cd::Cell acc = db.checkout("TV", "ACC1");
  sp::Circuit ckt;
  sp::parseInto(ckt, acc.schematic);
  // Bias the inputs the way the document prescribes and add a load.
  ckt.add<sp::VSource>("VB1", ckt.node("in1"), 0, 2.0);
  ckt.add<sp::VSource>("VB2", ckt.node("in2"), 0, 2.0);
  sp::Analyzer an(ckt);
  const auto op = an.op();
  sp::Solution s(&op);
  std::cout << "  DC operating point: V(c1) = "
            << u::fixed(s.at(ckt.findNode("c1")), 2) << " V, V(e) = "
            << u::fixed(s.at(ckt.findNode("e")), 2) << " V\n";

  // ---- 4: register a new cell ----
  cd::Cell mine;
  mine.library = "TV";
  mine.category1 = "Croma";
  mine.category2 = "ACC";
  mine.name = "ACC3";
  mine.document = "Cascode ACC variant developed for this design.";
  mine.schematic =
      ".MODEL n1 NPN(IS=1e-16 BF=110)\n"
      "VCC vcc 0 8\n"
      "RC vcc c 2k\n"
      "Q1 c b1 m n1\n"
      "Q2 m in e n1\n"
      "RE e 0 200\n"
      "VB b1 0 4\n";
  db.registerCell(mine);
  std::cout << "  Registered ACC3; TV/Croma/ACC now has "
            << db.byCategory("TV", "Croma", "ACC").size() << " cells.\n";

  // ---- 5: reports ----
  const std::string dbPath = "cell_library.txt";
  const std::string htmlPath = "cell_library.html";
  db.save(dbPath);
  {
    std::ofstream f(htmlPath);
    f << db.toHtml();
  }
  const auto st = db.stats();
  std::cout << "\nWrote " << dbPath << " (" << st.cellCount
            << " cells) and " << htmlPath << " (WWW library view).\n"
            << "Checkouts recorded so far: " << st.totalCheckouts << "\n";
  return 0;
}
