// wave_convert: ahfic-wave-v1 binary waveform <-> JSON converter, so the
// compact payloads the runner's batched Monte-Carlo workloads cache on
// disk stay accessible to plain-text tooling (jq, spreadsheets, diffing).
//
// The direction is picked from the input: a file starting with the
// "ahficwv1" magic converts to JSON on stdout, anything else is parsed
// as the waveToJson document and converted to binary (which then needs
// --out, binary never goes to a terminal-bound stdout by default).
//
// Usage:
//   wave_convert FILE            # binary -> JSON on stdout
//   wave_convert FILE --out F    # either direction, into F
//   wave_convert FILE --summary  # columns/rows only, no payload

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/json.h"
#include "util/wave.h"

namespace u = ahfic::util;

namespace {

int usage() {
  std::cerr << "usage: wave_convert FILE [--out FILE] [--summary]\n"
            << "  binary ahfic-wave-v1 input -> JSON; JSON input -> binary\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string inPath, outPath;
  bool summary = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--out") == 0 && k + 1 < argc)
      outPath = argv[++k];
    else if (std::strcmp(argv[k], "--summary") == 0)
      summary = true;
    else if (argv[k][0] == '-')
      return usage();
    else if (inPath.empty())
      inPath = argv[k];
    else
      return usage();
  }
  if (inPath.empty()) return usage();

  try {
    std::ifstream f(inPath, std::ios::binary);
    if (!f) throw ahfic::Error("wave_convert: cannot open '" + inPath + "'");
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string raw = ss.str();

    const bool binaryIn =
        raw.size() >= 8 && raw.compare(0, 8, "ahficwv1") == 0;
    const u::WaveTable table =
        binaryIn
            ? u::decodeWave(reinterpret_cast<const std::uint8_t*>(raw.data()),
                            raw.size())
            : u::waveFromJson(u::parseJson(raw));

    if (summary) {
      std::cout << inPath << ": " << (binaryIn ? "binary" : "json") << ", "
                << table.columnCount() << " column(s) x "
                << table.rowCount() << " row(s):";
      for (const std::string& name : table.columns) std::cout << " " << name;
      std::cout << "\n";
      return 0;
    }

    if (binaryIn) {
      const std::string text = u::waveToJson(table).dump(1) + "\n";
      if (outPath.empty()) {
        std::cout << text;
      } else {
        std::ofstream out(outPath);
        if (!out || !(out << text).good())
          throw ahfic::Error("wave_convert: cannot write '" + outPath + "'");
      }
    } else {
      if (outPath.empty())
        throw ahfic::Error(
            "wave_convert: JSON -> binary requires --out FILE");
      u::writeWaveFile(outPath, table);
    }
  } catch (const ahfic::Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
