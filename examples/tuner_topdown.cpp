// The paper's Sec. 2 methodology, end to end, on the CATV tuner:
//
//   1. Describe the image-rejection tuner behaviourally (AHDL level).
//   2. Sweep the system-level metric (image rejection ratio) against the
//      block impairments (Fig. 5) to DERIVE block specifications from the
//      system requirement.
//   3. Implement a block at the transistor level, characterise it with
//      the circuit simulator, and swap it back into the behavioural
//      system — "circuit designers can easily find the effects of
//      primitive elements to the whole system".

#include <iostream>

#include "ahdl/blocks.h"
#include "core/design.h"
#include "tuner/irr.h"
#include "util/fft.h"
#include "util/table.h"
#include "util/units.h"

namespace tn = ahfic::tuner;
namespace ah = ahfic::ahdl;
namespace co = ahfic::core;
namespace u = ahfic::util;

int main() {
  // ---- 1 + 2: system-level exploration -> block specs ----
  std::cout << "== Step 1: system requirement ==\n"
            << "The system designer requests image rejection >= 30 dB.\n\n"
            << "== Step 2: derive block specs from Fig. 5-style sweeps ==\n";

  co::SpecSheet specs;
  // Scan the impairment plane for the 30 dB contour.
  double phaseBudget = 0.0;
  const double gainBudget = 0.03;  // assume trimming holds gain to 3%
  for (double phi = 0.0; phi <= 10.0; phi += 0.05) {
    if (tn::analyticImageRejectionDb(phi, gainBudget) >= 30.0)
      phaseBudget = phi;
  }
  specs.addMax("90deg shifters", "total phase error", "deg", phaseBudget);
  specs.addMax("IF paths", "gain balance", "%", gainBudget * 100.0);
  std::cout << specs.toString() << "\n";

  // Verify the derived spec point by time-domain simulation.
  tn::ImageRejectImpairments atSpec;
  atSpec.loPhaseErrorDeg = phaseBudget;
  atSpec.gainImbalance = gainBudget;
  const double irrAtSpec = tn::simulateImageRejectionDb(atSpec);
  std::cout << "Time-domain check at the spec corner: IRR = "
            << u::fixed(irrAtSpec, 1) << " dB (needs >= ~30 dB)\n\n";

  // ---- 3: implement one block at transistor level and swap it in ----
  std::cout << "== Step 3: transistor-level block, characterised and "
               "swapped in ==\n";

  // The 2nd-IF amplifier, first as a behavioural ideal, then as a real
  // resistor-loaded differential half-circuit.
  co::DesignChain chain("if2amp");
  chain.addBlock("amp", [](ah::System& sys, const std::string& in,
                           const std::string& out) {
    sys.add<ah::Amplifier>({in}, {out}, "ideal_if_amp", -4.0);
  });

  co::CharacterizationSetup setup;
  setup.netlist = R"(
.MODEL n1 NPN(IS=1e-16 BF=110 VAF=45 CJE=12f CJC=15f TF=12p RB=200 RE=4)
VCC vcc 0 8
VIN in 0 DC 1.8 AC 1
RC vcc out 820
Q1 out in e n1
RE2 e 0 180
)";
  setup.inputSource = "VIN";
  setup.outputNode = "out";
  setup.f0 = 45e6;
  setup.dcSweepSpan = 1.5;
  chain.setTransistorView("amp", setup);

  const auto& model = chain.characterized("amp");
  u::Table t({"quantity", "value"});
  t.addRow({"gain @ 45 MHz", u::fixed(model.gainAtF0, 2) + "x"});
  t.addRow({"phase @ 45 MHz", u::fixed(model.phaseDegAtF0, 1) + " deg"});
  t.addRow({"-3 dB bandwidth", u::formatFrequency(model.bandwidth3Db)});
  t.addRow({"output swing", u::fixed(model.outputSwing, 2) + " V"});
  t.print(std::cout);

  // Compare system output with the behavioural vs characterised view.
  auto ifToneWith = [&](bool transistorLevel) {
    ah::System sys;
    sys.add<ah::SineSource>({}, {"ifin"}, "src", 45e6, 0.05);
    chain.build(sys, "ifin", "ifout",
                transistorLevel ? std::set<std::string>{"amp"}
                                : std::set<std::string>{});
    sys.probe("ifout");
    const double fs = 2e9;
    const auto res = sys.run(2e-6, fs, 0.5e-6);
    return u::toneAmplitude(res.trace("ifout"), fs, 45e6) / 0.05;
  };
  const double gIdeal = ifToneWith(false);
  const double gReal = ifToneWith(true);
  std::cout << "\nSystem-level 2nd-IF gain with the ideal block:      "
            << u::fixed(gIdeal, 2) << "x\n"
            << "System-level 2nd-IF gain with the real (swapped) one: "
            << u::fixed(gReal, 2) << "x\n"
            << "-> the behavioural guess must be revised to "
            << u::fixed(gReal, 2)
            << "x before committing the block spec.\n";
  return 0;
}
