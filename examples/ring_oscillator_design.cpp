// The paper's Sec. 4 design flow: pick the transistor shape for a
// high-speed circuit whose topology and operating current are fixed.
//
//   1. The ring oscillator's current budget fixes Ic per switch at 3 mA.
//   2. Generate geometry-aware model cards for the candidate shapes.
//   3. Compare fT at the operating current (Fig. 9 reading).
//   4. Confirm with full transient simulations of the Fig. 11 oscillator
//      (Table 1) and pick the winner.

#include <algorithm>
#include <iostream>

#include "bjtgen/ft.h"
#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace u = ahfic::util;

int main() {
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const double icOperating = 3e-3;

  std::cout << "== Shape selection for the 5-stage ECL ring oscillator ==\n"
            << "Fixed by the design: topology, VCC = 5 V, tail current "
            << u::fixed(icOperating * 1e3, 0) << " mA.\n\n";

  std::cout << "Step 1: generated cards and fT at the operating "
               "current:\n\n";
  u::Table shapeTable(
      {"Shape", "RB [ohm]", "CJC [fF]", "fT @ 3 mA", "fT peak Ic"});
  struct Candidate {
    std::string name;
    double ftAtIc;
  };
  std::vector<Candidate> candidates;
  for (const auto& shape : bg::fig8Shapes()) {
    const auto card = gen.generate(shape);
    bg::FtExtractor fx(card);
    const double ft = fx.measureAt(icOperating).ft;
    const auto peak = fx.findPeak(0.1e-3, 30e-3, 15);
    shapeTable.addRow({shape.name(), u::fixed(card.rb, 0),
                       u::fixed(card.cjc * 1e15, 1),
                       u::formatFrequency(ft),
                       u::fixed(peak.icPeak * 1e3, 2) + " mA"});
    candidates.push_back({shape.name(), ft});
  }
  shapeTable.print(std::cout);

  std::cout << "\nStep 2: confirm with transient simulation of the full "
               "oscillator:\n\n";
  bg::RingOscillatorSpec spec;
  spec.tailCurrent = icOperating;
  spec.followerModel = gen.generate("N1.2-6D");
  u::Table ringTable({"Shape", "free-running frequency"});
  std::string best;
  double bestF = 0.0;
  for (const auto& shape : bg::fig8Shapes()) {
    spec.diffPairModel = gen.generate(shape);
    const auto m = bg::measureRingFrequency(spec, 10.0, 3.0);
    ringTable.addRow({shape.name(), m.oscillating
                                        ? u::formatFrequency(m.frequency)
                                        : "no oscillation"});
    if (m.oscillating && m.frequency > bestF) {
      bestF = m.frequency;
      best = shape.name();
    }
  }
  ringTable.print(std::cout);

  std::cout << "\nSelected shape: " << best << " ("
            << u::formatFrequency(bestF) << ")\n"
            << "\"Without this technique, it would have been difficult to "
               "determine the\nshapes of the transistors which best fit "
               "the circuit.\" (Sec. 4)\n";
  return 0;
}
