// The paper's Sec. 4 design flow: pick the transistor shape for a
// high-speed circuit whose topology and operating current are fixed.
//
//   1. The ring oscillator's current budget fixes Ic per switch at 3 mA.
//   2. Generate geometry-aware model cards for the candidate shapes.
//   3. Compare fT at the operating current (Fig. 9 reading).
//   4. Confirm with full transient simulations of the Fig. 11 oscillator
//      (Table 1) and pick the winner.
//
// Steps 3 and 4 are independent per shape, so both run as batches on the
// job engine. Usage: ring_oscillator_design [--jobs N]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "bjtgen/ft.h"
#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace u = ahfic::util;

int main(int argc, char** argv) {
  int jobs = 0;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--jobs") == 0 && k + 1 < argc)
      jobs = std::atoi(argv[++k]);
  }

  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const double icOperating = 3e-3;
  const auto shapes = bg::fig8Shapes();

  std::cout << "== Shape selection for the 5-stage ECL ring oscillator ==\n"
            << "Fixed by the design: topology, VCC = 5 V, tail current "
            << u::fixed(icOperating * 1e3, 0) << " mA.\n\n";

  rn::RunnerOptions ropts;
  ropts.threads = jobs;
  ropts.useCache = false;
  rn::BatchRunner runner(ropts);

  // Step 1 batch: fT at the operating current + peak location per shape.
  auto ftJobs = rn::fig9SweepJobs(gen, shapes, {icOperating}, "sec4-ft");
  const size_t atIcCount = ftJobs.size();
  for (auto& job : rn::ftPeakJobs(gen, shapes, 0.1e-3, 30e-3, 15,
                                  "sec4-peak"))
    ftJobs.push_back(std::move(job));
  const auto ftBatch = runner.run(ftJobs);

  std::cout << "Step 1: generated cards and fT at the operating "
               "current:\n\n";
  u::Table shapeTable(
      {"Shape", "RB [ohm]", "CJC [fF]", "fT @ 3 mA", "fT peak Ic"});
  for (size_t s = 0; s < shapes.size(); ++s) {
    const auto card = gen.generate(shapes[s]);
    const auto& atIc = ftBatch.outcomes[s];  // one current per shape
    const auto& peak = ftBatch.outcomes[atIcCount + s];
    shapeTable.addRow(
        {shapes[s].name(), u::fixed(card.rb, 0),
         u::fixed(card.cjc * 1e15, 1),
         atIc.ok() && !atIc.result.has("skipped")
             ? u::formatFrequency(atIc.result.get("ft"))
             : "failed",
         u::fixed(peak.result.get("icPeak") * 1e3, 2) + " mA"});
  }
  shapeTable.print(std::cout);

  // Step 2 batch: one full transient per candidate shape.
  std::cout << "\nStep 2: confirm with transient simulation of the full "
               "oscillator:\n\n";
  bg::RingOscillatorSpec spec;
  spec.tailCurrent = icOperating;
  spec.followerModel = gen.generate("N1.2-6D");
  const auto ringBatch =
      runner.run(rn::ringShapeJobs(gen, shapes, spec, 10.0, 3.0, "sec4"));

  u::Table ringTable({"Shape", "free-running frequency"});
  std::string best;
  double bestF = 0.0;
  for (size_t s = 0; s < shapes.size(); ++s) {
    const auto& out = ringBatch.outcomes[s];
    const bool osc = out.ok() && out.result.get("oscillating") > 0.5;
    const double f = out.result.get("frequency");
    ringTable.addRow(
        {shapes[s].name(), osc ? u::formatFrequency(f) : "no oscillation"});
    if (osc && f > bestF) {
      bestF = f;
      best = shapes[s].name();
    }
  }
  ringTable.print(std::cout);

  std::cout << "\nSelected shape: " << best << " ("
            << u::formatFrequency(bestF) << ")\n"
            << "\"Without this technique, it would have been difficult to "
               "determine the\nshapes of the transistors which best fit "
               "the circuit.\" (Sec. 4)\n";
  return 0;
}
