// Quickstart: a five-minute tour of the library's three pillars.
//
//   1. Behavioural (AHDL) simulation of a small RF chain.
//   2. Transistor-level simulation with the built-in SPICE engine.
//   3. Geometry-aware model-card generation for a transistor shape.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "ahdl/lang.h"
#include "bjtgen/generator.h"
#include "spice/analysis.h"
#include "spice/parser.h"
#include "util/fft.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace ahfic;

  // ---- 1. AHDL: describe a mixer chain behaviourally and simulate ----
  std::cout << "[1] AHDL behavioural simulation\n";
  auto netlist = ahdl::parseAhdl(R"(
    // down-convert a 100 MHz tone with a 145 MHz LO, keep the 45 MHz IF
    signal rf, lo, mixed, ifout;
    instance s1 = sine(freq=100MEG, amp=1) (rf);
    instance s2 = sine(freq=145MEG, amp=1) (lo);
    instance m1 = mixer(gain=2) (rf, lo, mixed);
    instance f1 = lowpass(order=3, fc=80MEG) (mixed, ifout);
    probe ifout;
    run tstop=2u, fs=2G, record_from=0.5u;
  )");
  const auto res = netlist.run();
  const double ifAmp =
      util::toneAmplitude(res.trace("ifout"), 2e9, 45e6);
  std::cout << "    IF tone at 45 MHz: amplitude "
            << util::fixed(ifAmp, 3) << " (expected ~1.0)\n\n";

  // ---- 2. SPICE: simulate a transistor amplifier ----
  std::cout << "[2] Transistor-level simulation (built-in SPICE engine)\n";
  auto deck = spice::parseDeck(R"(common-emitter stage
.MODEL n1 NPN(IS=1e-16 BF=110 VAF=45 CJE=12f CJC=15f TF=12p RB=200)
VCC vcc 0 8
VIN in 0 DC 1.8 AC 1
RC vcc out 1k
Q1 out in e n1
RE e 0 200
)");
  spice::Analyzer an(deck.circuit);
  const auto op = an.op();
  const auto ac = an.ac({1e6}, op);
  const int outNode = deck.circuit.findNode("out");
  std::cout << "    small-signal gain at 1 MHz: "
            << util::fixed(std::abs(ac.voltage(0, outNode)), 2)
            << "x (inverting)\n\n";

  // ---- 3. bjtgen: generate a model card for a transistor shape ----
  std::cout << "[3] Geometry-aware model parameter generation\n";
  const auto gen = bjtgen::ModelGenerator::withDefaultTechnology();
  const auto shape = bjtgen::TransistorShape::fromName("N1.2-12D");
  std::cout << "    " << gen.generateSpiceLine(shape) << "\n";
  std::cout << "    (vs a plain SPICE area factor of "
            << util::fixed(gen.areaFactor(shape), 2)
            << " on the reference card)\n";
  return 0;
}
