// A batch SPICE runner: parse one or more decks, run their
// .OP/.DC/.AC/.TRAN cards, print listing-style results. The seventh
// runnable example, and a handy standalone tool for poking at the
// simulator.
//
// Usage:
//   ./spice_cli [--jobs N] [--trace FILE] [--metrics FILE]
//               [--lint] [--lint-json FILE]
//               [--diag FILE] [--explain] [deck.sp ...]
// With no deck a built-in demo deck (the Fig. 11-style ECL gate) runs.
// Several decks are executed as one batch through the job engine — N
// worker threads (default: hardware concurrency), each deck's listing
// captured and printed in argument order, a parse/convergence failure in
// one deck never aborting the others. Every deck is statically linted
// before it is simulated; decks with lint errors are rejected without
// touching the solver. `--lint` stops after the lint stage (exit 1 on
// any error) and `--lint-json FILE` additionally writes the merged
// "ahfic-lint-v1" report.
//
// Convergence forensics: `--diag FILE` enables per-iteration telemetry
// and writes every convergence-failure report ("ahfic-diag-v1") to FILE;
// `--explain` prints the same reports human-readably on stderr. Both
// flags work for single decks and batches.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "lint/netlist.h"
#include "obs/cli.h"
#include "runner/engine.h"
#include "spice/forensics.h"
#include "spice/rundeck.h"
#include "util/json.h"

namespace rn = ahfic::runner;
namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

const char* kDemoDeck = R"(ECL gate demo (one ring-oscillator stage)
.MODEL n1 NPN(IS=1e-16 BF=110 VAF=45 RB=120 RE=3 RC=20 CJE=20f CJC=25f TF=12p)
VCC vcc 0 5
VIN inp 0 DC 3.8 AC 1
VREF inn 0 DC 3.8

.SUBCKT eclstage inp inn outp outn vcc
RC1 vcc c1 170
RC2 vcc c2 170
Q1 c1 inp e n1
Q2 c2 inn e n1
IT e 0 3m
Q3 vcc c1 outn n1
Q4 vcc c2 outp n1
RF1 outn 0 1.5k
RF2 outp 0 1.5k
.ENDS

X1 inp inn outp outn vcc eclstage

.OP
.DC VIN 3.3 4.3 0.05
.AC DEC 6 1MEG 20G
.END
)";

/// Writes the collected failure reports as one "ahfic-diag-v1" envelope.
/// Returns false (after printing to stderr) when FILE cannot be written.
bool writeDiagFile(const std::string& path,
                   const std::vector<sp::DiagReport>& reports) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write '" << path << "'\n";
    return false;
  }
  out << sp::diagEnvelope(reports).dump(2) << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;
  bool lintOnly = false;
  bool explain = false;
  std::string lintJsonPath;
  std::string diagPath;
  ahfic::obs::CliOptions obsOpts;
  std::vector<std::string> deckPaths;
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--jobs") == 0 && k + 1 < argc)
      jobs = std::atoi(argv[++k]);
    else if (std::strcmp(argv[k], "--lint") == 0)
      lintOnly = true;
    else if (std::strcmp(argv[k], "--lint-json") == 0 && k + 1 < argc) {
      lintOnly = true;
      lintJsonPath = argv[++k];
    } else if (std::strcmp(argv[k], "--diag") == 0 && k + 1 < argc)
      diagPath = argv[++k];
    else if (std::strcmp(argv[k], "--explain") == 0)
      explain = true;
    else {
      deckPaths.emplace_back(argv[k]);
    }
  }
  const bool wantDiag = !diagPath.empty() || explain;
  obsOpts.begin();

  std::vector<std::pair<std::string, std::string>> decks;  // label, text
  for (const std::string& path : deckPaths) {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "cannot open '" << path << "'\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    decks.emplace_back(path, ss.str());
  }
  if (decks.empty()) {
    std::cout << "(no deck given; running the built-in ECL-stage demo)\n\n";
    decks.emplace_back("<demo>", kDemoDeck);
  }

  if (lintOnly) {
    // Static analysis only: no deck is ever simulated.
    ahfic::lint::LintReport merged;
    for (const auto& [label, text] : decks)
      merged.merge(ahfic::lint::lintDeckText(text), label);
    if (!merged.empty()) std::cout << merged.renderText();
    std::cout << "[lint] " << decks.size() << " deck(s): "
              << merged.count(ahfic::lint::Severity::kError) << " error(s), "
              << merged.count(ahfic::lint::Severity::kWarning)
              << " warning(s)\n";
    if (!lintJsonPath.empty()) {
      std::ofstream out(lintJsonPath);
      if (!out) {
        std::cerr << "cannot write '" << lintJsonPath << "'\n";
        return 1;
      }
      out << merged.toJsonString() << "\n";
    }
    obsOpts.finish(std::cout);
    return merged.hasErrors() ? 1 : 0;
  }

  if (decks.size() == 1) {
    // Single deck: stream directly, exactly the classic behaviour.
    sp::RunDeckOptions rdOpts;
    rdOpts.analysis.forensics = wantDiag;
    try {
      auto deck = sp::parseDeck(decks[0].second);
      sp::runDeck(deck, std::cout, rdOpts);
    } catch (const ahfic::ConvergenceError& e) {
      std::cerr << "error: " << e.what() << "\n";
      std::vector<sp::DiagReport> reports;
      if (e.diag() != nullptr) {
        try {
          reports.push_back(sp::DiagReport::fromJson(u::parseJson(*e.diag())));
        } catch (const ahfic::Error&) {
        }
      }
      if (explain)
        for (const sp::DiagReport& r : reports) std::cerr << r.renderText();
      if (!diagPath.empty() && !writeDiagFile(diagPath, reports)) return 2;
      return 1;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    if (!diagPath.empty() && !writeDiagFile(diagPath, {})) return 2;
    obsOpts.finish(std::cout);
    return 0;
  }

  // Multiple decks: one job per deck. Each job renders its listing into
  // its own slot; the engine guarantees a failed deck is reported in the
  // manifest instead of killing the batch.
  std::vector<std::string> listings(decks.size());
  std::vector<rn::Job> batchJobs;
  for (size_t k = 0; k < decks.size(); ++k) {
    rn::Job job;
    job.key = "deck/" + decks[k].first;
    job.preflight = [&decks, k] {
      return ahfic::lint::lintDeckText(decks[k].second);
    };
    job.run = [&listings, &decks, k](rn::JobContext& ctx) {
      std::ostringstream out;
      auto deck = sp::parseDeck(decks[k].second);
      // The engine's retry ladder (and --diag forensics) arrive through
      // the per-attempt analysis options.
      sp::RunDeckOptions rdOpts;
      rdOpts.analysis = ctx.options;
      sp::runDeck(deck, out, rdOpts);
      listings[k] = out.str();
      return rn::JobResult{};
    };
    batchJobs.push_back(std::move(job));
  }

  rn::RunnerOptions ropts;
  ropts.threads = jobs;
  ropts.useCache = false;  // listings are text, not cacheable metrics
  rn::BatchRunner runner(ropts);
  const auto batch = runner.run(batchJobs);

  int failures = 0;
  std::vector<sp::DiagReport> reports;
  for (size_t k = 0; k < decks.size(); ++k) {
    std::cout << "===== " << decks[k].first << " =====\n";
    const auto& out = batch.outcomes[k];
    if (out.ok()) {
      std::cout << listings[k];
      if (out.record.status == rn::JobStatus::kRecovered)
        std::cout << "(recovered on retry rung '" << out.record.rungName
                  << "')\n";
    } else if (out.record.status == rn::JobStatus::kRejected) {
      ++failures;
      std::cout << "rejected by pre-flight lint: " << out.record.error
                << "\n";
    } else {
      ++failures;
      std::cout << "error: " << out.record.error << "\n";
    }
    // Collect the per-attempt diag attachments the engine recorded.
    if (wantDiag && out.record.diags.isArray()) {
      for (size_t d = 0; d < out.record.diags.size(); ++d) {
        try {
          reports.push_back(
              sp::DiagReport::fromJson(out.record.diags.at(d).get("report")));
        } catch (const ahfic::Error&) {
        }
      }
    }
    std::cout << "\n";
  }
  if (explain)
    for (const sp::DiagReport& r : reports) std::cerr << r.renderText();
  if (!diagPath.empty() && !writeDiagFile(diagPath, reports)) return 2;
  std::cout << "[runner] " << decks.size() << " deck(s) on "
            << batch.manifest.threads << " thread(s), " << failures
            << " failed\n";
  obsOpts.finish(std::cout);
  return failures == 0 ? 0 : 1;
}
