// A batch SPICE runner: parse a deck, run its .OP/.DC/.AC/.TRAN cards,
// print listing-style results. The seventh runnable example, and a handy
// standalone tool for poking at the simulator.
//
// Usage:
//   ./spice_cli [deck.sp]
// With no argument a built-in demo deck (the Fig. 11-style ECL gate) runs.

#include <fstream>
#include <iostream>
#include <sstream>

#include "spice/rundeck.h"

namespace {

const char* kDemoDeck = R"(ECL gate demo (one ring-oscillator stage)
.MODEL n1 NPN(IS=1e-16 BF=110 VAF=45 RB=120 RE=3 RC=20 CJE=20f CJC=25f TF=12p)
VCC vcc 0 5
VIN inp 0 DC 3.8 AC 1
VREF inn 0 DC 3.8

.SUBCKT eclstage inp inn outp outn vcc
RC1 vcc c1 170
RC2 vcc c2 170
Q1 c1 inp e n1
Q2 c2 inn e n1
IT e 0 3m
Q3 vcc c1 outn n1
Q4 vcc c2 outp n1
RF1 outn 0 1.5k
RF2 outp 0 1.5k
.ENDS

X1 inp inn outp outn vcc eclstage

.OP
.DC VIN 3.3 4.3 0.05
.AC DEC 6 1MEG 20G
.END
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::cerr << "cannot open '" << argv[1] << "'\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  } else {
    std::cout << "(no deck given; running the built-in ECL-stage demo)\n\n";
    text = kDemoDeck;
  }

  try {
    auto deck = ahfic::spice::parseDeck(text);
    ahfic::spice::runDeck(deck, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
