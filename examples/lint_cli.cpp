// Standalone static analyzer: lints SPICE decks and AHDL netlists
// without ever running a solver.
//
// Usage:
//   ./lint_cli [--json FILE] [--quiet] [--diag FILE] [--explain]
//              [file.sp file.ahdl ...]
// Files ending in ".ahdl" go through the AHDL analyzers; everything else
// is treated as a SPICE deck. Diagnostics print in compiler style, one
// per line; `--json FILE` writes the merged "ahfic-lint-v1" document.
// `--diag FILE` loads and validates an "ahfic-diag-v1" convergence
// forensics report (as written by spice_cli --diag or the batch runner);
// with `--explain` each report is rendered human-readably. Exit status:
// 0 when no file has errors, 1 otherwise, 2 on usage or I/O problems.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/ahdl.h"
#include "lint/netlist.h"
#include "spice/forensics.h"
#include "util/error.h"
#include "util/json.h"

namespace {

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  std::string diagPath;
  bool quiet = false;
  bool explain = false;
  std::vector<std::string> paths;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc)
      jsonPath = argv[++k];
    else if (std::strcmp(argv[k], "--diag") == 0 && k + 1 < argc)
      diagPath = argv[++k];
    else if (std::strcmp(argv[k], "--explain") == 0)
      explain = true;
    else if (std::strcmp(argv[k], "--quiet") == 0)
      quiet = true;
    else if (argv[k][0] == '-') {
      std::cerr << "unknown option '" << argv[k] << "'\n";
      return 2;
    } else {
      paths.emplace_back(argv[k]);
    }
  }
  if (paths.empty() && diagPath.empty()) {
    std::cerr << "usage: lint_cli [--json FILE] [--quiet] "
                 "[--diag FILE] [--explain] file.sp [file.ahdl ...]\n";
    return 2;
  }

  if (!diagPath.empty()) {
    // Validate (and optionally explain) a convergence forensics report.
    std::ifstream f(diagPath);
    if (!f) {
      std::cerr << "cannot open '" << diagPath << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::vector<ahfic::spice::DiagReport> reports;
    try {
      reports =
          ahfic::spice::diagReportsFromJson(ahfic::util::parseJson(ss.str()));
    } catch (const ahfic::Error& e) {
      std::cerr << diagPath << ": invalid ahfic-diag-v1 document: "
                << e.what() << "\n";
      return 2;
    }
    if (!quiet)
      std::cout << "[diag] " << diagPath << ": " << reports.size()
                << " valid ahfic-diag-v1 report(s)\n";
    if (explain)
      for (const auto& r : reports) std::cout << r.renderText();
    if (paths.empty()) return 0;
  }

  ahfic::lint::LintReport merged;
  for (const std::string& path : paths) {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    const ahfic::lint::LintReport report =
        endsWith(path, ".ahdl") ? ahfic::lint::lintAhdlText(ss.str())
                                : ahfic::lint::lintDeckText(ss.str());
    merged.merge(report, path);
  }

  if (!quiet && !merged.empty()) std::cout << merged.renderText();
  if (!quiet)
    std::cout << "[lint] " << paths.size() << " file(s): "
              << merged.count(ahfic::lint::Severity::kError)
              << " error(s), "
              << merged.count(ahfic::lint::Severity::kWarning)
              << " warning(s), "
              << merged.count(ahfic::lint::Severity::kInfo) << " info\n";

  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write '" << jsonPath << "'\n";
      return 2;
    }
    out << merged.toJsonString() << "\n";
  }
  return merged.hasErrors() ? 1 : 0;
}
