// ahfic_client — a minimal command-line client for ahficd, used by the
// CI smoke job and handy for manual poking. POSIX sockets only, one
// request per connection (matching the server's Connection: close).
//
// Usage:
//   ./ahfic_client [--host H] [--port N] COMMAND ...
//
// Commands:
//   health                      GET /healthz
//   metrics                     GET /v1/metrics
//   submit DECK.sp [--wait] [--no-preflight] [--label L]
//                               POST /v1/jobs with the deck text; with
//                               --wait, polls the job until done and
//                               prints the final envelope
//   workload NAME [--wait]      POST /v1/jobs {"workload": NAME}
//   job ID                      GET /v1/jobs/ID
//   get PATH                    GET arbitrary path (e.g. /celldb)
//   post PATH FILE              POST FILE's bytes as application/json
//   watch [--interval S]        poll GET /v1/metrics/history and
//                               GET /v1/metrics, printing a one-line
//                               digest (queue depth, jobs/s, cache hit
//                               rate, Newton iters p99, device-eval
//                               share of Newton wall time) every S
//                               seconds (default 2) until Ctrl-C
//
// Exit codes: 0 on 2xx, 9 on 429 (backpressure — scriptable retry),
// 4 on other 4xx, 5 on 5xx, 2 on usage/transport errors. The response
// body always goes to stdout.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace u = ahfic::util;

namespace {

struct Reply {
  int status = 0;  // 0 = transport failure
  std::string body;
};

/// One HTTP exchange: connect, send, read to EOF, split off the body.
Reply exchange(const std::string& host, int port, const std::string& method,
               const std::string& path, const std::string& body) {
  Reply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return reply;
  }

  std::ostringstream req;
  req << method << " " << path << " HTTP/1.1\r\n"
      << "Host: " << host << "\r\n"
      << "Connection: close\r\n";
  if (!body.empty())
    req << "Content-Type: application/json\r\n"
        << "Content-Length: " << body.size() << "\r\n";
  req << "\r\n" << body;
  const std::string wire = req.str();

  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    off += static_cast<size_t>(n);
  }

  std::string raw;
  char chunk[8192];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    raw.append(chunk, static_cast<size_t>(n));
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...\r\n\r\nbody"
  if (raw.size() < 12 || raw.compare(0, 5, "HTTP/") != 0) return reply;
  reply.status = std::atoi(raw.c_str() + raw.find(' ') + 1);
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) reply.body = raw.substr(split + 4);
  return reply;
}

int exitCode(const Reply& r) {
  if (r.status == 0) {
    std::cerr << "transport error (is ahficd running?)\n";
    return 2;
  }
  if (r.status < 300) return 0;
  if (r.status == 429) return 9;
  if (r.status < 500) return 4;
  return 5;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Polls GET /v1/jobs/<id> until state == "done" (or too many errors).
Reply waitForJob(const std::string& host, int port, const std::string& id) {
  for (int attempt = 0; attempt < 600; ++attempt) {
    Reply r = exchange(host, port, "GET", "/v1/jobs/" + id, "");
    if (r.status != 200) return r;
    try {
      if (u::parseJson(r.body).get("state").asString() == "done") return r;
    } catch (const ahfic::Error&) {
      return r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cerr << "job '" << id << "' did not finish in time\n";
  return Reply{};
}

volatile std::sig_atomic_t gWatchStop = 0;
void onWatchSignal(int) { gWatchStop = 1; }

/// Reconstructs a counter series from the delta-compressed wire form
/// {"first": v0, "deltas": [...]} (docs/observability.md).
std::vector<double> counterSeries(const u::JsonValue& wire) {
  std::vector<double> out;
  if (!wire.isObject() || !wire.has("first")) return out;
  double v = wire.get("first").asNumber();
  out.push_back(v);
  const u::JsonValue& deltas = wire.get("deltas");
  for (size_t i = 0; deltas.isArray() && i < deltas.size(); ++i) {
    v += deltas.at(i).asNumber();
    out.push_back(v);
  }
  return out;
}

/// Field of a named histogram in an "ahfic-metrics-v1" snapshot
/// ({"histograms": {"<name>": {"p99": ..., "sum": ...}}}); 0 when the
/// histogram has not been registered yet.
double histField(const u::JsonValue& snap, const std::string& name,
                 const char* field) {
  if (!snap.isObject() || !snap.has("histograms")) return 0.0;
  const u::JsonValue& hs = snap.get("histograms");
  if (!hs.isObject() || !hs.has(name)) return 0.0;
  const u::JsonValue& h = hs.get(name);
  if (!h.isObject() || !h.has(field)) return 0.0;
  return h.get(field).asNumber();
}

/// `watch`: poll /v1/metrics/history and print one digest line per poll.
int watchLoop(const std::string& host, int port, double intervalSec) {
  std::signal(SIGINT, onWatchSignal);
  std::signal(SIGTERM, onWatchSignal);
  // Ask for a window just wide enough for a rate over the last few
  // samples; the daemon trims server-side so the reply stays small.
  const long windowSec =
      std::lround(std::max(intervalSec, 1.0) * 10.0) + 30;
  bool first = true;
  // Previous poll's histogram sums, for the device-eval share over the
  // *last interval* (cumulative shares go stale on a long-lived daemon).
  double prevDevNs = 0.0, prevWallNs = 0.0, lastSharePct = 0.0;
  bool havePrev = false;
  while (!gWatchStop) {
    Reply r = exchange(host, port, "GET",
                       "/v1/metrics/history?window=" +
                           std::to_string(windowSec), "");
    if (r.status != 200) {
      std::cerr << "watch: history request failed (status " << r.status
                << (r.status == 503 ? "; daemon has no history sampler" : "")
                << ")\n";
      return exitCode(r);
    }
    try {
      const u::JsonValue doc = u::parseJson(r.body);
      const u::JsonValue& t = doc.get("t");
      const size_t n = t.isArray() ? t.size() : 0;
      const std::vector<double> completed =
          counterSeries(doc.get("counters").get("serve.jobs_completed"));
      const std::vector<double> hits =
          counterSeries(doc.get("counters").get("runner.cache_hits"));
      const std::vector<double> misses =
          counterSeries(doc.get("counters").get("runner.cache_misses"));
      double queued = 0.0;
      const u::JsonValue& qd = doc.get("gauges").get("serve.queue_depth");
      if (qd.isArray() && qd.size() > 0) queued = qd.at(qd.size() - 1).asNumber();

      double jobsPerSec = 0.0;
      if (n >= 2 && completed.size() == n) {
        const double dt = t.at(n - 1).asNumber() - t.at(0).asNumber();
        if (dt > 0) jobsPerSec = (completed.back() - completed.front()) / dt;
      }
      double hitPct = 0.0;
      if (!hits.empty() && !misses.empty()) {
        const double total = hits.back() + misses.back();
        if (total > 0) hitPct = 100.0 * hits.back() / total;
      }

      // Solver health straight from the live snapshot: the Newton
      // iteration tail and how much of the Newton wall time went into
      // device-model evaluation over the last poll interval.
      double newtonP99 = 0.0;
      Reply m = exchange(host, port, "GET", "/v1/metrics", "");
      if (m.status == 200) {
        const u::JsonValue snap = u::parseJson(m.body);
        newtonP99 = histField(snap, "spice.newton.iterations", "p99");
        const double devNs =
            histField(snap, "spice.newton.device_eval_ns", "sum");
        const double wallNs =
            histField(snap, "spice.newton.wall_ns", "sum");
        if (havePrev && wallNs - prevWallNs > 0.0)
          lastSharePct = 100.0 * (devNs - prevDevNs) / (wallNs - prevWallNs);
        else if (!havePrev && wallNs > 0.0)
          lastSharePct = 100.0 * devNs / wallNs;
        prevDevNs = devNs;
        prevWallNs = wallNs;
        havePrev = true;
      }
      if (first) {
        std::printf("%8s %8s %10s %9s %10s %8s\n", "samples", "queued",
                    "jobs/s", "cacheHit", "newtonP99", "devEval");
        first = false;
      }
      std::printf("%8zu %8.0f %10.2f %8.1f%% %10.1f %7.1f%%\n", n, queued,
                  jobsPerSec, hitPct, newtonP99, lastSharePct);
      std::fflush(stdout);
    } catch (const ahfic::Error& e) {
      std::cerr << "watch: unparseable history reply: " << e.what() << "\n";
      return 2;
    }
    // Sleep in short slices so Ctrl-C lands promptly.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(intervalSec);
    while (!gWatchStop && std::chrono::steady_clock::now() < until)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "watch: stopped\n";
  return 0;
}

int submitAndMaybeWait(const std::string& host, int port,
                       const u::JsonValue& doc, bool wait) {
  Reply r = exchange(host, port, "POST", "/v1/jobs", doc.dump());
  if (r.status != 202 || !wait) {
    std::cout << r.body;
    return exitCode(r);
  }
  std::string id;
  try {
    id = u::parseJson(r.body).get("id").asString();
  } catch (const ahfic::Error& e) {
    std::cerr << "unparseable submission reply: " << e.what() << "\n";
    return 2;
  }
  Reply done = waitForJob(host, port, id);
  std::cout << done.body;
  return exitCode(done);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 8078;
  int k = 1;
  for (; k < argc; ++k) {
    if (std::strcmp(argv[k], "--host") == 0 && k + 1 < argc)
      host = argv[++k];
    else if (std::strcmp(argv[k], "--port") == 0 && k + 1 < argc)
      port = std::atoi(argv[++k]);
    else
      break;
  }
  if (k >= argc) {
    std::cerr << "usage: ahfic_client [--host H] [--port N] "
                 "health|metrics|submit|workload|job|get|post|watch ...\n";
    return 2;
  }
  const std::string cmd = argv[k++];

  if (cmd == "health" || cmd == "metrics") {
    const std::string path = cmd == "health" ? "/healthz" : "/v1/metrics";
    Reply r = exchange(host, port, "GET", path, "");
    std::cout << r.body;
    return exitCode(r);
  }

  if (cmd == "submit" || cmd == "workload") {
    if (k >= argc) {
      std::cerr << cmd << " needs an argument\n";
      return 2;
    }
    const std::string arg = argv[k++];
    bool wait = false;
    bool preflight = true;
    std::string label;
    for (; k < argc; ++k) {
      if (std::strcmp(argv[k], "--wait") == 0)
        wait = true;
      else if (std::strcmp(argv[k], "--no-preflight") == 0)
        preflight = false;
      else if (std::strcmp(argv[k], "--label") == 0 && k + 1 < argc)
        label = argv[++k];
      else {
        std::cerr << "unknown flag '" << argv[k] << "'\n";
        return 2;
      }
    }
    u::JsonValue doc = u::JsonValue::object();
    if (cmd == "submit")
      doc.set("deck", readFile(arg));
    else
      doc.set("workload", arg);
    if (!preflight) doc.set("preflight", false);
    if (!label.empty()) doc.set("label", label);
    return submitAndMaybeWait(host, port, doc, wait);
  }

  if (cmd == "job") {
    if (k >= argc) {
      std::cerr << "job needs an id\n";
      return 2;
    }
    Reply r = exchange(host, port, "GET", std::string("/v1/jobs/") + argv[k],
                       "");
    std::cout << r.body;
    return exitCode(r);
  }

  if (cmd == "get") {
    if (k >= argc) {
      std::cerr << "get needs a path\n";
      return 2;
    }
    Reply r = exchange(host, port, "GET", argv[k], "");
    std::cout << r.body;
    return exitCode(r);
  }

  if (cmd == "watch") {
    double interval = 2.0;
    for (; k < argc; ++k) {
      if (std::strcmp(argv[k], "--interval") == 0 && k + 1 < argc)
        interval = std::atof(argv[++k]);
      else {
        std::cerr << "unknown flag '" << argv[k] << "'\n";
        return 2;
      }
    }
    if (interval <= 0) interval = 2.0;
    return watchLoop(host, port, interval);
  }

  if (cmd == "post") {
    if (k + 1 >= argc) {
      std::cerr << "post needs a path and a file\n";
      return 2;
    }
    Reply r = exchange(host, port, "POST", argv[k], readFile(argv[k + 1]));
    std::cout << r.body;
    return exitCode(r);
  }

  std::cerr << "unknown command '" << cmd << "'\n";
  return 2;
}
