// Distortion analysis of a tuner gain stage — "distortion, noise and
// image signal are main concerns in circuit design" (paper Sec. 2.2).
//
// A two-tone test characterises a compressive IF amplifier, checks the
// 3:1 IM3 slope, extrapolates OIP3, and then demonstrates the classic
// cascade trade-off: adding a second gain stage raises gain but degrades
// linearity in dBc.

#include <iostream>

#include "ahdl/blocks.h"
#include "tuner/distortion.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/units.h"

namespace tn = ahfic::tuner;
namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

int main() {
  const double gain = 4.0, vsat = 1.0;

  std::cout << "== Two-tone IM3 sweep of the IF amplifier ==\n"
            << "(gain " << gain << "x, tanh compression at " << vsat
            << " V; tones at 44/46 MHz)\n\n";

  u::Table sweep({"input [dBV]", "fund [dBV]", "IM3 [dBV]", "IM3 [dBc]",
                  "theory IM3 [dBV]"});
  tn::TwoToneSpec spec;
  for (double amp : {0.01, 0.02, 0.04, 0.08}) {
    spec.inputAmplitude = amp;
    const auto r = tn::twoToneTestAmplifier(gain, vsat, spec);
    sweep.addRow({u::fixed(u::toDb(amp), 1),
                  u::fixed(u::toDb(r.fundamental), 1),
                  u::fixed(u::toDb(r.im3Low), 1),
                  u::fixed(r.im3Dbc(), 1),
                  u::fixed(u::toDb(tn::tanhIm3Theory(gain, vsat, amp)), 1)});
  }
  sweep.print(std::cout);
  std::cout << "\n(IM3 rises 3 dB per input dB — the defining third-order "
               "slope.)\n";

  spec.inputAmplitude = 0.02;
  const auto r = tn::twoToneTestAmplifier(gain, vsat, spec);
  std::cout << "\nExtrapolated OIP3: "
            << u::fixed(u::toDb(r.oip3Amplitude()), 1) << " dBV\n";

  std::cout << "\n== Cascade trade-off ==\n";
  const auto two = tn::twoToneTest(
      [&](ah::System& sys, const std::string& in, const std::string& out) {
        sys.add<ah::Amplifier>({in}, {"mid"}, "stage1", gain / 2, vsat);
        sys.add<ah::Amplifier>({"mid"}, {out}, "stage2", 2.0, vsat);
      },
      spec);
  u::Table cmp({"chain", "gain", "IM3 [dBc]"});
  cmp.addRow({"single stage", u::fixed(r.fundamental / spec.inputAmplitude, 2) + "x",
              u::fixed(r.im3Dbc(), 1)});
  cmp.addRow({"two-stage cascade",
              u::fixed(two.fundamental / spec.inputAmplitude, 2) + "x",
              u::fixed(two.im3Dbc(), 1)});
  cmp.print(std::cout);
  std::cout << "\nThe behavioural sweep hands the designer the same "
               "spec-budgeting data for\ndistortion that Fig. 5 provides "
               "for image rejection.\n";
  return 0;
}
