// Runs an AHDL netlist file — the textual front-end a circuit designer
// (rather than a programmer) would use, per the paper's Sec. 2/3
// discussion of designers without "good programming skill".
//
// Usage:
//   ./ahdl_netlist [file.ahdl]
// With no argument a built-in image-rejection demo netlist is run.

#include <fstream>
#include <iostream>
#include <sstream>

#include "ahdl/lang.h"
#include "util/fft.h"
#include "util/numeric.h"
#include "util/plot.h"
#include "util/table.h"
#include "util/units.h"

namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

namespace {

// A self-contained image-rejection down-converter at the 2nd IF,
// including the paper-style module syntax.
const char* kDemoNetlist = R"(
// Image-rejection down-converter demo.
// Wanted tone above the LO, image tone below; the combiner keeps the
// wanted and cancels the image.

parameter real fdown  = 200MEG;
parameter real fif    = 45MEG;
parameter real phierr = 2;      // quadrature phase error [deg]
parameter real gerr   = 0.03;   // gain imbalance (3%)

module balance (in, out) {
  parameter real imbalance = 0;
  analog { V(out) <- (1 + imbalance) * V(in); }
}

signal rfin, wanted, image;
instance sw = sine(freq=245MEG, amp=1) (wanted);   // fdown + fif
instance si = sine(freq=155MEG, amp=1) (image);    // fdown - fif
instance sum = adder2() (wanted, image, rfin);

signal loi, loq;
instance vco = quadlo(freq=200MEG, amp=1, phase_error=phierr) (loi, loq);

signal mi, mq, pi, pq, pqb, shifted, ifout;
instance mx1 = mixer(gain=2) (rfin, loi, mi);
instance mx2 = mixer(gain=2) (rfin, loq, mq);
instance lp1 = lowpass(order=3, fc=180MEG) (mi, pi);
instance lp2 = lowpass(order=3, fc=180MEG) (mq, pq);
instance bal = balance(imbalance=gerr) (pq, pqb);
instance ps  = phase90(fc=45MEG) (pi, shifted);
instance cmb = subtract() (shifted, pqb, ifout);

probe ifout;
run tstop=3u, fs=4G, record_from=1u;
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::cerr << "cannot open '" << argv[1] << "'\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
    std::cout << "Running " << argv[1] << "\n";
  } else {
    text = kDemoNetlist;
    std::cout << "Running the built-in image-rejection demo netlist\n";
  }

  try {
    auto netlist = ah::parseAhdl(text);
    if (!netlist.runSpec.has_value()) {
      std::cerr << "netlist has no 'run' statement\n";
      return 1;
    }
    const auto res = netlist.run();
    std::cout << "Simulated " << res.time.size() << " recorded samples at "
              << u::formatFrequency(res.sampleRate) << " sample rate.\n\n";
    for (const auto& probe : netlist.probes) {
      const auto& tr = res.trace(probe);
      double lo = tr[0], hi = tr[0];
      for (double v : tr) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      std::cout << "probe " << probe << ": range [" << u::fixed(lo, 3)
                << ", " << u::fixed(hi, 3) << "]";
      // Report the strongest tones.
      const auto spec = u::amplitudeSpectrum(tr, res.sampleRate);
      const auto peaks = u::findPeaks(spec, 3, 0.01);
      for (const auto& p : peaks)
        std::cout << "  " << u::formatFrequency(p.frequency) << " @ "
                  << u::fixed(u::toDb(p.amplitude), 1) << " dB";
      std::cout << "\n";
    }
    // Waveform sketch of the first probe.
    if (!netlist.probes.empty()) {
      u::PlotOptions popt;
      popt.xLabel = "t [s]";
      popt.yLabel = netlist.probes.front();
      std::cout << "\n"
                << u::asciiChart(res.time, res.trace(netlist.probes.front()),
                                 popt);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
