// ahficd — the simulation-as-a-service daemon.
//
// Binds a dependency-free HTTP/1.1 server (src/serve) over a persistent
// runner::Session and a live cell database, then waits for SIGINT /
// SIGTERM. On a signal the job service drains (queued and running jobs
// finish, bounded by --drain-timeout), the HTTP server stops, and the
// process exits 0.
//
// Usage:
//   ./ahficd [--port N] [--workers N] [--queue-depth N]
//            [--connections N] [--celldb PATH] [--seed-celldb]
//            [--metrics-interval SEC] [--drain-timeout SEC]
//            [--trace FILE] [--metrics FILE]
//
//   --port N              listen port (default 8078; 0 = ephemeral)
//   --workers N           job-execution threads (default 2)
//   --queue-depth N       admission-queue bound; overflow -> 429
//   --connections N       HTTP connection threads (default 4)
//   --celldb PATH         load the cell database from PATH at startup
//                         and save it back on clean shutdown
//   --seed-celldb         pre-populate the example cell library
//   --metrics-interval S  log a one-line metrics digest every S seconds
//                         to stderr (0 = off, the default)
//   --drain-timeout S     max seconds to wait for in-flight jobs on
//                         shutdown (default 120)
//
// Endpoints and schemas: docs/serve.md. Quick check:
//   curl -s localhost:8078/healthz

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "celldb/database.h"
#include "celldb/seed.h"
#include "obs/cli.h"
#include "obs/metrics.h"
#include "serve/api.h"
#include "serve/server.h"
#include "util/error.h"

namespace sv = ahfic::serve;

namespace {

int intArg(int argc, char** argv, int& k, const char* flag) {
  if (k + 1 >= argc) {
    std::cerr << flag << " needs a value\n";
    std::exit(2);
  }
  return std::atoi(argv[++k]);
}

/// One-line digest of the live registry for --metrics-interval logging.
void logDigest() {
  const auto snap = ahfic::obs::metrics().snapshot();
  double requests = 0, submitted = 0, completed = 0, hits = 0, queued = 0;
  for (const auto& [name, value] : snap.counters) {
    const double v = static_cast<double>(value);
    if (name == "serve.requests") requests = v;
    if (name == "serve.jobs_submitted") submitted = v;
    if (name == "serve.jobs_completed") completed = v;
    if (name == "runner.cache_hits") hits = v;
  }
  for (const auto& [name, value] : snap.gauges)
    if (name == "serve.queue_depth") queued = value;
  std::cerr << "[ahficd] requests=" << requests << " submitted=" << submitted
            << " completed=" << completed << " cache_hits=" << hits
            << " queued=" << queued << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  sv::ServerOptions serverOpts;
  serverOpts.port = 8078;
  sv::JobServiceOptions jobOpts;
  std::string celldbPath;
  bool seedCelldb = false;
  int metricsInterval = 0;
  int drainTimeoutSec = 120;
  ahfic::obs::CliOptions obsOpts;

  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--port") == 0)
      serverOpts.port = intArg(argc, argv, k, "--port");
    else if (std::strcmp(argv[k], "--workers") == 0)
      jobOpts.workers = intArg(argc, argv, k, "--workers");
    else if (std::strcmp(argv[k], "--queue-depth") == 0)
      jobOpts.queueDepth = intArg(argc, argv, k, "--queue-depth");
    else if (std::strcmp(argv[k], "--connections") == 0)
      serverOpts.connectionThreads = intArg(argc, argv, k, "--connections");
    else if (std::strcmp(argv[k], "--celldb") == 0 && k + 1 < argc)
      celldbPath = argv[++k];
    else if (std::strcmp(argv[k], "--seed-celldb") == 0)
      seedCelldb = true;
    else if (std::strcmp(argv[k], "--metrics-interval") == 0)
      metricsInterval = intArg(argc, argv, k, "--metrics-interval");
    else if (std::strcmp(argv[k], "--drain-timeout") == 0)
      drainTimeoutSec = intArg(argc, argv, k, "--drain-timeout");
    else {
      std::cerr << "unknown flag '" << argv[k] << "'\n";
      return 2;
    }
  }

  // The daemon always runs with live metrics: /v1/metrics is an endpoint.
  ahfic::obs::setMetricsEnabled(true);
  obsOpts.begin();

  // Block the termination signals in every thread *before* any thread is
  // spawned, so only the sigwait below ever sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    ahfic::celldb::CellDatabase db;
    if (!celldbPath.empty()) db = ahfic::celldb::CellDatabase::load(celldbPath);
    if (seedCelldb) ahfic::celldb::seedExampleLibrary(db);
    std::mutex dbMutex;

    ahfic::runner::Session session;
    sv::JobService jobs(session, jobOpts);

    sv::ApiContext ctx;
    ctx.jobs = &jobs;
    ctx.db = &db;
    ctx.dbMutex = &dbMutex;

    sv::HttpServer server(sv::buildApiRouter(ctx), serverOpts);
    server.start();
    std::cerr << "[ahficd] listening on " << serverOpts.bindAddress << ":"
              << server.port() << " (" << jobOpts.workers << " job worker(s), "
              << "queue depth " << jobOpts.queueDepth << ", " << db.size()
              << " cell(s))\n";

    std::thread digest;
    std::atomic<bool> digestStop{false};
    if (metricsInterval > 0)
      digest = std::thread([metricsInterval, &digestStop] {
        int elapsed = 0;
        while (!digestStop.load()) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
          if (++elapsed >= metricsInterval) {
            logDigest();
            elapsed = 0;
          }
        }
      });

    int sig = 0;
    sigwait(&sigs, &sig);
    std::cerr << "[ahficd] caught " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining\n";

    const bool drained =
        jobs.stop(/*drain=*/true, std::chrono::seconds(drainTimeoutSec));
    server.stop();
    digestStop.store(true);
    if (digest.joinable()) digest.join();
    if (!drained)
      std::cerr << "[ahficd] drain timed out; queued jobs were dropped\n";

    if (!celldbPath.empty()) db.save(celldbPath);
    obsOpts.finish(std::cout);
    std::cerr << "[ahficd] bye\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ahficd: " << e.what() << "\n";
    return 1;
  }
}
