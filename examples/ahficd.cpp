// ahficd — the simulation-as-a-service daemon.
//
// Binds a dependency-free HTTP/1.1 server (src/serve) over a persistent
// runner::Session and a live cell database, then waits for SIGINT /
// SIGTERM. On a signal the job service drains (queued and running jobs
// finish, bounded by --drain-timeout), the HTTP server stops, and the
// process exits 0.
//
// Usage:
//   ./ahficd [--port N] [--workers N] [--queue-depth N]
//            [--connections N] [--celldb PATH] [--seed-celldb]
//            [--metrics-interval SEC] [--drain-timeout SEC]
//            [--log-level LEVEL] [--log-json FILE]
//            [--history-interval SEC] [--history-capacity N]
//            [--trace FILE] [--metrics FILE]
//
//   --port N              listen port (default 8078; 0 = ephemeral)
//   --workers N           job-execution threads (default 2)
//   --queue-depth N       admission-queue bound; overflow -> 429
//   --connections N       HTTP connection threads (default 4)
//   --celldb PATH         load the cell database from PATH at startup
//                         and save it back on clean shutdown
//   --seed-celldb         pre-populate the example cell library
//   --metrics-interval S  log a one-line metrics digest every S seconds
//                         (0 = off, the default)
//   --drain-timeout S     max seconds to wait for in-flight jobs on
//                         shutdown (default 120)
//   --log-level LEVEL     trace|debug|info|warn|error|off (default info);
//                         text log lines go to stderr
//   --log-json FILE       additionally write structured JSONL log lines
//                         to FILE (one JSON object per line)
//   --history-interval S  metrics time-series sampling period (default 5)
//   --history-capacity N  ring size for /v1/metrics/history (default 720
//                         samples = 1 h at the default interval)
//
// Endpoints and schemas: docs/serve.md. On-demand profiling
// (docs/profiling.md): GET /v1/profile?seconds=N samples the live
// process and returns an ahfic-profile-v1 document (409 while another
// capture runs); GET /v1/profile/latest replays the last capture.
// Quick check:
//   curl -s localhost:8078/healthz
// Live dashboard: http://localhost:8078/debug
//
// Every log line carries the originating request's correlation id when
// one exists (docs/logging.md); grep the X-Ahfic-Request-Id a response
// returned and the daemon's whole handling of that request lines up.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "celldb/database.h"
#include "celldb/seed.h"
#include "obs/cli.h"
#include "obs/history.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/api.h"
#include "serve/server.h"
#include "util/error.h"

namespace sv = ahfic::serve;
namespace obs = ahfic::obs;

namespace {

int intArg(int argc, char** argv, int& k, const char* flag) {
  if (k + 1 >= argc) {
    std::cerr << flag << " needs a value\n";
    std::exit(2);
  }
  return std::atoi(argv[++k]);
}

const char* strArg(int argc, char** argv, int& k, const char* flag) {
  if (k + 1 >= argc) {
    std::cerr << flag << " needs a value\n";
    std::exit(2);
  }
  return argv[++k];
}

/// One-line digest of the live registry for --metrics-interval logging.
void logDigest() {
  static const obs::LogSite sDigest =
      obs::logSite(obs::LogLevel::kInfo, "ahficd.digest");
  if (!sDigest) return;
  const auto snap = obs::metrics().snapshot();
  double requests = 0, submitted = 0, completed = 0, hits = 0, queued = 0;
  for (const auto& [name, value] : snap.counters) {
    const double v = static_cast<double>(value);
    if (name == "serve.requests") requests = v;
    if (name == "serve.jobs_submitted") submitted = v;
    if (name == "serve.jobs_completed") completed = v;
    if (name == "runner.cache_hits") hits = v;
  }
  for (const auto& [name, value] : snap.gauges)
    if (name == "serve.queue_depth") queued = value;
  sDigest.log("periodic digest")
      .num("requests", requests)
      .num("submitted", submitted)
      .num("completed", completed)
      .num("cacheHits", hits)
      .num("queued", queued);
}

}  // namespace

int main(int argc, char** argv) {
  sv::ServerOptions serverOpts;
  serverOpts.port = 8078;
  sv::JobServiceOptions jobOpts;
  std::string celldbPath;
  bool seedCelldb = false;
  int metricsInterval = 0;
  int drainTimeoutSec = 120;
  obs::LogLevel logLevel = obs::LogLevel::kInfo;
  std::string logJsonPath;
  double historyInterval = 5.0;
  int historyCapacity = 720;
  obs::CliOptions obsOpts;

  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--port") == 0)
      serverOpts.port = intArg(argc, argv, k, "--port");
    else if (std::strcmp(argv[k], "--workers") == 0)
      jobOpts.workers = intArg(argc, argv, k, "--workers");
    else if (std::strcmp(argv[k], "--queue-depth") == 0)
      jobOpts.queueDepth = intArg(argc, argv, k, "--queue-depth");
    else if (std::strcmp(argv[k], "--connections") == 0)
      serverOpts.connectionThreads = intArg(argc, argv, k, "--connections");
    else if (std::strcmp(argv[k], "--celldb") == 0 && k + 1 < argc)
      celldbPath = argv[++k];
    else if (std::strcmp(argv[k], "--seed-celldb") == 0)
      seedCelldb = true;
    else if (std::strcmp(argv[k], "--metrics-interval") == 0)
      metricsInterval = intArg(argc, argv, k, "--metrics-interval");
    else if (std::strcmp(argv[k], "--drain-timeout") == 0)
      drainTimeoutSec = intArg(argc, argv, k, "--drain-timeout");
    else if (std::strcmp(argv[k], "--log-level") == 0) {
      const char* name = strArg(argc, argv, k, "--log-level");
      if (!obs::parseLogLevel(name, logLevel)) {
        std::cerr << "unknown log level '" << name
                  << "' (want trace|debug|info|warn|error|off)\n";
        return 2;
      }
    } else if (std::strcmp(argv[k], "--log-json") == 0)
      logJsonPath = strArg(argc, argv, k, "--log-json");
    else if (std::strcmp(argv[k], "--history-interval") == 0)
      historyInterval = std::atof(strArg(argc, argv, k, "--history-interval"));
    else if (std::strcmp(argv[k], "--history-capacity") == 0)
      historyCapacity = intArg(argc, argv, k, "--history-capacity");
    else {
      std::cerr << "unknown flag '" << argv[k] << "'\n";
      return 2;
    }
  }
  if (historyInterval <= 0) historyInterval = 5.0;
  if (historyCapacity < 2) historyCapacity = 2;

  // The daemon always runs with live metrics: /v1/metrics is an endpoint.
  obs::setMetricsEnabled(true);
  obs::setLogLevel(logLevel);
  if (!logJsonPath.empty()) obs::setJsonlLogSink(true, logJsonPath);
  obsOpts.begin();

  static const obs::LogSite sUp = obs::logSite(obs::LogLevel::kInfo,
                                               "ahficd.listening");
  static const obs::LogSite sSignal = obs::logSite(obs::LogLevel::kInfo,
                                                   "ahficd.signal");
  static const obs::LogSite sDrainTimeout =
      obs::logSite(obs::LogLevel::kWarn, "ahficd.drain_timeout");
  static const obs::LogSite sBye = obs::logSite(obs::LogLevel::kInfo,
                                                "ahficd.exit");

  // Block the termination signals in every thread *before* any thread is
  // spawned, so only the sigwait below ever sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    ahfic::celldb::CellDatabase db;
    if (!celldbPath.empty()) db = ahfic::celldb::CellDatabase::load(celldbPath);
    if (seedCelldb) ahfic::celldb::seedExampleLibrary(db);
    ahfic::util::Mutex dbMutex;

    ahfic::runner::Session session;
    sv::JobService jobs(session, jobOpts);

    obs::MetricsHistory history(historyInterval,
                                static_cast<size_t>(historyCapacity));

    sv::ApiContext ctx;
    ctx.jobs = &jobs;
    ctx.db = &db;
    ctx.dbMutex = &dbMutex;
    ctx.history = &history;

    sv::HttpServer server(sv::buildApiRouter(ctx), serverOpts);
    server.start();
    history.start();
    if (sUp)
      sUp.log("listening")
          .str("address", serverOpts.bindAddress)
          .num("port", server.port())
          .num("workers", jobOpts.workers)
          .num("queueDepth", jobOpts.queueDepth)
          .num("cells", static_cast<double>(db.size()));

    std::thread digest;
    std::atomic<bool> digestStop{false};
    if (metricsInterval > 0)
      digest = std::thread([metricsInterval, &digestStop] {
        int elapsed = 0;
        while (!digestStop.load()) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
          if (++elapsed >= metricsInterval) {
            logDigest();
            elapsed = 0;
          }
        }
      });

    int sig = 0;
    sigwait(&sigs, &sig);
    if (sSignal)
      sSignal.log("caught signal, draining")
          .str("signal", sig == SIGTERM ? "SIGTERM" : "SIGINT");

    const bool drained =
        jobs.stop(/*drain=*/true, std::chrono::seconds(drainTimeoutSec));
    history.stop();
    server.stop();
    digestStop.store(true);
    if (digest.joinable()) digest.join();
    if (!drained && sDrainTimeout)
      sDrainTimeout.log("drain timed out; queued jobs were dropped");

    if (!celldbPath.empty()) db.save(celldbPath);
    obsOpts.finish(std::cout);
    if (sBye) sBye.log("bye");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ahficd: " << e.what() << "\n";
    return 1;
  }
}
