
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ahdl_digital_blocks_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/ahdl_digital_blocks_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/ahdl_digital_blocks_test.cpp.o.d"
  "/root/repo/tests/ahdl_expr_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/ahdl_expr_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/ahdl_expr_test.cpp.o.d"
  "/root/repo/tests/ahdl_lang_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/ahdl_lang_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/ahdl_lang_test.cpp.o.d"
  "/root/repo/tests/ahdl_pll_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/ahdl_pll_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/ahdl_pll_test.cpp.o.d"
  "/root/repo/tests/ahdl_system_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/ahdl_system_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/ahdl_system_test.cpp.o.d"
  "/root/repo/tests/bjtgen_ft_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_ft_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_ft_test.cpp.o.d"
  "/root/repo/tests/bjtgen_generator_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_generator_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_generator_test.cpp.o.d"
  "/root/repo/tests/bjtgen_geometry_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_geometry_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_geometry_test.cpp.o.d"
  "/root/repo/tests/bjtgen_montecarlo_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_montecarlo_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_montecarlo_test.cpp.o.d"
  "/root/repo/tests/bjtgen_property_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_property_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_property_test.cpp.o.d"
  "/root/repo/tests/bjtgen_ringosc_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_ringosc_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_ringosc_test.cpp.o.d"
  "/root/repo/tests/bjtgen_shape_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_shape_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/bjtgen_shape_test.cpp.o.d"
  "/root/repo/tests/celldb_instantiate_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/celldb_instantiate_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/celldb_instantiate_test.cpp.o.d"
  "/root/repo/tests/celldb_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/celldb_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/celldb_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/methodology_end_to_end_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/methodology_end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/methodology_end_to_end_test.cpp.o.d"
  "/root/repo/tests/spice_analysis_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_analysis_test.cpp.o.d"
  "/root/repo/tests/spice_circuit_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_circuit_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_circuit_test.cpp.o.d"
  "/root/repo/tests/spice_cmos_ring_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_cmos_ring_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_cmos_ring_test.cpp.o.d"
  "/root/repo/tests/spice_device_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_device_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_device_test.cpp.o.d"
  "/root/repo/tests/spice_fourier_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_fourier_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_fourier_test.cpp.o.d"
  "/root/repo/tests/spice_junction_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_junction_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_junction_test.cpp.o.d"
  "/root/repo/tests/spice_linalg_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_linalg_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_linalg_test.cpp.o.d"
  "/root/repo/tests/spice_linear_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_linear_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_linear_test.cpp.o.d"
  "/root/repo/tests/spice_mosfet_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_mosfet_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_mosfet_test.cpp.o.d"
  "/root/repo/tests/spice_noise_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_noise_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_noise_test.cpp.o.d"
  "/root/repo/tests/spice_parser_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_parser_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_parser_test.cpp.o.d"
  "/root/repo/tests/spice_rundeck_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_rundeck_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_rundeck_test.cpp.o.d"
  "/root/repo/tests/spice_sources_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_sources_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_sources_test.cpp.o.d"
  "/root/repo/tests/spice_subckt_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_subckt_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_subckt_test.cpp.o.d"
  "/root/repo/tests/spice_temperature_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/spice_temperature_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/spice_temperature_test.cpp.o.d"
  "/root/repo/tests/tuner_distortion_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/tuner_distortion_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/tuner_distortion_test.cpp.o.d"
  "/root/repo/tests/tuner_emit_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/tuner_emit_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/tuner_emit_test.cpp.o.d"
  "/root/repo/tests/tuner_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/tuner_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/tuner_test.cpp.o.d"
  "/root/repo/tests/util_fft_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/util_fft_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/util_fft_test.cpp.o.d"
  "/root/repo/tests/util_numeric_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/util_numeric_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/util_numeric_test.cpp.o.d"
  "/root/repo/tests/util_plot_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/util_plot_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/util_plot_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/util_table_test.cpp.o.d"
  "/root/repo/tests/util_units_test.cpp" "tests/CMakeFiles/ahfic_tests.dir/util_units_test.cpp.o" "gcc" "tests/CMakeFiles/ahfic_tests.dir/util_units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ahfic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/celldb/CMakeFiles/ahfic_celldb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/ahfic_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/ahdl/CMakeFiles/ahfic_ahdl.dir/DependInfo.cmake"
  "/root/repo/build/src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ahfic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
