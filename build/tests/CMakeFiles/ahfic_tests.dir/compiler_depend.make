# Empty compiler generated dependencies file for ahfic_tests.
# This may be replaced when dependencies are built.
