# Empty dependencies file for ahfic_spice.
# This may be replaced when dependencies are built.
