file(REMOVE_RECURSE
  "CMakeFiles/ahfic_spice.dir/analysis.cpp.o"
  "CMakeFiles/ahfic_spice.dir/analysis.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/bjt.cpp.o"
  "CMakeFiles/ahfic_spice.dir/bjt.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/circuit.cpp.o"
  "CMakeFiles/ahfic_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/diode.cpp.o"
  "CMakeFiles/ahfic_spice.dir/diode.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/fourier.cpp.o"
  "CMakeFiles/ahfic_spice.dir/fourier.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/models.cpp.o"
  "CMakeFiles/ahfic_spice.dir/models.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/mosfet.cpp.o"
  "CMakeFiles/ahfic_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/parser.cpp.o"
  "CMakeFiles/ahfic_spice.dir/parser.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/passive.cpp.o"
  "CMakeFiles/ahfic_spice.dir/passive.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/rundeck.cpp.o"
  "CMakeFiles/ahfic_spice.dir/rundeck.cpp.o.d"
  "CMakeFiles/ahfic_spice.dir/sources.cpp.o"
  "CMakeFiles/ahfic_spice.dir/sources.cpp.o.d"
  "libahfic_spice.a"
  "libahfic_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
