file(REMOVE_RECURSE
  "libahfic_spice.a"
)
