
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/analysis.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/analysis.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/analysis.cpp.o.d"
  "/root/repo/src/spice/bjt.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/bjt.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/bjt.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/diode.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/diode.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/diode.cpp.o.d"
  "/root/repo/src/spice/fourier.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/fourier.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/fourier.cpp.o.d"
  "/root/repo/src/spice/models.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/models.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/models.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/mosfet.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/mosfet.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/parser.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/parser.cpp.o.d"
  "/root/repo/src/spice/passive.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/passive.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/passive.cpp.o.d"
  "/root/repo/src/spice/rundeck.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/rundeck.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/rundeck.cpp.o.d"
  "/root/repo/src/spice/sources.cpp" "src/spice/CMakeFiles/ahfic_spice.dir/sources.cpp.o" "gcc" "src/spice/CMakeFiles/ahfic_spice.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
