# Empty dependencies file for ahfic_util.
# This may be replaced when dependencies are built.
