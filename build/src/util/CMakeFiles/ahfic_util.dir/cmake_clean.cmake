file(REMOVE_RECURSE
  "CMakeFiles/ahfic_util.dir/fft.cpp.o"
  "CMakeFiles/ahfic_util.dir/fft.cpp.o.d"
  "CMakeFiles/ahfic_util.dir/numeric.cpp.o"
  "CMakeFiles/ahfic_util.dir/numeric.cpp.o.d"
  "CMakeFiles/ahfic_util.dir/plot.cpp.o"
  "CMakeFiles/ahfic_util.dir/plot.cpp.o.d"
  "CMakeFiles/ahfic_util.dir/strings.cpp.o"
  "CMakeFiles/ahfic_util.dir/strings.cpp.o.d"
  "CMakeFiles/ahfic_util.dir/table.cpp.o"
  "CMakeFiles/ahfic_util.dir/table.cpp.o.d"
  "CMakeFiles/ahfic_util.dir/units.cpp.o"
  "CMakeFiles/ahfic_util.dir/units.cpp.o.d"
  "libahfic_util.a"
  "libahfic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
