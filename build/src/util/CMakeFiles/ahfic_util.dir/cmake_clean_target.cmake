file(REMOVE_RECURSE
  "libahfic_util.a"
)
