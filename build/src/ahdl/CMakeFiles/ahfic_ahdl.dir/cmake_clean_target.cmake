file(REMOVE_RECURSE
  "libahfic_ahdl.a"
)
