
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ahdl/blocks.cpp" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/blocks.cpp.o" "gcc" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/blocks.cpp.o.d"
  "/root/repo/src/ahdl/expr.cpp" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/expr.cpp.o" "gcc" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/expr.cpp.o.d"
  "/root/repo/src/ahdl/filter.cpp" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/filter.cpp.o" "gcc" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/filter.cpp.o.d"
  "/root/repo/src/ahdl/lang.cpp" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/lang.cpp.o" "gcc" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/lang.cpp.o.d"
  "/root/repo/src/ahdl/system.cpp" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/system.cpp.o" "gcc" "src/ahdl/CMakeFiles/ahfic_ahdl.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
