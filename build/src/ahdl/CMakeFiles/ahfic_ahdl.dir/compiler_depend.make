# Empty compiler generated dependencies file for ahfic_ahdl.
# This may be replaced when dependencies are built.
