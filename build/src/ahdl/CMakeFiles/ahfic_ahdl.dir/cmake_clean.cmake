file(REMOVE_RECURSE
  "CMakeFiles/ahfic_ahdl.dir/blocks.cpp.o"
  "CMakeFiles/ahfic_ahdl.dir/blocks.cpp.o.d"
  "CMakeFiles/ahfic_ahdl.dir/expr.cpp.o"
  "CMakeFiles/ahfic_ahdl.dir/expr.cpp.o.d"
  "CMakeFiles/ahfic_ahdl.dir/filter.cpp.o"
  "CMakeFiles/ahfic_ahdl.dir/filter.cpp.o.d"
  "CMakeFiles/ahfic_ahdl.dir/lang.cpp.o"
  "CMakeFiles/ahfic_ahdl.dir/lang.cpp.o.d"
  "CMakeFiles/ahfic_ahdl.dir/system.cpp.o"
  "CMakeFiles/ahfic_ahdl.dir/system.cpp.o.d"
  "libahfic_ahdl.a"
  "libahfic_ahdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_ahdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
