file(REMOVE_RECURSE
  "CMakeFiles/ahfic_bjtgen.dir/ft.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/ft.cpp.o.d"
  "CMakeFiles/ahfic_bjtgen.dir/generator.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/generator.cpp.o.d"
  "CMakeFiles/ahfic_bjtgen.dir/geometry.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/geometry.cpp.o.d"
  "CMakeFiles/ahfic_bjtgen.dir/montecarlo.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/montecarlo.cpp.o.d"
  "CMakeFiles/ahfic_bjtgen.dir/process.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/process.cpp.o.d"
  "CMakeFiles/ahfic_bjtgen.dir/ringosc.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/ringosc.cpp.o.d"
  "CMakeFiles/ahfic_bjtgen.dir/shape.cpp.o"
  "CMakeFiles/ahfic_bjtgen.dir/shape.cpp.o.d"
  "libahfic_bjtgen.a"
  "libahfic_bjtgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_bjtgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
