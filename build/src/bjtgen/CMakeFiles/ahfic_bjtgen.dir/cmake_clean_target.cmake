file(REMOVE_RECURSE
  "libahfic_bjtgen.a"
)
