# Empty dependencies file for ahfic_bjtgen.
# This may be replaced when dependencies are built.
