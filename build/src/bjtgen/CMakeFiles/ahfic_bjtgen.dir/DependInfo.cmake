
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bjtgen/ft.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/ft.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/ft.cpp.o.d"
  "/root/repo/src/bjtgen/generator.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/generator.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/generator.cpp.o.d"
  "/root/repo/src/bjtgen/geometry.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/geometry.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/geometry.cpp.o.d"
  "/root/repo/src/bjtgen/montecarlo.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/montecarlo.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/montecarlo.cpp.o.d"
  "/root/repo/src/bjtgen/process.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/process.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/process.cpp.o.d"
  "/root/repo/src/bjtgen/ringosc.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/ringosc.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/ringosc.cpp.o.d"
  "/root/repo/src/bjtgen/shape.cpp" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/shape.cpp.o" "gcc" "src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ahfic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
