
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterize.cpp" "src/core/CMakeFiles/ahfic_core.dir/characterize.cpp.o" "gcc" "src/core/CMakeFiles/ahfic_core.dir/characterize.cpp.o.d"
  "/root/repo/src/core/design.cpp" "src/core/CMakeFiles/ahfic_core.dir/design.cpp.o" "gcc" "src/core/CMakeFiles/ahfic_core.dir/design.cpp.o.d"
  "/root/repo/src/core/spec.cpp" "src/core/CMakeFiles/ahfic_core.dir/spec.cpp.o" "gcc" "src/core/CMakeFiles/ahfic_core.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ahfic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/ahdl/CMakeFiles/ahfic_ahdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
