# Empty compiler generated dependencies file for ahfic_core.
# This may be replaced when dependencies are built.
