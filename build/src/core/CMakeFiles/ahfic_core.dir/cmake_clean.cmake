file(REMOVE_RECURSE
  "CMakeFiles/ahfic_core.dir/characterize.cpp.o"
  "CMakeFiles/ahfic_core.dir/characterize.cpp.o.d"
  "CMakeFiles/ahfic_core.dir/design.cpp.o"
  "CMakeFiles/ahfic_core.dir/design.cpp.o.d"
  "CMakeFiles/ahfic_core.dir/spec.cpp.o"
  "CMakeFiles/ahfic_core.dir/spec.cpp.o.d"
  "libahfic_core.a"
  "libahfic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
