file(REMOVE_RECURSE
  "libahfic_core.a"
)
