file(REMOVE_RECURSE
  "libahfic_tuner.a"
)
