# Empty compiler generated dependencies file for ahfic_tuner.
# This may be replaced when dependencies are built.
