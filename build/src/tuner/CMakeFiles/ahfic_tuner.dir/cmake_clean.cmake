file(REMOVE_RECURSE
  "CMakeFiles/ahfic_tuner.dir/distortion.cpp.o"
  "CMakeFiles/ahfic_tuner.dir/distortion.cpp.o.d"
  "CMakeFiles/ahfic_tuner.dir/doublesuper.cpp.o"
  "CMakeFiles/ahfic_tuner.dir/doublesuper.cpp.o.d"
  "CMakeFiles/ahfic_tuner.dir/emit_ahdl.cpp.o"
  "CMakeFiles/ahfic_tuner.dir/emit_ahdl.cpp.o.d"
  "CMakeFiles/ahfic_tuner.dir/irr.cpp.o"
  "CMakeFiles/ahfic_tuner.dir/irr.cpp.o.d"
  "libahfic_tuner.a"
  "libahfic_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
