
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/distortion.cpp" "src/tuner/CMakeFiles/ahfic_tuner.dir/distortion.cpp.o" "gcc" "src/tuner/CMakeFiles/ahfic_tuner.dir/distortion.cpp.o.d"
  "/root/repo/src/tuner/doublesuper.cpp" "src/tuner/CMakeFiles/ahfic_tuner.dir/doublesuper.cpp.o" "gcc" "src/tuner/CMakeFiles/ahfic_tuner.dir/doublesuper.cpp.o.d"
  "/root/repo/src/tuner/emit_ahdl.cpp" "src/tuner/CMakeFiles/ahfic_tuner.dir/emit_ahdl.cpp.o" "gcc" "src/tuner/CMakeFiles/ahfic_tuner.dir/emit_ahdl.cpp.o.d"
  "/root/repo/src/tuner/irr.cpp" "src/tuner/CMakeFiles/ahfic_tuner.dir/irr.cpp.o" "gcc" "src/tuner/CMakeFiles/ahfic_tuner.dir/irr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ahdl/CMakeFiles/ahfic_ahdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
