file(REMOVE_RECURSE
  "libahfic_celldb.a"
)
