
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/celldb/database.cpp" "src/celldb/CMakeFiles/ahfic_celldb.dir/database.cpp.o" "gcc" "src/celldb/CMakeFiles/ahfic_celldb.dir/database.cpp.o.d"
  "/root/repo/src/celldb/reuse.cpp" "src/celldb/CMakeFiles/ahfic_celldb.dir/reuse.cpp.o" "gcc" "src/celldb/CMakeFiles/ahfic_celldb.dir/reuse.cpp.o.d"
  "/root/repo/src/celldb/seed.cpp" "src/celldb/CMakeFiles/ahfic_celldb.dir/seed.cpp.o" "gcc" "src/celldb/CMakeFiles/ahfic_celldb.dir/seed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ahfic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/ahdl/CMakeFiles/ahfic_ahdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
