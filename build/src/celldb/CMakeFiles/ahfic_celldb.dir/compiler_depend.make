# Empty compiler generated dependencies file for ahfic_celldb.
# This may be replaced when dependencies are built.
