file(REMOVE_RECURSE
  "CMakeFiles/ahfic_celldb.dir/database.cpp.o"
  "CMakeFiles/ahfic_celldb.dir/database.cpp.o.d"
  "CMakeFiles/ahfic_celldb.dir/reuse.cpp.o"
  "CMakeFiles/ahfic_celldb.dir/reuse.cpp.o.d"
  "CMakeFiles/ahfic_celldb.dir/seed.cpp.o"
  "CMakeFiles/ahfic_celldb.dir/seed.cpp.o.d"
  "libahfic_celldb.a"
  "libahfic_celldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahfic_celldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
