# Empty dependencies file for cell_reuse.
# This may be replaced when dependencies are built.
