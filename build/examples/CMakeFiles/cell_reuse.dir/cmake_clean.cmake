file(REMOVE_RECURSE
  "CMakeFiles/cell_reuse.dir/cell_reuse.cpp.o"
  "CMakeFiles/cell_reuse.dir/cell_reuse.cpp.o.d"
  "cell_reuse"
  "cell_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
