file(REMOVE_RECURSE
  "CMakeFiles/ahdl_netlist.dir/ahdl_netlist.cpp.o"
  "CMakeFiles/ahdl_netlist.dir/ahdl_netlist.cpp.o.d"
  "ahdl_netlist"
  "ahdl_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahdl_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
