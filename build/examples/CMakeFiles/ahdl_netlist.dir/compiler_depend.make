# Empty compiler generated dependencies file for ahdl_netlist.
# This may be replaced when dependencies are built.
