file(REMOVE_RECURSE
  "CMakeFiles/distortion_analysis.dir/distortion_analysis.cpp.o"
  "CMakeFiles/distortion_analysis.dir/distortion_analysis.cpp.o.d"
  "distortion_analysis"
  "distortion_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distortion_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
