# Empty compiler generated dependencies file for distortion_analysis.
# This may be replaced when dependencies are built.
