# Empty compiler generated dependencies file for spice_cli.
# This may be replaced when dependencies are built.
