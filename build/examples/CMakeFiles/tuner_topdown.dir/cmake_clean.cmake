file(REMOVE_RECURSE
  "CMakeFiles/tuner_topdown.dir/tuner_topdown.cpp.o"
  "CMakeFiles/tuner_topdown.dir/tuner_topdown.cpp.o.d"
  "tuner_topdown"
  "tuner_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
