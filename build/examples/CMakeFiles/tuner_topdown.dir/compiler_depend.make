# Empty compiler generated dependencies file for tuner_topdown.
# This may be replaced when dependencies are built.
