file(REMOVE_RECURSE
  "CMakeFiles/ring_oscillator_design.dir/ring_oscillator_design.cpp.o"
  "CMakeFiles/ring_oscillator_design.dir/ring_oscillator_design.cpp.o.d"
  "ring_oscillator_design"
  "ring_oscillator_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_oscillator_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
