# Empty dependencies file for ring_oscillator_design.
# This may be replaced when dependencies are built.
