file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ring_osc.dir/bench_table1_ring_osc.cpp.o"
  "CMakeFiles/bench_table1_ring_osc.dir/bench_table1_ring_osc.cpp.o.d"
  "bench_table1_ring_osc"
  "bench_table1_ring_osc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ring_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
