# Empty dependencies file for bench_table1_ring_osc.
# This may be replaced when dependencies are built.
