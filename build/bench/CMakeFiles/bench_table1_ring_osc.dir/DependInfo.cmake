
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_ring_osc.cpp" "bench/CMakeFiles/bench_table1_ring_osc.dir/bench_table1_ring_osc.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_ring_osc.dir/bench_table1_ring_osc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bjtgen/CMakeFiles/ahfic_bjtgen.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ahfic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
