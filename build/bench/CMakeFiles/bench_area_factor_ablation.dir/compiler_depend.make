# Empty compiler generated dependencies file for bench_area_factor_ablation.
# This may be replaced when dependencies are built.
