file(REMOVE_RECURSE
  "CMakeFiles/bench_area_factor_ablation.dir/bench_area_factor_ablation.cpp.o"
  "CMakeFiles/bench_area_factor_ablation.dir/bench_area_factor_ablation.cpp.o.d"
  "bench_area_factor_ablation"
  "bench_area_factor_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_factor_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
