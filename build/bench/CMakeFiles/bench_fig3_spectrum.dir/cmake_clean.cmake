file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_spectrum.dir/bench_fig3_spectrum.cpp.o"
  "CMakeFiles/bench_fig3_spectrum.dir/bench_fig3_spectrum.cpp.o.d"
  "bench_fig3_spectrum"
  "bench_fig3_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
