# Empty dependencies file for bench_fig3_spectrum.
# This may be replaced when dependencies are built.
