# Empty compiler generated dependencies file for bench_reuse_stats.
# This may be replaced when dependencies are built.
