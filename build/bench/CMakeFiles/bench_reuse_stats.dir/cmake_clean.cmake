file(REMOVE_RECURSE
  "CMakeFiles/bench_reuse_stats.dir/bench_reuse_stats.cpp.o"
  "CMakeFiles/bench_reuse_stats.dir/bench_reuse_stats.cpp.o.d"
  "bench_reuse_stats"
  "bench_reuse_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reuse_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
