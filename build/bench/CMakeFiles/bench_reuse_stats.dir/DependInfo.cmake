
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_reuse_stats.cpp" "bench/CMakeFiles/bench_reuse_stats.dir/bench_reuse_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_reuse_stats.dir/bench_reuse_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/celldb/CMakeFiles/ahfic_celldb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahfic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ahfic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/ahdl/CMakeFiles/ahfic_ahdl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
