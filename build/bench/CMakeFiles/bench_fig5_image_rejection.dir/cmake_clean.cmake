file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_image_rejection.dir/bench_fig5_image_rejection.cpp.o"
  "CMakeFiles/bench_fig5_image_rejection.dir/bench_fig5_image_rejection.cpp.o.d"
  "bench_fig5_image_rejection"
  "bench_fig5_image_rejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_image_rejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
