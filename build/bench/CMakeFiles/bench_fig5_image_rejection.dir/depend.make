# Empty dependencies file for bench_fig5_image_rejection.
# This may be replaced when dependencies are built.
