file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ft_vs_ic.dir/bench_fig9_ft_vs_ic.cpp.o"
  "CMakeFiles/bench_fig9_ft_vs_ic.dir/bench_fig9_ft_vs_ic.cpp.o.d"
  "bench_fig9_ft_vs_ic"
  "bench_fig9_ft_vs_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ft_vs_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
