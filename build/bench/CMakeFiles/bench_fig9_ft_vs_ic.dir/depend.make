# Empty dependencies file for bench_fig9_ft_vs_ic.
# This may be replaced when dependencies are built.
