#pragma once
// Analyses: operating point (Newton with gmin/source stepping), DC sweep,
// AC small-signal, and adaptive-step transient (trapezoidal / backward
// Euler).
//
// Usage:
//   Circuit ckt; ... build ...
//   Analyzer an(ckt);
//   auto op = an.op();
//   auto tr = an.transient(100e-9, 50e-12);
//   auto vout = tr.voltage(ckt.findNode("out"));

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spice/circuit.h"
#include "spice/csr.h"
#include "spice/solution.h"
#include "spice/sparse_lu.h"

namespace ahfic::spice {

class ForensicsRecorder;

/// Matrix backend for the MNA solves.
enum class SolverKind {
  kAuto,          ///< dense up to kDenseBackendMaxUnknowns, else kSparse
  kDense,         ///< dense LU (the correctness oracle)
  kSparseLegacy,  ///< row-list SparseMatrix::solveInPlace (ablation baseline)
  kSparse,        ///< structure-caching CSR SparseLU (csr.h / sparse_lu.h)
};

/// Unknown count above which kAuto switches from dense to the
/// structure-caching sparse backend. Dense LU is O(n^3) per iteration
/// but has unbeatable constants on small systems; the crossover sits
/// around a hundred unknowns on current hardware (see BENCH_solver.json
/// for the measured trajectory).
inline constexpr int kDenseBackendMaxUnknowns = 128;

/// Tolerances and iteration limits. Defaults follow SPICE conventions.
struct AnalysisOptions {
  double reltol = 1e-3;    ///< relative convergence tolerance
  double vntol = 1e-6;     ///< absolute node-voltage tolerance [V]
  double abstol = 1e-9;    ///< absolute branch-current tolerance [A]
  double gmin = 1e-12;     ///< junction shunt conductance [S]
  int maxNewtonIters = 100;
  /// Backend selection. kAuto picks dense or sparse by unknown count;
  /// the legacy `useSparse` flag (kept for existing call sites) maps to
  /// kSparseLegacy when `solver` is left at kAuto.
  SolverKind solver = SolverKind::kAuto;
  bool useSparse = false;  ///< legacy alias for solver = kSparseLegacy
  IntegMethod method = IntegMethod::kTrapezoidal;
  /// Damped-trapezoidal blend: 0 = pure trapezoidal (can sustain
  /// period-2 ringing on stiff switching circuits), 1 = backward Euler.
  /// The default adds just enough dissipation to kill the ringing while
  /// keeping near-second-order accuracy.
  double trapDamping = 0.08;
  double tranInitialStepFraction = 1e-3;  ///< first step = fraction of maxStep
  int maxStepRetries = 12;  ///< transient step halvings before giving up
  /// Convergence forensics (forensics.h): records per-iteration telemetry
  /// and attaches an "ahfic-diag-v1" report to any ConvergenceError.
  /// Off by default — the Newton hot path then carries only a null check.
  bool forensics = false;
  int forensicsDepth = 64;  ///< iteration-trail ring size when enabled
  /// Correlation id of the originating request (empty outside the
  /// daemon). Stamped onto analysis spans, convergence log lines and
  /// the "ahfic-diag-v1" report context; never affects the solve.
  std::string traceId;
};

/// Transient waveform record: one solution vector per accepted time point.
struct TranResult {
  std::vector<double> time;
  std::vector<std::vector<double>> values;  ///< [point][unknown id - 1]

  /// Waveform of node voltage `node` (unknown id == node id).
  std::vector<double> voltage(int node) const;
  /// Waveform of arbitrary unknown id (e.g. a VSource branch current).
  std::vector<double> unknown(int id) const;
};

/// AC sweep record: complex solution per frequency point.
struct AcResult {
  std::vector<double> frequency;  ///< Hz
  std::vector<std::vector<std::complex<double>>> values;

  std::complex<double> voltage(size_t point, int node) const;
  std::complex<double> unknown(size_t point, int id) const;
  /// |V(node)| in dB at `point`.
  double magnitudeDb(size_t point, int node) const;
};

/// DC sweep record: swept source value per point plus solution.
struct DcSweepResult {
  std::vector<double> sweep;
  std::vector<std::vector<double>> values;

  double voltage(size_t point, int node) const;
  double unknown(size_t point, int id) const;
};

/// Frequency grid helpers.
std::vector<double> logspace(double fStart, double fStop, int pointsPerDecade);
std::vector<double> linspace(double start, double stop, int points);

/// One noise source's share of the output noise, integrated over the
/// analysed band.
struct NoiseContribution {
  std::string label;     ///< e.g. "Q1 collector shot"
  double variance = 0.0; ///< [V^2] over the analysed band
};

/// Output-referred noise analysis result.
struct NoiseResult {
  std::vector<double> frequency;   ///< Hz
  std::vector<double> outputPsd;   ///< [V^2/Hz] at the output node
  std::vector<NoiseContribution> contributions;  ///< sorted, descending

  /// Total output noise variance over the analysed band (trapezoid).
  double totalVariance() const;
  /// RMS output noise voltage over the band.
  double rmsVoltage() const;
};

/// Statistics of the most recent analysis. Counters are reset at the
/// start of every top-level solve entry point — op(), dcSweep(),
/// transient(), ac(), noise() — so stats() read after a call covers
/// exactly that call (the runner's per-job manifests depend on this).
/// For ac()/noise(), matrixSolves counts one LU factorisation per
/// frequency point; the op-computing ac() overload's window covers the
/// internal op() plus the sweep.
///
/// This struct is the per-Analyzer façade over the global observability
/// registry (obs/metrics.h): the same counters are published as
/// `spice.*` registry metrics at the end of each entry point, so batch
/// totals aggregate across analyzers and threads without touching the
/// hot solver loop.
struct AnalyzerStats {
  long newtonIterations = 0;
  long matrixSolves = 0;
  long acceptedSteps = 0;
  long rejectedSteps = 0;
  long gminSteps = 0;
  long sourceSteps = 0;
  /// kSparse backend only: positions added to the CSR pattern *after*
  /// the initial structural priming pass (published as
  /// `spice.sparse.pattern_inserts`). Steady-state Newton iteration
  /// performs none — a nonzero value means a device stamped a position
  /// the priming pass failed to predict.
  long sparsePatternInserts = 0;
  long sparseFullFactors = 0;  ///< pivoting factorizations (kSparse)
  long sparseRefactors = 0;    ///< pattern-reusing refactorizations
};

/// Analysis driver bound to one Circuit. Building the unknown layout
/// happens at construction; do not add/remove devices afterwards (create a
/// fresh Analyzer instead).
class Analyzer {
 public:
  explicit Analyzer(Circuit& ckt, AnalysisOptions opts = {});
  ~Analyzer();  // out-of-line: ForensicsRecorder is incomplete here

  /// Total number of MNA unknowns (node voltages + branch currents).
  int unknownCount() const { return unknownCount_; }

  /// DC operating point. Tries plain Newton, then gmin stepping, then
  /// source stepping. Throws ahfic::ConvergenceError when all fail.
  /// The result vector is indexed by (unknown id - 1).
  std::vector<double> op();

  /// Sweeps the DC value of the named V or I source. Each point is a full
  /// operating point, warm-started from the previous one.
  DcSweepResult dcSweep(const std::string& sourceName, double start,
                        double stop, double step);

  /// AC small-signal analysis at the given frequencies, linearised about
  /// `opSolution` (obtain it from op()). Opens a fresh stats() window
  /// counting one matrix solve per frequency point.
  AcResult ac(const std::vector<double>& frequencies,
              const std::vector<double>& opSolution);
  /// Convenience: computes the OP itself, then sweeps. The stats()
  /// window covers both the OP and the sweep.
  AcResult ac(const std::vector<double>& frequencies);

  /// Transient from t=0 (operating point as the initial condition) to
  /// `tstop`, with adaptive step capped at `maxStep`. Points before
  /// `recordFrom` are simulated but not recorded (start-up settling).
  TranResult transient(double tstop, double maxStep, double recordFrom = 0.0);

  /// Small-signal noise analysis: the output-voltage noise spectral
  /// density at `outputNode` over `frequencies`, from the thermal/shot
  /// sources of every device linearised about `opSolution`. Device
  /// contributions are integrated over the band and ranked.
  NoiseResult noise(const std::vector<double>& frequencies,
                    const std::string& outputNode,
                    const std::vector<double>& opSolution);

  const AnalyzerStats& stats() const { return stats_; }
  const AnalysisOptions& options() const { return opts_; }
  /// Backend actually in use (kAuto/useSparse resolved at construction).
  SolverKind solverKind() const { return solver_; }
  /// The convergence-forensics recorder, or nullptr when
  /// AnalysisOptions::forensics is off. Buffers cover the most recent
  /// stats window (reset with it).
  const ForensicsRecorder* forensics() const { return fx_.get(); }

 private:
  struct NewtonOutcome {
    bool converged = false;
    int iterations = 0;
  };

  void buildLayout();
  /// Starts a fresh per-call counter window (see AnalyzerStats) and
  /// clears the forensics buffers.
  void resetStats();
  /// Publishes the not-yet-published slice of stats_ to the global
  /// metrics registry as `spice.*` counters (no-op when metrics are
  /// disabled) and counts one `spice.analyses.<analysis>` invocation.
  /// Called on successful completion only: work from an analysis that
  /// threw stays unpublished (the next resetStats discards it).
  void publishStats(const char* analysis);
  void assemble(Stamper& s, const Solution& x, const LoadContext& ctx);
  /// One Newton solve at fixed context; x is both input guess and output.
  NewtonOutcome newton(std::vector<double>& x, LoadContext& ctx);
  NewtonOutcome newtonInner(std::vector<double>& x, LoadContext& ctx);
  /// Shared AC sweep body; optionally opens a fresh stats window.
  AcResult acLinear(const std::vector<double>& frequencies,
                    const std::vector<double>& opSolution, bool freshWindow);
  bool solveLinear(std::vector<double>& x);
  std::vector<double> opWithContext(LoadContext& ctx);
  /// Builds the "ahfic-diag-v1" report from the forensics buffers (when
  /// recording) and throws ConvergenceError carrying it.
  [[noreturn]] void throwConvergence(const char* stage, double stageValue,
                                     const std::string& message);

  // kSparse backend (structure-caching CSR core).
  /// Assemble + factor + solve for one Newton iteration; false on a
  /// singular system.
  bool sparseIterate(const Solution& x, const LoadContext& ctx,
                     std::vector<double>& xNew);
  /// Rebuilds the cached static (linear-device) value baseline when the
  /// pattern epoch or the integrator coefficient changed.
  void prepareSparseStatic(const Solution& x, const LoadContext& ctx);
  /// Structural discovery: runs every device through a PatternStamper
  /// under DC and transient contexts and builds the real-path pattern.
  void primeSparsePattern();
  /// Folds `pending` positions into `pat` (counts pattern inserts).
  void growSparsePattern(CsrPattern& pat,
                         std::vector<std::pair<int, int>>& pending);
  void primeAcSparsePattern(const Solution& op);
  /// Assembles the complex system at `omega` and factors it; throws on
  /// singularity with `what` naming the analysis.
  void acSparseFactor(const Solution& op, double omega, const char* what);

  Circuit& ckt_;
  AnalysisOptions opts_;
  SolverKind solver_ = SolverKind::kDense;  ///< resolved backend
  int unknownCount_ = 0;
  int stateCount_ = 0;
  AnalyzerStats stats_;
  /// Watermark of stats_ already pushed to the metrics registry, so
  /// nested entry points (transient's internal op()) publish each slice
  /// of work exactly once.
  AnalyzerStats published_;

  // Convergence forensics (null unless opts_.forensics).
  std::unique_ptr<ForensicsRecorder> fx_;
  /// Entry point currently running, for the report's `analysis` field.
  const char* analysisLabel_ = "op";
  /// Unknown id whose pivot vanished in the most recent singular solve
  /// (0 = none); resolved to a name by the report builder.
  int lastSingularUnknown_ = 0;

  // Scratch for the real solves.
  DenseMatrix<double> a_;
  SparseMatrix<double> as_;
  std::vector<double> rhs_;

  // kSparse real path: pattern + slot-ordered values, the cached static
  // baseline stamped by linear devices, and the solver bound to the
  // pattern's current epoch.
  CsrPattern pat_;
  SparseLU<double> lu_;
  std::vector<double> vals_, staticVals_, scratchRhs_;
  std::vector<std::pair<int, int>> pending_;
  bool patternPrimed_ = false;
  bool staticValid_ = false;
  std::uint64_t staticEpoch_ = 0;
  double staticC0_ = 0.0;

  // kSparse complex path (AC/noise sweeps).
  CsrPattern patAc_;
  SparseLU<std::complex<double>> luAc_;
  std::vector<std::complex<double>> valsAc_, rhsAc_;
  std::vector<std::pair<int, int>> pendingAc_;
  bool patternAcPrimed_ = false;

  // Device partition for the static/dynamic stamp split: linear devices
  // have candidate-independent matrix stamps (static baseline + RHS-only
  // pass per iteration); nonlinear devices restamp in full.
  std::vector<Device*> linearDevs_, nonlinearDevs_;

  // Charge/flux states.
  std::vector<double> state_, statePrev_, dstatePrev_;
};

}  // namespace ahfic::spice
