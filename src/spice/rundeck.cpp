#include "spice/rundeck.h"

#include <cmath>
#include <ostream>

#include "spice/analysis.h"
#include "util/plot.h"
#include "util/table.h"
#include "util/units.h"

namespace ahfic::spice {

namespace {

namespace u = ahfic::util;

/// User-visible nodes: skip device-internal ('#') and subckt-internal
/// ('.') nodes, and ground.
std::vector<int> visibleNodes(const Circuit& ckt, int maxColumns) {
  std::vector<int> nodes;
  for (int id = 1; id < ckt.nodeCount(); ++id) {
    const std::string& name = ckt.nodeName(id);
    if (name.find('#') != std::string::npos) continue;
    if (name.find('.') != std::string::npos) continue;
    nodes.push_back(id);
    if (static_cast<int>(nodes.size()) >= maxColumns) break;
  }
  if (nodes.empty()) {
    for (int id = 1;
         id < ckt.nodeCount() &&
         static_cast<int>(nodes.size()) < maxColumns;
         ++id)
      nodes.push_back(id);
  }
  return nodes;
}

void printOp(const Circuit& ckt, const std::vector<double>& x,
             std::ostream& os) {
  os << "* operating point\n";
  u::Table t({"node", "voltage [V]"});
  Solution s(&x);
  for (int id = 1; id < ckt.nodeCount(); ++id) {
    const std::string& name = ckt.nodeName(id);
    if (name.find('#') != std::string::npos) continue;
    t.addRow({name, u::fixed(s.at(id), 6)});
  }
  t.print(os);
  os << '\n';
}

void printDc(const Circuit& ckt, const DcRequest& req,
             const DcSweepResult& res, std::ostream& os,
             const RunDeckOptions& opt) {
  os << "* dc sweep of " << req.source << '\n';
  const auto nodes = visibleNodes(ckt, opt.maxColumns);
  std::vector<std::string> header{req.source};
  for (int id : nodes) header.push_back("V(" + ckt.nodeName(id) + ")");
  u::Table t(header);
  const size_t stride =
      std::max<size_t>(1, res.sweep.size() / opt.maxSweepRows);
  for (size_t k = 0; k < res.sweep.size(); k += stride) {
    std::vector<std::string> row{u::fixed(res.sweep[k], 4)};
    for (int id : nodes) row.push_back(u::fixed(res.voltage(k, id), 6));
    t.addRow(std::move(row));
  }
  t.print(os);
  os << '\n';
}

void printAc(const Circuit& ckt, const AcResult& res, std::ostream& os,
             const RunDeckOptions& opt) {
  os << "* ac analysis (magnitude dB / phase deg)\n";
  const auto nodes = visibleNodes(ckt, opt.maxColumns / 2 + 1);
  std::vector<std::string> header{"freq"};
  for (int id : nodes) {
    header.push_back("|V(" + ckt.nodeName(id) + ")| dB");
    header.push_back("ph deg");
  }
  u::Table t(header);
  const size_t stride =
      std::max<size_t>(1, res.frequency.size() / opt.maxSweepRows);
  for (size_t k = 0; k < res.frequency.size(); k += stride) {
    std::vector<std::string> row{u::formatFrequency(res.frequency[k])};
    for (int id : nodes) {
      const auto v = res.voltage(k, id);
      row.push_back(u::fixed(res.magnitudeDb(k, id), 2));
      row.push_back(
          u::fixed(std::arg(v) * 180.0 / u::constants::kPi, 1));
    }
    t.addRow(std::move(row));
  }
  t.print(os);
  os << '\n';
}

void printTran(const Circuit& ckt, const TranResult& res, std::ostream& os,
               const RunDeckOptions& opt) {
  os << "* transient analysis (" << res.time.size() << " points)\n";
  const auto nodes = visibleNodes(ckt, opt.maxColumns);
  std::vector<std::string> header{"time"};
  for (int id : nodes) header.push_back("V(" + ckt.nodeName(id) + ")");
  u::Table t(header);
  const size_t stride =
      std::max<size_t>(1, res.time.size() / opt.maxTranRows);
  for (size_t k = 0; k < res.time.size(); k += stride) {
    std::vector<std::string> row{u::formatEngineering(res.time[k], 4)};
    Solution s(&res.values[k]);
    for (int id : nodes) row.push_back(u::fixed(s.at(id), 5));
    t.addRow(std::move(row));
  }
  t.print(os);
  os << '\n';
  // ASCII plot of the first visible node (classic .PLOT flavour).
  if (!nodes.empty() && res.time.size() >= 2) {
    u::PlotOptions popt;
    popt.xLabel = "t [s]";
    popt.yLabel = "V(" + ckt.nodeName(nodes[0]) + ") [V]";
    os << u::asciiChart(res.time, res.unknown(nodes[0]), popt) << '\n';
  }
}

void printNoise(const NoiseRequest& req, const NoiseResult& res,
                std::ostream& os, const RunDeckOptions& opt) {
  os << "* noise analysis at node " << req.outputNode << '\n';
  u::Table t({"freq", "output PSD [V^2/Hz]", "spot noise [nV/rtHz]"});
  const size_t stride =
      std::max<size_t>(1, res.frequency.size() / opt.maxSweepRows);
  for (size_t k = 0; k < res.frequency.size(); k += stride) {
    t.addRow({u::formatFrequency(res.frequency[k]),
              u::formatEngineering(res.outputPsd[k], 4),
              u::fixed(std::sqrt(res.outputPsd[k]) * 1e9, 3)});
  }
  t.print(os);
  os << "total over band: " << u::formatEngineering(res.rmsVoltage(), 4)
     << " Vrms\n";
  os << "top contributors:\n";
  for (size_t k = 0; k < res.contributions.size() && k < 5; ++k)
    os << "  " << res.contributions[k].label << "  ("
       << u::formatEngineering(res.contributions[k].variance, 3)
       << " V^2)\n";
  os << '\n';
}

/// Maps the deck's `.OPTIONS` solver string onto a backend; unknown or
/// empty strings fall back to the size heuristic.
SolverKind solverFromDeck(const std::string& option) {
  if (option == "dense") return SolverKind::kDense;
  if (option == "sparse") return SolverKind::kSparse;
  if (option == "legacy") return SolverKind::kSparseLegacy;
  return SolverKind::kAuto;
}

}  // namespace

void runDeck(Deck& deck, std::ostream& os, const RunDeckOptions& options) {
  if (!deck.title.empty()) os << deck.title << "\n\n";
  if (deck.analyses.empty()) {
    os << "* no analyses requested; nothing to do\n";
    return;
  }
  AnalysisOptions anOpts = options.analysis;
  if (!deck.solverOption.empty())
    anOpts.solver = solverFromDeck(deck.solverOption);
  for (const auto& request : deck.analyses) {
    Analyzer an(deck.circuit, anOpts);
    if (std::holds_alternative<OpRequest>(request)) {
      printOp(deck.circuit, an.op(), os);
    } else if (const auto* dc = std::get_if<DcRequest>(&request)) {
      printDc(deck.circuit, *dc,
              an.dcSweep(dc->source, dc->start, dc->stop, dc->step), os,
              options);
    } else if (const auto* ac = std::get_if<AcRequest>(&request)) {
      printAc(deck.circuit,
              an.ac(logspace(ac->fStart, ac->fStop, ac->pointsPerDecade)),
              os, options);
    } else if (const auto* tr = std::get_if<TranRequest>(&request)) {
      printTran(deck.circuit, an.transient(tr->tstop, tr->maxStep), os,
                options);
    } else if (const auto* nz = std::get_if<NoiseRequest>(&request)) {
      printNoise(*nz,
                 an.noise(logspace(nz->fStart, nz->fStop,
                                   nz->pointsPerDecade),
                          nz->outputNode, an.op()),
                 os, options);
    }
  }
}

}  // namespace ahfic::spice
