#pragma once
// Deck runner: executes the analysis requests of a parsed deck and prints
// SPICE-listing-style results. This is what turns the parser + analyses
// into a usable batch simulator (see examples/spice_cli.cpp).

#include <iosfwd>

#include "spice/parser.h"

namespace ahfic::spice {

/// Output shaping for runDeck.
struct RunDeckOptions {
  int maxColumns = 8;     ///< node-voltage columns per printed table
  int maxTranRows = 40;   ///< transient rows (decimated to this many)
  int maxSweepRows = 60;  ///< DC/AC rows
};

/// Runs every analysis in the deck in order, printing each result to
/// `os`. Node columns are the user-named nodes (internal '#'/'.'-scoped
/// nodes are skipped unless there is nothing else). Throws on analysis
/// failures (non-convergence etc.).
void runDeck(Deck& deck, std::ostream& os,
             const RunDeckOptions& options = {});

}  // namespace ahfic::spice
