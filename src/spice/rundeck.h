#pragma once
// Deck runner: executes the analysis requests of a parsed deck and prints
// SPICE-listing-style results. This is what turns the parser + analyses
// into a usable batch simulator (see examples/spice_cli.cpp).

#include <iosfwd>

#include "spice/analysis.h"
#include "spice/parser.h"

namespace ahfic::spice {

/// Output shaping for runDeck.
struct RunDeckOptions {
  int maxColumns = 8;     ///< node-voltage columns per printed table
  int maxTranRows = 40;   ///< transient rows (decimated to this many)
  int maxSweepRows = 60;  ///< DC/AC rows
  /// Base analysis options (tolerances, forensics, solver choice) for
  /// every analysis in the deck. A `.OPTIONS SOLVER=` card in the deck
  /// still overrides the backend; everything else passes through, which
  /// is how the runner's retry ladder and --diag reach deck solves.
  AnalysisOptions analysis;
};

/// Runs every analysis in the deck in order, printing each result to
/// `os`. Node columns are the user-named nodes (internal '#'/'.'-scoped
/// nodes are skipped unless there is nothing else). Throws on analysis
/// failures (non-convergence etc.).
void runDeck(Deck& deck, std::ostream& os,
             const RunDeckOptions& options = {});

}  // namespace ahfic::spice
