#pragma once
// Convergence forensics: opt-in per-Newton-iteration telemetry and
// structured "ahfic-diag-v1" failure reports.
//
// The recorder is owned by spice::Analyzer and only exists when
// AnalysisOptions::forensics is set, so the regular hot path carries a
// single null-pointer check per iteration. On ConvergenceError the
// analyzer turns the recorded trail into a DiagReport — the last-K
// iteration samples, per-node / per-device suspect rankings with names
// resolved from the netlist, the continuation stage that failed, and
// heuristic hints ("floating-ish node N, consider gmin", "oscillating
// residual at Q3, consider damping") — and attaches its serialized JSON
// to the exception (util/error.h), where the runner's retry ladder and
// the CLIs pick it up.
//
// Usage (report consumption):
//   try { an.op(); }
//   catch (const ConvergenceError& e) {
//     if (e.diag()) {
//       DiagReport r = DiagReport::fromJson(parseJson(*e.diag()));
//       std::cerr << r.renderText();
//     }
//   }

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace ahfic::spice {

class Circuit;
class Device;

/// One Newton iteration's telemetry sample (ring-buffered; the last
/// `trailDepth` samples survive to the report).
struct IterationSample {
  long index = 0;         ///< 1-based iteration index within the analysis
  double maxDelta = 0.0;  ///< largest |x_new - x_old| over all unknowns
  double worstRatio = 0.0;  ///< worst |dx| / tolerance over all unknowns
  int worstUnknown = 0;     ///< unknown id (1-based) holding worstRatio
  bool limited = false;     ///< a device limited its junction voltage
  bool singular = false;    ///< the matrix factorization failed
  /// First device that reported limiting this iteration (nullptr when
  /// none; only valid while the source Circuit is alive).
  const Device* limitedDevice = nullptr;
};

/// One homotopy event: a full Newton solve attempted at a continuation
/// point (plain Newton, one gmin rung, one source-scale rung).
struct ContinuationEvent {
  std::string stage;  ///< "newton" / "gmin-step" / "source-step"
  double value = 0.0;  ///< gmin [S] or source scale for the solve
  bool converged = false;
  int iterations = 0;
};

/// One transient timestep-controller decision.
struct StepEvent {
  double time = 0.0;  ///< target time of the attempted step
  double dt = 0.0;
  bool accepted = false;
  int iterations = 0;       ///< Newton iterations the attempt took
  double maxDelta = 0.0;    ///< from the attempt's last Newton iteration
  int worstUnknown = 0;     ///< ditto
};

/// Telemetry sink the Analyzer feeds while forensics are enabled. All
/// buffers are bounded: iteration samples and step events are rings,
/// continuation events stop recording at a fixed cap (the count still
/// advances through totalIterations()).
class ForensicsRecorder {
 public:
  struct UnknownScore {
    long worstCount = 0;   ///< iterations this unknown was the worst
    double ratioSum = 0.0; ///< accumulated worst |dx|/tol (capped per hit)
  };

  explicit ForensicsRecorder(int trailDepth = 64);

  /// Clears every buffer and counter (new stats window).
  void reset();

  /// Scratch vector the analyzer points LoadContext::limitLog at; the
  /// next recordIteration() consumes and clears it.
  std::vector<const Device*>* limitScratch() { return &limitScratch_; }

  /// Records one Newton iteration. Pass worstUnknown = 0 when no scan
  /// ran (singular systems). Consumes limitScratch().
  void recordIteration(double maxDelta, double worstRatio, int worstUnknown,
                       bool limited, bool singular);
  void recordContinuation(const char* stage, double value, bool converged,
                          int iterations);
  /// Records a timestep attempt; maxDelta / worstUnknown are taken from
  /// the most recent iteration sample.
  void recordStep(double time, double dt, bool accepted, int iterations);
  /// Attaches a key/value to the eventual report (e.g. the DC sweep's
  /// source name and current point). Same key overwrites.
  void setContext(const std::string& key, const std::string& value);

  long totalIterations() const { return totalIterations_; }
  int trailDepth() const { return trailDepth_; }
  /// Ring contents, oldest first.
  std::vector<IterationSample> trail() const;
  std::vector<StepEvent> steps() const;
  const std::vector<ContinuationEvent>& continuation() const {
    return continuation_;
  }
  const std::map<int, UnknownScore>& unknownScores() const {
    return unknownScores_;
  }
  const std::map<const Device*, long>& limitCounts() const {
    return limitCounts_;
  }
  const std::vector<std::pair<std::string, std::string>>& context() const {
    return context_;
  }

 private:
  static constexpr int kStepDepth = 128;
  static constexpr int kContinuationCap = 256;

  int trailDepth_;
  long totalIterations_ = 0;
  std::vector<IterationSample> trail_;  // ring
  size_t trailNext_ = 0;
  IterationSample lastSample_;
  std::vector<StepEvent> steps_;  // ring
  size_t stepNext_ = 0;
  std::vector<ContinuationEvent> continuation_;
  std::map<int, UnknownScore> unknownScores_;
  std::map<const Device*, long> limitCounts_;
  std::vector<const Device*> limitScratch_;
  std::vector<std::pair<std::string, std::string>> context_;
};

// ---------------------------------------------------------------------
// The serializable report ("ahfic-diag-v1"). Everything below is plain
// strings/numbers so reports survive the process that produced them.

struct DiagIteration {
  long index = 0;
  double maxDelta = 0.0;
  double worstRatio = 0.0;
  std::string worstUnknown;  ///< "V(node)" / "I(dev)"; "" when unknown
  bool limited = false;
  bool singular = false;
  std::string limitedDevice;  ///< "" when none
};

struct DiagContinuation {
  std::string stage;
  double value = 0.0;
  bool converged = false;
  int iterations = 0;
};

struct DiagStep {
  double time = 0.0;
  double dt = 0.0;
  bool accepted = false;
  int iterations = 0;
  double maxDelta = 0.0;
  std::string worstUnknown;
};

/// A suspect unknown, ranked by how often it was the convergence
/// bottleneck. For node voltages `devices` lists the devices touching
/// the node (the likely culprits).
struct DiagSuspect {
  std::string name;
  long worstCount = 0;
  double score = 0.0;
  std::vector<std::string> devices;
};

/// A suspect device, ranked by junction-limiting activity.
struct DiagDevice {
  std::string name;
  long limitCount = 0;
  int line = -1;  ///< deck line, -1 when built programmatically
};

/// Structured convergence-failure report. `toJson` emits a
/// self-describing object tagged "schema": "ahfic-diag-v1".
struct DiagReport {
  std::string analysis;  ///< "op" / "dc_sweep" / "transient" / ...
  std::string stage;     ///< failing continuation stage
  double stageValue = 0.0;  ///< gmin, source scale, or time at failure
  std::string message;      ///< the ConvergenceError text
  int unknowns = 0;
  long totalIterations = 0;
  std::vector<DiagIteration> trail;
  std::vector<DiagContinuation> continuation;
  std::vector<DiagStep> steps;
  std::vector<DiagSuspect> nodes;
  std::vector<DiagDevice> devices;
  std::vector<std::pair<std::string, std::string>> context;
  std::vector<std::string> hints;

  util::JsonValue toJson() const;
  /// Parses a report object; throws ahfic::Error on schema mismatch.
  static DiagReport fromJson(const util::JsonValue& v);
  /// Multi-line human rendering (the CLIs' --explain output).
  std::string renderText() const;
};

/// Human-readable name of MNA unknown `id` resolved against the netlist:
/// "V(node)" for node voltages, "I(dev)" for branch currents.
std::string unknownName(const Circuit& ckt, int id);

/// Builds the report from a recorder's buffers. `singularUnknown` is the
/// unknown id whose pivot vanished in the most recent singular solve
/// (0 = none); it is folded into the suspect ranking and hints.
DiagReport buildDiagReport(const Circuit& ckt, const ForensicsRecorder& fx,
                           const std::string& analysis,
                           const std::string& stage, double stageValue,
                           const std::string& message, int unknownCount,
                           int singularUnknown);

/// File-level container for one or more reports:
/// {"schema": "ahfic-diag-v1", "reports": [...]}.
util::JsonValue diagEnvelope(const std::vector<DiagReport>& reports);
/// Parses either an envelope or a bare report object.
std::vector<DiagReport> diagReportsFromJson(const util::JsonValue& doc);

}  // namespace ahfic::spice
