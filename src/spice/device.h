#pragma once
// Device base class and the context passed to device loads.
//
// A Device owns its connectivity (node unknown-ids) and its model-card
// reference, and knows how to stamp itself into the real (DC/transient) and
// complex (AC) MNA systems. Dynamic devices (capacitors, inductors, BJT
// junction charges) integrate charge/flux states held in engine-owned state
// vectors; each device is assigned a contiguous window of state slots.

#include <string>
#include <vector>

#include "spice/solution.h"
#include "spice/stamp.h"

namespace ahfic::spice {

class Circuit;
class Device;

/// One equivalent noise current source between two unknowns, used by the
/// noise analysis. `white` is the flat spectral density; `flicker`
/// contributes flicker/f (both A^2/Hz at frequency f).
struct NoiseSourceDesc {
  int a = 0;           ///< current injected into this unknown's node
  int b = 0;           ///< ... and drawn from this one
  double white = 0.0;  ///< [A^2/Hz]
  double flicker = 0.0;///< [A^2] (divided by f)
  std::string label;   ///< "R1 thermal", "Q3 collector shot", ...

  double psdAt(double f) const {
    return white + (flicker > 0.0 && f > 0.0 ? flicker / f : 0.0);
  }
};

/// What kind of real-valued solve the engine is performing.
enum class AnalysisMode {
  kDcOp,       ///< operating point: charges static, dq/dt = 0
  kTransient,  ///< time stepping with companion models
};

/// Numerical integration method for transient.
enum class IntegMethod {
  kBackwardEuler,
  kTrapezoidal,
};

/// Context handed to Device::load on every Newton iteration.
///
/// Charge integration convention: a device with a charge state q evaluates
/// q(v) at the candidate solution and computes
///     dq/dt = c0 * (q - qPrev) - trapFactor * dqdtPrev
/// where c0 = 1/h (BE, trapFactor 0) or 2/h (trap, trapFactor 1).
/// In DC (c0 == 0) dq/dt is identically zero: capacitors are open and
/// inductors are shorts. Devices must still *record* their states so the
/// first transient step starts from the OP charges.
struct LoadContext {
  AnalysisMode mode = AnalysisMode::kDcOp;
  double time = 0.0;       ///< current transient time (0 in DC)
  double c0 = 0.0;         ///< integrator coefficient d(dq/dt)/dq
  double trapFactor = 0.0; ///< 1 for trapezoidal, 0 for BE / DC
  double gmin = 1e-12;     ///< junction shunt conductance (homotopy ramps it)
  double srcScale = 1.0;   ///< independent-source scale (source stepping)
  std::vector<double>* state = nullptr;        ///< states being written
  const std::vector<double>* prevState = nullptr;   ///< last accepted q
  const std::vector<double>* prevDstate = nullptr;  ///< last accepted dq/dt
  /// Set by devices whenever junction-voltage limiting altered their
  /// evaluation point this iteration; the engine then refuses to declare
  /// convergence (the stamped linearisation is not at the candidate).
  bool* limited = nullptr;
  /// When convergence forensics are recording, the engine points this at
  /// a per-iteration log and limiting devices append themselves; null
  /// (the default) on the regular hot path.
  std::vector<const Device*>* limitLog = nullptr;

  /// Devices call this after pnjlim to report active limiting. The
  /// three-argument form additionally attributes the event to `who` for
  /// the forensics recorder.
  void noteLimited(double vLimited, double vCandidate) const {
    if (limited != nullptr && vLimited != vCandidate) *limited = true;
  }
  void noteLimited(double vLimited, double vCandidate,
                   const Device* who) const {
    if (vLimited == vCandidate) return;
    if (limited != nullptr) *limited = true;
    if (limitLog != nullptr) limitLog->push_back(who);
  }

  /// dq/dt under the active integration rule for state slot `idx` given the
  /// freshly evaluated charge `q`; records q into `state`.
  double integrate(int idx, double q) const {
    (*state)[static_cast<size_t>(idx)] = q;
    if (c0 == 0.0) return 0.0;
    const double qPrev = (*prevState)[static_cast<size_t>(idx)];
    const double dPrev = (*prevDstate)[static_cast<size_t>(idx)];
    return c0 * (q - qPrev) - trapFactor * dPrev;
  }
};

/// Abstract circuit element.
class Device {
 public:
  Device(std::string name, std::vector<int> nodes)
      : name_(std::move(name)), nodes_(std::move(nodes)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<int>& nodes() const { return nodes_; }

  /// Number of extra branch-current unknowns this device needs.
  virtual int branchCount() const { return 0; }
  /// Number of charge/flux state slots this device needs.
  virtual int stateCount() const { return 0; }

  /// Called by the engine before an analysis with the id of this device's
  /// first branch unknown (ids are contiguous).
  void assignBranchBase(int id) { branchBase_ = id; }
  int branchBase() const { return branchBase_; }
  /// Unknown id of branch `k` of this device.
  int branchId(int k = 0) const { return branchBase_ + k; }

  /// Called by the engine with the index of this device's first state slot.
  void assignStateBase(int idx) { stateBase_ = idx; }
  int stateBase() const { return stateBase_; }

  /// Stamps the linearised device into the real MNA system at candidate
  /// solution `x`. Called every Newton iteration of OP and transient.
  virtual void load(Stamper& s, const Solution& x,
                    const LoadContext& ctx) = 0;

  /// Stamps the small-signal model, linearised at operating point `op`,
  /// into the complex MNA system at angular frequency `omega`.
  virtual void loadAc(AcStamper& s, const Solution& op, double omega) = 0;

  /// Nonlinear devices force Newton iteration (and perform junction-voltage
  /// limiting internally, SPICE style: load() evaluates at a limited
  /// junction voltage remembered across iterations).
  virtual bool isNonlinear() const { return false; }

  /// Called once before each Newton solve (OP attempt or transient step) so
  /// devices can seed their limiting history from the starting point `x`.
  virtual void beginSolve(const Solution& x) { (void)x; }

  /// Appends this device's equivalent noise current sources, linearised at
  /// operating point `op`, for circuit temperature `tempK`. Noiseless
  /// devices (sources, ideal controlled sources, C, L) append nothing.
  virtual void appendNoise(std::vector<NoiseSourceDesc>& out,
                           const Solution& op, double tempK) const {
    (void)out;
    (void)op;
    (void)tempK;
  }

 protected:
  /// Slot memos for the CSR stamp path: load() and loadAc() wrap their
  /// stamper in a SlotWriter bound to these, so each device caches the
  /// value-array indices it stamps (one memo per scalar domain — the
  /// real and complex patterns differ).
  StampMemo& stampMemo() { return stampMemo_; }
  StampMemo& stampMemoAc() { return stampMemoAc_; }

 private:
  std::string name_;
  std::vector<int> nodes_;
  int branchBase_ = -1;
  int stateBase_ = -1;
  StampMemo stampMemo_;
  StampMemo stampMemoAc_;
};

}  // namespace ahfic::spice
