#pragma once
// Compressed-sparse-row sparsity pattern shared by the structure-caching
// solver stack (sparse_lu.h) and the CSR stampers (stamp.h).
//
// The pattern is the piece of an MNA system that stays fixed while a
// circuit is iterated: Newton iterations, transient steps and sweep
// points all write different *values* into the same *positions*. A
// CsrPattern therefore owns positions only; values live in a parallel
// caller-owned array indexed by "slot" (the position of a column index
// in colIdx()). Everything downstream — device stamp memos, the static
// value baseline, the symbolic factorization — caches work keyed by the
// pattern's epoch, a process-unique id bumped on every rebuild or
// growth, so stale caches self-invalidate when the topology changes.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace ahfic::spice {

/// Sparsity pattern of an n x n matrix in CSR form (0-based rows/cols).
class CsrPattern {
 public:
  CsrPattern() = default;

  int size() const { return n_; }
  size_t nonzeros() const { return colIdx_.size(); }

  /// Process-unique id of this pattern revision; 0 only before the first
  /// build(). Caches keyed by epoch never collide across patterns.
  std::uint64_t epoch() const { return epoch_; }

  const std::vector<int>& rowPtr() const { return rowPtr_; }
  const std::vector<int>& colIdx() const { return colIdx_; }

  /// Slot (value-array index) of entry (r, c), or -1 when the position
  /// is outside the pattern.
  int slot(int r, int c) const {
    const auto first = colIdx_.begin() + rowPtr_[static_cast<size_t>(r)];
    const auto last = colIdx_.begin() + rowPtr_[static_cast<size_t>(r) + 1];
    const auto it = std::lower_bound(first, last, c);
    if (it != last && *it == c)
      return static_cast<int>(it - colIdx_.begin());
    return -1;
  }

  /// (Re)builds the pattern from position pairs (duplicates are fine).
  /// The full diagonal is always included so every pivot has a home even
  /// when a device never stamps it. Bumps the epoch.
  void build(int n, std::vector<std::pair<int, int>> entries) {
    n_ = n;
    for (int i = 0; i < n; ++i) entries.emplace_back(i, i);
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()),
                  entries.end());
    rowPtr_.assign(static_cast<size_t>(n) + 1, 0);
    colIdx_.clear();
    colIdx_.reserve(entries.size());
    for (const auto& [r, c] : entries) {
      ++rowPtr_[static_cast<size_t>(r) + 1];
      colIdx_.push_back(c);
    }
    for (int r = 0; r < n; ++r)
      rowPtr_[static_cast<size_t>(r) + 1] += rowPtr_[static_cast<size_t>(r)];
    epoch_ = nextEpoch();
  }

  /// Extends the pattern with additional positions, keeping existing
  /// ones. Returns the number of genuinely new positions; bumps the
  /// epoch only when something was added (all slots shift on growth).
  size_t grow(const std::vector<std::pair<int, int>>& entries) {
    std::vector<std::pair<int, int>> fresh;
    for (const auto& [r, c] : entries)
      if (slot(r, c) < 0) fresh.emplace_back(r, c);
    std::sort(fresh.begin(), fresh.end());
    fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
    if (fresh.empty()) return 0;
    std::vector<std::pair<int, int>> all;
    all.reserve(nonzeros() + fresh.size());
    for (int r = 0; r < n_; ++r)
      for (int p = rowPtr_[static_cast<size_t>(r)];
           p < rowPtr_[static_cast<size_t>(r) + 1]; ++p)
        all.emplace_back(r, colIdx_[static_cast<size_t>(p)]);
    all.insert(all.end(), fresh.begin(), fresh.end());
    build(n_, std::move(all));
    return fresh.size();
  }

 private:
  static std::uint64_t nextEpoch() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  int n_ = 0;
  std::vector<int> rowPtr_{0};
  std::vector<int> colIdx_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ahfic::spice
