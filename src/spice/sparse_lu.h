#pragma once
// Structure-caching sparse LU for MNA systems, in the KLU tradition:
//
//   analyze(pattern)  — once per circuit topology: builds a column view,
//                       computes a Markowitz/minimum-degree fill-reducing
//                       column order on the symmetrized pattern.
//   factor(values)    — first call runs a full Gilbert-Peierls
//                       left-looking factorization with threshold partial
//                       pivoting (diagonal preferred while within 10x of
//                       the column maximum) and records the resulting
//                       fill pattern and pivot sequence; every later call
//                       is a numeric *refactorization* that replays the
//                       recorded elimination — no reachability DFS, no
//                       pivot search, bit-predictable work per call.
//   solve(b, x)       — forward/back substitution with the cached
//                       factors; reusable for many right-hand sides per
//                       factorization (noise analysis leans on this).
//
// A refactorization whose reused pivot collapses (relative to its
// column's magnitude) falls back to a fresh full factorization with
// pivoting, so long homotopy ramps and wide AC sweeps stay stable. The
// value array is laid out per CsrPattern slots, which is exactly what
// the CSR stampers (stamp.h) produce, so Newton iterations hand their
// assembled values straight to factor() without any copying or
// reordering.
//
// Everything is templated over the scalar so the same code serves
// DC/transient (double) and AC/noise (std::complex<double>).

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "spice/csr.h"
#include "spice/linalg.h"  // pivotMag
#include "util/error.h"

namespace ahfic::spice {

template <typename T>
class SparseLU {
 public:
  enum class FactorOutcome {
    kSingular,    ///< no usable pivot; factors are invalid
    kFullFactor,  ///< fresh pivoting factorization (pattern recorded)
    kRefactor,    ///< numeric-only replay of the recorded pattern
  };

  struct Stats {
    long fullFactors = 0;  ///< pivoting factorizations performed
    long refactors = 0;    ///< pattern-reusing numeric refactorizations
    size_t nnzL = 0;       ///< off-diagonal nonzeros in L
    size_t nnzU = 0;       ///< off-diagonal nonzeros in U
  };

  /// Binds the solver to one pattern revision: copies the structure,
  /// builds the column (CSC) view and computes the fill-reducing column
  /// order. Invalidates any previously recorded factorization.
  void analyze(const CsrPattern& pat) {
    n_ = pat.size();
    epoch_ = pat.epoch();
    rowPtr_ = pat.rowPtr();
    colIdx_ = pat.colIdx();
    buildColumnView();
    orderColumns();
    haveSymbolic_ = false;
    stats_.nnzL = stats_.nnzU = 0;
  }

  /// True when the solver was analyzed for pattern revision `epoch`.
  bool analyzedFor(std::uint64_t epoch) const {
    return epoch != 0 && epoch_ == epoch;
  }

  /// Copies another solver's symbolic analysis (structure, column view
  /// and fill-reducing order) without redoing the minimum-degree pass.
  /// The ordering is a deterministic function of the pattern, so an
  /// adopted analysis is bitwise identical to running analyze() on the
  /// same pattern — this is how a replica batch shares one symbolic
  /// analysis across many numerically distinct systems.
  void adoptAnalysis(const SparseLU& other) {
    if (other.epoch_ == 0) throw Error("SparseLU::adoptAnalysis: unanalyzed");
    n_ = other.n_;
    epoch_ = other.epoch_;
    rowPtr_ = other.rowPtr_;
    colIdx_ = other.colIdx_;
    aColPtr_ = other.aColPtr_;
    aRowIdx_ = other.aRowIdx_;
    aCsrSlot_ = other.aCsrSlot_;
    colOrder_ = other.colOrder_;
    haveSymbolic_ = false;
    lastSingularCol_ = -1;
    stats_ = Stats{};
  }

  /// Forgets the recorded numeric factorization (keeps the symbolic
  /// analysis): the next factor() runs a fresh pivoting factorization.
  /// Used by the batch engine so every operating point opens with the
  /// same full-factor/refactor sequence a fresh Analyzer would produce.
  void resetNumeric() { haveSymbolic_ = false; }

  /// True when a factorization has been recorded, i.e. the next factor()
  /// will attempt the numeric-only replay first.
  bool hasRecordedFactorization() const { return haveSymbolic_; }

  /// Numeric factorization of the slot-ordered value array `vals`
  /// (size == pattern nonzeros). See class comment for the
  /// full-vs-refactor behaviour.
  FactorOutcome factor(const std::vector<T>& vals) {
    if (epoch_ == 0) throw Error("SparseLU::factor before analyze");
    lastSingularCol_ = -1;
    if (haveSymbolic_ && refactor(vals)) {
      ++stats_.refactors;
      return FactorOutcome::kRefactor;
    }
    if (fullFactor(vals)) {
      ++stats_.fullFactors;
      return FactorOutcome::kFullFactor;
    }
    haveSymbolic_ = false;
    return FactorOutcome::kSingular;
  }

  /// Solves A x = b with the current factors (b untouched).
  void solve(const std::vector<T>& b, std::vector<T>& x) const {
    const int n = n_;
    work2_.resize(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k)
      work2_[static_cast<size_t>(k)] = b[static_cast<size_t>(prow_[static_cast<size_t>(k)])];
    // Forward: L z = P b (unit diagonal; L rows are original ids).
    for (int k = 0; k < n; ++k) {
      const T alpha = work2_[static_cast<size_t>(k)];
      if (alpha == T{}) continue;
      for (int p = lColPtr_[static_cast<size_t>(k)];
           p < lColPtr_[static_cast<size_t>(k) + 1]; ++p)
        work2_[static_cast<size_t>(pinv_[static_cast<size_t>(lRows_[static_cast<size_t>(p)])])] -=
            alpha * lVals_[static_cast<size_t>(p)];
    }
    // Backward: U y = z (column-oriented, diagonal stored separately).
    for (int k = n - 1; k >= 0; --k) {
      const T yk = work2_[static_cast<size_t>(k)] / diag_[static_cast<size_t>(k)];
      work2_[static_cast<size_t>(k)] = yk;
      if (yk == T{}) continue;
      for (int p = uColPtr_[static_cast<size_t>(k)];
           p < uColPtr_[static_cast<size_t>(k) + 1]; ++p)
        work2_[static_cast<size_t>(uSteps_[static_cast<size_t>(p)])] -=
            uVals_[static_cast<size_t>(p)] * yk;
    }
    x.resize(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k)
      x[static_cast<size_t>(colOrder_[static_cast<size_t>(k)])] =
          work2_[static_cast<size_t>(k)];
  }

  const Stats& stats() const { return stats_; }

  /// Original column index that lacked a usable pivot in the most recent
  /// kSingular factor() outcome, or -1 when the last factor() succeeded.
  /// The failing column names the unknown with no independent equation
  /// (e.g. a floating node), which convergence forensics reports.
  int lastSingularColumn() const { return lastSingularCol_; }

 private:
  // Pivoting thresholds. The diagonal is preferred while within
  // kPivotTol of the column maximum (keeps the near-symmetric MNA
  // structure, bounds growth by 1/kPivotTol per step); a reused pivot
  // that shrinks below kRefactorRelTol of its column's magnitude
  // triggers a fall back to full pivoting.
  static constexpr double kPivotTol = 0.1;
  static constexpr double kRefactorRelTol = 1e-12;
  static constexpr double kAbsTiny = 1e-300;

  void buildColumnView() {
    const int n = n_;
    const size_t nnz = colIdx_.size();
    aColPtr_.assign(static_cast<size_t>(n) + 1, 0);
    aRowIdx_.resize(nnz);
    aCsrSlot_.resize(nnz);
    for (size_t p = 0; p < nnz; ++p)
      ++aColPtr_[static_cast<size_t>(colIdx_[p]) + 1];
    for (int c = 0; c < n; ++c)
      aColPtr_[static_cast<size_t>(c) + 1] += aColPtr_[static_cast<size_t>(c)];
    std::vector<int> next(aColPtr_.begin(), aColPtr_.end() - 1);
    for (int r = 0; r < n; ++r) {
      for (int p = rowPtr_[static_cast<size_t>(r)];
           p < rowPtr_[static_cast<size_t>(r) + 1]; ++p) {
        const int c = colIdx_[static_cast<size_t>(p)];
        const int q = next[static_cast<size_t>(c)]++;
        aRowIdx_[static_cast<size_t>(q)] = r;
        aCsrSlot_[static_cast<size_t>(q)] = p;
      }
    }
  }

  /// Minimum-degree ordering on the symmetrized pattern (A + A^T, no
  /// diagonal), with clique materialization on elimination. Falls back
  /// to the natural order when the merge work explodes (near-dense
  /// patterns), where ordering would not pay for itself anyway.
  void orderColumns() {
    const int n = n_;
    colOrder_.resize(static_cast<size_t>(n));
    std::vector<std::vector<int>> adj(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int p = rowPtr_[static_cast<size_t>(r)];
           p < rowPtr_[static_cast<size_t>(r) + 1]; ++p) {
        const int c = colIdx_[static_cast<size_t>(p)];
        if (c == r) continue;
        adj[static_cast<size_t>(r)].push_back(c);
        adj[static_cast<size_t>(c)].push_back(r);
      }
    }
    for (auto& a : adj) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    std::vector<char> elim(static_cast<size_t>(n), 0);
    long long budget = 4LL * 1000 * 1000 * 10;  // merge ops before bailing
    std::vector<int> merged;
    for (int step = 0; step < n; ++step) {
      int best = -1;
      size_t bestDeg = 0;
      for (int v = 0; v < n; ++v) {
        if (elim[static_cast<size_t>(v)]) continue;
        const size_t d = adj[static_cast<size_t>(v)].size();
        if (best < 0 || d < bestDeg) {
          best = v;
          bestDeg = d;
        }
      }
      colOrder_[static_cast<size_t>(step)] = best;
      elim[static_cast<size_t>(best)] = 1;
      auto& nbrs = adj[static_cast<size_t>(best)];
      for (const int u : nbrs) {
        auto& au = adj[static_cast<size_t>(u)];
        merged.clear();
        merged.reserve(au.size() + nbrs.size());
        std::set_union(au.begin(), au.end(), nbrs.begin(), nbrs.end(),
                       std::back_inserter(merged));
        au.clear();
        for (const int w : merged)
          if (w != u && w != best && !elim[static_cast<size_t>(w)])
            au.push_back(w);
        budget -= static_cast<long long>(merged.size());
      }
      nbrs.clear();
      nbrs.shrink_to_fit();
      if (budget < 0) {
        // Bail to natural order: ordering cost outgrew its benefit.
        for (int k = 0; k < n; ++k) colOrder_[static_cast<size_t>(k)] = k;
        return;
      }
    }
  }

  /// Full Gilbert-Peierls left-looking factorization with threshold
  /// partial pivoting; records the fill pattern and pivot sequence for
  /// later refactorizations. Returns false on singularity.
  bool fullFactor(const std::vector<T>& vals) {
    const int n = n_;
    pinv_.assign(static_cast<size_t>(n), -1);
    prow_.assign(static_cast<size_t>(n), -1);
    diag_.assign(static_cast<size_t>(n), T{});
    work_.assign(static_cast<size_t>(n), T{});
    visit_.assign(static_cast<size_t>(n), -1);
    std::vector<std::vector<std::pair<int, T>>> lCols(
        static_cast<size_t>(n));
    std::vector<std::vector<std::pair<int, T>>> uCols(
        static_cast<size_t>(n));
    std::vector<int> topo;
    std::vector<std::pair<int, int>> stack;  // (row, child cursor)

    for (int k = 0; k < n; ++k) {
      const int j = colOrder_[static_cast<size_t>(k)];
      // Symbolic: rows reachable from A(:,j) through finished L columns,
      // collected in DFS postorder (reverse = topological order).
      topo.clear();
      for (int p = aColPtr_[static_cast<size_t>(j)];
           p < aColPtr_[static_cast<size_t>(j) + 1]; ++p) {
        const int r0 = aRowIdx_[static_cast<size_t>(p)];
        if (visit_[static_cast<size_t>(r0)] == k) continue;
        visit_[static_cast<size_t>(r0)] = k;
        stack.emplace_back(r0, 0);
        while (!stack.empty()) {
          auto& [r, cur] = stack.back();
          const int kp = pinv_[static_cast<size_t>(r)];
          bool descended = false;
          if (kp >= 0) {
            auto& lc = lCols[static_cast<size_t>(kp)];
            while (cur < static_cast<int>(lc.size())) {
              const int child = lc[static_cast<size_t>(cur++)].first;
              if (visit_[static_cast<size_t>(child)] != k) {
                visit_[static_cast<size_t>(child)] = k;
                stack.emplace_back(child, 0);
                descended = true;
                break;
              }
            }
          }
          if (!descended &&
              (kp < 0 || stack.back().second >=
                             static_cast<int>(lCols[static_cast<size_t>(kp)].size()))) {
            topo.push_back(stack.back().first);
            stack.pop_back();
          }
        }
      }
      // Numeric: scatter A(:,j), then eliminate in topological order.
      for (int p = aColPtr_[static_cast<size_t>(j)];
           p < aColPtr_[static_cast<size_t>(j) + 1]; ++p)
        work_[static_cast<size_t>(aRowIdx_[static_cast<size_t>(p)])] =
            vals[static_cast<size_t>(aCsrSlot_[static_cast<size_t>(p)])];
      for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const int s = *it;
        const int kp = pinv_[static_cast<size_t>(s)];
        if (kp < 0) continue;
        const T alpha = work_[static_cast<size_t>(s)];
        uCols[static_cast<size_t>(k)].emplace_back(kp, alpha);
        if (alpha != T{})
          for (const auto& [r, lv] : lCols[static_cast<size_t>(kp)])
            work_[static_cast<size_t>(r)] -= alpha * lv;
      }
      // Pivot: largest unpivoted row, diagonal preferred when close.
      int maxRow = -1;
      double maxMag = 0.0;
      for (const int s : topo) {
        if (pinv_[static_cast<size_t>(s)] >= 0) continue;
        const double m = pivotMag(work_[static_cast<size_t>(s)]);
        if (maxRow < 0 || m > maxMag) {
          maxMag = m;
          maxRow = s;
        }
      }
      if (maxRow < 0 || maxMag < kAbsTiny) {
        lastSingularCol_ = j;
        clearWork(topo);
        return false;
      }
      int pivot = maxRow;
      if (pinv_[static_cast<size_t>(j)] < 0 &&
          visit_[static_cast<size_t>(j)] == k &&
          pivotMag(work_[static_cast<size_t>(j)]) >= kPivotTol * maxMag)
        pivot = j;
      prow_[static_cast<size_t>(k)] = pivot;
      pinv_[static_cast<size_t>(pivot)] = k;
      const T piv = work_[static_cast<size_t>(pivot)];
      diag_[static_cast<size_t>(k)] = piv;
      for (const int s : topo)
        if (pinv_[static_cast<size_t>(s)] < 0)
          lCols[static_cast<size_t>(k)].emplace_back(
              s, work_[static_cast<size_t>(s)] / piv);
      clearWork(topo);
    }
    // Flatten; U columns sorted by pivot step so the refactor replay is
    // a plain ascending scan.
    lColPtr_.assign(static_cast<size_t>(n) + 1, 0);
    uColPtr_.assign(static_cast<size_t>(n) + 1, 0);
    size_t lNnz = 0, uNnz = 0;
    for (int k = 0; k < n; ++k) {
      lNnz += lCols[static_cast<size_t>(k)].size();
      uNnz += uCols[static_cast<size_t>(k)].size();
    }
    lRows_.resize(lNnz);
    lVals_.resize(lNnz);
    uSteps_.resize(uNnz);
    uVals_.resize(uNnz);
    size_t lp = 0, up = 0;
    for (int k = 0; k < n; ++k) {
      for (const auto& [r, v] : lCols[static_cast<size_t>(k)]) {
        lRows_[lp] = r;
        lVals_[lp++] = v;
      }
      lColPtr_[static_cast<size_t>(k) + 1] = static_cast<int>(lp);
      auto& uc = uCols[static_cast<size_t>(k)];
      std::sort(uc.begin(), uc.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (const auto& [s, v] : uc) {
        uSteps_[up] = s;
        uVals_[up++] = v;
      }
      uColPtr_[static_cast<size_t>(k) + 1] = static_cast<int>(up);
    }
    stats_.nnzL = lNnz;
    stats_.nnzU = uNnz;
    haveSymbolic_ = true;
    return true;
  }

  /// Numeric-only replay of the recorded factorization: same pivots,
  /// same fill, no searching. Returns false when a reused pivot is no
  /// longer trustworthy (caller then re-runs fullFactor).
  bool refactor(const std::vector<T>& vals) {
    const int n = n_;
    for (int k = 0; k < n; ++k) {
      const int j = colOrder_[static_cast<size_t>(k)];
      // Zero the column's final pattern, then scatter A(:,j).
      for (int p = uColPtr_[static_cast<size_t>(k)];
           p < uColPtr_[static_cast<size_t>(k) + 1]; ++p)
        work_[static_cast<size_t>(
            prow_[static_cast<size_t>(uSteps_[static_cast<size_t>(p)])])] = T{};
      work_[static_cast<size_t>(prow_[static_cast<size_t>(k)])] = T{};
      for (int p = lColPtr_[static_cast<size_t>(k)];
           p < lColPtr_[static_cast<size_t>(k) + 1]; ++p)
        work_[static_cast<size_t>(lRows_[static_cast<size_t>(p)])] = T{};
      for (int p = aColPtr_[static_cast<size_t>(j)];
           p < aColPtr_[static_cast<size_t>(j) + 1]; ++p)
        work_[static_cast<size_t>(aRowIdx_[static_cast<size_t>(p)])] =
            vals[static_cast<size_t>(aCsrSlot_[static_cast<size_t>(p)])];
      double colMax = 0.0;
      for (int p = uColPtr_[static_cast<size_t>(k)];
           p < uColPtr_[static_cast<size_t>(k) + 1]; ++p) {
        const int kp = uSteps_[static_cast<size_t>(p)];
        const T alpha =
            work_[static_cast<size_t>(prow_[static_cast<size_t>(kp)])];
        uVals_[static_cast<size_t>(p)] = alpha;
        const double m = pivotMag(alpha);
        if (m > colMax) colMax = m;
        if (alpha == T{}) continue;
        for (int q = lColPtr_[static_cast<size_t>(kp)];
             q < lColPtr_[static_cast<size_t>(kp) + 1]; ++q)
          work_[static_cast<size_t>(lRows_[static_cast<size_t>(q)])] -=
              alpha * lVals_[static_cast<size_t>(q)];
      }
      const T piv = work_[static_cast<size_t>(prow_[static_cast<size_t>(k)])];
      const double pm = pivotMag(piv);
      if (pm > colMax) colMax = pm;
      for (int p = lColPtr_[static_cast<size_t>(k)];
           p < lColPtr_[static_cast<size_t>(k) + 1]; ++p) {
        const double m =
            pivotMag(work_[static_cast<size_t>(lRows_[static_cast<size_t>(p)])]);
        if (m > colMax) colMax = m;
      }
      if (pm < kAbsTiny || pm < kRefactorRelTol * colMax) return false;
      diag_[static_cast<size_t>(k)] = piv;
      for (int p = lColPtr_[static_cast<size_t>(k)];
           p < lColPtr_[static_cast<size_t>(k) + 1]; ++p)
        lVals_[static_cast<size_t>(p)] =
            work_[static_cast<size_t>(lRows_[static_cast<size_t>(p)])] / piv;
    }
    return true;
  }

  void clearWork(const std::vector<int>& rows) {
    for (const int r : rows) work_[static_cast<size_t>(r)] = T{};
  }

  int n_ = 0;
  std::uint64_t epoch_ = 0;
  bool haveSymbolic_ = false;
  int lastSingularCol_ = -1;
  Stats stats_;

  // Pattern (CSR copy) and its column view. aCsrSlot_ maps each CSC
  // position back to the caller's slot-ordered value array.
  std::vector<int> rowPtr_, colIdx_;
  std::vector<int> aColPtr_, aRowIdx_, aCsrSlot_;

  // Ordering and pivoting: column step k factors original column
  // colOrder_[k]; prow_[k] is the original row pivoted at step k.
  std::vector<int> colOrder_, prow_, pinv_;

  // Factors: L per column (original row ids, unit diagonal implicit),
  // U per column (pivot steps, ascending), diagonal separate.
  std::vector<int> lColPtr_, lRows_, uColPtr_, uSteps_;
  std::vector<T> lVals_, uVals_, diag_;

  std::vector<T> work_;
  std::vector<int> visit_;
  mutable std::vector<T> work2_;
};

}  // namespace ahfic::spice
