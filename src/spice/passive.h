#pragma once
// Linear passive elements: resistor, capacitor, inductor.

#include "spice/device.h"

namespace ahfic::spice {

/// Linear resistor between nodes a and b.
class Resistor final : public Device {
 public:
  /// `ohms` must be > 0.
  Resistor(std::string name, int a, int b, double ohms);

  double resistance() const { return ohms_; }
  void setResistance(double ohms);

  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;
  void appendNoise(std::vector<NoiseSourceDesc>& out, const Solution& op,
                   double tempK) const override;

 private:
  double ohms_;
};

/// Linear capacitor between nodes a and b. Carries one charge state.
class Capacitor final : public Device {
 public:
  /// `farads` must be >= 0.
  Capacitor(std::string name, int a, int b, double farads);

  double capacitance() const { return farads_; }

  int stateCount() const override { return 1; }
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

 private:
  double farads_;
};

/// Linear inductor between nodes a and b. Uses one branch-current unknown
/// and one flux state; a DC short when c0 == 0.
class Inductor final : public Device {
 public:
  /// `henries` must be > 0.
  Inductor(std::string name, int a, int b, double henries);

  double inductance() const { return henries_; }

  int branchCount() const override { return 1; }
  int stateCount() const override { return 1; }
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

 private:
  double henries_;
};

}  // namespace ahfic::spice
