#include "spice/parser.h"

#include <cctype>
#include <map>
#include <memory>

#include "spice/bjt.h"
#include "spice/diode.h"
#include "spice/mosfet.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/strings.h"
#include "util/units.h"

namespace ahfic::spice {

namespace util = ahfic::util;

namespace {

double num(const std::string& tok, int line, const char* what) {
  auto v = util::parseSpiceNumber(tok);
  if (!v)
    throw ParseError(std::string("bad number '") + tok + "' for " + what,
                     line);
  return *v;
}

/// Logical lines: joins '+' continuations, strips comments and blanks.
struct LogicalLine {
  std::string text;
  int line;  // 1-based line of the first physical line
};

std::vector<LogicalLine> logicalLines(const std::string& text,
                                      int lineOffset) {
  std::vector<LogicalLine> out;
  int lineNo = lineOffset;
  std::string cur;
  int curLine = 0;
  size_t pos = 0;
  auto flush = [&]() {
    const auto trimmed = util::trim(cur);
    if (!trimmed.empty()) out.push_back({std::string(trimmed), curLine});
    cur.clear();
  };
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string raw = (eol == std::string::npos)
                          ? text.substr(pos)
                          : text.substr(pos, eol - pos);
    ++lineNo;
    // Strip comments: leading '*' kills the line; '$' and ';' end it.
    std::string_view sv = util::trim(raw);
    if (!sv.empty() && sv.front() == '*') sv = {};
    std::string line(sv);
    for (char stop : {'$', ';'}) {
      const size_t p = line.find(stop);
      if (p != std::string::npos) line.resize(p);
    }
    if (!line.empty() && line.front() == '+') {
      cur += ' ';
      cur += line.substr(1);
    } else {
      flush();
      cur = line;
      curLine = lineNo;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  flush();
  return out;
}

/// Rewrites "SIN(a b c)" split across tokens into a single token list:
/// returns function name and the numbers inside the parentheses, consuming
/// tokens from `toks` starting at `i`.
bool parseSourceFn(const std::vector<std::string>& toks, size_t& i,
                   std::string& fn, std::vector<std::string>& args) {
  // Re-join remaining tokens, then scan FN ( ... ).
  std::string rest;
  for (size_t k = i; k < toks.size(); ++k) {
    if (k > i) rest += ' ';
    rest += toks[k];
  }
  const size_t open = rest.find('(');
  if (open == std::string::npos) return false;
  const size_t close = rest.rfind(')');
  if (close == std::string::npos || close < open) return false;
  fn = util::toUpper(std::string(util::trim(rest.substr(0, open))));
  const std::string inner = rest.substr(open + 1, close - open - 1);
  args = util::split(inner, " \t,");
  i = toks.size();  // consumed everything
  return true;
}

std::unique_ptr<Waveform> buildWaveform(const std::string& fn,
                                        const std::vector<std::string>& a,
                                        int line) {
  auto at = [&](size_t k, double dflt) {
    return k < a.size() ? num(a[k], line, fn.c_str()) : dflt;
  };
  if (fn == "SIN") {
    if (a.size() < 3) throw ParseError("SIN needs VO VA FREQ", line);
    return std::make_unique<SinWaveform>(at(0, 0), at(1, 0), at(2, 1),
                                         at(3, 0), at(4, 0));
  }
  if (fn == "PULSE") {
    if (a.size() < 7)
      throw ParseError("PULSE needs V1 V2 TD TR TF PW PER", line);
    return std::make_unique<PulseWaveform>(at(0, 0), at(1, 0), at(2, 0),
                                           at(3, 0), at(4, 0), at(5, 0),
                                           at(6, 0));
  }
  if (fn == "PWL") {
    if (a.size() < 4 || a.size() % 2 != 0)
      throw ParseError("PWL needs pairs t1 v1 t2 v2 ...", line);
    std::vector<std::pair<double, double>> pts;
    for (size_t k = 0; k + 1 < a.size(); k += 2)
      pts.emplace_back(num(a[k], line, "PWL time"),
                       num(a[k + 1], line, "PWL value"));
    return std::make_unique<PwlWaveform>(std::move(pts));
  }
  if (fn == "SFFM") {
    if (a.size() < 5)
      throw ParseError("SFFM needs VO VA FC MDI FS", line);
    return std::make_unique<SffmWaveform>(at(0, 0), at(1, 0), at(2, 1),
                                          at(3, 0), at(4, 1));
  }
  if (fn == "AM") {
    if (a.size() < 4) throw ParseError("AM needs SA OC FM FC [TD]", line);
    return std::make_unique<AmWaveform>(at(0, 1), at(1, 0), at(2, 1),
                                        at(3, 1), at(4, 0));
  }
  if (fn == "EXP") {
    if (a.size() < 6)
      throw ParseError("EXP needs V1 V2 TD1 TAU1 TD2 TAU2", line);
    return std::make_unique<ExpWaveform>(at(0, 0), at(1, 0), at(2, 0),
                                         at(3, 1e-9), at(4, 0), at(5, 1e-9));
  }
  throw ParseError("unknown source function '" + fn + "'", line);
}

/// Parses "[DC v] [AC mag [phase]] [FN(...)]" after the two source nodes.
struct SourceSpec {
  std::unique_ptr<Waveform> wave;
  double acMag = 0.0;
  double acPhase = 0.0;
};

SourceSpec parseSourceSpec(const std::vector<std::string>& toks, size_t i,
                           int line) {
  SourceSpec spec;
  double dc = 0.0;
  bool haveDc = false;
  while (i < toks.size()) {
    const std::string up = util::toUpper(toks[i]);
    if (up == "DC") {
      if (i + 1 >= toks.size()) throw ParseError("DC needs a value", line);
      dc = num(toks[i + 1], line, "DC value");
      haveDc = true;
      i += 2;
    } else if (up == "AC") {
      if (i + 1 >= toks.size()) throw ParseError("AC needs a value", line);
      spec.acMag = num(toks[i + 1], line, "AC magnitude");
      i += 2;
      if (i < toks.size()) {
        if (auto v = util::parseSpiceNumber(toks[i])) {
          spec.acPhase = *v;
          ++i;
        }
      }
    } else if (up.find('(') != std::string::npos || up == "SIN" ||
               up == "PULSE" || up == "PWL" || up == "EXP" ||
               up == "SFFM" || up == "AM") {
      std::string fn;
      std::vector<std::string> args;
      size_t j = i;
      if (!parseSourceFn(toks, j, fn, args))
        throw ParseError("malformed source function near '" + toks[i] + "'", line);
      spec.wave = buildWaveform(fn, args, line);
      i = j;
    } else {
      // Bare number: DC value shorthand.
      dc = num(toks[i], line, "source value");
      haveDc = true;
      ++i;
    }
  }
  if (!spec.wave)
    spec.wave = std::make_unique<DcWaveform>(haveDc ? dc : 0.0);
  return spec;
}

std::map<std::string, double> parseModelParams(const std::string& text,
                                               int line) {
  // Strip optional parentheses, then read key=value pairs.
  std::string inner = text;
  const size_t open = inner.find('(');
  if (open != std::string::npos) {
    const size_t close = inner.rfind(')');
    inner = inner.substr(open + 1,
                         close == std::string::npos ? std::string::npos
                                                    : close - open - 1);
  }
  // Normalise "key = value" spacing.
  inner = util::replaceAll(inner, "=", " = ");
  const auto toks = util::split(inner, " \t,");
  std::map<std::string, double> params;
  size_t k = 0;
  while (k < toks.size()) {
    if (k + 1 >= toks.size() || toks[k + 1] != "=")
      throw ParseError("malformed model parameter near '" + toks[k] + "'",
                       line);
    if (k + 2 >= toks.size())
      throw ParseError("model parameter '" + toks[k] + "' missing value",
                       line);
    params[util::toLower(toks[k])] = num(toks[k + 2], line, toks[k].c_str());
    k += 3;
  }
  return params;
}

BjtModel buildBjtModel(const std::map<std::string, double>& p, bool pnp,
                       int line) {
  BjtModel m;
  m.pnp = pnp;
  for (const auto& [key, v] : p) {
    if (key == "is") m.is = v;
    else if (key == "bf") m.bf = v;
    else if (key == "br") m.br = v;
    else if (key == "nf") m.nf = v;
    else if (key == "nr") m.nr = v;
    else if (key == "vaf") m.vaf = v;
    else if (key == "var") m.var = v;
    else if (key == "ikf") m.ikf = v;
    else if (key == "ikr") m.ikr = v;
    else if (key == "ise") m.ise = v;
    else if (key == "ne") m.ne = v;
    else if (key == "isc") m.isc = v;
    else if (key == "nc") m.nc = v;
    else if (key == "rb") m.rb = v;
    else if (key == "irb") m.irb = v;
    else if (key == "rbm") m.rbm = v;
    else if (key == "re") m.re = v;
    else if (key == "rc") m.rc = v;
    else if (key == "cje") m.cje = v;
    else if (key == "vje") m.vje = v;
    else if (key == "mje") m.mje = v;
    else if (key == "cjc") m.cjc = v;
    else if (key == "vjc") m.vjc = v;
    else if (key == "mjc") m.mjc = v;
    else if (key == "xcjc") m.xcjc = v;
    else if (key == "cjs") m.cjs = v;
    else if (key == "vjs") m.vjs = v;
    else if (key == "mjs") m.mjs = v;
    else if (key == "fc") m.fc = v;
    else if (key == "tf") m.tf = v;
    else if (key == "xtf") m.xtf = v;
    else if (key == "vtf") m.vtf = v;
    else if (key == "itf") m.itf = v;
    else if (key == "tr") m.tr = v;
    else if (key == "eg") m.eg = v;
    else if (key == "xti") m.xti = v;
    else if (key == "xtb") m.xtb = v;
    else
      throw ParseError("unknown BJT model parameter '" + key + "'", line);
  }
  return m;
}

DiodeModel buildDiodeModel(const std::map<std::string, double>& p,
                           int line) {
  DiodeModel m;
  for (const auto& [key, v] : p) {
    if (key == "is") m.is = v;
    else if (key == "n") m.n = v;
    else if (key == "rs") m.rs = v;
    else if (key == "cjo" || key == "cj0") m.cj0 = v;
    else if (key == "vj") m.vj = v;
    else if (key == "m") m.m = v;
    else if (key == "tt") m.tt = v;
    else if (key == "fc") m.fc = v;
    else if (key == "bv") m.bv = v;
    else if (key == "ibv") m.ibv = v;
    else if (key == "eg") m.eg = v;
    else if (key == "xti") m.xti = v;
    else
      throw ParseError("unknown diode model parameter '" + key + "'", line);
  }
  return m;
}

/// Deferred semiconductor instantiation: Q/D/M cards may reference
/// .MODEL cards that appear later in the deck, so they are collected
/// (with already-resolved node ids) and instantiated after all models are
/// known.
struct PendingBjt {
  std::string name;
  int c, b, e, subs;
  std::string model;
  double area;
  int line;
};
struct PendingDiode {
  std::string name;
  int a, c;
  std::string model;
  double area;
  int line;
};
struct PendingMos {
  std::string name;
  int d, g, s, b;
  std::string model;
  double w, l;
  int line;
};

MosModel buildMosModel(const std::map<std::string, double>& p, bool pmos,
                       int line) {
  MosModel m;
  m.pmos = pmos;
  for (const auto& [key, v] : p) {
    if (key == "vto" || key == "vt0") m.vto = v;
    else if (key == "kp") m.kp = v;
    else if (key == "gamma") m.gamma = v;
    else if (key == "phi") m.phi = v;
    else if (key == "lambda") m.lambda = v;
    else if (key == "rd") m.rd = v;
    else if (key == "rs") m.rs = v;
    else if (key == "cgso") m.cgso = v;
    else if (key == "cgdo") m.cgdo = v;
    else if (key == "cgbo") m.cgbo = v;
    else if (key == "cox") m.cox = v;
    else if (key == "cbd") m.cbd = v;
    else if (key == "cbs") m.cbs = v;
    else
      throw ParseError("unknown MOS model parameter '" + key + "'", line);
  }
  return m;
}

/// A stored subcircuit definition.
struct SubcktDef {
  std::vector<std::string> ports;  // lower-cased
  std::vector<LogicalLine> body;
};

/// Name scope of a subcircuit expansion.
struct Scope {
  std::string prefix;                        // "" at top level
  std::map<std::string, std::string> ports;  // lower(local) -> global name
};

/// The full deck parser: collects subcircuit definitions, then processes
/// element cards with hierarchical name resolution, then instantiates
/// deferred semiconductor devices.
class DeckParser {
 public:
  explicit DeckParser(Circuit& ckt) : ckt_(ckt) {}

  std::vector<AnalysisRequest> run(const std::string& text,
                                   int lineOffset) {
    const auto all = logicalLines(text, lineOffset);

    // Pass 1: extract .SUBCKT ... .ENDS definitions.
    std::vector<LogicalLine> main;
    const SubcktDef* open = nullptr;
    std::string openName;
    SubcktDef def;
    (void)open;
    bool inDef = false;
    for (const auto& ll : all) {
      const auto toks = util::tokenize(ll.text);
      if (toks.empty()) continue;
      const std::string first = util::toUpper(toks[0]);
      if (first == ".SUBCKT") {
        if (inDef)
          throw ParseError("nested .SUBCKT definitions are not supported",
                           ll.line);
        if (toks.size() < 3)
          throw ParseError(".SUBCKT needs a name and at least one port",
                           ll.line);
        inDef = true;
        openName = util::toLower(toks[1]);
        def = SubcktDef{};
        for (size_t k = 2; k < toks.size(); ++k)
          def.ports.push_back(util::toLower(toks[k]));
        continue;
      }
      if (first == ".ENDS") {
        if (!inDef) throw ParseError(".ENDS without .SUBCKT", ll.line);
        if (subckts_.count(openName))
          throw ParseError("duplicate .SUBCKT '" + openName + "'", ll.line);
        subckts_[openName] = std::move(def);
        inDef = false;
        continue;
      }
      if (inDef)
        def.body.push_back(ll);
      else
        main.push_back(ll);
    }
    if (inDef)
      throw ParseError("missing .ENDS for subcircuit '" + openName + "'",
                       main.empty() ? lineOffset : main.back().line);

    // Pass 2: process the main body, expanding X calls recursively.
    Scope top;
    processLines(main, top, 0);

    // Pass 3: instantiate deferred semiconductors.
    for (const auto& d : pendingDiodes_) {
      if (!ckt_.diodeModels().count(util::toLower(d.model)))
        throw ParseError("unknown diode model '" + d.model + "' on '" +
                             d.name + "'",
                         d.line);
      ckt_.add<Diode>(d.name, ckt_, d.a, d.c, ckt_.diodeModel(d.model),
                      d.area, ckt_.temperatureC());
      ckt_.setDeviceLine(d.name, d.line);
    }
    for (const auto& q : pendingBjts_) {
      if (!ckt_.hasBjtModel(q.model))
        throw ParseError("unknown BJT model '" + q.model + "' on '" +
                             q.name + "'",
                         q.line);
      ckt_.add<Bjt>(q.name, ckt_, q.c, q.b, q.e, ckt_.bjtModel(q.model),
                    q.area, q.subs, ckt_.temperatureC());
      ckt_.setDeviceLine(q.name, q.line);
    }
    for (const auto& mo : pendingMos_) {
      ckt_.add<Mosfet>(mo.name, ckt_, mo.d, mo.g, mo.s, mo.b,
                       mosModel(mo.model, mo.line), mo.w, mo.l);
      ckt_.setDeviceLine(mo.name, mo.line);
    }
    return analyses_;
  }

 private:
  /// Node id for `name` within `scope`.
  int node(const Scope& scope, const std::string& name) {
    const std::string key = util::toLower(name);
    if (key == "0" || key == "gnd") return 0;
    auto it = scope.ports.find(key);
    if (it != scope.ports.end()) return ckt_.node(it->second);
    return ckt_.node(scope.prefix + name);
  }
  /// Global node *name* for `name` within `scope` (for port maps).
  std::string nodeName(const Scope& scope, const std::string& name) {
    return ckt_.nodeName(node(scope, name));
  }

  const MosModel& mosModel(const std::string& name, int line) const {
    auto it = mosModels_.find(util::toLower(name));
    if (it == mosModels_.end())
      throw ParseError("unknown MOS model '" + name + "'", line);
    return it->second;
  }

  void processLines(const std::vector<LogicalLine>& lines,
                    const Scope& scope, int depth) {
    if (depth > 32)
      throw Error("subcircuit nesting too deep (recursive definition?)");
    for (const auto& ll : lines) processLine(ll, scope, depth);
  }

  void processLine(const LogicalLine& ll, const Scope& scope, int depth) {
    const auto toks = util::tokenize(ll.text);
    if (toks.empty()) return;
    const std::string first = util::toUpper(toks[0]);
    const int line = ll.line;
    const bool topLevel = scope.prefix.empty();

    if (first[0] == '.') {
      if (!topLevel)
        throw ParseError("control card '" + first +
                             "' not allowed inside a subcircuit",
                         line);
      if (first == ".END") {
        ended_ = true;
        return;
      }
      if (ended_) return;
      handleControlCard(first, toks, ll, line);
      return;
    }
    if (ended_) return;

    const char kind = first[0];
    const std::string name = scope.prefix + toks[0];
    switch (kind) {
      case 'R': {
        if (toks.size() < 4) throw ParseError("'" + toks[0] + "': R needs n1 n2 value", line);
        ckt_.add<Resistor>(name, node(scope, toks[1]), node(scope, toks[2]),
                           num(toks[3], line, "resistance"));
        break;
      }
      case 'C': {
        if (toks.size() < 4) throw ParseError("'" + toks[0] + "': C needs n1 n2 value", line);
        ckt_.add<Capacitor>(name, node(scope, toks[1]),
                            node(scope, toks[2]),
                            num(toks[3], line, "capacitance"));
        break;
      }
      case 'L': {
        if (toks.size() < 4) throw ParseError("'" + toks[0] + "': L needs n1 n2 value", line);
        ckt_.add<Inductor>(name, node(scope, toks[1]), node(scope, toks[2]),
                           num(toks[3], line, "inductance"));
        break;
      }
      case 'V':
      case 'I': {
        if (toks.size() < 3)
          throw ParseError("'" + toks[0] + "': source needs two nodes", line);
        auto spec = parseSourceSpec(toks, 3, line);
        const int p = node(scope, toks[1]);
        const int n = node(scope, toks[2]);
        if (kind == 'V')
          ckt_.add<VSource>(name, p, n, std::move(spec.wave), spec.acMag,
                            spec.acPhase);
        else
          ckt_.add<ISource>(name, p, n, std::move(spec.wave), spec.acMag,
                            spec.acPhase);
        break;
      }
      case 'E':
      case 'G': {
        if (toks.size() < 6)
          throw ParseError("'" + toks[0] + "': E/G needs p n cp cn gain", line);
        const int p = node(scope, toks[1]), n = node(scope, toks[2]);
        const int cp = node(scope, toks[3]), cn = node(scope, toks[4]);
        const double g = num(toks[5], line, "gain");
        if (kind == 'E')
          ckt_.add<Vcvs>(name, p, n, cp, cn, g);
        else
          ckt_.add<Vccs>(name, p, n, cp, cn, g);
        break;
      }
      case 'F':
      case 'H': {
        if (toks.size() < 5)
          throw ParseError("'" + toks[0] + "': F/H needs p n Vctrl gain", line);
        const int p = node(scope, toks[1]), n = node(scope, toks[2]);
        // The controlling source is looked up scope-locally first, then
        // globally.
        Device* dev = ckt_.findDevice(scope.prefix + toks[3]);
        if (dev == nullptr) dev = ckt_.findDevice(toks[3]);
        auto* ctrl = dynamic_cast<VSource*>(dev);
        if (ctrl == nullptr)
          throw ParseError("controlling source '" + toks[3] +
                               "' must be a previously defined V source",
                           line);
        const double g = num(toks[4], line, "gain");
        if (kind == 'F')
          ckt_.add<Cccs>(name, p, n, *ctrl, g);
        else
          ckt_.add<Ccvs>(name, p, n, *ctrl, g);
        break;
      }
      case 'D': {
        if (toks.size() < 4) throw ParseError("'" + toks[0] + "': D needs a c model", line);
        PendingDiode d{name, node(scope, toks[1]), node(scope, toks[2]),
                       toks[3], 1.0, line};
        if (toks.size() > 4) d.area = num(toks[4], line, "area");
        pendingDiodes_.push_back(std::move(d));
        break;
      }
      case 'Q': {
        if (toks.size() < 5) throw ParseError("'" + toks[0] + "': Q needs c b e model", line);
        PendingBjt q{name,
                     node(scope, toks[1]),
                     node(scope, toks[2]),
                     node(scope, toks[3]),
                     0,
                     "",
                     1.0,
                     line};
        // Optional substrate node before the model name; SPICE
        // disambiguates the same way (token after the candidate model is
        // a number or absent).
        size_t mi = 4;
        if (toks.size() > 5 && !util::parseSpiceNumber(toks[5])) {
          q.subs = node(scope, toks[4]);
          mi = 5;
        }
        q.model = toks[mi];
        if (toks.size() > mi + 1)
          q.area = num(toks[mi + 1], line, "area");
        pendingBjts_.push_back(std::move(q));
        break;
      }
      case 'M': {
        if (toks.size() < 6)
          throw ParseError("'" + toks[0] + "': M needs d g s b model", line);
        PendingMos m{name,
                     node(scope, toks[1]),
                     node(scope, toks[2]),
                     node(scope, toks[3]),
                     node(scope, toks[4]),
                     toks[5],
                     10e-6,
                     1e-6,
                     line};
        for (size_t k = 6; k < toks.size(); ++k) {
          const auto kv = util::split(toks[k], "=");
          if (kv.size() != 2)
            throw ParseError("'" + toks[k] +
                             "': MOS instance parameter must be W=... "
                             "or L=...",
                             line);
          if (util::equalsNoCase(kv[0], "w"))
            m.w = num(kv[1], line, "W");
          else if (util::equalsNoCase(kv[0], "l"))
            m.l = num(kv[1], line, "L");
          else
            throw ParseError("unknown MOS instance parameter '" + kv[0] +
                                 "'",
                             line);
        }
        pendingMos_.push_back(std::move(m));
        break;
      }
      case 'X': {
        if (toks.size() < 3)
          throw ParseError("'" + toks[0] +
                           "': X needs at least one node and a "
                           "subcircuit name",
                           line);
        const std::string subName = util::toLower(toks.back());
        auto it = subckts_.find(subName);
        if (it == subckts_.end())
          throw ParseError("unknown subcircuit '" + toks.back() + "'",
                           line);
        const SubcktDef& sub = it->second;
        const size_t nConns = toks.size() - 2;
        if (nConns != sub.ports.size())
          throw ParseError("subcircuit '" + toks.back() + "' has " +
                               std::to_string(sub.ports.size()) +
                               " ports, got " + std::to_string(nConns),
                           line);
        Scope child;
        child.prefix = name + ".";
        for (size_t k = 0; k < nConns; ++k)
          child.ports[sub.ports[k]] = nodeName(scope, toks[1 + k]);
        processLines(sub.body, child, depth + 1);
        break;
      }
      default:
        throw ParseError("unsupported element '" + toks[0] + "'", line);
    }
    // Immediately-constructed devices get their deck line recorded here;
    // pending D/Q/M record theirs at second-pass construction, and X
    // expands to child devices that record their own lines.
    if (ckt_.findDevice(name) != nullptr) ckt_.setDeviceLine(name, line);
  }

  void handleControlCard(const std::string& first,
                         const std::vector<std::string>& toks,
                         const LogicalLine& ll, int line) {
    if (first == ".OP") {
      analyses_.push_back(OpRequest{});
    } else if (first == ".TRAN") {
      if (toks.size() < 3) throw ParseError(".TRAN needs step tstop", line);
      analyses_.push_back(TranRequest{num(toks[1], line, "tran step"),
                                      num(toks[2], line, "tran tstop")});
    } else if (first == ".AC") {
      if (toks.size() < 5 || !util::equalsNoCase(toks[1], "dec"))
        throw ParseError(".AC needs DEC npts fstart fstop", line);
      analyses_.push_back(
          AcRequest{static_cast<int>(num(toks[2], line, "ac points")),
                    num(toks[3], line, "fstart"),
                    num(toks[4], line, "fstop")});
    } else if (first == ".DC") {
      if (toks.size() < 5)
        throw ParseError(".DC needs source start stop step", line);
      analyses_.push_back(DcRequest{toks[1], num(toks[2], line, "start"),
                                    num(toks[3], line, "stop"),
                                    num(toks[4], line, "step")});
    } else if (first == ".NOISE") {
      if (toks.size() < 6 || !util::equalsNoCase(toks[2], "dec"))
        throw ParseError(".NOISE needs node DEC npts fstart fstop", line);
      analyses_.push_back(NoiseRequest{
          toks[1], static_cast<int>(num(toks[3], line, "noise points")),
          num(toks[4], line, "fstart"), num(toks[5], line, "fstop")});
    } else if (first == ".MODEL") {
      if (toks.size() < 3) throw ParseError(".MODEL needs name type", line);
      const std::string mname = toks[1];
      // Re-join everything after the name; the type is its leading
      // alphabetic run (handles "NPN(IS=..." with no space).
      std::string typeAndParams;
      for (size_t k = 2; k < toks.size(); ++k) {
        typeAndParams += toks[k];
        typeAndParams += ' ';
      }
      size_t tp = 0;
      while (tp < typeAndParams.size() &&
             std::isalpha(static_cast<unsigned char>(typeAndParams[tp])))
        ++tp;
      const std::string mtype = util::toUpper(typeAndParams.substr(0, tp));
      const std::string ptext = typeAndParams.substr(tp);
      const auto params = parseModelParams(ptext, line);
      if (mtype == "NPN")
        ckt_.addBjtModel(mname, buildBjtModel(params, false, line));
      else if (mtype == "PNP")
        ckt_.addBjtModel(mname, buildBjtModel(params, true, line));
      else if (mtype == "NMOS")
        mosModels_[util::toLower(mname)] = buildMosModel(params, false, line);
      else if (mtype == "PMOS")
        mosModels_[util::toLower(mname)] = buildMosModel(params, true, line);
      else if (mtype == "D")
        ckt_.addDiodeModel(mname, buildDiodeModel(params, line));
      else
        throw ParseError("unsupported model type '" + mtype + "'", line);
    } else if (first == ".TEMP") {
      if (toks.size() < 2) throw ParseError(".TEMP needs a value", line);
      ckt_.setTemperatureC(num(toks[1], line, "temperature"));
    } else if (first == ".OPTIONS" || first == ".OPTION") {
      // Only the solver backend choice is interpreted; other options are
      // tolerated (real-world decks carry plenty of simulator-specific
      // flags).
      for (size_t k = 1; k < toks.size(); ++k) {
        const std::string up = util::toUpper(toks[k]);
        if (up == "SPARSE") {
          solverOption_ = "sparse";
        } else if (up == "DENSE") {
          solverOption_ = "dense";
        } else if (up.rfind("SOLVER=", 0) == 0) {
          const std::string v = util::toLower(up.substr(7));
          if (v != "auto" && v != "dense" && v != "sparse" && v != "legacy")
            throw ParseError("unknown SOLVER choice '" + v +
                                 "' (auto/dense/sparse/legacy)",
                             line);
          solverOption_ = v;
        }
      }
    } else {
      throw ParseError("unsupported card '" + first + "'", line);
    }
    (void)ll;
  }

  Circuit& ckt_;
  std::map<std::string, SubcktDef> subckts_;
  std::map<std::string, MosModel> mosModels_;
  std::vector<PendingBjt> pendingBjts_;
  std::vector<PendingDiode> pendingDiodes_;
  std::vector<PendingMos> pendingMos_;
  std::vector<AnalysisRequest> analyses_;
  std::string solverOption_;
  bool ended_ = false;

 public:
  const std::string& solverOption() const { return solverOption_; }
};

}  // namespace

std::vector<AnalysisRequest> parseInto(Circuit& ckt, const std::string& text,
                                       int lineOffset,
                                       std::string* solverOption) {
  DeckParser parser(ckt);
  auto analyses = parser.run(text, lineOffset);
  if (solverOption != nullptr) *solverOption = parser.solverOption();
  return analyses;
}

Deck parseDeck(const std::string& text) {
  Deck deck;
  const size_t eol = text.find('\n');
  deck.title = std::string(
      util::trim(eol == std::string::npos ? text : text.substr(0, eol)));
  const std::string body =
      eol == std::string::npos ? std::string() : text.substr(eol + 1);
  deck.analyses = parseInto(deck.circuit, body, 1, &deck.solverOption);
  return deck;
}

}  // namespace ahfic::spice
