#include "spice/forensics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "spice/circuit.h"
#include "util/error.h"

namespace ahfic::spice {

namespace {

constexpr const char* kSchema = "ahfic-diag-v1";
/// Per-hit cap on the accumulated worst ratio so one absurd iteration
/// (or a singular solve) cannot drown the ranking's history.
constexpr double kRatioCapPerHit = 1e6;
constexpr size_t kMaxSuspects = 5;
constexpr size_t kMaxSuspectDevices = 6;

std::string fmt(const char* format, double a, double b = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof buf, format, a, b);
  return buf;
}

}  // namespace

ForensicsRecorder::ForensicsRecorder(int trailDepth)
    : trailDepth_(trailDepth < 1 ? 1 : trailDepth) {}

void ForensicsRecorder::reset() {
  totalIterations_ = 0;
  trail_.clear();
  trailNext_ = 0;
  lastSample_ = IterationSample{};
  steps_.clear();
  stepNext_ = 0;
  continuation_.clear();
  unknownScores_.clear();
  limitCounts_.clear();
  limitScratch_.clear();
  context_.clear();
}

void ForensicsRecorder::recordIteration(double maxDelta, double worstRatio,
                                        int worstUnknown, bool limited,
                                        bool singular) {
  IterationSample s;
  s.index = ++totalIterations_;
  s.maxDelta = maxDelta;
  s.worstRatio = worstRatio;
  s.worstUnknown = worstUnknown;
  s.limited = limited;
  s.singular = singular;
  if (!limitScratch_.empty()) {
    s.limitedDevice = limitScratch_.front();
    for (const Device* d : limitScratch_) ++limitCounts_[d];
    limitScratch_.clear();
  }
  if (worstUnknown > 0) {
    auto& score = unknownScores_[worstUnknown];
    ++score.worstCount;
    score.ratioSum +=
        singular ? kRatioCapPerHit : std::min(worstRatio, kRatioCapPerHit);
  }
  lastSample_ = s;
  if (trail_.size() < static_cast<size_t>(trailDepth_)) {
    trail_.push_back(s);
  } else {
    trail_[trailNext_] = s;
    trailNext_ = (trailNext_ + 1) % trail_.size();
  }
}

void ForensicsRecorder::recordContinuation(const char* stage, double value,
                                           bool converged, int iterations) {
  if (continuation_.size() >= static_cast<size_t>(kContinuationCap)) return;
  continuation_.push_back(
      ContinuationEvent{stage, value, converged, iterations});
}

void ForensicsRecorder::recordStep(double time, double dt, bool accepted,
                                   int iterations) {
  StepEvent e;
  e.time = time;
  e.dt = dt;
  e.accepted = accepted;
  e.iterations = iterations;
  e.maxDelta = lastSample_.maxDelta;
  e.worstUnknown = lastSample_.worstUnknown;
  if (steps_.size() < static_cast<size_t>(kStepDepth)) {
    steps_.push_back(e);
  } else {
    steps_[stepNext_] = e;
    stepNext_ = (stepNext_ + 1) % steps_.size();
  }
}

void ForensicsRecorder::setContext(const std::string& key,
                                   const std::string& value) {
  for (auto& kv : context_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

std::vector<IterationSample> ForensicsRecorder::trail() const {
  std::vector<IterationSample> out;
  out.reserve(trail_.size());
  for (size_t k = 0; k < trail_.size(); ++k)
    out.push_back(trail_[(trailNext_ + k) % trail_.size()]);
  return out;
}

std::vector<StepEvent> ForensicsRecorder::steps() const {
  std::vector<StepEvent> out;
  out.reserve(steps_.size());
  for (size_t k = 0; k < steps_.size(); ++k)
    out.push_back(steps_[(stepNext_ + k) % steps_.size()]);
  return out;
}

// ---------------------------------------------------------------------

std::string unknownName(const Circuit& ckt, int id) {
  if (id <= 0) return "";
  if (id < ckt.nodeCount()) return "V(" + ckt.nodeName(id) + ")";
  for (const auto& dev : ckt.devices()) {
    if (dev->branchCount() <= 0) continue;
    const int base = dev->branchId(0);
    if (id >= base && id < base + dev->branchCount())
      return "I(" + dev->name() + ")";
  }
  return "unknown#" + std::to_string(id);
}

namespace {

/// Devices touching node `id` (likely culprits for a suspect node).
std::vector<std::string> devicesOnNode(const Circuit& ckt, int id) {
  std::vector<std::string> out;
  for (const auto& dev : ckt.devices()) {
    bool touches = false;
    for (const int n : dev->nodes())
      if (n == id) touches = true;
    if (touches) {
      out.push_back(dev->name());
      if (out.size() >= kMaxSuspectDevices) break;
    }
  }
  return out;
}

void appendSuspects(DiagReport& r, const Circuit& ckt,
                    const ForensicsRecorder& fx, int singularUnknown) {
  std::vector<std::pair<int, ForensicsRecorder::UnknownScore>> ranked(
      fx.unknownScores().begin(), fx.unknownScores().end());
  if (singularUnknown > 0 && fx.unknownScores().count(singularUnknown) == 0)
    ranked.emplace_back(singularUnknown,
                        ForensicsRecorder::UnknownScore{1, kRatioCapPerHit});
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.second.ratioSum != y.second.ratioSum)
      return x.second.ratioSum > y.second.ratioSum;
    if (x.second.worstCount != y.second.worstCount)
      return x.second.worstCount > y.second.worstCount;
    return x.first < y.first;
  });
  for (const auto& [id, score] : ranked) {
    if (r.nodes.size() >= kMaxSuspects) break;
    DiagSuspect s;
    s.name = unknownName(ckt, id);
    s.worstCount = score.worstCount;
    s.score = score.ratioSum;
    if (id > 0 && id < ckt.nodeCount()) s.devices = devicesOnNode(ckt, id);
    r.nodes.push_back(std::move(s));
  }

  std::vector<std::pair<const Device*, long>> limiters(
      fx.limitCounts().begin(), fx.limitCounts().end());
  std::sort(limiters.begin(), limiters.end(),
            [](const auto& x, const auto& y) {
              if (x.second != y.second) return x.second > y.second;
              return x.first->name() < y.first->name();
            });
  for (const auto& [dev, count] : limiters) {
    if (r.devices.size() >= kMaxSuspects) break;
    DiagDevice d;
    d.name = dev->name();
    d.limitCount = count;
    d.line = ckt.deviceLine(dev->name());
    r.devices.push_back(std::move(d));
  }
}

/// True when the delta sequence alternates direction for at least half
/// of its sample pairs (the classic limit-cycle signature).
bool deltasOscillate(const std::vector<DiagIteration>& trail) {
  if (trail.size() < 6) return false;
  int flips = 0, pairs = 0;
  for (size_t k = 2; k < trail.size(); ++k) {
    const double d1 = trail[k - 1].maxDelta - trail[k - 2].maxDelta;
    const double d2 = trail[k].maxDelta - trail[k - 1].maxDelta;
    if (d1 == 0.0 || d2 == 0.0) continue;
    ++pairs;
    if ((d1 > 0.0) != (d2 > 0.0)) ++flips;
  }
  return pairs >= 4 && flips * 2 >= pairs;
}

/// True when the tail of the trail is monotonically shrinking (Newton
/// was making progress when the budget ran out).
bool deltasShrinking(const std::vector<DiagIteration>& trail) {
  if (trail.size() < 4) return false;
  for (size_t k = trail.size() - 3; k < trail.size(); ++k)
    if (trail[k].maxDelta >= trail[k - 1].maxDelta) return false;
  return true;
}

void appendHints(DiagReport& r, const Circuit& ckt, int singularUnknown) {
  if (singularUnknown > 0) {
    r.hints.push_back("floating-ish node " + unknownName(ckt, singularUnknown) +
                      ": its matrix pivot vanished (no independent DC "
                      "equation); check connectivity or raise gmin");
  }
  const bool oscillating = deltasOscillate(r.trail);
  if (oscillating) {
    std::string at;
    if (!r.devices.empty())
      at = "device " + r.devices.front().name;
    else if (!r.nodes.empty())
      at = r.nodes.front().name;
    r.hints.push_back("oscillating residual" + (at.empty() ? "" : " at " + at) +
                      ": Newton is limit-cycling; consider damping "
                      "(trapDamping) or a better initial guess");
  }
  if (!oscillating && deltasShrinking(r.trail))
    r.hints.push_back(
        "deltas were still shrinking when the iteration budget ran out; "
        "consider raising maxNewtonIters");
  if (r.stage == "gmin-step")
    r.hints.push_back(fmt("gmin continuation stalled at gmin = %.3g S; "
                          "the circuit only solves with extra shunt "
                          "conductance — look for high-impedance nodes",
                          r.stageValue));
  if (r.stage == "source-step")
    r.hints.push_back(fmt("source stepping stalled at scale %.3g; the "
                          "solution path is not continuable — check for "
                          "bistable or unbiased stages",
                          r.stageValue));
  if (r.stage == "transient-step") {
    std::string limiting;
    for (auto it = r.steps.rbegin(); it != r.steps.rend(); ++it) {
      if (!it->worstUnknown.empty()) {
        limiting = it->worstUnknown;
        break;
      }
    }
    r.hints.push_back(fmt("timestep collapsed at t = %.4g s (dt = %.3g s)",
                          r.stageValue,
                          r.steps.empty() ? 0.0 : r.steps.back().dt) +
                      (limiting.empty() ? std::string()
                                        : "; limiting unknown " + limiting) +
                      "; consider backward Euler or looser tolerances");
  }
  long limitEvents = 0;
  for (const auto& d : r.devices) limitEvents += d.limitCount;
  if (!r.devices.empty() && limitEvents > r.totalIterations)
    r.hints.push_back("junction limiting active at " + r.devices.front().name +
                      " in most iterations: the iterate is far from the "
                      "device's operating region");
}

}  // namespace

DiagReport buildDiagReport(const Circuit& ckt, const ForensicsRecorder& fx,
                           const std::string& analysis,
                           const std::string& stage, double stageValue,
                           const std::string& message, int unknownCount,
                           int singularUnknown) {
  DiagReport r;
  r.analysis = analysis;
  r.stage = stage;
  r.stageValue = stageValue;
  r.message = message;
  r.unknowns = unknownCount;
  r.totalIterations = fx.totalIterations();
  for (const IterationSample& s : fx.trail()) {
    DiagIteration it;
    it.index = s.index;
    it.maxDelta = s.maxDelta;
    it.worstRatio = s.worstRatio;
    it.worstUnknown = unknownName(ckt, s.worstUnknown);
    it.limited = s.limited;
    it.singular = s.singular;
    if (s.limitedDevice != nullptr) it.limitedDevice = s.limitedDevice->name();
    r.trail.push_back(std::move(it));
  }
  for (const ContinuationEvent& e : fx.continuation())
    r.continuation.push_back(
        DiagContinuation{e.stage, e.value, e.converged, e.iterations});
  for (const StepEvent& e : fx.steps()) {
    DiagStep st;
    st.time = e.time;
    st.dt = e.dt;
    st.accepted = e.accepted;
    st.iterations = e.iterations;
    st.maxDelta = e.maxDelta;
    st.worstUnknown = unknownName(ckt, e.worstUnknown);
    r.steps.push_back(std::move(st));
  }
  r.context = fx.context();
  appendSuspects(r, ckt, fx, singularUnknown);
  appendHints(r, ckt, singularUnknown);
  return r;
}

// ---------------------------------------------------------------------

util::JsonValue DiagReport::toJson() const {
  using util::JsonValue;
  JsonValue v = JsonValue::object();
  v.set("schema", kSchema);
  v.set("analysis", analysis);
  v.set("stage", stage);
  v.set("stageValue", stageValue);
  v.set("message", message);
  v.set("unknowns", unknowns);
  v.set("totalIterations", totalIterations);
  JsonValue jTrail = JsonValue::array();
  for (const DiagIteration& it : trail) {
    JsonValue o = JsonValue::object();
    o.set("iter", it.index);
    o.set("maxDelta", it.maxDelta);
    o.set("worstRatio", it.worstRatio);
    o.set("worstUnknown", it.worstUnknown);
    o.set("limited", it.limited);
    o.set("singular", it.singular);
    o.set("limitedDevice", it.limitedDevice);
    jTrail.push(std::move(o));
  }
  v.set("trail", std::move(jTrail));
  JsonValue jCont = JsonValue::array();
  for (const DiagContinuation& e : continuation) {
    JsonValue o = JsonValue::object();
    o.set("stage", e.stage);
    o.set("value", e.value);
    o.set("converged", e.converged);
    o.set("iterations", e.iterations);
    jCont.push(std::move(o));
  }
  v.set("continuation", std::move(jCont));
  JsonValue jSteps = JsonValue::array();
  for (const DiagStep& e : steps) {
    JsonValue o = JsonValue::object();
    o.set("time", e.time);
    o.set("dt", e.dt);
    o.set("accepted", e.accepted);
    o.set("iterations", e.iterations);
    o.set("maxDelta", e.maxDelta);
    o.set("worstUnknown", e.worstUnknown);
    jSteps.push(std::move(o));
  }
  v.set("steps", std::move(jSteps));
  JsonValue jNodes = JsonValue::array();
  for (const DiagSuspect& s : nodes) {
    JsonValue o = JsonValue::object();
    o.set("name", s.name);
    o.set("worstCount", s.worstCount);
    o.set("score", s.score);
    JsonValue devs = JsonValue::array();
    for (const std::string& d : s.devices) devs.push(d);
    o.set("devices", std::move(devs));
    jNodes.push(std::move(o));
  }
  v.set("nodes", std::move(jNodes));
  JsonValue jDevs = JsonValue::array();
  for (const DiagDevice& d : devices) {
    JsonValue o = JsonValue::object();
    o.set("name", d.name);
    o.set("limitCount", d.limitCount);
    o.set("line", d.line);
    jDevs.push(std::move(o));
  }
  v.set("devices", std::move(jDevs));
  JsonValue jCtx = JsonValue::object();
  for (const auto& [key, value] : context) jCtx.set(key, value);
  v.set("context", std::move(jCtx));
  JsonValue jHints = JsonValue::array();
  for (const std::string& h : hints) jHints.push(h);
  v.set("hints", std::move(jHints));
  return v;
}

DiagReport DiagReport::fromJson(const util::JsonValue& v) {
  if (!v.isObject() ||
      !(v.get("schema").isString() && v.get("schema").asString() == kSchema))
    throw Error("DiagReport::fromJson: not an ahfic-diag-v1 report");
  DiagReport r;
  r.analysis = v.get("analysis").asString();
  r.stage = v.get("stage").asString();
  r.stageValue = v.get("stageValue").asNumber();
  r.message = v.get("message").asString();
  r.unknowns = static_cast<int>(v.get("unknowns").asNumber());
  r.totalIterations = static_cast<long>(v.get("totalIterations").asNumber());
  const util::JsonValue& jTrail = v.get("trail");
  for (size_t k = 0; k < jTrail.size(); ++k) {
    const util::JsonValue& o = jTrail.at(k);
    DiagIteration it;
    it.index = static_cast<long>(o.get("iter").asNumber());
    it.maxDelta = o.get("maxDelta").asNumber();
    it.worstRatio = o.get("worstRatio").asNumber();
    it.worstUnknown = o.get("worstUnknown").asString();
    it.limited = o.get("limited").asBool();
    it.singular = o.get("singular").asBool();
    it.limitedDevice = o.get("limitedDevice").asString();
    r.trail.push_back(std::move(it));
  }
  const util::JsonValue& jCont = v.get("continuation");
  for (size_t k = 0; k < jCont.size(); ++k) {
    const util::JsonValue& o = jCont.at(k);
    r.continuation.push_back(DiagContinuation{
        o.get("stage").asString(), o.get("value").asNumber(),
        o.get("converged").asBool(),
        static_cast<int>(o.get("iterations").asNumber())});
  }
  const util::JsonValue& jSteps = v.get("steps");
  for (size_t k = 0; k < jSteps.size(); ++k) {
    const util::JsonValue& o = jSteps.at(k);
    DiagStep st;
    st.time = o.get("time").asNumber();
    st.dt = o.get("dt").asNumber();
    st.accepted = o.get("accepted").asBool();
    st.iterations = static_cast<int>(o.get("iterations").asNumber());
    st.maxDelta = o.get("maxDelta").asNumber();
    st.worstUnknown = o.get("worstUnknown").asString();
    r.steps.push_back(std::move(st));
  }
  const util::JsonValue& jNodes = v.get("nodes");
  for (size_t k = 0; k < jNodes.size(); ++k) {
    const util::JsonValue& o = jNodes.at(k);
    DiagSuspect s;
    s.name = o.get("name").asString();
    s.worstCount = static_cast<long>(o.get("worstCount").asNumber());
    s.score = o.get("score").asNumber();
    const util::JsonValue& devs = o.get("devices");
    for (size_t d = 0; d < devs.size(); ++d)
      s.devices.push_back(devs.at(d).asString());
    r.nodes.push_back(std::move(s));
  }
  const util::JsonValue& jDevs = v.get("devices");
  for (size_t k = 0; k < jDevs.size(); ++k) {
    const util::JsonValue& o = jDevs.at(k);
    r.devices.push_back(
        DiagDevice{o.get("name").asString(),
                   static_cast<long>(o.get("limitCount").asNumber()),
                   static_cast<int>(o.get("line").asNumber())});
  }
  const util::JsonValue& jCtx = v.get("context");
  if (jCtx.isObject())
    for (const std::string& key : jCtx.keys())
      r.context.emplace_back(key, jCtx.get(key).asString());
  const util::JsonValue& jHints = v.get("hints");
  for (size_t k = 0; k < jHints.size(); ++k)
    r.hints.push_back(jHints.at(k).asString());
  return r;
}

std::string DiagReport::renderText() const {
  std::ostringstream os;
  os << "convergence failure: " << analysis << " (" << message << ")\n";
  os << "  failing stage: " << stage;
  if (stage != "newton") os << " at " << fmt("%.4g", stageValue);
  os << " after " << totalIterations << " Newton iterations over "
     << unknowns << " unknowns\n";
  if (!context.empty()) {
    os << "  context:";
    for (const auto& [key, value] : context)
      os << " " << key << "=" << value;
    os << "\n";
  }
  if (!nodes.empty()) {
    os << "  suspect unknowns:\n";
    for (const DiagSuspect& s : nodes) {
      os << "    " << s.name << "  worst in " << s.worstCount
         << " iterations, score " << fmt("%.3g", s.score);
      if (!s.devices.empty()) {
        os << "  [";
        for (size_t k = 0; k < s.devices.size(); ++k)
          os << (k != 0 ? " " : "") << s.devices[k];
        os << "]";
      }
      os << "\n";
    }
  }
  if (!devices.empty()) {
    os << "  limiting devices:\n";
    for (const DiagDevice& d : devices) {
      os << "    " << d.name << "  limited in " << d.limitCount
         << " iterations";
      if (d.line > 0) os << "  (deck line " << d.line << ")";
      os << "\n";
    }
  }
  if (!trail.empty()) {
    os << "  last " << trail.size() << " iterations:\n";
    for (const DiagIteration& it : trail) {
      os << "    #" << it.index << "  |dx|max " << fmt("%.3g", it.maxDelta)
         << "  ratio " << fmt("%.3g", it.worstRatio);
      if (!it.worstUnknown.empty()) os << "  at " << it.worstUnknown;
      if (it.limited) {
        os << "  limited";
        if (!it.limitedDevice.empty()) os << "(" << it.limitedDevice << ")";
      }
      if (it.singular) os << "  SINGULAR";
      os << "\n";
    }
  }
  if (!steps.empty()) {
    size_t rejected = 0;
    for (const DiagStep& st : steps)
      if (!st.accepted) ++rejected;
    os << "  timestep events: " << steps.size() << " recorded, " << rejected
       << " rejected; last dt " << fmt("%.3g", steps.back().dt) << " at t "
       << fmt("%.4g", steps.back().time) << "\n";
  }
  for (const std::string& h : hints) os << "  hint: " << h << "\n";
  return os.str();
}

util::JsonValue diagEnvelope(const std::vector<DiagReport>& reports) {
  util::JsonValue v = util::JsonValue::object();
  v.set("schema", kSchema);
  util::JsonValue arr = util::JsonValue::array();
  for (const DiagReport& r : reports) arr.push(r.toJson());
  v.set("reports", std::move(arr));
  return v;
}

std::vector<DiagReport> diagReportsFromJson(const util::JsonValue& doc) {
  std::vector<DiagReport> out;
  if (doc.isObject() && doc.get("reports").isArray()) {
    if (!(doc.get("schema").isString() &&
          doc.get("schema").asString() == kSchema))
      throw Error("diagReportsFromJson: not an ahfic-diag-v1 envelope");
    const util::JsonValue& arr = doc.get("reports");
    for (size_t k = 0; k < arr.size(); ++k)
      out.push_back(DiagReport::fromJson(arr.at(k)));
    return out;
  }
  out.push_back(DiagReport::fromJson(doc));
  return out;
}

}  // namespace ahfic::spice
