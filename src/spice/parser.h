#pragma once
// SPICE-style netlist parser.
//
// Accepted grammar (a practical subset of Berkeley SPICE 2G6 [2]):
//   * first line is the title; '*' starts a comment; '+' continues a card
//   * elements:  Rxxx n1 n2 value
//                Cxxx n1 n2 value
//                Lxxx n1 n2 value
//                Vxxx n+ n- [DC v] [AC mag [phase]] [SIN(...)|PULSE(...)|
//                                                    PWL(...)|EXP(...)]
//                Ixxx n+ n- (same source syntax as V)
//                Exxx p n cp cn gain        (VCVS)
//                Gxxx p n cp cn gm          (VCCS)
//                Fxxx p n Vctrl gain        (CCCS)
//                Hxxx p n Vctrl r           (CCVS)
//                Dxxx a c model [area]
//                Qxxx c b e [subs] model [area]
//                Mxxx d g s b model [W=w] [L=l]
//                Xxxx n1 n2 ... subcktname  (subcircuit call)
//   * cards:     .MODEL name NPN|PNP|D|NMOS|PMOS (key=value ...)
//                .SUBCKT name port1 port2 ...  /  .ENDS
//                .TRAN step tstop
//                .AC DEC npts fstart fstop
//                .DC srcname start stop step
//                .NOISE node DEC npts fstart fstop
//                .OP
//                .TEMP value
//                .END
//
// Subcircuits flatten at parse time: devices get "xname." prefixes and
// internal nodes become "xname.node"; port nodes map to the caller's
// nodes. Definitions may appear anywhere in the deck (also after use);
// calls may nest. Models are global and must be defined at the top level.
//
// Numbers use SPICE engineering suffixes (1.2u, 45MEG, 10pF ...).

#include <string>
#include <variant>
#include <vector>

#include "spice/circuit.h"

namespace ahfic::spice {

/// .TRAN step tstop
struct TranRequest {
  double maxStep;
  double tstop;
};
/// .AC DEC npts fstart fstop
struct AcRequest {
  int pointsPerDecade;
  double fStart;
  double fStop;
};
/// .DC source start stop step
struct DcRequest {
  std::string source;
  double start;
  double stop;
  double step;
};
/// .OP
struct OpRequest {};
/// .NOISE node DEC npts fstart fstop
struct NoiseRequest {
  std::string outputNode;
  int pointsPerDecade;
  double fStart;
  double fStop;
};

using AnalysisRequest = std::variant<OpRequest, DcRequest, AcRequest,
                                     TranRequest, NoiseRequest>;

/// A parsed deck: the circuit plus any requested analyses.
struct Deck {
  std::string title;
  Circuit circuit;
  std::vector<AnalysisRequest> analyses;
  /// Solver-backend request from a `.OPTIONS` card: "dense", "sparse",
  /// "legacy" or "auto"; empty when the deck leaves the choice to the
  /// engine's size heuristic. Kept as a string so the parser stays
  /// independent of the analysis layer (rundeck maps it to SolverKind;
  /// lint checks only whether it was explicit).
  std::string solverOption;
};

/// Parses a full deck from text. Throws ahfic::ParseError with a line
/// number on malformed input.
Deck parseDeck(const std::string& text);

/// Parses netlist body text (no title line, no .END required) into an
/// existing circuit. Returns the analyses encountered. Used to splice
/// cell-database schematics into a host circuit. When `solverOption` is
/// non-null it receives any `.OPTIONS` solver choice (see Deck).
std::vector<AnalysisRequest> parseInto(Circuit& ckt, const std::string& text,
                                       int lineOffset = 0,
                                       std::string* solverOption = nullptr);

}  // namespace ahfic::spice
