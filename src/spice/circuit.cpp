#include "spice/circuit.h"

#include "util/error.h"
#include "util/strings.h"

namespace ahfic::spice {

using util::toLower;

Circuit::Circuit() {
  nodeNames_.push_back("0");
  nodeIds_["0"] = 0;
  nodeIds_["gnd"] = 0;
}

int Circuit::node(const std::string& name) {
  const std::string key = toLower(name);
  auto it = nodeIds_.find(key);
  if (it != nodeIds_.end()) return it->second;
  const int id = static_cast<int>(nodeNames_.size());
  nodeNames_.push_back(name);
  nodeIds_[key] = id;
  return id;
}

int Circuit::findNode(const std::string& name) const {
  auto it = nodeIds_.find(toLower(name));
  return it == nodeIds_.end() ? -1 : it->second;
}

const std::string& Circuit::nodeName(int id) const {
  if (id < 0 || id >= nodeCount())
    throw Error("Circuit::nodeName: bad node id " + std::to_string(id));
  return nodeNames_[static_cast<size_t>(id)];
}

int Circuit::internalNode(const std::string& base) {
  return node(base + "#" + std::to_string(internalCounter_++));
}

Device& Circuit::addDevice(std::unique_ptr<Device> dev) {
  const std::string key = toLower(dev->name());
  if (deviceIndex_.count(key))
    throw Error("duplicate device name '" + dev->name() + "'");
  deviceIndex_[key] = devices_.size();
  devices_.push_back(std::move(dev));
  return *devices_.back();
}

Device* Circuit::findDevice(const std::string& name) {
  auto it = deviceIndex_.find(toLower(name));
  return it == deviceIndex_.end() ? nullptr : devices_[it->second].get();
}

const Device* Circuit::findDevice(const std::string& name) const {
  auto it = deviceIndex_.find(toLower(name));
  return it == deviceIndex_.end() ? nullptr : devices_[it->second].get();
}

bool Circuit::removeDevice(const std::string& name) {
  auto it = deviceIndex_.find(toLower(name));
  if (it == deviceIndex_.end()) return false;
  const size_t idx = it->second;
  devices_.erase(devices_.begin() + static_cast<long>(idx));
  deviceIndex_.erase(it);
  for (auto& [k, v] : deviceIndex_)
    if (v > idx) --v;
  return true;
}

void Circuit::setDeviceLine(const std::string& name, int line) {
  deviceLines_[toLower(name)] = line;
}

int Circuit::deviceLine(const std::string& name) const {
  auto it = deviceLines_.find(toLower(name));
  return it == deviceLines_.end() ? -1 : it->second;
}

void Circuit::addBjtModel(const std::string& name, BjtModel model) {
  bjtModels_[toLower(name)] = model;
}

void Circuit::addDiodeModel(const std::string& name, DiodeModel model) {
  diodeModels_[toLower(name)] = model;
}

const BjtModel& Circuit::bjtModel(const std::string& name) const {
  auto it = bjtModels_.find(toLower(name));
  if (it == bjtModels_.end())
    throw Error("unknown BJT model '" + name + "'");
  return it->second;
}

const DiodeModel& Circuit::diodeModel(const std::string& name) const {
  auto it = diodeModels_.find(toLower(name));
  if (it == diodeModels_.end())
    throw Error("unknown diode model '" + name + "'");
  return it->second;
}

bool Circuit::hasBjtModel(const std::string& name) const {
  return bjtModels_.count(toLower(name)) != 0;
}

}  // namespace ahfic::spice
