#include "spice/bjt.h"

#include <algorithm>
#include <cmath>

#include "spice/circuit.h"
#include "spice/junction.h"
#include "util/error.h"
#include "util/units.h"

namespace ahfic::spice {

using util::constants::kPi;

double BjtOpInfo::ft() const {
  const double ctot = cpi + cmu;
  if (gm <= 0.0 || ctot <= 0.0) return 0.0;
  return gm / (2.0 * kPi * ctot);
}

namespace {

/// Applies the SPICE area factor to a model card: currents and
/// capacitances scale up with area, resistances scale down. This is the
/// *baseline* scaling the paper criticises; the bjtgen library generates a
/// per-shape card instead.
BjtModel applyAreaFactor(BjtModel m, double area) {
  m.is *= area;
  m.ise *= area;
  m.isc *= area;
  if (m.ikf > 0.0) m.ikf *= area;
  if (m.ikr > 0.0) m.ikr *= area;
  if (m.irb > 0.0) m.irb *= area;
  if (m.itf > 0.0) m.itf *= area;
  m.cje *= area;
  m.cjc *= area;
  m.cjs *= area;
  if (m.rb > 0.0) m.rb /= area;
  if (m.rbm > 0.0) m.rbm /= area;
  if (m.re > 0.0) m.re /= area;
  if (m.rc > 0.0) m.rc /= area;
  return m;
}

}  // namespace

Bjt::Bjt(std::string name, Circuit& ckt, int c, int b, int e,
         const BjtModel& model, double area, int substrate, double tempC)
    : Device(std::move(name), {c, b, e, substrate}),
      model_(model),
      area_(area),
      pol_(model.pnp ? -1.0 : 1.0),
      ci_(c),
      bi_(b),
      ei_(e),
      sub_(substrate) {
  if (area <= 0.0) throw Error("bjt " + this->name() + ": area must be > 0");
  m_ = applyAreaFactor(model_, area_);
  if (m_.rbm <= 0.0) m_.rbm = m_.rb;  // SPICE default: RBM = RB
  vt_ = util::constants::thermalVoltage(tempC);

  // Temperature adjustment (Tnom = 27 C):
  //   IS(T) = IS * (T/Tnom)^XTI * exp(EG/Vt * (T/Tnom - 1))
  //   BF(T) = BF * (T/Tnom)^XTB (same for BR); leakage saturation
  //   currents scale as IS^(1/N) per SPICE.
  constexpr double kTnomC = 27.0;
  if (tempC != kTnomC) {
    const double tr = (tempC + util::constants::kZeroCelsiusInKelvin) /
                      (kTnomC + util::constants::kZeroCelsiusInKelvin);
    const double isFactor =
        std::pow(tr, m_.xti) * std::exp(m_.eg / vt_ * (tr - 1.0));
    m_.is *= isFactor;
    if (m_.ise > 0.0)
      m_.ise *= std::pow(isFactor, 1.0 / m_.ne) / std::pow(tr, m_.xtb);
    if (m_.isc > 0.0)
      m_.isc *= std::pow(isFactor, 1.0 / m_.nc) / std::pow(tr, m_.xtb);
    m_.bf *= std::pow(tr, m_.xtb);
    m_.br *= std::pow(tr, m_.xtb);
  }
  vcritE_ = junctionVcrit(m_.is, m_.nf * vt_);
  vcritC_ = junctionVcrit(m_.is, m_.nr * vt_);
  if (m_.rc > 0.0) ci_ = ckt.internalNode(this->name() + "#c");
  if (m_.rb > 0.0) bi_ = ckt.internalNode(this->name() + "#b");
  if (m_.re > 0.0) ei_ = ckt.internalNode(this->name() + "#e");
}

Bjt::Eval Bjt::evaluate(double vbe, double vbc, double gmin) const {
  Eval r{};
  const double vtf = m_.nf * vt_;
  const double vtr = m_.nr * vt_;

  // Ideal transport diodes.
  {
    auto [i, g] = junctionIV(vbe, m_.is, vtf);
    r.ibe1 = i;
    r.gbe1 = g;
  }
  {
    auto [i, g] = junctionIV(vbc, m_.is, vtr);
    r.ibc1 = i;
    r.gbc1 = g;
  }
  // Leakage diodes.
  if (m_.ise > 0.0) {
    auto [i, g] = junctionIV(vbe, m_.ise, m_.ne * vt_);
    r.ibe2 = i;
    r.gbe2 = g;
  }
  if (m_.isc > 0.0) {
    auto [i, g] = junctionIV(vbc, m_.isc, m_.nc * vt_);
    r.ibc2 = i;
    r.gbc2 = g;
  }

  // Base-charge modulation: Early effect (q1) and high injection (q2).
  double q1 = 1.0;
  double dq1Dvbe = 0.0, dq1Dvbc = 0.0;
  {
    double denom = 1.0;
    if (m_.vaf > 0.0) denom -= vbc / m_.vaf;
    if (m_.var > 0.0) denom -= vbe / m_.var;
    denom = std::max(denom, 1e-3);
    q1 = 1.0 / denom;
    if (m_.vaf > 0.0) dq1Dvbc = q1 * q1 / m_.vaf;
    if (m_.var > 0.0) dq1Dvbe = q1 * q1 / m_.var;
  }
  double q2 = 0.0, dq2Dvbe = 0.0, dq2Dvbc = 0.0;
  if (m_.ikf > 0.0) {
    q2 += r.ibe1 / m_.ikf;
    dq2Dvbe += r.gbe1 / m_.ikf;
  }
  if (m_.ikr > 0.0) {
    q2 += r.ibc1 / m_.ikr;
    dq2Dvbc += r.gbc1 / m_.ikr;
  }
  const double sq = std::sqrt(1.0 + 4.0 * std::max(q2, -0.2499));
  r.qb = q1 * (1.0 + sq) / 2.0;
  r.qb = std::max(r.qb, 1e-4);
  r.dqbDvbe = dq1Dvbe * (1.0 + sq) / 2.0 + q1 * dq2Dvbe / sq;
  r.dqbDvbc = dq1Dvbc * (1.0 + sq) / 2.0 + q1 * dq2Dvbc / sq;

  // Transport current and its derivatives.
  r.icc = (r.ibe1 - r.ibc1) / r.qb;
  r.gmf = (r.gbe1 - r.icc * r.dqbDvbe) / r.qb;
  r.gmr = (-r.gbc1 - r.icc * r.dqbDvbc) / r.qb;

  // Total base current (junction gmin leaks included by caller's stamps).
  r.ibTotal = r.ibe1 / m_.bf + r.ibe2 + r.ibc1 / m_.br + r.ibc2 +
              gmin * (vbe + vbc);

  // Bias-dependent base resistance.
  r.rbEff = m_.rb;
  if (m_.rb > 0.0) {
    if (m_.irb > 0.0) {
      const double ib = std::max(std::fabs(r.ibTotal), 1e-15);
      const double arg1 = ib / m_.irb;
      const double z =
          (-1.0 + std::sqrt(1.0 + 144.0 / (kPi * kPi) * arg1)) /
          (24.0 / (kPi * kPi) * std::sqrt(arg1));
      const double tz = std::tan(z);
      r.rbEff = m_.rbm + 3.0 * (m_.rb - m_.rbm) * (tz - z) / (z * tz * tz);
    } else {
      r.rbEff = m_.rbm + (m_.rb - m_.rbm) / r.qb;
    }
    r.rbEff = std::max(r.rbEff, 1e-3);
  }
  return r;
}

Bjt::Charges Bjt::charges(double vbe, double vbc, double vcs,
                          const Eval& e) const {
  Charges c{};

  // B-E: depletion + forward diffusion with XTF/VTF/ITF bias dependence.
  {
    const auto dep = depletionQC(vbe, m_.cje, m_.vje, m_.mje, m_.fc);
    double qde = 0.0, cde = 0.0;
    if (m_.tf > 0.0) {
      double argtf = 0.0, arg2 = 0.0;
      if (m_.xtf > 0.0) {
        argtf = m_.xtf;
        if (m_.vtf > 0.0)
          argtf *= std::exp(std::min(vbc / (1.44 * m_.vtf), 40.0));
        arg2 = argtf;
        if (m_.itf > 0.0 && e.ibe1 > 0.0) {
          const double temp = e.ibe1 / (e.ibe1 + m_.itf);
          argtf *= temp * temp;
          arg2 = argtf * (3.0 - 2.0 * temp);
        }
      }
      qde = m_.tf * (1.0 + argtf) * e.ibe1 / e.qb;
      cde = m_.tf *
            (e.gbe1 * (1.0 + arg2) -
             e.ibe1 * (1.0 + argtf) * e.dqbDvbe / e.qb) /
            e.qb;
      cde = std::max(cde, 0.0);
    }
    c.qbe = dep.q + qde;
    c.cbe = dep.c + cde;
  }

  // B-C: XCJC fraction at the internal base, remainder at the external
  // base; reverse diffusion charge TR * ibc1 on the internal part.
  {
    const auto depInt = depletionQC(vbc, m_.cjc * m_.xcjc, m_.vjc, m_.mjc,
                                    m_.fc);
    c.qbc = depInt.q + m_.tr * e.ibc1;
    c.cbc = depInt.c + m_.tr * e.gbc1;
    const auto depExt = depletionQC(vbc, m_.cjc * (1.0 - m_.xcjc), m_.vjc,
                                    m_.mjc, m_.fc);
    c.qbx = depExt.q;
    c.cbx = depExt.c;
  }

  // Collector-substrate depletion (normally reverse biased).
  {
    const auto dep = depletionQC(vcs, m_.cjs, m_.vjs, m_.mjs, 0.0);
    c.qcs = dep.q;
    c.ccs = dep.c;
  }
  return c;
}

void Bjt::beginSolve(const Solution& x) {
  vbeLimited_ = pol_ * x.diff(bi_, ei_);
  vbcLimited_ = pol_ * x.diff(bi_, ci_);
}

void Bjt::load(Stamper& s, const Solution& x, const LoadContext& ctx) {
  SlotWriter w(s, stampMemo());
  const int c = nodes()[0], b = nodes()[1], e = nodes()[2];

  // Parasitic resistances (base resistance handled after evaluation).
  if (m_.rc > 0.0) w.addConductance(c, ci_, 1.0 / m_.rc);
  if (m_.re > 0.0) w.addConductance(e, ei_, 1.0 / m_.re);

  // Junction voltages in model (NPN) polarity, with SPICE limiting.
  const double vbeCand = pol_ * x.diff(bi_, ei_);
  const double vbcCand = pol_ * x.diff(bi_, ci_);
  const double vbe = pnjlim(vbeCand, vbeLimited_, m_.nf * vt_, vcritE_);
  const double vbc = pnjlim(vbcCand, vbcLimited_, m_.nr * vt_, vcritC_);
  ctx.noteLimited(vbe, vbeCand, this);
  ctx.noteLimited(vbc, vbcCand, this);
  vbeLimited_ = vbe;
  vbcLimited_ = vbc;

  const Eval ev = evaluate(vbe, vbc, ctx.gmin);

  if (m_.rb > 0.0) w.addConductance(b, bi_, 1.0 / ev.rbEff);

  // --- B-E junction branch (bi -> ei): i = ibe1/bf + ibe2 + gmin*vbe ---
  {
    const double g = ev.gbe1 / m_.bf + ev.gbe2 + ctx.gmin;
    const double i = ev.ibe1 / m_.bf + ev.ibe2 + ctx.gmin * vbe;
    w.addConductance(bi_, ei_, g);
    const double ieq = pol_ * (i - g * vbe);
    w.addRhs(bi_, -ieq);
    w.addRhs(ei_, ieq);
  }
  // --- B-C junction branch (bi -> ci) ---
  {
    const double g = ev.gbc1 / m_.br + ev.gbc2 + ctx.gmin;
    const double i = ev.ibc1 / m_.br + ev.ibc2 + ctx.gmin * vbc;
    w.addConductance(bi_, ci_, g);
    const double ieq = pol_ * (i - g * vbc);
    w.addRhs(bi_, -ieq);
    w.addRhs(ci_, ieq);
  }
  // --- Transport current source (ci -> ei): pol * icc ---
  {
    // d(pol*icc)/dV(bi) = gmf + gmr; /dV(ei) = -gmf; /dV(ci) = -gmr.
    w.addA(ci_, bi_, ev.gmf + ev.gmr);
    w.addA(ci_, ei_, -ev.gmf);
    w.addA(ci_, ci_, -ev.gmr);
    w.addA(ei_, bi_, -(ev.gmf + ev.gmr));
    w.addA(ei_, ei_, ev.gmf);
    w.addA(ei_, ci_, ev.gmr);
    const double ieq = pol_ * (ev.icc - ev.gmf * vbe - ev.gmr * vbc);
    w.addRhs(ci_, -ieq);
    w.addRhs(ei_, ieq);
  }

  // --- Charge storage ---
  const double vcs = pol_ * x.diff(sub_, ci_);
  const Charges ch = charges(vbe, vbc, vcs, ev);
  const double dqbe = ctx.integrate(stateBase() + 0, ch.qbe);
  const double dqbc = ctx.integrate(stateBase() + 1, ch.qbc);
  const double dqbx = ctx.integrate(stateBase() + 2, ch.qbx);
  const double dqcs = ctx.integrate(stateBase() + 3, ch.qcs);
  if (ctx.c0 != 0.0) {
    auto stampCharge = [&](int p, int n, double cap, double dqdt, double v) {
      const double geq = cap * ctx.c0;
      w.addConductance(p, n, geq);
      const double ieq = pol_ * (dqdt - geq * v);
      w.addRhs(p, -ieq);
      w.addRhs(n, ieq);
    };
    stampCharge(bi_, ei_, ch.cbe, dqbe, vbe);
    stampCharge(bi_, ci_, ch.cbc, dqbc, vbc);
    stampCharge(b, ci_, ch.cbx, dqbx, pol_ * x.diff(b, ci_));
    stampCharge(sub_, ci_, ch.ccs, dqcs, vcs);
  }
}

void Bjt::loadAc(AcStamper& s, const Solution& op, double omega) {
  AcSlotWriter w(s, stampMemoAc());
  const int c = nodes()[0], b = nodes()[1], e = nodes()[2];
  const double vbe = pol_ * op.diff(bi_, ei_);
  const double vbc = pol_ * op.diff(bi_, ci_);
  const double vcs = pol_ * op.diff(sub_, ci_);

  const Eval ev = evaluate(vbe, vbc, 0.0);
  const Charges ch = charges(vbe, vbc, vcs, ev);

  if (m_.rc > 0.0) w.addAdmittance(c, ci_, {1.0 / m_.rc, 0.0});
  if (m_.re > 0.0) w.addAdmittance(e, ei_, {1.0 / m_.re, 0.0});
  if (m_.rb > 0.0) w.addAdmittance(b, bi_, {1.0 / ev.rbEff, 0.0});

  const double gpi = ev.gbe1 / m_.bf + ev.gbe2;
  const double gmu = ev.gbc1 / m_.br + ev.gbc2;
  w.addAdmittance(bi_, ei_, {gpi, omega * ch.cbe});
  w.addAdmittance(bi_, ci_, {gmu, omega * ch.cbc});
  w.addAdmittance(b, ci_, {0.0, omega * ch.cbx});
  w.addAdmittance(sub_, ci_, {0.0, omega * ch.ccs});

  // Transport transconductances (polarity cancels: see load()).
  w.addA(ci_, bi_, {ev.gmf + ev.gmr, 0.0});
  w.addA(ci_, ei_, {-ev.gmf, 0.0});
  w.addA(ci_, ci_, {-ev.gmr, 0.0});
  w.addA(ei_, bi_, {-(ev.gmf + ev.gmr), 0.0});
  w.addA(ei_, ei_, {ev.gmf, 0.0});
  w.addA(ei_, ci_, {ev.gmr, 0.0});
}

void Bjt::appendNoise(std::vector<NoiseSourceDesc>& out,
                      const Solution& op, double tempK) const {
  const BjtOpInfo info = opInfo(op);
  const double kT4 = 4.0 * 1.380649e-23 * tempK;
  constexpr double kQ = 1.602176634e-19;

  // Thermal noise of the parasitic resistances.
  if (m_.rb > 0.0)
    out.push_back({nodes()[1], bi_, kT4 / info.rbEff, 0.0,
                   name() + " rb thermal"});
  if (m_.re > 0.0)
    out.push_back({nodes()[2], ei_, kT4 / m_.re, 0.0,
                   name() + " re thermal"});
  if (m_.rc > 0.0)
    out.push_back({nodes()[0], ci_, kT4 / m_.rc, 0.0,
                   name() + " rc thermal"});

  // Shot noise of the junction currents.
  out.push_back({bi_, ei_, 2.0 * kQ * std::fabs(info.ib), 0.0,
                 name() + " base shot"});
  out.push_back({ci_, ei_, 2.0 * kQ * std::fabs(info.ic), 0.0,
                 name() + " collector shot"});
}

BjtOpInfo Bjt::opInfo(const Solution& op) const {
  BjtOpInfo info;
  info.vbe = pol_ * op.diff(bi_, ei_);
  info.vbc = pol_ * op.diff(bi_, ci_);
  const double vcs = pol_ * op.diff(sub_, ci_);

  const Eval ev = evaluate(info.vbe, info.vbc, 0.0);
  const Charges ch = charges(info.vbe, info.vbc, vcs, ev);

  info.ic = ev.icc - ev.ibc1 / m_.br - ev.ibc2;
  info.ib = ev.ibe1 / m_.bf + ev.ibe2 + ev.ibc1 / m_.br + ev.ibc2;
  info.gm = ev.gmf;
  info.gpi = ev.gbe1 / m_.bf + ev.gbe2;
  info.gmu = ev.gbc1 / m_.br + ev.gbc2;
  info.go = -ev.gmr + ev.gbc1 / m_.br + ev.gbc2;
  info.cpi = ch.cbe;
  info.cmu = ch.cbc + ch.cbx;
  info.ccs = ch.ccs;
  info.rbEff = ev.rbEff;
  info.qb = ev.qb;
  return info;
}

}  // namespace ahfic::spice
