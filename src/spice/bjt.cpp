#include "spice/bjt.h"

#include <algorithm>
#include <cmath>

#include "spice/circuit.h"
#include "spice/junction.h"
#include "util/error.h"
#include "util/units.h"

namespace ahfic::spice {

using util::constants::kPi;

double BjtOpInfo::ft() const {
  const double ctot = cpi + cmu;
  if (gm <= 0.0 || ctot <= 0.0) return 0.0;
  return gm / (2.0 * kPi * ctot);
}

Bjt::Bjt(std::string name, Circuit& ckt, int c, int b, int e,
         const BjtModel& model, double area, int substrate, double tempC)
    : Device(std::move(name), {c, b, e, substrate}),
      model_(model),
      area_(area),
      pol_(model.pnp ? -1.0 : 1.0),
      ci_(c),
      bi_(b),
      ei_(e),
      sub_(substrate) {
  if (area <= 0.0) throw Error("bjt " + this->name() + ": area must be > 0");
  // Area factor, RBM default, temperature adjustment and the pnjlim
  // critical voltages all live in spice/gummel.h, shared with the batched
  // replica engine.
  const DerivedGummelPoon d = deriveGummelPoon(model_, area_, tempC);
  m_ = d.m;
  vt_ = d.vt;
  vcritE_ = d.vcritE;
  vcritC_ = d.vcritC;
  if (m_.rc > 0.0) ci_ = ckt.internalNode(this->name() + "#c");
  if (m_.rb > 0.0) bi_ = ckt.internalNode(this->name() + "#b");
  if (m_.re > 0.0) ei_ = ckt.internalNode(this->name() + "#e");
}

void Bjt::beginSolve(const Solution& x) {
  vbeLimited_ = pol_ * x.diff(bi_, ei_);
  vbcLimited_ = pol_ * x.diff(bi_, ci_);
}

void Bjt::load(Stamper& s, const Solution& x, const LoadContext& ctx) {
  SlotWriter w(s, stampMemo());
  const int c = nodes()[0], b = nodes()[1], e = nodes()[2];

  // Parasitic resistances (base resistance handled after evaluation).
  if (m_.rc > 0.0) w.addConductance(c, ci_, 1.0 / m_.rc);
  if (m_.re > 0.0) w.addConductance(e, ei_, 1.0 / m_.re);

  // Junction voltages in model (NPN) polarity, with SPICE limiting.
  const double vbeCand = pol_ * x.diff(bi_, ei_);
  const double vbcCand = pol_ * x.diff(bi_, ci_);
  const double vbe = pnjlim(vbeCand, vbeLimited_, m_.nf * vt_, vcritE_);
  const double vbc = pnjlim(vbcCand, vbcLimited_, m_.nr * vt_, vcritC_);
  ctx.noteLimited(vbe, vbeCand, this);
  ctx.noteLimited(vbc, vbcCand, this);
  vbeLimited_ = vbe;
  vbcLimited_ = vbc;

  const Eval ev = evaluate(vbe, vbc, ctx.gmin);

  if (m_.rb > 0.0) w.addConductance(b, bi_, 1.0 / ev.rbEff);

  // --- B-E junction branch (bi -> ei): i = ibe1/bf + ibe2 + gmin*vbe ---
  {
    const double g = ev.gbe1 / m_.bf + ev.gbe2 + ctx.gmin;
    const double i = ev.ibe1 / m_.bf + ev.ibe2 + ctx.gmin * vbe;
    w.addConductance(bi_, ei_, g);
    const double ieq = pol_ * (i - g * vbe);
    w.addRhs(bi_, -ieq);
    w.addRhs(ei_, ieq);
  }
  // --- B-C junction branch (bi -> ci) ---
  {
    const double g = ev.gbc1 / m_.br + ev.gbc2 + ctx.gmin;
    const double i = ev.ibc1 / m_.br + ev.ibc2 + ctx.gmin * vbc;
    w.addConductance(bi_, ci_, g);
    const double ieq = pol_ * (i - g * vbc);
    w.addRhs(bi_, -ieq);
    w.addRhs(ci_, ieq);
  }
  // --- Transport current source (ci -> ei): pol * icc ---
  {
    // d(pol*icc)/dV(bi) = gmf + gmr; /dV(ei) = -gmf; /dV(ci) = -gmr.
    w.addA(ci_, bi_, ev.gmf + ev.gmr);
    w.addA(ci_, ei_, -ev.gmf);
    w.addA(ci_, ci_, -ev.gmr);
    w.addA(ei_, bi_, -(ev.gmf + ev.gmr));
    w.addA(ei_, ei_, ev.gmf);
    w.addA(ei_, ci_, ev.gmr);
    const double ieq = pol_ * (ev.icc - ev.gmf * vbe - ev.gmr * vbc);
    w.addRhs(ci_, -ieq);
    w.addRhs(ei_, ieq);
  }

  // --- Charge storage ---
  const double vcs = pol_ * x.diff(sub_, ci_);
  const Charges ch = charges(vbe, vbc, vcs, ev);
  const double dqbe = ctx.integrate(stateBase() + 0, ch.qbe);
  const double dqbc = ctx.integrate(stateBase() + 1, ch.qbc);
  const double dqbx = ctx.integrate(stateBase() + 2, ch.qbx);
  const double dqcs = ctx.integrate(stateBase() + 3, ch.qcs);
  if (ctx.c0 != 0.0) {
    auto stampCharge = [&](int p, int n, double cap, double dqdt, double v) {
      const double geq = cap * ctx.c0;
      w.addConductance(p, n, geq);
      const double ieq = pol_ * (dqdt - geq * v);
      w.addRhs(p, -ieq);
      w.addRhs(n, ieq);
    };
    stampCharge(bi_, ei_, ch.cbe, dqbe, vbe);
    stampCharge(bi_, ci_, ch.cbc, dqbc, vbc);
    stampCharge(b, ci_, ch.cbx, dqbx, pol_ * x.diff(b, ci_));
    stampCharge(sub_, ci_, ch.ccs, dqcs, vcs);
  }
}

void Bjt::loadAc(AcStamper& s, const Solution& op, double omega) {
  AcSlotWriter w(s, stampMemoAc());
  const int c = nodes()[0], b = nodes()[1], e = nodes()[2];
  const double vbe = pol_ * op.diff(bi_, ei_);
  const double vbc = pol_ * op.diff(bi_, ci_);
  const double vcs = pol_ * op.diff(sub_, ci_);

  const Eval ev = evaluate(vbe, vbc, 0.0);
  const Charges ch = charges(vbe, vbc, vcs, ev);

  if (m_.rc > 0.0) w.addAdmittance(c, ci_, {1.0 / m_.rc, 0.0});
  if (m_.re > 0.0) w.addAdmittance(e, ei_, {1.0 / m_.re, 0.0});
  if (m_.rb > 0.0) w.addAdmittance(b, bi_, {1.0 / ev.rbEff, 0.0});

  const double gpi = ev.gbe1 / m_.bf + ev.gbe2;
  const double gmu = ev.gbc1 / m_.br + ev.gbc2;
  w.addAdmittance(bi_, ei_, {gpi, omega * ch.cbe});
  w.addAdmittance(bi_, ci_, {gmu, omega * ch.cbc});
  w.addAdmittance(b, ci_, {0.0, omega * ch.cbx});
  w.addAdmittance(sub_, ci_, {0.0, omega * ch.ccs});

  // Transport transconductances (polarity cancels: see load()).
  w.addA(ci_, bi_, {ev.gmf + ev.gmr, 0.0});
  w.addA(ci_, ei_, {-ev.gmf, 0.0});
  w.addA(ci_, ci_, {-ev.gmr, 0.0});
  w.addA(ei_, bi_, {-(ev.gmf + ev.gmr), 0.0});
  w.addA(ei_, ei_, {ev.gmf, 0.0});
  w.addA(ei_, ci_, {ev.gmr, 0.0});
}

void Bjt::appendNoise(std::vector<NoiseSourceDesc>& out,
                      const Solution& op, double tempK) const {
  const BjtOpInfo info = opInfo(op);
  const double kT4 = 4.0 * 1.380649e-23 * tempK;
  constexpr double kQ = 1.602176634e-19;

  // Thermal noise of the parasitic resistances.
  if (m_.rb > 0.0)
    out.push_back({nodes()[1], bi_, kT4 / info.rbEff, 0.0,
                   name() + " rb thermal"});
  if (m_.re > 0.0)
    out.push_back({nodes()[2], ei_, kT4 / m_.re, 0.0,
                   name() + " re thermal"});
  if (m_.rc > 0.0)
    out.push_back({nodes()[0], ci_, kT4 / m_.rc, 0.0,
                   name() + " rc thermal"});

  // Shot noise of the junction currents.
  out.push_back({bi_, ei_, 2.0 * kQ * std::fabs(info.ib), 0.0,
                 name() + " base shot"});
  out.push_back({ci_, ei_, 2.0 * kQ * std::fabs(info.ic), 0.0,
                 name() + " collector shot"});
}

BjtOpInfo Bjt::opInfo(const Solution& op) const {
  BjtOpInfo info;
  info.vbe = pol_ * op.diff(bi_, ei_);
  info.vbc = pol_ * op.diff(bi_, ci_);
  const double vcs = pol_ * op.diff(sub_, ci_);

  const Eval ev = evaluate(info.vbe, info.vbc, 0.0);
  const Charges ch = charges(info.vbe, info.vbc, vcs, ev);

  info.ic = ev.icc - ev.ibc1 / m_.br - ev.ibc2;
  info.ib = ev.ibe1 / m_.bf + ev.ibe2 + ev.ibc1 / m_.br + ev.ibc2;
  info.gm = ev.gmf;
  info.gpi = ev.gbe1 / m_.bf + ev.gbe2;
  info.gmu = ev.gbc1 / m_.br + ev.gbc2;
  info.go = -ev.gmr + ev.gbc1 / m_.br + ev.gbc2;
  info.cpi = ch.cbe;
  info.cmu = ch.cbc + ch.cbx;
  info.ccs = ch.ccs;
  info.rbEff = ev.rbEff;
  info.qb = ev.qb;
  return info;
}

}  // namespace ahfic::spice
