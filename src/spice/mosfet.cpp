#include "spice/mosfet.h"

#include <algorithm>
#include <cmath>

#include "spice/circuit.h"
#include "util/error.h"

namespace ahfic::spice {

Mosfet::Mosfet(std::string name, Circuit& ckt, int d, int g, int s, int b,
               const MosModel& model, double w, double l)
    : Device(std::move(name), {d, g, s, b}),
      m_(model),
      w_(w),
      l_(l),
      pol_(model.pmos ? -1.0 : 1.0),
      di_(d),
      si_(s) {
  if (w <= 0.0 || l <= 0.0)
    throw Error("mosfet " + this->name() + ": W and L must be > 0");
  if (m_.kp <= 0.0)
    throw Error("mosfet " + this->name() + ": KP must be > 0");
  if (m_.rd > 0.0) di_ = ckt.internalNode(this->name() + "#d");
  if (m_.rs > 0.0) si_ = ckt.internalNode(this->name() + "#s");
}

Mosfet::Eval Mosfet::evaluate(double vgs, double vds, double vbs) const {
  // Source-drain symmetry: evaluate with the more positive end as the
  // drain. With the mirrored device at (vgs', vds', vbs') =
  // (vgs - vds, -vds, vbs - vds) and Id = -Id', the chain rule gives the
  // partials w.r.t. the ORIGINAL voltages exactly:
  //   dId/dvgs = -gm'
  //   dId/dvds =  gm' + gds' + gmb'
  //   dId/dvbs = -gmb'
  if (vds < 0.0) {
    const Eval m = evaluate(vgs - vds, -vds, vbs - vds);
    Eval r = m;
    r.id = -m.id;
    r.gm = -m.gm;
    r.gds = m.gm + m.gds + m.gmb;
    r.gmb = -m.gmb;
    return r;
  }

  Eval r{};
  // Bulk-modulated threshold.
  const double phiEff = std::max(m_.phi, 1e-3);
  const double sb = std::sqrt(std::max(phiEff - vbs, 1e-6));
  r.vth = m_.vto + m_.gamma * (sb - std::sqrt(phiEff));
  const double dvthDvbs = m_.gamma * 0.5 / sb;  // note dVth/dVbs = -g/2sb... sign below

  const double beta = m_.kp * w_ / l_;
  const double vov = vgs - r.vth;
  const double lam = 1.0 + m_.lambda * vds;

  if (vov <= 0.0) {
    // Cutoff: leave only gmin (stamped by caller) to keep the node alive.
    r.id = 0.0;
    r.gm = r.gds = r.gmb = 0.0;
    r.saturated = false;
    return r;
  }
  if (vds < vov) {
    // Triode.
    r.id = beta * lam * (vov - vds / 2.0) * vds;
    r.gm = beta * lam * vds;
    r.gds = beta * (lam * (vov - vds) + m_.lambda * (vov - vds / 2.0) * vds);
    r.saturated = false;
  } else {
    // Saturation.
    r.id = 0.5 * beta * lam * vov * vov;
    r.gm = beta * lam * vov;
    r.gds = 0.5 * beta * m_.lambda * vov * vov;
    r.saturated = true;
  }
  // dId/dvbs = gm * dvov/dvbs = gm * (-dVth/dvbs); vth falls as vbs rises:
  // dVth/dvbs = -gamma/(2*sqrt(phi - vbs)).
  r.gmb = r.gm * dvthDvbs;
  return r;
}

void Mosfet::load(Stamper& s, const Solution& x, const LoadContext& ctx) {
  SlotWriter w(s, stampMemo());
  const int d = nodes()[0], g = nodes()[1], srcn = nodes()[2],
            b = nodes()[3];
  if (m_.rd > 0.0) w.addConductance(d, di_, 1.0 / m_.rd);
  if (m_.rs > 0.0) w.addConductance(srcn, si_, 1.0 / m_.rs);

  const double vgs = pol_ * x.diff(g, si_);
  const double vds = pol_ * x.diff(di_, si_);
  const double vbs = pol_ * x.diff(b, si_);

  const Eval ev = evaluate(vgs, vds, vbs);

  // Channel current di -> si with partials w.r.t. (vgs, vds, vbs).
  // d(pol*id)/dV(g) = gm; /dV(di) = gds; /dV(b) = gmb;
  // /dV(si) = -(gm + gds + gmb). Plus gmin to keep the matrix regular.
  const double gmin = ctx.gmin;
  w.addA(di_, g, ev.gm);
  w.addA(di_, di_, ev.gds + gmin);
  w.addA(di_, b, ev.gmb);
  w.addA(di_, si_, -(ev.gm + ev.gds + ev.gmb + gmin));
  w.addA(si_, g, -ev.gm);
  w.addA(si_, di_, -(ev.gds + gmin));
  w.addA(si_, b, -ev.gmb);
  w.addA(si_, si_, ev.gm + ev.gds + ev.gmb + gmin);
  const double iTot = ev.id + gmin * vds;
  const double ieq =
      pol_ * (iTot - ev.gm * vgs - ev.gds * vds - ev.gmb * vbs);
  w.addRhs(di_, -ieq);
  w.addRhs(si_, ieq);

  // Charge storage: overlap + simplified intrinsic gate caps (2/3 C_ox in
  // saturation lumped onto G-S), fixed junction caps.
  const double cgs = m_.cgso * w_ + (2.0 / 3.0) * m_.cox * w_ * l_;
  const double cgd = m_.cgdo * w_;
  const double cgb = m_.cgbo * l_;
  const double vgd = pol_ * x.diff(g, di_);
  const double vgb = pol_ * x.diff(g, b);
  const double vbd = pol_ * x.diff(b, di_);

  const double dqgs = ctx.integrate(stateBase() + 0, cgs * vgs);
  const double dqgd = ctx.integrate(stateBase() + 1, cgd * vgd);
  const double dqgb = ctx.integrate(stateBase() + 2, cgb * vgb);
  const double dqb =
      ctx.integrate(stateBase() + 3, m_.cbd * vbd + m_.cbs * vbs);
  if (ctx.c0 != 0.0) {
    auto stampCap = [&](int p, int n, double cap, double dqdt, double v) {
      if (cap <= 0.0) return;
      const double geq = cap * ctx.c0;
      w.addConductance(p, n, geq);
      const double ie = pol_ * (dqdt - geq * v);
      w.addRhs(p, -ie);
      w.addRhs(n, ie);
    };
    stampCap(g, si_, cgs, dqgs, vgs);
    stampCap(g, di_, cgd, dqgd, vgd);
    stampCap(g, b, cgb, dqgb, vgb);
    // Split the lumped bulk charge across the two junctions.
    stampCap(b, di_, m_.cbd, m_.cbd == 0.0 ? 0.0 : dqb * 0.5, vbd);
    stampCap(b, si_, m_.cbs, m_.cbs == 0.0 ? 0.0 : dqb * 0.5, vbs);
  }
}

void Mosfet::loadAc(AcStamper& s, const Solution& op, double omega) {
  AcSlotWriter w(s, stampMemoAc());
  const int d = nodes()[0], g = nodes()[1], srcn = nodes()[2],
            b = nodes()[3];
  if (m_.rd > 0.0) w.addAdmittance(d, di_, {1.0 / m_.rd, 0.0});
  if (m_.rs > 0.0) w.addAdmittance(srcn, si_, {1.0 / m_.rs, 0.0});

  const double vgs = pol_ * op.diff(g, si_);
  const double vds = pol_ * op.diff(di_, si_);
  const double vbs = pol_ * op.diff(b, si_);
  const Eval ev = evaluate(vgs, vds, vbs);

  w.addA(di_, g, {ev.gm, 0.0});
  w.addA(di_, di_, {ev.gds, 0.0});
  w.addA(di_, b, {ev.gmb, 0.0});
  w.addA(di_, si_, {-(ev.gm + ev.gds + ev.gmb), 0.0});
  w.addA(si_, g, {-ev.gm, 0.0});
  w.addA(si_, di_, {-ev.gds, 0.0});
  w.addA(si_, b, {-ev.gmb, 0.0});
  w.addA(si_, si_, {ev.gm + ev.gds + ev.gmb, 0.0});

  const double cgs = m_.cgso * w_ + (2.0 / 3.0) * m_.cox * w_ * l_;
  const double cgd = m_.cgdo * w_;
  const double cgb = m_.cgbo * l_;
  w.addAdmittance(g, si_, {0.0, omega * cgs});
  w.addAdmittance(g, di_, {0.0, omega * cgd});
  w.addAdmittance(g, b, {0.0, omega * cgb});
  if (m_.cbd > 0.0) w.addAdmittance(b, di_, {0.0, omega * m_.cbd});
  if (m_.cbs > 0.0) w.addAdmittance(b, si_, {0.0, omega * m_.cbs});
}

void Mosfet::appendNoise(std::vector<NoiseSourceDesc>& out,
                         const Solution& op, double tempK) const {
  const OpInfo info = opInfo(op);
  const double kT4 = 4.0 * 1.380649e-23 * tempK;
  if (m_.rd > 0.0)
    out.push_back({nodes()[0], di_, kT4 / m_.rd, 0.0,
                   name() + " rd thermal"});
  if (m_.rs > 0.0)
    out.push_back({nodes()[2], si_, kT4 / m_.rs, 0.0,
                   name() + " rs thermal"});
  // Channel thermal noise: 4kT * (2/3) * gm in saturation (long-channel).
  out.push_back({di_, si_, kT4 * (2.0 / 3.0) * std::max(info.gm, 0.0), 0.0,
                 name() + " channel thermal"});
}

Mosfet::OpInfo Mosfet::opInfo(const Solution& op) const {
  OpInfo info;
  info.vgs = pol_ * op.diff(nodes()[1], si_);
  info.vds = pol_ * op.diff(di_, si_);
  info.vbs = pol_ * op.diff(nodes()[3], si_);
  const Eval ev = evaluate(info.vgs, info.vds, info.vbs);
  info.id = ev.id;
  info.gm = ev.gm;
  info.gds = ev.gds;
  info.gmb = ev.gmb;
  info.vth = ev.vth;
  info.saturated = ev.saturated;
  return info;
}

}  // namespace ahfic::spice
