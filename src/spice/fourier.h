#pragma once
// Fourier analysis of transient waveforms (the .FOUR analysis of classic
// SPICE): harmonic amplitudes and total harmonic distortion of a node,
// measured over the last full periods of a transient result.

#include <vector>

#include "spice/analysis.h"

namespace ahfic::spice {

/// Harmonic decomposition of a steady-state waveform.
struct FourierResult {
  double fundamentalHz = 0.0;
  double dcComponent = 0.0;
  /// amplitudes[0] is the fundamental, [1] the 2nd harmonic, ...
  std::vector<double> amplitudes;
  /// phases in degrees, matching `amplitudes`.
  std::vector<double> phasesDeg;

  /// Total harmonic distortion: sqrt(sum(h2..hN)^2) / h1.
  double thd() const;
  /// THD in percent.
  double thdPercent() const { return thd() * 100.0; }
};

/// Computes `nHarmonics` harmonics of `fundamentalHz` from the waveform
/// of `node` in `tran`, using quadrature correlation over the last
/// `periods` full periods (the start-up transient is excluded
/// automatically). Throws ahfic::Error when the record is too short.
FourierResult fourierAnalysis(const TranResult& tran, int node,
                              double fundamentalHz, int nHarmonics = 9,
                              int periods = 4);

}  // namespace ahfic::spice
