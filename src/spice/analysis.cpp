#include "spice/analysis.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/forensics.h"
#include "spice/sources.h"
#include "util/error.h"

namespace {

/// Monotonic nanoseconds for the solver-phase histograms; only sampled
/// when metrics are enabled, so the hot path stays clock-free.
double nowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace ahfic::spice {

std::vector<double> TranResult::voltage(int node) const {
  return unknown(node);
}

std::vector<double> TranResult::unknown(int id) const {
  std::vector<double> out(values.size());
  for (size_t k = 0; k < values.size(); ++k)
    out[k] = (id <= 0) ? 0.0 : values[k][static_cast<size_t>(id - 1)];
  return out;
}

std::complex<double> AcResult::voltage(size_t point, int node) const {
  return unknown(point, node);
}

std::complex<double> AcResult::unknown(size_t point, int id) const {
  if (id <= 0) return {0.0, 0.0};
  return values[point][static_cast<size_t>(id - 1)];
}

double AcResult::magnitudeDb(size_t point, int node) const {
  const double mag = std::abs(voltage(point, node));
  return mag < 1e-300 ? -6000.0 : 20.0 * std::log10(mag);
}

double DcSweepResult::voltage(size_t point, int node) const {
  return unknown(point, node);
}

double DcSweepResult::unknown(size_t point, int id) const {
  if (id <= 0) return 0.0;
  return values[point][static_cast<size_t>(id - 1)];
}

std::vector<double> logspace(double fStart, double fStop,
                             int pointsPerDecade) {
  if (fStart <= 0.0 || fStop <= fStart || pointsPerDecade < 1)
    throw Error("logspace: bad range");
  std::vector<double> out;
  const double decades = std::log10(fStop / fStart);
  const int n = std::max(1, static_cast<int>(
                                std::ceil(decades * pointsPerDecade)));
  for (int i = 0; i <= n; ++i)
    out.push_back(fStart * std::pow(10.0, decades * i / n));
  return out;
}

std::vector<double> linspace(double start, double stop, int points) {
  if (points < 2) return {start};
  std::vector<double> out(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i)
    out[static_cast<size_t>(i)] =
        start + (stop - start) * i / (points - 1);
  return out;
}

Analyzer::~Analyzer() = default;

Analyzer::Analyzer(Circuit& ckt, AnalysisOptions opts)
    : ckt_(ckt), opts_(opts) {
  buildLayout();
  if (opts_.forensics) {
    fx_ = std::make_unique<ForensicsRecorder>(opts_.forensicsDepth);
    // Any diag report born from this analyzer names its request.
    if (!opts_.traceId.empty()) fx_->setContext("trace_id", opts_.traceId);
  }
  solver_ = opts_.solver;
  if (solver_ == SolverKind::kAuto && opts_.useSparse)
    solver_ = SolverKind::kSparseLegacy;
  if (solver_ == SolverKind::kAuto)
    solver_ = unknownCount_ > kDenseBackendMaxUnknowns ? SolverKind::kSparse
                                                       : SolverKind::kDense;
  // Priming mutates junction-limiting history (loads run at zero bias),
  // so it happens here — before any solve seeds that history via
  // beginSolve — rather than lazily inside the first Newton iteration.
  if (solver_ == SolverKind::kSparse) primeSparsePattern();
}

void Analyzer::buildLayout() {
  int nextBranch = ckt_.nodeCount();
  int nextState = 0;
  for (const auto& dev : ckt_.devices()) {
    if (dev->branchCount() > 0) {
      dev->assignBranchBase(nextBranch);
      nextBranch += dev->branchCount();
    }
    if (dev->stateCount() > 0) {
      dev->assignStateBase(nextState);
      nextState += dev->stateCount();
    }
    if (dev->isNonlinear())
      nonlinearDevs_.push_back(dev.get());
    else
      linearDevs_.push_back(dev.get());
  }
  unknownCount_ = nextBranch - 1;  // ground excluded
  stateCount_ = nextState;
  state_.assign(static_cast<size_t>(stateCount_), 0.0);
  statePrev_.assign(static_cast<size_t>(stateCount_), 0.0);
  dstatePrev_.assign(static_cast<size_t>(stateCount_), 0.0);
}

void Analyzer::primeSparsePattern() {
  // Run every device through a position recorder twice — once under a DC
  // context, once under a transient one (c0 = 1) — so conditional stamps
  // (capacitor companions, inductor geq, junction charge branches) all
  // land in the pattern before the first assemble. Scratch state vectors
  // keep the real charge history untouched.
  std::vector<std::pair<int, int>> entries;
  PatternStamper ps(entries);
  std::vector<double> zeros(static_cast<size_t>(unknownCount_), 0.0);
  Solution sx(&zeros);
  std::vector<double> st(static_cast<size_t>(stateCount_), 0.0);
  std::vector<double> stPrev(static_cast<size_t>(stateCount_), 0.0);
  std::vector<double> dstPrev(static_cast<size_t>(stateCount_), 0.0);
  LoadContext ctx;
  ctx.state = &st;
  ctx.prevState = &stPrev;
  ctx.prevDstate = &dstPrev;
  ctx.mode = AnalysisMode::kDcOp;
  ctx.c0 = 0.0;
  for (const auto& dev : ckt_.devices()) dev->load(ps, sx, ctx);
  ctx.mode = AnalysisMode::kTransient;
  ctx.c0 = 1.0;
  for (const auto& dev : ckt_.devices()) dev->load(ps, sx, ctx);
  pat_.build(unknownCount_, std::move(entries));
  patternPrimed_ = true;
  staticValid_ = false;
}

void Analyzer::growSparsePattern(CsrPattern& pat,
                                 std::vector<std::pair<int, int>>& pending) {
  // A device stamped a position the priming pass did not predict: fold
  // it in and restamp. Counted so the regression suite can assert the
  // steady state performs none.
  stats_.sparsePatternInserts += static_cast<long>(pat.grow(pending));
  pending.clear();
  staticValid_ = false;
}

void Analyzer::prepareSparseStatic(const Solution& x,
                                   const LoadContext& ctx) {
  if (staticValid_ && staticEpoch_ == pat_.epoch() && staticC0_ == ctx.c0)
    return;
  for (;;) {
    staticVals_.assign(pat_.nonzeros(), 0.0);
    scratchRhs_.assign(static_cast<size_t>(unknownCount_), 0.0);
    pending_.clear();
    CsrStamper cs(pat_, staticVals_, scratchRhs_, &pending_);
    for (Device* dev : linearDevs_) dev->load(cs, x, ctx);
    if (pending_.empty()) break;
    growSparsePattern(pat_, pending_);
  }
  staticValid_ = true;
  staticEpoch_ = pat_.epoch();
  staticC0_ = ctx.c0;
}

bool Analyzer::sparseIterate(const Solution& x, const LoadContext& ctx,
                             std::vector<double>& xNew) {
  ++stats_.matrixSolves;
  const bool timed = obs::metricsEnabled();
  const double tAssemble = timed ? nowNs() : 0.0;
  double deviceNs = 0.0;
  for (;;) {
    // Static baseline (linear-device matrix stamps) lands via memcpy;
    // linear devices then contribute only their candidate-dependent RHS
    // (and record charge states), and nonlinear devices restamp in full
    // through their slot memos.
    prepareSparseStatic(x, ctx);
    vals_ = staticVals_;
    rhs_.assign(static_cast<size_t>(unknownCount_), 0.0);
    const double tDevice = timed ? nowNs() : 0.0;
    RhsOnlyStamper rhsOnly(rhs_);
    for (Device* dev : linearDevs_) dev->load(rhsOnly, x, ctx);
    CsrStamper cs(pat_, vals_, rhs_, &pending_);
    for (Device* dev : nonlinearDevs_) dev->load(cs, x, ctx);
    if (timed) deviceNs += nowNs() - tDevice;
    if (pending_.empty()) break;
    growSparsePattern(pat_, pending_);
  }
  const double tFactor = timed ? nowNs() : 0.0;
  if (!lu_.analyzedFor(pat_.epoch())) lu_.analyze(pat_);
  switch (lu_.factor(vals_)) {
    case SparseLU<double>::FactorOutcome::kSingular:
      lastSingularUnknown_ = lu_.lastSingularColumn() >= 0
                                 ? lu_.lastSingularColumn() + 1
                                 : 0;
      return false;
    case SparseLU<double>::FactorOutcome::kFullFactor:
      ++stats_.sparseFullFactors;
      break;
    case SparseLU<double>::FactorOutcome::kRefactor:
      ++stats_.sparseRefactors;
      break;
  }
  const double tSolve = timed ? nowNs() : 0.0;
  lu_.solve(rhs_, xNew);
  if (timed) {
    static const obs::Histogram hAssemble =
        obs::histogram("spice.sparse.assemble_ns");
    static const obs::Histogram hFactor =
        obs::histogram("spice.sparse.factor_ns");
    static const obs::Histogram hSolve =
        obs::histogram("spice.sparse.solve_ns");
    static const obs::Histogram hDevice =
        obs::histogram("spice.newton.device_eval_ns");
    const double tEnd = nowNs();
    hAssemble.observe(tFactor - tAssemble);
    hFactor.observe(tSolve - tFactor);
    hSolve.observe(tEnd - tSolve);
    hDevice.observe(deviceNs);
  }
  return true;
}

void Analyzer::assemble(Stamper& s, const Solution& x,
                        const LoadContext& ctx) {
  // Runs once per Newton iteration: keep the disabled path at a single
  // relaxed load, without span-object setup.
  if (!obs::tracingEnabled()) {
    for (const auto& dev : ckt_.devices()) dev->load(s, x, ctx);
    return;
  }
  obs::ScopedSpan span("spice.assemble", "spice");
  for (const auto& dev : ckt_.devices()) dev->load(s, x, ctx);
}

bool Analyzer::solveLinear(std::vector<double>& x) {
  ++stats_.matrixSolves;
  if (solver_ == SolverKind::kSparseLegacy) {
    std::vector<double> b = rhs_;
    return as_.solveInPlace(b, x);  // no per-column attribution available
  }
  std::vector<int> perm;
  int singularCol = -1;
  if (!a_.luFactor(perm, &singularCol)) {
    lastSingularUnknown_ = singularCol >= 0 ? singularCol + 1 : 0;
    return false;
  }
  a_.luSolve(perm, rhs_, x);
  return true;
}

void Analyzer::resetStats() {
  stats_ = AnalyzerStats{};
  published_ = AnalyzerStats{};
  lastSingularUnknown_ = 0;
  if (fx_) fx_->reset();
}

void Analyzer::throwConvergence(const char* stage, double stageValue,
                                const std::string& message) {
  // Single chokepoint for every convergence failure in the analyzer —
  // one log line per failure, carrying the stage and the correlation id
  // when the solve was daemon-born.
  static const obs::LogSite sFail =
      obs::logSite(obs::LogLevel::kWarn, "spice.convergence_failure", 50);
  if (sFail) {
    obs::LogLine line = sFail.log("analysis did not converge");
    line.str("analysis", analysisLabel_)
        .str("stage", stage)
        .num("stageValue", stageValue);
    if (!opts_.traceId.empty()) line.str("request_id", opts_.traceId);
  }
  if (!fx_) throw ConvergenceError(message);
  const DiagReport report =
      buildDiagReport(ckt_, *fx_, analysisLabel_, stage, stageValue, message,
                      unknownCount_, lastSingularUnknown_);
  if (obs::metricsEnabled()) {
    static const obs::Counter cReports = obs::counter("diag.reports");
    cReports.add(1);
  }
  throw ConvergenceError(
      message, std::make_shared<const std::string>(report.toJson().dump(2)));
}

void Analyzer::publishStats(const char* analysis) {
  const AnalyzerStats delta{
      stats_.newtonIterations - published_.newtonIterations,
      stats_.matrixSolves - published_.matrixSolves,
      stats_.acceptedSteps - published_.acceptedSteps,
      stats_.rejectedSteps - published_.rejectedSteps,
      stats_.gminSteps - published_.gminSteps,
      stats_.sourceSteps - published_.sourceSteps,
      stats_.sparsePatternInserts - published_.sparsePatternInserts,
      stats_.sparseFullFactors - published_.sparseFullFactors,
      stats_.sparseRefactors - published_.sparseRefactors,
  };
  published_ = stats_;
  if (!obs::metricsEnabled()) return;
  static const obs::Counter cNewton =
      obs::counter("spice.newton_iterations");
  static const obs::Counter cSolves = obs::counter("spice.matrix_solves");
  static const obs::Counter cAccepted =
      obs::counter("spice.transient.steps_accepted");
  static const obs::Counter cRejected =
      obs::counter("spice.transient.steps_rejected");
  static const obs::Counter cGmin = obs::counter("spice.gmin_steps");
  static const obs::Counter cSource = obs::counter("spice.source_steps");
  static const obs::Counter cInserts =
      obs::counter("spice.sparse.pattern_inserts");
  static const obs::Counter cFull =
      obs::counter("spice.sparse.full_factors");
  static const obs::Counter cRefactor =
      obs::counter("spice.sparse.refactors");
  cNewton.add(delta.newtonIterations);
  cSolves.add(delta.matrixSolves);
  cAccepted.add(delta.acceptedSteps);
  cRejected.add(delta.rejectedSteps);
  cGmin.add(delta.gminSteps);
  cSource.add(delta.sourceSteps);
  cInserts.add(delta.sparsePatternInserts);
  cFull.add(delta.sparseFullFactors);
  cRefactor.add(delta.sparseRefactors);
  // Entry points are cold; a registry lookup per call is fine here. A
  // full registry must never fail the analysis itself.
  try {
    obs::counter(std::string("spice.analyses.") + analysis).add(1);
  } catch (const Error&) {
  }
}

Analyzer::NewtonOutcome Analyzer::newton(std::vector<double>& x,
                                         LoadContext& ctx) {
  // Runs once per solve (hundreds of times per transient): one combined
  // check before any span/handle setup keeps the disabled path flat.
  if (!obs::tracingEnabled() && !obs::metricsEnabled())
    return newtonInner(x, ctx);
  obs::ScopedSpan span("spice.newton", "spice");
  const bool timed = obs::metricsEnabled();
  const double tStart = timed ? nowNs() : 0.0;
  const NewtonOutcome out = newtonInner(x, ctx);
  span.note("iters", out.iterations);
  span.note("converged", out.converged ? 1.0 : 0.0);
  static const obs::Histogram hIters =
      obs::histogram("spice.newton.iterations");
  hIters.observe(out.iterations);
  if (timed) {
    // Whole-solve wall time: the denominator that makes the
    // device_eval_ns histogram a *share* (ahfic_client watch, /debug).
    static const obs::Histogram hWall =
        obs::histogram("spice.newton.wall_ns");
    hWall.observe(nowNs() - tStart);
  }
  return out;
}

Analyzer::NewtonOutcome Analyzer::newtonInner(std::vector<double>& x,
                                              LoadContext& ctx) {
  NewtonOutcome out;
  const int n = unknownCount_;
  std::vector<double> xNew(static_cast<size_t>(n), 0.0);

  {
    Solution sx(&x);
    for (const auto& dev : ckt_.devices()) dev->beginSolve(sx);
  }

  for (int iter = 0; iter < opts_.maxNewtonIters; ++iter) {
    ++stats_.newtonIterations;
    out.iterations = iter + 1;

    bool anyLimited = false;
    ctx.limited = &anyLimited;
    if (fx_) {
      fx_->limitScratch()->clear();
      ctx.limitLog = fx_->limitScratch();
    }
    Solution sx(&x);
    bool solved;
    if (solver_ == SolverKind::kSparse) {
      solved = sparseIterate(sx, ctx, xNew);
    } else {
      if (solver_ == SolverKind::kSparseLegacy) {
        if (as_.size() != n) as_ = SparseMatrix<double>(n);
        as_.setZero();
      } else {
        if (a_.rows() != n) a_ = DenseMatrix<double>(n, n);
        a_.setZero();
      }
      rhs_.assign(static_cast<size_t>(n), 0.0);
      // Device-eval attribution on the dense/legacy backends: assemble
      // here *is* the device loads (the sparse backend times its loads
      // inside sparseIterate, excluding the memcpy of the static part).
      const bool timed = obs::metricsEnabled();
      const double tDevice = timed ? nowNs() : 0.0;
      if (solver_ == SolverKind::kSparseLegacy) {
        SparseStamper st(as_, rhs_);
        assemble(st, sx, ctx);
      } else {
        DenseStamper st(a_, rhs_);
        assemble(st, sx, ctx);
      }
      if (timed) {
        static const obs::Histogram hDevice =
            obs::histogram("spice.newton.device_eval_ns");
        hDevice.observe(nowNs() - tDevice);
      }
      solved = solveLinear(xNew);
    }
    ctx.limited = nullptr;
    ctx.limitLog = nullptr;

    if (!solved) {
      // Singular system: record the failing pivot's unknown so the
      // report can name the floating node, then give up on this solve.
      if (fx_)
        fx_->recordIteration(0.0, 0.0, lastSingularUnknown_, anyLimited,
                             /*singular=*/true);
      return out;
    }

    // Convergence: every unknown moved less than its tolerance, and no
    // device had to limit its junction voltage this iteration. The
    // forensics path keeps scanning after the first failure so the
    // worst-offender attribution covers every unknown; the regular path
    // keeps its early exit.
    bool converged = !anyLimited;
    if (fx_ == nullptr) {
      for (int i = 0; i < n; ++i) {
        const double oldV = x[static_cast<size_t>(i)];
        const double newV = xNew[static_cast<size_t>(i)];
        const bool isVoltage = (i + 1) < ckt_.nodeCount();
        const double tol =
            (isVoltage ? opts_.vntol : opts_.abstol) +
            opts_.reltol * std::max(std::fabs(oldV), std::fabs(newV));
        if (std::fabs(newV - oldV) > tol) {
          converged = false;
          break;
        }
      }
    } else {
      double maxDelta = 0.0, worstRatio = 0.0;
      int worstUnknown = 0;
      for (int i = 0; i < n; ++i) {
        const double oldV = x[static_cast<size_t>(i)];
        const double newV = xNew[static_cast<size_t>(i)];
        const bool isVoltage = (i + 1) < ckt_.nodeCount();
        const double tol =
            (isVoltage ? opts_.vntol : opts_.abstol) +
            opts_.reltol * std::max(std::fabs(oldV), std::fabs(newV));
        const double delta = std::fabs(newV - oldV);
        if (delta > tol) converged = false;
        if (delta > maxDelta) maxDelta = delta;
        const double ratio = delta / tol;
        if (ratio > worstRatio) {
          worstRatio = ratio;
          worstUnknown = i + 1;
        }
      }
      fx_->recordIteration(maxDelta, worstRatio, worstUnknown, anyLimited,
                           /*singular=*/false);
    }
    x = xNew;
    if (converged && iter > 0) {
      out.converged = true;
      return out;
    }
    // Linear circuits converge in one iteration; detect by absence of
    // nonlinear devices.
    if (converged && iter == 0 && nonlinearDevs_.empty()) {
      out.converged = true;
      return out;
    }
  }
  return out;
}

std::vector<double> Analyzer::opWithContext(LoadContext& ctx) {
  std::vector<double> x(static_cast<size_t>(unknownCount_), 0.0);
  // The last continuation stage that failed, for the diag report.
  const char* failStage = "newton";
  double failValue = opts_.gmin;

  // 1. Plain Newton from zero.
  ctx.gmin = opts_.gmin;
  ctx.srcScale = 1.0;
  {
    const NewtonOutcome nw = newton(x, ctx);
    if (fx_)
      fx_->recordContinuation("newton", opts_.gmin, nw.converged,
                              nw.iterations);
    if (nw.converged) return x;
  }

  // 2. Gmin stepping: solve with a large junction shunt, then relax it.
  {
    std::vector<double> xg(static_cast<size_t>(unknownCount_), 0.0);
    bool ok = true;
    for (double g = 1e-2; g >= opts_.gmin * 0.99; g /= 10.0) {
      ctx.gmin = g;
      ++stats_.gminSteps;
      const NewtonOutcome nw = newton(xg, ctx);
      if (fx_)
        fx_->recordContinuation("gmin-step", g, nw.converged, nw.iterations);
      if (!nw.converged) {
        failStage = "gmin-step";
        failValue = g;
        ok = false;
        break;
      }
    }
    ctx.gmin = opts_.gmin;
    if (ok) {
      const NewtonOutcome nw = newton(xg, ctx);
      if (fx_)
        fx_->recordContinuation("gmin-step", opts_.gmin, nw.converged,
                                nw.iterations);
      if (nw.converged) return xg;
      failStage = "gmin-step";
      failValue = opts_.gmin;
    }
  }

  // 3. Source stepping: ramp all independent sources from zero.
  {
    std::vector<double> xs(static_cast<size_t>(unknownCount_), 0.0);
    ctx.gmin = opts_.gmin;
    bool ok = true;
    for (double scale : {0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
      ctx.srcScale = scale;
      ++stats_.sourceSteps;
      const NewtonOutcome nw = newton(xs, ctx);
      if (fx_)
        fx_->recordContinuation("source-step", scale, nw.converged,
                                nw.iterations);
      if (!nw.converged) {
        failStage = "source-step";
        failValue = scale;
        ok = false;
        break;
      }
    }
    ctx.srcScale = 1.0;
    if (ok) return xs;
  }

  throwConvergence(failStage, failValue, "operating point did not converge");
}

std::vector<double> Analyzer::op() {
  obs::ScopedSpan span("spice.op", "spice");
  span.annotate("request_id", opts_.traceId);
  resetStats();
  analysisLabel_ = "op";
  LoadContext ctx;
  ctx.mode = AnalysisMode::kDcOp;
  ctx.c0 = 0.0;
  ctx.state = &state_;
  ctx.prevState = &statePrev_;
  ctx.prevDstate = &dstatePrev_;

  std::vector<double> x = opWithContext(ctx);

  // One extra assemble so the recorded charge states match the converged
  // solution (transient starts from these). Only the integrate() side
  // effects matter, so the stamps themselves are discarded — no matrix
  // allocation regardless of backend.
  {
    StateOnlyStamper st;
    Solution sx(&x);
    assemble(st, sx, ctx);
  }
  statePrev_ = state_;
  std::fill(dstatePrev_.begin(), dstatePrev_.end(), 0.0);
  publishStats("op");
  return x;
}

DcSweepResult Analyzer::dcSweep(const std::string& sourceName, double start,
                                double stop, double step) {
  if (step == 0.0 || (stop - start) * step < 0.0)
    throw Error("dcSweep: inconsistent range/step");
  Device* dev = ckt_.findDevice(sourceName);
  if (dev == nullptr)
    throw Error("dcSweep: no source named '" + sourceName + "'");
  auto* vs = dynamic_cast<VSource*>(dev);
  auto* is = dynamic_cast<ISource*>(dev);
  if (vs == nullptr && is == nullptr)
    throw Error("dcSweep: '" + sourceName + "' is not a V or I source");

  obs::ScopedSpan span("spice.dc_sweep", "spice");
  span.annotate("request_id", opts_.traceId);
  resetStats();
  analysisLabel_ = "dc_sweep";
  if (fx_) fx_->setContext("sweepSource", sourceName);
  LoadContext ctx;
  ctx.mode = AnalysisMode::kDcOp;
  ctx.state = &state_;
  ctx.prevState = &statePrev_;
  ctx.prevDstate = &dstatePrev_;

  DcSweepResult result;
  std::vector<double> x(static_cast<size_t>(unknownCount_), 0.0);
  bool first = true;
  const int nPoints =
      static_cast<int>(std::floor((stop - start) / step + 1.5));
  for (int k = 0; k < nPoints; ++k) {
    const double v = start + step * k;
    if (vs != nullptr)
      vs->setWaveform(std::make_unique<DcWaveform>(v));
    else
      is->setWaveform(std::make_unique<DcWaveform>(v));
    if (fx_) fx_->setContext("sweepValue", std::to_string(v));

    if (first) {
      x = opWithContext(ctx);
      first = false;
    } else {
      ctx.gmin = opts_.gmin;
      ctx.srcScale = 1.0;
      if (!newton(x, ctx).converged) {
        // Cold restart with full homotopy at this point.
        x = opWithContext(ctx);
      }
    }
    result.sweep.push_back(v);
    result.values.push_back(x);
  }
  span.note("points", static_cast<double>(result.sweep.size()));
  publishStats("dc_sweep");
  return result;
}

AcResult Analyzer::ac(const std::vector<double>& frequencies) {
  // The internal op() publishes its own slice; acLinear publishes the
  // sweep's. stats() afterwards covers both (one window, no reset
  // between them).
  const std::vector<double> xop = op();
  return acLinear(frequencies, xop, /*freshWindow=*/false);
}

AcResult Analyzer::ac(const std::vector<double>& frequencies,
                      const std::vector<double>& opSolution) {
  return acLinear(frequencies, opSolution, /*freshWindow=*/true);
}

void Analyzer::primeAcSparsePattern(const Solution& op) {
  if (patternAcPrimed_) return;
  // One structural pass at a representative frequency: every AC stamp is
  // either frequency-independent or scales with omega, so the touched
  // positions are the same at any omega > 0.
  std::vector<std::pair<int, int>> entries;
  AcPatternStamper ps(entries);
  for (const auto& dev : ckt_.devices()) dev->loadAc(ps, op, 1.0);
  patAc_.build(unknownCount_, std::move(entries));
  patternAcPrimed_ = true;
}

void Analyzer::acSparseFactor(const Solution& op, double omega,
                              const char* what) {
  primeAcSparsePattern(op);
  for (;;) {
    valsAc_.assign(patAc_.nonzeros(), {0.0, 0.0});
    rhsAc_.assign(static_cast<size_t>(unknownCount_), {0.0, 0.0});
    pendingAc_.clear();
    CsrAcStamper st(patAc_, valsAc_, rhsAc_, &pendingAc_);
    for (const auto& dev : ckt_.devices()) dev->loadAc(st, op, omega);
    if (pendingAc_.empty()) break;
    stats_.sparsePatternInserts += static_cast<long>(patAc_.grow(pendingAc_));
    pendingAc_.clear();
  }
  if (!luAc_.analyzedFor(patAc_.epoch())) luAc_.analyze(patAc_);
  switch (luAc_.factor(valsAc_)) {
    case SparseLU<std::complex<double>>::FactorOutcome::kSingular:
      throw Error(std::string(what) +
                  ": singular system at f = " +
                  std::to_string(omega / (2.0 * 3.14159265358979323846)));
    case SparseLU<std::complex<double>>::FactorOutcome::kFullFactor:
      ++stats_.sparseFullFactors;
      break;
    case SparseLU<std::complex<double>>::FactorOutcome::kRefactor:
      ++stats_.sparseRefactors;
      break;
  }
}

AcResult Analyzer::acLinear(const std::vector<double>& frequencies,
                            const std::vector<double>& opSolution,
                            bool freshWindow) {
  obs::ScopedSpan span("spice.ac", "spice");
  span.annotate("request_id", opts_.traceId);
  span.note("points", static_cast<double>(frequencies.size()));
  if (freshWindow) resetStats();
  analysisLabel_ = "ac";
  AcResult result;
  const int n = unknownCount_;
  Solution sop(&opSolution);
  if (solver_ == SolverKind::kSparse) {
    // Pattern and ordering are computed once; every frequency point is a
    // refactorization + solve against the cached structure.
    for (double f : frequencies) {
      ++stats_.matrixSolves;
      const double omega = 2.0 * 3.14159265358979323846 * f;
      acSparseFactor(sop, omega, "ac");
      std::vector<std::complex<double>> x;
      luAc_.solve(rhsAc_, x);
      result.frequency.push_back(f);
      result.values.push_back(std::move(x));
    }
    publishStats("ac");
    return result;
  }
  // Dense path: matrix and RHS are allocated once and reused across the
  // sweep (allocation per point used to dominate small sweeps).
  DenseMatrix<std::complex<double>> a(n, n);
  std::vector<std::complex<double>> rhs;
  for (double f : frequencies) {
    ++stats_.matrixSolves;
    const double omega = 2.0 * 3.14159265358979323846 * f;
    a.setZero();
    rhs.assign(static_cast<size_t>(n), {0.0, 0.0});
    DenseAcStamper st(a, rhs);
    for (const auto& dev : ckt_.devices()) dev->loadAc(st, sop, omega);

    std::vector<int> perm;
    if (!a.luFactor(perm))
      throw Error("ac: singular system at f = " + std::to_string(f));
    std::vector<std::complex<double>> x;
    a.luSolve(perm, rhs, x);
    result.frequency.push_back(f);
    result.values.push_back(std::move(x));
  }
  publishStats("ac");
  return result;
}

double NoiseResult::totalVariance() const {
  double v = 0.0;
  for (size_t k = 1; k < frequency.size(); ++k)
    v += 0.5 * (outputPsd[k] + outputPsd[k - 1]) *
         (frequency[k] - frequency[k - 1]);
  return v;
}

double NoiseResult::rmsVoltage() const { return std::sqrt(totalVariance()); }

NoiseResult Analyzer::noise(const std::vector<double>& frequencies,
                            const std::string& outputNode,
                            const std::vector<double>& opSolution) {
  const int out = ckt_.findNode(outputNode);
  if (out <= 0)
    throw Error("noise: output node '" + outputNode + "' not found");
  if (frequencies.empty()) throw Error("noise: empty frequency list");

  obs::ScopedSpan span("spice.noise", "spice");
  span.annotate("request_id", opts_.traceId);
  span.note("points", static_cast<double>(frequencies.size()));
  resetStats();
  analysisLabel_ = "noise";

  Solution sop(&opSolution);
  const double tempK = ckt_.temperatureC() + 273.15;
  std::vector<NoiseSourceDesc> sources;
  for (const auto& dev : ckt_.devices())
    dev->appendNoise(sources, sop, tempK);

  NoiseResult result;
  result.frequency = frequencies;
  result.outputPsd.assign(frequencies.size(), 0.0);
  std::vector<double> perSourcePsd(sources.size());
  std::vector<double> perSourceVar(sources.size(), 0.0);
  std::vector<double> prevPerSourcePsd(sources.size(), 0.0);

  const int n = unknownCount_;
  const bool sparse = solver_ == SolverKind::kSparse;
  // Dense scratch is hoisted out of the sweep; on the sparse path the
  // per-frequency factorization reuses the cached pattern and ordering.
  DenseMatrix<std::complex<double>> a(sparse ? 1 : n, sparse ? 1 : n);
  std::vector<std::complex<double>> dummyRhs, rhs(static_cast<size_t>(n)),
      x(static_cast<size_t>(n));
  std::vector<int> perm;
  for (size_t k = 0; k < frequencies.size(); ++k) {
    ++stats_.matrixSolves;
    const double f = frequencies[k];
    const double omega = 2.0 * 3.14159265358979323846 * f;
    if (sparse) {
      acSparseFactor(sop, omega, "noise");
    } else {
      a.setZero();
      dummyRhs.assign(static_cast<size_t>(n), {0.0, 0.0});
      DenseAcStamper st(a, dummyRhs);
      for (const auto& dev : ckt_.devices()) dev->loadAc(st, sop, omega);
      if (!a.luFactor(perm))
        throw Error("noise: singular system at f = " + std::to_string(f));
    }

    // Transfer impedance from each source to the output, reusing the
    // factorisation.
    for (size_t si = 0; si < sources.size(); ++si) {
      const auto& src = sources[si];
      std::fill(rhs.begin(), rhs.end(), std::complex<double>{0.0, 0.0});
      if (src.a > 0) rhs[static_cast<size_t>(src.a - 1)] += 1.0;
      if (src.b > 0) rhs[static_cast<size_t>(src.b - 1)] -= 1.0;
      if (sparse)
        luAc_.solve(rhs, x);
      else
        a.luSolve(perm, rhs, x);
      const double h2 = std::norm(x[static_cast<size_t>(out - 1)]);
      const double psd = h2 * src.psdAt(f);
      perSourcePsd[si] = psd;
      result.outputPsd[k] += psd;
    }
    if (k > 0) {
      const double df = frequencies[k] - frequencies[k - 1];
      for (size_t si = 0; si < sources.size(); ++si)
        perSourceVar[si] +=
            0.5 * (perSourcePsd[si] + prevPerSourcePsd[si]) * df;
    }
    prevPerSourcePsd = perSourcePsd;
  }
  // Single-point analyses cannot integrate; rank by spot PSD instead
  // (reported "variance" is then PSD * 1 Hz).
  if (frequencies.size() == 1) perSourceVar = perSourcePsd;

  for (size_t si = 0; si < sources.size(); ++si)
    result.contributions.push_back(
        {sources[si].label, perSourceVar[si]});
  std::sort(result.contributions.begin(), result.contributions.end(),
            [](const NoiseContribution& x, const NoiseContribution& y) {
              return x.variance > y.variance;
            });
  publishStats("noise");
  return result;
}

TranResult Analyzer::transient(double tstop, double maxStep,
                               double recordFrom) {
  if (tstop <= 0.0 || maxStep <= 0.0)
    throw Error("transient: tstop and maxStep must be > 0");
  obs::ScopedSpan span("spice.transient", "spice");
  span.annotate("request_id", opts_.traceId);

  // Initial condition: DC operating point (records charge states). op()
  // resets the stats window, so the whole transient — OP included — is
  // counted as one call. (It also labels the window "op": a failure
  // during the initial OP genuinely is an OP failure.)
  std::vector<double> x = op();
  analysisLabel_ = "transient";

  LoadContext ctx;
  ctx.mode = AnalysisMode::kTransient;
  ctx.state = &state_;
  ctx.prevState = &statePrev_;
  ctx.prevDstate = &dstatePrev_;
  ctx.gmin = opts_.gmin;

  const bool trap = (opts_.method == IntegMethod::kTrapezoidal);

  TranResult result;
  if (recordFrom <= 0.0) {
    result.time.push_back(0.0);
    result.values.push_back(x);
  }

  double t = 0.0;
  double h = maxStep * opts_.tranInitialStepFraction;
  const double hMin = maxStep * 1e-9;
  bool firstStep = true;

  std::vector<double> xPrev = x;
  std::vector<double> dstate(static_cast<size_t>(stateCount_), 0.0);

  while (t < tstop - 1e-18) {
    h = std::min(h, tstop - t);
    bool accepted = false;
    int retries = 0;
    while (!accepted) {
      const double tNew = t + h;
      // First step is backward Euler (no dq/dt history yet beyond the
      // OP's zero, which BE does not need). Later steps use damped
      // trapezoidal: d = 0 is pure trap, d = 1 is BE.
      const bool useTrap = trap && !firstStep;
      const double d = std::clamp(opts_.trapDamping, 0.0, 1.0);
      ctx.time = tNew;
      ctx.c0 = (useTrap ? 2.0 / (1.0 + d) : 1.0) / h;
      ctx.trapFactor = useTrap ? (1.0 - d) / (1.0 + d) : 0.0;

      std::vector<double> xTry = x;  // predictor: previous value
      const NewtonOutcome nw = newton(xTry, ctx);
      if (fx_) fx_->recordStep(tNew, h, nw.converged, nw.iterations);
      if (nw.converged) {
        accepted = true;
        ++stats_.acceptedSteps;
        // Differentiate states under the accepted rule.
        for (int i = 0; i < stateCount_; ++i) {
          const auto si = static_cast<size_t>(i);
          dstate[si] = ctx.c0 * (state_[si] - statePrev_[si]) -
                       ctx.trapFactor * dstatePrev_[si];
        }
        statePrev_ = state_;
        dstatePrev_ = dstate;
        xPrev = x;
        x = xTry;
        t = tNew;
        firstStep = false;
        if (t >= recordFrom) {
          result.time.push_back(t);
          result.values.push_back(x);
        }
        // Step growth on easy convergence.
        if (nw.iterations <= 5)
          h = std::min(h * 1.4, maxStep);
        else if (nw.iterations > opts_.maxNewtonIters / 2)
          h = std::max(h * 0.6, hMin);
      } else {
        ++stats_.rejectedSteps;
        h *= 0.5;
        if (h < hMin || ++retries > opts_.maxStepRetries)
          throwConvergence(
              "transient-step", t,
              "transient: step rejected below minimum step at t = " +
                  std::to_string(t));
      }
    }
  }
  span.note("accepted", static_cast<double>(stats_.acceptedSteps));
  span.note("rejected", static_cast<double>(stats_.rejectedSteps));
  publishStats("transient");
  return result;
}

}  // namespace ahfic::spice
