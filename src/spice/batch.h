#pragma once
// ReplicaBatch: batched DC operating points across a block of
// Monte-Carlo replica circuits sharing one topology.
//
// A Monte-Carlo fT sweep solves the same two-transistor bias circuit
// hundreds of times with perturbed model cards. The scalar path pays for
// every solve what only the first deserves: Circuit construction,
// unknown layout, CSR pattern priming, symbolic sparse analysis, slot
// lookups through device memos and per-device virtual dispatch.
// ReplicaBatch performs the structure work ONCE for the whole block and
// keeps only the numbers per replica:
//
//   - one CsrPattern, primed exactly like Analyzer::primeSparsePattern
//     and structurally validated against every replica (a replica whose
//     primed pattern differs is a topology-epoch mismatch and is
//     rejected at construction);
//   - one symbolic analysis, shared into every replica's SparseLU via
//     adoptAnalysis(); numeric factorizations stay per replica, with
//     the existing pivot/fill replay (full factor on the first
//     iteration of each op, refactor replay after — the same sequence a
//     fresh Analyzer produces, so results are bit-identical);
//   - structure-of-arrays parameter tables for the nonlinear devices
//     (Gummel-Poon BJT and junction diode), evaluated by replica-strided
//     loops over AHFIC_RESTRICT spans calling the same spice/gummel.h
//     inlines as the scalar devices, then scattered into the value array
//     through slots resolved once from the shared pattern (the batch
//     analogue of the per-device StampMemo) in the devices' exact
//     load() stamp order.
//
// Newton runs in masked lockstep: each iteration evaluates all active
// replicas (phase 1, SoA) and then assembles/factors/solves each one
// (phase 2), with per-replica convergence decisions that mirror
// Analyzer::newtonInner exactly. A replica whose factorization goes
// singular or that exhausts maxNewtonIters falls back to a full
// Analyzer::op() on its own circuit (plain Newton, then gmin stepping,
// then source stepping) — again the exact scalar path.
//
// Bit-identity contract: for identical circuits and options, every
// solution ReplicaBatch::op() returns is bit-identical to what a fresh
// `Analyzer(ckt, opts)` with `opts.solver = SolverKind::kSparse`
// returns from op() on that replica's circuit. The equivalence suite
// (tests/spice_batch_test.cpp) enforces this with hex-float compares.
//
// Limits (checked at construction): nonlinear devices must be Bjt or
// Diode; every replica must share the topology of replica 0;
// AnalysisOptions::forensics is not supported.

#include <memory>
#include <vector>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/csr.h"
#include "spice/sparse_lu.h"

namespace ahfic::spice {

/// Counters for one ReplicaBatch, accumulated across op() calls; the
/// same numbers are published to the metrics registry as
/// `spice.batch.*`.
struct BatchStats {
  long ops = 0;               ///< batched op() calls
  long newtonIterations = 0;  ///< summed over replicas
  long matrixSolves = 0;      ///< factor+solve passes, summed
  long fullFactors = 0;       ///< pivoting factorizations
  long refactors = 0;         ///< pivot/fill replays
  long pivotCollapses = 0;    ///< replays that collapsed to full factor
  long fallbacks = 0;         ///< replicas re-solved via Analyzer::op()
  long patternInserts = 0;    ///< always 0 unless priming missed a stamp
};

/// Batched DC operating-point engine over replica circuits. Takes
/// ownership of the circuits; like Analyzer, do not add or remove
/// devices afterwards.
class ReplicaBatch {
 public:
  struct Options {
    AnalysisOptions analysis;  ///< tolerances; solver is forced to kSparse
    /// Ablation knob: discard the recorded pivot/fill sequence before
    /// every factorization so each Newton iteration pays a full
    /// pivoting factor. Timing-only — pivots may differ from the
    /// replayed sequence, so no bit-identity claim is made with this on.
    bool forceFullFactor = false;
  };

  ReplicaBatch(std::vector<std::unique_ptr<Circuit>> replicas, Options opts);
  explicit ReplicaBatch(std::vector<std::unique_ptr<Circuit>> replicas)
      : ReplicaBatch(std::move(replicas), Options()) {}
  ~ReplicaBatch();

  int replicaCount() const { return static_cast<int>(circuits_.size()); }
  int unknownCount() const { return unknownCount_; }
  Circuit& circuit(int r) { return *circuits_[static_cast<size_t>(r)]; }
  const Circuit& circuit(int r) const {
    return *circuits_[static_cast<size_t>(r)];
  }

  /// One batched operating point: solves every replica from x = 0 under
  /// the replica's current source values (update sources between calls
  /// with VSource::setWaveform, the dcSweep idiom). x[r] is indexed by
  /// (unknown id - 1), exactly like Analyzer::op(). Throws
  /// ConvergenceError if any replica's fallback fails to converge.
  struct OpResult {
    std::vector<std::vector<double>> x;  ///< [replica][unknown id - 1]
    std::vector<int> iterations;         ///< Newton iterations per replica
    std::vector<char> fellBack;          ///< solved via full Analyzer::op()
  };
  OpResult op();

  const BatchStats& stats() const { return stats_; }
  const Options& options() const { return opts_; }

 private:
  struct BjtPlan;
  struct DiodePlan;

  void buildLayoutFor(Circuit& ckt, std::vector<Device*>& linear,
                      std::vector<Device*>& nonlinear, int& unknowns,
                      int& states) const;
  void primePatternFor(Circuit& ckt, CsrPattern& pat, int unknowns,
                       int states) const;
  void buildPlans();
  void computeStaticBaselines();
  void publishStats();
  /// Slot quad for addConductance(a, b): (a,a), (b,b), (a,b), (b,a);
  /// -1 entries touch ground and are dropped.
  void resolveQuad(int a, int b, int* quad) const;
  int resolveSlot(int row, int col) const;

  Options opts_;
  std::vector<std::unique_ptr<Circuit>> circuits_;
  int unknownCount_ = 0;
  int stateCount_ = 0;

  // Shared structure.
  CsrPattern pat_;
  std::vector<std::unique_ptr<SparseLU<double>>> lu_;  // one per replica
  std::vector<std::vector<double>> staticVals_;        // [replica][slot]
  std::vector<std::vector<Device*>> linearDevs_;       // [replica][device]
  std::vector<std::vector<Device*>> nonlinearDevs_;

  // Nonlinear device plans (SoA parameter tables + slot schedules).
  std::vector<BjtPlan> bjts_;
  std::vector<DiodePlan> diodes_;
  /// Interleave order: for each nonlinear device in circuit order, its
  /// kind (0 = bjt, 1 = diode) and index into the plan vector, so phase
  /// 2 scatters in the exact scalar device order.
  std::vector<std::pair<int, int>> nonlinearOrder_;

  // Per-op scratch, allocated once.
  std::vector<std::vector<double>> x_, xNew_;  // [replica][unknown]
  std::vector<double> vals_, rhs_;
  std::vector<double> stateScratch_, statePrevZero_, dstatePrevZero_;

  BatchStats stats_;
  BatchStats published_;
};

}  // namespace ahfic::spice
