#include "spice/diode.h"

#include <cmath>

#include "spice/circuit.h"
#include "spice/gummel.h"
#include "spice/junction.h"
#include "util/units.h"

namespace ahfic::spice {

Diode::Diode(std::string name, Circuit& ckt, int anode, int cathode,
             const DiodeModel& model, double area, double tempC)
    : Device(std::move(name), {anode, cathode}),
      model_(model),
      area_(area),
      aInt_(anode) {
  // Temperature adjustment and the pnjlim critical voltage live in
  // spice/gummel.h, shared with the batched replica engine.
  const DerivedDiode d = deriveDiode(model, area_, tempC);
  model_ = d.m;
  vte_ = d.vte;
  vcrit_ = d.vcrit;
  if (model_.rs > 0.0) aInt_ = ckt.internalNode(this->name() + "#a");
}

double Diode::junctionVoltage(const Solution& x) const {
  return x.diff(aInt_, nodes()[1]);
}

double Diode::current(const Solution& x) const {
  return junctionIV(junctionVoltage(x), model_.is * area_, vte_).i;
}

void Diode::beginSolve(const Solution& x) {
  vLimited_ = junctionVoltage(x);
}

void Diode::load(Stamper& s, const Solution& x, const LoadContext& ctx) {
  SlotWriter w(s, stampMemo());
  const int a = nodes()[0], c = nodes()[1];
  if (model_.rs > 0.0)
    w.addConductance(a, aInt_, area_ / model_.rs);

  // SPICE-style limiting: evaluate at a damped junction voltage.
  const double vCand = x.diff(aInt_, c);
  const double v = pnjlim(vCand, vLimited_, vte_, vcrit_);
  ctx.noteLimited(v, vCand, this);
  vLimited_ = v;

  auto iv = junctionIV(v, model_.is * area_, vte_);
  const double gd = iv.g + ctx.gmin;
  const double id = iv.i + ctx.gmin * v;
  w.addNonlinearBranch(aInt_, c, gd, id - gd * v);

  // Charge: depletion + diffusion (tt * id).
  const auto dep = depletionQC(v, model_.cj0 * area_, model_.vj, model_.m,
                               model_.fc);
  const double q = dep.q + model_.tt * iv.i;
  const double cap = dep.c + model_.tt * iv.g;
  const double dqdt = ctx.integrate(stateBase(), q);
  if (ctx.c0 != 0.0) {
    const double geq = cap * ctx.c0;
    w.addNonlinearBranch(aInt_, c, geq, dqdt - geq * v);
  }
}

void Diode::appendNoise(std::vector<NoiseSourceDesc>& out,
                        const Solution& op, double tempK) const {
  constexpr double kQ = 1.602176634e-19;
  const double kT4 = 4.0 * 1.380649e-23 * tempK;
  if (model_.rs > 0.0)
    out.push_back({nodes()[0], aInt_, kT4 * area_ / model_.rs, 0.0,
                   name() + " rs thermal"});
  out.push_back({aInt_, nodes()[1], 2.0 * kQ * std::fabs(current(op)), 0.0,
                 name() + " shot"});
}

void Diode::loadAc(AcStamper& s, const Solution& op, double omega) {
  AcSlotWriter w(s, stampMemoAc());
  const int a = nodes()[0], c = nodes()[1];
  if (model_.rs > 0.0)
    w.addAdmittance(a, aInt_, {area_ / model_.rs, 0.0});
  const double v = op.diff(aInt_, c);
  const auto iv = junctionIV(v, model_.is * area_, vte_);
  const auto dep =
      depletionQC(v, model_.cj0 * area_, model_.vj, model_.m, model_.fc);
  const double cap = dep.c + model_.tt * iv.g;
  w.addAdmittance(aInt_, c, {iv.g, omega * cap});
}

}  // namespace ahfic::spice
