#pragma once
// Gummel-Poon bipolar junction transistor (SPICE Q element).
//
// Implements the full SPICE 2G6/3 large-signal model: ideal transport with
// base-charge modulation (Early voltages VAF/VAR, high-injection knees
// IKF/IKR), non-ideal B-E/B-C leakage diodes (ISE/NE, ISC/NC),
// bias-dependent base resistance (RB/IRB/RBM), emitter/collector
// resistances, depletion capacitances (CJE/CJC with XCJC split/CJS) and
// diffusion charges (TF/TR). These are exactly the geometry-dependent
// elements the paper's Sec. 4 generator targets.

#include "spice/device.h"
#include "spice/gummel.h"
#include "spice/models.h"

namespace ahfic::spice {

class Circuit;

/// Small-signal operating-point summary of a BJT, used for fT extraction
/// and for the top-down characterisation flow.
struct BjtOpInfo {
  double vbe = 0.0;  ///< internal B-E voltage [V]
  double vbc = 0.0;  ///< internal B-C voltage [V]
  double ic = 0.0;   ///< collector terminal current [A]
  double ib = 0.0;   ///< base terminal current [A]
  double gm = 0.0;   ///< transconductance d ic / d vbe [S]
  double gpi = 0.0;  ///< input conductance d ib / d vbe [S]
  double gmu = 0.0;  ///< feedback conductance d ib / d vbc [S]
  double go = 0.0;   ///< output conductance (Early) [S]
  double cpi = 0.0;  ///< B-E capacitance (depletion + diffusion) [F]
  double cmu = 0.0;  ///< B-C capacitance (total) [F]
  double ccs = 0.0;  ///< collector-substrate capacitance [F]
  double rbEff = 0.0;  ///< bias-dependent base resistance [ohm]
  double qb = 1.0;   ///< normalised base charge
  /// Analytic unity-current-gain frequency gm / (2*pi*(cpi + cmu)) [Hz].
  double ft() const;
};

/// Gummel-Poon BJT. Node order: collector, base, emitter, substrate.
class Bjt final : public Device {
 public:
  /// Creates the transistor; internal collector/base/emitter nodes are
  /// allocated in `ckt` when the model's rc/rb/re are non-zero. `area`
  /// applies SPICE area-factor scaling (is, ise, isc, ikf, ikr, irb, cje,
  /// cjc, cjs scaled up; rb, rbm, re, rc scaled down) — the baseline
  /// behaviour the paper argues is insufficient.
  Bjt(std::string name, Circuit& ckt, int c, int b, int e,
      const BjtModel& model, double area = 1.0, int substrate = 0,
      double tempC = 27.0);

  int stateCount() const override { return 4; }  // qbe, qbc, qbx, qcs
  bool isNonlinear() const override { return true; }

  void beginSolve(const Solution& x) override;
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;
  void appendNoise(std::vector<NoiseSourceDesc>& out, const Solution& op,
                   double tempK) const override;

  /// Small-signal summary at the operating point `op`.
  BjtOpInfo opInfo(const Solution& op) const;

  const BjtModel& model() const { return model_; }
  /// Effective (area-scaled) model actually simulated.
  const BjtModel& scaledModel() const { return m_; }

  int internalCollector() const { return ci_; }
  int internalBase() const { return bi_; }
  int internalEmitter() const { return ei_; }
  int substrateNode() const { return sub_; }

  /// Derived constants used by the batched replica engine to mirror this
  /// device's arithmetic exactly (see spice/batch.h).
  double polarity() const { return pol_; }
  double vt() const { return vt_; }
  double vcritE() const { return vcritE_; }
  double vcritC() const { return vcritC_; }

 private:
  // The model equations live in spice/gummel.h so the batched replica
  // engine evaluates the exact same inline functions.
  using Eval = GummelPoonEval;
  using Charges = GummelPoonCharges;
  Eval evaluate(double vbe, double vbc, double gmin) const {
    return gummelEvaluate(m_, vt_, vbe, vbc, gmin);
  }
  Charges charges(double vbe, double vbc, double vcs, const Eval& e) const {
    return gummelCharges(m_, vbe, vbc, vcs, e);
  }

  BjtModel model_;  ///< as given
  BjtModel m_;      ///< area-scaled copy used in evaluation
  double area_;
  double pol_;      ///< +1 NPN, -1 PNP
  double vt_;
  double vcritE_, vcritC_;
  int ci_, bi_, ei_, sub_;
  double vbeLimited_ = 0.0, vbcLimited_ = 0.0;  ///< Newton limiting history
};

}  // namespace ahfic::spice
