#pragma once
// Gummel-Poon bipolar junction transistor (SPICE Q element).
//
// Implements the full SPICE 2G6/3 large-signal model: ideal transport with
// base-charge modulation (Early voltages VAF/VAR, high-injection knees
// IKF/IKR), non-ideal B-E/B-C leakage diodes (ISE/NE, ISC/NC),
// bias-dependent base resistance (RB/IRB/RBM), emitter/collector
// resistances, depletion capacitances (CJE/CJC with XCJC split/CJS) and
// diffusion charges (TF/TR). These are exactly the geometry-dependent
// elements the paper's Sec. 4 generator targets.

#include "spice/device.h"
#include "spice/models.h"

namespace ahfic::spice {

class Circuit;

/// Small-signal operating-point summary of a BJT, used for fT extraction
/// and for the top-down characterisation flow.
struct BjtOpInfo {
  double vbe = 0.0;  ///< internal B-E voltage [V]
  double vbc = 0.0;  ///< internal B-C voltage [V]
  double ic = 0.0;   ///< collector terminal current [A]
  double ib = 0.0;   ///< base terminal current [A]
  double gm = 0.0;   ///< transconductance d ic / d vbe [S]
  double gpi = 0.0;  ///< input conductance d ib / d vbe [S]
  double gmu = 0.0;  ///< feedback conductance d ib / d vbc [S]
  double go = 0.0;   ///< output conductance (Early) [S]
  double cpi = 0.0;  ///< B-E capacitance (depletion + diffusion) [F]
  double cmu = 0.0;  ///< B-C capacitance (total) [F]
  double ccs = 0.0;  ///< collector-substrate capacitance [F]
  double rbEff = 0.0;  ///< bias-dependent base resistance [ohm]
  double qb = 1.0;   ///< normalised base charge
  /// Analytic unity-current-gain frequency gm / (2*pi*(cpi + cmu)) [Hz].
  double ft() const;
};

/// Gummel-Poon BJT. Node order: collector, base, emitter, substrate.
class Bjt final : public Device {
 public:
  /// Creates the transistor; internal collector/base/emitter nodes are
  /// allocated in `ckt` when the model's rc/rb/re are non-zero. `area`
  /// applies SPICE area-factor scaling (is, ise, isc, ikf, ikr, irb, cje,
  /// cjc, cjs scaled up; rb, rbm, re, rc scaled down) — the baseline
  /// behaviour the paper argues is insufficient.
  Bjt(std::string name, Circuit& ckt, int c, int b, int e,
      const BjtModel& model, double area = 1.0, int substrate = 0,
      double tempC = 27.0);

  int stateCount() const override { return 4; }  // qbe, qbc, qbx, qcs
  bool isNonlinear() const override { return true; }

  void beginSolve(const Solution& x) override;
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;
  void appendNoise(std::vector<NoiseSourceDesc>& out, const Solution& op,
                   double tempK) const override;

  /// Small-signal summary at the operating point `op`.
  BjtOpInfo opInfo(const Solution& op) const;

  const BjtModel& model() const { return model_; }
  /// Effective (area-scaled) model actually simulated.
  const BjtModel& scaledModel() const { return m_; }

  int internalCollector() const { return ci_; }
  int internalBase() const { return bi_; }
  int internalEmitter() const { return ei_; }

 private:
  /// Large-signal evaluation at given junction voltages.
  struct Eval {
    double ibe1, gbe1;  ///< ideal B-E diode current / conductance
    double ibe2, gbe2;  ///< leakage B-E
    double ibc1, gbc1;  ///< ideal B-C
    double ibc2, gbc2;  ///< leakage B-C
    double qb;          ///< normalised base charge
    double dqbDvbe, dqbDvbc;
    double icc;         ///< transport current (collector -> emitter)
    double gmf, gmr;    ///< d icc / d vbe, d icc / d vbc
    double ibTotal;     ///< total base current
    double rbEff;       ///< bias-dependent base resistance
  };
  Eval evaluate(double vbe, double vbc, double gmin) const;

  /// Charges and small-signal capacitances at given junction voltages.
  struct Charges {
    double qbe, cbe;  ///< B-E: depletion + TF diffusion
    double qbc, cbc;  ///< internal B-C (xcjc part + TR diffusion)
    double qbx, cbx;  ///< external B-C ((1 - xcjc) part)
    double qcs, ccs;  ///< collector-substrate depletion
  };
  Charges charges(double vbe, double vbc, double vcs, const Eval& e) const;

  BjtModel model_;  ///< as given
  BjtModel m_;      ///< area-scaled copy used in evaluation
  double area_;
  double pol_;      ///< +1 NPN, -1 PNP
  double vt_;
  double vcritE_, vcritC_;
  int ci_, bi_, ei_, sub_;
  double vbeLimited_ = 0.0, vbcLimited_ = 0.0;  ///< Newton limiting history
};

}  // namespace ahfic::spice
