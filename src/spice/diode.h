#pragma once
// Junction diode (SPICE D element).

#include "spice/device.h"
#include "spice/models.h"

namespace ahfic::spice {

class Circuit;

/// Junction diode from anode to cathode. When the model has rs > 0 an
/// internal anode node is created. Carries one charge state (depletion +
/// diffusion).
class Diode final : public Device {
 public:
  /// `area` scales is/cj0 and divides rs, as in SPICE.
  Diode(std::string name, Circuit& ckt, int anode, int cathode,
        const DiodeModel& model, double area = 1.0, double tempC = 27.0);

  int stateCount() const override { return 1; }
  bool isNonlinear() const override { return true; }

  void beginSolve(const Solution& x) override;
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;
  void appendNoise(std::vector<NoiseSourceDesc>& out, const Solution& op,
                   double tempK) const override;

  /// Junction voltage (internal anode to cathode) at solution `x`.
  double junctionVoltage(const Solution& x) const;
  /// Diode current at solution `x` (through the junction).
  double current(const Solution& x) const;

  /// Derived constants used by the batched replica engine to mirror this
  /// device's arithmetic exactly (see spice/batch.h).
  const DiodeModel& scaledModel() const { return model_; }
  double area() const { return area_; }
  double vte() const { return vte_; }
  double vcrit() const { return vcrit_; }
  int internalAnode() const { return aInt_; }

 private:
  DiodeModel model_;
  double area_;
  double vte_;    ///< n * Vt
  double vcrit_;
  int aInt_;      ///< internal anode (== anode when rs == 0)
  double vLimited_ = 0.0;  ///< limiting history across Newton iterations
};

}  // namespace ahfic::spice
