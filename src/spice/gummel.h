#pragma once
// Shared Gummel-Poon / junction-diode large-signal math.
//
// The scalar Bjt/Diode devices (bjt.cpp, diode.cpp) and the batched
// replica engine (batch.cpp) evaluate the SAME inline functions below, so
// a batched Monte-Carlo replica is bit-identical to the scalar device it
// mirrors — there is exactly one copy of the model equations. Everything
// here is pure math on a model card: no Circuit, no Stamper, no state.
//
// deriveGummelPoon()/deriveDiode() reproduce the per-instance derivation
// the device constructors perform (area factor, RBM default, temperature
// adjustment, critical voltages); the batch engine uses them to build its
// structure-of-arrays parameter tables without constructing devices.

#include <algorithm>
#include <cmath>

#include "spice/junction.h"
#include "spice/models.h"
#include "util/units.h"

namespace ahfic::spice {

/// Large-signal Gummel-Poon evaluation at given junction voltages.
struct GummelPoonEval {
  double ibe1, gbe1;  ///< ideal B-E diode current / conductance
  double ibe2, gbe2;  ///< leakage B-E
  double ibc1, gbc1;  ///< ideal B-C
  double ibc2, gbc2;  ///< leakage B-C
  double qb;          ///< normalised base charge
  double dqbDvbe, dqbDvbc;
  double icc;         ///< transport current (collector -> emitter)
  double gmf, gmr;    ///< d icc / d vbe, d icc / d vbc
  double ibTotal;     ///< total base current
  double rbEff;       ///< bias-dependent base resistance
};

/// Charges and small-signal capacitances at given junction voltages.
struct GummelPoonCharges {
  double qbe, cbe;  ///< B-E: depletion + TF diffusion
  double qbc, cbc;  ///< internal B-C (xcjc part + TR diffusion)
  double qbx, cbx;  ///< external B-C ((1 - xcjc) part)
  double qcs, ccs;  ///< collector-substrate depletion
};

/// Applies the SPICE area factor to a model card: currents and
/// capacitances scale up with area, resistances scale down. This is the
/// *baseline* scaling the paper criticises; the bjtgen library generates
/// a per-shape card instead.
inline BjtModel applyBjtAreaFactor(BjtModel m, double area) {
  m.is *= area;
  m.ise *= area;
  m.isc *= area;
  if (m.ikf > 0.0) m.ikf *= area;
  if (m.ikr > 0.0) m.ikr *= area;
  if (m.irb > 0.0) m.irb *= area;
  if (m.itf > 0.0) m.itf *= area;
  m.cje *= area;
  m.cjc *= area;
  m.cjs *= area;
  if (m.rb > 0.0) m.rb /= area;
  if (m.rbm > 0.0) m.rbm /= area;
  if (m.re > 0.0) m.re /= area;
  if (m.rc > 0.0) m.rc /= area;
  return m;
}

/// Per-instance derived constants of a Gummel-Poon transistor: the
/// area-scaled, temperature-adjusted card plus thermal voltage and the
/// pnjlim critical voltages. Exactly what the Bjt constructor computes.
struct DerivedGummelPoon {
  BjtModel m;     ///< effective (area-scaled, temp-adjusted) card
  double vt;      ///< thermal voltage at the instance temperature
  double vcritE;  ///< pnjlim critical voltage, B-E
  double vcritC;  ///< pnjlim critical voltage, B-C
};

inline DerivedGummelPoon deriveGummelPoon(const BjtModel& model, double area,
                                          double tempC) {
  DerivedGummelPoon d;
  d.m = applyBjtAreaFactor(model, area);
  if (d.m.rbm <= 0.0) d.m.rbm = d.m.rb;  // SPICE default: RBM = RB
  d.vt = util::constants::thermalVoltage(tempC);

  // Temperature adjustment (Tnom = 27 C):
  //   IS(T) = IS * (T/Tnom)^XTI * exp(EG/Vt * (T/Tnom - 1))
  //   BF(T) = BF * (T/Tnom)^XTB (same for BR); leakage saturation
  //   currents scale as IS^(1/N) per SPICE.
  constexpr double kTnomC = 27.0;
  if (tempC != kTnomC) {
    const double tr = (tempC + util::constants::kZeroCelsiusInKelvin) /
                      (kTnomC + util::constants::kZeroCelsiusInKelvin);
    const double isFactor =
        std::pow(tr, d.m.xti) * std::exp(d.m.eg / d.vt * (tr - 1.0));
    d.m.is *= isFactor;
    if (d.m.ise > 0.0)
      d.m.ise *= std::pow(isFactor, 1.0 / d.m.ne) / std::pow(tr, d.m.xtb);
    if (d.m.isc > 0.0)
      d.m.isc *= std::pow(isFactor, 1.0 / d.m.nc) / std::pow(tr, d.m.xtb);
    d.m.bf *= std::pow(tr, d.m.xtb);
    d.m.br *= std::pow(tr, d.m.xtb);
  }
  d.vcritE = junctionVcrit(d.m.is, d.m.nf * d.vt);
  d.vcritC = junctionVcrit(d.m.is, d.m.nr * d.vt);
  return d;
}

/// The scalar parameters gummelEvaluate() actually consumes, with the
/// thermal-voltage products pre-multiplied. The batch engine stores one
/// structure-of-arrays table per parameter (replica-strided) and loads a
/// GummelPoonParams per replica, so the evaluation below is written
/// exactly once for both the scalar device and the batched kernel.
struct GummelPoonParams {
  double is;            ///< transport saturation current
  double nfvt, nrvt;    ///< nf * Vt, nr * Vt
  double ise, nevt;     ///< B-E leakage saturation current, ne * Vt
  double isc, ncvt;     ///< B-C leakage saturation current, nc * Vt
  double vaf, var;      ///< Early voltages
  double ikf, ikr;      ///< high-injection knees
  double bf, br;        ///< ideal current gains
  double rb, rbm, irb;  ///< base-resistance parameters
};

inline GummelPoonParams gummelParams(const BjtModel& m, double vt) {
  return {m.is,        m.nf * vt, m.nr * vt, m.ise, m.ne * vt, m.isc,
          m.nc * vt,   m.vaf,     m.var,     m.ikf, m.ikr,     m.bf,
          m.br,        m.rb,      m.rbm,     m.irb};
}

/// Full Gummel-Poon large-signal evaluation: transport and leakage
/// diodes, Early/high-injection base-charge modulation, bias-dependent
/// base resistance. `p` must come from the effective (derived) card.
inline GummelPoonEval gummelEvaluate(const GummelPoonParams& p, double vbe,
                                     double vbc, double gmin) {
  using util::constants::kPi;
  GummelPoonEval r{};

  // Ideal transport diodes.
  {
    auto [i, g] = junctionIV(vbe, p.is, p.nfvt);
    r.ibe1 = i;
    r.gbe1 = g;
  }
  {
    auto [i, g] = junctionIV(vbc, p.is, p.nrvt);
    r.ibc1 = i;
    r.gbc1 = g;
  }
  // Leakage diodes.
  if (p.ise > 0.0) {
    auto [i, g] = junctionIV(vbe, p.ise, p.nevt);
    r.ibe2 = i;
    r.gbe2 = g;
  }
  if (p.isc > 0.0) {
    auto [i, g] = junctionIV(vbc, p.isc, p.ncvt);
    r.ibc2 = i;
    r.gbc2 = g;
  }

  // Base-charge modulation: Early effect (q1) and high injection (q2).
  double q1 = 1.0;
  double dq1Dvbe = 0.0, dq1Dvbc = 0.0;
  {
    double denom = 1.0;
    if (p.vaf > 0.0) denom -= vbc / p.vaf;
    if (p.var > 0.0) denom -= vbe / p.var;
    denom = std::max(denom, 1e-3);
    q1 = 1.0 / denom;
    if (p.vaf > 0.0) dq1Dvbc = q1 * q1 / p.vaf;
    if (p.var > 0.0) dq1Dvbe = q1 * q1 / p.var;
  }
  double q2 = 0.0, dq2Dvbe = 0.0, dq2Dvbc = 0.0;
  if (p.ikf > 0.0) {
    q2 += r.ibe1 / p.ikf;
    dq2Dvbe += r.gbe1 / p.ikf;
  }
  if (p.ikr > 0.0) {
    q2 += r.ibc1 / p.ikr;
    dq2Dvbc += r.gbc1 / p.ikr;
  }
  const double sq = std::sqrt(1.0 + 4.0 * std::max(q2, -0.2499));
  r.qb = q1 * (1.0 + sq) / 2.0;
  r.qb = std::max(r.qb, 1e-4);
  r.dqbDvbe = dq1Dvbe * (1.0 + sq) / 2.0 + q1 * dq2Dvbe / sq;
  r.dqbDvbc = dq1Dvbc * (1.0 + sq) / 2.0 + q1 * dq2Dvbc / sq;

  // Transport current and its derivatives.
  r.icc = (r.ibe1 - r.ibc1) / r.qb;
  r.gmf = (r.gbe1 - r.icc * r.dqbDvbe) / r.qb;
  r.gmr = (-r.gbc1 - r.icc * r.dqbDvbc) / r.qb;

  // Total base current (junction gmin leaks included by caller's stamps).
  r.ibTotal = r.ibe1 / p.bf + r.ibe2 + r.ibc1 / p.br + r.ibc2 +
              gmin * (vbe + vbc);

  // Bias-dependent base resistance.
  r.rbEff = p.rb;
  if (p.rb > 0.0) {
    if (p.irb > 0.0) {
      const double ib = std::max(std::fabs(r.ibTotal), 1e-15);
      const double arg1 = ib / p.irb;
      const double z =
          (-1.0 + std::sqrt(1.0 + 144.0 / (kPi * kPi) * arg1)) /
          (24.0 / (kPi * kPi) * std::sqrt(arg1));
      const double tz = std::tan(z);
      r.rbEff = p.rbm + 3.0 * (p.rb - p.rbm) * (tz - z) / (z * tz * tz);
    } else {
      r.rbEff = p.rbm + (p.rb - p.rbm) / r.qb;
    }
    r.rbEff = std::max(r.rbEff, 1e-3);
  }
  return r;
}

inline GummelPoonEval gummelEvaluate(const BjtModel& m, double vt,
                                     double vbe, double vbc, double gmin) {
  return gummelEvaluate(gummelParams(m, vt), vbe, vbc, gmin);
}

/// Charges and capacitances at given junction voltages (needs the
/// matching gummelEvaluate result for the diffusion terms).
inline GummelPoonCharges gummelCharges(const BjtModel& m, double vbe,
                                       double vbc, double vcs,
                                       const GummelPoonEval& e) {
  GummelPoonCharges c{};

  // B-E: depletion + forward diffusion with XTF/VTF/ITF bias dependence.
  {
    const auto dep = depletionQC(vbe, m.cje, m.vje, m.mje, m.fc);
    double qde = 0.0, cde = 0.0;
    if (m.tf > 0.0) {
      double argtf = 0.0, arg2 = 0.0;
      if (m.xtf > 0.0) {
        argtf = m.xtf;
        if (m.vtf > 0.0)
          argtf *= std::exp(std::min(vbc / (1.44 * m.vtf), 40.0));
        arg2 = argtf;
        if (m.itf > 0.0 && e.ibe1 > 0.0) {
          const double temp = e.ibe1 / (e.ibe1 + m.itf);
          argtf *= temp * temp;
          arg2 = argtf * (3.0 - 2.0 * temp);
        }
      }
      qde = m.tf * (1.0 + argtf) * e.ibe1 / e.qb;
      cde = m.tf *
            (e.gbe1 * (1.0 + arg2) -
             e.ibe1 * (1.0 + argtf) * e.dqbDvbe / e.qb) /
            e.qb;
      cde = std::max(cde, 0.0);
    }
    c.qbe = dep.q + qde;
    c.cbe = dep.c + cde;
  }

  // B-C: XCJC fraction at the internal base, remainder at the external
  // base; reverse diffusion charge TR * ibc1 on the internal part.
  {
    const auto depInt = depletionQC(vbc, m.cjc * m.xcjc, m.vjc, m.mjc,
                                    m.fc);
    c.qbc = depInt.q + m.tr * e.ibc1;
    c.cbc = depInt.c + m.tr * e.gbc1;
    const auto depExt = depletionQC(vbc, m.cjc * (1.0 - m.xcjc), m.vjc,
                                    m.mjc, m.fc);
    c.qbx = depExt.q;
    c.cbx = depExt.c;
  }

  // Collector-substrate depletion (normally reverse biased).
  {
    const auto dep = depletionQC(vcs, m.cjs, m.vjs, m.mjs, 0.0);
    c.qcs = dep.q;
    c.ccs = dep.c;
  }
  return c;
}

/// Per-instance derived constants of a junction diode: the
/// temperature-adjusted card (area is applied at the use sites, exactly
/// as in the Diode device) plus n*Vt and the pnjlim critical voltage.
struct DerivedDiode {
  DiodeModel m;  ///< temperature-adjusted card
  double vte;    ///< n * Vt
  double vcrit;  ///< pnjlim critical voltage
};

inline DerivedDiode deriveDiode(const DiodeModel& model, double area,
                                double tempC) {
  DerivedDiode d;
  d.m = model;
  const double vt = util::constants::thermalVoltage(tempC);
  d.vte = d.m.n * vt;
  // IS(T), Tnom = 27 C.
  constexpr double kTnomC = 27.0;
  if (tempC != kTnomC) {
    const double tr = (tempC + util::constants::kZeroCelsiusInKelvin) /
                      (kTnomC + util::constants::kZeroCelsiusInKelvin);
    d.m.is *= std::pow(tr, d.m.xti / d.m.n) *
              std::exp(d.m.eg / d.vte * (tr - 1.0));
  }
  d.vcrit = junctionVcrit(d.m.is * area, d.vte);
  return d;
}

}  // namespace ahfic::spice
