#include "spice/sources.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::spice {

using util::constants::kTwoPi;

SinWaveform::SinWaveform(double offset, double amplitude, double freqHz,
                         double delay, double theta)
    : offset_(offset),
      amplitude_(amplitude),
      freq_(freqHz),
      delay_(delay),
      theta_(theta) {
  if (freqHz <= 0.0) throw Error("SIN waveform: frequency must be > 0");
}

double SinWaveform::value(double t) const {
  if (t < delay_) return offset_;
  const double tt = t - delay_;
  return offset_ + amplitude_ * std::exp(-theta_ * tt) *
                       std::sin(kTwoPi * freq_ * tt);
}

PulseWaveform::PulseWaveform(double v1, double v2, double delay, double rise,
                             double fall, double width, double period)
    : v1_(v1),
      v2_(v2),
      delay_(delay),
      rise_(rise > 0 ? rise : 1e-12),
      fall_(fall > 0 ? fall : 1e-12),
      width_(width),
      period_(period) {}

double PulseWaveform::value(double t) const {
  if (t < delay_) return v1_;
  double tt = t - delay_;
  if (period_ > 0.0) tt = std::fmod(tt, period_);
  if (tt < rise_) return v1_ + (v2_ - v1_) * tt / rise_;
  tt -= rise_;
  if (tt < width_) return v2_;
  tt -= width_;
  if (tt < fall_) return v2_ + (v1_ - v2_) * tt / fall_;
  return v1_;
}

PwlWaveform::PwlWaveform(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) throw Error("PWL waveform: need >= 2 points");
  for (size_t i = 1; i < points_.size(); ++i)
    if (points_[i].first <= points_[i - 1].first)
      throw Error("PWL waveform: times must be strictly increasing");
}

double PwlWaveform::value(double t) const {
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (t <= points_[i].first) {
      const auto& [t0, v0] = points_[i - 1];
      const auto& [t1, v1] = points_[i];
      return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
    }
  }
  return points_.back().second;
}

ExpWaveform::ExpWaveform(double v1, double v2, double td1, double tau1,
                         double td2, double tau2)
    : v1_(v1), v2_(v2), td1_(td1), tau1_(tau1), td2_(td2), tau2_(tau2) {
  if (tau1 <= 0.0 || tau2 <= 0.0)
    throw Error("EXP waveform: time constants must be > 0");
}

double ExpWaveform::value(double t) const {
  double v = v1_;
  if (t >= td1_) v += (v2_ - v1_) * (1.0 - std::exp(-(t - td1_) / tau1_));
  if (t >= td2_) v += (v1_ - v2_) * (1.0 - std::exp(-(t - td2_) / tau2_));
  return v;
}

SffmWaveform::SffmWaveform(double offset, double amplitude,
                           double carrierHz, double modIndex,
                           double signalHz)
    : offset_(offset),
      amplitude_(amplitude),
      fc_(carrierHz),
      mdi_(modIndex),
      fs_(signalHz) {
  if (carrierHz <= 0.0 || signalHz <= 0.0)
    throw Error("SFFM waveform: frequencies must be > 0");
}

double SffmWaveform::value(double t) const {
  return offset_ + amplitude_ * std::sin(kTwoPi * fc_ * t +
                                         mdi_ * std::sin(kTwoPi * fs_ * t));
}

AmWaveform::AmWaveform(double amplitude, double offset, double modHz,
                       double carrierHz, double delay)
    : sa_(amplitude), oc_(offset), fm_(modHz), fc_(carrierHz), td_(delay) {
  if (carrierHz <= 0.0 || modHz <= 0.0)
    throw Error("AM waveform: frequencies must be > 0");
}

double AmWaveform::value(double t) const {
  if (t < td_) return 0.0;
  const double tt = t - td_;
  return sa_ * (oc_ + std::sin(kTwoPi * fm_ * tt)) *
         std::sin(kTwoPi * fc_ * tt);
}

VSource::VSource(std::string name, int p, int n,
                 std::unique_ptr<Waveform> wave, double acMag,
                 double acPhaseDeg)
    : Device(std::move(name), {p, n}),
      wave_(std::move(wave)),
      acMag_(acMag),
      acPhaseDeg_(acPhaseDeg) {
  if (!wave_) throw Error("VSource: null waveform");
}

VSource::VSource(std::string name, int p, int n, double dc, double acMag,
                 double acPhaseDeg)
    : VSource(std::move(name), p, n, std::make_unique<DcWaveform>(dc), acMag,
              acPhaseDeg) {}

void VSource::load(Stamper& s, const Solution&, const LoadContext& ctx) {
  SlotWriter w(s, stampMemo());
  const int p = nodes()[0], n = nodes()[1], br = branchId();
  w.addA(p, br, 1.0);
  w.addA(n, br, -1.0);
  w.addA(br, p, 1.0);
  w.addA(br, n, -1.0);
  const double v = (ctx.mode == AnalysisMode::kTransient)
                       ? wave_->value(ctx.time)
                       : wave_->dcValue();
  w.addRhs(br, ctx.srcScale * v);
}

void VSource::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  const int p = nodes()[0], n = nodes()[1], br = branchId();
  w.addA(p, br, {1.0, 0.0});
  w.addA(n, br, {-1.0, 0.0});
  w.addA(br, p, {1.0, 0.0});
  w.addA(br, n, {-1.0, 0.0});
  const double ph = acPhaseDeg_ * util::constants::kPi / 180.0;
  w.addRhs(br, {acMag_ * std::cos(ph), acMag_ * std::sin(ph)});
}

ISource::ISource(std::string name, int p, int n,
                 std::unique_ptr<Waveform> wave, double acMag,
                 double acPhaseDeg)
    : Device(std::move(name), {p, n}),
      wave_(std::move(wave)),
      acMag_(acMag),
      acPhaseDeg_(acPhaseDeg) {
  if (!wave_) throw Error("ISource: null waveform");
}

ISource::ISource(std::string name, int p, int n, double dc, double acMag,
                 double acPhaseDeg)
    : ISource(std::move(name), p, n, std::make_unique<DcWaveform>(dc), acMag,
              acPhaseDeg) {}

void ISource::load(Stamper& s, const Solution&, const LoadContext& ctx) {
  SlotWriter w(s, stampMemo());
  const double i = ctx.srcScale * ((ctx.mode == AnalysisMode::kTransient)
                                       ? wave_->value(ctx.time)
                                       : wave_->dcValue());
  // Positive current flows p -> n through the source: out of node p's KCL,
  // into node n's.
  w.addCurrent(nodes()[0], -i);
  w.addCurrent(nodes()[1], i);
}

void ISource::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  const double ph = acPhaseDeg_ * util::constants::kPi / 180.0;
  const std::complex<double> i{acMag_ * std::cos(ph),
                               acMag_ * std::sin(ph)};
  w.addRhs(nodes()[0], -i);
  w.addRhs(nodes()[1], i);
}

Vcvs::Vcvs(std::string name, int p, int n, int cp, int cn, double gain)
    : Device(std::move(name), {p, n, cp, cn}), gain_(gain) {}

void Vcvs::load(Stamper& s, const Solution&, const LoadContext&) {
  SlotWriter w(s, stampMemo());
  const int p = nodes()[0], n = nodes()[1], cp = nodes()[2], cn = nodes()[3];
  const int br = branchId();
  w.addA(p, br, 1.0);
  w.addA(n, br, -1.0);
  w.addA(br, p, 1.0);
  w.addA(br, n, -1.0);
  w.addA(br, cp, -gain_);
  w.addA(br, cn, gain_);
}

void Vcvs::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  const int p = nodes()[0], n = nodes()[1], cp = nodes()[2], cn = nodes()[3];
  const int br = branchId();
  w.addA(p, br, {1.0, 0.0});
  w.addA(n, br, {-1.0, 0.0});
  w.addA(br, p, {1.0, 0.0});
  w.addA(br, n, {-1.0, 0.0});
  w.addA(br, cp, {-gain_, 0.0});
  w.addA(br, cn, {gain_, 0.0});
}

Vccs::Vccs(std::string name, int p, int n, int cp, int cn, double gm)
    : Device(std::move(name), {p, n, cp, cn}), gm_(gm) {}

void Vccs::load(Stamper& s, const Solution&, const LoadContext&) {
  SlotWriter w(s, stampMemo());
  // Current gm*v(cp,cn) flows p -> n through the source.
  w.addTransconductance(nodes()[0], nodes()[1], nodes()[2], nodes()[3], gm_);
}

void Vccs::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  w.addTransadmittance(nodes()[0], nodes()[1], nodes()[2], nodes()[3],
                       {gm_, 0.0});
}

Cccs::Cccs(std::string name, int p, int n, const VSource& ctrl, double gain)
    : Device(std::move(name), {p, n}), ctrl_(ctrl), gain_(gain) {}

void Cccs::load(Stamper& s, const Solution&, const LoadContext&) {
  SlotWriter w(s, stampMemo());
  const int p = nodes()[0], n = nodes()[1], cbr = ctrl_.branchId();
  w.addA(p, cbr, gain_);
  w.addA(n, cbr, -gain_);
}

void Cccs::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  const int p = nodes()[0], n = nodes()[1], cbr = ctrl_.branchId();
  w.addA(p, cbr, {gain_, 0.0});
  w.addA(n, cbr, {-gain_, 0.0});
}

Ccvs::Ccvs(std::string name, int p, int n, const VSource& ctrl, double r)
    : Device(std::move(name), {p, n}), ctrl_(ctrl), r_(r) {}

void Ccvs::load(Stamper& s, const Solution&, const LoadContext&) {
  SlotWriter w(s, stampMemo());
  const int p = nodes()[0], n = nodes()[1], br = branchId();
  const int cbr = ctrl_.branchId();
  w.addA(p, br, 1.0);
  w.addA(n, br, -1.0);
  w.addA(br, p, 1.0);
  w.addA(br, n, -1.0);
  w.addA(br, cbr, -r_);
}

void Ccvs::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  const int p = nodes()[0], n = nodes()[1], br = branchId();
  const int cbr = ctrl_.branchId();
  w.addA(p, br, {1.0, 0.0});
  w.addA(n, br, {-1.0, 0.0});
  w.addA(br, p, {1.0, 0.0});
  w.addA(br, n, {-1.0, 0.0});
  w.addA(br, cbr, {-r_, 0.0});
}

}  // namespace ahfic::spice
