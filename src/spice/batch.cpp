#include "spice/batch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "spice/bjt.h"
#include "spice/diode.h"
#include "spice/gummel.h"
#include "spice/junction.h"
#include "spice/stamp.h"
#include "util/error.h"
#include "util/restrict.h"

namespace {

double nowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace ahfic::spice {

// One Gummel-Poon transistor position shared by every replica: node ids
// and value-array slots resolved once from the shared pattern (the batch
// analogue of the per-device StampMemo), plus replica-strided SoA
// parameter tables and the per-iteration evaluation outputs the scatter
// pass consumes. Slot quads are in addConductance order — (a,a), (b,b),
// (a,b), (b,a) — with -1 marking ground-touching entries that the
// CsrStamper would drop.
struct ReplicaBatch::BjtPlan {
  int c, b, e, ci, bi, ei;
  bool hasRc, hasRe, hasRb;
  int rcQuad[4], reQuad[4], rbQuad[4], beQuad[4], bcQuad[4];
  int tr6[6];  ///< transport addA slots, in Bjt::load() order
  int rhsBi, rhsEi, rhsCi;

  // SoA parameter tables (one value per replica).
  std::vector<double> is, nfvt, nrvt, ise, nevt, isc, ncvt, vaf, var, ikf,
      ikr, bf, br, rb, rbm, irb, vcritE, vcritC, pol, grc, gre;

  // Junction-limiting history, reset to the x = 0 seed at each op().
  std::vector<double> vbeLim, vbcLim;

  // Phase-1 outputs: the exact scalars Bjt::load() stamps.
  std::vector<double> oGrb, oGbe, oIeqBe, oGbc, oIeqBc, oGmf, oGmr, oIeqT;
};

struct ReplicaBatch::DiodePlan {
  int a, cNode, aInt;
  bool hasRs;
  int rsQuad[4], jQuad[4];
  int rhsA, rhsC;

  std::vector<double> isArea, vte, vcrit, grs;
  std::vector<double> vLim;
  std::vector<double> oGd, oIeq;
};

ReplicaBatch::~ReplicaBatch() = default;

int ReplicaBatch::resolveSlot(int row, int col) const {
  if (row <= 0 || col <= 0) return -1;
  const int slot = pat_.slot(row - 1, col - 1);
  if (slot < 0)
    throw Error("ReplicaBatch: stamp position (" + std::to_string(row) +
                ", " + std::to_string(col) + ") missing from primed pattern");
  return slot;
}

void ReplicaBatch::resolveQuad(int a, int b, int* quad) const {
  quad[0] = resolveSlot(a, a);
  quad[1] = resolveSlot(b, b);
  quad[2] = resolveSlot(a, b);
  quad[3] = resolveSlot(b, a);
}

void ReplicaBatch::buildLayoutFor(Circuit& ckt, std::vector<Device*>& linear,
                                  std::vector<Device*>& nonlinear,
                                  int& unknowns, int& states) const {
  // Mirrors Analyzer::buildLayout exactly: branch/state bases assigned in
  // device order, ground excluded from the unknown count.
  int nextBranch = ckt.nodeCount();
  int nextState = 0;
  for (const auto& dev : ckt.devices()) {
    if (dev->branchCount() > 0) {
      dev->assignBranchBase(nextBranch);
      nextBranch += dev->branchCount();
    }
    if (dev->stateCount() > 0) {
      dev->assignStateBase(nextState);
      nextState += dev->stateCount();
    }
    if (dev->isNonlinear())
      nonlinear.push_back(dev.get());
    else
      linear.push_back(dev.get());
  }
  unknowns = nextBranch - 1;
  states = nextState;
}

void ReplicaBatch::primePatternFor(Circuit& ckt, CsrPattern& pat,
                                   int unknowns, int states) const {
  // Mirrors Analyzer::primeSparsePattern: every device recorded under a
  // DC and a transient context, so the pattern (and hence the symbolic
  // analysis and its pivot choices) is identical to the scalar path's.
  std::vector<std::pair<int, int>> entries;
  PatternStamper ps(entries);
  std::vector<double> zeros(static_cast<size_t>(unknowns), 0.0);
  Solution sx(&zeros);
  std::vector<double> st(static_cast<size_t>(states), 0.0);
  std::vector<double> stPrev(static_cast<size_t>(states), 0.0);
  std::vector<double> dstPrev(static_cast<size_t>(states), 0.0);
  LoadContext ctx;
  ctx.state = &st;
  ctx.prevState = &stPrev;
  ctx.prevDstate = &dstPrev;
  ctx.mode = AnalysisMode::kDcOp;
  ctx.c0 = 0.0;
  for (const auto& dev : ckt.devices()) dev->load(ps, sx, ctx);
  ctx.mode = AnalysisMode::kTransient;
  ctx.c0 = 1.0;
  for (const auto& dev : ckt.devices()) dev->load(ps, sx, ctx);
  pat.build(unknowns, std::move(entries));
}

ReplicaBatch::ReplicaBatch(std::vector<std::unique_ptr<Circuit>> replicas,
                           Options opts)
    : opts_(opts), circuits_(std::move(replicas)) {
  if (circuits_.empty()) throw Error("ReplicaBatch: no replicas");
  if (opts_.analysis.forensics)
    throw Error("ReplicaBatch: convergence forensics is not supported");
  opts_.analysis.solver = SolverKind::kSparse;
  opts_.analysis.useSparse = false;

  const size_t R = circuits_.size();
  linearDevs_.resize(R);
  nonlinearDevs_.resize(R);
  for (size_t r = 0; r < R; ++r) {
    int unknowns = 0, states = 0;
    buildLayoutFor(*circuits_[r], linearDevs_[r], nonlinearDevs_[r],
                   unknowns, states);
    if (r == 0) {
      unknownCount_ = unknowns;
      stateCount_ = states;
    } else if (unknowns != unknownCount_ || states != stateCount_ ||
               linearDevs_[r].size() != linearDevs_[0].size() ||
               nonlinearDevs_[r].size() != nonlinearDevs_[0].size()) {
      throw Error("ReplicaBatch: replica " + std::to_string(r) +
                  " topology differs from replica 0 (layout)");
    }
  }

  // Shared pattern from replica 0; every other replica's primed pattern
  // must match it structurally — this is the topology-epoch check.
  primePatternFor(*circuits_[0], pat_, unknownCount_, stateCount_);
  for (size_t r = 1; r < R; ++r) {
    CsrPattern other;
    primePatternFor(*circuits_[r], other, unknownCount_, stateCount_);
    if (other.rowPtr() != pat_.rowPtr() || other.colIdx() != pat_.colIdx())
      throw Error("ReplicaBatch: replica " + std::to_string(r) +
                  " topology differs from replica 0 (sparsity pattern)");
  }

  // One symbolic analysis, shared; numeric state stays per replica.
  lu_.reserve(R);
  for (size_t r = 0; r < R; ++r)
    lu_.push_back(std::make_unique<SparseLU<double>>());
  lu_[0]->analyze(pat_);
  for (size_t r = 1; r < R; ++r) lu_[r]->adoptAnalysis(*lu_[0]);

  buildPlans();
  computeStaticBaselines();

  x_.assign(R, std::vector<double>(static_cast<size_t>(unknownCount_), 0.0));
  xNew_ = x_;
  vals_.assign(pat_.nonzeros(), 0.0);
  rhs_.assign(static_cast<size_t>(unknownCount_), 0.0);
  stateScratch_.assign(static_cast<size_t>(stateCount_), 0.0);
  statePrevZero_ = stateScratch_;
  dstatePrevZero_ = stateScratch_;
}

void ReplicaBatch::buildPlans() {
  const size_t R = circuits_.size();
  for (size_t j = 0; j < nonlinearDevs_[0].size(); ++j) {
    Device* d0 = nonlinearDevs_[0][j];
    if (auto* q0 = dynamic_cast<Bjt*>(d0)) {
      BjtPlan p;
      p.c = q0->nodes()[0];
      p.b = q0->nodes()[1];
      p.e = q0->nodes()[2];
      p.ci = q0->internalCollector();
      p.bi = q0->internalBase();
      p.ei = q0->internalEmitter();
      const BjtModel& m0 = q0->scaledModel();
      p.hasRc = m0.rc > 0.0;
      p.hasRe = m0.re > 0.0;
      p.hasRb = m0.rb > 0.0;
      resolveQuad(p.c, p.ci, p.rcQuad);
      resolveQuad(p.e, p.ei, p.reQuad);
      resolveQuad(p.b, p.bi, p.rbQuad);
      resolveQuad(p.bi, p.ei, p.beQuad);
      resolveQuad(p.bi, p.ci, p.bcQuad);
      p.tr6[0] = resolveSlot(p.ci, p.bi);
      p.tr6[1] = resolveSlot(p.ci, p.ei);
      p.tr6[2] = resolveSlot(p.ci, p.ci);
      p.tr6[3] = resolveSlot(p.ei, p.bi);
      p.tr6[4] = resolveSlot(p.ei, p.ei);
      p.tr6[5] = resolveSlot(p.ei, p.ci);
      p.rhsBi = p.bi > 0 ? p.bi - 1 : -1;
      p.rhsEi = p.ei > 0 ? p.ei - 1 : -1;
      p.rhsCi = p.ci > 0 ? p.ci - 1 : -1;
      for (auto* v : {&p.is, &p.nfvt, &p.nrvt, &p.ise, &p.nevt, &p.isc,
                      &p.ncvt, &p.vaf, &p.var, &p.ikf, &p.ikr, &p.bf, &p.br,
                      &p.rb, &p.rbm, &p.irb, &p.vcritE, &p.vcritC, &p.pol,
                      &p.grc, &p.gre, &p.vbeLim, &p.vbcLim, &p.oGrb, &p.oGbe,
                      &p.oIeqBe, &p.oGbc, &p.oIeqBc, &p.oGmf, &p.oGmr,
                      &p.oIeqT})
        v->assign(R, 0.0);
      for (size_t r = 0; r < R; ++r) {
        auto* q = dynamic_cast<Bjt*>(nonlinearDevs_[r][j]);
        if (q == nullptr || q->nodes() != q0->nodes() ||
            q->internalCollector() != p.ci || q->internalBase() != p.bi ||
            q->internalEmitter() != p.ei ||
            q->substrateNode() != q0->substrateNode())
          throw Error("ReplicaBatch: replica " + std::to_string(r) +
                      " topology differs from replica 0 (device " +
                      d0->name() + ")");
        const BjtModel& m = q->scaledModel();
        if ((m.rc > 0.0) != p.hasRc || (m.re > 0.0) != p.hasRe ||
            (m.rb > 0.0) != p.hasRb)
          throw Error("ReplicaBatch: replica " + std::to_string(r) +
                      " parasitic topology differs (device " + d0->name() +
                      ")");
        const GummelPoonParams gp = gummelParams(m, q->vt());
        p.is[r] = gp.is;
        p.nfvt[r] = gp.nfvt;
        p.nrvt[r] = gp.nrvt;
        p.ise[r] = gp.ise;
        p.nevt[r] = gp.nevt;
        p.isc[r] = gp.isc;
        p.ncvt[r] = gp.ncvt;
        p.vaf[r] = gp.vaf;
        p.var[r] = gp.var;
        p.ikf[r] = gp.ikf;
        p.ikr[r] = gp.ikr;
        p.bf[r] = gp.bf;
        p.br[r] = gp.br;
        p.rb[r] = gp.rb;
        p.rbm[r] = gp.rbm;
        p.irb[r] = gp.irb;
        p.vcritE[r] = q->vcritE();
        p.vcritC[r] = q->vcritC();
        p.pol[r] = q->polarity();
        p.grc[r] = p.hasRc ? 1.0 / m.rc : 0.0;
        p.gre[r] = p.hasRe ? 1.0 / m.re : 0.0;
      }
      nonlinearOrder_.emplace_back(0, static_cast<int>(bjts_.size()));
      bjts_.push_back(std::move(p));
    } else if (auto* dd0 = dynamic_cast<Diode*>(d0)) {
      DiodePlan p;
      p.a = dd0->nodes()[0];
      p.cNode = dd0->nodes()[1];
      p.aInt = dd0->internalAnode();
      p.hasRs = dd0->scaledModel().rs > 0.0;
      resolveQuad(p.a, p.aInt, p.rsQuad);
      resolveQuad(p.aInt, p.cNode, p.jQuad);
      p.rhsA = p.aInt > 0 ? p.aInt - 1 : -1;
      p.rhsC = p.cNode > 0 ? p.cNode - 1 : -1;
      for (auto* v : {&p.isArea, &p.vte, &p.vcrit, &p.grs, &p.vLim, &p.oGd,
                      &p.oIeq})
        v->assign(R, 0.0);
      for (size_t r = 0; r < R; ++r) {
        auto* d = dynamic_cast<Diode*>(nonlinearDevs_[r][j]);
        if (d == nullptr || d->nodes() != dd0->nodes() ||
            d->internalAnode() != p.aInt ||
            (d->scaledModel().rs > 0.0) != p.hasRs)
          throw Error("ReplicaBatch: replica " + std::to_string(r) +
                      " topology differs from replica 0 (device " +
                      d0->name() + ")");
        const DiodeModel& m = d->scaledModel();
        p.isArea[r] = m.is * d->area();
        p.vte[r] = d->vte();
        p.vcrit[r] = d->vcrit();
        p.grs[r] = p.hasRs ? d->area() / m.rs : 0.0;
      }
      nonlinearOrder_.emplace_back(1, static_cast<int>(diodes_.size()));
      diodes_.push_back(std::move(p));
    } else {
      throw Error("ReplicaBatch: unsupported nonlinear device '" +
                  d0->name() + "' (only Bjt and Diode have SoA kernels)");
    }
  }
}

void ReplicaBatch::computeStaticBaselines() {
  // Mirrors Analyzer::prepareSparseStatic: linear-device matrix stamps
  // are candidate- and source-value-independent in DC, so one pass at
  // x = 0 per replica yields the baseline every Newton iteration
  // memcpy-restores. A pending (pattern-miss) position here would mean
  // the priming pass failed — that is a bug, not a growth event, because
  // the pattern is shared.
  const size_t R = circuits_.size();
  staticVals_.resize(R);
  std::vector<double> zeros(static_cast<size_t>(unknownCount_), 0.0);
  Solution sx(&zeros);
  std::vector<double> st(static_cast<size_t>(stateCount_), 0.0);
  std::vector<double> stPrev(static_cast<size_t>(stateCount_), 0.0);
  std::vector<double> dstPrev(static_cast<size_t>(stateCount_), 0.0);
  std::vector<double> scratchRhs(static_cast<size_t>(unknownCount_), 0.0);
  std::vector<std::pair<int, int>> pending;
  LoadContext ctx;
  ctx.mode = AnalysisMode::kDcOp;
  ctx.c0 = 0.0;
  ctx.gmin = opts_.analysis.gmin;
  ctx.state = &st;
  ctx.prevState = &stPrev;
  ctx.prevDstate = &dstPrev;
  for (size_t r = 0; r < R; ++r) {
    staticVals_[r].assign(pat_.nonzeros(), 0.0);
    scratchRhs.assign(static_cast<size_t>(unknownCount_), 0.0);
    pending.clear();
    CsrStamper cs(pat_, staticVals_[r], scratchRhs, &pending);
    for (Device* dev : linearDevs_[r]) dev->load(cs, sx, ctx);
    if (!pending.empty())
      throw Error("ReplicaBatch: linear device stamped outside the primed "
                  "pattern (replica " +
                  std::to_string(r) + ")");
  }
}

namespace {

/// addConductance scatter: vals[(a,a)] += g, vals[(b,b)] += g,
/// vals[(a,b)] -= g, vals[(b,a)] -= g, ground slots dropped.
inline void scatterQuad(double* AHFIC_RESTRICT vals, const int* quad,
                        double g) {
  if (quad[0] >= 0) vals[quad[0]] += g;
  if (quad[1] >= 0) vals[quad[1]] += g;
  if (quad[2] >= 0) vals[quad[2]] += -g;
  if (quad[3] >= 0) vals[quad[3]] += -g;
}

inline void addSlot(double* AHFIC_RESTRICT vals, int slot, double v) {
  if (slot >= 0) vals[slot] += v;
}

inline double solutionAt(const double* x, int id) {
  return id <= 0 ? 0.0 : x[id - 1];
}

}  // namespace

ReplicaBatch::OpResult ReplicaBatch::op() {
  const size_t R = circuits_.size();
  const int n = unknownCount_;
  const AnalysisOptions& ao = opts_.analysis;
  const double t0 = obs::metricsEnabled() ? nowNs() : 0.0;
  ++stats_.ops;

  OpResult out;
  out.iterations.assign(R, 0);
  out.fellBack.assign(R, 0);
  std::vector<char> active(R, 1);
  std::vector<char> needFallback(R, 0);

  // Per-op reset: x = 0 start, numeric factorizations discarded so the
  // first iteration full-factors (the fresh-Analyzer pivot sequence),
  // limiting histories seeded from x = 0 (all junction voltages 0).
  for (size_t r = 0; r < R; ++r) {
    std::fill(x_[r].begin(), x_[r].end(), 0.0);
    std::fill(xNew_[r].begin(), xNew_[r].end(), 0.0);
    lu_[r]->resetNumeric();
    Solution sx(&x_[r]);
    for (const auto& dev : circuits_[r]->devices()) dev->beginSolve(sx);
  }
  for (auto& p : bjts_) {
    std::fill(p.vbeLim.begin(), p.vbeLim.end(), 0.0);
    std::fill(p.vbcLim.begin(), p.vbcLim.end(), 0.0);
  }
  for (auto& p : diodes_) std::fill(p.vLim.begin(), p.vLim.end(), 0.0);

  LoadContext ctx;
  ctx.mode = AnalysisMode::kDcOp;
  ctx.c0 = 0.0;
  ctx.gmin = ao.gmin;
  ctx.srcScale = 1.0;
  ctx.state = &stateScratch_;
  ctx.prevState = &statePrevZero_;
  ctx.prevDstate = &dstatePrevZero_;

  std::vector<char> limited(R, 0);
  const int nodeCount = circuits_[0]->nodeCount();
  bool anyActive = true;

  for (int iter = 0; iter < ao.maxNewtonIters && anyActive; ++iter) {
    // --- Phase 1: SoA evaluation of every nonlinear device across all
    // active replicas. Replica-strided loops over restrict-qualified
    // parameter spans; the junction math is the shared spice/gummel.h /
    // junction.h inlines, so each replica's arithmetic is the exact
    // scalar sequence.
    std::fill(limited.begin(), limited.end(), 0);
    const char* AHFIC_RESTRICT act = active.data();
    char* AHFIC_RESTRICT lim = limited.data();
    for (auto& p : bjts_) {
      const double* AHFIC_RESTRICT nfvt = p.nfvt.data();
      const double* AHFIC_RESTRICT nrvt = p.nrvt.data();
      const double* AHFIC_RESTRICT vcritE = p.vcritE.data();
      const double* AHFIC_RESTRICT vcritC = p.vcritC.data();
      const double* AHFIC_RESTRICT pol = p.pol.data();
      double* AHFIC_RESTRICT vbeLim = p.vbeLim.data();
      double* AHFIC_RESTRICT vbcLim = p.vbcLim.data();
      double* AHFIC_RESTRICT oGrb = p.oGrb.data();
      double* AHFIC_RESTRICT oGbe = p.oGbe.data();
      double* AHFIC_RESTRICT oIeqBe = p.oIeqBe.data();
      double* AHFIC_RESTRICT oGbc = p.oGbc.data();
      double* AHFIC_RESTRICT oIeqBc = p.oIeqBc.data();
      double* AHFIC_RESTRICT oGmf = p.oGmf.data();
      double* AHFIC_RESTRICT oGmr = p.oGmr.data();
      double* AHFIC_RESTRICT oIeqT = p.oIeqT.data();
      for (size_t r = 0; r < R; ++r) {
        if (!act[r]) continue;
        const double* xr = x_[r].data();
        // Junction voltages in model polarity with SPICE limiting —
        // mirrors Bjt::load() step for step.
        const double vbeCand =
            pol[r] * (solutionAt(xr, p.bi) - solutionAt(xr, p.ei));
        const double vbcCand =
            pol[r] * (solutionAt(xr, p.bi) - solutionAt(xr, p.ci));
        const double vbe = pnjlim(vbeCand, vbeLim[r], nfvt[r], vcritE[r]);
        const double vbc = pnjlim(vbcCand, vbcLim[r], nrvt[r], vcritC[r]);
        if (vbe != vbeCand) lim[r] = 1;
        if (vbc != vbcCand) lim[r] = 1;
        vbeLim[r] = vbe;
        vbcLim[r] = vbc;
        const GummelPoonParams gp{p.is[r],  nfvt[r],   nrvt[r],  p.ise[r],
                                  p.nevt[r], p.isc[r], p.ncvt[r], p.vaf[r],
                                  p.var[r],  p.ikf[r], p.ikr[r],  p.bf[r],
                                  p.br[r],   p.rb[r],  p.rbm[r],  p.irb[r]};
        const GummelPoonEval ev = gummelEvaluate(gp, vbe, vbc, ao.gmin);
        // The exact stamp scalars of Bjt::load() (DC: no charge stamps).
        oGrb[r] = 1.0 / ev.rbEff;
        const double gBe = ev.gbe1 / gp.bf + ev.gbe2 + ao.gmin;
        const double iBe = ev.ibe1 / gp.bf + ev.ibe2 + ao.gmin * vbe;
        oGbe[r] = gBe;
        oIeqBe[r] = pol[r] * (iBe - gBe * vbe);
        const double gBc = ev.gbc1 / gp.br + ev.gbc2 + ao.gmin;
        const double iBc = ev.ibc1 / gp.br + ev.ibc2 + ao.gmin * vbc;
        oGbc[r] = gBc;
        oIeqBc[r] = pol[r] * (iBc - gBc * vbc);
        oGmf[r] = ev.gmf;
        oGmr[r] = ev.gmr;
        oIeqT[r] = pol[r] * (ev.icc - ev.gmf * vbe - ev.gmr * vbc);
      }
    }
    for (auto& p : diodes_) {
      const double* AHFIC_RESTRICT isArea = p.isArea.data();
      const double* AHFIC_RESTRICT vte = p.vte.data();
      const double* AHFIC_RESTRICT vcrit = p.vcrit.data();
      double* AHFIC_RESTRICT vLim = p.vLim.data();
      double* AHFIC_RESTRICT oGd = p.oGd.data();
      double* AHFIC_RESTRICT oIeq = p.oIeq.data();
      for (size_t r = 0; r < R; ++r) {
        if (!act[r]) continue;
        const double* xr = x_[r].data();
        const double vCand =
            solutionAt(xr, p.aInt) - solutionAt(xr, p.cNode);
        const double v = pnjlim(vCand, vLim[r], vte[r], vcrit[r]);
        if (v != vCand) lim[r] = 1;
        vLim[r] = v;
        const auto iv = junctionIV(v, isArea[r], vte[r]);
        const double gd = iv.g + ao.gmin;
        const double id = iv.i + ao.gmin * v;
        oGd[r] = gd;
        oIeq[r] = id - gd * v;
      }
    }

    // --- Phase 2: per-replica assemble (baseline memcpy + linear RHS +
    // slot-ordered scatter), refactor replay, solve, convergence.
    anyActive = false;
    for (size_t r = 0; r < R; ++r) {
      if (!active[r]) continue;
      ++stats_.newtonIterations;
      out.iterations[r] = iter + 1;
      ++stats_.matrixSolves;

      vals_ = staticVals_[r];
      std::fill(rhs_.begin(), rhs_.end(), 0.0);
      RhsOnlyStamper rhsOnly(rhs_);
      Solution sx(&x_[r]);
      for (Device* dev : linearDevs_[r]) dev->load(rhsOnly, sx, ctx);

      double* vals = vals_.data();
      double* rhs = rhs_.data();
      for (const auto& [kind, idx] : nonlinearOrder_) {
        if (kind == 0) {
          const BjtPlan& p = bjts_[static_cast<size_t>(idx)];
          if (p.hasRc) scatterQuad(vals, p.rcQuad, p.grc[r]);
          if (p.hasRe) scatterQuad(vals, p.reQuad, p.gre[r]);
          if (p.hasRb) scatterQuad(vals, p.rbQuad, p.oGrb[r]);
          scatterQuad(vals, p.beQuad, p.oGbe[r]);
          if (p.rhsBi >= 0) rhs[p.rhsBi] += -p.oIeqBe[r];
          if (p.rhsEi >= 0) rhs[p.rhsEi] += p.oIeqBe[r];
          scatterQuad(vals, p.bcQuad, p.oGbc[r]);
          if (p.rhsBi >= 0) rhs[p.rhsBi] += -p.oIeqBc[r];
          if (p.rhsCi >= 0) rhs[p.rhsCi] += p.oIeqBc[r];
          const double gmfr = p.oGmf[r] + p.oGmr[r];
          addSlot(vals, p.tr6[0], gmfr);
          addSlot(vals, p.tr6[1], -p.oGmf[r]);
          addSlot(vals, p.tr6[2], -p.oGmr[r]);
          addSlot(vals, p.tr6[3], -(gmfr));
          addSlot(vals, p.tr6[4], p.oGmf[r]);
          addSlot(vals, p.tr6[5], p.oGmr[r]);
          if (p.rhsCi >= 0) rhs[p.rhsCi] += -p.oIeqT[r];
          if (p.rhsEi >= 0) rhs[p.rhsEi] += p.oIeqT[r];
        } else {
          const DiodePlan& p = diodes_[static_cast<size_t>(idx)];
          if (p.hasRs) scatterQuad(vals, p.rsQuad, p.grs[r]);
          scatterQuad(vals, p.jQuad, p.oGd[r]);
          if (p.rhsA >= 0) rhs[p.rhsA] += -p.oIeq[r];
          if (p.rhsC >= 0) rhs[p.rhsC] += p.oIeq[r];
        }
      }

      if (opts_.forceFullFactor) lu_[r]->resetNumeric();
      const bool hadReplay = lu_[r]->hasRecordedFactorization();
      switch (lu_[r]->factor(vals_)) {
        case SparseLU<double>::FactorOutcome::kSingular:
          active[r] = 0;
          needFallback[r] = 1;
          continue;
        case SparseLU<double>::FactorOutcome::kFullFactor:
          ++stats_.fullFactors;
          if (hadReplay) ++stats_.pivotCollapses;
          break;
        case SparseLU<double>::FactorOutcome::kRefactor:
          ++stats_.refactors;
          break;
      }
      lu_[r]->solve(rhs_, xNew_[r]);

      // Convergence: mirrors Analyzer::newtonInner (non-forensics path).
      bool converged = !limited[r];
      if (converged) {
        for (int i = 0; i < n; ++i) {
          const double oldV = x_[r][static_cast<size_t>(i)];
          const double newV = xNew_[r][static_cast<size_t>(i)];
          const bool isVoltage = (i + 1) < nodeCount;
          const double tol =
              (isVoltage ? ao.vntol : ao.abstol) +
              ao.reltol * std::max(std::fabs(oldV), std::fabs(newV));
          if (std::fabs(newV - oldV) > tol) {
            converged = false;
            break;
          }
        }
      }
      x_[r] = xNew_[r];
      if ((converged && iter > 0) ||
          (converged && iter == 0 && nonlinearOrder_.empty())) {
        active[r] = 0;
        continue;
      }
      anyActive = true;
    }
  }

  // Replicas that went singular or ran out of iterations take the full
  // scalar path — a fresh Analyzer on their own circuit runs the same
  // plain Newton again, then gmin and source stepping, exactly what a
  // scalar caller would have experienced.
  for (size_t r = 0; r < R; ++r) {
    if (!active[r] && !needFallback[r]) continue;
    Analyzer an(*circuits_[r], opts_.analysis);
    x_[r] = an.op();
    out.fellBack[r] = 1;
    out.iterations[r] = static_cast<int>(an.stats().newtonIterations);
    ++stats_.fallbacks;
  }

  out.x = x_;
  if (obs::metricsEnabled()) {
    static const obs::Histogram hOp = obs::histogram("spice.batch.solve_ns");
    hOp.observe(nowNs() - t0);
  }
  publishStats();
  return out;
}

void ReplicaBatch::publishStats() {
  const BatchStats d{
      stats_.ops - published_.ops,
      stats_.newtonIterations - published_.newtonIterations,
      stats_.matrixSolves - published_.matrixSolves,
      stats_.fullFactors - published_.fullFactors,
      stats_.refactors - published_.refactors,
      stats_.pivotCollapses - published_.pivotCollapses,
      stats_.fallbacks - published_.fallbacks,
      stats_.patternInserts - published_.patternInserts,
  };
  published_ = stats_;
  if (!obs::metricsEnabled()) return;
  static const obs::Counter cReplicas = obs::counter("spice.batch.replicas");
  static const obs::Counter cNewton =
      obs::counter("spice.batch.newton_iterations");
  static const obs::Counter cFull = obs::counter("spice.batch.full_factors");
  static const obs::Counter cRefactor = obs::counter("spice.batch.refactors");
  static const obs::Counter cCollapse =
      obs::counter("spice.batch.pivot_collapses");
  static const obs::Counter cFallback = obs::counter("spice.batch.fallbacks");
  cReplicas.add(d.ops * static_cast<long>(circuits_.size()));
  cNewton.add(d.newtonIterations);
  cFull.add(d.fullFactors);
  cRefactor.add(d.refactors);
  cCollapse.add(d.pivotCollapses);
  cFallback.add(d.fallbacks);
}

}  // namespace ahfic::spice
