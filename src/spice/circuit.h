#pragma once
// Circuit: the netlist container. Owns nodes, devices and model cards.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spice/device.h"
#include "spice/models.h"

namespace ahfic::spice {

/// A flat netlist: named nodes, devices and model cards.
///
/// Node id 0 is ground and answers to the names "0", "gnd" and "GND".
/// Devices may allocate internal nodes (e.g. the BJT's intrinsic base);
/// these get synthesised names like "q1#base".
class Circuit {
 public:
  Circuit();

  /// Returns the id for `name`, creating the node if needed.
  int node(const std::string& name);
  /// Returns the id for `name` or -1 when it does not exist (const lookup).
  int findNode(const std::string& name) const;
  /// Name of node `id`.
  const std::string& nodeName(int id) const;
  /// Total node count including ground.
  int nodeCount() const { return static_cast<int>(nodeNames_.size()); }

  /// Creates a fresh internal node with a unique, '#'-qualified name.
  int internalNode(const std::string& base);

  /// Adds a device; the circuit takes ownership. Device names must be
  /// unique (case-insensitive); throws ahfic::Error on duplicates.
  Device& addDevice(std::unique_ptr<Device> dev);

  /// Typed convenience: `addDevice(std::make_unique<T>(args...))` returning T&.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    addDevice(std::move(dev));
    return ref;
  }

  /// Finds a device by name (case-insensitive); nullptr when absent.
  Device* findDevice(const std::string& name);
  const Device* findDevice(const std::string& name) const;

  /// Removes the device named `name`; returns true if it existed.
  bool removeDevice(const std::string& name);

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Model-card registries (keyed by lower-cased model name).
  void addBjtModel(const std::string& name, BjtModel model);
  void addDiodeModel(const std::string& name, DiodeModel model);
  const BjtModel& bjtModel(const std::string& name) const;
  const DiodeModel& diodeModel(const std::string& name) const;
  bool hasBjtModel(const std::string& name) const;

  /// Whole registries, for enumeration (lint, listings).
  const std::map<std::string, BjtModel>& bjtModels() const {
    return bjtModels_;
  }
  const std::map<std::string, DiodeModel>& diodeModels() const {
    return diodeModels_;
  }

  /// Source-line bookkeeping: the deck parser records the 1-based line
  /// each device came from so later passes (lint) can point at it.
  void setDeviceLine(const std::string& name, int line);
  /// Deck line of device `name`, or -1 when unknown / built in C++.
  int deviceLine(const std::string& name) const;

  /// Simulator temperature in Celsius (affects junction physics).
  double temperatureC() const { return temperatureC_; }
  void setTemperatureC(double t) { temperatureC_ = t; }

 private:
  std::vector<std::string> nodeNames_;
  std::map<std::string, int> nodeIds_;  // lower-cased name -> id
  std::vector<std::unique_ptr<Device>> devices_;
  std::map<std::string, size_t> deviceIndex_;  // lower-cased name -> index
  std::map<std::string, BjtModel> bjtModels_;
  std::map<std::string, DiodeModel> diodeModels_;
  std::map<std::string, int> deviceLines_;  // lower-cased name -> deck line
  double temperatureC_ = 27.0;
  int internalCounter_ = 0;
};

}  // namespace ahfic::spice
