#include "spice/fourier.h"

#include <cmath>

#include "util/error.h"
#include "util/numeric.h"
#include "util/units.h"

namespace ahfic::spice {

using util::constants::kTwoPi;

double FourierResult::thd() const {
  if (amplitudes.empty() || amplitudes[0] <= 0.0) return 0.0;
  double sum2 = 0.0;
  for (size_t h = 1; h < amplitudes.size(); ++h)
    sum2 += amplitudes[h] * amplitudes[h];
  return std::sqrt(sum2) / amplitudes[0];
}

FourierResult fourierAnalysis(const TranResult& tran, int node,
                              double fundamentalHz, int nHarmonics,
                              int periods) {
  if (fundamentalHz <= 0.0 || nHarmonics < 1 || periods < 1)
    throw Error("fourierAnalysis: bad arguments");
  if (tran.time.size() < 16)
    throw Error("fourierAnalysis: transient record too short");

  const double period = 1.0 / fundamentalHz;
  const double tEnd = tran.time.back();
  const double tStart = tEnd - periods * period;
  if (tStart < tran.time.front())
    throw Error("fourierAnalysis: record shorter than requested periods");

  const auto wave = tran.voltage(node);

  // Resample the (non-uniform) transient onto a uniform grid over the
  // analysis window, then correlate. 256 samples per period is ample for
  // <= ~20 harmonics.
  const int perPeriod = 256;
  const int n = perPeriod * periods;
  FourierResult result;
  result.fundamentalHz = fundamentalHz;
  result.amplitudes.assign(static_cast<size_t>(nHarmonics), 0.0);
  result.phasesDeg.assign(static_cast<size_t>(nHarmonics), 0.0);

  std::vector<double> re(static_cast<size_t>(nHarmonics), 0.0);
  std::vector<double> im(static_cast<size_t>(nHarmonics), 0.0);
  double dc = 0.0;
  for (int k = 0; k < n; ++k) {
    const double t = tStart + (tEnd - tStart) * k / n;
    const double v = util::interp1(tran.time, wave, t);
    dc += v;
    for (int h = 0; h < nHarmonics; ++h) {
      const double ph = kTwoPi * fundamentalHz * (h + 1) * (t - tStart);
      re[static_cast<size_t>(h)] += v * std::cos(ph);
      im[static_cast<size_t>(h)] += v * std::sin(ph);
    }
  }
  result.dcComponent = dc / n;
  for (int h = 0; h < nHarmonics; ++h) {
    const auto hs = static_cast<size_t>(h);
    result.amplitudes[hs] =
        2.0 * std::sqrt(re[hs] * re[hs] + im[hs] * im[hs]) / n;
    result.phasesDeg[hs] =
        std::atan2(im[hs], re[hs]) * 180.0 / util::constants::kPi;
  }
  return result;
}

}  // namespace ahfic::spice
