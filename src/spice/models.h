#pragma once
// Model cards. Field names and defaults follow Berkeley SPICE 2G6 [2] so
// that decks and generated cards read like ordinary .MODEL lines.

#include <string>

namespace ahfic::spice {

/// Junction diode model (SPICE D model, subset sufficient for this project).
struct DiodeModel {
  double is = 1e-14;   ///< saturation current [A]
  double n = 1.0;      ///< emission coefficient
  double rs = 0.0;     ///< ohmic series resistance [ohm]
  double cj0 = 0.0;    ///< zero-bias junction capacitance [F]
  double vj = 1.0;     ///< junction potential [V]
  double m = 0.5;      ///< grading coefficient
  double tt = 0.0;     ///< transit time [s]
  double fc = 0.5;     ///< forward-bias depletion-cap coefficient
  double bv = 0.0;     ///< reverse breakdown voltage [V]; 0 = none
  double ibv = 1e-3;   ///< current at breakdown [A]
  double eg = 1.11;    ///< bandgap energy [eV] for IS(T)
  double xti = 3.0;    ///< IS temperature exponent
};

/// Gummel-Poon BJT model (SPICE NPN/PNP card).
///
/// The geometry-dependent members — rb, rbm, re, rc, cje, cjc, cjs, is, ikf,
/// ise, tf — are exactly the set the paper's Sec. 4 generator rewrites per
/// transistor shape; everything else is shape-independent process data.
struct BjtModel {
  bool pnp = false;    ///< polarity; false = NPN

  // DC currents and gains.
  double is = 1e-16;   ///< transport saturation current [A]
  double bf = 100.0;   ///< ideal maximum forward beta
  double br = 1.0;     ///< ideal maximum reverse beta
  double nf = 1.0;     ///< forward emission coefficient
  double nr = 1.0;     ///< reverse emission coefficient
  double vaf = 0.0;    ///< forward Early voltage [V]; 0 = infinite
  double var = 0.0;    ///< reverse Early voltage [V]; 0 = infinite
  double ikf = 0.0;    ///< forward-beta high-current knee [A]; 0 = none
  double ikr = 0.0;    ///< reverse knee [A]; 0 = none
  double ise = 0.0;    ///< B-E leakage saturation current [A]
  double ne = 1.5;     ///< B-E leakage emission coefficient
  double isc = 0.0;    ///< B-C leakage saturation current [A]
  double nc = 2.0;     ///< B-C leakage emission coefficient

  // Parasitic resistances (the shape-dependent set of Sec. 4).
  double rb = 0.0;     ///< zero-bias base resistance [ohm]
  double irb = 0.0;    ///< current where RB falls halfway to RBM [A]
  double rbm = 0.0;    ///< minimum high-current base resistance [ohm]
  double re = 0.0;     ///< emitter resistance [ohm]
  double rc = 0.0;     ///< collector resistance [ohm]

  // Junction capacitances.
  double cje = 0.0;    ///< zero-bias B-E depletion capacitance [F]
  double vje = 0.75;   ///< B-E built-in potential [V]
  double mje = 0.33;   ///< B-E grading coefficient
  double cjc = 0.0;    ///< zero-bias B-C depletion capacitance [F]
  double vjc = 0.75;   ///< B-C built-in potential [V]
  double mjc = 0.33;   ///< B-C grading coefficient
  double xcjc = 1.0;   ///< fraction of CJC at the internal base node
  double cjs = 0.0;    ///< zero-bias collector-substrate capacitance [F]
  double vjs = 0.75;   ///< C-S built-in potential [V]
  double mjs = 0.5;    ///< C-S grading coefficient
  double fc = 0.5;     ///< forward-bias depletion-cap coefficient

  // Temperature coefficients (Tnom = 27 C).
  double eg = 1.11;    ///< bandgap energy [eV] for IS(T)
  double xti = 3.0;    ///< IS temperature exponent
  double xtb = 0.0;    ///< beta temperature exponent

  // Transit times.
  double tf = 0.0;     ///< ideal forward transit time [s]
  double xtf = 0.0;    ///< TF bias-dependence coefficient
  double vtf = 0.0;    ///< TF dependence on Vbc [V]; 0 = none
  double itf = 0.0;    ///< TF dependence on Ic [A]; 0 = none
  double tr = 0.0;     ///< reverse transit time [s]

  /// Renders the card as a SPICE `.MODEL <name> NPN(...)` line.
  std::string toSpiceLine(const std::string& name) const;
};

}  // namespace ahfic::spice
