#include "spice/passive.h"

#include "util/error.h"

namespace ahfic::spice {

Resistor::Resistor(std::string name, int a, int b, double ohms)
    : Device(std::move(name), {a, b}), ohms_(ohms) {
  if (!(ohms > 0.0))
    throw Error("resistor " + this->name() + ": resistance must be > 0");
}

void Resistor::setResistance(double ohms) {
  if (!(ohms > 0.0))
    throw Error("resistor " + name() + ": resistance must be > 0");
  ohms_ = ohms;
}

void Resistor::load(Stamper& s, const Solution&, const LoadContext&) {
  SlotWriter w(s, stampMemo());
  w.addConductance(nodes()[0], nodes()[1], 1.0 / ohms_);
}

void Resistor::loadAc(AcStamper& s, const Solution&, double) {
  AcSlotWriter w(s, stampMemoAc());
  w.addAdmittance(nodes()[0], nodes()[1], {1.0 / ohms_, 0.0});
}

void Resistor::appendNoise(std::vector<NoiseSourceDesc>& out,
                           const Solution&, double tempK) const {
  // Johnson-Nyquist: S_i = 4kT/R.
  NoiseSourceDesc n;
  n.a = nodes()[0];
  n.b = nodes()[1];
  n.white = 4.0 * 1.380649e-23 * tempK / ohms_;
  n.label = name() + " thermal";
  out.push_back(std::move(n));
}

Capacitor::Capacitor(std::string name, int a, int b, double farads)
    : Device(std::move(name), {a, b}), farads_(farads) {
  if (farads < 0.0)
    throw Error("capacitor " + this->name() + ": capacitance must be >= 0");
}

void Capacitor::load(Stamper& s, const Solution& x, const LoadContext& ctx) {
  const int a = nodes()[0], b = nodes()[1];
  const double v = x.diff(a, b);
  const double q = farads_ * v;
  const double dqdt = ctx.integrate(stateBase(), q);
  if (ctx.c0 == 0.0) return;  // DC: open circuit
  const double geq = farads_ * ctx.c0;
  // i = dqdt at v*, linearised: g = geq, ieq = dqdt - geq*v*
  SlotWriter w(s, stampMemo());
  w.addNonlinearBranch(a, b, geq, dqdt - geq * v);
}

void Capacitor::loadAc(AcStamper& s, const Solution&, double omega) {
  AcSlotWriter w(s, stampMemoAc());
  w.addAdmittance(nodes()[0], nodes()[1], {0.0, omega * farads_});
}

Inductor::Inductor(std::string name, int a, int b, double henries)
    : Device(std::move(name), {a, b}), henries_(henries) {
  if (!(henries > 0.0))
    throw Error("inductor " + this->name() + ": inductance must be > 0");
}

void Inductor::load(Stamper& s, const Solution& x, const LoadContext& ctx) {
  const int a = nodes()[0], b = nodes()[1];
  const int br = branchId();
  SlotWriter w(s, stampMemo());
  // KCL coupling: branch current leaves a, enters b.
  w.addA(a, br, 1.0);
  w.addA(b, br, -1.0);
  // Branch equation: v(a) - v(b) - dphi/dt = 0 with phi = L * I.
  w.addA(br, a, 1.0);
  w.addA(br, b, -1.0);
  const double current = x.at(br);
  const double phi = henries_ * current;
  const double dphidt = ctx.integrate(stateBase(), phi);
  if (ctx.c0 == 0.0) return;  // DC: short (v(a) - v(b) = 0)
  // dphi/dt linearised in I: d(dphidt)/dI = c0 * L.
  const double geq = ctx.c0 * henries_;
  w.addA(br, br, -geq);
  // Residual constant: dphidt(I*) - geq*I* must move to the RHS.
  w.addRhs(br, dphidt - geq * current);
}

void Inductor::loadAc(AcStamper& s, const Solution&, double omega) {
  const int a = nodes()[0], b = nodes()[1];
  const int br = branchId();
  AcSlotWriter w(s, stampMemoAc());
  w.addA(a, br, {1.0, 0.0});
  w.addA(b, br, {-1.0, 0.0});
  w.addA(br, a, {1.0, 0.0});
  w.addA(br, b, {-1.0, 0.0});
  w.addA(br, br, {0.0, -omega * henries_});
}

}  // namespace ahfic::spice
