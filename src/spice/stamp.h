#pragma once
// Stamping interfaces through which devices contribute to the MNA system.
//
// `Stamper` (real, DC/transient) and `AcStamper` (complex, AC) hide the
// matrix backend (dense or sparse) and perform the unknown-id -> row
// mapping, dropping any contribution that involves ground (id 0).
//
// The CSR backend adds a slot protocol on top: a stamper bound to a
// CsrPattern exposes patternEpoch()/locateA()/addAt(), and devices wrap
// whatever stamper they are handed in a SlotWriter that memoizes the
// slot of every matrix position they touch (see StampMemo). After the
// first assemble against a pattern revision, re-stamping is a straight
// replay of cached value-array indices — no binary search, no map
// insertions. The memo self-heals: every replayed entry is verified
// against the (row, col) key actually being stamped, so call sequences
// that differ between analysis modes (DC stamps fewer companion
// entries than transient) just rewrite the memo from the point of
// divergence instead of corrupting it.

#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

#include "spice/csr.h"
#include "spice/linalg.h"

namespace ahfic::spice {

/// Sentinel slots used by the slot protocol below.
inline constexpr int kStampSlotGround = -1;  ///< touches ground; dropped
inline constexpr int kStampSlotMiss = -2;    ///< not in the pattern (yet)

/// Per-device cache of matrix slots, in stamp-call order. Valid only for
/// the pattern revision named by `epoch`; a SlotWriter clears it on any
/// epoch change, so devices never need to invalidate it themselves.
struct StampMemo {
  std::uint64_t epoch = 0;
  std::vector<std::pair<std::uint64_t, int>> entries;  ///< (rc key, slot)
};

/// Real-valued stamping target for DC and transient loads.
class Stamper {
 public:
  virtual ~Stamper() = default;

  /// Adds `v` to matrix entry (row of `idRow`, column of `idCol`).
  virtual void addA(int idRow, int idCol, double v) = 0;
  /// Adds `v` to the right-hand side at `idRow`.
  virtual void addRhs(int idRow, double v) = 0;

  /// Epoch of the CSR pattern this stamper writes through, or 0 when the
  /// backend has no stable slot addressing (dense, pattern discovery).
  virtual std::uint64_t patternEpoch() const { return 0; }
  /// Slot for (idRow, idCol): a value-array index, kStampSlotGround, or
  /// kStampSlotMiss. Only meaningful when patternEpoch() != 0.
  virtual int locateA(int idRow, int idCol) {
    (void)idRow;
    (void)idCol;
    return kStampSlotMiss;
  }
  /// Accumulates `v` directly at a slot returned by locateA().
  virtual void addAt(int slot, double v) {
    (void)slot;
    (void)v;
  }

  /// Conductance `g` between unknowns `a` and `b` (two-terminal element).
  void addConductance(int a, int b, double g) {
    addA(a, a, g);
    addA(b, b, g);
    addA(a, b, -g);
    addA(b, a, -g);
  }

  /// Transconductance: current g*(v(cp)-v(cn)) flowing from `a` to `b`
  /// (out of a, into b... specifically: into node a is -g*vc, into b +g*vc).
  void addTransconductance(int a, int b, int cp, int cn, double g) {
    addA(a, cp, g);
    addA(a, cn, -g);
    addA(b, cp, -g);
    addA(b, cn, g);
  }

  /// Independent current `i` flowing *into* unknown `id`'s node.
  void addCurrent(int id, double i) { addRhs(id, i); }

  /// Companion-model stamp for a nonlinear branch from `a` to `b` carrying
  /// current i(v) with v = v(a)-v(b): conductance g = di/dv and equivalent
  /// source ieq = i(v*) - g*v*.
  void addNonlinearBranch(int a, int b, double g, double ieq) {
    addConductance(a, b, g);
    addRhs(a, -ieq);
    addRhs(b, ieq);
  }
};

/// Complex-valued stamping target for AC small-signal loads.
class AcStamper {
 public:
  virtual ~AcStamper() = default;

  virtual void addA(int idRow, int idCol, std::complex<double> v) = 0;
  virtual void addRhs(int idRow, std::complex<double> v) = 0;

  /// Slot protocol; see Stamper for semantics.
  virtual std::uint64_t patternEpoch() const { return 0; }
  virtual int locateA(int idRow, int idCol) {
    (void)idRow;
    (void)idCol;
    return kStampSlotMiss;
  }
  virtual void addAt(int slot, std::complex<double> v) {
    (void)slot;
    (void)v;
  }

  void addAdmittance(int a, int b, std::complex<double> y) {
    addA(a, a, y);
    addA(b, b, y);
    addA(a, b, -y);
    addA(b, a, -y);
  }

  void addTransadmittance(int a, int b, int cp, int cn,
                          std::complex<double> y) {
    addA(a, cp, y);
    addA(a, cn, -y);
    addA(b, cp, -y);
    addA(b, cn, y);
  }
};

/// Dense-backed real stamper.
class DenseStamper final : public Stamper {
 public:
  DenseStamper(DenseMatrix<double>& a, std::vector<double>& rhs)
      : a_(a), rhs_(rhs) {}
  void addA(int r, int c, double v) override {
    if (r > 0 && c > 0) a_.at(r - 1, c - 1) += v;
  }
  void addRhs(int r, double v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  DenseMatrix<double>& a_;
  std::vector<double>& rhs_;
};

/// Sparse-backed real stamper.
class SparseStamper final : public Stamper {
 public:
  SparseStamper(SparseMatrix<double>& a, std::vector<double>& rhs)
      : a_(a), rhs_(rhs) {}
  void addA(int r, int c, double v) override {
    if (r > 0 && c > 0) a_.add(r - 1, c - 1, v);
  }
  void addRhs(int r, double v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  SparseMatrix<double>& a_;
  std::vector<double>& rhs_;
};

/// Dense-backed complex stamper for AC.
class DenseAcStamper final : public AcStamper {
 public:
  DenseAcStamper(DenseMatrix<std::complex<double>>& a,
                 std::vector<std::complex<double>>& rhs)
      : a_(a), rhs_(rhs) {}
  void addA(int r, int c, std::complex<double> v) override {
    if (r > 0 && c > 0) a_.at(r - 1, c - 1) += v;
  }
  void addRhs(int r, std::complex<double> v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  DenseMatrix<std::complex<double>>& a_;
  std::vector<std::complex<double>>& rhs_;
};

/// CSR-backed stamper (real or complex): values land in a slot-ordered
/// array parallel to the pattern's colIdx(). Positions missing from the
/// pattern are collected into `pending` (as 0-based matrix coordinates)
/// instead of being written; the engine grows the pattern and re-stamps,
/// so no contribution is ever silently lost.
template <typename Base, typename V>
class CsrStamperT final : public Base {
 public:
  CsrStamperT(const CsrPattern& pat, std::vector<V>& vals,
              std::vector<V>& rhs,
              std::vector<std::pair<int, int>>* pending = nullptr)
      : pat_(pat), vals_(vals), rhs_(rhs), pending_(pending) {}

  void addA(int r, int c, V v) override {
    if (r <= 0 || c <= 0) return;
    const int slot = pat_.slot(r - 1, c - 1);
    if (slot < 0) {
      if (pending_ != nullptr) pending_->emplace_back(r - 1, c - 1);
      return;
    }
    vals_[static_cast<size_t>(slot)] += v;
  }
  void addRhs(int r, V v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

  std::uint64_t patternEpoch() const override { return pat_.epoch(); }
  int locateA(int r, int c) override {
    if (r <= 0 || c <= 0) return kStampSlotGround;
    const int slot = pat_.slot(r - 1, c - 1);
    return slot < 0 ? kStampSlotMiss : slot;
  }
  void addAt(int slot, V v) override {
    vals_[static_cast<size_t>(slot)] += v;
  }

 private:
  const CsrPattern& pat_;
  std::vector<V>& vals_;
  std::vector<V>& rhs_;
  std::vector<std::pair<int, int>>* pending_;
};

using CsrStamper = CsrStamperT<Stamper, double>;
using CsrAcStamper = CsrStamperT<AcStamper, std::complex<double>>;

/// Device-side memoizing front end over any stamper. Constructed at the
/// top of a device's load()/loadAc() around the stamper it was handed;
/// when the backend exposes a pattern epoch, every addA resolves through
/// the device's StampMemo (fast replay of cached slots, key-verified so
/// a diverging call sequence heals itself); otherwise calls forward
/// untouched. Mirrors the convenience helpers of Stamper/AcStamper so
/// device bodies read the same as before.
template <typename S, typename V>
class SlotWriterT {
 public:
  SlotWriterT(S& s, StampMemo& memo) : s_(s), memo_(memo) {
    const std::uint64_t e = s.patternEpoch();
    fast_ = e != 0;
    if (fast_ && memo_.epoch != e) {
      memo_.entries.clear();
      memo_.epoch = e;
    }
  }

  void addA(int r, int c, V v) {
    if (!fast_) {
      s_.addA(r, c, v);
      return;
    }
    const std::uint64_t key = packKey(r, c);
    if (cursor_ < memo_.entries.size() &&
        memo_.entries[cursor_].first == key) {
      const int slot = memo_.entries[cursor_++].second;
      if (slot >= 0)
        s_.addAt(slot, v);
      else if (slot == kStampSlotMiss)
        s_.addA(r, c, v);  // keeps feeding `pending` until the pattern grows
      return;
    }
    // First pass over this position, or the call sequence diverged from
    // the memo (e.g. DC -> transient): resolve and overwrite in place.
    const int slot = s_.locateA(r, c);
    if (cursor_ < memo_.entries.size())
      memo_.entries[cursor_] = {key, slot};
    else
      memo_.entries.emplace_back(key, slot);
    ++cursor_;
    if (slot >= 0)
      s_.addAt(slot, v);
    else if (slot == kStampSlotMiss)
      s_.addA(r, c, v);
  }
  void addRhs(int r, V v) { s_.addRhs(r, v); }

  // Stamper-style helpers (real path).
  void addConductance(int a, int b, V g) {
    addA(a, a, g);
    addA(b, b, g);
    addA(a, b, -g);
    addA(b, a, -g);
  }
  void addTransconductance(int a, int b, int cp, int cn, V g) {
    addA(a, cp, g);
    addA(a, cn, -g);
    addA(b, cp, -g);
    addA(b, cn, g);
  }
  void addCurrent(int id, V i) { addRhs(id, i); }
  void addNonlinearBranch(int a, int b, V g, V ieq) {
    addConductance(a, b, g);
    addRhs(a, -ieq);
    addRhs(b, ieq);
  }

  // AcStamper-style helpers (complex path).
  void addAdmittance(int a, int b, V y) { addConductance(a, b, y); }
  void addTransadmittance(int a, int b, int cp, int cn, V y) {
    addTransconductance(a, b, cp, cn, y);
  }

 private:
  static std::uint64_t packKey(int r, int c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) |
           static_cast<std::uint32_t>(c);
  }

  S& s_;
  StampMemo& memo_;
  size_t cursor_ = 0;
  bool fast_ = false;
};

using SlotWriter = SlotWriterT<Stamper, double>;
using AcSlotWriter = SlotWriterT<AcStamper, std::complex<double>>;

/// Structure-discovery stamper: records every non-ground matrix position
/// (0-based) a load touches and ignores values/RHS. The engine runs the
/// device list through this once per topology to prime the CsrPattern.
template <typename Base, typename V>
class PatternStamperT final : public Base {
 public:
  explicit PatternStamperT(std::vector<std::pair<int, int>>& out)
      : out_(out) {}
  void addA(int r, int c, V) override {
    if (r > 0 && c > 0) out_.emplace_back(r - 1, c - 1);
  }
  void addRhs(int, V) override {}

 private:
  std::vector<std::pair<int, int>>& out_;
};

using PatternStamper = PatternStamperT<Stamper, double>;
using AcPatternStamper = PatternStamperT<AcStamper, std::complex<double>>;

/// RHS-only stamper: matrix writes vanish, RHS writes land. Used for the
/// per-iteration pass over reactive linear devices whose matrix stamps
/// live in the cached static baseline but whose companion RHS (and
/// charge-state recording via LoadContext::integrate) depends on the
/// candidate solution.
class RhsOnlyStamper final : public Stamper {
 public:
  explicit RhsOnlyStamper(std::vector<double>& rhs) : rhs_(rhs) {}
  void addA(int, int, double) override {}
  void addRhs(int r, double v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  std::vector<double>& rhs_;
};

/// Stamper that discards everything; used when a load is run only for
/// its side effects (charge-state recording into LoadContext::state).
class StateOnlyStamper final : public Stamper {
 public:
  void addA(int, int, double) override {}
  void addRhs(int, double) override {}
};

}  // namespace ahfic::spice
