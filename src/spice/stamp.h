#pragma once
// Stamping interfaces through which devices contribute to the MNA system.
//
// `Stamper` (real, DC/transient) and `AcStamper` (complex, AC) hide the
// matrix backend (dense or sparse) and perform the unknown-id -> row
// mapping, dropping any contribution that involves ground (id 0).

#include <complex>

#include "spice/linalg.h"

namespace ahfic::spice {

/// Real-valued stamping target for DC and transient loads.
class Stamper {
 public:
  virtual ~Stamper() = default;

  /// Adds `v` to matrix entry (row of `idRow`, column of `idCol`).
  virtual void addA(int idRow, int idCol, double v) = 0;
  /// Adds `v` to the right-hand side at `idRow`.
  virtual void addRhs(int idRow, double v) = 0;

  /// Conductance `g` between unknowns `a` and `b` (two-terminal element).
  void addConductance(int a, int b, double g) {
    addA(a, a, g);
    addA(b, b, g);
    addA(a, b, -g);
    addA(b, a, -g);
  }

  /// Transconductance: current g*(v(cp)-v(cn)) flowing from `a` to `b`
  /// (out of a, into b... specifically: into node a is -g*vc, into b +g*vc).
  void addTransconductance(int a, int b, int cp, int cn, double g) {
    addA(a, cp, g);
    addA(a, cn, -g);
    addA(b, cp, -g);
    addA(b, cn, g);
  }

  /// Independent current `i` flowing *into* unknown `id`'s node.
  void addCurrent(int id, double i) { addRhs(id, i); }

  /// Companion-model stamp for a nonlinear branch from `a` to `b` carrying
  /// current i(v) with v = v(a)-v(b): conductance g = di/dv and equivalent
  /// source ieq = i(v*) - g*v*.
  void addNonlinearBranch(int a, int b, double g, double ieq) {
    addConductance(a, b, g);
    addRhs(a, -ieq);
    addRhs(b, ieq);
  }
};

/// Complex-valued stamping target for AC small-signal loads.
class AcStamper {
 public:
  virtual ~AcStamper() = default;

  virtual void addA(int idRow, int idCol, std::complex<double> v) = 0;
  virtual void addRhs(int idRow, std::complex<double> v) = 0;

  void addAdmittance(int a, int b, std::complex<double> y) {
    addA(a, a, y);
    addA(b, b, y);
    addA(a, b, -y);
    addA(b, a, -y);
  }

  void addTransadmittance(int a, int b, int cp, int cn,
                          std::complex<double> y) {
    addA(a, cp, y);
    addA(a, cn, -y);
    addA(b, cp, -y);
    addA(b, cn, y);
  }
};

/// Dense-backed real stamper.
class DenseStamper final : public Stamper {
 public:
  DenseStamper(DenseMatrix<double>& a, std::vector<double>& rhs)
      : a_(a), rhs_(rhs) {}
  void addA(int r, int c, double v) override {
    if (r > 0 && c > 0) a_.at(r - 1, c - 1) += v;
  }
  void addRhs(int r, double v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  DenseMatrix<double>& a_;
  std::vector<double>& rhs_;
};

/// Sparse-backed real stamper.
class SparseStamper final : public Stamper {
 public:
  SparseStamper(SparseMatrix<double>& a, std::vector<double>& rhs)
      : a_(a), rhs_(rhs) {}
  void addA(int r, int c, double v) override {
    if (r > 0 && c > 0) a_.add(r - 1, c - 1, v);
  }
  void addRhs(int r, double v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  SparseMatrix<double>& a_;
  std::vector<double>& rhs_;
};

/// Dense-backed complex stamper for AC.
class DenseAcStamper final : public AcStamper {
 public:
  DenseAcStamper(DenseMatrix<std::complex<double>>& a,
                 std::vector<std::complex<double>>& rhs)
      : a_(a), rhs_(rhs) {}
  void addA(int r, int c, std::complex<double> v) override {
    if (r > 0 && c > 0) a_.at(r - 1, c - 1) += v;
  }
  void addRhs(int r, std::complex<double> v) override {
    if (r > 0) rhs_[static_cast<size_t>(r - 1)] += v;
  }

 private:
  DenseMatrix<std::complex<double>>& a_;
  std::vector<std::complex<double>>& rhs_;
};

}  // namespace ahfic::spice
