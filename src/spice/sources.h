#pragma once
// Independent and controlled sources.
//
// Independent sources carry a time-domain Waveform (DC/SIN/PULSE/PWL/EXP)
// plus an AC magnitude/phase used only by the AC analysis. Controlled
// sources are the four SPICE types E (VCVS), G (VCCS), F (CCCS), H (CCVS);
// the current-controlled ones reference the branch current of a named
// voltage source, as in SPICE.

#include <memory>
#include <string>
#include <vector>

#include "spice/device.h"

namespace ahfic::spice {

/// Time-domain source waveform.
class Waveform {
 public:
  virtual ~Waveform() = default;
  /// Value at time `t` (t = 0 for DC analyses).
  virtual double value(double t) const = 0;
  /// Value used by DC analyses (the SPICE "DC value" / t=0 convention).
  virtual double dcValue() const { return value(0.0); }
  /// True for waveforms whose value changes with time (everything except
  /// DC). Lint uses this to spot transient specs without a .TRAN card.
  virtual bool isTimeVarying() const { return true; }
};

/// Constant value.
class DcWaveform final : public Waveform {
 public:
  explicit DcWaveform(double v) : v_(v) {}
  double value(double) const override { return v_; }
  bool isTimeVarying() const override { return false; }

 private:
  double v_;
};

/// SIN(VO VA FREQ TD THETA): offset + damped sine starting at TD.
class SinWaveform final : public Waveform {
 public:
  SinWaveform(double offset, double amplitude, double freqHz,
              double delay = 0.0, double theta = 0.0);
  double value(double t) const override;
  double dcValue() const override { return offset_; }

 private:
  double offset_, amplitude_, freq_, delay_, theta_;
};

/// PULSE(V1 V2 TD TR TF PW PER).
class PulseWaveform final : public Waveform {
 public:
  PulseWaveform(double v1, double v2, double delay, double rise, double fall,
                double width, double period);
  double value(double t) const override;
  double dcValue() const override { return v1_; }

 private:
  double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// PWL(t1 v1 t2 v2 ...): piecewise linear, clamped at the ends.
class PwlWaveform final : public Waveform {
 public:
  /// `points` are (time, value) pairs with strictly increasing times.
  explicit PwlWaveform(std::vector<std::pair<double, double>> points);
  double value(double t) const override;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// EXP(V1 V2 TD1 TAU1 TD2 TAU2).
class ExpWaveform final : public Waveform {
 public:
  ExpWaveform(double v1, double v2, double td1, double tau1, double td2,
              double tau2);
  double value(double t) const override;
  double dcValue() const override { return v1_; }

 private:
  double v1_, v2_, td1_, tau1_, td2_, tau2_;
};

/// SFFM(VO VA FC MDI FS): single-frequency FM.
class SffmWaveform final : public Waveform {
 public:
  SffmWaveform(double offset, double amplitude, double carrierHz,
               double modIndex, double signalHz);
  double value(double t) const override;
  double dcValue() const override { return offset_; }

 private:
  double offset_, amplitude_, fc_, mdi_, fs_;
};

/// AM(SA OC FM FC TD): amplitude modulation,
/// v = sa * (oc + sin(2*pi*fm*(t-td))) * sin(2*pi*fc*(t-td)).
class AmWaveform final : public Waveform {
 public:
  AmWaveform(double amplitude, double offset, double modHz, double carrierHz,
             double delay = 0.0);
  double value(double t) const override;
  double dcValue() const override { return 0.0; }

 private:
  double sa_, oc_, fm_, fc_, td_;
};

/// Independent voltage source (SPICE V element). One branch unknown.
class VSource final : public Device {
 public:
  VSource(std::string name, int p, int n, std::unique_ptr<Waveform> wave,
          double acMag = 0.0, double acPhaseDeg = 0.0);
  /// Convenience DC constructor.
  VSource(std::string name, int p, int n, double dc, double acMag = 0.0,
          double acPhaseDeg = 0.0);

  int branchCount() const override { return 1; }
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

  /// Replaces the waveform (used by DC sweeps over a source).
  void setWaveform(std::unique_ptr<Waveform> wave) { wave_ = std::move(wave); }
  const Waveform& waveform() const { return *wave_; }
  double acMagnitude() const { return acMag_; }

 private:
  std::unique_ptr<Waveform> wave_;
  double acMag_, acPhaseDeg_;
};

/// Independent current source (SPICE I element), current flows p -> n
/// through the source (into node n externally... SPICE convention: positive
/// current flows from node p through the source to node n).
class ISource final : public Device {
 public:
  ISource(std::string name, int p, int n, std::unique_ptr<Waveform> wave,
          double acMag = 0.0, double acPhaseDeg = 0.0);
  ISource(std::string name, int p, int n, double dc, double acMag = 0.0,
          double acPhaseDeg = 0.0);

  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

  void setWaveform(std::unique_ptr<Waveform> wave) { wave_ = std::move(wave); }
  const Waveform& waveform() const { return *wave_; }
  double acMagnitude() const { return acMag_; }

 private:
  std::unique_ptr<Waveform> wave_;
  double acMag_, acPhaseDeg_;
};

/// VCVS (E): v(p,n) = gain * v(cp,cn). One branch unknown.
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, int p, int n, int cp, int cn, double gain);
  int branchCount() const override { return 1; }
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

 private:
  double gain_;
};

/// VCCS (G): i(p->n) = gm * v(cp,cn).
class Vccs final : public Device {
 public:
  Vccs(std::string name, int p, int n, int cp, int cn, double gm);
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

 private:
  double gm_;
};

/// CCCS (F): i(p->n) = gain * i(Vctrl). References a VSource's branch.
class Cccs final : public Device {
 public:
  Cccs(std::string name, int p, int n, const VSource& ctrl, double gain);
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

 private:
  const VSource& ctrl_;
  double gain_;
};

/// CCVS (H): v(p,n) = r * i(Vctrl). One branch unknown.
class Ccvs final : public Device {
 public:
  Ccvs(std::string name, int p, int n, const VSource& ctrl, double r);
  int branchCount() const override { return 1; }
  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;

 private:
  const VSource& ctrl_;
  double r_;
};

}  // namespace ahfic::spice
