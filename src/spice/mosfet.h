#pragma once
// Level-1 (Shichman-Hodges) MOSFET — SPICE M element.
//
// The paper's systems are bipolar, but the surrounding ICs it describes
// (tuner + "converted to digital signals ... digital signal processing")
// are BiCMOS-era parts; a MOS device rounds out the simulator so mixed
// blocks can be modelled. Square-law model with bulk effect (GAMMA/PHI),
// channel-length modulation (LAMBDA), overlap capacitances and fixed
// junction capacitances.

#include "spice/device.h"

namespace ahfic::spice {

class Circuit;

/// Level-1 MOSFET model card (SPICE NMOS/PMOS).
struct MosModel {
  bool pmos = false;
  double vto = 1.0;     ///< zero-bias threshold [V] (positive for NMOS)
  double kp = 2e-5;     ///< transconductance parameter [A/V^2]
  double gamma = 0.0;   ///< bulk threshold parameter [sqrt(V)]
  double phi = 0.6;     ///< surface potential [V]
  double lambda = 0.0;  ///< channel-length modulation [1/V]
  double rd = 0.0;      ///< drain ohmic resistance [ohm]
  double rs = 0.0;      ///< source ohmic resistance [ohm]
  double cgso = 0.0;    ///< G-S overlap capacitance per width [F/m]
  double cgdo = 0.0;    ///< G-D overlap capacitance per width [F/m]
  double cgbo = 0.0;    ///< G-B overlap capacitance per length [F/m]
  double cox = 0.0;     ///< gate oxide capacitance per area [F/m^2]
  double cbd = 0.0;     ///< fixed B-D junction capacitance [F]
  double cbs = 0.0;     ///< fixed B-S junction capacitance [F]
};

/// MOSFET instance. Node order: drain, gate, source, bulk.
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, Circuit& ckt, int d, int g, int s, int b,
         const MosModel& model, double w = 10e-6, double l = 1e-6);

  int stateCount() const override { return 4; }  // qgs, qgd, qgb, qbd+qbs
  bool isNonlinear() const override { return true; }

  void load(Stamper& s, const Solution& x, const LoadContext& ctx) override;
  void loadAc(AcStamper& s, const Solution& op, double omega) override;
  void appendNoise(std::vector<NoiseSourceDesc>& out, const Solution& op,
                   double tempK) const override;

  /// Drain current and small-signal parameters at the operating point.
  struct OpInfo {
    double id = 0.0;    ///< drain current (into drain for NMOS) [A]
    double vgs = 0.0, vds = 0.0, vbs = 0.0;
    double gm = 0.0, gds = 0.0, gmb = 0.0;
    double vth = 0.0;
    bool saturated = false;
  };
  OpInfo opInfo(const Solution& op) const;

  const MosModel& model() const { return m_; }
  double width() const { return w_; }
  double length() const { return l_; }

 private:
  struct Eval {
    double id;          ///< channel current drain->source (NMOS polarity)
    double gm, gds, gmb;
    double vth;
    bool saturated;
  };
  /// Evaluates at NMOS-polarity voltages; handles vds < 0 by symmetry.
  Eval evaluate(double vgs, double vds, double vbs) const;

  MosModel m_;
  double w_, l_;
  double pol_;  ///< +1 NMOS, -1 PMOS
  int di_, si_;  ///< internal drain/source (== d/s when rd/rs == 0)
};

}  // namespace ahfic::spice
