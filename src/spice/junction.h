#pragma once
// Shared p-n junction physics: exponential current with overflow-safe
// linear continuation, SPICE's pnjlim Newton damping, and depletion
// charge/capacitance with the standard FC linearisation above fc*vj.

#include <cmath>

namespace ahfic::spice {

/// Junction current and conductance: i = isat*(exp(v/vte)-1), linearly
/// continued above `vcrit`-ish voltages to avoid overflow (SPICE style:
/// exponential is evaluated exactly up to an explim; beyond, first-order
/// Taylor continuation keeps i and di/dv continuous).
struct JunctionIV {
  double i;
  double g;  ///< di/dv
};

inline JunctionIV junctionIV(double v, double isat, double vte) {
  constexpr double kMaxExpArg = 80.0;  // exp(80) ~ 5.5e34, still finite
  const double arg = v / vte;
  if (arg > kMaxExpArg) {
    const double e = std::exp(kMaxExpArg);
    const double g = isat * e / vte;
    const double i = isat * (e - 1.0) + g * (v - kMaxExpArg * vte);
    return {i, g};
  }
  if (arg < -kMaxExpArg) {
    // Deep reverse: i -> -isat, tiny slope to keep the Jacobian regular.
    return {-isat, isat / vte * std::exp(-kMaxExpArg)};
  }
  const double e = std::exp(arg);
  return {isat * (e - 1.0), isat * e / vte};
}

/// SPICE pnjlim: limits the Newton update of a junction voltage so the
/// exponential does not explode. `vnew` is the raw update, `vold` the
/// previous iterate, `vt` the (emission-scaled) thermal voltage and
/// `vcrit` = vte*ln(vte/(sqrt(2)*isat)).
inline double pnjlim(double vnew, double vold, double vte, double vcrit) {
  if (vnew > vcrit && std::fabs(vnew - vold) > 2.0 * vte) {
    if (vold > 0.0) {
      const double arg = 1.0 + (vnew - vold) / vte;
      if (arg > 0.0)
        vnew = vold + vte * std::log(arg);
      else
        vnew = vcrit;
    } else {
      vnew = vte * std::log(vnew / vte);
    }
  }
  return vnew;
}

/// Critical voltage for pnjlim.
inline double junctionVcrit(double isat, double vte) {
  return vte * std::log(vte / (1.4142135623730951 * isat));
}

/// Depletion charge and capacitance for a step/graded junction:
///   c(v) = cj0 / (1 - v/vj)^m            for v <  fc*vj
/// linearised (SPICE) above fc*vj so charge and capacitance stay smooth.
struct DepletionQC {
  double q;
  double c;
};

inline DepletionQC depletionQC(double v, double cj0, double vj, double m,
                               double fc) {
  if (cj0 <= 0.0) return {0.0, 0.0};
  const double vf = fc * vj;
  if (v < vf) {
    const double a = 1.0 - v / vj;
    const double c = cj0 * std::pow(a, -m);
    const double q = cj0 * vj / (1.0 - m) * (1.0 - std::pow(a, 1.0 - m));
    return {q, c};
  }
  // Linear continuation: c(v) = cj0/(1-fc)^(1+m) * (1 - fc(1+m) + m v/vj)
  const double f1 = vj / (1.0 - m) * (1.0 - std::pow(1.0 - fc, 1.0 - m));
  const double f2 = std::pow(1.0 - fc, -(1.0 + m));
  const double f3 = 1.0 - fc * (1.0 + m);
  const double c = cj0 * f2 * (f3 + m * v / vj);
  const double q =
      cj0 * (f1 + f2 * (f3 * (v - vf) + 0.5 * m / vj * (v * v - vf * vf)));
  return {q, c};
}

}  // namespace ahfic::spice
