#pragma once
// Solution vector view used by device loads and analysis results.
//
// Unknown-id convention (shared across the spice library):
//   id 0            — ground (always 0.0, never a matrix row)
//   id 1..N-1       — node voltages
//   id N..N+B-1     — branch currents (V sources, inductors, E/H sources)
// Matrix row/column of unknown `id` is `id - 1`.

#include <vector>

namespace ahfic::spice {

/// Read view over the current solution estimate.
class Solution {
 public:
  Solution() = default;
  explicit Solution(const std::vector<double>* values) : values_(values) {}

  /// Value of unknown `id`; ground (id 0) is always 0.
  double at(int id) const {
    if (id <= 0 || values_ == nullptr) return 0.0;
    return (*values_)[static_cast<size_t>(id - 1)];
  }

  /// Voltage difference at(a) - at(b).
  double diff(int a, int b) const { return at(a) - at(b); }

 private:
  const std::vector<double>* values_ = nullptr;
};

}  // namespace ahfic::spice
