#include "spice/models.h"

#include <cstdio>
#include <vector>

namespace ahfic::spice {

namespace {
void appendParam(std::string& out, const char* key, double v, double dflt) {
  if (v == dflt) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.6g", key, v);
  out += buf;
}
}  // namespace

std::string BjtModel::toSpiceLine(const std::string& name) const {
  std::string out = ".MODEL " + name + (pnp ? " PNP(" : " NPN(");
  appendParam(out, "IS", is, -1);
  appendParam(out, "BF", bf, -1);
  appendParam(out, "BR", br, 1.0);
  appendParam(out, "NF", nf, 1.0);
  appendParam(out, "NR", nr, 1.0);
  appendParam(out, "VAF", vaf, 0.0);
  appendParam(out, "VAR", var, 0.0);
  appendParam(out, "IKF", ikf, 0.0);
  appendParam(out, "IKR", ikr, 0.0);
  appendParam(out, "ISE", ise, 0.0);
  appendParam(out, "NE", ne, 1.5);
  appendParam(out, "ISC", isc, 0.0);
  appendParam(out, "NC", nc, 2.0);
  appendParam(out, "RB", rb, 0.0);
  appendParam(out, "IRB", irb, 0.0);
  appendParam(out, "RBM", rbm, 0.0);
  appendParam(out, "RE", re, 0.0);
  appendParam(out, "RC", rc, 0.0);
  appendParam(out, "CJE", cje, 0.0);
  appendParam(out, "VJE", vje, 0.75);
  appendParam(out, "MJE", mje, 0.33);
  appendParam(out, "CJC", cjc, 0.0);
  appendParam(out, "VJC", vjc, 0.75);
  appendParam(out, "MJC", mjc, 0.33);
  appendParam(out, "XCJC", xcjc, 1.0);
  appendParam(out, "CJS", cjs, 0.0);
  appendParam(out, "VJS", vjs, 0.75);
  appendParam(out, "MJS", mjs, 0.5);
  appendParam(out, "FC", fc, 0.5);
  appendParam(out, "TF", tf, 0.0);
  appendParam(out, "XTF", xtf, 0.0);
  appendParam(out, "VTF", vtf, 0.0);
  appendParam(out, "ITF", itf, 0.0);
  appendParam(out, "TR", tr, 0.0);
  out += " )";
  return out;
}

}  // namespace ahfic::spice
