#pragma once
// Linear-algebra kernels for MNA: a dense LU with partial pivoting and a
// simple sparse (row-compressed) Gaussian elimination. Both are templated
// over the scalar so the same code serves DC/transient (double) and AC
// (std::complex<double>).
//
// Circuits in this project are small (tens to a few hundred unknowns), so a
// robust dense solve is the default; the sparse path exists for the
// dense-vs-sparse ablation (bench_micro) and for larger decks.

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "util/error.h"

namespace ahfic::spice {

/// Magnitude used for pivoting: |x| for real, abs for complex.
inline double pivotMag(double x) { return std::fabs(x); }
inline double pivotMag(const std::complex<double>& x) { return std::abs(x); }

/// Dense row-major matrix.
template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  T& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  const T& at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  void setZero() { std::fill(data_.begin(), data_.end(), T{}); }

  /// In-place LU factorisation with partial pivoting.
  /// Returns false if the matrix is numerically singular; when
  /// `singularCol` is given it receives the column that lacked a usable
  /// pivot (columns are never permuted, so this is the original unknown
  /// index), or -1 on success.
  bool luFactor(std::vector<int>& perm, int* singularCol = nullptr) {
    if (rows_ != cols_) throw Error("luFactor: matrix must be square");
    if (singularCol != nullptr) *singularCol = -1;
    const int n = rows_;
    perm.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    for (int k = 0; k < n; ++k) {
      int p = k;
      double best = pivotMag(at(k, k));
      for (int i = k + 1; i < n; ++i) {
        const double m = pivotMag(at(i, k));
        if (m > best) {
          best = m;
          p = i;
        }
      }
      if (best < 1e-300) {
        if (singularCol != nullptr) *singularCol = k;
        return false;
      }
      if (p != k) {
        for (int c = 0; c < n; ++c) std::swap(at(k, c), at(p, c));
        std::swap(perm[static_cast<size_t>(k)], perm[static_cast<size_t>(p)]);
      }
      const T pivot = at(k, k);
      for (int i = k + 1; i < n; ++i) {
        const T m = at(i, k) / pivot;
        at(i, k) = m;
        if (m != T{}) {
          for (int c = k + 1; c < n; ++c) at(i, c) -= m * at(k, c);
        }
      }
    }
    return true;
  }

  /// Solves L U x = P b using factors produced by luFactor.
  void luSolve(const std::vector<int>& perm, const std::vector<T>& b,
               std::vector<T>& x) const {
    const int n = rows_;
    x.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      x[static_cast<size_t>(i)] = b[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    for (int i = 1; i < n; ++i) {
      T s = x[static_cast<size_t>(i)];
      for (int j = 0; j < i; ++j) s -= at(i, j) * x[static_cast<size_t>(j)];
      x[static_cast<size_t>(i)] = s;
    }
    for (int i = n - 1; i >= 0; --i) {
      T s = x[static_cast<size_t>(i)];
      for (int j = i + 1; j < n; ++j) s -= at(i, j) * x[static_cast<size_t>(j)];
      x[static_cast<size_t>(i)] = s / at(i, i);
    }
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// Sparse matrix with per-row sorted (column, value) entries. Supports
/// incremental accumulation (add) and destructive Gaussian elimination with
/// partial pivoting (solveInPlace).
template <typename T>
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(int n) : n_(n), rows_(static_cast<size_t>(n)) {}

  int size() const { return n_; }

  void setZero() {
    for (auto& row : rows_) row.clear();
  }

  /// Accumulates `v` into entry (r, c).
  void add(int r, int c, T v) {
    auto& row = rows_[static_cast<size_t>(r)];
    auto it = std::lower_bound(
        row.begin(), row.end(), c,
        [](const Entry& e, int col) { return e.col < col; });
    if (it != row.end() && it->col == c)
      it->val += v;
    else
      row.insert(it, Entry{c, v});
  }

  T get(int r, int c) const {
    const auto& row = rows_[static_cast<size_t>(r)];
    auto it = std::lower_bound(
        row.begin(), row.end(), c,
        [](const Entry& e, int col) { return e.col < col; });
    return (it != row.end() && it->col == c) ? it->val : T{};
  }

  size_t nonzeros() const {
    size_t n = 0;
    for (const auto& row : rows_) n += row.size();
    return n;
  }

  /// Destructive solve of (this) x = b by row-based Gaussian elimination
  /// with partial pivoting. Returns false on numerical singularity.
  bool solveInPlace(std::vector<T>& b, std::vector<T>& x) {
    const int n = n_;
    std::vector<int> rowOf(static_cast<size_t>(n));  // physical row of pivot k
    std::vector<bool> used(static_cast<size_t>(n), false);
    for (int k = 0; k < n; ++k) {
      // Pick the unused row with the largest magnitude in column k.
      int best = -1;
      double bestMag = 1e-300;
      for (int r = 0; r < n; ++r) {
        if (used[static_cast<size_t>(r)]) continue;
        const double m = pivotMag(get(r, k));
        if (m > bestMag) {
          bestMag = m;
          best = r;
        }
      }
      if (best < 0) return false;
      used[static_cast<size_t>(best)] = true;
      rowOf[static_cast<size_t>(k)] = best;
      const T pivot = get(best, k);
      for (int r = 0; r < n; ++r) {
        if (used[static_cast<size_t>(r)] && r != best) continue;
        if (r == best) continue;
        const T a = get(r, k);
        if (a == T{}) continue;
        const T m = a / pivot;
        // row_r -= m * row_best
        for (const auto& e : rows_[static_cast<size_t>(best)]) {
          if (e.col >= k) add(r, e.col, -m * e.val);
        }
        b[static_cast<size_t>(r)] -= m * b[static_cast<size_t>(best)];
      }
    }
    // Back substitution in pivot order.
    x.assign(static_cast<size_t>(n), T{});
    for (int k = n - 1; k >= 0; --k) {
      const int r = rowOf[static_cast<size_t>(k)];
      T s = b[static_cast<size_t>(r)];
      for (const auto& e : rows_[static_cast<size_t>(r)]) {
        if (e.col > k) s -= e.val * x[static_cast<size_t>(e.col)];
      }
      x[static_cast<size_t>(k)] = s / get(r, k);
    }
    return true;
  }

 private:
  struct Entry {
    int col;
    T val;
  };
  int n_ = 0;
  std::vector<std::vector<Entry>> rows_;
};

/// Convenience one-shot dense solve: returns x with A x = b.
/// Throws ahfic::Error on singular A.
template <typename T>
std::vector<T> solveDense(DenseMatrix<T> a, std::vector<T> b) {
  std::vector<int> perm;
  if (!a.luFactor(perm)) throw Error("solveDense: singular matrix");
  std::vector<T> x;
  a.luSolve(perm, b, x);
  return x;
}

}  // namespace ahfic::spice
