#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>

#include "obs/log.h"
#include "util/error.h"
#include "util/mutex.h"
#include "util/table.h"

namespace ahfic::obs {

namespace {

std::atomic<bool> gMetricsEnabled{false};

void atomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void setMetricsEnabled(bool on) {
  gMetricsEnabled.store(on, std::memory_order_relaxed);
}

bool metricsEnabled() {
  return gMetricsEnabled.load(std::memory_order_relaxed);
}

double histogramBucketUpperBound(int bucket) {
  if (bucket >= kHistogramBuckets - 1)
    return std::numeric_limits<double>::infinity();
  if (bucket < 0) bucket = 0;
  return 1e-3 * std::pow(10.0, 0.25 * bucket);
}

int histogramBucketIndex(double value) {
  if (!(value > 1e-3)) return 0;  // NaN and underflow
  if (value > histogramBucketUpperBound(kHistogramBuckets - 2))
    return kHistogramBuckets - 1;
  int i = static_cast<int>(std::ceil(4.0 * (std::log10(value) + 3.0)));
  i = std::clamp(i, 0, kHistogramBuckets - 2);
  // log10 rounding can land one bucket off near a boundary; nudge until
  // the closed-upper-bound invariant ub(i-1) < value <= ub(i) holds.
  while (i > 0 && value <= histogramBucketUpperBound(i - 1)) --i;
  while (value > histogramBucketUpperBound(i)) ++i;
  return i;
}

// ---------------------------------------------------------------------------
// Registry internals

struct Registry::Shard {
  std::array<std::atomic<long long>, kMaxCounters> counters{};
  struct Hist {
    std::array<std::atomic<long long>, kHistogramBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::array<Hist, kMaxHistograms> hists{};
};

struct Registry::Impl {
  // Registration, shard list, snapshot. Leaf lock of the whole stack:
  // nothing is called with it held, so every other subsystem may call
  // into the registry while holding its own locks (docs/concurrency.md).
  mutable util::Mutex mu;
  std::vector<std::string> counterNames AHFIC_GUARDED_BY(mu);
  std::vector<std::string> gaugeNames AHFIC_GUARDED_BY(mu);
  std::vector<std::string> histNames AHFIC_GUARDED_BY(mu);
  std::map<std::string, int> counterIds AHFIC_GUARDED_BY(mu);
  std::map<std::string, int> gaugeIds AHFIC_GUARDED_BY(mu);
  std::map<std::string, int> histIds AHFIC_GUARDED_BY(mu);
  // Gauges are last-write-wins: one central slot of atomics, no
  // sharding (and no guard) needed.
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::vector<std::unique_ptr<Shard>> shards AHFIC_GUARDED_BY(mu);
  std::vector<Shard*> freeShards AHFIC_GUARDED_BY(mu);
  // Effective caps (== kMax* except under limitCapsForTest) and the
  // once-per-kind saturation warning latches.
  int counterCap AHFIC_GUARDED_BY(mu) = kMaxCounters;
  int gaugeCap AHFIC_GUARDED_BY(mu) = kMaxGauges;
  int histCap AHFIC_GUARDED_BY(mu) = kMaxHistograms;
  bool warnedCounterCap AHFIC_GUARDED_BY(mu) = false;
  bool warnedGaugeCap AHFIC_GUARDED_BY(mu) = false;
  bool warnedHistCap AHFIC_GUARDED_BY(mu) = false;
  // "obs.registry_saturated", registered in the ctor before any other
  // thread can see the registry; const thereafter, so unguarded.
  int saturatedId = -1;
};

/// RAII thread-local lease: acquires a shard on a thread's first write and
/// returns it to the free list when the thread exits (its accumulated
/// values stay part of every later snapshot).
struct Registry::ShardLease {
  explicit ShardLease(Registry* r) : reg(r), shard(r->acquireShard()) {}
  ~ShardLease() { reg->releaseShard(shard); }
  Registry* reg;
  Shard* shard;
};

Registry::Registry() : impl_(new Impl) {
  // Pre-register the saturation counter so reporting a full registry
  // never itself needs a free slot.
  impl_->counterNames.push_back("obs.registry_saturated");
  impl_->counterIds["obs.registry_saturated"] = 0;
  impl_->saturatedId = 0;
}
Registry::~Registry() { delete impl_; }

Registry& metrics() {
  static Registry* r = new Registry;  // leaked: outlives thread-local leases
  return *r;
}

Registry::Shard* Registry::acquireShard() {
  util::MutexLock lock(&impl_->mu);
  if (!impl_->freeShards.empty()) {
    Shard* s = impl_->freeShards.back();
    impl_->freeShards.pop_back();
    return s;
  }
  impl_->shards.push_back(std::make_unique<Shard>());
  return impl_->shards.back().get();
}

void Registry::releaseShard(Shard* shard) {
  util::MutexLock lock(&impl_->mu);
  impl_->freeShards.push_back(shard);
}

Registry::Shard& Registry::localShard() {
  thread_local ShardLease lease(this);
  return *lease.shard;
}

namespace {

/// Returns the existing or new id, or -1 when the cap is hit (the
/// caller reports saturation outside the registry lock — emitting the
/// saturation counter here would re-enter acquireShard and deadlock).
int registerName(std::map<std::string, int>& ids,
                 std::vector<std::string>& names, const std::string& name,
                 int capacity) {
  if (name.empty()) throw Error("obs: empty metric name");
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (static_cast<int>(names.size()) >= capacity) return -1;
  const int id = static_cast<int>(names.size());
  names.push_back(name);
  ids[name] = id;
  return id;
}

}  // namespace

void Registry::noteSaturation(const char* kind, const std::string& name,
                              bool firstForKind) {
  // Count the drop unconditionally (bypassing the enabled gate: a full
  // registry should be visible in the very snapshot that misses data).
  counterAdd(impl_->saturatedId, 1);
  if (!firstForKind) return;
  static const LogSite sWarn =
      logSite(LogLevel::kWarn, "obs.registry_saturated");
  if (sWarn)
    sWarn.log("metric registry cap hit; registrations now dropped")
        .str("kind", kind)
        .str("dropped", name);
}

Counter Registry::counter(const std::string& name) {
  int id;
  bool first = false;
  {
    util::MutexLock lock(&impl_->mu);
    id = registerName(impl_->counterIds, impl_->counterNames, name,
                      impl_->counterCap);
    if (id < 0 && !impl_->warnedCounterCap)
      impl_->warnedCounterCap = first = true;
  }
  if (id < 0) noteSaturation("counter", name, first);
  return Counter(id);
}

Gauge Registry::gauge(const std::string& name) {
  int id;
  bool first = false;
  {
    util::MutexLock lock(&impl_->mu);
    id = registerName(impl_->gaugeIds, impl_->gaugeNames, name,
                      impl_->gaugeCap);
    if (id < 0 && !impl_->warnedGaugeCap)
      impl_->warnedGaugeCap = first = true;
  }
  if (id < 0) noteSaturation("gauge", name, first);
  return Gauge(id);
}

Histogram Registry::histogram(const std::string& name) {
  int id;
  bool first = false;
  {
    util::MutexLock lock(&impl_->mu);
    id = registerName(impl_->histIds, impl_->histNames, name,
                      impl_->histCap);
    if (id < 0 && !impl_->warnedHistCap)
      impl_->warnedHistCap = first = true;
  }
  if (id < 0) noteSaturation("histogram", name, first);
  return Histogram(id);
}

void Registry::limitCapsForTest(int counters, int gauges, int histograms) {
  util::MutexLock lock(&impl_->mu);
  impl_->counterCap = counters < 0 ? kMaxCounters
                                   : std::min(counters, kMaxCounters);
  impl_->gaugeCap = gauges < 0 ? kMaxGauges : std::min(gauges, kMaxGauges);
  impl_->histCap =
      histograms < 0 ? kMaxHistograms : std::min(histograms, kMaxHistograms);
  impl_->warnedCounterCap = false;
  impl_->warnedGaugeCap = false;
  impl_->warnedHistCap = false;
}

void Registry::counterAdd(int id, long long delta) {
  localShard().counters[static_cast<size_t>(id)].fetch_add(
      delta, std::memory_order_relaxed);
}

void Registry::gaugeSet(int id, double value) {
  impl_->gauges[static_cast<size_t>(id)].store(value,
                                               std::memory_order_relaxed);
}

void Registry::histogramObserve(int id, double value) {
  auto& h = localShard().hists[static_cast<size_t>(id)];
  h.buckets[static_cast<size_t>(histogramBucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  atomicAddDouble(h.sum, value);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  util::MutexLock lock(&impl_->mu);
  snap.counters.reserve(impl_->counterNames.size());
  for (size_t c = 0; c < impl_->counterNames.size(); ++c) {
    long long total = 0;
    for (const auto& s : impl_->shards)
      total += s->counters[c].load(std::memory_order_relaxed);
    snap.counters.emplace_back(impl_->counterNames[c], total);
  }
  for (size_t g = 0; g < impl_->gaugeNames.size(); ++g)
    snap.gauges.emplace_back(impl_->gaugeNames[g],
                             impl_->gauges[g].load(std::memory_order_relaxed));
  for (size_t h = 0; h < impl_->histNames.size(); ++h) {
    HistogramSnapshot hs;
    hs.name = impl_->histNames[h];
    hs.buckets.assign(kHistogramBuckets, 0);
    for (const auto& s : impl_->shards) {
      const auto& sh = s->hists[h];
      for (int b = 0; b < kHistogramBuckets; ++b)
        hs.buckets[static_cast<size_t>(b)] +=
            sh.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      hs.sum += sh.sum.load(std::memory_order_relaxed);
    }
    for (long long n : hs.buckets) hs.count += n;
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::resetForTest() {
  util::MutexLock lock(&impl_->mu);
  for (auto& s : impl_->shards) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
    }
  }
  for (auto& g : impl_->gauges) g.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Handles

void Counter::add(long long delta) const {
  if (id_ < 0 || !metricsEnabled()) return;
  metrics().counterAdd(id_, delta);
}

void Gauge::set(double value) const {
  if (id_ < 0 || !metricsEnabled()) return;
  metrics().gaugeSet(id_, value);
}

void Histogram::observe(double value) const {
  if (id_ < 0 || !metricsEnabled()) return;
  metrics().histogramObserve(id_, value);
}

Counter counter(const std::string& name) { return metrics().counter(name); }
Gauge gauge(const std::string& name) { return metrics().gauge(name); }
Histogram histogram(const std::string& name) {
  return metrics().histogram(name);
}

// ---------------------------------------------------------------------------
// Snapshot

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<long long>(
      std::ceil(q * static_cast<double>(count)));
  long long cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    cum += buckets[static_cast<size_t>(b)];
    if (cum >= target && cum > 0) return histogramBucketUpperBound(b);
  }
  return histogramBucketUpperBound(kHistogramBuckets - 1);
}

double HistogramSnapshot::quantileInterpolated(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  long long cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const long long n = buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= target) {
      double frac = (target - static_cast<double>(cum)) /
                    static_cast<double>(n);
      frac = std::clamp(frac, 0.0, 1.0);
      const double hi = histogramBucketUpperBound(b);
      // Underflow bucket spans (0, 1e-3]: interpolate linearly from 0.
      if (b == 0) return frac * hi;
      const double lo = histogramBucketUpperBound(b - 1);
      // Overflow bucket has no finite upper bound: report its floor —
      // a finite lower bound on the true quantile beats +inf.
      if (std::isinf(hi)) return lo;
      // Log-scale buckets: geometric interpolation between the bounds.
      return lo * std::pow(hi / lo, frac);
    }
    cum += n;
  }
  return histogramBucketUpperBound(kHistogramBuckets - 2);
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) value -= earlier.counterValue(name);
  for (auto& h : out.histograms) {
    const HistogramSnapshot* prev = earlier.findHistogram(h.name);
    if (prev == nullptr) continue;
    h.count -= prev->count;
    h.sum -= prev->sum;
    const size_t n = std::min(h.buckets.size(), prev->buckets.size());
    for (size_t b = 0; b < n; ++b) h.buckets[b] -= prev->buckets[b];
  }
  return out;
}

long long MetricsSnapshot::counterValue(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::findHistogram(
    const std::string& name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

util::JsonValue MetricsSnapshot::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-metrics-v1");

  util::JsonValue cs = util::JsonValue::object();
  for (const auto& [name, value] : counters)
    cs.set(name, static_cast<double>(value));
  doc.set("counters", std::move(cs));

  util::JsonValue gs = util::JsonValue::object();
  for (const auto& [name, value] : gauges) gs.set(name, value);
  doc.set("gauges", std::move(gs));

  util::JsonValue hs = util::JsonValue::object();
  for (const auto& h : histograms) {
    util::JsonValue e = util::JsonValue::object();
    e.set("count", static_cast<double>(h.count));
    e.set("sum", h.sum);
    e.set("mean", h.mean());
    e.set("p50", h.quantileInterpolated(0.50));
    e.set("p95", h.quantileInterpolated(0.95));
    e.set("p99", h.quantileInterpolated(0.99));
    util::JsonValue bucketArr = util::JsonValue::array();
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const long long n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      util::JsonValue be = util::JsonValue::object();
      // Overflow bucket: "le" is null (JSON has no infinity).
      if (b == kHistogramBuckets - 1)
        be.set("le", util::JsonValue());
      else
        be.set("le", histogramBucketUpperBound(b));
      be.set("n", static_cast<double>(n));
      bucketArr.push(std::move(be));
    }
    e.set("buckets", std::move(bucketArr));
    hs.set(h.name, std::move(e));
  }
  doc.set("histograms", std::move(hs));
  return doc;
}

std::string MetricsSnapshot::toJsonString(int indent) const {
  return toJson().dump(indent);
}

void MetricsSnapshot::writeJsonFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("obs: cannot write metrics file '" + path + "'");
  f << toJsonString() << "\n";
  if (!f.good()) throw Error("obs: write to '" + path + "' failed");
}

namespace {

std::string formatBound(double v) {
  if (std::isinf(v)) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace

namespace {

/// "serve.http.requests" -> "ahfic_serve_http_requests"; any character
/// outside [a-zA-Z0-9_] becomes '_'.
std::string prometheusName(const std::string& name) {
  std::string out = "ahfic_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheusNumber(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  if (v == static_cast<long long>(v) && v > -1e15 && v < 1e15)
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  else
    std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::toPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pn = prometheusName(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pn = prometheusName(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + prometheusNumber(value) + "\n";
  }
  for (const auto& h : histograms) {
    const std::string pn = prometheusName(h.name);
    out += "# TYPE " + pn + " histogram\n";
    long long cum = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      cum += h.buckets[static_cast<size_t>(b)];
      // Prometheus buckets are cumulative; emit only the populated edge
      // of the fixed scheme plus the mandatory +Inf bucket.
      if (h.buckets[static_cast<size_t>(b)] == 0 &&
          b != kHistogramBuckets - 1)
        continue;
      out += pn + "_bucket{le=\"" +
             prometheusNumber(histogramBucketUpperBound(b)) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += pn + "_sum " + prometheusNumber(h.sum) + "\n";
    out += pn + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::summary(size_t topN) const {
  std::string out;

  std::vector<std::pair<std::string, long long>> nonzero;
  for (const auto& c : counters)
    if (c.second != 0) nonzero.push_back(c);
  std::sort(nonzero.begin(), nonzero.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (nonzero.size() > topN) nonzero.resize(topN);
  if (!nonzero.empty()) {
    util::Table t({"counter", "value"});
    for (const auto& [name, value] : nonzero)
      t.addRow({name, std::to_string(value)});
    out += t.toString();
  }

  bool anyGauge = false;
  for (const auto& [name, value] : gauges)
    if (value != 0.0) anyGauge = true;
  if (anyGauge) {
    util::Table t({"gauge", "value"});
    for (const auto& [name, value] : gauges)
      t.addRow({name, util::fixed(value, 3)});
    if (!out.empty()) out += "\n";
    out += t.toString();
  }

  bool anyHist = false;
  for (const auto& h : histograms)
    if (h.count > 0) anyHist = true;
  if (anyHist) {
    util::Table t({"histogram", "count", "mean", "p50", "p95", "p99"});
    for (const auto& h : histograms) {
      if (h.count == 0) continue;
      t.addRow({h.name, std::to_string(h.count), formatBound(h.mean()),
                formatBound(h.quantileInterpolated(0.5)),
                formatBound(h.quantileInterpolated(0.95)),
                formatBound(h.quantileInterpolated(0.99))});
    }
    if (!out.empty()) out += "\n";
    out += t.toString();
  }
  return out;
}

}  // namespace ahfic::obs
