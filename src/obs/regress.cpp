#include "obs/regress.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace ahfic::obs {

namespace {

/// One parsed path segment: key, optionally with an [sel=value] array
/// selector.
struct PathSegment {
  std::string key;
  std::string selKey;    // empty = plain object lookup
  std::string selValue;
};

std::vector<PathSegment> parsePath(const std::string& path) {
  std::vector<PathSegment> segments;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t end = path.find('.', pos);
    if (end == std::string::npos) end = path.size();
    std::string raw = path.substr(pos, end - pos);
    if (raw.empty())
      throw Error("regress: empty segment in path '" + path + "'");
    PathSegment seg;
    const size_t open = raw.find('[');
    if (open == std::string::npos) {
      seg.key = raw;
    } else {
      if (raw.back() != ']')
        throw Error("regress: unterminated selector in path '" + path +
                    "'");
      seg.key = raw.substr(0, open);
      const std::string sel = raw.substr(open + 1,
                                         raw.size() - open - 2);
      const size_t eq = sel.find('=');
      if (eq == std::string::npos)
        throw Error("regress: selector '" + sel +
                    "' wants key=value in path '" + path + "'");
      seg.selKey = sel.substr(0, eq);
      seg.selValue = sel.substr(eq + 1);
    }
    segments.push_back(std::move(seg));
    if (end == path.size()) break;
    pos = end + 1;
  }
  return segments;
}

/// Stringifies a JSON scalar the way selector values are written.
std::string selectorText(const util::JsonValue& v) {
  if (v.isString()) return v.asString();
  if (v.isNumber()) {
    char buf[40];
    const double n = v.asNumber();
    if (n == static_cast<long long>(n))
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    else
      std::snprintf(buf, sizeof buf, "%g", n);
    return buf;
  }
  if (v.isBool()) return v.asBool() ? "true" : "false";
  return std::string();
}

}  // namespace

bool BenchGates::isWaived(const std::string& path) const {
  return std::find(waived.begin(), waived.end(), path) != waived.end();
}

GateConfig GateConfig::fromJson(const util::JsonValue& doc) {
  if (!doc.isObject() || !doc.has("schema") ||
      doc.get("schema").asString() != "ahfic-gates-v1")
    throw Error("regress: gates document is not ahfic-gates-v1");
  GateConfig config;
  const util::JsonValue& benches = doc.get("benches");
  if (!benches.isObject())
    throw Error("regress: gates 'benches' must be an object");
  for (const std::string& name : benches.keys()) {
    const util::JsonValue& b = benches.get(name);
    BenchGates gates;
    const util::JsonValue& metrics = b.get("metrics");
    for (size_t i = 0; i < metrics.size(); ++i) {
      const util::JsonValue& m = metrics.at(i);
      GateMetric gm;
      gm.path = m.get("path").asString();
      if (m.has("maxRegress")) gm.maxRegress = m.get("maxRegress").asNumber();
      if (gm.maxRegress <= 0.0)
        throw Error("regress: maxRegress must be > 0 for '" + gm.path +
                    "'");
      if (m.has("higherIsBetter"))
        gm.higherIsBetter = m.get("higherIsBetter").asBool();
      gates.metrics.push_back(std::move(gm));
    }
    if (b.has("waived")) {
      const util::JsonValue& waive = b.get("waived");
      for (size_t i = 0; i < waive.size(); ++i) {
        const std::string path = waive.at(i).asString();
        const bool known = std::any_of(
            gates.metrics.begin(), gates.metrics.end(),
            [&path](const GateMetric& m) { return m.path == path; });
        if (!known)
          throw Error("regress: waived path '" + path +
                      "' is not a gated metric of bench '" + name + "'");
        gates.waived.push_back(path);
      }
    }
    if (gates.metrics.empty())
      throw Error("regress: bench '" + name + "' gates no metrics");
    config.benches.emplace(name, std::move(gates));
  }
  return config;
}

const BenchGates* GateConfig::find(const std::string& bench) const {
  const auto it = benches.find(bench);
  return it == benches.end() ? nullptr : &it->second;
}

double extractMetric(const util::JsonValue& payload,
                     const std::string& path) {
  const util::JsonValue* node = &payload;
  for (const PathSegment& seg : parsePath(path)) {
    if (!node->isObject() || !node->has(seg.key))
      throw Error("regress: path '" + path + "' has no key '" + seg.key +
                  "'");
    node = &node->get(seg.key);
    if (seg.selKey.empty()) continue;
    if (!node->isArray())
      throw Error("regress: path '" + path + "': '" + seg.key +
                  "' is not an array");
    const util::JsonValue* match = nullptr;
    for (size_t i = 0; i < node->size(); ++i) {
      const util::JsonValue& elem = node->at(i);
      if (elem.isObject() && elem.has(seg.selKey) &&
          selectorText(elem.get(seg.selKey)) == seg.selValue) {
        match = &elem;
        break;
      }
    }
    if (match == nullptr)
      throw Error("regress: path '" + path + "': no element with " +
                  seg.selKey + "=" + seg.selValue);
    node = match;
  }
  if (!node->isNumber())
    throw Error("regress: path '" + path + "' is not a number");
  return node->asNumber();
}

util::JsonValue BaselineDoc::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-bench-baseline-v1");
  doc.set("bench", bench);
  doc.set("gitRev", gitRev);
  doc.set("timestamp", timestamp);
  doc.set("repeats", static_cast<double>(repeats));
  util::JsonValue vals = util::JsonValue::object();
  for (const auto& [path, value] : metrics) vals.set(path, value);
  doc.set("metrics", std::move(vals));
  return doc;
}

BaselineDoc BaselineDoc::fromJson(const util::JsonValue& doc) {
  if (!doc.isObject() || !doc.has("schema") ||
      doc.get("schema").asString() != "ahfic-bench-baseline-v1")
    throw Error("regress: not an ahfic-bench-baseline-v1 document");
  BaselineDoc out;
  out.bench = doc.get("bench").asString();
  if (doc.has("gitRev")) out.gitRev = doc.get("gitRev").asString();
  if (doc.has("timestamp")) out.timestamp = doc.get("timestamp").asString();
  if (doc.has("repeats"))
    out.repeats = static_cast<int>(doc.get("repeats").asNumber());
  const util::JsonValue& vals = doc.get("metrics");
  for (const std::string& path : vals.keys())
    out.metrics.emplace(path, vals.get(path).asNumber());
  return out;
}

BaselineDoc reduceArtifacts(const std::vector<util::JsonValue>& envelopes,
                            const BenchGates& gates) {
  if (envelopes.empty())
    throw Error("regress: reduceArtifacts wants at least one artifact");
  BaselineDoc out;
  for (const util::JsonValue& env : envelopes) {
    if (!env.isObject() || !env.has("schema") ||
        env.get("schema").asString() != "ahfic-bench-v1")
      throw Error("regress: artifact is not an ahfic-bench-v1 envelope");
    const std::string name = env.get("name").asString();
    if (out.bench.empty()) {
      out.bench = name;
      out.gitRev =
          env.has("gitRev") ? env.get("gitRev").asString() : "unknown";
      out.timestamp =
          env.has("timestamp") ? env.get("timestamp").asString() : "";
    } else if (name != out.bench) {
      throw Error("regress: mixed artifacts ('" + out.bench + "' vs '" +
                  name + "')");
    }
    const util::JsonValue& payload = env.get("payload");
    for (const GateMetric& gm : gates.metrics) {
      const double v = extractMetric(payload, gm.path);
      const auto it = out.metrics.find(gm.path);
      if (it == out.metrics.end())
        out.metrics.emplace(gm.path, v);
      else
        // Best-of-K per direction: the one-sided noise model.
        it->second = gm.higherIsBetter ? std::max(it->second, v)
                                       : std::min(it->second, v);
    }
    ++out.repeats;
  }
  return out;
}

bool RegressReport::anyRegression() const {
  return std::any_of(metrics.begin(), metrics.end(),
                     [](const MetricComparison& m) { return m.regressed; });
}

util::JsonValue RegressReport::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-regress-v1");
  doc.set("bench", bench);
  doc.set("regressed", anyRegression());
  util::JsonValue arr = util::JsonValue::array();
  for (const MetricComparison& m : metrics) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("path", m.path);
    entry.set("baseline", m.baseline);
    entry.set("current", m.current);
    entry.set("change", m.change);
    entry.set("allowed", m.allowed);
    entry.set("higherIsBetter", m.higherIsBetter);
    entry.set("waived", m.waived);
    entry.set("regressed", m.regressed);
    arr.push(std::move(entry));
  }
  doc.set("metrics", std::move(arr));
  return doc;
}

std::string RegressReport::summary() const {
  std::string out = "bench '" + bench + "'\n";
  char buf[160];
  for (const MetricComparison& m : metrics) {
    const char* verdict = m.regressed ? "REGRESSED"
                          : m.waived  ? "waived"
                                      : "ok";
    std::snprintf(buf, sizeof buf,
                  "  %-9s %+7.1f%% (allowed %+.0f%%%s)  %s\n", verdict,
                  m.change * 100.0, m.allowed * 100.0,
                  m.higherIsBetter ? ", higher is better" : "",
                  m.path.c_str());
    out += buf;
  }
  return out;
}

RegressReport compareToBaseline(const BaselineDoc& baseline,
                                const BaselineDoc& current,
                                const BenchGates& gates) {
  RegressReport report;
  report.bench = current.bench.empty() ? baseline.bench : current.bench;
  for (const GateMetric& gm : gates.metrics) {
    MetricComparison cmp;
    cmp.path = gm.path;
    cmp.allowed = gm.maxRegress;
    cmp.higherIsBetter = gm.higherIsBetter;
    cmp.waived = gates.isWaived(gm.path);
    const auto b = baseline.metrics.find(gm.path);
    const auto c = current.metrics.find(gm.path);
    if (b != baseline.metrics.end()) cmp.baseline = b->second;
    if (c != current.metrics.end()) cmp.current = c->second;
    // A metric absent from either side, or a non-positive baseline, has
    // no meaningful relative change — report it, never gate on it.
    if (b != baseline.metrics.end() && c != current.metrics.end() &&
        cmp.baseline > 0.0 && std::isfinite(cmp.current)) {
      cmp.change = gm.higherIsBetter
                       ? 1.0 - cmp.current / cmp.baseline
                       : cmp.current / cmp.baseline - 1.0;
      cmp.regressed = !cmp.waived && cmp.change > gm.maxRegress;
    }
    report.metrics.push_back(std::move(cmp));
  }
  return report;
}

}  // namespace ahfic::obs
