#include "obs/prof.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <execinfo.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/bench.h"
#include "util/error.h"
#include "util/mutex.h"

namespace ahfic::obs {

namespace {

using prof::kMaxFrames;
using prof::kMaxRings;
using prof::kThreadNameMax;
using prof::RawSample;
using prof::SampleRing;

/// The fixed ring pool, allocated once at the first capture and leaked
/// (rings hold atomics a late signal may still touch at exit). ~6.5 MB.
struct RingPool {
  SampleRing rings[kMaxRings];
};

std::atomic<RingPool*> gPool{nullptr};

/// True while a capture records samples. Acquire/release pairs with the
/// start/stop sequencing below; the handler's load is the only hot read.
std::atomic<bool> gActive{false};
/// Monotonic capture id (never 0) — rings are claimed per session so a
/// stale thread-local ring pointer from a previous capture is never
/// written into a ring the pool has since recycled.
std::atomic<unsigned> gSession{0};
/// Samples that found no free ring (pool exhausted); counted as dropped.
std::atomic<long long> gUnassignedDrops{0};
/// Serializes start/stop against each other (never touched by handlers).
std::atomic<bool> gBusy{false};

thread_local char tProfName[kThreadNameMax] = {0};
thread_local SampleRing* tRing = nullptr;
thread_local unsigned tRingSession = 0;

void profSignalHandler(int, siginfo_t*, void*);

/// Claims a free ring for the calling thread. Async-signal-safe: a scan
/// plus one CAS per candidate, and a fixed-size name copy.
SampleRing* claimRing(unsigned session) {
  RingPool* pool = gPool.load(std::memory_order_acquire);
  if (pool == nullptr) return nullptr;
  for (int i = 0; i < kMaxRings; ++i) {
    SampleRing& r = pool->rings[i];
    unsigned expected = 0;
    if (r.owner.load(std::memory_order_relaxed) == 0 &&
        r.owner.compare_exchange_strong(expected, session,
                                        std::memory_order_acq_rel)) {
      // The name write is ordered before the first sample's release
      // store in push(), so the collector's acquire of head sees it.
      std::memcpy(r.name, tProfName, kThreadNameMax);
      r.name[kThreadNameMax - 1] = '\0';
      return &r;
    }
  }
  gUnassignedDrops.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void profSignalHandler(int, siginfo_t*, void*) {
  // Everything here is async-signal-safe: atomics, backtrace() (the
  // unwinder is preheated at start so it allocates nothing here), and a
  // ring push. errno is preserved for the interrupted code.
  const int savedErrno = errno;
  if (gActive.load(std::memory_order_acquire)) {
    const unsigned session = gSession.load(std::memory_order_relaxed);
    SampleRing* ring = tRing;
    if (ring == nullptr || tRingSession != session) {
      ring = claimRing(session);
      tRing = ring;
      tRingSession = session;
    }
    if (ring != nullptr) {
      void* pcs[kMaxFrames];
      const int depth = ::backtrace(pcs, kMaxFrames);
      if (depth > 0) ring->push(pcs, depth);
    }
  }
  errno = savedErrno;
}

/// Raw aggregation key while the capture runs: thread name + leaf-first
/// PCs. Symbolization waits until stop so the collector stays cheap.
struct RawKey {
  std::string thread;
  std::vector<void*> pcs;
  bool operator<(const RawKey& o) const {
    if (thread != o.thread) return thread < o.thread;
    return pcs < o.pcs;
  }
};

/// Everything one capture owns; guarded by gBusy sequencing (only
/// start/stop/collector touch it, never the signal handler).
struct CaptureState {
  ProfileOptions opts;
  unsigned session = 0;
  timer_t timer{};
  std::chrono::steady_clock::time_point startedAt;
  std::thread collector;
  // Collector wakeup for prompt shutdown.
  util::Mutex mu;
  util::CondVar cv;
  bool stopping AHFIC_GUARDED_BY(mu) = false;
  // Drained-but-unsymbolized samples (collector thread only, then the
  // stopping thread after join — never concurrent).
  std::map<RawKey, long long> raw;
};

CaptureState* gCapture = nullptr;  // non-null only between start and stop

/// Latest completed capture, for /v1/profile/latest and /debug.
struct LatestState {
  util::Mutex mu;
  std::string json AHFIC_GUARDED_BY(mu);
  LatestProfileInfo info AHFIC_GUARDED_BY(mu);
};

LatestState& latestState() {
  static LatestState* s = new LatestState;  // leaked: outlives everything
  return *s;
}

/// Drains every ring of `session` into the capture's raw map.
void drainSession(CaptureState& cap) {
  RingPool* pool = gPool.load(std::memory_order_acquire);
  if (pool == nullptr) return;
  std::vector<RawSample> batch;
  for (int i = 0; i < kMaxRings; ++i) {
    SampleRing& r = pool->rings[i];
    if (r.owner.load(std::memory_order_acquire) != cap.session) continue;
    batch.clear();
    if (r.drain(batch) == 0) continue;
    const char* name = r.name[0] != '\0' ? r.name : "thread";
    for (const RawSample& s : batch) {
      RawKey key;
      key.thread = name;
      key.pcs.assign(s.pc, s.pc + s.depth);
      ++cap.raw[key];
    }
  }
}

void collectorLoop(CaptureState& cap) {
  // Periodic drain keeps 30 s captures from overflowing 512-slot rings
  // (at 197 Hz a ring fills in ~2.6 s).
  for (;;) {
    {
      util::MutexLock lock(&cap.mu);
      if (cap.stopping) break;
      cap.cv.waitFor(&cap.mu, std::chrono::milliseconds(50));
      if (cap.stopping) break;
    }
    drainSession(cap);
  }
  drainSession(cap);  // final sweep after the timer is gone
}

/// Resolved symbol cache for one stop() pass.
std::string cachedSymbol(std::map<void*, std::string>& cache, void* pc) {
  auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string sym = prof::symbolizePc(pc);
  cache.emplace(pc, sym);
  return sym;
}

/// Index of the first non-profiler frame: the handler and the kernel's
/// signal trampoline lead every captured stack; everything below them
/// is the interrupted code we actually want.
int firstRealFrame(const std::vector<void*>& pcs) {
  const int scan = std::min<int>(static_cast<int>(pcs.size()), 6);
  int start = 0;
  for (int i = 0; i < scan; ++i) {
    Dl_info info{};
    if (dladdr(pcs[static_cast<size_t>(i)], &info) == 0) continue;
    if (info.dli_saddr ==
            reinterpret_cast<void*>(&profSignalHandler) ||
        (info.dli_sname != nullptr &&
         std::strcmp(info.dli_sname, "__restore_rt") == 0))
      start = i + 1;
  }
  return start;
}

}  // namespace

namespace prof {

std::vector<std::pair<std::string, long long>> FoldedStacks::sorted()
    const {
  std::vector<std::pair<std::string, long long>> out(counts_.begin(),
                                                     counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string symbolizePc(void* pc) {
  // Return addresses point one past the call; step back one byte so a
  // call that ends a function does not resolve to its neighbour.
  void* lookup = static_cast<char*>(pc) - 1;
  Dl_info info{};
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out = demangled;
      std::free(demangled);
      // Strip the argument list: flamegraph frames read better as
      // plain qualified names, and template arguments stay intact
      // because only the *trailing* top-level parens are cut.
      if (!out.empty() && out.back() == ')') {
        int depth = 0;
        for (size_t i = out.size(); i-- > 0;) {
          if (out[i] == ')') ++depth;
          if (out[i] == '(') {
            --depth;
            if (depth == 0) {
              out.resize(i);
              break;
            }
          }
        }
      }
      return out;
    }
    return info.dli_sname;
  }
  char buf[64];
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof buf, "%s+0x%zx", base,
                  static_cast<size_t>(static_cast<char*>(pc) -
                                      static_cast<char*>(info.dli_fbase)));
    return buf;
  }
  std::snprintf(buf, sizeof buf, "0x%zx",
                reinterpret_cast<size_t>(pc));
  return buf;
}

}  // namespace prof

bool profilingActive() {
  return gActive.load(std::memory_order_relaxed);
}

void profileSetThreadName(const char* name) {
  if (name == nullptr) {
    tProfName[0] = '\0';
    return;
  }
  std::strncpy(tProfName, name, kThreadNameMax - 1);
  tProfName[kThreadNameMax - 1] = '\0';
}

bool startProfiling(const ProfileOptions& opts) {
  if (opts.hz <= 0.0 || opts.hz > 10000.0)
    throw Error("prof: hz must be in (0, 10000]");
  bool expected = false;
  if (!gBusy.compare_exchange_strong(expected, true)) return false;
  if (gActive.load(std::memory_order_relaxed)) {
    gBusy.store(false);
    return false;
  }

  if (gPool.load(std::memory_order_acquire) == nullptr)
    gPool.store(new RingPool, std::memory_order_release);

  // Preheat the unwinder: the first backtrace() call loads libgcc_s
  // (malloc, dlopen) — unacceptable inside a signal handler, fine here.
  {
    void* scratch[4];
    ::backtrace(scratch, 4);
  }

  static bool handlerInstalled = false;
  if (!handlerInstalled) {
    struct sigaction sa{};
    sa.sa_sigaction = &profSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      gBusy.store(false);
      throw Error("prof: sigaction(SIGPROF) failed");
    }
    handlerInstalled = true;
  }

  auto* cap = new CaptureState;
  cap->opts = opts;
  cap->session = gSession.fetch_add(1, std::memory_order_relaxed) + 1;
  cap->startedAt = std::chrono::steady_clock::now();
  gUnassignedDrops.store(0, std::memory_order_relaxed);

  sigevent sev{};
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  const clockid_t clock =
      opts.wallClock ? CLOCK_MONOTONIC : CLOCK_PROCESS_CPUTIME_ID;
  if (timer_create(clock, &sev, &cap->timer) != 0) {
    delete cap;
    gBusy.store(false);
    throw Error("prof: timer_create failed");
  }

  gCapture = cap;
  cap->collector = std::thread([cap] {
    profileSetThreadName("prof-collector");
    collectorLoop(*cap);
  });

  // Publish *before* arming the timer: the first signal must see the
  // active flag and the session id.
  gActive.store(true, std::memory_order_release);

  const long long periodNs = static_cast<long long>(1e9 / opts.hz);
  itimerspec its{};
  its.it_interval.tv_sec = periodNs / 1000000000;
  its.it_interval.tv_nsec = periodNs % 1000000000;
  its.it_value = its.it_interval;
  if (timer_settime(cap->timer, 0, &its, nullptr) != 0) {
    gActive.store(false, std::memory_order_release);
    timer_delete(cap->timer);
    {
      util::MutexLock lock(&cap->mu);
      cap->stopping = true;
    }
    cap->cv.notifyAll();
    cap->collector.join();
    gCapture = nullptr;
    delete cap;
    gBusy.store(false);
    throw Error("prof: timer_settime failed");
  }

  gBusy.store(false);
  return true;
}

ProfileReport stopProfiling() {
  bool expected = false;
  if (!gBusy.compare_exchange_strong(expected, true)) return {};
  if (!gActive.load(std::memory_order_relaxed) || gCapture == nullptr) {
    gBusy.store(false);
    return {};
  }
  CaptureState* cap = gCapture;

  // Order matters: silence the handler first, then disarm the timer, a
  // short grace so any handler already past the flag check finishes its
  // push (SPSC drains are safe against a concurrent push; ring *reset*
  // below is not), then drain.
  gActive.store(false, std::memory_order_release);
  timer_delete(cap->timer);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  {
    util::MutexLock lock(&cap->mu);
    cap->stopping = true;
  }
  cap->cv.notifyAll();
  cap->collector.join();  // runs the final drain

  const double durationSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cap->startedAt)
          .count();

  // Off-signal symbolization over unique PCs, then fold.
  std::map<void*, std::string> symbols;
  prof::FoldedStacks folded;
  long long samples = 0;
  for (const auto& [key, count] : cap->raw) {
    samples += count;
    std::string stack = key.thread;
    const int start = firstRealFrame(key.pcs);
    // backtrace() is leaf-first; collapsed stacks are root-first.
    for (int i = static_cast<int>(key.pcs.size()); i-- > start;) {
      stack += ';';
      stack += cachedSymbol(symbols, key.pcs[static_cast<size_t>(i)]);
    }
    folded.add(stack, count);
  }

  ProfileReport report;
  report.clock = cap->opts.wallClock ? "wall" : "cpu";
  report.hz = cap->opts.hz;
  report.durationSec = durationSec;
  report.samples = samples;
  report.dropped = gUnassignedDrops.load(std::memory_order_relaxed);
  report.stacks = folded.sorted();

  // Recycle the session's rings for the next capture. No producer can
  // touch them any more: the flag is down and the grace period passed.
  RingPool* pool = gPool.load(std::memory_order_acquire);
  if (pool != nullptr) {
    for (int i = 0; i < kMaxRings; ++i) {
      SampleRing& r = pool->rings[i];
      if (r.owner.load(std::memory_order_acquire) != cap->session) continue;
      ++report.threads;
      report.dropped += r.dropped();
      r.reset();
    }
  }

  gCapture = nullptr;
  delete cap;

  // Remember the capture for /v1/profile/latest and /debug.
  {
    const std::string ts = benchTimestampUtc();
    util::JsonValue envelope =
        benchEnvelope("profile", report.toJson(), ts);
    LatestState& latest = latestState();
    util::MutexLock lock(&latest.mu);
    latest.json = envelope.dump(2) + "\n";
    latest.info.present = true;
    latest.info.timestamp = ts;
    latest.info.durationSec = report.durationSec;
    latest.info.samples = report.samples;
  }

  gBusy.store(false);
  return report;
}

std::string ProfileReport::collapsed() const {
  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

util::JsonValue ProfileReport::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-profile-v1");
  doc.set("clock", clock);
  doc.set("hz", hz);
  doc.set("durationSec", durationSec);
  doc.set("samples", static_cast<double>(samples));
  doc.set("dropped", static_cast<double>(dropped));
  doc.set("threads", static_cast<double>(threads));
  util::JsonValue arr = util::JsonValue::array();
  for (const auto& [stack, count] : stacks) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("stack", stack);
    entry.set("count", static_cast<double>(count));
    arr.push(std::move(entry));
  }
  doc.set("stacks", std::move(arr));
  // Self-time ranking (leaf frame of every stack): the quick "what is
  // hot" read without reconstructing the flame graph.
  std::map<std::string, long long> self;
  for (const auto& [stack, count] : stacks) {
    const size_t semi = stack.rfind(';');
    self[semi == std::string::npos ? stack : stack.substr(semi + 1)] +=
        count;
  }
  std::vector<std::pair<std::string, long long>> ranked(self.begin(),
                                                        self.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  util::JsonValue top = util::JsonValue::array();
  const size_t cap = std::min<size_t>(ranked.size(), 20);
  for (size_t i = 0; i < cap; ++i) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("symbol", ranked[i].first);
    entry.set("count", static_cast<double>(ranked[i].second));
    top.push(std::move(entry));
  }
  doc.set("topSelf", std::move(top));
  return doc;
}

void writeProfileFiles(const ProfileReport& report,
                       const std::string& jsonPath) {
  util::JsonValue envelope =
      benchEnvelope("profile", report.toJson(), benchTimestampUtc());
  {
    FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr)
      throw Error("prof: cannot open '" + jsonPath + "'");
    const std::string text = envelope.dump(2) + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  const std::string foldedPath = jsonPath + ".folded";
  FILE* f = std::fopen(foldedPath.c_str(), "w");
  if (f == nullptr)
    throw Error("prof: cannot open '" + foldedPath + "'");
  const std::string text = report.collapsed();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

std::string latestProfileJson() {
  LatestState& latest = latestState();
  util::MutexLock lock(&latest.mu);
  return latest.json;
}

LatestProfileInfo latestProfileInfo() {
  LatestState& latest = latestState();
  util::MutexLock lock(&latest.mu);
  return latest.info;
}

ScopedProfile::ScopedProfile(std::string jsonPath, ProfileOptions opts)
    : jsonPath_(std::move(jsonPath)) {
  active_ = startProfiling(opts);
}

ScopedProfile::~ScopedProfile() {
  if (!active_) return;
  try {
    writeProfileFiles(stopProfiling(), jsonPath_);
  } catch (const Error&) {
    // Destructor: an unwritable path must not terminate the tool.
  }
}

}  // namespace ahfic::obs
