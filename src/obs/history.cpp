#include "obs/history.h"

#include <algorithm>
#include <chrono>

namespace ahfic::obs {

namespace {

double unixNowSec() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Monotonic series as {"first": v0, "deltas": [v1-v0, v2-v1, ...]}:
/// counters grow slowly between samples, so deltas are small numbers.
util::JsonValue deltaSeries(const std::vector<long long>& values) {
  util::JsonValue out = util::JsonValue::object();
  out.set("first", static_cast<double>(values.empty() ? 0 : values[0]));
  util::JsonValue deltas = util::JsonValue::array();
  for (size_t i = 1; i < values.size(); ++i)
    deltas.push(static_cast<double>(values[i] - values[i - 1]));
  out.set("deltas", std::move(deltas));
  return out;
}

}  // namespace

MetricsHistory::MetricsHistory(double intervalSec, size_t capacity)
    : intervalSec_(intervalSec > 0.0 ? intervalSec : 1.0),
      capacity_(capacity > 0 ? capacity : 1) {}

MetricsHistory::~MetricsHistory() { stop(); }

size_t MetricsHistory::size() const {
  util::MutexLock lock(&mu_);
  return ring_.size();
}

void MetricsHistory::sampleNow() {
  Sample s;
  s.unixSec = unixNowSec();
  s.snap = metrics().snapshot();
  util::MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(s));
  } else {
    // Full: overwrite the oldest slot, advance the ring head.
    ring_[head_] = std::move(s);
    head_ = (head_ + 1) % capacity_;
  }
}

void MetricsHistory::start() {
  if (running_) return;
  sampleNow();
  {
    util::MutexLock lock(&wakeMu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { samplerLoop(); });
  running_ = true;
}

void MetricsHistory::stop() {
  if (!running_) return;
  {
    util::MutexLock lock(&wakeMu_);
    stopping_ = true;
  }
  wake_.notifyAll();
  thread_.join();
  running_ = false;
}

void MetricsHistory::samplerLoop() {
  util::MutexLock lock(&wakeMu_);
  const auto interval = std::chrono::duration<double>(intervalSec_);
  while (!stopping_) {
    // Sleep one interval, re-arming on spurious wakeups; a stop()
    // notification ends the wait (and the loop) immediately.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    bool timedOut = false;
    while (!stopping_ && !timedOut)
      timedOut = wake_.waitUntil(&wakeMu_, deadline) ==
                 std::cv_status::timeout;
    if (stopping_) return;
    sampleNow();
  }
}

std::vector<MetricsHistory::Sample> MetricsHistory::window(
    double windowSec) const {
  util::MutexLock lock(&mu_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  // Unroll the circular buffer oldest-first.
  for (size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  if (windowSec > 0.0 && !out.empty()) {
    const double cutoff = out.back().unixSec - windowSec;
    out.erase(out.begin(),
              std::find_if(out.begin(), out.end(), [cutoff](const Sample& s) {
                return s.unixSec >= cutoff;
              }));
  }
  return out;
}

util::JsonValue MetricsHistory::toJson(double windowSec) const {
  const std::vector<Sample> samples = window(windowSec);

  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-metrics-history-v1");
  doc.set("intervalSec", intervalSec_);
  doc.set("capacity", static_cast<double>(capacity_));
  doc.set("samples", static_cast<double>(samples.size()));

  util::JsonValue t = util::JsonValue::array();
  for (const Sample& s : samples) t.push(s.unixSec);
  doc.set("t", std::move(t));

  util::JsonValue cs = util::JsonValue::object();
  util::JsonValue gs = util::JsonValue::object();
  util::JsonValue hs = util::JsonValue::object();
  if (!samples.empty()) {
    const MetricsSnapshot& latest = samples.back().snap;
    for (const auto& [name, lastValue] : latest.counters) {
      (void)lastValue;
      std::vector<long long> series;
      series.reserve(samples.size());
      for (const Sample& s : samples)
        series.push_back(s.snap.counterValue(name));
      cs.set(name, deltaSeries(series));
    }
    for (const auto& [name, lastValue] : latest.gauges) {
      (void)lastValue;
      util::JsonValue arr = util::JsonValue::array();
      for (const Sample& s : samples) {
        double v = 0.0;
        for (const auto& [gn, gv] : s.snap.gauges)
          if (gn == name) v = gv;
        arr.push(v);
      }
      gs.set(name, std::move(arr));
    }
    for (const HistogramSnapshot& hv : latest.histograms) {
      std::vector<long long> counts;
      util::JsonValue p50 = util::JsonValue::array();
      util::JsonValue p95 = util::JsonValue::array();
      util::JsonValue p99 = util::JsonValue::array();
      for (const Sample& s : samples) {
        const HistogramSnapshot* h = s.snap.findHistogram(hv.name);
        counts.push_back(h != nullptr ? h->count : 0);
        p50.push(h != nullptr ? h->quantileInterpolated(0.50) : 0.0);
        p95.push(h != nullptr ? h->quantileInterpolated(0.95) : 0.0);
        p99.push(h != nullptr ? h->quantileInterpolated(0.99) : 0.0);
      }
      util::JsonValue e = util::JsonValue::object();
      e.set("count", deltaSeries(counts));
      e.set("p50", std::move(p50));
      e.set("p95", std::move(p95));
      e.set("p99", std::move(p99));
      hs.set(hv.name, std::move(e));
    }
  }
  doc.set("counters", std::move(cs));
  doc.set("gauges", std::move(gs));
  doc.set("histograms", std::move(hs));
  return doc;
}

}  // namespace ahfic::obs
