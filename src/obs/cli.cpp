#include "obs/cli.h"

#include <cstring>
#include <ostream>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/error.h"

namespace ahfic::obs {

bool CliOptions::consume(int argc, char** argv, int& k) {
  const char* arg = argv[k];
  std::string* target = nullptr;
  if (std::strcmp(arg, "--trace") == 0)
    target = &tracePath;
  else if (std::strcmp(arg, "--metrics") == 0)
    target = &metricsPath;
  else if (std::strcmp(arg, "--profile") == 0)
    target = &profilePath;
  else
    return false;
  if (k + 1 >= argc)
    throw Error(std::string("obs: ") + arg + " requires a FILE argument");
  *target = argv[++k];
  return true;
}

void CliOptions::begin() const {
  if (!metricsPath.empty()) setMetricsEnabled(true);
  if (!tracePath.empty()) {
    setTracingEnabled(true);
    nameCurrentThreadLane("main");
  }
  if (!profilePath.empty()) {
    profileSetThreadName("main");
    if (!startProfiling())
      throw Error("obs: --profile: a capture is already running");
  }
}

void CliOptions::finish(std::ostream& os) const {
  if (!profilePath.empty() && profilingActive()) {
    const ProfileReport report = stopProfiling();
    writeProfileFiles(report, profilePath);
    os << "[obs] wrote profile to " << profilePath << " (+.folded): "
       << report.samples << " samples";
    if (report.dropped > 0) os << ", " << report.dropped << " dropped";
    os << "\n";
  }
  if (!metricsPath.empty()) {
    metrics().snapshot().writeJsonFile(metricsPath);
    os << "[obs] wrote metrics to " << metricsPath << "\n";
  }
  if (!tracePath.empty()) {
    writeTraceFile(tracePath);
    os << "[obs] wrote trace to " << tracePath;
    if (droppedTraceEvents() > 0)
      os << " (" << droppedTraceEvents() << " events dropped at cap)";
    os << "\n";
  }
  if (anyEnabled()) summary(os);
}

void summary(std::ostream& os) {
  const std::string spans = spanSummary();
  if (!spans.empty())
    os << "\n[obs] top spans by cumulative time\n" << spans;
  const std::string metricsTables = metrics().snapshot().summary();
  if (!metricsTables.empty()) os << "\n[obs] metrics\n" << metricsTables;
}

}  // namespace ahfic::obs
