#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>

#include "util/error.h"
#include "util/mutex.h"
#include "util/table.h"

namespace ahfic::obs {

namespace {

std::atomic<bool> gTracingEnabled{false};

/// Hard cap on buffered events: a runaway transient with per-iteration
/// spans tops out around 100 bytes/event, so 1M events bounds the
/// collector at ~100 MB. Excess events are counted, not stored.
constexpr long long kMaxEvents = 1'000'000;

struct TraceEvent {
  std::string name;
  const char* category;
  double tsUs;
  double durUs;
  struct {
    const char* key;
    double value;
  } notes[2];
  int noteCount;
  const char* annKey = nullptr;  ///< optional string arg (correlation id)
  std::string annValue;
};

/// One trace lane: owned by a single writer thread at a time, merged by
/// the serializer. The mutex is per-lane so writers never contend with
/// each other, only (briefly) with a concurrent serialization.
struct Lane {
  // Written once under Collector::mu when the lane is created, const
  // thereafter; readers (serializers) see it ordered by that same lock.
  int id = 0;
  util::Mutex mu;
  std::string name AHFIC_GUARDED_BY(mu);
  std::vector<TraceEvent> events AHFIC_GUARDED_BY(mu);
};

struct Collector {
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  // Lane list + free list. Lock order: Collector::mu before any
  // Lane::mu (nameLane and the serializers hold the list lock while
  // taking per-lane locks; nothing locks them the other way around).
  util::Mutex mu;
  std::vector<std::unique_ptr<Lane>> lanes AHFIC_GUARDED_BY(mu);
  std::vector<Lane*> freeLanes AHFIC_GUARDED_BY(mu);
  std::atomic<long long> eventCount{0};
  std::atomic<long long> dropped{0};

  Lane* acquireLane() {
    util::MutexLock lock(&mu);
    if (!freeLanes.empty()) {
      Lane* l = freeLanes.back();
      freeLanes.pop_back();
      return l;
    }
    lanes.push_back(std::make_unique<Lane>());
    lanes.back()->id = static_cast<int>(lanes.size()) - 1;
    return lanes.back().get();
  }

  void releaseLane(Lane* lane) {
    util::MutexLock lock(&mu);
    freeLanes.push_back(lane);
  }

  /// Names `cur`, or — when `cur` already carries a different owner's
  /// named events (lane reuse across batches; renaming would
  /// retroactively relabel them) — swaps to a lane this name can own:
  /// a free lane with the same name, a pristine free lane, or a new one.
  Lane* nameLane(Lane* cur, const std::string& name) {
    util::MutexLock lock(&mu);
    {
      util::MutexLock laneLock(&cur->mu);
      if (cur->events.empty() || cur->name.empty() || cur->name == name) {
        cur->name = name;
        return cur;
      }
    }
    Lane* pick = nullptr;
    for (Lane* f : freeLanes) {
      util::MutexLock laneLock(&f->mu);
      if (f->name == name) {
        pick = f;
        break;
      }
    }
    if (pick == nullptr) {
      for (Lane* f : freeLanes) {
        util::MutexLock laneLock(&f->mu);
        if (f->name.empty() && f->events.empty()) {
          pick = f;
          break;
        }
      }
    }
    if (pick != nullptr) {
      freeLanes.erase(
          std::remove(freeLanes.begin(), freeLanes.end(), pick),
          freeLanes.end());
    } else {
      lanes.push_back(std::make_unique<Lane>());
      lanes.back()->id = static_cast<int>(lanes.size()) - 1;
      pick = lanes.back().get();
    }
    freeLanes.push_back(cur);
    util::MutexLock laneLock(&pick->mu);
    pick->name = name;
    return pick;
  }

  double nowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  }
};

Collector& collector() {
  static Collector* c = new Collector;  // leaked: outlives thread locals
  return *c;
}

struct LaneLease {
  LaneLease() : lane(collector().acquireLane()) {}
  ~LaneLease() { collector().releaseLane(lane); }
  Lane* lane;
};

LaneLease& localLease() {
  thread_local LaneLease lease;
  return lease;
}

Lane& localLane() { return *localLease().lane; }

/// Minimal JSON string escaping for event/lane names (the only
/// user-influenced strings in a trace).
void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

void setTracingEnabled(bool on) {
  gTracingEnabled.store(on, std::memory_order_relaxed);
}

bool tracingEnabled() {
  return gTracingEnabled.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* category) {
  if (!tracingEnabled()) return;
  live_ = true;
  staticName_ = name;
  category_ = category;
  startUs_ = collector().nowUs();
}

ScopedSpan::ScopedSpan(std::string name, const char* category) {
  if (!tracingEnabled()) return;
  live_ = true;
  dynamicName_ = std::move(name);
  category_ = category;
  startUs_ = collector().nowUs();
}

void ScopedSpan::note(const char* key, double value) {
  if (!live_ || noteCount_ >= 2) return;
  notes_[noteCount_].key = key;
  notes_[noteCount_].value = value;
  ++noteCount_;
}

void ScopedSpan::annotate(const char* key, std::string value) {
  if (!live_ || annKey_ != nullptr || value.empty()) return;
  annKey_ = key;
  annValue_ = std::move(value);
}

ScopedSpan::~ScopedSpan() {
  if (!live_) return;
  Collector& c = collector();
  const double endUs = c.nowUs();
  if (c.eventCount.fetch_add(1, std::memory_order_relaxed) >= kMaxEvents) {
    c.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent ev;
  ev.name = staticName_ != nullptr ? std::string(staticName_)
                                   : std::move(dynamicName_);
  ev.category = category_;
  ev.tsUs = startUs_;
  ev.durUs = endUs - startUs_;
  ev.noteCount = noteCount_;
  for (int k = 0; k < noteCount_; ++k) ev.notes[k] = {notes_[k].key,
                                                      notes_[k].value};
  ev.annKey = annKey_;
  ev.annValue = std::move(annValue_);
  Lane& lane = localLane();
  util::MutexLock lock(&lane.mu);
  lane.events.push_back(std::move(ev));
}

void nameCurrentThreadLane(const std::string& name) {
  if (!tracingEnabled()) return;
  LaneLease& lease = localLease();
  lease.lane = collector().nameLane(lease.lane, name);
}

std::vector<SpanTotal> spanTotals() {
  Collector& c = collector();
  std::map<std::string, SpanTotal> agg;
  util::MutexLock listLock(&c.mu);
  for (const auto& lane : c.lanes) {
    util::MutexLock lock(&lane->mu);
    for (const TraceEvent& ev : lane->events) {
      SpanTotal& t = agg[ev.name];
      t.name = ev.name;
      ++t.count;
      t.totalUs += ev.durUs;
    }
  }
  std::vector<SpanTotal> out;
  out.reserve(agg.size());
  for (auto& [name, total] : agg) out.push_back(std::move(total));
  std::sort(out.begin(), out.end(), [](const SpanTotal& a,
                                       const SpanTotal& b) {
    return a.totalUs > b.totalUs;
  });
  return out;
}

std::string spanSummary(size_t topN) {
  std::vector<SpanTotal> totals = spanTotals();
  if (totals.empty()) return "";
  if (totals.size() > topN) totals.resize(topN);
  util::Table t({"span", "count", "total [ms]", "mean [us]"});
  for (const SpanTotal& s : totals) {
    t.addRow({s.name, std::to_string(s.count),
              util::fixed(s.totalUs * 1e-3, 2),
              util::fixed(s.count > 0 ? s.totalUs / s.count : 0.0, 1)});
  }
  return t.toString();
}

std::string traceJson() {
  Collector& c = collector();
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  comma();
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"ahfic\"}}";

  util::MutexLock listLock(&c.mu);
  out.reserve(out.size() + 96 * static_cast<size_t>(std::min(
                               c.eventCount.load(), kMaxEvents)));
  for (const auto& lane : c.lanes) {
    util::MutexLock lock(&lane->mu);
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(lane->id);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    appendEscaped(out,
                  lane->name.empty() ? "thread-" + std::to_string(lane->id)
                                     : lane->name);
    out += "}}";
    for (const TraceEvent& ev : lane->events) {
      comma();
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(lane->id);
      out += ",\"name\":";
      appendEscaped(out, ev.name);
      out += ",\"cat\":";
      appendEscaped(out, ev.category);
      out += ",\"ts\":";
      appendNumber(out, ev.tsUs);
      out += ",\"dur\":";
      appendNumber(out, ev.durUs);
      if (ev.noteCount > 0 || ev.annKey != nullptr) {
        out += ",\"args\":{";
        for (int k = 0; k < ev.noteCount; ++k) {
          if (k > 0) out += ',';
          appendEscaped(out, ev.notes[k].key);
          out += ':';
          appendNumber(out, ev.notes[k].value);
        }
        if (ev.annKey != nullptr) {
          if (ev.noteCount > 0) out += ',';
          appendEscaped(out, ev.annKey);
          out += ':';
          appendEscaped(out, ev.annValue);
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "],\"otherData\":{\"droppedEvents\":";
  out += std::to_string(c.dropped.load(std::memory_order_relaxed));
  out += "}}";
  return out;
}

void writeTraceFile(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw Error("obs: cannot write trace file '" + path + "'");
  f << traceJson() << "\n";
  if (!f.good()) throw Error("obs: write to '" + path + "' failed");
}

void clearTrace() {
  Collector& c = collector();
  util::MutexLock listLock(&c.mu);
  for (const auto& lane : c.lanes) {
    util::MutexLock lock(&lane->mu);
    lane->events.clear();
  }
  c.eventCount.store(0, std::memory_order_relaxed);
  c.dropped.store(0, std::memory_order_relaxed);
}

long long droppedTraceEvents() {
  return collector().dropped.load(std::memory_order_relaxed);
}

}  // namespace ahfic::obs
