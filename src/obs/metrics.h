#pragma once
// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-scale buckets, designed to be zero-cost when disabled.
//
// Collection is off by default. Instrumentation points hold cheap value
// handles (an integer id) obtained once; every write first checks one
// relaxed atomic flag and returns immediately when metrics are off, so a
// disabled hot path pays a single predictable branch.
//
// Writes go to per-thread shards (each slot an atomic written only by its
// owning thread), so concurrent workers never contend; snapshot() merges
// the shards. A thread that exits returns its shard to a free list for
// the next thread, so long test runs do not grow the shard set.
//
// Naming convention (see docs/observability.md): `subsystem.metric_name`,
// snake_case, unit suffix where not obvious (`_ms`, `_per_solve`).
//
// Usage:
//   static const obs::Counter c = obs::counter("spice.newton_iterations");
//   c.add(12);
//   obs::setMetricsEnabled(true);
//   obs::MetricsSnapshot snap = obs::metrics().snapshot();
//   snap.toJson().dump(2);

#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace ahfic::obs {

/// Master switch for metric collection (relaxed atomic; safe to flip from
/// any thread, though enabling mid-batch only captures later writes).
void setMetricsEnabled(bool on);
bool metricsEnabled();

/// Histogram bucket scheme: fixed log-scale, 4 buckets per decade.
/// Bucket 0 is the underflow bucket (value <= 1e-3); the last bucket is
/// the overflow bucket (upper bound +infinity); bucket i in between
/// covers (ub(i-1), ub(i)] with ub(i) = 1e-3 * 10^(i/4). The span
/// 1e-3 .. ~3.2e9 comfortably covers every metric the stack records
/// (Newton iterations, wall milliseconds, step counts).
inline constexpr int kHistogramBuckets = 52;

/// Upper bound of bucket `bucket`; +infinity for the overflow bucket.
double histogramBucketUpperBound(int bucket);
/// Bucket index a value lands in (NaN and values <= 1e-3 underflow to 0).
int histogramBucketIndex(double value);

class Registry;
/// The process-wide registry.
Registry& metrics();

/// Cheap copyable handle to a counter. Obtain via obs::counter(); writes
/// are no-ops while metrics are disabled.
class Counter {
 public:
  Counter() = default;
  void add(long long delta = 1) const;

 private:
  friend class Registry;
  explicit Counter(int id) : id_(id) {}
  int id_ = -1;
};

/// Last-write-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;

 private:
  friend class Registry;
  explicit Gauge(int id) : id_(id) {}
  int id_ = -1;
};

/// Log-bucketed distribution (see bucket scheme above).
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;

 private:
  friend class Registry;
  explicit Histogram(int id) : id_(id) {}
  int id_ = -1;
};

/// Registers (or finds) a metric by name. Registration is mutex-guarded
/// and intended to happen once per call site (static local handle).
Counter counter(const std::string& name);
Gauge gauge(const std::string& name);
Histogram histogram(const std::string& name);

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::string name;
  long long count = 0;
  double sum = 0.0;
  std::vector<long long> buckets;  ///< kHistogramBuckets entries

  double mean() const { return count > 0 ? sum / count : 0.0; }
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]).
  /// Returns 0 for an empty histogram; +infinity when it lands in the
  /// overflow bucket.
  double quantile(double q) const;
  /// q-quantile with log-linear interpolation inside the landing bucket
  /// (buckets are log-scale, so geometric interpolation between the
  /// bucket bounds). Always finite: the overflow bucket reports its
  /// lower bound, the underflow bucket interpolates linearly from 0.
  /// This is what the summary tables and bench envelopes report as
  /// p50/p95/p99.
  double quantileInterpolated(double q) const;
};

/// Point-in-time merge of every shard. Counters and histograms are
/// cumulative since process start (or resetForTest); use since() for a
/// windowed view.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter/histogram deltas relative to `earlier` (gauges keep their
  /// current value). Metrics absent from `earlier` pass through whole.
  MetricsSnapshot since(const MetricsSnapshot& earlier) const;

  /// Counter value by name (0 when absent).
  long long counterValue(const std::string& name) const;
  /// Histogram by name (nullptr when absent).
  const HistogramSnapshot* findHistogram(const std::string& name) const;

  /// "ahfic-metrics-v1" document: counters/gauges as name->value maps,
  /// histograms with count/sum/mean/p50/p95/p99 and the non-empty
  /// buckets ({"le": upperBound-or-null-for-overflow, "n": count}).
  util::JsonValue toJson() const;
  /// Prometheus text exposition (version 0.0.4): names mangled
  /// dots->underscores with an "ahfic_" prefix, histograms as
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
  std::string toPrometheusText() const;
  std::string toJsonString(int indent = 2) const;
  /// Writes toJsonString to a file; throws ahfic::Error on I/O failure.
  void writeJsonFile(const std::string& path) const;

  /// Text tables (util::Table) of the top `topN` counters by value plus
  /// every histogram (count/mean/p50/p95/p99, interpolated). Empty
  /// string when nothing was recorded.
  std::string summary(size_t topN = 12) const;
};

class Registry {
 public:
  /// Shard capacities. Fixed so per-thread shards never reallocate under
  /// concurrent writes. Sized with headroom for the serve daemon's
  /// per-endpoint counter families (serve.endpoint.<route>.<class> is 3
  /// counters per route). Registration beyond a cap returns an inert
  /// handle (writes are no-ops), bumps the pre-registered
  /// `obs.registry_saturated` counter, and warn-logs once per kind — a
  /// saturated registry degrades visibly instead of silently dropping
  /// new metrics.
  static constexpr int kMaxCounters = 224;
  static constexpr int kMaxGauges = 32;
  static constexpr int kMaxHistograms = 48;

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every slot in every shard. Test-only: callers must ensure no
  /// concurrent writers.
  void resetForTest();

  /// Clamps the effective registration caps so saturation is testable
  /// without burning the real capacity; pass -1 to restore a true cap.
  /// Also re-arms the one-shot saturation warnings. Test-only.
  void limitCapsForTest(int counters, int gauges, int histograms);

 private:
  friend class ::ahfic::obs::Counter;
  friend class ::ahfic::obs::Gauge;
  friend class ::ahfic::obs::Histogram;
  friend Registry& metrics();

  struct Shard;
  struct ShardLease;

  Registry();
  ~Registry();

  void counterAdd(int id, long long delta);
  void gaugeSet(int id, double value);
  void histogramObserve(int id, double value);
  void noteSaturation(const char* kind, const std::string& name,
                      bool firstForKind);

  Shard& localShard();
  Shard* acquireShard();
  void releaseShard(Shard* shard);

  struct Impl;
  Impl* impl_;
};

}  // namespace ahfic::obs
