#pragma once
// Shared command-line plumbing for the observability subsystem: every
// bench_* binary and spice_cli accepts
//
//   --trace FILE     enable span tracing, write Chrome trace JSON to FILE
//   --metrics FILE   enable the metrics registry, write a snapshot to FILE
//   --profile FILE   sample the run with the CPU-clock profiler, write
//                    the ahfic-profile-v1 document to FILE and the
//                    flamegraph.pl collapsed stacks to FILE.folded
//
// via this helper, so the flags parse and behave identically everywhere.
//
// Usage:
//   obs::CliOptions obsOpts;
//   for (int k = 1; k < argc; ++k) {
//     if (obsOpts.consume(argc, argv, k)) continue;
//     ... tool-specific flags ...
//   }
//   obsOpts.begin();
//   ... workload ...
//   obsOpts.finish(std::cout);

#include <iosfwd>
#include <string>

namespace ahfic::obs {

struct CliOptions {
  std::string tracePath;    ///< empty = tracing stays disabled
  std::string metricsPath;  ///< empty = metrics stay disabled
  std::string profilePath;  ///< empty = no profile capture

  /// Consumes argv[k] (and its value argument) when it is an obs flag;
  /// returns true and advances `k` past the value in that case. Throws
  /// ahfic::Error when a flag is missing its FILE argument.
  bool consume(int argc, char** argv, int& k);

  /// Enables the requested subsystems, names the calling thread "main"
  /// for tracing and profiling, and starts the profile capture when
  /// requested. Call once, before the workload.
  void begin() const;

  /// Writes the requested files and prints summary() to `os` when
  /// anything was enabled. Call once, after the workload.
  void finish(std::ostream& os) const;

  bool anyEnabled() const {
    return !tracePath.empty() || !metricsPath.empty() ||
           !profilePath.empty();
  }

  /// Usage-string fragment for tools that print their own help.
  static const char* usage() {
    return "[--trace FILE] [--metrics FILE] [--profile FILE]";
  }
};

/// Prints the observability summary — top spans by cumulative time and
/// the non-zero metrics tables — to `os`. No output when nothing was
/// recorded.
void summary(std::ostream& os);

}  // namespace ahfic::obs
