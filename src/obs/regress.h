#pragma once
// Perf-regression gating over "ahfic-bench-v1" artifacts — the policy
// core behind the bench_regress tool and the perf-regress CI job
// (docs/profiling.md covers the workflow).
//
// The problem with gating on wall-clock benchmarks is noise: a shared
// runner can easily smear a measurement by 20%. Three mechanisms keep
// the gate trustworthy:
//  * min-of-K folding — a baseline (and a candidate) is reduced from K
//    repeated artifacts by taking, per metric, the *best* observation
//    (min for lower-is-better, max for higher-is-better). The best of K
//    runs approaches the machine's true capability; the noise is
//    one-sided;
//  * per-metric relative thresholds — each gated metric declares how
//    much regression it tolerates (maxRegress, e.g. 0.5 = +50%), sized
//    to the metric's observed jitter;
//  * an explicit waive list — known-noisy metrics stay *reported* in
//    every comparison but never fail the gate, so waiving is a visible
//    policy decision in gates.json, not a deleted check.
//
// Baselines are machine-specific (nanoseconds do not travel between
// hosts), so bench/baselines/ commits the *gate policy* (gates.json)
// while baseline value documents are blessed per machine / per CI
// runner and carried as artifacts. A missing baseline therefore skips
// with a note instead of failing — unless the caller demands one.

#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace ahfic::obs {

/// One gated metric of a bench payload.
struct GateMetric {
  /// Extraction path inside the payload: dot-separated segments, each a
  /// plain key or key[sel=value] selecting the array element whose
  /// `sel` field stringifies to `value` — e.g.
  /// "circuits[name=diode_rc_ladder_250].backends.sparse.nsPerIteration".
  std::string path;
  /// Allowed relative regression (0.5 = the metric may move 50% in the
  /// bad direction before the gate fails).
  double maxRegress = 0.25;
  /// false: smaller is better (timings). true: larger is better
  /// (speedups, throughput).
  bool higherIsBetter = false;
};

/// Gate policy for one bench name.
struct BenchGates {
  std::vector<GateMetric> metrics;
  /// Paths (must also appear in `metrics`) that are reported but never
  /// fail the gate.
  std::vector<std::string> waived;

  bool isWaived(const std::string& path) const;
};

/// The committed policy document ("ahfic-gates-v1"): bench name -> gates.
struct GateConfig {
  std::map<std::string, BenchGates> benches;

  /// Parses gates.json; throws ahfic::Error on schema problems.
  static GateConfig fromJson(const util::JsonValue& doc);
  /// nullptr when the bench has no gate policy.
  const BenchGates* find(const std::string& bench) const;
};

/// Extracts the number at `path` (GateMetric::path syntax) from a bench
/// payload. Throws ahfic::Error naming the failing segment when the
/// path does not resolve to a number.
double extractMetric(const util::JsonValue& payload,
                     const std::string& path);

/// A reduced set of measurements: one value per gated metric, folded
/// min-of-K (or max-of-K) across repeat artifacts.
struct BaselineDoc {
  std::string bench;
  std::string gitRev;
  std::string timestamp;
  int repeats = 0;
  std::map<std::string, double> metrics;  ///< path -> folded value

  /// "ahfic-bench-baseline-v1" document.
  util::JsonValue toJson() const;
  static BaselineDoc fromJson(const util::JsonValue& doc);
};

/// Folds K parsed "ahfic-bench-v1" envelopes (same bench name; throws
/// when names disagree or a gated path is missing) into one BaselineDoc.
BaselineDoc reduceArtifacts(const std::vector<util::JsonValue>& envelopes,
                            const BenchGates& gates);

/// One metric's verdict in a comparison.
struct MetricComparison {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  /// Relative movement in the *bad* direction (positive = worse), i.e.
  /// current/baseline - 1 for lower-is-better metrics.
  double change = 0.0;
  double allowed = 0.0;
  bool higherIsBetter = false;
  bool waived = false;
  bool regressed = false;
};

/// Full comparison of a candidate against a baseline.
struct RegressReport {
  std::string bench;
  std::vector<MetricComparison> metrics;

  bool anyRegression() const;
  /// "ahfic-regress-v1" document (for the CI artifact).
  util::JsonValue toJson() const;
  /// Human-readable verdict table.
  std::string summary() const;
};

/// Compares `current` against `baseline` under `gates`. Metrics absent
/// from either document, and baselines <= 0 (no meaningful relative
/// change), are reported with change 0 and never regress.
RegressReport compareToBaseline(const BaselineDoc& baseline,
                                const BaselineDoc& current,
                                const BenchGates& gates);

}  // namespace ahfic::obs
