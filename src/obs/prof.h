#pragma once
// In-process sampling profiler — the fourth observability pillar next to
// metrics (metrics.h), tracing (trace.h) and logging (log.h). Answers
// the question the other three cannot: *where inside a span* is the time
// going, without recompiling or attaching an external tool.
//
// Capture model (docs/profiling.md):
//  * a POSIX interval timer (`timer_create`) delivers SIGPROF at a fixed
//    rate — against the process CPU clock by default (samples land on
//    whichever thread is burning CPU), or the monotonic wall clock for
//    latency-shaped investigations;
//  * the signal handler calls `backtrace()` and pushes the raw program
//    counters into a pre-allocated per-thread lock-free ring. Every
//    handler-side operation is async-signal-safe: no allocation, no
//    locks, no formatting — claiming a ring is one CAS against a fixed
//    pool, recording a sample is a memcpy plus one release store;
//  * a collector thread drains the rings every ~50 ms so long captures
//    do not overflow them; overflowed samples are *counted*, never
//    silently lost — the dropped total surfaces in the report;
//  * symbolization (`dladdr` + demangling) happens entirely off-signal,
//    at stop time, over the set of unique PCs.
//
// The profiler follows the registry's zero-cost-when-off contract: while
// no capture is active there are no signals at all, and the only hook a
// cold path ever pays is profileSetThreadName() at thread start (a
// thread-local strcpy). profilingActive() is one relaxed atomic load.
//
// Output: a folded-stack report — flamegraph.pl-compatible collapsed
// text plus an "ahfic-profile-v1" JSON document carried in the standard
// "ahfic-bench-v1" envelope (obs/bench.h), so profiles travel through
// the same artifact plumbing as every bench result.
//
// One capture at a time: startProfiling() returns false while another
// capture is running (the serve layer maps that to HTTP 409).
//
// Usage:
//   obs::ProfileOptions opts;            // 197 Hz, CPU clock
//   if (obs::startProfiling(opts)) {
//     ... workload ...
//     obs::ProfileReport rep = obs::stopProfiling();
//     obs::writeProfileFiles(rep, "profile.json");  // + profile.json.folded
//   }
// or, flag-shaped (what --profile FILE does):
//   obs::ScopedProfile prof("profile.json");

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace ahfic::obs {

struct ProfileOptions {
  /// Sampling rate. A prime-ish default avoids lockstep with periodic
  /// work (history samplers, 100 Hz schedulers).
  double hz = 197.0;
  /// false = CLOCK_PROCESS_CPUTIME_ID (samples attribute to running
  /// threads); true = CLOCK_MONOTONIC (samples fire in wall time and
  /// land on one signal-designated thread — use for single-threaded
  /// latency questions).
  bool wallClock = false;
};

/// True while a capture is running. One relaxed atomic load.
bool profilingActive();

/// Starts a capture. Returns false — without touching the running
/// capture — when one is already active, and throws ahfic::Error when
/// the OS timer cannot be created.
bool startProfiling(const ProfileOptions& opts = {});

/// Aggregated result of one capture.
struct ProfileReport {
  std::string clock;      ///< "cpu" or "wall"
  double hz = 0.0;
  double durationSec = 0.0;  ///< wall-clock capture length
  long long samples = 0;     ///< stacks recorded and aggregated
  long long dropped = 0;     ///< lost to ring overflow / pool exhaustion
  int threads = 0;           ///< distinct sampled threads
  /// Folded stacks, root-first ("thread;outer;...;leaf"), sorted by
  /// count descending then name — deterministic for identical input.
  std::vector<std::pair<std::string, long long>> stacks;

  /// flamegraph.pl collapsed format: one "stack count" line per entry.
  std::string collapsed() const;
  /// "ahfic-profile-v1" payload (wrap with benchEnvelope for transport).
  util::JsonValue toJson() const;
};

/// Stops the running capture and returns its report. Returns an empty
/// report (samples == 0, clock == "") when no capture is active.
ProfileReport stopProfiling();

/// Writes the enveloped JSON document to `jsonPath` and the collapsed
/// text to `jsonPath + ".folded"`. Throws ahfic::Error on I/O failure.
void writeProfileFiles(const ProfileReport& report,
                       const std::string& jsonPath);

/// Names the calling thread in profile output ("worker-3", "http-1").
/// Cheap thread-local copy; safe to call whether or not a capture is
/// running (threads are usually named once at start, before any
/// capture). Unnamed threads report as "thread".
void profileSetThreadName(const char* name);

/// Envelope JSON of the most recent completed capture in this process
/// ("" when none yet) — what GET /v1/profile/latest serves.
std::string latestProfileJson();

/// Summary of the most recent capture for dashboards (/debug).
struct LatestProfileInfo {
  bool present = false;
  std::string timestamp;  ///< ISO-8601 UTC of capture end
  double durationSec = 0.0;
  long long samples = 0;
};
LatestProfileInfo latestProfileInfo();

/// RAII start/stop + file emission, for the --profile flag. When another
/// capture is already active the scope is inert (active() == false) —
/// flags must not fight the daemon endpoint.
class ScopedProfile {
 public:
  explicit ScopedProfile(std::string jsonPath, ProfileOptions opts = {});
  ~ScopedProfile();

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

  bool active() const { return active_; }

 private:
  std::string jsonPath_;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Internals, exposed for tests (tests/obs_prof_test.cpp). Not part of
// the stable surface.

namespace prof {

inline constexpr int kMaxFrames = 48;      ///< deepest stack recorded
inline constexpr int kRingCapacity = 512;  ///< samples buffered per thread
inline constexpr int kMaxRings = 32;       ///< concurrent sampled threads
inline constexpr int kThreadNameMax = 32;  ///< incl. terminating NUL

/// One raw sample: leaf-first program counters, as backtrace() returns.
struct RawSample {
  int depth = 0;
  void* pc[kMaxFrames];
};

/// Single-producer single-consumer ring. The producer is the signal
/// handler on the owning thread (push: memcpy + one release store); the
/// consumer is the collector thread (drain). A full ring counts the
/// sample as dropped instead of blocking — a profiler must never stall
/// the profiled thread.
class SampleRing {
 public:
  /// Producer side; async-signal-safe. False when full (counted).
  bool push(void* const* pcs, int depth) {
    const unsigned h = head_.load(std::memory_order_relaxed);
    const unsigned t = tail_.load(std::memory_order_acquire);
    if (h - t >= static_cast<unsigned>(kRingCapacity)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    RawSample& slot = slots_[h % kRingCapacity];
    slot.depth = depth < kMaxFrames ? depth : kMaxFrames;
    std::memcpy(slot.pc, pcs,
                sizeof(void*) * static_cast<size_t>(slot.depth));
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every buffered sample to `out` and frees
  /// the slots. Returns the number drained.
  size_t drain(std::vector<RawSample>& out) {
    const unsigned t = tail_.load(std::memory_order_relaxed);
    const unsigned h = head_.load(std::memory_order_acquire);
    for (unsigned i = t; i != h; ++i)
      out.push_back(slots_[i % kRingCapacity]);
    tail_.store(h, std::memory_order_release);
    return h - t;
  }

  long long dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Consumer-side reset between capture sessions (no producer active).
  void reset() {
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    owner.store(0, std::memory_order_release);
    name[0] = '\0';
  }

  /// Session id of the claiming capture; 0 = free. Claimed by the first
  /// signal that lands on a thread (CAS 0 -> session).
  std::atomic<unsigned> owner{0};
  char name[kThreadNameMax] = {0};  ///< claiming thread's profile name

 private:
  std::atomic<unsigned> head_{0};
  std::atomic<unsigned> tail_{0};
  std::atomic<long long> dropped_{0};
  RawSample slots_[kRingCapacity];
};

/// Folded-stack accumulator: "a;b;c" -> count. Deterministic: sorted()
/// orders by count descending, ties by stack string ascending, so two
/// aggregations of the same samples — in any arrival order, through any
/// merge() grouping — produce identical output.
class FoldedStacks {
 public:
  void add(const std::string& stack, long long count = 1) {
    counts_[stack] += count;
  }
  void merge(const FoldedStacks& other) {
    for (const auto& [stack, n] : other.counts_) counts_[stack] += n;
  }
  long long total() const {
    long long t = 0;
    for (const auto& [stack, n] : counts_) t += n;
    return t;
  }
  size_t size() const { return counts_.size(); }
  std::vector<std::pair<std::string, long long>> sorted() const;

 private:
  std::map<std::string, long long> counts_;
};

/// Best-effort symbol for one return address: demangled function name,
/// else "module+0xoffset", else the raw address. Off-signal only.
std::string symbolizePc(void* pc);

}  // namespace prof

}  // namespace ahfic::obs
