#include "obs/bench.h"

#include <ctime>
#include <fstream>
#include <utility>

#include "util/error.h"

namespace ahfic::obs {

std::string buildGitRev() {
#ifdef AHFIC_GIT_REV
  return AHFIC_GIT_REV;
#else
  return "unknown";
#endif
}

std::string benchTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

util::JsonValue benchEnvelope(const std::string& name,
                              util::JsonValue payload,
                              const std::string& timestamp) {
  util::JsonValue v = util::JsonValue::object();
  v.set("schema", "ahfic-bench-v1");
  v.set("name", name);
  v.set("gitRev", buildGitRev());
  v.set("timestamp", timestamp);
  v.set("payload", std::move(payload));
  return v;
}

void writeBenchFile(const std::string& path, const std::string& name,
                    util::JsonValue payload, const std::string& timestamp) {
  std::ofstream f(path);
  if (!f) throw Error("writeBenchFile: cannot write '" + path + "'");
  f << benchEnvelope(name, std::move(payload), timestamp).dump(2) << "\n";
  if (!f.good())
    throw Error("writeBenchFile: write to '" + path + "' failed");
}

}  // namespace ahfic::obs
