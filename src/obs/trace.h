#pragma once
// Structured tracing: scoped-span RAII timers emitting Chrome trace-event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is off by default; a disabled ScopedSpan costs one relaxed
// atomic load. When enabled, each span records a complete ("ph":"X")
// event into a per-thread buffer on destruction, so nested spans render
// as a flame chart. Threads map to trace lanes; the runner names its
// worker lanes ("worker-0", ...) so a batch renders one lane per worker.
//
// Usage:
//   obs::setTracingEnabled(true);
//   {
//     obs::ScopedSpan span("spice.transient", "spice");
//     span.note("steps", 1234);
//     ... work ...
//   }  // span emitted here
//   obs::writeTraceFile("out.trace.json");

#include <string>
#include <vector>

namespace ahfic::obs {

/// Master switch for span collection (relaxed atomic).
void setTracingEnabled(bool on);
bool tracingEnabled();

/// RAII timer: measures construction-to-destruction and emits one
/// complete trace event on the current thread's lane. No-op (single
/// atomic load) while tracing is disabled.
class ScopedSpan {
 public:
  /// `name` must outlive the span (string literals at instrumentation
  /// points). `category` groups events in the viewer.
  explicit ScopedSpan(const char* name, const char* category = "app");
  /// Dynamic label (e.g. a job key). The string is copied.
  ScopedSpan(std::string name, const char* category = "app");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument shown in the viewer's detail pane.
  /// At most 2 notes per span; later calls are dropped. `key` must
  /// outlive the span (use string literals).
  void note(const char* key, double value);

  /// Attaches one string argument (the correlation id slot — e.g.
  /// "request_id"). One per span; later calls are dropped. `key` must
  /// outlive the span; the value is copied.
  void annotate(const char* key, std::string value);

 private:
  bool live_ = false;
  const char* staticName_ = nullptr;  ///< literal-name fast path
  std::string dynamicName_;           ///< used when staticName_ == nullptr
  const char* category_ = "app";
  double startUs_ = 0.0;
  struct Note {
    const char* key;
    double value;
  } notes_[2];
  int noteCount_ = 0;
  const char* annKey_ = nullptr;  ///< string annotation, nullptr = none
  std::string annValue_;
};

/// Names the calling thread's trace lane (emitted as thread_name
/// metadata). The runner calls this from each worker. No-op while
/// tracing is disabled.
void nameCurrentThreadLane(const std::string& name);

/// Cumulative-time aggregate of all recorded spans sharing a name.
struct SpanTotal {
  std::string name;
  long long count = 0;
  double totalUs = 0.0;
};

/// Aggregates recorded spans, descending by cumulative time.
std::vector<SpanTotal> spanTotals();

/// util::Table rendering of the top `topN` spans by cumulative time;
/// empty string when no spans were recorded.
std::string spanSummary(size_t topN = 12);

/// The full trace as a Chrome trace-event JSON object
/// ({"traceEvents": [...], ...}).
std::string traceJson();

/// Writes traceJson() to `path`; throws ahfic::Error on I/O failure.
void writeTraceFile(const std::string& path);

/// Drops all recorded events and the dropped-event count (lanes and
/// their names survive). Test helper.
void clearTrace();

/// Events dropped because the in-memory cap (~1M events) was reached.
/// A non-zero value is also recorded in the trace file's otherData.
long long droppedTraceEvents();

}  // namespace ahfic::obs
