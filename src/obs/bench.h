#pragma once
// Common "ahfic-bench-v1" envelope for every bench_* JSON artifact, so
// the recorded perf trajectory is self-describing: which bench, which
// git revision, when it ran. The bench-specific document goes under
// "payload" with its own schema tag (e.g. "ahfic-bench-solver-v1"), so
// existing per-bench consumers only have to descend one level.
//
//   {
//     "schema": "ahfic-bench-v1",
//     "name": "solver_ablation",
//     "gitRev": "<12-hex or unknown>",
//     "timestamp": "<caller-populated ISO-8601 UTC, or "">",
//     "payload": { "schema": "ahfic-bench-solver-v1", ... }
//   }

#include <string>

#include "util/json.h"

namespace ahfic::obs {

/// Git revision the binary was configured from, baked in at build time
/// ("unknown" outside a git checkout).
std::string buildGitRev();

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SSZ". The envelope keeps
/// the timestamp caller-populated so benches that must stay
/// deterministic can pass "" instead.
std::string benchTimestampUtc();

/// Wraps `payload` in the envelope above.
util::JsonValue benchEnvelope(const std::string& name,
                              util::JsonValue payload,
                              const std::string& timestamp = "");

/// Writes the enveloped payload to `path` (pretty-printed, trailing
/// newline). Throws ahfic::Error on I/O failure.
void writeBenchFile(const std::string& path, const std::string& name,
                    util::JsonValue payload,
                    const std::string& timestamp = "");

}  // namespace ahfic::obs
