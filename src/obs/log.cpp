#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/json.h"
#include "util/mutex.h"

namespace ahfic::obs {

namespace detail {

/// One registered instrumentation point. Rate-limiter state is per-site
/// and lock-free: approximate counting under contention is fine — the
/// limiter bounds the log volume, it is not an accounting ledger.
struct LogSiteInfo {
  std::string name;
  LogLevel level = LogLevel::kInfo;
  int maxPerSec = 0;
  std::atomic<long long> windowSec{-1};
  std::atomic<int> inWindow{0};
  std::atomic<long long> suppressed{0};
};

}  // namespace detail

namespace {

std::atomic<int> gLogLevel{static_cast<int>(LogLevel::kOff)};
std::atomic<long long> gEmitted{0};
std::atomic<long long> gSuppressed{0};

using detail::LogSiteInfo;

/// Registry + sinks. Sites live in a deque — push_back never moves
/// existing entries, so LogSite handles keep raw pointers that stay
/// valid while other threads register concurrently (LogSiteInfo holds
/// atomics and cannot move anyway).
struct LogState {
  util::Mutex regMu;
  std::deque<LogSiteInfo> sites AHFIC_GUARDED_BY(regMu);

  // Serializes sink reconfiguration and whole-line writes: no torn
  // lines. Never held together with regMu.
  util::Mutex sinkMu;
  bool textEnabled AHFIC_GUARDED_BY(sinkMu) = true;
  FILE* textFile AHFIC_GUARDED_BY(sinkMu) = nullptr;   // nullptr = stderr
  bool jsonlEnabled AHFIC_GUARDED_BY(sinkMu) = false;
  FILE* jsonlFile AHFIC_GUARDED_BY(sinkMu) = nullptr;  // nullptr = stderr
};

LogState& state() {
  static LogState* s = new LogState;  // leaked: outlives everything
  return *s;
}

thread_local TraceContext tTraceContext;

long long steadySeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "2026-08-08T12:34:56.789Z" — millisecond UTC wall time.
std::string isoTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

std::string formatNumber(double v) {
  char buf[40];
  // Integers print without a trailing ".000000": log fields are mostly
  // counts, ids and millisecond timings.
  if (v == static_cast<long long>(v) && v > -1e15 && v < 1e15)
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  else
    std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// key=value for the text sink; values with whitespace or '=' get
/// quoted so the line stays splittable.
void appendTextField(std::string& out, const char* key,
                     const std::string& value) {
  out += ' ';
  out += key;
  out += '=';
  if (value.find_first_of(" \t\"=") != std::string::npos) {
    out += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  } else {
    out += value;
  }
}

void writeLine(FILE* target, const std::string& line) {
  FILE* f = target != nullptr ? target : stderr;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fflush(f);
}

void setSink(bool jsonl, bool enabled, const std::string& path) {
  // Reconfiguring an enabled sink is the last chance for carried
  // rate-limiter debt to surface in it — flush before touching the
  // routing, so final-window suppression is not dropped with the sink.
  {
    LogState& s = state();
    bool live;
    {
      util::MutexLock lock(&s.sinkMu);
      live = jsonl ? s.jsonlEnabled : s.textEnabled;
    }
    if (live) flushSuppressedLogDebt();
  }
  FILE* opened = nullptr;
  if (enabled && !path.empty()) {
    opened = std::fopen(path.c_str(), "w");
    if (opened == nullptr)
      throw Error("obs: cannot open log file '" + path + "'");
  }
  LogState& s = state();
  util::MutexLock lock(&s.sinkMu);
  FILE*& slot = jsonl ? s.jsonlFile : s.textFile;
  bool& flag = jsonl ? s.jsonlEnabled : s.textEnabled;
  if (slot != nullptr) std::fclose(slot);
  slot = opened;
  flag = enabled;
}

}  // namespace

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parseLogLevel(const std::string& name, LogLevel& out) {
  for (LogLevel l : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                     LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    if (name == logLevelName(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

void setLogLevel(LogLevel level) {
  gLogLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() {
  return static_cast<LogLevel>(gLogLevel.load(std::memory_order_relaxed));
}

void setTextLogSink(bool enabled, const std::string& path) {
  setSink(/*jsonl=*/false, enabled, path);
}

void setJsonlLogSink(bool enabled, const std::string& path) {
  setSink(/*jsonl=*/true, enabled, path);
}

void flushSuppressedLogDebt() {
  LogState& s = state();
  {
    util::MutexLock lock(&s.sinkMu);
    if (!s.textEnabled && !s.jsonlEnabled) return;
  }
  // Collect under regMu, format unlocked, write under sinkMu — the two
  // mutexes are never held together (see LogState).
  std::vector<std::pair<std::string, long long>> debts;
  {
    util::MutexLock lock(&s.regMu);
    for (LogSiteInfo& site : s.sites) {
      const long long n =
          site.suppressed.exchange(0, std::memory_order_relaxed);
      if (n > 0) debts.emplace_back(site.name, n);
    }
  }
  if (debts.empty()) return;
  for (const auto& [siteName, n] : debts) {
    const std::string ts = isoTimestamp();
    std::string textLine = ts;
    textLine += " warn  ";
    textLine += siteName;
    textLine += ": rate limiter dropped lines";
    appendTextField(textLine, "suppressed",
                    formatNumber(static_cast<double>(n)));
    textLine += '\n';
    util::JsonValue doc = util::JsonValue::object();
    doc.set("ts", ts);
    doc.set("level", "warn");
    doc.set("site", siteName);
    doc.set("msg", "rate limiter dropped lines");
    doc.set("suppressed", static_cast<double>(n));
    const std::string jsonlLine = doc.dump() + "\n";
    gEmitted.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(&s.sinkMu);
    if (s.textEnabled) writeLine(s.textFile, textLine);
    if (s.jsonlEnabled) writeLine(s.jsonlFile, jsonlLine);
  }
}

void resetLoggingForTest() {
  setSink(false, true, "");
  setSink(true, false, "");
  setLogLevel(LogLevel::kOff);
}

long long logLinesEmitted() {
  return gEmitted.load(std::memory_order_relaxed);
}

long long logLinesSuppressed() {
  return gSuppressed.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Correlation context

const TraceContext& currentTraceContext() { return tTraceContext; }

ScopedTraceContext::ScopedTraceContext(std::string requestId,
                                       std::string jobId)
    : saved_(std::move(tTraceContext)) {
  // An empty requestId inherits the enclosing scope's: nested scopes add
  // a jobId without severing the request correlation.
  tTraceContext.requestId =
      requestId.empty() ? saved_.requestId : std::move(requestId);
  tTraceContext.jobId = jobId.empty() ? saved_.jobId : std::move(jobId);
}

ScopedTraceContext::~ScopedTraceContext() {
  tTraceContext = std::move(saved_);
}

// ---------------------------------------------------------------------------
// Sites

LogSite::operator bool() const {
  return site_ != nullptr &&
         static_cast<int>(level_) >=
             gLogLevel.load(std::memory_order_relaxed);
}

LogSite logSite(LogLevel level, const std::string& name, int maxPerSec) {
  LogState& s = state();
  util::MutexLock lock(&s.regMu);
  for (LogSiteInfo& site : s.sites)
    if (site.name == name) return LogSite(&site, site.level);
  s.sites.emplace_back();
  LogSiteInfo& site = s.sites.back();
  site.name = name;
  site.level = level;
  site.maxPerSec = maxPerSec;
  return LogSite(&site, level);
}

LogLine LogSite::log(const char* message) const {
  if (!*this) return LogLine();
  return LogLine(site_, level_, message);
}

// ---------------------------------------------------------------------------
// Lines

LogLine::LogLine(LogSiteInfo* sitePtr, LogLevel level, const char* message)
    : live_(true), site_(sitePtr), level_(level), message_(message) {
  // The rate-limit decision happens at line start, not emission, so a
  // suppressed call never pays for field collection either.
  LogSiteInfo& site = *sitePtr;
  if (site.maxPerSec > 0) {
    const long long nowSec = steadySeconds();
    long long w = site.windowSec.load(std::memory_order_relaxed);
    if (w != nowSec &&
        site.windowSec.compare_exchange_strong(w, nowSec,
                                               std::memory_order_relaxed))
      site.inWindow.store(0, std::memory_order_relaxed);
    if (site.inWindow.fetch_add(1, std::memory_order_relaxed) >=
        site.maxPerSec) {
      site.suppressed.fetch_add(1, std::memory_order_relaxed);
      gSuppressed.fetch_add(1, std::memory_order_relaxed);
      live_ = false;
      return;
    }
  }
  // Report (and clear) the debt accumulated while the limiter was
  // closed, so suppression is visible in the stream it thinned.
  suppressed_ = site.suppressed.exchange(0, std::memory_order_relaxed);
}

LogLine::LogLine(LogLine&& other) noexcept
    : live_(other.live_),
      site_(other.site_),
      level_(other.level_),
      message_(other.message_),
      suppressed_(other.suppressed_),
      fieldCount_(other.fieldCount_) {
  for (int i = 0; i < fieldCount_; ++i) fields_[i] = std::move(other.fields_[i]);
  other.live_ = false;
}

LogLine& LogLine::str(const char* key, std::string value) {
  if (live_ && fieldCount_ < kMaxFields)
    fields_[fieldCount_++] = Field{key, false, std::move(value), 0.0};
  return *this;
}

LogLine& LogLine::num(const char* key, double value) {
  if (live_ && fieldCount_ < kMaxFields)
    fields_[fieldCount_++] = Field{key, true, std::string(), value};
  return *this;
}

LogLine::~LogLine() {
  if (!live_) return;
  LogState& s = state();
  const std::string& siteName = site_->name;
  const std::string ts = isoTimestamp();
  const TraceContext& ctx = tTraceContext;

  // Snapshot sink routing once; formatting happens outside the lock,
  // only the two writes are serialized.
  bool wantText, wantJsonl;
  {
    util::MutexLock lock(&s.sinkMu);
    wantText = s.textEnabled;
    wantJsonl = s.jsonlEnabled;
  }
  if (!wantText && !wantJsonl) return;

  std::string textLine, jsonlLine;
  if (wantText) {
    textLine = ts;
    textLine += ' ';
    const char* lvl = logLevelName(level_);
    textLine += lvl;
    textLine.append(5 - std::strlen(lvl), ' ');
    textLine += ' ';
    textLine += siteName;
    textLine += ": ";
    textLine += message_;
    if (!ctx.requestId.empty())
      appendTextField(textLine, "request_id", ctx.requestId);
    if (!ctx.jobId.empty()) appendTextField(textLine, "job_id", ctx.jobId);
    for (int i = 0; i < fieldCount_; ++i) {
      const Field& f = fields_[i];
      appendTextField(textLine, f.key,
                      f.isNumber ? formatNumber(f.num) : f.str);
    }
    if (suppressed_ > 0)
      appendTextField(textLine, "suppressed", formatNumber(
                                                  static_cast<double>(
                                                      suppressed_)));
    textLine += '\n';
  }
  if (wantJsonl) {
    util::JsonValue doc = util::JsonValue::object();
    doc.set("ts", ts);
    doc.set("level", logLevelName(level_));
    doc.set("site", siteName);
    doc.set("msg", message_);
    if (!ctx.requestId.empty()) doc.set("request_id", ctx.requestId);
    if (!ctx.jobId.empty()) doc.set("job_id", ctx.jobId);
    for (int i = 0; i < fieldCount_; ++i) {
      const Field& f = fields_[i];
      if (f.isNumber)
        doc.set(f.key, f.num);
      else
        doc.set(f.key, f.str);
    }
    if (suppressed_ > 0)
      doc.set("suppressed", static_cast<double>(suppressed_));
    jsonlLine = doc.dump();
    jsonlLine += '\n';
  }

  gEmitted.fetch_add(1, std::memory_order_relaxed);
  util::MutexLock lock(&s.sinkMu);
  if (s.textEnabled && !textLine.empty()) writeLine(s.textFile, textLine);
  if (s.jsonlEnabled && !jsonlLine.empty())
    writeLine(s.jsonlFile, jsonlLine);
}

}  // namespace ahfic::obs
