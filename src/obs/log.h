#pragma once
// Structured, leveled logging — the third observability pillar next to
// the metrics registry (metrics.h) and span tracing (trace.h).
//
// Logging is off by default (level kOff). Instrumentation points hold a
// cheap LogSite handle obtained once (static local, matching the
// Counter/ScopedSpan pattern); checking a site costs one relaxed atomic
// load, so a disabled log site adds the same overhead as a disabled
// Counter. Only when the site's level passes the global threshold does
// the call build a LogLine, which formats and emits on destruction.
//
// Two sinks can be live at once:
//  * a text sink — human-readable one-per-line records, stderr by
//    default (what a developer watches while the daemon runs);
//  * a JSONL sink — one JSON object per line, for machines ("--log-json"
//    on ahficd; the CI smoke job parses it back).
// A line is formatted into a single buffer and written with one locked
// write per sink, so concurrent threads never interleave or tear lines.
//
// Correlation: every line is stamped with the calling thread's
// TraceContext (request_id / job_id) when one is installed — see
// ScopedTraceContext. The serve layer installs the per-HTTP-request id,
// the runner installs it around each job, so one grep of the request id
// crosses the whole stack (docs/observability.md).
//
// Per-site rate limiting: a site registered with maxPerSec > 0 emits at
// most that many lines per wall-clock second; excess lines are counted
// and reported as a "suppressed" field on the site's next emitted line,
// so a pathological loop cannot turn the log into its own outage.
//
// Usage:
//   static const obs::LogSite sDone =
//       obs::logSite(obs::LogLevel::kInfo, "runner.job_done");
//   if (sDone)
//     sDone.log("job finished").str("key", job.key).num("wallMs", ms);

#include <string>

namespace ahfic::obs {

namespace detail {
struct LogSiteInfo;  // registry entry; stable address for the process
}

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// "trace" / "debug" / "info" / "warn" / "error" / "off".
const char* logLevelName(LogLevel level);
/// Parses a level name (as accepted by ahficd --log-level). Returns
/// false and leaves `out` untouched on an unknown name.
bool parseLogLevel(const std::string& name, LogLevel& out);

/// Global threshold: sites below it are disabled. kOff (the default)
/// disables logging entirely. Relaxed atomic; safe to flip any time.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Text sink routing. Enabled with an empty path = stderr; with a path
/// = append-truncate to that file (throws ahfic::Error when the file
/// cannot be opened). The text sink starts enabled on stderr — but
/// emits nothing until setLogLevel() opens the gate.
void setTextLogSink(bool enabled, const std::string& path = "");

/// JSONL sink routing, disabled by default. Empty path = stderr.
void setJsonlLogSink(bool enabled, const std::string& path = "");

/// Emits one warn-level bookkeeping line per site carrying rate-limiter
/// `suppressed` debt (clearing it), so suppression accrued in a site's
/// final window surfaces instead of waiting for a next emitted line
/// that may never come. Runs automatically before an enabled sink is
/// reconfigured or shut down; callable directly at process shutdown.
/// No-op while no sink is enabled — the debt keeps waiting.
void flushSuppressedLogDebt();

/// Closes file sinks, re-enables the stderr text sink, disables the
/// JSONL sink, resets the level to kOff. Test helper.
void resetLoggingForTest();

/// Lines emitted to any sink / suppressed by per-site rate limiting
/// since process start (monotonic; independent of the metrics switch).
long long logLinesEmitted();
long long logLinesSuppressed();

// ---------------------------------------------------------------------------
// Correlation context

/// The calling thread's correlation ids, stamped onto every log line
/// (and picked up by ScopedSpan when tracing). Empty fields are omitted
/// from the output.
struct TraceContext {
  std::string requestId;
  std::string jobId;
};

/// The thread's current context (empty when none installed).
const TraceContext& currentTraceContext();

/// RAII install/restore of the thread's TraceContext. Passing an empty
/// requestId keeps the enclosing context's requestId (so a nested scope
/// can add a jobId without erasing the request correlation).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::string requestId,
                              std::string jobId = std::string());
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// ---------------------------------------------------------------------------
// Sites and lines

class LogLine;

/// Cheap copyable handle to one instrumentation point. Obtain once via
/// obs::logSite(); the truthiness check is the hot-path cost.
class LogSite {
 public:
  LogSite() = default;

  /// True when a line from this site would pass the level gate. One
  /// relaxed atomic load — rate limiting is applied later, in log(),
  /// because a suppressed line must still be *counted*.
  explicit operator bool() const;

  /// Starts a structured line; it emits when the returned LogLine goes
  /// out of scope (end of the full expression in the idiomatic one-line
  /// form). Calling log() on a gated-off site yields an inert line.
  LogLine log(const char* message) const;

 private:
  friend LogSite logSite(LogLevel, const std::string&, int);
  LogSite(detail::LogSiteInfo* site, LogLevel level)
      : site_(site), level_(level) {}
  detail::LogSiteInfo* site_ = nullptr;
  LogLevel level_ = LogLevel::kInfo;
};

/// Registers (or finds) a site by name — "subsystem.event", snake_case,
/// mirroring the metric naming convention. `maxPerSec` > 0 bounds the
/// site's emission rate. Re-registering an existing name returns the
/// original site (level/rate of the first registration win).
LogSite logSite(LogLevel level, const std::string& name, int maxPerSec = 0);

/// One in-flight log line: collect fields, emit on destruction. Values
/// are either strings or numbers (matching what JSON can carry without
/// surprises); keys must outlive the line (string literals).
class LogLine {
 public:
  ~LogLine();
  LogLine(LogLine&& other) noexcept;
  LogLine& operator=(LogLine&&) = delete;
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& str(const char* key, std::string value);
  LogLine& num(const char* key, double value);

 private:
  friend class LogSite;
  LogLine() = default;  // inert
  LogLine(detail::LogSiteInfo* site, LogLevel level, const char* message);

  struct Field {
    const char* key;
    bool isNumber;
    std::string str;
    double num;
  };

  bool live_ = false;
  detail::LogSiteInfo* site_ = nullptr;
  LogLevel level_ = LogLevel::kInfo;
  const char* message_ = "";
  long long suppressed_ = 0;  ///< carried rate-limiter debt to report
  // Small fixed inline field set: log lines carry a handful of fields;
  // extras beyond the cap are dropped rather than allocated for.
  static constexpr int kMaxFields = 8;
  Field fields_[kMaxFields];
  int fieldCount_ = 0;
};

}  // namespace ahfic::obs
