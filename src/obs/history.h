#pragma once
// Metrics time-series: a background sampler that records registry
// snapshots into a fixed-capacity ring, so the daemon can answer "what
// happened over the last N seconds" instead of only "what is true now".
//
// The ring stores full MetricsSnapshots (capacity bounds memory; the
// oldest sample is evicted when full — never unbounded growth). The
// wire format is delta-compressed: monotonic series (counters,
// histogram counts) ship as {"first": v0, "deltas": [...]}; gauges and
// interpolated histogram quantiles ship as raw arrays. Served by the
// daemon as "ahfic-metrics-history-v1" at GET /v1/metrics/history and
// rendered by the /debug dashboard and `ahfic_client watch`.
//
// Usage (ahficd):
//   obs::MetricsHistory history(/*intervalSec=*/5.0, /*capacity=*/720);
//   history.start();             // background thread, one sample/interval
//   ...
//   history.stop();              // joined before the registry dies

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"
#include "util/mutex.h"

namespace ahfic::obs {

class MetricsHistory {
 public:
  /// One ring entry: wall-clock stamp plus the full merged snapshot.
  struct Sample {
    double unixSec = 0.0;
    MetricsSnapshot snap;
  };

  MetricsHistory(double intervalSec, size_t capacity);
  ~MetricsHistory();  ///< stops the sampler if still running

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  double intervalSec() const { return intervalSec_; }
  size_t capacity() const { return capacity_; }
  size_t size() const;

  /// Takes one sample now (also what the background thread calls).
  void sampleNow();

  /// Starts/stops the background sampling thread. start() samples once
  /// immediately so the ring is never empty while the daemon is up.
  void start();
  void stop();

  /// Copies the samples newer than `windowSec` before the latest one
  /// (0 = the whole ring), oldest first.
  std::vector<Sample> window(double windowSec = 0.0) const;

  /// "ahfic-metrics-history-v1" document over window(windowSec):
  /// {schema, intervalSec, capacity, samples, t: [unix seconds],
  ///  counters: {name: {first, deltas}}, gauges: {name: [...]},
  ///  histograms: {name: {count: {first, deltas}, p50/p95/p99: [...]}}.
  /// Series use the *latest* sample's metric names; a metric registered
  /// mid-window reads 0 before it existed.
  util::JsonValue toJson(double windowSec = 0.0) const;

 private:
  void samplerLoop();

  const double intervalSec_;
  const size_t capacity_;

  // Ring lock. The sampler thread takes mu_ (inside sampleNow) while
  // holding wakeMu_, hence the declared order wakeMu_ -> mu_; readers
  // (size/window) take mu_ alone.
  mutable util::Mutex mu_;
  std::vector<Sample> ring_ AHFIC_GUARDED_BY(mu_);  ///< circular; oldest at head_ when full
  size_t head_ AHFIC_GUARDED_BY(mu_) = 0;           ///< next write position

  util::Mutex wakeMu_ AHFIC_ACQUIRED_BEFORE(mu_);
  util::CondVar wake_;
  bool stopping_ AHFIC_GUARDED_BY(wakeMu_) = false;
  // start()/stop() are externally serialized (single owner thread);
  // thread_ must be joined without wakeMu_ held, so these two stay
  // outside the capability system deliberately.
  std::thread thread_;
  bool running_ = false;
};

}  // namespace ahfic::obs
