#pragma once
// Transistor-level block characterisation: closes the loop of the paper's
// Fig. 1. After a block is implemented at the primitive-element level, it
// is measured with the circuit simulator and an equivalent behavioural
// model is produced, so the block can be dropped back into the system-
// level AHDL simulation and "circuit designers can easily find the
// effects of primitive elements to the whole system".

#include <string>

#include "ahdl/system.h"
#include "spice/circuit.h"

namespace ahfic::core {

/// Behavioural abstraction of a measured amplifier-like block.
struct ExtractedAmplifier {
  double dcGain = 0.0;        ///< small-signal gain at the bias point
  double gainAtF0 = 0.0;      ///< |gain| at the measurement frequency
  double phaseDegAtF0 = 0.0;  ///< phase at f0 [deg]
  double bandwidth3Db = 0.0;  ///< -3 dB bandwidth [Hz] (0 = not found)
  double outputSwing = 0.0;   ///< half peak-to-peak output range [V]
  double outputBias = 0.0;    ///< DC output level at the bias point [V]
};

/// Measurement setup for characterisation.
struct CharacterizationSetup {
  /// SPICE netlist body (no title, no .END) containing the block, its
  /// bias network and a driving V source.
  std::string netlist;
  /// Name of the input V source in the netlist; its DC value is the bias
  /// and it will carry the AC probe.
  std::string inputSource;
  /// Output node name.
  std::string outputNode;
  /// AC measurement frequency [Hz].
  double f0 = 45e6;
  /// Input DC sweep span (+/- around the bias) for the transfer curve.
  double dcSweepSpan = 1.0;
  int dcSweepPoints = 81;
  /// Frequency ceiling for the bandwidth search [Hz].
  double fMax = 20e9;
};

/// Runs OP + AC + DC-sweep measurements on the block; throws ahfic::Error
/// on setup problems (missing source/node) or non-convergent circuits.
ExtractedAmplifier characterizeAmplifier(const CharacterizationSetup& setup);

/// Installs an extracted model into a behavioural system between `in` and
/// `out`: gain + single-pole bandwidth + tanh swing limit. The DC output
/// bias is intentionally dropped (behavioural chains are AC-coupled).
void addExtractedAmplifier(ahdl::System& sys, const std::string& name,
                           const std::string& in, const std::string& out,
                           const ExtractedAmplifier& model);

}  // namespace ahfic::core
