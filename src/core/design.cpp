#include "core/design.h"

#include "util/error.h"

namespace ahfic::core {

DesignChain::DesignChain(std::string name) : name_(std::move(name)) {}

void DesignChain::addBlock(const std::string& blockName,
                           BehavioralFactory behavioral) {
  if (blockName.empty()) throw Error("DesignChain: block name required");
  if (!behavioral)
    throw Error("DesignChain: block '" + blockName +
                "' needs a behavioural factory");
  for (const auto& b : blocks_)
    if (b.name == blockName)
      throw Error("DesignChain: duplicate block '" + blockName + "'");
  blocks_.push_back(BlockEntry{blockName, std::move(behavioral),
                               std::nullopt, std::nullopt});
}

void DesignChain::setTransistorView(const std::string& blockName,
                                    CharacterizationSetup setup) {
  for (auto& b : blocks_) {
    if (b.name == blockName) {
      b.transistor = std::move(setup);
      b.cache.reset();
      return;
    }
  }
  throw Error("DesignChain: no block '" + blockName + "'");
}

bool DesignChain::hasTransistorView(const std::string& blockName) const {
  return entry(blockName).transistor.has_value();
}

std::vector<std::string> DesignChain::blockNames() const {
  std::vector<std::string> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) out.push_back(b.name);
  return out;
}

const DesignChain::BlockEntry& DesignChain::entry(
    const std::string& blockName) const {
  for (const auto& b : blocks_)
    if (b.name == blockName) return b;
  throw Error("DesignChain: no block '" + blockName + "'");
}

const ExtractedAmplifier& DesignChain::characterized(
    const std::string& blockName) const {
  const BlockEntry& b = entry(blockName);
  if (!b.transistor.has_value())
    throw Error("DesignChain: block '" + blockName +
                "' has no transistor-level view");
  if (!b.cache.has_value())
    b.cache = characterizeAmplifier(*b.transistor);
  return *b.cache;
}

void DesignChain::build(ahdl::System& sys, const std::string& input,
                        const std::string& output,
                        const std::set<std::string>& transistorLevel) const {
  if (blocks_.empty()) throw Error("DesignChain: no blocks to build");
  for (const auto& want : transistorLevel) {
    const BlockEntry& b = entry(want);  // throws on unknown names
    if (!b.transistor.has_value())
      throw Error("DesignChain: block '" + want +
                  "' has no transistor-level view to build");
  }

  std::string current = input;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const BlockEntry& b = blocks_[i];
    const std::string next =
        (i + 1 == blocks_.size())
            ? output
            : name_ + "#" + std::to_string(i) + "_" + b.name;
    if (transistorLevel.count(b.name)) {
      addExtractedAmplifier(sys, name_ + "." + b.name, current, next,
                            characterized(b.name));
    } else {
      b.behavioral(sys, current, next);
    }
    current = next;
  }
}

}  // namespace ahfic::core
