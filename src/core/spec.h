#pragma once
// Block specification sheets — the artefact the top-down method produces.
//
// In the paper's flow (Sec. 2.1), system-level AHDL sweeps let the circuit
// designer "determine the specifications of every block in the IC" before
// any transistor-level work starts. A SpecSheet captures those derived
// per-block requirements and later checks a candidate implementation
// against them.

#include <optional>
#include <string>
#include <vector>

namespace ahfic::core {

/// One specification item with optional lower/upper bounds.
struct SpecItem {
  std::string block;   ///< function block the spec applies to
  std::string name;    ///< quantity, e.g. "gain balance"
  std::string unit;    ///< display unit, e.g. "%", "deg", "dB"
  std::optional<double> minValue;
  std::optional<double> maxValue;

  /// True when `value` satisfies the bounds.
  bool accepts(double value) const {
    if (minValue.has_value() && value < *minValue) return false;
    if (maxValue.has_value() && value > *maxValue) return false;
    return true;
  }
};

/// A collection of derived block specifications.
class SpecSheet {
 public:
  /// Adds an item; bounds may be open on either side.
  void add(SpecItem item);
  /// Convenience helpers.
  void addMax(const std::string& block, const std::string& name,
              const std::string& unit, double maxValue);
  void addMin(const std::string& block, const std::string& name,
              const std::string& unit, double minValue);
  void addRange(const std::string& block, const std::string& name,
                const std::string& unit, double minValue, double maxValue);

  /// Finds the item; nullptr when absent.
  const SpecItem* find(const std::string& block,
                       const std::string& name) const;

  /// Checks a measured value against the named spec; throws ahfic::Error
  /// when the spec does not exist.
  bool check(const std::string& block, const std::string& name,
             double value) const;

  const std::vector<SpecItem>& items() const { return items_; }
  size_t size() const { return items_.size(); }

  /// Human-readable listing (for reports / the quickstart example).
  std::string toString() const;

  /// One measured value to check against a spec.
  struct Measurement {
    std::string block;
    std::string name;
    double value;
  };

  /// Checks measurements against their specs and renders a pass/fail
  /// compliance table. Measurements without a matching spec are listed
  /// as "no spec"; specs without a measurement as "not measured".
  std::string complianceReport(
      const std::vector<Measurement>& measurements) const;

 private:
  std::vector<SpecItem> items_;
};

}  // namespace ahfic::core
