#pragma once
// The top-down design tree (paper Fig. 1): a signal chain of function
// blocks, each carrying a behavioural view and, once implemented, a
// transistor-level view. Building the system with a chosen mix of views
// is the methodology's central move — start all-behavioural, derive
// specs, implement blocks, then swap them in one at a time and watch the
// system-level metrics.

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ahdl/system.h"
#include "core/characterize.h"
#include "core/spec.h"

namespace ahfic::core {

/// A chain of function blocks between one input and one output signal.
class DesignChain {
 public:
  /// Installs a block's behavioural view into `sys` between the two named
  /// signals (the factory may create internal signals/blocks freely).
  using BehavioralFactory = std::function<void(
      ahdl::System& sys, const std::string& in, const std::string& out)>;

  explicit DesignChain(std::string name);

  const std::string& name() const { return name_; }

  /// Appends a function block. Order defines the signal chain.
  void addBlock(const std::string& blockName, BehavioralFactory behavioral);

  /// Attaches a transistor-level view to an existing block. The setup is
  /// characterised lazily (and cached) when the block is first built at
  /// transistor level.
  void setTransistorView(const std::string& blockName,
                         CharacterizationSetup setup);

  bool hasTransistorView(const std::string& blockName) const;
  std::vector<std::string> blockNames() const;

  /// Builds the chain into `sys` from signal `input` to signal `output`.
  /// Blocks named in `transistorLevel` use their characterised view;
  /// names without a transistor view cause an error.
  void build(ahdl::System& sys, const std::string& input,
             const std::string& output,
             const std::set<std::string>& transistorLevel = {}) const;

  /// The characterised model of a block (runs the measurement on first
  /// use). Throws when the block has no transistor view.
  const ExtractedAmplifier& characterized(const std::string& blockName) const;

  /// The chain's derived specification sheet.
  SpecSheet& specs() { return specs_; }
  const SpecSheet& specs() const { return specs_; }

 private:
  struct BlockEntry {
    std::string name;
    BehavioralFactory behavioral;
    std::optional<CharacterizationSetup> transistor;
    mutable std::optional<ExtractedAmplifier> cache;
  };
  const BlockEntry& entry(const std::string& blockName) const;

  std::string name_;
  std::vector<BlockEntry> blocks_;
  SpecSheet specs_;
};

}  // namespace ahfic::core
