#include "core/characterize.h"

#include <cmath>

#include "ahdl/blocks.h"
#include "spice/analysis.h"
#include "spice/parser.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/units.h"

namespace ahfic::core {

namespace sp = ahfic::spice;
namespace ah = ahfic::ahdl;

ExtractedAmplifier characterizeAmplifier(
    const CharacterizationSetup& setup) {
  if (setup.f0 <= 0.0 || setup.dcSweepPoints < 3)
    throw Error("characterizeAmplifier: bad setup");

  // Build the circuit once to locate the ports, then again per analysis
  // (analyses mutate source waveforms).
  sp::Circuit ckt;
  sp::parseInto(ckt, setup.netlist);
  auto* input = dynamic_cast<sp::VSource*>(ckt.findDevice(setup.inputSource));
  if (input == nullptr)
    throw Error("characterizeAmplifier: input source '" +
                setup.inputSource + "' not found or not a V source");
  const int outNode = ckt.findNode(setup.outputNode);
  if (outNode <= 0)
    throw Error("characterizeAmplifier: output node '" + setup.outputNode +
                "' not found");
  const double bias = input->waveform().dcValue();

  ExtractedAmplifier model;

  // --- AC: gain/phase at f0 and -3 dB bandwidth -------------------------
  {
    sp::Circuit ac;
    sp::parseInto(ac, setup.netlist);
    auto* vin = dynamic_cast<sp::VSource*>(ac.findDevice(setup.inputSource));
    // Re-create the input source with an AC magnitude of 1.
    const int p = vin->nodes()[0], n = vin->nodes()[1];
    const std::string inName = vin->name();
    ac.removeDevice(inName);
    ac.add<sp::VSource>(inName, p, n, bias, /*acMag=*/1.0);

    sp::Analyzer an(ac);
    const auto op = an.op();
    const int node = ac.findNode(setup.outputNode);

    // Low-frequency anchor, f0 point, then a log sweep for bandwidth.
    auto freqs = sp::logspace(setup.f0 / 1e4, setup.fMax, 12);
    freqs.insert(freqs.begin(), setup.f0);
    const auto res = an.ac(freqs, op);

    const auto h0 = res.voltage(0, node);
    model.gainAtF0 = std::abs(h0);
    model.phaseDegAtF0 =
        std::arg(h0) * 180.0 / util::constants::kPi;
    model.dcGain = std::abs(res.voltage(1, node));  // lowest frequency

    const double target = model.dcGain / std::sqrt(2.0);
    for (size_t k = 2; k < res.frequency.size(); ++k) {
      const double mag = std::abs(res.voltage(k, node));
      if (mag < target) {
        // Log interpolation between k-1 and k.
        const double m0 = std::abs(res.voltage(k - 1, node));
        const double f0k = res.frequency[k - 1], f1k = res.frequency[k];
        const double u = (m0 - target) / std::max(m0 - mag, 1e-30);
        model.bandwidth3Db = f0k * std::pow(f1k / f0k, u);
        break;
      }
    }
  }

  // --- DC transfer: output swing and bias --------------------------------
  {
    sp::Circuit dc;
    sp::parseInto(dc, setup.netlist);
    sp::Analyzer an(dc);
    const double lo = bias - setup.dcSweepSpan / 2.0;
    const double hi = bias + setup.dcSweepSpan / 2.0;
    const double step = (hi - lo) / (setup.dcSweepPoints - 1);
    const auto sweep = an.dcSweep(setup.inputSource, lo, hi, step);
    const int node = dc.findNode(setup.outputNode);
    double vMin = 1e300, vMax = -1e300;
    for (size_t k = 0; k < sweep.sweep.size(); ++k) {
      const double v = sweep.voltage(k, node);
      vMin = std::min(vMin, v);
      vMax = std::max(vMax, v);
      if (std::fabs(sweep.sweep[k] - bias) < step / 2.0)
        model.outputBias = v;
    }
    model.outputSwing = (vMax - vMin) / 2.0;
  }
  return model;
}

void addExtractedAmplifier(ahdl::System& sys, const std::string& name,
                           const std::string& in, const std::string& out,
                           const ExtractedAmplifier& model) {
  // Sign of the gain from the measured phase (inverting stages sit near
  // 180 degrees at low frequency).
  const double phase = std::fabs(model.phaseDegAtF0);
  const double sign = (phase > 90.0 && phase < 270.0) ? -1.0 : 1.0;
  const double vsat = model.outputSwing > 0.0 ? model.outputSwing : 0.0;

  // Order: linear gain, then the bandwidth pole, then the output-stage
  // swing limit — so the output is strictly bounded even when the
  // bilinear pole rings on clipped waveforms.
  if (model.bandwidth3Db > 0.0) {
    const std::string mid = name + "#bw";
    sys.add<ah::Amplifier>({in}, {mid}, name + ".gain",
                           sign * model.gainAtF0);
    if (vsat > 0.0) {
      const std::string mid2 = name + "#pole";
      sys.add<ah::FilterBlock>({mid}, {mid2}, name + ".pole",
                               ah::FilterBlock::Kind::kLowpass, 1,
                               model.bandwidth3Db, 0.0,
                               /*clampToNyquist=*/true);
      sys.add<ah::Amplifier>({mid2}, {out}, name + ".sat", 1.0, vsat);
    } else {
      sys.add<ah::FilterBlock>({mid}, {out}, name + ".pole",
                               ah::FilterBlock::Kind::kLowpass, 1,
                               model.bandwidth3Db, 0.0,
                               /*clampToNyquist=*/true);
    }
  } else {
    sys.add<ah::Amplifier>({in}, {out}, name + ".gain",
                           sign * model.gainAtF0, vsat);
  }
}

}  // namespace ahfic::core
