#include "core/spec.h"

#include <sstream>

#include "util/error.h"

namespace ahfic::core {

void SpecSheet::add(SpecItem item) {
  if (item.block.empty() || item.name.empty())
    throw Error("SpecSheet: block and name are required");
  if (item.minValue.has_value() && item.maxValue.has_value() &&
      *item.minValue > *item.maxValue)
    throw Error("SpecSheet: min > max for '" + item.block + "/" +
                item.name + "'");
  items_.push_back(std::move(item));
}

void SpecSheet::addMax(const std::string& block, const std::string& name,
                       const std::string& unit, double maxValue) {
  add(SpecItem{block, name, unit, std::nullopt, maxValue});
}

void SpecSheet::addMin(const std::string& block, const std::string& name,
                       const std::string& unit, double minValue) {
  add(SpecItem{block, name, unit, minValue, std::nullopt});
}

void SpecSheet::addRange(const std::string& block, const std::string& name,
                         const std::string& unit, double minValue,
                         double maxValue) {
  add(SpecItem{block, name, unit, minValue, maxValue});
}

const SpecItem* SpecSheet::find(const std::string& block,
                                const std::string& name) const {
  for (const auto& item : items_)
    if (item.block == block && item.name == name) return &item;
  return nullptr;
}

bool SpecSheet::check(const std::string& block, const std::string& name,
                      double value) const {
  const SpecItem* item = find(block, name);
  if (item == nullptr)
    throw Error("SpecSheet: no spec '" + block + "/" + name + "'");
  return item->accepts(value);
}

std::string SpecSheet::complianceReport(
    const std::vector<Measurement>& measurements) const {
  std::ostringstream os;
  std::vector<bool> specSeen(items_.size(), false);
  os << "block / quantity : measured : spec : verdict\n";
  for (const auto& m : measurements) {
    const SpecItem* item = find(m.block, m.name);
    os << m.block << " / " << m.name << " : " << m.value;
    if (item == nullptr) {
      os << " : (no spec) : -\n";
      continue;
    }
    for (size_t i = 0; i < items_.size(); ++i)
      if (&items_[i] == item) specSeen[i] = true;
    os << " : ";
    if (item->minValue.has_value() && item->maxValue.has_value())
      os << "[" << *item->minValue << ", " << *item->maxValue << "]";
    else if (item->minValue.has_value())
      os << ">= " << *item->minValue;
    else if (item->maxValue.has_value())
      os << "<= " << *item->maxValue;
    else
      os << "(informative)";
    if (!item->unit.empty()) os << " " << item->unit;
    os << " : " << (item->accepts(m.value) ? "PASS" : "FAIL") << "\n";
  }
  for (size_t i = 0; i < items_.size(); ++i) {
    if (!specSeen[i])
      os << items_[i].block << " / " << items_[i].name
         << " : (not measured) : : -\n";
  }
  return os.str();
}

std::string SpecSheet::toString() const {
  std::ostringstream os;
  for (const auto& i : items_) {
    os << i.block << " :: " << i.name << " ";
    if (i.minValue.has_value() && i.maxValue.has_value())
      os << "in [" << *i.minValue << ", " << *i.maxValue << "]";
    else if (i.minValue.has_value())
      os << ">= " << *i.minValue;
    else if (i.maxValue.has_value())
      os << "<= " << *i.maxValue;
    else
      os << "(informative)";
    if (!i.unit.empty()) os << " " << i.unit;
    os << '\n';
  }
  return os.str();
}

}  // namespace ahfic::core
