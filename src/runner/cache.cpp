#include "runner/cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/json.h"
#include "util/wave.h"

namespace ahfic::runner {

namespace js = ahfic::util;

std::optional<JobResult> ResultCache::lookup(const std::string& key) const {
  util::MutexLock lock(&mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::store(const std::string& key, const JobResult& result) {
  util::MutexLock lock(&mu_);
  map_[key] = result;
}

size_t ResultCache::size() const {
  util::MutexLock lock(&mu_);
  return map_.size();
}

void ResultCache::clear() {
  util::MutexLock lock(&mu_);
  map_.clear();
}

namespace {

std::string hexFloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parseHexFloat(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

/// Sidecar directory for binary wave payloads of the cache at `path`.
std::string waveDir(const std::string& path) { return path + ".waves"; }

std::string waveFileName(const std::string& key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx.wave",
                static_cast<unsigned long long>(stableKeyHash(key)));
  return buf;
}

}  // namespace

bool ResultCache::loadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();

  const js::JsonValue doc = js::parseJson(ss.str());
  if (!doc.isObject() ||
      doc.get("schema").asString() != "ahfic-runner-cache-v1")
    throw Error("ResultCache: '" + path + "' is not a runner cache file");

  const js::JsonValue& entries = doc.get("entries");
  util::MutexLock lock(&mu_);
  for (size_t k = 0; k < entries.size(); ++k) {
    const js::JsonValue& e = entries.at(k);
    JobResult r;
    const js::JsonValue& metrics = e.get("metrics");
    for (const std::string& name : metrics.keys()) {
      const js::JsonValue& m = metrics.get(name);
      // Prefer the exact hex encoding; fall back to the decimal value
      // for hand-edited files.
      if (m.isObject() && m.has("hex"))
        r.metrics.emplace_back(name, parseHexFloat(m.get("hex").asString()));
      else
        r.metrics.emplace_back(name, m.asNumber());
    }
    if (e.has("wave")) {
      // A cached result without its bulk payload is not that result:
      // drop the entry (cache miss) rather than serve half of it.
      const std::string wavePath =
          waveDir(path) + "/" + e.get("wave").asString();
      try {
        r.wave = std::make_shared<util::WaveTable>(
            util::readWaveFile(wavePath));
      } catch (const Error&) {
        continue;
      }
    }
    map_[e.get("key").asString()] = std::move(r);
  }
  return true;
}

void ResultCache::saveFile(const std::string& path) const {
  js::JsonValue doc = js::JsonValue::object();
  doc.set("schema", "ahfic-runner-cache-v1");
  js::JsonValue entries = js::JsonValue::array();
  {
    util::MutexLock lock(&mu_);
    // Sorted keys: byte-identical files for identical contents.
    std::vector<std::string> keys;
    keys.reserve(map_.size());
    for (const auto& [key, result] : map_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      const JobResult& result = map_.at(key);
      js::JsonValue e = js::JsonValue::object();
      e.set("key", key);
      js::JsonValue metrics = js::JsonValue::object();
      for (const auto& [name, value] : result.metrics) {
        js::JsonValue m = js::JsonValue::object();
        m.set("value", value);
        m.set("hex", hexFloat(value));
        metrics.set(name, std::move(m));
      }
      e.set("metrics", std::move(metrics));
      if (result.wave != nullptr) {
        const std::string name = waveFileName(key);
        std::error_code ec;
        std::filesystem::create_directories(waveDir(path), ec);
        if (ec)
          throw Error("ResultCache: cannot create '" + waveDir(path) + "'");
        util::writeWaveFile(waveDir(path) + "/" + name, *result.wave);
        e.set("wave", name);
      }
      entries.push(std::move(e));
    }
  }
  doc.set("entries", std::move(entries));

  std::ofstream f(path);
  if (!f) throw Error("ResultCache: cannot write '" + path + "'");
  f << doc.dump(1) << "\n";
  if (!f.good()) throw Error("ResultCache: write to '" + path + "' failed");
}

}  // namespace ahfic::runner
