#pragma once
// Result cache for the batch engine: job key -> JobResult.
//
// In-memory, thread-safe, with optional on-disk JSON persistence so a
// re-run of a sweep skips every already-solved point. Metric values are
// stored in the file both as decimal (for humans) and C99 hex-float (for
// exact round-trip), so a cache hit reproduces the original result
// bit-for-bit.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "runner/job.h"
#include "util/mutex.h"

namespace ahfic::runner {

class ResultCache {
 public:
  /// Returns the cached result for `key`, or nullopt.
  std::optional<JobResult> lookup(const std::string& key) const;

  /// Inserts or overwrites.
  void store(const std::string& key, const JobResult& result);

  size_t size() const;
  void clear();

  /// Merges entries from a cache file written by saveFile. Returns false
  /// (leaving the cache unchanged) when the file does not exist; throws
  /// on a malformed file. Entries referencing a wave sidecar load it
  /// from `<path>.waves/`; an entry whose sidecar is missing or corrupt
  /// is skipped (treated as a cache miss), never fatal.
  bool loadFile(const std::string& path);

  /// Writes every entry as JSON. Results carrying a wave payload write
  /// it as a binary "ahfic-wave-v1" sidecar `<path>.waves/<hash>.wave`
  /// (hash = stableKeyHash of the job key) referenced from the JSON
  /// entry — bulk columns never bloat the JSON. Throws on I/O failure.
  void saveFile(const std::string& path) const;

 private:
  mutable util::Mutex mu_;
  std::unordered_map<std::string, JobResult> map_ AHFIC_GUARDED_BY(mu_);
};

}  // namespace ahfic::runner
