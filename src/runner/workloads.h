#pragma once
// Canned job builders for the paper's repeated-simulation studies —
// the glue between the domain layers (bjtgen, tuner) and the batch
// engine. Each builder returns jobs in a documented order so callers can
// map outcome index -> study coordinate without extra bookkeeping.

#include <cstdint>
#include <string>
#include <vector>

#include "bjtgen/generator.h"
#include "bjtgen/montecarlo.h"
#include "bjtgen/ringosc.h"
#include "bjtgen/shape.h"
#include "runner/engine.h"
#include "runner/job.h"
#include "tuner/irr.h"

namespace ahfic::runner {

/// Fig. 9 fT–Ic sweep: one job per (shape, current) point, shape-major
/// (index = s * currents.size() + k). Metrics: "ft" [Hz], "vbe" [V],
/// "ic" [A]; points above ~90% of the shape's bias capability return
/// "skipped" = 1 instead. `keyPrefix` must identify the technology the
/// generator was built on (it is the cache identity).
std::vector<Job> fig9SweepJobs(const bjtgen::ModelGenerator& gen,
                               const std::vector<bjtgen::TransistorShape>& shapes,
                               const std::vector<double>& currents,
                               const std::string& keyPrefix = "fig9");

/// fT peak search per shape (the Fig. 9 summary table). Metrics:
/// "ftPeak" [Hz], "icPeak" [A].
std::vector<Job> ftPeakJobs(const bjtgen::ModelGenerator& gen,
                            const std::vector<bjtgen::TransistorShape>& shapes,
                            double icMin, double icMax, int points,
                            const std::string& keyPrefix = "fig9peak");

/// Table 1 ring-oscillator shape selection: one transient job per
/// differential-pair shape (followers and passives from `baseSpec`).
/// Metrics: "frequency" [Hz], "peakToPeak" [V], "oscillating" (0/1).
std::vector<Job> ringShapeJobs(const bjtgen::ModelGenerator& gen,
                               const std::vector<bjtgen::TransistorShape>& shapes,
                               bjtgen::RingOscillatorSpec baseSpec,
                               double windowNs = 10.0, double stepPs = 3.0,
                               const std::string& keyPrefix = "table1");

/// Monte-Carlo die-to-die ring-oscillator study: one job per die, each
/// drawing its technology and local mismatch from the job seed
/// (usesSeed = true). Metrics as ringShapeJobs.
std::vector<Job> monteCarloRingJobs(const bjtgen::Technology& nominal,
                                    const bjtgen::ProcessVariation& var,
                                    int dies,
                                    bjtgen::RingOscillatorSpec baseSpec,
                                    const std::string& diffPairShape,
                                    const std::string& followerShape,
                                    double windowNs = 10.0,
                                    double stepPs = 3.0,
                                    const std::string& keyPrefix = "mc-ring");

/// Cheap Monte-Carlo workload: per-die analytic fT of `shapeName` at bias
/// `ic` (usesSeed = true). Metrics: "ft" [Hz], "vbe" [V]. Used by the
/// determinism tests and the scaling bench, where >= 64 dies must stay
/// affordable.
std::vector<Job> monteCarloFtJobs(const bjtgen::Technology& nominal,
                                  const bjtgen::ProcessVariation& var,
                                  int dies, const std::string& shapeName,
                                  double ic,
                                  const std::string& keyPrefix = "mc-ft");

/// The batched data plane for monteCarloFtJobs: dies are grouped into
/// blocks of `batchSize` (one Job per block, block-major: job b covers
/// global dies [b*batchSize, min(dies, (b+1)*batchSize))) and each block
/// is solved through one spice::ReplicaBatch — one pattern priming and
/// symbolic analysis per block instead of per bisection evaluation.
///
/// Per-die results are bit-identical to the scalar pipeline run with
/// `AnalysisOptions::solver = kSparse`: die d's card is drawn from
/// deriveJobSeed(baseSeed, d), exactly the seed the scalar job at index
/// d receives. `baseSeed` must therefore match RunnerOptions::baseSeed
/// of the runner executing these jobs; it is baked into the job key
/// (jobs set usesSeed = false because they consume many seeds, not
/// JobContext::seed).
///
/// Metrics per block: "die<d>/ft" and "die<d>/vbe" with the GLOBAL die
/// index, plus "dies" and "failed" counts; a die whose bias bracket
/// rejects `ic` gets "die<d>/failed" = 1 instead of ft/vbe. The same
/// columns ride along as a binary waveform payload (JobResult::wave,
/// columns die/ic/vbe/ft) for bulk consumers. Convergence forensics is
/// not supported on the batched plane, so these jobs strip
/// AnalysisOptions::forensics.
std::vector<Job> monteCarloFtBatchJobs(const bjtgen::Technology& nominal,
                                       const bjtgen::ProcessVariation& var,
                                       int dies, const std::string& shapeName,
                                       double ic, int batchSize,
                                       std::uint64_t baseSeed,
                                       const std::string& keyPrefix = "mc-ft");

/// Process-corner enumeration (kSlow/kTypical/kFast, in that order): fT
/// of `shapeName` at `ic` on each corner. Metrics: "ft", "vbe".
std::vector<Job> cornerFtJobs(const bjtgen::Technology& nominal,
                              const bjtgen::ProcessVariation& var,
                              const std::string& shapeName, double ic,
                              double sigmas = 3.0,
                              const std::string& keyPrefix = "corner-ft");

/// One (sigmaPhase, sigmaGain) spec point of the tuner's image-rejection
/// yield study, split into `chunks` independently-seeded jobs of
/// samples/chunks draws each (usesSeed = true). Jobs are chunk-major per
/// corner; reduce with tuner::mergeIrrYield over each corner's chunk
/// range. Metrics: "samples", "passing", "meanIrrDb", "worstIrrDb".
struct IrrYieldCorner {
  double sigmaPhaseDeg = 0.0;
  double sigmaGain = 0.0;
};
std::vector<Job> irrYieldJobs(const std::vector<IrrYieldCorner>& corners,
                              double targetDb, int samplesPerCorner,
                              int chunks = 4,
                              const std::string& keyPrefix = "irr-yield");

/// Reduces the outcomes of irrYieldJobs back to one result per corner
/// (in corner order). Failed chunks are skipped.
std::vector<tuner::IrrYieldResult> reduceIrrYield(
    const std::vector<JobOutcome>& outcomes, int corners, int chunks);

}  // namespace ahfic::runner
