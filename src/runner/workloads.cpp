#include "runner/workloads.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bjtgen/batchft.h"
#include "bjtgen/ft.h"
#include "util/error.h"
#include "util/wave.h"

namespace ahfic::runner {

namespace bg = ahfic::bjtgen;
namespace tn = ahfic::tuner;

namespace {

/// Compact scientific tag for embedding a value in a job key. %.9e keeps
/// enough digits that distinct sweep points never alias.
std::string numTag(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9e", v);
  return buf;
}

}  // namespace

std::vector<Job> fig9SweepJobs(
    const bg::ModelGenerator& gen,
    const std::vector<bg::TransistorShape>& shapes,
    const std::vector<double>& currents, const std::string& keyPrefix) {
  std::vector<Job> jobs;
  jobs.reserve(shapes.size() * currents.size());
  for (const auto& shape : shapes) {
    const spice::BjtModel card = gen.generate(shape);
    for (const double ic : currents) {
      Job job;
      job.key = keyPrefix + "/" + shape.name() + "/ic=" + numTag(ic);
      job.run = [card, ic](JobContext& ctx) {
        bg::FtExtractor fx(card, 2.0, ctx.options);
        JobResult r;
        if (ic >= 0.9 * fx.maxBiasCurrent()) {
          r.set("skipped", 1.0);
          return r;
        }
        const auto pt = fx.measureAt(ic);
        ctx.noteStats(fx.solverStats());
        r.set("ft", pt.ft);
        r.set("vbe", pt.vbe);
        r.set("ic", pt.ic);
        return r;
      };
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::vector<Job> ftPeakJobs(const bg::ModelGenerator& gen,
                            const std::vector<bg::TransistorShape>& shapes,
                            double icMin, double icMax, int points,
                            const std::string& keyPrefix) {
  std::vector<Job> jobs;
  jobs.reserve(shapes.size());
  for (const auto& shape : shapes) {
    const spice::BjtModel card = gen.generate(shape);
    Job job;
    job.key = keyPrefix + "/" + shape.name() + "/ic=" + numTag(icMin) +
              ".." + numTag(icMax) + "/n=" + std::to_string(points);
    job.run = [card, icMin, icMax, points](JobContext& ctx) {
      bg::FtExtractor fx(card, 2.0, ctx.options);
      const auto pk = fx.findPeak(icMin, icMax, points);
      ctx.noteStats(fx.solverStats());
      JobResult r;
      r.set("ftPeak", pk.ftPeak);
      r.set("icPeak", pk.icPeak);
      return r;
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

namespace {

JobResult ringMeasurementResult(const bg::RingOscillatorSpec& spec,
                                double windowNs, double stepPs,
                                JobContext& ctx) {
  spice::AnalyzerStats stats;
  const auto m =
      bg::measureRingFrequency(spec, windowNs, stepPs, ctx.options, &stats);
  ctx.noteStats(stats);
  JobResult r;
  r.set("frequency", m.frequency);
  r.set("peakToPeak", m.peakToPeak);
  r.set("oscillating", m.oscillating ? 1.0 : 0.0);
  return r;
}

}  // namespace

std::vector<Job> ringShapeJobs(const bg::ModelGenerator& gen,
                               const std::vector<bg::TransistorShape>& shapes,
                               bg::RingOscillatorSpec baseSpec,
                               double windowNs, double stepPs,
                               const std::string& keyPrefix) {
  std::vector<Job> jobs;
  jobs.reserve(shapes.size());
  for (const auto& shape : shapes) {
    bg::RingOscillatorSpec spec = baseSpec;
    spec.diffPairModel = gen.generate(shape);
    Job job;
    job.key = keyPrefix + "/" + shape.name() +
              "/it=" + numTag(baseSpec.tailCurrent) +
              "/win=" + numTag(windowNs) + "/step=" + numTag(stepPs);
    job.run = [spec, windowNs, stepPs](JobContext& ctx) {
      return ringMeasurementResult(spec, windowNs, stepPs, ctx);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> monteCarloRingJobs(const bg::Technology& nominal,
                                    const bg::ProcessVariation& var,
                                    int dies,
                                    bg::RingOscillatorSpec baseSpec,
                                    const std::string& diffPairShape,
                                    const std::string& followerShape,
                                    double windowNs, double stepPs,
                                    const std::string& keyPrefix) {
  if (dies < 1) throw Error("monteCarloRingJobs: dies must be >= 1");
  std::vector<Job> jobs;
  jobs.reserve(static_cast<size_t>(dies));
  for (int d = 0; d < dies; ++d) {
    Job job;
    job.key = keyPrefix + "/die" + std::to_string(d) + "/" + diffPairShape +
              "+" + followerShape;
    job.usesSeed = true;
    job.run = [nominal, var, baseSpec, diffPairShape, followerShape,
               windowNs, stepPs](JobContext& ctx) {
      const auto gen = bg::dieGenerator(nominal, var, ctx.seed);
      // Mismatch stream decorrelated from the die draw by a fixed tweak.
      util::Rng mismatchRng(ctx.seed ^ 0xD1E5EEDull);
      bg::RingOscillatorSpec spec = baseSpec;
      spec.diffPairModel = bg::withLocalMismatch(
          gen.generate(diffPairShape), var, mismatchRng);
      spec.followerModel = gen.generate(followerShape);
      return ringMeasurementResult(spec, windowNs, stepPs, ctx);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

namespace {

JobResult ftAtBiasResult(const spice::BjtModel& card, double ic,
                         JobContext& ctx) {
  bg::FtExtractor fx(card, 2.0, ctx.options);
  const auto pt = fx.measureAnalyticAt(ic);
  ctx.noteStats(fx.solverStats());
  JobResult r;
  r.set("ft", pt.ft);
  r.set("vbe", pt.vbe);
  return r;
}

}  // namespace

std::vector<Job> monteCarloFtJobs(const bg::Technology& nominal,
                                  const bg::ProcessVariation& var,
                                  int dies, const std::string& shapeName,
                                  double ic, const std::string& keyPrefix) {
  if (dies < 1) throw Error("monteCarloFtJobs: dies must be >= 1");
  std::vector<Job> jobs;
  jobs.reserve(static_cast<size_t>(dies));
  for (int d = 0; d < dies; ++d) {
    Job job;
    job.key = keyPrefix + "/die" + std::to_string(d) + "/" + shapeName +
              "/ic=" + numTag(ic);
    job.usesSeed = true;
    job.run = [nominal, var, shapeName, ic](JobContext& ctx) {
      const auto gen = bg::dieGenerator(nominal, var, ctx.seed);
      return ftAtBiasResult(gen.generate(shapeName), ic, ctx);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> monteCarloFtBatchJobs(const bg::Technology& nominal,
                                       const bg::ProcessVariation& var,
                                       int dies, const std::string& shapeName,
                                       double ic, int batchSize,
                                       std::uint64_t baseSeed,
                                       const std::string& keyPrefix) {
  if (dies < 1) throw Error("monteCarloFtBatchJobs: dies must be >= 1");
  if (batchSize < 1)
    throw Error("monteCarloFtBatchJobs: batchSize must be >= 1");
  char seedTag[24];
  std::snprintf(seedTag, sizeof seedTag, "%016llx",
                static_cast<unsigned long long>(baseSeed));
  std::vector<Job> jobs;
  jobs.reserve(static_cast<size_t>((dies + batchSize - 1) / batchSize));
  for (int d0 = 0; d0 < dies; d0 += batchSize) {
    const int d1 = std::min(dies, d0 + batchSize);
    Job job;
    job.key = keyPrefix + "/batch/die" + std::to_string(d0) + ".." +
              std::to_string(d1 - 1) + "/" + shapeName +
              "/ic=" + numTag(ic) + "/seed=" + seedTag;
    job.run = [nominal, var, shapeName, ic, d0, d1,
               baseSeed](JobContext& ctx) {
      // One card per die in the block, each drawn from the same seed the
      // scalar pipeline's job at global index d would get.
      std::vector<spice::BjtModel> cards;
      cards.reserve(static_cast<size_t>(d1 - d0));
      for (int d = d0; d < d1; ++d) {
        const auto gen = bg::dieGenerator(
            nominal, var, deriveJobSeed(baseSeed, static_cast<size_t>(d)));
        cards.push_back(gen.generate(shapeName));
      }
      spice::AnalysisOptions opts = ctx.options;
      opts.forensics = false;  // unsupported on the batched plane
      bg::BatchFtExtractor bx(std::move(cards), 2.0, opts);
      const auto block = bx.measureAnalyticAt(ic);
      ctx.noteStats(bx.solverStats());

      JobResult r;
      r.set("dies", static_cast<double>(d1 - d0));
      auto wave = std::make_shared<util::WaveTable>();
      std::vector<double> wDie, wIc, wVbe, wFt;
      int failed = 0;
      for (int d = d0; d < d1; ++d) {
        const auto& die = block[static_cast<size_t>(d - d0)];
        const std::string tag = "die" + std::to_string(d);
        if (!die.ok) {
          ++failed;
          r.set(tag + "/failed", 1.0);
          continue;
        }
        r.set(tag + "/ft", die.point.ft);
        r.set(tag + "/vbe", die.point.vbe);
        wDie.push_back(static_cast<double>(d));
        wIc.push_back(die.point.ic);
        wVbe.push_back(die.point.vbe);
        wFt.push_back(die.point.ft);
      }
      r.set("failed", static_cast<double>(failed));
      wave->addColumn("die", std::move(wDie));
      wave->addColumn("ic", std::move(wIc));
      wave->addColumn("vbe", std::move(wVbe));
      wave->addColumn("ft", std::move(wFt));
      r.wave = std::move(wave);
      return r;
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> cornerFtJobs(const bg::Technology& nominal,
                              const bg::ProcessVariation& var,
                              const std::string& shapeName, double ic,
                              double sigmas, const std::string& keyPrefix) {
  const std::pair<bg::Corner, const char*> corners[] = {
      {bg::Corner::kSlow, "slow"},
      {bg::Corner::kTypical, "typical"},
      {bg::Corner::kFast, "fast"},
  };
  std::vector<Job> jobs;
  for (const auto& [corner, name] : corners) {
    Job job;
    job.key = keyPrefix + "/" + name + "/" + shapeName +
              "/ic=" + numTag(ic) + "/sigmas=" + numTag(sigmas);
    job.run = [nominal, var, corner, shapeName, ic, sigmas](JobContext& ctx) {
      const bg::Technology tech =
          bg::cornerTechnology(nominal, var, corner, sigmas);
      const bg::ModelGenerator gen(
          tech, bg::TransistorShape::fromName("N1.2-6S"),
          bg::referenceModelFor(tech));
      return ftAtBiasResult(gen.generate(shapeName), ic, ctx);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> irrYieldJobs(const std::vector<IrrYieldCorner>& corners,
                              double targetDb, int samplesPerCorner,
                              int chunks, const std::string& keyPrefix) {
  if (chunks < 1) throw Error("irrYieldJobs: chunks must be >= 1");
  if (samplesPerCorner < chunks)
    throw Error("irrYieldJobs: need at least one sample per chunk");
  std::vector<Job> jobs;
  jobs.reserve(corners.size() * static_cast<size_t>(chunks));
  for (size_t c = 0; c < corners.size(); ++c) {
    const IrrYieldCorner corner = corners[c];
    // Spread the remainder over the leading chunks.
    const int base = samplesPerCorner / chunks;
    const int extra = samplesPerCorner % chunks;
    for (int k = 0; k < chunks; ++k) {
      const int n = base + (k < extra ? 1 : 0);
      Job job;
      job.key = keyPrefix + "/sp=" + numTag(corner.sigmaPhaseDeg) +
                "/sg=" + numTag(corner.sigmaGain) +
                "/target=" + numTag(targetDb) + "/chunk" +
                std::to_string(k) + "of" + std::to_string(chunks) +
                "/n=" + std::to_string(n);
      job.usesSeed = true;
      job.run = [corner, targetDb, n](JobContext& ctx) {
        const auto y = tn::irrYield(corner.sigmaPhaseDeg, corner.sigmaGain,
                                    targetDb, n, ctx.seed);
        JobResult r;
        r.set("samples", y.samples);
        r.set("passing", y.passing);
        r.set("meanIrrDb", y.meanIrrDb);
        r.set("worstIrrDb", y.worstIrrDb);
        return r;
      };
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::vector<tn::IrrYieldResult> reduceIrrYield(
    const std::vector<JobOutcome>& outcomes, int corners, int chunks) {
  if (corners < 0 || chunks < 1 ||
      outcomes.size() != static_cast<size_t>(corners) * chunks)
    throw Error("reduceIrrYield: outcome count does not match layout");
  std::vector<tn::IrrYieldResult> out;
  out.reserve(static_cast<size_t>(corners));
  for (int c = 0; c < corners; ++c) {
    tn::IrrYieldResult acc;
    acc.worstIrrDb = 1e300;
    for (int k = 0; k < chunks; ++k) {
      const JobOutcome& o =
          outcomes[static_cast<size_t>(c) * chunks + static_cast<size_t>(k)];
      if (!o.ok()) continue;
      tn::IrrYieldResult part;
      part.samples = static_cast<int>(o.result.get("samples"));
      part.passing = static_cast<int>(o.result.get("passing"));
      part.meanIrrDb = o.result.get("meanIrrDb");
      part.worstIrrDb = o.result.get("worstIrrDb");
      acc = tn::mergeIrrYield(acc, part);
    }
    out.push_back(acc);
  }
  return out;
}

}  // namespace ahfic::runner
