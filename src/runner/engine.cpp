#include "runner/engine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/error.h"

namespace ahfic::runner {

namespace {

/// Engine-level metrics, registered once.
struct EngineMetrics {
  obs::Counter jobsCompleted = obs::counter("runner.jobs_completed");
  obs::Counter jobsFailed = obs::counter("runner.jobs_failed");
  obs::Counter jobsRejected = obs::counter("runner.jobs_rejected");
  obs::Counter cacheHits = obs::counter("runner.cache_hits");
  obs::Counter cacheMisses = obs::counter("runner.cache_misses");
  obs::Counter retries = obs::counter("runner.retries");
  obs::Counter diagAttached = obs::counter("diag.attached");
  obs::Counter lintPreflights = obs::counter("lint.preflights");
  obs::Counter lintRejected = obs::counter("lint.rejected");
  obs::Gauge queueDepth = obs::gauge("runner.queue_depth");
  obs::Histogram jobWallMs = obs::histogram("runner.job_wall_ms");
  obs::Histogram retryRung = obs::histogram("runner.retry_rung");
};

const EngineMetrics& engineMetrics() {
  static const EngineMetrics m;
  return m;
}

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hex tag folded into the cache identity of seed-consuming jobs.
std::string seedTag(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "@seed=%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace

BatchRunner::BatchRunner(RunnerOptions opts) : opts_(std::move(opts)) {
  if (!opts_.cacheFile.empty()) cache_.loadFile(opts_.cacheFile);
}

int BatchRunner::effectiveThreads(size_t jobCount) const {
  int n = opts_.threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  if (static_cast<size_t>(n) > jobCount)
    n = static_cast<int>(jobCount == 0 ? 1 : jobCount);
  return n;
}

JobOutcome BatchRunner::runOne(const Job& job, size_t index, int worker) {
  static const obs::LogSite sCacheHit =
      obs::logSite(obs::LogLevel::kDebug, "runner.cache_hit");
  static const obs::LogSite sRetry =
      obs::logSite(obs::LogLevel::kInfo, "runner.retry", 50);
  static const obs::LogSite sJobDone =
      obs::logSite(obs::LogLevel::kDebug, "runner.job_done", 200);
  static const obs::LogSite sJobFailed =
      obs::logSite(obs::LogLevel::kWarn, "runner.job_failed", 50);

  const EngineMetrics& em = engineMetrics();
  // Engine workers are pool threads: re-install the job's correlation
  // context here so logs and diag reports below carry the request id
  // even though the submitting thread is long gone.
  obs::ScopedTraceContext traceCtx(job.traceId, job.key);
  // Dynamic label only when tracing is live; the span renders one slice
  // per job on the worker's lane.
  obs::ScopedSpan span(
      obs::tracingEnabled() ? "job:" + job.key : std::string(), "runner");
  span.annotate("request_id", job.traceId);

  JobOutcome out;
  out.record.key = job.key;
  out.record.worker = worker;

  // Seed: fixed by (baseSeed, index) — never by thread or schedule.
  const std::uint64_t seed = deriveJobSeed(opts_.baseSeed, index);
  const std::string cacheKey =
      job.usesSeed ? job.key + seedTag(seed) : job.key;

  // Static pre-flight gates even the cache: a cached result for a deck
  // that lints as broken is a stale artefact, not an answer.
  if (job.preflight) {
    const auto tLint = std::chrono::steady_clock::now();
    em.lintPreflights.add();
    lint::LintReport report;
    try {
      report = job.preflight();
    } catch (const std::exception& e) {
      report.error("LINT_CRASH",
                   std::string("pre-flight lint threw: ") + e.what());
    }
    if (report.hasErrors()) {
      out.record.status = JobStatus::kRejected;
      out.record.rungName = "preflight";
      out.record.error = report.summaryLine();
      out.record.wallMs = msSince(tLint);
      out.result = JobResult{};
      em.lintRejected.add();
      // Rejections get their own terminal counter — they are neither
      // completions nor solver failures, and the batch-window metrics
      // must let dashboards tell "statically doomed" (jobs_rejected)
      // apart from "dynamically failed" (jobs_failed).
      em.jobsRejected.add();
      span.note("rejected", 1.0);
      return out;
    }
  }

  if (opts_.useCache) {
    if (auto hit = cache_.lookup(cacheKey)) {
      out.result = std::move(*hit);
      out.record.status = JobStatus::kOk;
      out.record.cacheHit = true;
      out.record.rungName = "cache";
      em.cacheHits.add();
      em.jobsCompleted.add();
      if (sCacheHit) sCacheHit.log("served from result cache");
      return out;
    }
    em.cacheMisses.add();
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (int rung = 0; rung < opts_.ladder.rungCount(); ++rung) {
    JobContext ctx;
    ctx.options = opts_.ladder.rung(rung).options;
    if (opts_.diagnostics) ctx.options.forensics = true;
    ctx.options.traceId = job.traceId;
    ctx.seed = seed;
    ctx.rung = rung;
    ++out.record.attempts;
    try {
      out.result = job.run(ctx);
      out.record.status =
          rung == 0 ? JobStatus::kOk : JobStatus::kRecovered;
      out.record.rung = rung;
      out.record.rungName = opts_.ladder.rung(rung).name;
      out.record.newtonIterations = ctx.stats.newtonIterations;
      out.record.matrixSolves = ctx.stats.matrixSolves;
      out.record.acceptedSteps = ctx.stats.acceptedSteps;
      out.record.rejectedSteps = ctx.stats.rejectedSteps;
      out.record.wallMs = msSince(t0);
      if (opts_.useCache) cache_.store(cacheKey, out.result);
      em.jobsCompleted.add();
      em.retries.add(out.record.retries());
      em.jobWallMs.observe(out.record.wallMs);
      em.retryRung.observe(rung);
      span.note("rung", rung);
      if (sJobDone)
        sJobDone.log("job completed")
            .num("rung", rung)
            .num("wallMs", out.record.wallMs)
            .num("newtonIters",
                 static_cast<double>(out.record.newtonIterations));
      return out;
    } catch (const ConvergenceError& e) {
      // Escalate; remember the message in case every rung fails, and
      // attach the attempt's forensics report to the manifest record.
      out.record.error = e.what();
      if (sRetry)
        sRetry.log("convergence failure; escalating retry ladder")
            .num("rung", rung)
            .str("error", e.what());
      if (e.diag() != nullptr) {
        try {
          util::JsonValue entry = util::JsonValue::object();
          entry.set("rung", rung);
          entry.set("rungName", opts_.ladder.rung(rung).name);
          entry.set("report", util::parseJson(*e.diag()));
          if (!out.record.diags.isArray())
            out.record.diags = util::JsonValue::array();
          out.record.diags.push(std::move(entry));
          em.diagAttached.add();
        } catch (const Error&) {
          // A malformed payload must never take the batch down.
        }
      }
    } catch (const std::exception& e) {
      // Not a convergence problem: retrying cannot help.
      out.record.status = JobStatus::kFailed;
      out.record.rung = rung;
      out.record.rungName = opts_.ladder.rung(rung).name;
      out.record.error = e.what();
      out.record.wallMs = msSince(t0);
      out.result = JobResult{};
      em.jobsFailed.add();
      em.retries.add(out.record.retries());
      em.jobWallMs.observe(out.record.wallMs);
      if (sJobFailed)
        sJobFailed.log("job failed (non-convergence error)")
            .str("error", e.what());
      return out;
    }
  }

  out.record.status = JobStatus::kFailed;
  out.record.rung = opts_.ladder.rungCount() - 1;
  out.record.rungName = opts_.ladder.rung(out.record.rung).name;
  if (out.record.error.empty())
    out.record.error = "convergence failure on every retry rung";
  out.record.wallMs = msSince(t0);
  out.result = JobResult{};
  if (sJobFailed)
    sJobFailed.log("job failed on every retry rung")
        .num("rungs", opts_.ladder.rungCount())
        .str("error", out.record.error);
  em.jobsFailed.add();
  em.retries.add(out.record.retries());
  em.jobWallMs.observe(out.record.wallMs);
  return out;
}

BatchResult BatchRunner::run(const std::vector<Job>& jobs) {
  BatchResult batch;
  const int threads = effectiveThreads(jobs.size());
  batch.manifest.threads = threads;
  batch.manifest.baseSeed = opts_.baseSeed;
  batch.outcomes.resize(jobs.size());
  if (jobs.empty()) return batch;

  // Batch-window delta for the manifest's metrics section.
  const bool withMetrics = obs::metricsEnabled();
  const obs::MetricsSnapshot before =
      withMetrics ? obs::metrics().snapshot() : obs::MetricsSnapshot{};

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<size_t> next{0};

  auto workerLoop = [&](int workerId) {
    const obs::Gauge queueDepth = engineMetrics().queueDepth;
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      queueDepth.set(static_cast<double>(jobs.size() - i - 1));
      // Each worker writes only its own slot: no synchronisation needed
      // beyond the cache's internal lock.
      batch.outcomes[i] = runOne(jobs[i], i, workerId);
    }
  };

  if (threads <= 1) {
    // Single-worker batches run on the caller's thread (and lane).
    workerLoop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int w = 0; w < threads; ++w)
      pool.emplace_back([&workerLoop, w] {
        // One trace lane per worker, so a batch renders as a flame chart
        // with per-worker rows — and the same name for profile samples,
        // so folded stacks attribute to worker threads too.
        const std::string name = "worker-" + std::to_string(w);
        obs::nameCurrentThreadLane(name);
        obs::profileSetThreadName(name.c_str());
        workerLoop(w);
      });
    for (auto& t : pool) t.join();
  }

  batch.manifest.wallMs = msSince(t0);
  batch.manifest.jobs.reserve(jobs.size());
  for (const auto& out : batch.outcomes)
    batch.manifest.jobs.push_back(out.record);
  if (withMetrics)
    batch.manifest.metrics =
        obs::metrics().snapshot().since(before).toJson();

  if (opts_.useCache && !opts_.cacheFile.empty())
    cache_.saveFile(opts_.cacheFile);
  return batch;
}

}  // namespace ahfic::runner
