#include "runner/engine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "util/error.h"

namespace ahfic::runner {

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hex tag folded into the cache identity of seed-consuming jobs.
std::string seedTag(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "@seed=%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace

BatchRunner::BatchRunner(RunnerOptions opts) : opts_(std::move(opts)) {
  if (!opts_.cacheFile.empty()) cache_.loadFile(opts_.cacheFile);
}

int BatchRunner::effectiveThreads(size_t jobCount) const {
  int n = opts_.threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  if (static_cast<size_t>(n) > jobCount)
    n = static_cast<int>(jobCount == 0 ? 1 : jobCount);
  return n;
}

JobOutcome BatchRunner::runOne(const Job& job, size_t index, int worker) {
  JobOutcome out;
  out.record.key = job.key;
  out.record.worker = worker;

  // Seed: fixed by (baseSeed, index) — never by thread or schedule.
  const std::uint64_t seed = deriveJobSeed(opts_.baseSeed, index);
  const std::string cacheKey =
      job.usesSeed ? job.key + seedTag(seed) : job.key;

  if (opts_.useCache) {
    if (auto hit = cache_.lookup(cacheKey)) {
      out.result = std::move(*hit);
      out.record.status = JobStatus::kOk;
      out.record.cacheHit = true;
      out.record.rungName = "cache";
      return out;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (int rung = 0; rung < opts_.ladder.rungCount(); ++rung) {
    JobContext ctx;
    ctx.options = opts_.ladder.rung(rung).options;
    ctx.seed = seed;
    ctx.rung = rung;
    ++out.record.attempts;
    try {
      out.result = job.run(ctx);
      out.record.status =
          rung == 0 ? JobStatus::kOk : JobStatus::kRecovered;
      out.record.rung = rung;
      out.record.rungName = opts_.ladder.rung(rung).name;
      out.record.newtonIterations = ctx.stats.newtonIterations;
      out.record.matrixSolves = ctx.stats.matrixSolves;
      out.record.acceptedSteps = ctx.stats.acceptedSteps;
      out.record.rejectedSteps = ctx.stats.rejectedSteps;
      out.record.wallMs = msSince(t0);
      if (opts_.useCache) cache_.store(cacheKey, out.result);
      return out;
    } catch (const ConvergenceError& e) {
      // Escalate; remember the message in case every rung fails.
      out.record.error = e.what();
    } catch (const std::exception& e) {
      // Not a convergence problem: retrying cannot help.
      out.record.status = JobStatus::kFailed;
      out.record.rung = rung;
      out.record.rungName = opts_.ladder.rung(rung).name;
      out.record.error = e.what();
      out.record.wallMs = msSince(t0);
      out.result = JobResult{};
      return out;
    }
  }

  out.record.status = JobStatus::kFailed;
  out.record.rung = opts_.ladder.rungCount() - 1;
  out.record.rungName = opts_.ladder.rung(out.record.rung).name;
  if (out.record.error.empty())
    out.record.error = "convergence failure on every retry rung";
  out.record.wallMs = msSince(t0);
  out.result = JobResult{};
  return out;
}

BatchResult BatchRunner::run(const std::vector<Job>& jobs) {
  BatchResult batch;
  const int threads = effectiveThreads(jobs.size());
  batch.manifest.threads = threads;
  batch.manifest.baseSeed = opts_.baseSeed;
  batch.outcomes.resize(jobs.size());
  if (jobs.empty()) return batch;

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<size_t> next{0};

  auto workerLoop = [&](int workerId) {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      // Each worker writes only its own slot: no synchronisation needed
      // beyond the cache's internal lock.
      batch.outcomes[i] = runOne(jobs[i], i, workerId);
    }
  };

  if (threads <= 1) {
    workerLoop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int w = 0; w < threads; ++w) pool.emplace_back(workerLoop, w);
    for (auto& t : pool) t.join();
  }

  batch.manifest.wallMs = msSince(t0);
  batch.manifest.jobs.reserve(jobs.size());
  for (const auto& out : batch.outcomes)
    batch.manifest.jobs.push_back(out.record);

  if (opts_.useCache && !opts_.cacheFile.empty())
    cache_.saveFile(opts_.cacheFile);
  return batch;
}

}  // namespace ahfic::runner
