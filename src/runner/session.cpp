#include "runner/session.h"

#include <chrono>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace ahfic::runner {

namespace {

const obs::Counter& sessionBatchesCounter() {
  static const obs::Counter c = obs::counter("runner.session_batches");
  return c;
}

RunnerOptions validated(RunnerOptions opts) {
  if (!opts.cacheFile.empty())
    throw Error("runner::Session does not support on-disk cache files "
                "(concurrent batches would race on the file)");
  return opts;
}

}  // namespace

Session::Session(RunnerOptions opts) : runner_(validated(std::move(opts))) {}

BatchResult Session::run(const std::vector<Job>& jobs) {
  static const obs::LogSite sBatch =
      obs::logSite(obs::LogLevel::kDebug, "runner.session_batch");
  const auto t0 = std::chrono::steady_clock::now();
  BatchResult batch = runner_.run(jobs);
  batches_.fetch_add(1);
  sessionBatchesCounter().add();
  if (sBatch) {
    int cacheHits = 0;
    for (const JobOutcome& out : batch.outcomes)
      if (out.record.cacheHit) ++cacheHits;
    sBatch.log("session batch finished")
        .num("jobs", static_cast<double>(jobs.size()))
        .num("cacheHits", cacheHits)
        .num("wallMs", std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
  }
  return batch;
}

void Session::storeText(const std::string& key, std::string text) {
  util::MutexLock lock(&textMu_);
  texts_[key] = std::move(text);
}

std::optional<std::string> Session::fetchText(const std::string& key) const {
  util::MutexLock lock(&textMu_);
  auto it = texts_.find(key);
  if (it == texts_.end()) return std::nullopt;
  return it->second;
}

size_t Session::textCount() const {
  util::MutexLock lock(&textMu_);
  return texts_.size();
}

}  // namespace ahfic::runner
