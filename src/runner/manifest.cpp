#include "runner/manifest.h"

#include <fstream>

#include "util/error.h"

namespace ahfic::runner {

namespace js = ahfic::util;

const char* jobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRecovered: return "recovered";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kFailed: return "failed";
  }
  return "unknown";
}

int RunManifest::countWithStatus(JobStatus status) const {
  int n = 0;
  for (const auto& j : jobs)
    if (j.status == status) ++n;
  return n;
}

int RunManifest::cacheHits() const {
  int n = 0;
  for (const auto& j : jobs)
    if (j.cacheHit) ++n;
  return n;
}

long RunManifest::totalRetries() const {
  long n = 0;
  for (const auto& j : jobs)
    if (j.attempts > 1) n += j.attempts - 1;
  return n;
}

long RunManifest::totalNewtonIterations() const {
  long n = 0;
  for (const auto& j : jobs) n += j.newtonIterations;
  return n;
}

double RunManifest::throughputJobsPerSec() const {
  if (jobs.empty() || wallMs <= 0.0) return 0.0;
  return static_cast<double>(jobs.size()) / (wallMs * 1e-3);
}

util::JsonValue RunManifest::toJson() const {
  js::JsonValue doc = js::JsonValue::object();
  doc.set("schema", "ahfic-run-manifest-v1");
  doc.set("threads", threads);
  doc.set("baseSeed", static_cast<double>(baseSeed));
  doc.set("wallMs", wallMs);

  js::JsonValue agg = js::JsonValue::object();
  agg.set("jobs", static_cast<double>(jobs.size()));
  agg.set("ok", countWithStatus(JobStatus::kOk));
  agg.set("recovered", countWithStatus(JobStatus::kRecovered));
  agg.set("rejected", countWithStatus(JobStatus::kRejected));
  agg.set("failed", countWithStatus(JobStatus::kFailed));
  agg.set("cacheHits", cacheHits());
  agg.set("retries", totalRetries());
  agg.set("newtonIterations", totalNewtonIterations());
  agg.set("throughputJobsPerSec", throughputJobsPerSec());
  doc.set("aggregate", std::move(agg));

  js::JsonValue arr = js::JsonValue::array();
  for (const auto& j : jobs) {
    js::JsonValue e = js::JsonValue::object();
    e.set("key", j.key);
    e.set("status", jobStatusName(j.status));
    e.set("attempts", j.attempts);
    // Explicit on every job — including first-try successes — so
    // downstream parsing needs no null-handling.
    e.set("retries", j.retries());
    e.set("rung", j.rung);
    e.set("rungName", j.rungName.empty() ? "default" : j.rungName);
    e.set("cacheHit", j.cacheHit);
    e.set("wallMs", j.wallMs);
    e.set("newtonIterations", j.newtonIterations);
    e.set("matrixSolves", j.matrixSolves);
    e.set("acceptedSteps", j.acceptedSteps);
    e.set("rejectedSteps", j.rejectedSteps);
    e.set("worker", j.worker);
    if (!j.error.empty()) e.set("error", j.error);
    if (j.diags.isArray() && j.diags.size() > 0) e.set("diags", j.diags);
    arr.push(std::move(e));
  }
  doc.set("jobs", std::move(arr));
  if (metrics.isObject()) doc.set("metrics", metrics);
  return doc;
}

std::string RunManifest::toJsonString(int indent) const {
  return toJson().dump(indent);
}

void RunManifest::writeJsonFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("RunManifest: cannot write '" + path + "'");
  f << toJsonString() << "\n";
  if (!f.good()) throw Error("RunManifest: write to '" + path + "' failed");
}

}  // namespace ahfic::runner
